module taskbench

go 1.23
