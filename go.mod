module taskbench

go 1.24
