// Package taskbench is a from-scratch Go reproduction of "Task Bench:
// A Parameterized Benchmark for Evaluating Parallel Runtime
// Performance" (Slaughter et al., SC 2020).
//
// The library lives under internal/: the core task-graph description
// (internal/core), the kernels (internal/kernels), the runtime
// backends modelling the paper's programming systems
// (internal/runtime/...), the shared scheduler engine and reusable
// task-DAG plan they execute through (internal/runtime/exec), a
// discrete-event cluster simulator standing in for the Cori and Piz
// Daint testbeds (internal/sim), the METG metric (internal/metg) and
// the experiment harness (internal/harness). See README.md for a tour
// and DESIGN.md for the architecture and system inventory.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation: run `go test -bench=. -benchmem` here, or
// `go run ./cmd/figures -full` for the complete sweeps.
package taskbench
