package tcp

import (
	"fmt"
	"testing"

	"taskbench/internal/core"
	"taskbench/internal/runtime/exec"
)

// BenchmarkMeshSend measures one timestep's worth of cross-rank
// traffic — every cross-rank edge of an all-to-all graph sent, flushed
// and received back — through a loopback 2-rank mesh, with payload
// batching on (the default) and off. The batched mode's win at small
// payloads is the point of the batching layer; the CI perf gate
// watches this benchmark.
func BenchmarkMeshSend(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"batched", false}, {"unbatched", true}} {
		for _, size := range []int{16, 1024, 64 << 10} {
			b.Run(fmt.Sprintf("%s/%dB", mode.name, size), func(b *testing.B) {
				benchMeshSend(b, size, mode.noBatch)
			})
		}
	}
}

func benchMeshSend(b *testing.B, size int, noBatch bool) {
	const ranks = 2
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 2, MaxWidth: 4 * ranks, Dependence: core.AllToAll,
		OutputBytes: size,
	}))
	app.Workers = ranks
	plan, tr := soloMesh(b, app, ranks, noBatch)
	defer tr.Close()

	edges := plan.Edges(0)
	if len(edges) == 0 {
		b.Fatal("all-to-all plan has no cross-rank edges")
	}
	owners := make([]int, len(edges))
	payloads := make([][]byte, len(edges))
	for k, e := range edges {
		owners[k] = exec.OwnerOf(e.Producer, app.Graphs[0].MaxWidth, ranks)
		payloads[k] = make([]byte, size)
		pattern(payloads[k], byte(k+1))
	}

	b.SetBytes(int64(len(edges) * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, e := range edges {
			if err := tr.Send(owners[k], 0, e.Producer, e.Consumer, payloads[k]); err != nil {
				b.Fatal(err)
			}
		}
		for r := 0; r < ranks; r++ {
			if err := tr.Flush(r); err != nil {
				b.Fatal(err)
			}
		}
		for _, e := range edges {
			payload := tr.Recv(0, e.Producer, e.Consumer)
			if payload == nil {
				b.Fatalf("Recv returned nil: %v", tr.Err())
			}
			tr.Recycle(0, payload)
		}
	}
}
