package tcp

import (
	"net"
	"sync"
	"testing"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
	"taskbench/internal/runtime/p2p"
	"taskbench/internal/runtime/runtimetest"
)

func TestRankPolicyConformance(t *testing.T) {
	runtimetest.RankPolicyConformance(t, "tcp")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "tcp", 3)
}

func TestLargePayloadOverWire(t *testing.T) {
	rt, err := runtime.New("tcp")
	if err != nil {
		t.Fatal(err)
	}
	// Payloads far beyond a TCP segment exercise framing and partial
	// reads.
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 4, MaxWidth: 4, Dependence: core.Stencil1DPeriodic,
		OutputBytes: 1 << 18,
	}))
	app.Workers = 4
	stats, err := rt.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 16 {
		t.Errorf("tasks = %d, want 16", stats.Tasks)
	}
}

func TestAllToAllOverWire(t *testing.T) {
	rt, _ := runtime.New("tcp")
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 3, MaxWidth: 8, Dependence: core.AllToAll,
	}))
	app.Workers = 4
	if _, err := rt.Run(app); err != nil {
		t.Fatal(err)
	}
}

// splitMesh stands up the two halves of a 4-rank mesh the way two
// cluster worker processes would: separate local plans, separate
// listeners, transports constructed concurrently from a shared
// rank→address table.
func splitMesh(t *testing.T, mkApp func() *core.App, ranks int) (apps [2]*core.App, plans [2]*exec.RankPlan, trs [2]*MeshTransport) {
	t.Helper()
	spans := [2]exec.Span{{Lo: 0, Hi: ranks / 2}, {Lo: ranks / 2, Hi: ranks}}
	lns := [2]net.Listener{}
	addrs := make([]string, ranks)
	for half := 0; half < 2; half++ {
		apps[half] = mkApp()
		plans[half] = exec.BuildRankPlanLocal(apps[half], ranks, spans[half])
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[half] = ln
		for r := spans[half].Lo; r < spans[half].Hi; r++ {
			addrs[r] = ln.Addr().String()
		}
	}
	var wg sync.WaitGroup
	errs := [2]error{}
	for half := 0; half < 2; half++ {
		wg.Add(1)
		go func(half int) {
			defer wg.Done()
			trs[half], errs[half] = NewMeshTransport(plans[half], Topology{
				Local:    spans[half],
				Addrs:    addrs,
				Config:   42,
				Listener: lns[half],
				Timeout:  10 * time.Second,
			})
		}(half)
	}
	wg.Wait()
	for half, err := range errs {
		if err != nil {
			t.Fatalf("half %d mesh: %v", half, err)
		}
	}
	return apps, plans, trs
}

// TestMeshAcrossLocalSpans validates the multi-process construction:
// each half hosts two ranks through its own engine, and every payload
// crossing the span boundary is validated at the consumer.
func TestMeshAcrossLocalSpans(t *testing.T) {
	const ranks = 4
	mkApp := func() *core.App {
		app := core.NewApp(core.MustNew(core.Params{
			Timesteps: 30, MaxWidth: ranks, Dependence: core.Stencil1DPeriodic,
			OutputBytes: 256,
		}))
		app.Workers = ranks
		return app
	}
	apps, plans, trs := splitMesh(t, mkApp, ranks)
	engines := [2]*exec.RankEngine{}
	for half := 0; half < 2; half++ {
		engines[half] = exec.NewLocalRankEngine(plans[half], p2p.Policy{}, 1, trs[half])
		defer engines[half].Close()
	}
	for run := 0; run < 3; run++ {
		var wg sync.WaitGroup
		errs := [2]error{}
		for half := 0; half < 2; half++ {
			plans[half].Reset()
			wg.Add(1)
			go func(half int) {
				defer wg.Done()
				errs[half] = engines[half].Run(apps[half].Validate)
			}(half)
		}
		wg.Wait()
		for half, err := range errs {
			if err != nil {
				t.Fatalf("run %d half %d: %v", run, half, err)
			}
		}
	}
}

// TestMeshAbortUnblocksRecv kills one half of a split mesh mid-run and
// requires the surviving half to finish with an error — never hang.
func TestMeshAbortUnblocksRecv(t *testing.T) {
	const ranks = 4
	mkApp := func() *core.App {
		app := core.NewApp(core.MustNew(core.Params{
			// Tall graph so the survivor is mid-protocol when the peer
			// dies.
			Timesteps: 10000, MaxWidth: ranks, Dependence: core.Stencil1DPeriodic,
			OutputBytes: 256,
		}))
		app.Workers = ranks
		return app
	}
	apps, plans, trs := splitMesh(t, mkApp, ranks)
	engine0 := exec.NewLocalRankEngine(plans[0], p2p.Policy{}, 1, trs[0])
	defer engine0.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- engine0.Run(apps[0].Validate) }()
	// The peer "process" dies without ever running its ranks.
	time.Sleep(20 * time.Millisecond)
	trs[1].Abort(nil)
	trs[1].Close()

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("survivor run succeeded despite dead peer")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("survivor run hung after peer death")
	}
}

// TestMeshRejectsWrongConfig ensures handshakes from a different
// session cannot cross-wire into a mesh: the imposter connection is
// closed and ignored, and the missing genuine link times
// establishment out instead of admitting the stranger.
func TestMeshRejectsWrongConfig(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 2, MaxWidth: 2, Dependence: core.Stencil1D,
	}))
	app.Workers = 2
	plan := exec.BuildRankPlanLocal(app, 2, exec.Span{Lo: 0, Hi: 1})
	// Rank 1's "process" is a sink that accepts the mesh's outbound
	// dial and goes silent, so the only inbound link is the imposter's.
	sink, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	go func() {
		for {
			if _, err := sink.Accept(); err != nil {
				return
			}
		}
	}()
	addrs := []string{ln.Addr().String(), sink.Addr().String()}

	done := make(chan error, 1)
	go func() {
		_, err := NewMeshTransport(plan, Topology{
			Local: exec.Span{Lo: 0, Hi: 1}, Addrs: addrs, Config: 7,
			Listener: ln, Timeout: 2 * time.Second,
		})
		done <- err
	}()
	// An imposter dialing with the wrong config id must be dropped:
	// its connection closes (EOF below) while establishment keeps
	// waiting for the genuine link, which never comes.
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHandshake(conn, 99, 1, 0); err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("imposter connection was admitted into the mesh")
	}
	if err := <-done; err == nil {
		t.Fatal("mesh established without its genuine inbound link")
	}
}
