package tcp

import (
	"testing"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/runtimetest"
)

func TestRankPolicyConformance(t *testing.T) {
	runtimetest.RankPolicyConformance(t, "tcp")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "tcp", 3)
}

func TestLargePayloadOverWire(t *testing.T) {
	rt, err := runtime.New("tcp")
	if err != nil {
		t.Fatal(err)
	}
	// Payloads far beyond a TCP segment exercise framing and partial
	// reads.
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 4, MaxWidth: 4, Dependence: core.Stencil1DPeriodic,
		OutputBytes: 1 << 18,
	}))
	app.Workers = 4
	stats, err := rt.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 16 {
		t.Errorf("tasks = %d, want 16", stats.Tasks)
	}
}

func TestAllToAllOverWire(t *testing.T) {
	rt, _ := runtime.New("tcp")
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 3, MaxWidth: 8, Dependence: core.AllToAll,
	}))
	app.Workers = 4
	if _, err := rt.Run(app); err != nil {
		t.Fatal(err)
	}
}
