package tcp

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/runtime/exec"
)

// soloMesh builds a single-process mesh hosting every rank, the way
// the in-process tcp backend does, with batching switched as given.
func soloMesh(t testing.TB, app *core.App, ranks int, noBatch bool) (*exec.RankPlan, *MeshTransport) {
	t.Helper()
	plan := exec.BuildRankPlan(app, ranks)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, ranks)
	for r := range addrs {
		addrs[r] = ln.Addr().String()
	}
	tr, err := NewMeshTransport(plan, Topology{
		Local:    exec.Span{Lo: 0, Hi: ranks},
		Addrs:    addrs,
		Listener: ln,
		NoBatch:  noBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan, tr
}

// pattern fills a deterministic per-edge payload so corruption or
// cross-edge routing mistakes change bytes, not just lengths.
func pattern(buf []byte, seed byte) {
	for i := range buf {
		buf[i] = seed + byte(i*7)
	}
}

// TestBatchDemuxMatchesPerEdge sends the same cross-rank payloads
// through a batching mesh and a per-edge-frame mesh at rank counts 1–3
// and requires the receiving side to observe bit-for-bit identical
// bytes on every edge. Payload sizes straddle flushBytes so both the
// boundary flush and the mid-step threshold flush paths are exercised.
func TestBatchDemuxMatchesPerEdge(t *testing.T) {
	for ranks := 1; ranks <= 3; ranks++ {
		for _, size := range []int{16, 1024, 48 << 10} {
			app := core.NewApp(core.MustNew(core.Params{
				Timesteps: 2, MaxWidth: 3 * ranks, Dependence: core.Stencil1DPeriodic,
				OutputBytes: size,
			}))
			app.Workers = ranks

			got := [2]map[exec.Edge][]byte{}
			for mode, noBatch := range map[int]bool{0: false, 1: true} {
				plan, tr := soloMesh(t, app, ranks, noBatch)
				edges := plan.Edges(0)
				// Queue every cross-rank edge's payload from its
				// producer's rank, then flush each rank — the transport
				// sequence of one timestep.
				for k, e := range edges {
					from := exec.OwnerOf(e.Producer, app.Graphs[0].MaxWidth, ranks)
					buf := make([]byte, size)
					pattern(buf, byte(k+1))
					if err := tr.Send(from, 0, e.Producer, e.Consumer, buf); err != nil {
						t.Fatal(err)
					}
				}
				for r := 0; r < ranks; r++ {
					if err := tr.Flush(r); err != nil {
						t.Fatal(err)
					}
				}
				got[mode] = map[exec.Edge][]byte{}
				for k, e := range edges {
					payload := tr.Recv(0, e.Producer, e.Consumer)
					if payload == nil {
						t.Fatalf("ranks=%d size=%d noBatch=%v: Recv %d→%d returned nil (err: %v)",
							ranks, size, noBatch, e.Producer, e.Consumer, tr.Err())
					}
					want := make([]byte, size)
					pattern(want, byte(k+1))
					if !bytes.Equal(payload, want) {
						t.Fatalf("ranks=%d size=%d noBatch=%v: edge %d→%d corrupted",
							ranks, size, noBatch, e.Producer, e.Consumer)
					}
					got[mode][e] = payload
				}
				if ranks == 1 && len(edges) != 0 {
					t.Fatalf("single-rank plan has %d cross-rank edges, want 0", len(edges))
				}
				tr.Close()
			}
			for e, b := range got[0] {
				if !bytes.Equal(b, got[1][e]) {
					t.Fatalf("ranks=%d size=%d: batched and per-edge demux disagree on edge %d→%d",
						ranks, size, e.Producer, e.Consumer)
				}
			}
		}
	}
}

// TestBatchedEngineRuns drives full engine runs (validation on) over
// batched meshes at rank counts 1–3: the consumer-side checksum
// validation catches any payload the batching layer mangles, and the
// run completing at all proves flush points are deadlock-free.
func TestBatchedEngineRuns(t *testing.T) {
	for ranks := 1; ranks <= 3; ranks++ {
		app := core.NewApp(core.MustNew(core.Params{
			Timesteps: 20, MaxWidth: 3 * ranks, Dependence: core.Stencil1DPeriodic,
			OutputBytes: 256,
		}))
		app.Workers = ranks
		plan, tr := soloMesh(t, app, ranks, false)
		engine := exec.NewLocalRankEngine(plan, &policy{}, 1, tr)
		for run := 0; run < 2; run++ {
			plan.Reset()
			if err := engine.Run(true); err != nil {
				t.Fatalf("ranks=%d run %d: %v", ranks, run, err)
			}
		}
		engine.Close()
	}
}

// corruptibleMesh builds a 2-rank mesh whose rank 1 is played by the
// test: the returned connection is the test's end of the inbound link
// into rank 0, ready to carry arbitrary (including malformed) frames.
func corruptibleMesh(t *testing.T) (*MeshTransport, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 2, MaxWidth: 2, Dependence: core.Stencil1D,
		OutputBytes: 64,
	}))
	app.Workers = 2
	plan := exec.BuildRankPlanLocal(app, 2, exec.Span{Lo: 0, Hi: 1})
	// Rank 1's "process" accepts the mesh's outbound dial and sits on
	// it; only the inbound direction matters here.
	sink, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	go func() {
		for {
			if _, err := sink.Accept(); err != nil {
				return
			}
		}
	}()

	done := make(chan *MeshTransport, 1)
	fail := make(chan error, 1)
	go func() {
		tr, err := NewMeshTransport(plan, Topology{
			Local: exec.Span{Lo: 0, Hi: 1}, Config: 7,
			Addrs:    []string{ln.Addr().String(), sink.Addr().String()},
			Listener: ln, Timeout: 10 * time.Second,
		})
		if err != nil {
			fail <- err
			return
		}
		done <- tr
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHandshake(conn, 7, 1, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case tr := <-done:
		t.Cleanup(tr.Close)
		t.Cleanup(func() { conn.Close() })
		return tr, conn
	case err := <-fail:
		t.Fatalf("mesh establishment: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("mesh establishment hung")
	}
	panic("unreachable")
}

// expectTeardown waits for the mesh to fail with an error mentioning
// want, and requires pending Recvs to unblock with nil.
func expectTeardown(t *testing.T, tr *MeshTransport, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tr.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("mesh never tore down after malformed frame")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tr.Err(); !strings.Contains(err.Error(), want) {
		t.Fatalf("teardown error %q does not mention %q", err, want)
	}
	recvDone := make(chan []byte, 1)
	go func() { recvDone <- tr.Recv(0, 1, 0) }()
	select {
	case payload := <-recvDone:
		if payload != nil {
			t.Fatal("Recv on torn-down mesh returned a payload")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv hung on torn-down mesh")
	}
}

// TestDemuxRejectsOversizedFrame pins the max-frame guard: a corrupt
// length prefix must tear the mesh down cleanly — error surfaced,
// Recvs unblocked — instead of attempting a quarter-gigabyte-plus
// allocation or hanging.
func TestDemuxRejectsOversizedFrame(t *testing.T) {
	tr, conn := corruptibleMesh(t)
	var header [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], MaxFrameLen+1)
	binary.LittleEndian.PutUint32(header[4:8], 0) // graph 0
	binary.LittleEndian.PutUint32(header[8:12], 1)
	binary.LittleEndian.PutUint32(header[12:16], 0)
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	expectTeardown(t, tr, "exceeds limit")
}

// TestDemuxRejectsMalformedBatch pins batch-header validation: a
// descriptor section that does not match the edge count, and payload
// lengths that overrun the declared body, both tear the mesh down.
func TestDemuxRejectsMalformedBatch(t *testing.T) {
	t.Run("desc_count_mismatch", func(t *testing.T) {
		tr, conn := corruptibleMesh(t)
		var header [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(header[0:4], 64)
		binary.LittleEndian.PutUint32(header[4:8], batchMarker)
		binary.LittleEndian.PutUint32(header[8:12], 3)   // 3 edges…
		binary.LittleEndian.PutUint32(header[12:16], 16) // …but 1 descriptor
		if _, err := conn.Write(header[:]); err != nil {
			t.Fatal(err)
		}
		expectTeardown(t, tr, "malformed batch")
	})
	t.Run("payload_overruns_body", func(t *testing.T) {
		tr, conn := corruptibleMesh(t)
		var frame [frameHeaderSize + descSize]byte
		binary.LittleEndian.PutUint32(frame[0:4], descSize+8) // body: 1 desc + 8 payload bytes
		binary.LittleEndian.PutUint32(frame[4:8], batchMarker)
		binary.LittleEndian.PutUint32(frame[8:12], 1)
		binary.LittleEndian.PutUint32(frame[12:16], descSize)
		binary.LittleEndian.PutUint32(frame[16:20], 100) // …payload claims 100
		binary.LittleEndian.PutUint32(frame[20:24], 0)   // graph
		binary.LittleEndian.PutUint32(frame[24:28], 1)   // producer
		binary.LittleEndian.PutUint32(frame[28:32], 0)   // consumer
		if _, err := conn.Write(frame[:]); err != nil {
			t.Fatal(err)
		}
		expectTeardown(t, tr, "overrun")
	})
}
