// Package tcp implements a hand-rolled distributed runtime: ranks
// communicate over real TCP connections (loopback) with a
// length-prefixed wire protocol, rather than over in-process channels.
// It is the closest this repository gets to the paper's actual
// deployment model — separate address spaces joined by a network — and
// exercises connection establishment, framing, demultiplexing and
// flow control that the channel-based backends abstract away.
//
// Topology: a full mesh. Every ordered rank pair (s → r) gets one
// connection, written only by s and read by a demultiplexer goroutine
// at r that routes frames to per-edge queues. Scheduling is exactly
// the p2p backend's eager rank policy — this package contributes only
// the exec.Transport adapter that swaps the in-process fabric for the
// wire, plugged into the shared exec.RankEngine via OpenTransport.
// The per-edge queues are built from the RankPlan's cross-rank edge
// list, the same enumeration the fabric uses, so both transports agree
// exactly on which edges exist.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
	"taskbench/internal/runtime/p2p"
)

func init() {
	runtime.Register("tcp", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "tcp" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "tcp",
		Analog:      "MPI p2p over sockets",
		Paradigm:    "message passing (real network transport)",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "full TCP mesh on loopback; length-prefixed frames; per-edge demux",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	return exec.RunRanks(app, &policy{})
}

// RankPolicy implements runtime.RankBacked.
func (rt) RankPolicy() exec.RankPolicy { return &policy{} }

// policy is the p2p eager rank discipline over a wire transport: the
// scheduling paradigm is inherited wholesale from p2p; only the
// messaging substrate differs.
type policy struct {
	p2p.Policy
}

// OpenTransport implements exec.RankTransporter: it dials the full
// loopback mesh and builds the per-edge frame queues from the plan's
// cross-rank edge lists. The engine owns (and Closes) the transport,
// so a reused RankSession pays connection establishment once per
// configuration instead of per run.
func (*policy) OpenTransport(plan *exec.RankPlan) (exec.Transport, error) {
	return newTransport(plan)
}

// frameHeader is the fixed wire header preceding every payload:
// payload length, graph index, producer column, consumer column.
const frameHeaderSize = 16

// edgeCap bounds per-edge buffering; the step-lockstep structure keeps
// at most a couple of outstanding frames per edge.
const edgeCap = 8

// transport is the TCP mesh of one engine, implementing
// exec.Transport.
type transport struct {
	ranks int
	// widths[g] is graph g's max width, for routing frames to the
	// consumer's rank.
	widths []int
	// out[from][to] is the connection written by rank `from`.
	out [][]net.Conn
	// edges[graph][consumer][producer] receives demultiplexed
	// payloads at the consumer's rank.
	edges []map[int]map[int]chan []byte
	// free[graph] recycles consumed payload buffers back to the
	// demultiplexers, so steady-state frame reads stop allocating.
	free []exec.PayloadPool
	// errs records fatal transport errors from the demultiplexers.
	errs exec.ErrOnce
}

// newTransport builds the connection mesh and edge queues and starts
// one demultiplexer per incoming connection.
func newTransport(plan *exec.RankPlan) (*transport, error) {
	ranks := plan.Ranks
	app := plan.App
	tr := &transport{ranks: ranks, widths: make([]int, len(app.Graphs))}

	// Edge queues, from the plan's shared cross-rank edge enumeration
	// and the fabric's shared queue construction.
	lists := make([][]exec.Edge, len(app.Graphs))
	tr.free = make([]exec.PayloadPool, len(app.Graphs))
	for gi, g := range app.Graphs {
		tr.widths[gi] = g.MaxWidth
		lists[gi] = plan.Edges(gi)
		tr.free[gi] = exec.NewEdgePool(len(lists[gi]), edgeCap)
	}
	tr.edges = exec.EdgeQueues(lists, edgeCap)

	// One listener per rank, then a full dial mesh. The dialer
	// identifies itself with a one-int32 handshake.
	listeners := make([]net.Listener, ranks)
	for r := 0; r < ranks; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("tcp: listen: %w", err)
		}
		listeners[r] = ln
	}
	tr.out = make([][]net.Conn, ranks)
	for r := range tr.out {
		tr.out[r] = make([]net.Conn, ranks)
	}

	accepted := make(chan error, ranks)
	for r := 0; r < ranks; r++ {
		go func(r int) {
			for peer := 0; peer < ranks-1; peer++ {
				conn, err := listeners[r].Accept()
				if err != nil {
					accepted <- err
					return
				}
				var from int32
				if err := binary.Read(conn, binary.LittleEndian, &from); err != nil {
					accepted <- err
					return
				}
				go tr.demux(conn)
			}
			accepted <- nil
		}(r)
	}
	for from := 0; from < ranks; from++ {
		for to := 0; to < ranks; to++ {
			if from == to {
				continue
			}
			conn, err := net.Dial("tcp", listeners[to].Addr().String())
			if err != nil {
				return nil, fmt.Errorf("tcp: dial rank %d: %w", to, err)
			}
			if err := binary.Write(conn, binary.LittleEndian, int32(from)); err != nil {
				return nil, fmt.Errorf("tcp: handshake: %w", err)
			}
			tr.out[from][to] = conn
		}
	}
	for r := 0; r < ranks; r++ {
		if err := <-accepted; err != nil {
			return nil, fmt.Errorf("tcp: accept: %w", err)
		}
		listeners[r].Close()
	}
	return tr, nil
}

// demux reads frames from one connection and routes them to edge
// queues until the peer closes the connection.
func (tr *transport) demux(conn net.Conn) {
	var header [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			if err != io.EOF {
				tr.errs.Set(fmt.Errorf("tcp: read header: %w", err))
			}
			return
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		graph := int32(binary.LittleEndian.Uint32(header[4:8]))
		producer := int32(binary.LittleEndian.Uint32(header[8:12]))
		consumer := int32(binary.LittleEndian.Uint32(header[12:16]))
		payload := tr.frameBuf(int(graph), int(length))
		if _, err := io.ReadFull(conn, payload); err != nil {
			tr.errs.Set(fmt.Errorf("tcp: read payload: %w", err))
			return
		}
		ch := tr.edge(int(graph), int(producer), int(consumer))
		if ch == nil {
			tr.errs.Set(fmt.Errorf("tcp: frame for unknown edge g%d %d→%d", graph, producer, consumer))
			return
		}
		ch <- payload
	}
}

// frameBuf returns a payload buffer of the given length, drawn from
// the graph's free list when a recycled buffer fits, so steady-state
// demultiplexing is allocation-free after the first timesteps. The
// graph index comes off the wire, so it is bounds-checked here (the
// malformed-frame error surfaces later in the edge lookup).
func (tr *transport) frameBuf(graph, length int) []byte {
	if graph >= 0 && graph < len(tr.free) {
		return tr.free[graph].Get(length)
	}
	return make([]byte, length)
}

// Recycle implements exec.Transport: consumed frame buffers return to
// the graph's free list for reuse by the demultiplexers.
func (tr *transport) Recycle(graph int, payload []byte) {
	if graph < 0 || graph >= len(tr.free) {
		return
	}
	tr.free[graph].Put(payload)
}

func (tr *transport) edge(graph, producer, consumer int) chan []byte {
	if graph < 0 || graph >= len(tr.edges) {
		return nil
	}
	byProd := tr.edges[graph][consumer]
	if byProd == nil {
		return nil
	}
	return byProd[producer]
}

// Remote reports whether the edge crosses a rank boundary.
func (tr *transport) Remote(graph, producer, consumer int) bool {
	return tr.edge(graph, producer, consumer) != nil
}

// Send frames the payload onto the producer rank's connection to the
// consumer's rank. Only the owning rank goroutine writes a given
// connection, so no locking is needed.
func (tr *transport) Send(fromRank, graph, producer, consumer int, payload []byte) error {
	toRank := exec.OwnerOf(consumer, tr.widths[graph], tr.ranks)
	conn := tr.out[fromRank][toRank]
	var header [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], uint32(graph))
	binary.LittleEndian.PutUint32(header[8:12], uint32(producer))
	binary.LittleEndian.PutUint32(header[12:16], uint32(consumer))
	if _, err := conn.Write(header[:]); err != nil {
		return fmt.Errorf("tcp: write header: %w", err)
	}
	if _, err := conn.Write(payload); err != nil {
		return fmt.Errorf("tcp: write payload: %w", err)
	}
	return nil
}

// Recv blocks until the next frame on the edge arrives.
func (tr *transport) Recv(graph, producer, consumer int) []byte {
	return <-tr.edge(graph, producer, consumer)
}

// Err reports any asynchronous demultiplexer failure.
func (tr *transport) Err() error { return tr.errs.Err() }

// Close shuts down the mesh; demultiplexers exit on EOF.
func (tr *transport) Close() {
	for _, conns := range tr.out {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
}
