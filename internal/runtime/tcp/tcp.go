// Package tcp implements a hand-rolled distributed runtime: ranks
// communicate over real TCP connections with a length-prefixed wire
// protocol, rather than over in-process channels. It is the closest
// this repository gets to the paper's actual deployment model —
// separate address spaces joined by a network — and exercises
// connection establishment, framing, demultiplexing and flow control
// that the channel-based backends abstract away.
//
// Topology: a full mesh. Every ordered rank pair (s → r) gets one
// connection, written only by s and read by a demultiplexer goroutine
// at the process hosting r that routes frames to per-edge queues.
// Outbound payloads are batched: everything a rank sends to one peer
// within a timestep coalesces into a single multi-edge frame written
// with one writev at the timestep boundary (exec.Flusher), so at fine
// granularity the per-task syscall cost amortizes across the whole
// step. The mesh is constructible in two shapes:
//
//   - In-process (the "tcp" backend): one process hosts every rank on
//     loopback. Scheduling is exactly the p2p backend's eager rank
//     policy — this package contributes only the exec.Transport adapter
//     that swaps the in-process fabric for the wire, plugged into the
//     shared exec.RankEngine via OpenTransport.
//   - Multi-process (cluster mode): each process hosts a contiguous
//     rank span of a plan built with exec.BuildRankPlanLocal, and
//     NewMeshTransport wires the spans together from an externally
//     supplied rank→address map (internal/cluster drives this).
//
// The per-edge queues are built from the RankPlan's cross-rank edge
// list, the same enumeration the fabric uses, so both transports agree
// exactly on which edges exist.
package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
	"taskbench/internal/runtime/p2p"
)

func init() {
	runtime.Register("tcp", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "tcp" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "tcp",
		Analog:      "MPI p2p over sockets",
		Paradigm:    "message passing (real network transport)",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "full TCP mesh; length-prefixed frames; per-edge demux; cluster-capable",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	return exec.RunRanks(app, &policy{})
}

// RankPolicy implements runtime.RankBacked.
func (rt) RankPolicy() exec.RankPolicy { return &policy{} }

// policy is the p2p eager rank discipline over a wire transport: the
// scheduling paradigm is inherited wholesale from p2p; only the
// messaging substrate differs.
type policy struct {
	p2p.Policy
}

// OpenTransport implements exec.RankTransporter: it dials the full
// loopback mesh and builds the per-edge frame queues from the plan's
// cross-rank edge lists. The engine owns (and Closes) the transport,
// so a reused RankSession pays connection establishment once per
// configuration instead of per run.
func (*policy) OpenTransport(plan *exec.RankPlan) (exec.Transport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("tcp: listen: %w", err)
	}
	addrs := make([]string, plan.Ranks)
	for r := range addrs {
		addrs[r] = ln.Addr().String()
	}
	return NewMeshTransport(plan, Topology{
		Local:    exec.Span{Lo: 0, Hi: plan.Ranks},
		Addrs:    addrs,
		Listener: ln,
	})
}

// frameHeader is the fixed wire header preceding every payload:
// payload length, graph index, producer column, consumer column. A
// batched frame reuses the same 16 bytes with the graph field set to
// batchMarker: body length, marker, edge count, descriptor-section
// length.
const frameHeaderSize = 16

// MaxFrameLen bounds the length field of any frame (single payload or
// batch body). A corrupt or hostile length prefix beyond it tears the
// mesh down cleanly instead of driving an unbounded allocation. Far
// above any real payload: a graph column's output is OutputBytes,
// typically bytes to megabytes.
const MaxFrameLen = 1 << 28

// batchMarker in the header's graph field marks a batched frame. Real
// graph indices are small (one per task graph of an app), so the
// all-ones value can never collide.
const batchMarker = 0xFFFFFFFF

// descSize is the bytes per packed edge descriptor in a batch body:
// payload length, graph, producer, consumer — the same four fields a
// single-payload header carries.
const descSize = 16

// flushBytes caps how much payload a pending batch may accumulate
// before it is written out mid-step. Batches normally flush at
// timestep boundaries (exec.Flusher); the cap bounds buffering when a
// rank owns many wide columns.
const flushBytes = 128 << 10

// handshakeMagic opens every connection of a mesh, so a stray dialer
// (or a peer from a different configuration) is rejected instead of
// silently feeding frames into the wrong queues.
const handshakeMagic = 0x54424d48 // "TBMH"

// handshakeSize is magic + config id + from rank + to rank.
const handshakeSize = 4 + 8 + 4 + 4

// edgeCap bounds per-edge buffering; the step-lockstep structure keeps
// at most a couple of outstanding frames per edge.
const edgeCap = 8

// Topology describes one process's slice of a rank mesh: which ranks it
// hosts, where every rank's hosting process listens, and the pre-bound
// listener inbound links arrive on. The in-process backend uses the
// degenerate topology (every rank local, every address the same
// loopback listener); cluster workers get theirs from the coordinator.
type Topology struct {
	// Local is the contiguous span of ranks hosted by this process; it
	// must match the plan's Local span.
	Local exec.Span
	// Addrs[r] is the data address of the process hosting rank r. Must
	// have one entry per rank of the plan.
	Addrs []string
	// Config identifies the session in connection handshakes, so
	// concurrent meshes sharing hosts cannot cross-wire. Both sides of
	// every connection must agree.
	Config uint64
	// Listener receives the mesh's inbound connections. The transport
	// takes ownership and closes it once the mesh is established.
	Listener net.Listener
	// Timeout bounds mesh establishment (dials, handshakes and the wait
	// for inbound links). Zero means no deadline — appropriate only for
	// the in-process mesh, where all dialers are local.
	Timeout time.Duration
	// Cancel, when non-nil, aborts establishment early if it closes —
	// the cluster worker wires its session's release signal here so a
	// coordinator-declared peer death interrupts a mesh still dialing
	// the dead process instead of waiting out the full Timeout.
	Cancel <-chan struct{}
	// NoBatch disables outbound payload batching: every Send writes its
	// own frame immediately instead of coalescing per-peer until the
	// timestep boundary. For measuring the batching win
	// (BenchmarkMeshSend) and debugging; production meshes batch.
	NoBatch bool
	// Wrap, when non-nil, wraps every outbound (dialed) mesh connection
	// after its handshake — the chaos harness's injection point for
	// data-plane throttling and resets. The wrapper must preserve Close
	// semantics; mesh teardown closes through it.
	Wrap func(net.Conn) net.Conn
}

// MeshTransport is the TCP mesh of one engine, implementing
// exec.Transport. A torn-down mesh (Close, Abort, or a connection
// failure) unblocks every pending Recv with a zero-length payload that
// fails validation at the consumer, so a dead peer process produces an
// error, never a hang.
type MeshTransport struct {
	ranks int
	local exec.Span
	// widths[g] is graph g's max width, for routing frames to the
	// consumer's rank.
	widths []int
	// out[from][to] is the connection written by rank `from`; only
	// rows in the local span are populated.
	out [][]net.Conn
	// pend[from][to] accumulates the batch of payloads rank `from` has
	// queued for rank `to` this timestep; only local rows are
	// populated, and each cell is touched only by rank `from`'s
	// goroutine (the same single-writer discipline as out).
	pend    [][]pendBatch
	noBatch bool
	// edges[graph][consumer][producer] receives demultiplexed
	// payloads at the consumer's rank.
	edges []map[int]map[int]chan []byte
	// free[graph] recycles consumed payload buffers back to the
	// demultiplexers, so steady-state frame reads stop allocating.
	free []exec.PayloadPool
	// errs records fatal transport errors from the demultiplexers.
	errs exec.ErrOnce

	// done is closed on teardown, releasing blocked Recvs and demux
	// handoffs.
	done     chan struct{}
	downOnce sync.Once
	// connMu guards conns, the registry of every dialed and accepted
	// connection. Teardown closes only through the registry — never by
	// walking out, which the constructor may still be populating when a
	// peer dies mid-establishment.
	connMu sync.Mutex
	conns  []net.Conn
	ln     net.Listener
}

// register records a connection for teardown. If the mesh is already
// torn down the connection is closed immediately and false returned.
func (tr *MeshTransport) register(conn net.Conn) bool {
	tr.connMu.Lock()
	defer tr.connMu.Unlock()
	select {
	case <-tr.done:
		conn.Close()
		return false
	default:
	}
	tr.conns = append(tr.conns, conn)
	return true
}

// NewMeshTransport builds this process's slice of the connection mesh
// — per-edge queues for every locally consumed cross-rank edge, one
// outbound connection per (local rank, peer rank) pair, and one
// demultiplexer per inbound connection — and blocks until every
// expected inbound link has arrived. All processes of a topology must
// construct their transports concurrently: each side's dials complete
// against the others' pre-bound listeners.
func NewMeshTransport(plan *exec.RankPlan, topo Topology) (*MeshTransport, error) {
	ranks := plan.Ranks
	app := plan.App
	if len(topo.Addrs) != ranks {
		return nil, fmt.Errorf("tcp: topology has %d addrs, want %d", len(topo.Addrs), ranks)
	}
	tr := &MeshTransport{
		ranks:   ranks,
		local:   topo.Local,
		widths:  make([]int, len(app.Graphs)),
		done:    make(chan struct{}),
		ln:      topo.Listener,
		noBatch: topo.NoBatch,
	}
	tr.pend = make([][]pendBatch, ranks)
	for from := topo.Local.Lo; from < topo.Local.Hi; from++ {
		tr.pend[from] = make([]pendBatch, ranks)
	}

	// Edge queues, from the plan's shared cross-rank edge enumeration
	// and the fabric's shared queue construction — but only for edges
	// this process consumes: a worker's queue memory scales with its
	// rank span, not the whole run. Sends to remote consumers need no
	// queue (Remote is ownership arithmetic and frames leave on a
	// connection), and inbound frames are only ever addressed to local
	// consumers.
	lists := make([][]exec.Edge, len(app.Graphs))
	tr.free = make([]exec.PayloadPool, len(app.Graphs))
	for gi, g := range app.Graphs {
		tr.widths[gi] = g.MaxWidth
		for _, e := range plan.Edges(gi) {
			owner := exec.OwnerOf(e.Consumer, g.MaxWidth, ranks)
			if owner >= topo.Local.Lo && owner < topo.Local.Hi {
				lists[gi] = append(lists[gi], e)
			}
		}
		tr.free[gi] = exec.NewEdgePool(len(lists[gi]), edgeCap)
	}
	tr.edges = exec.EdgeQueues(lists, edgeCap)

	var deadline time.Time
	if topo.Timeout > 0 {
		deadline = time.Now().Add(topo.Timeout)
	}

	// Every rank pair (s, r) with s ≠ r and r local produces one
	// inbound connection, regardless of which process hosts s.
	expect := topo.Local.Len() * (ranks - 1)
	tr.out = make([][]net.Conn, ranks)
	if topo.Cancel != nil {
		established := make(chan struct{})
		defer close(established)
		go func() {
			select {
			case <-topo.Cancel:
				tr.fail(fmt.Errorf("tcp: mesh establishment canceled"))
			case <-established:
			}
		}()
	}
	accepted := make(chan error, 1)
	go func() { accepted <- tr.acceptInbound(topo, expect, deadline) }()

	// Dial one connection per (local rank, peer rank) pair. Pairs
	// within this process still cross the loopback socket: the tcp
	// transport's contract is that every cross-rank payload pays real
	// framing and kernel-crossing costs.
	dialErr := func() error {
		for from := topo.Local.Lo; from < topo.Local.Hi; from++ {
			tr.out[from] = make([]net.Conn, ranks)
			for to := 0; to < ranks; to++ {
				if from == to {
					continue
				}
				conn, err := tr.dialUntil(topo.Addrs[to], deadline)
				if err != nil {
					return fmt.Errorf("tcp: dial rank %d (%s): %w", to, topo.Addrs[to], err)
				}
				if err := writeHandshake(conn, topo.Config, from, to); err != nil {
					conn.Close()
					return fmt.Errorf("tcp: handshake to rank %d: %w", to, err)
				}
				if topo.Wrap != nil {
					conn = topo.Wrap(conn)
				}
				if !tr.register(conn) {
					return fmt.Errorf("tcp: mesh torn down during establishment")
				}
				tr.out[from][to] = conn
			}
		}
		return nil
	}()
	if dialErr != nil {
		// Unblock the accept loop (it may be waiting, deadline-free in
		// the in-process topology, for links the failed dial phase will
		// never trigger) before collecting its verdict.
		topo.Listener.Close()
	}
	acceptErr := <-accepted
	topo.Listener.Close()
	if dialErr != nil || acceptErr != nil {
		tr.teardown()
		if dialErr != nil {
			return nil, dialErr
		}
		return nil, fmt.Errorf("tcp: accept: %w", acceptErr)
	}
	return tr, nil
}

// acceptInbound accepts connections until the expected number of mesh
// links have presented valid handshakes, one demultiplexer per link.
// Connections that are not mesh links — port scans, health probes,
// peers of a different configuration — are closed and ignored rather
// than failing establishment: on a real multi-host cluster the
// advertised data port sees unrelated traffic.
func (tr *MeshTransport) acceptInbound(topo Topology, expect int, deadline time.Time) error {
	if dl, ok := topo.Listener.(interface{ SetDeadline(time.Time) error }); ok && !deadline.IsZero() {
		dl.SetDeadline(deadline)
	}
	for linked := 0; linked < expect; {
		conn, err := topo.Listener.Accept()
		if err != nil {
			return err
		}
		// A silent stray connection must not stall the loop until the
		// whole establishment deadline; give each handshake a short
		// budget of its own.
		hsDeadline := time.Now().Add(10 * time.Second)
		if !deadline.IsZero() && deadline.Before(hsDeadline) {
			hsDeadline = deadline
		}
		conn.SetReadDeadline(hsDeadline)
		config, _, to, err := readHandshake(conn)
		if err != nil || config != topo.Config || to < topo.Local.Lo || to >= topo.Local.Hi {
			conn.Close()
			continue
		}
		conn.SetReadDeadline(time.Time{})
		if !tr.register(conn) {
			return fmt.Errorf("mesh torn down during establishment")
		}
		go tr.demux(conn)
		linked++
	}
	return nil
}

// dialUntil dials addr, retrying in bounded attempts until the
// deadline: during concurrent mesh establishment a peer's listener is
// bound before its address is published, so refusals are transient
// only if the peer died — which the deadline (or a cancellation, via
// the transport's teardown) converts into an error. Attempts are kept
// short so a cancellation mid-dial is noticed within half a second,
// not at the deadline.
func (tr *MeshTransport) dialUntil(addr string, deadline time.Time) (net.Conn, error) {
	for {
		select {
		case <-tr.done:
			return nil, fmt.Errorf("mesh torn down")
		default:
		}
		timeout := 10 * time.Second
		if !deadline.IsZero() {
			timeout = min(500*time.Millisecond, time.Until(deadline))
			if timeout <= 0 {
				return nil, fmt.Errorf("deadline exceeded")
			}
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if !deadline.IsZero() && time.Now().Add(50*time.Millisecond).Before(deadline) {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		return nil, err
	}
}

func writeHandshake(conn net.Conn, config uint64, from, to int) error {
	var buf [handshakeSize]byte
	binary.LittleEndian.PutUint32(buf[0:4], handshakeMagic)
	binary.LittleEndian.PutUint64(buf[4:12], config)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(from))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(to))
	_, err := conn.Write(buf[:])
	return err
}

func readHandshake(conn net.Conn) (config uint64, from, to int, err error) {
	var buf [handshakeSize]byte
	if _, err = io.ReadFull(conn, buf[:]); err != nil {
		return 0, 0, 0, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != handshakeMagic {
		return 0, 0, 0, fmt.Errorf("bad handshake magic")
	}
	config = binary.LittleEndian.Uint64(buf[4:12])
	from = int(int32(binary.LittleEndian.Uint32(buf[12:16])))
	to = int(int32(binary.LittleEndian.Uint32(buf[16:20])))
	return config, from, to, nil
}

// demux reads frames from one connection and routes them to edge
// queues. The connection is read through a bufio.Reader, so one read
// syscall typically drains several small frames. A read failure while
// the mesh is still live means a peer process died mid-run; the whole
// mesh is torn down so blocked ranks unwedge and surface the error
// instead of hanging. Malformed frames — oversized lengths, headers
// that do not add up — also tear the mesh down: framing is
// self-inflicted, so a bad header means the stream is unrecoverably
// desynchronized.
//
//taskbench:hotpath
func (tr *MeshTransport) demux(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10) //taskbench:allocok one-time per-connection setup, before the loop
	var header [frameHeaderSize]byte
	var desc []byte // reusable batch descriptor scratch
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			tr.fail(fmt.Errorf("tcp: peer connection lost: %w", err))
			return
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		if length > MaxFrameLen {
			tr.fail(fmt.Errorf("tcp: frame length %d exceeds limit %d", length, MaxFrameLen))
			return
		}
		if binary.LittleEndian.Uint32(header[4:8]) == batchMarker {
			count := binary.LittleEndian.Uint32(header[8:12])
			descLen := binary.LittleEndian.Uint32(header[12:16])
			if uint64(descLen) != uint64(count)*descSize || descLen > length {
				tr.fail(fmt.Errorf("tcp: malformed batch header (%d edges, %d descriptor bytes, %d body)",
					count, descLen, length))
				return
			}
			if cap(desc) < int(descLen) {
				desc = make([]byte, descLen) //taskbench:allocok descriptor scratch grows to its high-water mark, then reuses
			}
			desc = desc[:descLen]
			if _, err := io.ReadFull(br, desc); err != nil {
				tr.fail(fmt.Errorf("tcp: read batch descriptors: %w", err))
				return
			}
			body := int(length) - int(descLen)
			for k := 0; k < int(count); k++ {
				d := desc[k*descSize : (k+1)*descSize]
				plen := int(binary.LittleEndian.Uint32(d[0:4]))
				if plen > body {
					tr.fail(fmt.Errorf("tcp: batch payloads overrun body by %d bytes", plen-body))
					return
				}
				body -= plen
				if !tr.deliver(br, d[4:], plen) {
					return
				}
			}
			if body != 0 {
				tr.fail(fmt.Errorf("tcp: batch body has %d trailing bytes", body))
				return
			}
			continue
		}
		if !tr.deliver(br, header[4:], int(length)) {
			return
		}
	}
}

// deliver reads one payload of plen bytes from br into a recycled
// buffer and routes it to the edge identified by the 12 bytes of
// route: graph, producer, consumer. It returns false when the demux
// loop must stop (read failure, unknown edge, or teardown), having
// already failed the mesh where that is warranted.
//
//taskbench:hotpath
func (tr *MeshTransport) deliver(br *bufio.Reader, route []byte, plen int) bool {
	graph := int(int32(binary.LittleEndian.Uint32(route[0:4])))
	producer := int(int32(binary.LittleEndian.Uint32(route[4:8])))
	consumer := int(int32(binary.LittleEndian.Uint32(route[8:12])))
	payload := tr.frameBuf(graph, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		tr.fail(fmt.Errorf("tcp: read payload: %w", err))
		return false
	}
	ch := tr.edge(graph, producer, consumer)
	if ch == nil {
		tr.fail(fmt.Errorf("tcp: frame for unknown edge g%d %d→%d", graph, producer, consumer))
		return false
	}
	select {
	case ch <- payload:
		return true
	case <-tr.done:
		return false
	}
}

// fail records a transport error and tears the mesh down, unless the
// mesh is already being torn down (in which case connection errors are
// the expected echo of our own Close).
func (tr *MeshTransport) fail(err error) {
	select {
	case <-tr.done:
		return
	default:
	}
	tr.errs.Set(err)
	tr.teardown()
}

// Abort tears the mesh down with the given error, unblocking every
// pending Recv and failing subsequent Sends. The cluster worker calls
// it when the coordinator declares a peer dead while this process's
// connections still look healthy (e.g. a stalled peer).
func (tr *MeshTransport) Abort(err error) { tr.fail(err) }

func (tr *MeshTransport) teardown() {
	tr.downOnce.Do(func() {
		close(tr.done)
		tr.connMu.Lock()
		for _, c := range tr.conns {
			c.Close()
		}
		tr.connMu.Unlock()
		if tr.ln != nil {
			tr.ln.Close()
		}
	})
}

// frameBuf returns a payload buffer of the given length, drawn from
// the graph's free list when a recycled buffer fits, so steady-state
// demultiplexing is allocation-free after the first timesteps. The
// graph index comes off the wire, so it is bounds-checked here (the
// malformed-frame error surfaces later in the edge lookup).
//
//taskbench:hotpath
func (tr *MeshTransport) frameBuf(graph, length int) []byte {
	if graph >= 0 && graph < len(tr.free) {
		return tr.free[graph].Get(length)
	}
	return make([]byte, length) //taskbench:allocok unknown-graph fallback; the frame fails the edge lookup right after
}

// Recycle implements exec.Transport: consumed frame buffers return to
// the graph's free list for reuse by the demultiplexers.
//
//taskbench:hotpath
func (tr *MeshTransport) Recycle(graph int, payload []byte) {
	if graph < 0 || graph >= len(tr.free) || payload == nil {
		return
	}
	tr.free[graph].Put(payload)
}

func (tr *MeshTransport) edge(graph, producer, consumer int) chan []byte {
	if graph < 0 || graph >= len(tr.edges) {
		return nil
	}
	byProd := tr.edges[graph][consumer]
	if byProd == nil {
		return nil
	}
	return byProd[producer]
}

// Remote reports whether the edge crosses a rank boundary. It is pure
// ownership arithmetic — it cannot use queue presence like the fabric,
// because this process only allocates queues for its own consumers,
// while SendOutputs asks about edges whose consumer may live anywhere.
func (tr *MeshTransport) Remote(graph, producer, consumer int) bool {
	w := tr.widths[graph]
	return exec.OwnerOf(producer, w, tr.ranks) != exec.OwnerOf(consumer, w, tr.ranks)
}

// pendBatch accumulates one rank pair's outbound payloads between
// flushes: packed edge descriptors, zero-copy references to the
// payload buffers, and a reusable iovec. The references stay valid
// until the flush because payload rows are double-buffered — a buffer
// sent at timestep t is not rewritten until t+2, and the batch flushes
// at the t/t+1 boundary (exec.Flusher) or sooner (flushBytes).
type pendBatch struct {
	desc     []byte
	payloads [][]byte
	bytes    int
	iov      net.Buffers
}

// Send queues the payload for the consumer's rank, coalescing
// everything headed to the same peer this timestep into one batched
// frame written at the flush point. Only the owning rank goroutine
// writes a given connection (or touches its pending batches), so no
// locking is needed. With batching disabled the frame still leaves in
// a single writev — header and payload in one syscall, not two.
//
//taskbench:hotpath
func (tr *MeshTransport) Send(fromRank, graph, producer, consumer int, payload []byte) error {
	toRank := exec.OwnerOf(consumer, tr.widths[graph], tr.ranks)
	conn := tr.out[fromRank][toRank]
	if conn == nil {
		return fmt.Errorf("tcp: no connection rank %d→%d (mesh torn down?)", fromRank, toRank)
	}
	if tr.noBatch {
		var header [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(header[4:8], uint32(graph))
		binary.LittleEndian.PutUint32(header[8:12], uint32(producer))
		binary.LittleEndian.PutUint32(header[12:16], uint32(consumer))
		iov := net.Buffers{header[:], payload}
		if _, err := iov.WriteTo(conn); err != nil {
			return fmt.Errorf("tcp: write frame: %w", err)
		}
		return nil
	}
	p := &tr.pend[fromRank][toRank]
	p.desc = binary.LittleEndian.AppendUint32(p.desc, uint32(len(payload)))
	p.desc = binary.LittleEndian.AppendUint32(p.desc, uint32(graph))
	p.desc = binary.LittleEndian.AppendUint32(p.desc, uint32(producer))
	p.desc = binary.LittleEndian.AppendUint32(p.desc, uint32(consumer))
	p.payloads = append(p.payloads, payload) //taskbench:allocok grows to the per-step batch high-water mark, then reuses
	p.bytes += len(payload)
	if p.bytes >= flushBytes {
		return tr.flushTo(fromRank, toRank)
	}
	return nil
}

// Flush implements exec.Flusher: it writes out every batch rank has
// pending, one writev per peer with queued payloads. The engine calls
// it at each timestep boundary on the rank's own goroutine.
//
//taskbench:hotpath
func (tr *MeshTransport) Flush(rank int) error {
	if tr.noBatch || rank < tr.local.Lo || rank >= tr.local.Hi {
		return nil
	}
	for to := 0; to < tr.ranks; to++ {
		if to == rank {
			continue
		}
		if err := tr.flushTo(rank, to); err != nil {
			return err
		}
	}
	return nil
}

// flushTo writes the pending batch for one rank pair as a single
// writev: batch header, descriptor section, then every payload,
// borrowed zero-copy from the senders. Called only from rank `from`'s
// goroutine.
//
//taskbench:hotpath
func (tr *MeshTransport) flushTo(from, to int) error {
	p := &tr.pend[from][to]
	if len(p.payloads) == 0 {
		return nil
	}
	conn := tr.out[from][to]
	var header [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(p.desc)+p.bytes))
	binary.LittleEndian.PutUint32(header[4:8], batchMarker)
	binary.LittleEndian.PutUint32(header[8:12], uint32(len(p.payloads)))
	binary.LittleEndian.PutUint32(header[12:16], uint32(len(p.desc)))
	iov := append(p.iov[:0], header[:], p.desc) //taskbench:allocok iovec grows to its high-water mark, then reuses
	iov = append(iov, p.payloads...)            //taskbench:allocok iovec grows to its high-water mark, then reuses
	// WriteTo consumes the Buffers slice it is invoked on (advancing it
	// as vectors drain), so keep our own reference to the backing array
	// for the next flush.
	p.iov = iov[:0]
	p.desc = p.desc[:0]
	p.payloads = p.payloads[:0]
	p.bytes = 0
	if _, err := iov.WriteTo(conn); err != nil {
		return fmt.Errorf("tcp: write batch rank %d→%d: %w", from, to, err)
	}
	return nil
}

// Recv blocks until the next frame on the edge arrives — or the mesh
// is torn down, in which case it returns a nil payload that fails
// validation at the consumer. Keeping the protocol flowing after a
// failure is what turns a killed peer process into a clean job error
// instead of a hang.
//
//taskbench:hotpath
func (tr *MeshTransport) Recv(graph, producer, consumer int) []byte {
	select {
	case payload := <-tr.edge(graph, producer, consumer):
		return payload
	case <-tr.done:
		return nil
	}
}

// Err reports any asynchronous demultiplexer failure.
func (tr *MeshTransport) Err() error { return tr.errs.Err() }

// Close shuts down the mesh; demultiplexers exit on the closed
// connections.
func (tr *MeshTransport) Close() { tr.teardown() }
