// Package tcp implements a hand-rolled distributed runtime: ranks
// communicate over real TCP connections (loopback) with a
// length-prefixed wire protocol, rather than over in-process channels.
// It is the closest this repository gets to the paper's actual
// deployment model — separate address spaces joined by a network — and
// exercises connection establishment, framing, demultiplexing and
// flow control that the channel-based backends abstract away.
//
// Topology: a full mesh. Every ordered rank pair (s → r) gets one
// connection, written only by s and read by a demultiplexer goroutine
// at r that routes frames to per-edge queues. Execution then follows
// the MPI point-to-point structure of the p2p backend.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("tcp", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "tcp" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "tcp",
		Analog:      "MPI p2p over sockets",
		Paradigm:    "message passing (real network transport)",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "full TCP mesh on loopback; length-prefixed frames; per-edge demux",
	}
}

// frameHeader is the fixed wire header preceding every payload:
// payload length, graph index, producer column, consumer column.
const frameHeaderSize = 16

// transport is the TCP mesh of one run.
type transport struct {
	ranks int
	// out[from][to] is the connection written by rank `from`.
	out [][]net.Conn
	// edges[graph][consumer][producer] receives demultiplexed
	// payloads at the consumer's rank.
	edges []map[int]map[int]chan []byte
	// readers signal fatal transport errors.
	errs *exec.ErrOnce
}

// edgeCap bounds per-edge buffering; the step-lockstep structure keeps
// at most a couple of outstanding frames per edge.
const edgeCap = 8

// newTransport builds the connection mesh and edge queues and starts
// one demultiplexer per incoming connection.
func newTransport(app *core.App, ranks int, errs *exec.ErrOnce) (*transport, error) {
	tr := &transport{ranks: ranks, errs: errs}

	// Edge queues, mirroring exec.NewFabric.
	tr.edges = make([]map[int]map[int]chan []byte, len(app.Graphs))
	for gi, g := range app.Graphs {
		edges := map[int]map[int]chan []byte{}
		for dset := 0; dset < g.MaxDependenceSets(); dset++ {
			for i := 0; i < g.MaxWidth; i++ {
				consRank := exec.OwnerOf(i, g.MaxWidth, ranks)
				g.Dependencies(dset, i).ForEach(func(j int) {
					if j < 0 || j >= g.MaxWidth || exec.OwnerOf(j, g.MaxWidth, ranks) == consRank {
						return
					}
					byProd := edges[i]
					if byProd == nil {
						byProd = map[int]chan []byte{}
						edges[i] = byProd
					}
					if _, ok := byProd[j]; !ok {
						byProd[j] = make(chan []byte, edgeCap)
					}
				})
			}
		}
		tr.edges[gi] = edges
	}

	// One listener per rank, then a full dial mesh. The dialer
	// identifies itself with a one-int32 handshake.
	listeners := make([]net.Listener, ranks)
	for r := 0; r < ranks; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("tcp: listen: %w", err)
		}
		listeners[r] = ln
	}
	tr.out = make([][]net.Conn, ranks)
	for r := range tr.out {
		tr.out[r] = make([]net.Conn, ranks)
	}

	accepted := make(chan error, ranks)
	for r := 0; r < ranks; r++ {
		go func(r int) {
			for peer := 0; peer < ranks-1; peer++ {
				conn, err := listeners[r].Accept()
				if err != nil {
					accepted <- err
					return
				}
				var from int32
				if err := binary.Read(conn, binary.LittleEndian, &from); err != nil {
					accepted <- err
					return
				}
				go tr.demux(conn)
			}
			accepted <- nil
		}(r)
	}
	for from := 0; from < ranks; from++ {
		for to := 0; to < ranks; to++ {
			if from == to {
				continue
			}
			conn, err := net.Dial("tcp", listeners[to].Addr().String())
			if err != nil {
				return nil, fmt.Errorf("tcp: dial rank %d: %w", to, err)
			}
			if err := binary.Write(conn, binary.LittleEndian, int32(from)); err != nil {
				return nil, fmt.Errorf("tcp: handshake: %w", err)
			}
			tr.out[from][to] = conn
		}
	}
	for r := 0; r < ranks; r++ {
		if err := <-accepted; err != nil {
			return nil, fmt.Errorf("tcp: accept: %w", err)
		}
		listeners[r].Close()
	}
	return tr, nil
}

// demux reads frames from one connection and routes them to edge
// queues until the peer closes the connection.
func (tr *transport) demux(conn net.Conn) {
	var header [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			if err != io.EOF {
				tr.errs.Set(fmt.Errorf("tcp: read header: %w", err))
			}
			return
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		graph := int32(binary.LittleEndian.Uint32(header[4:8]))
		producer := int32(binary.LittleEndian.Uint32(header[8:12]))
		consumer := int32(binary.LittleEndian.Uint32(header[12:16]))
		payload := make([]byte, length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			tr.errs.Set(fmt.Errorf("tcp: read payload: %w", err))
			return
		}
		ch := tr.edge(int(graph), int(producer), int(consumer))
		if ch == nil {
			tr.errs.Set(fmt.Errorf("tcp: frame for unknown edge g%d %d→%d", graph, producer, consumer))
			return
		}
		ch <- payload
	}
}

func (tr *transport) edge(graph, producer, consumer int) chan []byte {
	if graph < 0 || graph >= len(tr.edges) {
		return nil
	}
	byProd := tr.edges[graph][consumer]
	if byProd == nil {
		return nil
	}
	return byProd[producer]
}

// remote reports whether the edge crosses a rank boundary.
func (tr *transport) remote(graph, producer, consumer int) bool {
	return tr.edge(graph, producer, consumer) != nil
}

// send frames the payload onto the producer rank's connection to the
// consumer's rank. Only the owning rank goroutine writes a given
// connection, so no locking is needed.
func (tr *transport) send(fromRank int, graph, producer, consumer int, payload []byte, width int) error {
	toRank := exec.OwnerOf(consumer, width, tr.ranks)
	conn := tr.out[fromRank][toRank]
	var header [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], uint32(graph))
	binary.LittleEndian.PutUint32(header[8:12], uint32(producer))
	binary.LittleEndian.PutUint32(header[12:16], uint32(consumer))
	if _, err := conn.Write(header[:]); err != nil {
		return fmt.Errorf("tcp: write header: %w", err)
	}
	if _, err := conn.Write(payload); err != nil {
		return fmt.Errorf("tcp: write payload: %w", err)
	}
	return nil
}

// recv blocks until the next frame on the edge arrives.
func (tr *transport) recv(graph, producer, consumer int) []byte {
	return <-tr.edge(graph, producer, consumer)
}

// close shuts down the mesh; demultiplexers exit on EOF.
func (tr *transport) close() {
	for _, conns := range tr.out {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	ranks := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	tr, err := newTransport(app, ranks, &firstErr)
	if err != nil {
		return core.RunStats{}, err
	}
	defer tr.close()
	return exec.Measure(app, ranks, func() error {
		done := make(chan struct{})
		for r := 0; r < ranks; r++ {
			go func(rank int) {
				defer func() { done <- struct{}{} }()
				runRank(app, tr, rank, ranks, &firstErr)
			}(r)
		}
		for r := 0; r < ranks; r++ {
			<-done
		}
		return firstErr.Err()
	})
}

type rankState struct {
	g       *core.Graph
	span    exec.Span
	rows    *exec.Rows
	scratch []*kernels.Scratch
}

func runRank(app *core.App, tr *transport, rank, ranks int, firstErr *exec.ErrOnce) {
	states := make([]*rankState, len(app.Graphs))
	maxSteps := 0
	for gi, g := range app.Graphs {
		span := exec.BlockAssign(g.MaxWidth, ranks)[rank]
		st := &rankState{g: g, span: span, rows: exec.NewRows(g.MaxWidth, g.OutputBytes)}
		st.scratch = make([]*kernels.Scratch, g.MaxWidth)
		for i := span.Lo; i < span.Hi; i++ {
			st.scratch[i] = kernels.NewScratch(g.ScratchBytes)
		}
		states[gi] = st
		if g.Timesteps > maxSteps {
			maxSteps = g.Timesteps
		}
	}

	var inputs [][]byte
	for t := 0; t < maxSteps; t++ {
		for gi, st := range states {
			g := st.g
			if t >= g.Timesteps {
				continue
			}
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			lo := max(st.span.Lo, off)
			hi := min(st.span.Hi, off+w)
			for i := lo; i < hi; i++ {
				inputs = inputs[:0]
				g.DependenciesForPoint(t, i).ForEach(func(dep int) {
					if dep >= st.span.Lo && dep < st.span.Hi {
						inputs = append(inputs, st.rows.Prev(dep))
					} else {
						inputs = append(inputs, tr.recv(gi, dep, i))
					}
				})
				out := st.rows.Cur(i)
				err := g.ExecutePoint(t, i, out, inputs, st.scratch[i], app.Validate && !firstErr.Failed())
				if err != nil {
					firstErr.Set(err)
					g.WriteOutput(t, i, out)
				}
				g.ReverseDependenciesForPoint(t, i).ForEach(func(cons int) {
					if tr.remote(gi, i, cons) {
						if err := tr.send(rank, gi, i, cons, out, g.MaxWidth); err != nil {
							firstErr.Set(err)
						}
					}
				})
			}
			st.rows.Flip()
		}
	}
}
