// Package runtime defines the interface every Task Bench backend
// implements, and a registry of the available backends.
//
// Each backend is the Go analog of one of the paper's 15 programming
// systems (Table 3): it executes arbitrary task graphs described by
// internal/core using a particular scheduling and communication
// paradigm (bulk-synchronous phases, point-to-point messages, actors,
// events, work stealing, dynamic task discovery, a centralized
// controller, ...). As in the paper, the system-specific code is thin —
// graph structure, kernels and validation all live in the core library —
// so every benchmark runs unchanged on every backend.
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime/exec"
)

// Runtime executes Task Bench applications under one scheduling
// paradigm.
type Runtime interface {
	// Name returns the registry name of the backend.
	Name() string
	// Info describes the backend's paradigm (paper Table 3).
	Info() Info
	// Run executes every graph of the app to completion, validating
	// all task inputs (unless app.Validate is false), and returns
	// timing statistics. Run reports an error if any task input fails
	// validation or the app cannot be executed.
	Run(app *core.App) (core.RunStats, error)
}

// PolicyBacked is implemented by the shared-memory DAG backends that
// run through the shared exec.Engine. Policy returns a fresh instance
// of the backend's scheduling policy, letting callers drive a reusable
// exec.Session directly — an METG sweep builds one Plan per
// configuration and reruns it at every measurement point instead of
// paying O(tasks) reconstruction per point.
type PolicyBacked interface {
	Policy() exec.Policy
}

// RankBacked is implemented by the rank-based message-passing backends
// that run through the shared exec.RankEngine (p2p, bsp, dtd, shard,
// ptg, hybrid, tcp). RankPolicy returns a fresh instance of the
// backend's rank policy, letting callers drive a reusable
// exec.RankSession directly — a distributed METG sweep builds one
// RankPlan (spans, cross-rank edges, fabric wiring) per configuration
// and reruns it at every measurement point.
type RankBacked interface {
	RankPolicy() exec.RankPolicy
}

// Info is the backend metadata rendered into the paper's Table 3/4
// analog by cmd/figures.
type Info struct {
	// Name is the registry name.
	Name string
	// Analog names the paper system this backend models.
	Analog string
	// Paradigm is the scheduling paradigm (actor model, task-based,
	// message passing, ...).
	Paradigm string
	// Parallelism is "explicit", "implicit" or "both".
	Parallelism string
	// Distributed reports whether the backend partitions work into
	// rank-like address spaces with message-based communication.
	Distributed bool
	// Async reports whether the backend overlaps communication with
	// computation (no global phase structure).
	Async bool
	// Notes captures salient implementation details.
	Notes string
}

var (
	regMu    sync.RWMutex
	registry = map[string]func() Runtime{}
)

// Register adds a backend factory under a unique name. Backends
// register themselves from init functions; Register panics on
// duplicates, which would be a programming error.
func Register(name string, factory func() Runtime) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("runtime: duplicate backend %q", name))
	}
	registry[name] = factory
}

// New instantiates a registered backend by name.
func New(name string) (Runtime, error) {
	regMu.RLock()
	factory, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runtime: unknown backend %q (have %v)", name, Names())
	}
	return factory(), nil
}

// Names returns the sorted names of all registered backends.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
