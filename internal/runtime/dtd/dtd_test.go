package dtd

import (
	"testing"

	"taskbench/internal/runtime"
	"taskbench/internal/runtime/runtimetest"
)

func TestConformanceDTD(t *testing.T) {
	runtimetest.Conformance(t, "dtd")
}

func TestConformanceShard(t *testing.T) {
	runtimetest.Conformance(t, "shard")
}

func TestRepeatDTD(t *testing.T) {
	runtimetest.Repeat(t, "dtd", 3)
}

func TestRepeatShard(t *testing.T) {
	runtimetest.Repeat(t, "shard", 3)
}

func TestInfoDistinguishesVariants(t *testing.T) {
	d, err := runtime.New("dtd")
	if err != nil {
		t.Fatal(err)
	}
	s, err := runtime.New("shard")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() == s.Name() || d.Info().Analog == s.Info().Analog {
		t.Errorf("dtd and shard are not distinguished: %+v vs %+v", d.Info(), s.Info())
	}
}

func TestFaultInjectionDTD(t *testing.T) {
	runtimetest.FaultInjection(t, "dtd")
}

func TestFaultInjectionShard(t *testing.T) {
	runtimetest.FaultInjection(t, "shard")
}
