package dtd

import (
	"testing"

	"taskbench/internal/runtime"
	"taskbench/internal/runtime/runtimetest"
)

func TestRankPolicyConformanceDTD(t *testing.T) {
	runtimetest.RankPolicyConformance(t, "dtd")
}

func TestRankPolicyConformanceShard(t *testing.T) {
	runtimetest.RankPolicyConformance(t, "shard")
}

func TestRepeatDTD(t *testing.T) {
	runtimetest.Repeat(t, "dtd", 3)
}

func TestRepeatShard(t *testing.T) {
	runtimetest.Repeat(t, "shard", 3)
}

func TestInfoDistinguishesVariants(t *testing.T) {
	d, err := runtime.New("dtd")
	if err != nil {
		t.Fatal(err)
	}
	s, err := runtime.New("shard")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() == s.Name() || d.Info().Analog == s.Info().Analog {
		t.Errorf("dtd and shard are not distinguished: %+v vs %+v", d.Info(), s.Info())
	}
}
