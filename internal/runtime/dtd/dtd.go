// Package dtd implements the PaRSEC dynamic-task-discovery / StarPU
// sequential-task-flow analog (paper §3.8, §3.12). The program is
// executed in SPMD fashion: every rank enumerates EVERY task of the
// graph in program order and dynamically checks, task by task, whether
// the task is local or communicates with local data. These dynamic
// checks scale with the total graph width and are the scalability
// bottleneck the paper highlights (§5.4).
//
// The package registers two backends:
//
//   - "dtd": full SPMD enumeration with per-task dynamic checks.
//   - "shard": the paper's manually optimized variant that skips
//     enumeration of tasks that cannot touch local data, completely
//     eliminating the dynamic checks.
package dtd

import (
	"sync/atomic"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("dtd", func() runtime.Runtime { return rt{shard: false} })
	runtime.Register("shard", func() runtime.Runtime { return rt{shard: true} })
}

type rt struct {
	shard bool
}

func (r rt) Name() string {
	if r.shard {
		return "shard"
	}
	return "dtd"
}

func (r rt) Info() runtime.Info {
	if r.shard {
		return runtime.Info{
			Name:        "shard",
			Analog:      "PaRSEC shard",
			Paradigm:    "task-based (manually sharded DTD)",
			Parallelism: "implicit",
			Distributed: true,
			Async:       false,
			Notes:       "enumerates only tasks adjacent to owned columns; no dynamic checks",
		}
	}
	return runtime.Info{
		Name:        "dtd",
		Analog:      "PaRSEC DTD / StarPU STF",
		Paradigm:    "task-based (dynamic task discovery)",
		Parallelism: "implicit",
		Distributed: true,
		Async:       false,
		Notes:       "SPMD enumeration of the whole graph with per-task dynamic checks",
	}
}

// checkSink keeps the dynamic-check work observable so the compiler
// cannot elide it.
var checkSink atomic.Int64

func (r rt) Run(app *core.App) (core.RunStats, error) {
	ranks := exec.WorkersFor(app)
	fabric := exec.NewFabric(app, ranks)
	var firstErr exec.ErrOnce
	return exec.Measure(app, ranks, func() error {
		done := make(chan struct{})
		for rank := 0; rank < ranks; rank++ {
			go func(rank int) {
				defer func() { done <- struct{}{} }()
				r.runRank(app, fabric, rank, ranks, &firstErr)
			}(rank)
		}
		for rank := 0; rank < ranks; rank++ {
			<-done
		}
		return firstErr.Err()
	})
}

type rankState struct {
	g       *core.Graph
	span    exec.Span
	rows    *exec.Rows
	scratch []*kernels.Scratch
}

func (r rt) runRank(app *core.App, fabric *exec.Fabric, rank, ranks int, firstErr *exec.ErrOnce) {
	states := make([]*rankState, len(app.Graphs))
	maxSteps := 0
	for gi, g := range app.Graphs {
		span := exec.BlockAssign(g.MaxWidth, ranks)[rank]
		st := &rankState{g: g, span: span, rows: exec.NewRows(g.MaxWidth, g.OutputBytes)}
		st.scratch = make([]*kernels.Scratch, g.MaxWidth)
		for i := span.Lo; i < span.Hi; i++ {
			st.scratch[i] = kernels.NewScratch(g.ScratchBytes)
		}
		states[gi] = st
		if g.Timesteps > maxSteps {
			maxSteps = g.Timesteps
		}
	}

	var inputs [][]byte
	var checks int64
	for t := 0; t < maxSteps; t++ {
		for gi, st := range states {
			g := st.g
			if t >= g.Timesteps {
				continue
			}
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)

			// Task discovery. DTD walks the full width; shard walks
			// only the owned block (plus nothing else — its sends are
			// discovered from the owned side via reverse deps).
			lo, hi := off, off+w
			if r.shard {
				lo = max(st.span.Lo, off)
				hi = min(st.span.Hi, off+w)
			}
			for i := lo; i < hi; i++ {
				owned := i >= st.span.Lo && i < st.span.Hi
				if !owned {
					// Dynamic check: would this remote task exchange
					// data with any column this rank owns? This scan
					// is the per-task cost that grows with graph
					// width and rank count.
					touches := false
					g.DependenciesForPoint(t, i).ForEach(func(dep int) {
						if dep >= st.span.Lo && dep < st.span.Hi {
							touches = true
						}
					})
					if touches {
						checks++
					}
					continue
				}
				inputs = fabric.GatherRankInputs(gi, g, t, i, st.span, st.rows.Prev, inputs)
				out := st.rows.Cur(i)
				err := g.ExecutePoint(t, i, out, inputs, st.scratch[i], app.Validate && !firstErr.Failed())
				if err != nil {
					firstErr.Set(err)
					g.WriteOutput(t, i, out)
				}
				fabric.SendRemoteOutputs(gi, g, t, i, out)
			}
			st.rows.Flip()
		}
	}
	checkSink.Add(checks)
}
