// Package dtd implements the PaRSEC dynamic-task-discovery / StarPU
// sequential-task-flow analog (paper §3.8, §3.12). The program is
// executed in SPMD fashion: every rank enumerates EVERY task of the
// graph in program order and dynamically checks, task by task, whether
// the task is local or communicates with local data. These dynamic
// checks scale with the total graph width and are the scalability
// bottleneck the paper highlights (§5.4).
//
// The package registers two backends:
//
//   - "dtd": full SPMD enumeration with per-task dynamic checks.
//   - "shard": the paper's manually optimized variant that skips
//     enumeration of tasks that cannot touch local data, completely
//     eliminating the dynamic checks.
package dtd

import (
	"sync/atomic"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("dtd", func() runtime.Runtime { return rt{shard: false} })
	runtime.Register("shard", func() runtime.Runtime { return rt{shard: true} })
}

type rt struct {
	shard bool
}

func (r rt) Name() string {
	if r.shard {
		return "shard"
	}
	return "dtd"
}

func (r rt) Info() runtime.Info {
	if r.shard {
		return runtime.Info{
			Name:        "shard",
			Analog:      "PaRSEC shard",
			Paradigm:    "task-based (manually sharded DTD)",
			Parallelism: "implicit",
			Distributed: true,
			Async:       false,
			Notes:       "enumerates only tasks adjacent to owned columns; no dynamic checks",
		}
	}
	return runtime.Info{
		Name:        "dtd",
		Analog:      "PaRSEC DTD / StarPU STF",
		Paradigm:    "task-based (dynamic task discovery)",
		Parallelism: "implicit",
		Distributed: true,
		Async:       false,
		Notes:       "SPMD enumeration of the whole graph with per-task dynamic checks",
	}
}

func (r rt) Run(app *core.App) (core.RunStats, error) {
	return exec.RunRanks(app, policy{shard: r.shard})
}

// RankPolicy implements runtime.RankBacked.
func (r rt) RankPolicy() exec.RankPolicy { return policy{shard: r.shard} }

// checkSink keeps the dynamic-check work observable so the compiler
// cannot elide it.
var checkSink atomic.Int64

// policy is the SPMD discovery discipline. With shard=false every rank
// walks the full graph width and dynamically classifies each task;
// with shard=true discovery is pruned to the owned block (sends are
// discovered from the owned side via reverse dependencies), which is
// exactly the paper's manual optimization.
type policy struct {
	shard bool
}

func (policy) Layout(app *core.App) exec.RankLayout { return exec.FlatLayout(app) }

func (p policy) Step(rc *exec.RankCtx, t int) {
	var checks int64
	for gi := 0; gi < rc.Graphs(); gi++ {
		if !rc.Active(gi, t) {
			continue
		}
		g := rc.Graph(gi)
		span := rc.Span(gi)

		// Task discovery. DTD walks the full active width; shard walks
		// only the owned window.
		lo, hi := g.OffsetAtTimestep(t), g.OffsetAtTimestep(t)+g.WidthAtTimestep(t)
		if p.shard {
			lo, hi = rc.Window(gi, t)
		}
		for i := lo; i < hi; i++ {
			if i < span.Lo || i >= span.Hi {
				// Dynamic check: would this remote task exchange data
				// with any column this rank owns? This scan is the
				// per-task cost that grows with graph width and rank
				// count. The interval iterator keeps the check itself
				// allocation-free — the overhead measured here is the
				// discovery walk, not benchmark-injected garbage.
				touches := false
				deps := g.PointDeps(t, i)
				for iv, ok := deps.NextSpan(); ok; iv, ok = deps.NextSpan() {
					if iv.First < span.Hi && iv.Last >= span.Lo {
						touches = true
						break
					}
				}
				if touches {
					checks++
				}
				continue
			}
			rc.SendOutputs(gi, t, i, rc.Run(gi, t, i))
		}
		rc.Flip(gi)
	}
	if checks != 0 {
		// Skipped entirely by shard (which performs no checks), and
		// kept off the timed path for check-free steps.
		checkSink.Add(checks)
	}
}
