// Package serial implements the sequential reference backend: tasks
// execute one at a time in timestep order. It is the simplest possible
// Task Bench implementation, the correctness baseline for every other
// backend, and the single-worker endpoint for overhead comparisons.
package serial

import (
	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("serial", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "serial" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "serial",
		Analog:      "reference",
		Paradigm:    "sequential",
		Parallelism: "none",
		Distributed: false,
		Async:       false,
		Notes:       "correctness baseline; executes tasks in timestep order",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	return exec.Measure(app, 1, func() error {
		for _, g := range app.Graphs {
			if err := runGraph(g, app.Validate); err != nil {
				return err
			}
		}
		return nil
	})
}

func runGraph(g *core.Graph, validate bool) error {
	rows := exec.NewRows(g.MaxWidth, g.OutputBytes)
	scratch := make([]*kernels.Scratch, g.MaxWidth)
	for i := range scratch {
		scratch[i] = kernels.NewScratch(g.ScratchBytes)
	}
	var inputs [][]byte
	// Bind the method value once: creating it per task would allocate a
	// closure on the steady-state path.
	prev := rows.Prev
	for t := 0; t < g.Timesteps; t++ {
		off := g.OffsetAtTimestep(t)
		w := g.WidthAtTimestep(t)
		for i := off; i < off+w; i++ {
			inputs = exec.GatherInputs(g, t, i, prev, inputs)
			if err := g.ExecutePoint(t, i, rows.Cur(i), inputs, scratch[i], validate); err != nil {
				return err
			}
		}
		rows.Flip()
	}
	return nil
}
