package serial

import (
	"testing"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "serial")
}

func TestInfo(t *testing.T) {
	rt, err := runtime.New("serial")
	if err != nil {
		t.Fatal(err)
	}
	info := rt.Info()
	if info.Name != "serial" || info.Distributed || info.Async {
		t.Errorf("unexpected info %+v", info)
	}
	if rt.Name() != "serial" {
		t.Errorf("Name() = %q", rt.Name())
	}
}

func TestSerialIsSingleWorker(t *testing.T) {
	rt, _ := runtime.New("serial")
	app := core.NewApp(core.MustNew(core.Params{Timesteps: 3, MaxWidth: 4, Dependence: core.Stencil1D}))
	app.Workers = 16 // serial ignores the hint
	stats, err := rt.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 1 {
		t.Errorf("Workers = %d, want 1", stats.Workers)
	}
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "serial")
}
