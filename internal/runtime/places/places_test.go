package places

import (
	"testing"

	"taskbench/internal/core"
	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "places")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "places", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "places")
}

func TestDepSlot(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 3, MaxWidth: 8, Dependence: core.Stencil1D})
	// Task (1, 4) depends on {3, 4, 5}.
	for slot, dep := range []int{3, 4, 5} {
		if got := depSlot(g, 1, 4, dep); got != slot {
			t.Errorf("depSlot(dep=%d) = %d, want %d", dep, got, slot)
		}
	}
	if got := depSlot(g, 1, 4, 7); got != -1 {
		t.Errorf("depSlot(non-dep) = %d, want -1", got)
	}
}
