// Package places implements the X10 analog (paper §3.15): columns are
// partitioned over a small number of places, each place runs its
// activities on a single event loop, and cross-place data movement is
// an asyncCopy — the producer spawns an activity at the consumer's
// place that deposits the payload and decrements an atomic counter.
// When a task's counter reaches zero, its execution activity is
// enqueued at the owning place. References to remote rows are never
// dereferenced directly, honoring the PGAS discipline.
package places

import (
	"sync"
	"sync/atomic"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("places", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "places" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "places",
		Analog:      "X10",
		Paradigm:    "place-based PGAS",
		Parallelism: "explicit",
		Distributed: true,
		Async:       true,
		Notes:       "asyncCopy between places; atomic counters release activities",
	}
}

// place is one address space: a goroutine draining a queue of
// activities.
type place struct {
	mailbox *exec.Mailbox[func()]
}

func (p *place) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		activity, ok := p.mailbox.Recv()
		if !ok {
			return
		}
		activity()
	}
}

// at spawns an activity at the place (X10's `at (p) async`).
func (p *place) at(activity func()) { p.mailbox.Send(activity) }

// taskState tracks one pending task at its owning place.
type taskState struct {
	remaining atomic.Int32
	inputs    [][]byte // dependence order
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		nPlaces := workers
		ps := make([]*place, nPlaces)
		for i := range ps {
			ps[i] = &place{mailbox: exec.NewMailbox[func()]()}
		}
		var placeWG sync.WaitGroup
		for _, p := range ps {
			placeWG.Add(1)
			go p.run(&placeWG)
		}

		var remaining sync.WaitGroup
		remaining.Add(int(app.TotalTasks()))

		for gi, g := range app.Graphs {
			gi, g := gi, g
			rows := exec.NewRows(g.MaxWidth, g.OutputBytes)
			scratch := make([]*kernels.Scratch, g.MaxWidth)
			owner := make([]int, g.MaxWidth)
			for i := 0; i < g.MaxWidth; i++ {
				scratch[i] = kernels.NewScratch(g.ScratchBytes)
				owner[i] = exec.OwnerOf(i, g.MaxWidth, nPlaces)
			}

			// Pending-task table, owned (and only touched) by each
			// column's place event loop except for the atomic counter.
			pending := make([]map[int]*taskState, g.MaxWidth)
			for i := range pending {
				pending[i] = map[int]*taskState{}
			}

			// stateFor returns (creating on demand) the pending entry
			// for (t, i). Called only from place owner[i]'s loop.
			stateFor := func(t, i int) *taskState {
				st := pending[i][t]
				if st == nil {
					deps := g.DependenciesForPoint(t, i)
					st = &taskState{inputs: make([][]byte, deps.Count())}
					st.remaining.Store(int32(deps.Count()))
					pending[i][t] = st
				}
				return st
			}

			var execute func(t, i int, st *taskState)
			execute = func(t, i int, st *taskState) {
				delete(pending[i], t)
				out := make([]byte, g.OutputBytes)
				err := g.ExecutePoint(t, i, out, st.inputs, scratch[i], app.Validate && !firstErr.Failed())
				if err != nil {
					firstErr.Set(err)
					g.WriteOutput(t, i, out)
				}
				_ = rows // rows kept for symmetry; payloads travel via asyncCopy
				// asyncCopy the output into every consumer's place.
				g.ReverseDependenciesForPoint(t, i).ForEach(func(cons int) {
					payload := make([]byte, len(out))
					copy(payload, out)
					slot := depSlot(g, t+1, cons, i)
					target := ps[owner[cons]]
					target.at(func() {
						st := stateFor(t+1, cons)
						st.inputs[slot] = payload
						if st.remaining.Add(-1) == 0 {
							run := st
							ps[owner[cons]].at(func() { execute(t+1, cons, run) })
						}
					})
				})
				remaining.Done()
			}

			// Seed timestep 0 (and any task with no dependencies).
			for t := 0; t < g.Timesteps; t++ {
				off := g.OffsetAtTimestep(t)
				w := g.WidthAtTimestep(t)
				for i := off; i < off+w; i++ {
					if g.DependenciesForPoint(t, i).Count() > 0 {
						continue
					}
					t, i := t, i
					ps[owner[i]].at(func() { execute(t, i, stateFor(t, i)) })
				}
			}
			_ = gi
		}

		remaining.Wait()
		for _, p := range ps {
			p.mailbox.Close()
		}
		placeWG.Wait()
		return firstErr.Err()
	})
}

// depSlot returns the index of producer `dep` within the dependence
// enumeration of task (t, i), so asyncCopies land in validation order.
func depSlot(g *core.Graph, t, i, dep int) int {
	slot := 0
	found := -1
	g.DependenciesForPoint(t, i).ForEach(func(d int) {
		if d == dep {
			found = slot
		}
		slot++
	})
	return found
}
