package exec

import (
	"testing"

	"taskbench/internal/core"
)

func fabricApp(width int) *core.App {
	return core.NewApp(core.MustNew(core.Params{
		Timesteps: 4, MaxWidth: width, Dependence: core.Stencil1D, OutputBytes: 16,
	}))
}

func TestFabricRemoteEdges(t *testing.T) {
	app := fabricApp(8)
	f := NewFabric(app, 2) // ranks own [0,4) and [4,8)
	// The stencil crosses the boundary between columns 3 and 4.
	if !f.Remote(0, 3, 4) || !f.Remote(0, 4, 3) {
		t.Error("boundary edges not remote")
	}
	if f.Remote(0, 2, 3) || f.Remote(0, 5, 4) {
		t.Error("intra-rank edges marked remote")
	}
	if f.Remote(0, 0, 7) {
		t.Error("non-edge marked remote")
	}
}

func TestFabricSendCopies(t *testing.T) {
	app := fabricApp(8)
	f := NewFabric(app, 2)
	payload := []byte("0123456789abcdef")
	f.Send(0, 3, 4, payload)
	payload[0] = 'X' // producer reuses its buffer
	got := f.Recv(0, 3, 4)
	if string(got) != "0123456789abcdef" {
		t.Errorf("Recv = %q, want the pre-mutation copy", got)
	}
}

func TestFabricSingleRankHasNoEdges(t *testing.T) {
	app := fabricApp(8)
	f := NewFabric(app, 1)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if f.Remote(0, i, j) {
				t.Fatalf("edge %d→%d remote under one rank", i, j)
			}
		}
	}
}

func TestFabricGatherRankInputs(t *testing.T) {
	app := fabricApp(8)
	g := app.Graphs[0]
	f := NewFabric(app, 2)
	// Rank 0 computes task (1, 3): deps {2, 3, 4}; column 4 is remote.
	remote := make([]byte, g.OutputBytes)
	g.WriteOutput(0, 4, remote)
	f.Send(0, 4, 3, remote)

	local := map[int][]byte{}
	for _, c := range []int{2, 3} {
		buf := make([]byte, g.OutputBytes)
		g.WriteOutput(0, c, buf)
		local[c] = buf
	}
	inputs := f.GatherRankInputs(0, g, 1, 3, Span{Lo: 0, Hi: 4},
		func(i int) []byte { return local[i] }, nil)
	if len(inputs) != 3 {
		t.Fatalf("got %d inputs, want 3", len(inputs))
	}
	// Validate through the core library: order and contents must match.
	out := make([]byte, g.OutputBytes)
	if err := g.ExecutePoint(1, 3, out, inputs, nil, true); err != nil {
		t.Errorf("gathered inputs failed validation: %v", err)
	}
}
