package exec

import (
	"testing"

	"taskbench/internal/core"
)

func fabricApp(width int) *core.App {
	return core.NewApp(core.MustNew(core.Params{
		Timesteps: 4, MaxWidth: width, Dependence: core.Stencil1D, OutputBytes: 16,
	}))
}

func TestFabricRemoteEdges(t *testing.T) {
	app := fabricApp(8)
	f := NewFabric(app, 2) // ranks own [0,4) and [4,8)
	// The stencil crosses the boundary between columns 3 and 4.
	if !f.Remote(0, 3, 4) || !f.Remote(0, 4, 3) {
		t.Error("boundary edges not remote")
	}
	if f.Remote(0, 2, 3) || f.Remote(0, 5, 4) {
		t.Error("intra-rank edges marked remote")
	}
	if f.Remote(0, 0, 7) {
		t.Error("non-edge marked remote")
	}
}

func TestFabricSendCopies(t *testing.T) {
	app := fabricApp(8)
	f := NewFabric(app, 2)
	payload := []byte("0123456789abcdef")
	f.Send(0, 3, 4, payload)
	payload[0] = 'X' // producer reuses its buffer
	got := f.Recv(0, 3, 4)
	if string(got) != "0123456789abcdef" {
		t.Errorf("Recv = %q, want the pre-mutation copy", got)
	}
}

func TestFabricSingleRankHasNoEdges(t *testing.T) {
	app := fabricApp(8)
	f := NewFabric(app, 1)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if f.Remote(0, i, j) {
				t.Fatalf("edge %d→%d remote under one rank", i, j)
			}
		}
	}
}

func TestCrossEdgesMatchesFabric(t *testing.T) {
	app := fabricApp(8)
	g := app.Graphs[0]
	for _, ranks := range []int{1, 2, 3} {
		f := NewFabric(app, ranks)
		edges := map[Edge]int{}
		CrossEdges(g, ranks, func(producer, consumer int) {
			edges[Edge{Producer: producer, Consumer: consumer}]++
		})
		for e, n := range edges {
			if n != 1 {
				t.Errorf("ranks=%d: edge %+v enumerated %d times", ranks, e, n)
			}
			if OwnerOf(e.Producer, g.MaxWidth, ranks) == OwnerOf(e.Consumer, g.MaxWidth, ranks) {
				t.Errorf("ranks=%d: edge %+v does not cross a rank boundary", ranks, e)
			}
		}
		// The fabric must have exactly the enumerated edges.
		for i := 0; i < g.MaxWidth; i++ {
			for j := 0; j < g.MaxWidth; j++ {
				_, want := edges[Edge{Producer: j, Consumer: i}]
				if got := f.Remote(0, j, i); got != want {
					t.Errorf("ranks=%d: Remote(%d→%d) = %v, want %v", ranks, j, i, got, want)
				}
			}
		}
	}
}
