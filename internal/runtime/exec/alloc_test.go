package exec_test

// Allocation-regression tests for the steady-state task execution
// path. METG is a measurement of runtime overhead at vanishing task
// granularity, so every per-task heap allocation the benchmark itself
// performs pollutes the measurement: these tests pin the per-task
// allocation count of a warmed-up engine-backed run and a warmed-up
// rank-backed run at zero.
//
// Method: per-run allocations are fixedOverhead + tasks·perTask (the
// fixed part covers goroutine spawns, the stats struct, policy Init).
// Measuring two session sizes and differencing isolates perTask, which
// must be ~0. A small tolerance absorbs runtime-internal noise
// (occasional sync.Pool chain growth, stack growth).

import (
	"testing"
	"unsafe"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"

	_ "taskbench/internal/runtime/graphexec"
	_ "taskbench/internal/runtime/p2p"
)

// perTaskAllocBudget is the tolerated per-task allocation estimate.
// A real regression costs ≥1 alloc per task; noise amortized over the
// ~2000-task size delta stays far below this.
const perTaskAllocBudget = 0.05

func allocApp(steps int) *core.App {
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: steps, MaxWidth: 8, Dependence: core.Stencil1D, OutputBytes: 64,
	}))
	app.Workers = 4
	return app
}

func TestZeroAllocsPerTaskEngine(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless")
	}
	allocsAt := func(steps int) (float64, int64) {
		rt, err := runtime.New("graphexec")
		if err != nil {
			t.Fatal(err)
		}
		pb, ok := rt.(runtime.PolicyBacked)
		if !ok {
			t.Fatal("graphexec is not policy-backed")
		}
		app := allocApp(steps)
		sess := exec.NewSession(app, pb.Policy())
		var runErr error
		run := func() {
			_, runErr = sess.Run()
		}
		run() // warm: populate buffer pools and grow queues
		if runErr != nil {
			t.Fatal(runErr)
		}
		allocs := testing.AllocsPerRun(5, run)
		if runErr != nil {
			t.Fatal(runErr)
		}
		return allocs, app.TotalTasks()
	}
	smallAllocs, smallTasks := allocsAt(16)
	bigAllocs, bigTasks := allocsAt(272)
	perTask := (bigAllocs - smallAllocs) / float64(bigTasks-smallTasks)
	if perTask > perTaskAllocBudget {
		t.Errorf("engine steady state allocates %.3f allocs/task, want 0 (run allocs: %d tasks → %.0f, %d tasks → %.0f)",
			perTask, smallTasks, smallAllocs, bigTasks, bigAllocs)
	}
}

func TestZeroAllocsPerTaskRanks(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless")
	}
	allocsAt := func(steps int) (float64, int64) {
		rt, err := runtime.New("p2p")
		if err != nil {
			t.Fatal(err)
		}
		rb, ok := rt.(runtime.RankBacked)
		if !ok {
			t.Fatal("p2p is not rank-backed")
		}
		app := allocApp(steps)
		sess, err := exec.NewRankSession(app, rb.RankPolicy())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sess.Close)
		var runErr error
		run := func() {
			_, runErr = sess.Run()
		}
		run() // warm: populate the fabric's payload free lists
		if runErr != nil {
			t.Fatal(runErr)
		}
		allocs := testing.AllocsPerRun(5, run)
		if runErr != nil {
			t.Fatal(runErr)
		}
		return allocs, app.TotalTasks()
	}
	smallAllocs, smallTasks := allocsAt(16)
	bigAllocs, bigTasks := allocsAt(272)
	perTask := (bigAllocs - smallAllocs) / float64(bigTasks-smallTasks)
	if perTask > perTaskAllocBudget {
		t.Errorf("rank steady state allocates %.3f allocs/task, want 0 (run allocs: %d tasks → %.0f, %d tasks → %.0f)",
			perTask, smallTasks, smallAllocs, bigTasks, bigAllocs)
	}
}

// TestPlannedTaskPadding pins the false-sharing fix: task slots must
// tile in whole multiples of 128 bytes (two cache lines) so adjacent
// tasks' atomic counters never share a line.
func TestPlannedTaskPadding(t *testing.T) {
	var task exec.PlannedTask
	if size := unsafe.Sizeof(task); size%128 != 0 {
		t.Errorf("PlannedTask is %d bytes, want a multiple of 128", size)
	}
}
