package exec

import (
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"taskbench/internal/core"
)

// Engine executes a Plan under a pluggable scheduling Policy. It owns
// the parts every shared-memory DAG backend previously duplicated:
// the worker goroutines, the output-buffer table and its reference
// counting, first-error capture with validation short-circuiting,
// dependence-counter burn-down, and completion tracking. The Policy
// decides only where ready tasks wait and which worker runs them.
//
// An Engine may be reused: each Run re-initializes the policy, so a
// caller holding a Reset Plan can rerun it without reallocating the
// O(tasks) output table (see Session).
type Engine struct {
	plan      *Plan
	policy    Policy
	completer Completer // non-nil when policy propagates readiness itself
	workers   int
	pools     []*BufPool
	out       []*Buf
}

// NewEngine builds an engine over plan with the given policy and
// worker count.
func NewEngine(plan *Plan, policy Policy, workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	if compiler, ok := policy.(Compiler); ok {
		// Schedule compilation happens here, outside any timed region.
		compiler.Compile(plan)
	}
	completer, _ := policy.(Completer)
	return &Engine{
		plan:      plan,
		policy:    policy,
		completer: completer,
		workers:   workers,
		pools:     NewPools(plan.App),
		out:       make([]*Buf, len(plan.Tasks)),
	}
}

// Run executes every task of the plan once and returns the first
// validation error, if any. The plan's dependence counters burn down
// during the run (except under Completer policies, which may
// propagate readiness without touching them — graphexec's static
// wavefront never does); call Plan.Reset before running again rather
// than assuming drained counters. Even on error the whole DAG is
// executed (validation is skipped after the first failure), so the
// policy always sees a complete run.
func (e *Engine) Run(validate bool) error {
	plan := e.plan
	clear(e.out)

	var firstErr ErrOnce
	var remaining atomic.Int64
	remaining.Store(plan.TaskCount())

	e.policy.Init(plan, e.workers)
	if remaining.Load() == 0 {
		// Nothing to run (an app with no graphs): close immediately so
		// workers do not block forever waiting for a first task.
		e.policy.Close()
	}

	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			e.runWorker(self, validate, &firstErr, &remaining)
		}(w)
	}
	wg.Wait()
	return firstErr.Err()
}

// runWorker is one worker goroutine's task loop — the innermost hot
// path of every shared-memory DAG backend. At sub-100µs granularities
// any per-task allocation here shows up directly in the METG curve, so
// the gather buffer and the ready batch are reused across the whole
// run and only error paths construct values.
//
//taskbench:hotpath
func (e *Engine) runWorker(self int, validate bool, firstErr *ErrOnce, remaining *atomic.Int64) {
	plan := e.plan
	var inputs [][]byte
	ready := make([]int32, 0, ReadyBatch) //taskbench:allocok per-worker setup, before the loop
	for {
		ids, ok := e.policy.Pop(self)
		if !ok {
			return
		}
		if len(ids) == 0 {
			// Spinning policy with no work right now.
			stdruntime.Gosched()
			continue
		}
		for _, id := range ids {
			var err error
			inputs, err = plan.Execute(id, e.out, e.pools,
				validate && !firstErr.Failed(), inputs)
			if err != nil {
				firstErr.Set(err)
			}
			if e.completer != nil {
				e.completer.Complete(self, id)
			} else {
				ready = ready[:0]
				for _, cons := range plan.Tasks[id].Consumers {
					if plan.Tasks[cons].Counter.Add(-1) == 0 {
						ready = append(ready, cons) //taskbench:allocok bounded by cap(ReadyBatch) spills; amortized
					}
				}
				if len(ready) > 0 {
					e.policy.Push(self, ready)
				}
			}
			if remaining.Add(-1) == 0 {
				e.policy.Close()
			}
		}
	}
}

// Session couples an App with a reusable Plan and Engine so repeated
// runs of one configuration (an METG sweep measuring the same graph at
// shrinking kernel sizes) pay plan construction once instead of
// O(tasks) per measurement point. Callers may mutate the app's kernel
// configuration between runs; the DAG shape must stay fixed.
type Session struct {
	App     *core.App
	Plan    *Plan
	engine  *Engine
	workers int
}

// NewSession builds the app's plan (in parallel) and prepares an
// engine over it with the given policy.
func NewSession(app *core.App, policy Policy) *Session {
	workers := WorkersFor(app)
	plan := BuildPlan(app)
	return &Session{
		App:     app,
		Plan:    plan,
		engine:  NewEngine(plan, policy, workers),
		workers: workers,
	}
}

// Run resets the plan and executes it once, returning fresh statistics
// for the app's current kernel configuration.
func (s *Session) Run() (core.RunStats, error) {
	s.Plan.Reset()
	return Measure(s.App, s.workers, func() error {
		return s.engine.Run(s.App.Validate)
	})
}
