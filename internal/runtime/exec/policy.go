package exec

// ReadyBatch is the batch size policies use when moving ready tasks in
// and out of their queues. Batching pops and pushes in small slices
// amortizes one lock acquisition (or channel operation) over several
// tasks, cutting queue contention at small task granularities — the
// regime the paper's METG metric probes.
const ReadyBatch = 8

// FairShare sizes a pop batch: an equal share of the available work,
// at least one task, capped at ReadyBatch. Batches grow when work is
// plentiful (cutting lock traffic at small granularities) and shrink
// to one when work is scarce, so idle workers are not starved behind
// a hoarder.
func FairShare(avail, workers int) int {
	return min(max(avail/workers, 1), ReadyBatch)
}

// Policy is the scheduling discipline plugged into an Engine. The
// Engine owns everything every shared-memory DAG backend has in
// common — worker goroutines, first-error capture, payload buffer
// lifetime, dependence-counter burn-down and completion tracking — and
// delegates only the ready-queue discipline to the Policy. Each
// backend (taskpool, steal, events, graphexec, central) is one Policy
// implementation of a few dozen lines, mirroring how the paper keeps
// system-specific code thin over a shared core library.
//
// A Policy is used by one Engine at a time. Init is called at the
// start of every run and must fully reset internal state, so one
// Policy value can drive repeated runs of a Reset Plan.
type Policy interface {
	// Init prepares the policy for a run over plan with the given
	// worker count. The policy seeds its ready structure from
	// plan.Seeds (tasks whose dependence counters are already zero).
	Init(plan *Plan, workers int)

	// Push makes ids ready to run. worker identifies the calling
	// worker, letting locality-aware policies keep work local. The
	// slice is reused by the caller after Push returns; policies that
	// retain ids beyond the call must copy them.
	Push(worker int, ids []int32)

	// Pop returns the next batch of tasks for worker. A policy may
	// block until work arrives (queue- and channel-based policies) or
	// return an empty batch with ok=true to let the worker spin
	// (work-stealing policies). ok=false tells the worker to exit.
	// The returned slice is valid until the worker's next Pop.
	Pop(worker int) (ids []int32, ok bool)

	// Close is called exactly once per run, after the last task
	// completes. It must wake every blocked Pop; all subsequent Pops
	// report ok=false.
	Close()
}

// Compiler is an optional Policy extension for policies that derive
// immutable state from the plan (e.g. a compiled static schedule).
// NewEngine invokes it once at engine construction — outside any
// timed region — so Init stays cheap inside measured runs and every
// point of an METG sweep sees an already-compiled schedule.
type Compiler interface {
	Compile(plan *Plan)
}

// Completer is an optional Policy extension that takes over readiness
// propagation after each task completes. When a policy implements it,
// the Engine calls Complete instead of burning down the consumers'
// dependence counters itself. The events policy uses this to route
// completion through first-class Realm-style events; the graphexec
// policy uses it to advance a precompiled topological wavefront.
type Completer interface {
	// Complete records that worker finished task id. The policy is
	// responsible for making any newly runnable tasks available to
	// Pop.
	Complete(worker int, id int32)
}
