package exec

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"taskbench/internal/core"
)

func TestBlockAssignCoversWidth(t *testing.T) {
	f := func(widthRaw, ranksRaw uint8) bool {
		width := int(widthRaw)
		ranks := 1 + int(ranksRaw)%16
		spans := BlockAssign(width, ranks)
		if len(spans) != ranks {
			return false
		}
		covered := 0
		prev := 0
		for _, s := range spans {
			if s.Lo != prev || s.Hi < s.Lo {
				return false
			}
			covered += s.Len()
			prev = s.Hi
		}
		return covered == width && prev == width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockAssignBalance(t *testing.T) {
	spans := BlockAssign(10, 4)
	sizes := []int{spans[0].Len(), spans[1].Len(), spans[2].Len(), spans[3].Len()}
	for _, n := range sizes {
		if n < 2 || n > 3 {
			t.Errorf("unbalanced spans %v", sizes)
		}
	}
}

func TestOwnerOfMatchesBlockAssign(t *testing.T) {
	f := func(widthRaw, ranksRaw uint8) bool {
		width := 1 + int(widthRaw)%100
		ranks := 1 + int(ranksRaw)%16
		spans := BlockAssign(width, ranks)
		for i := 0; i < width; i++ {
			r := OwnerOf(i, width, ranks)
			if r < 0 || r >= ranks {
				return false
			}
			if i < spans[r].Lo || i >= spans[r].Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErrOnce(t *testing.T) {
	var e ErrOnce
	if e.Failed() || e.Err() != nil {
		t.Error("fresh ErrOnce reports failure")
	}
	e.Set(nil) // ignored
	if e.Failed() {
		t.Error("Set(nil) recorded a failure")
	}
	first := errors.New("first")
	e.Set(first)
	e.Set(errors.New("second"))
	if e.Err() != first {
		t.Errorf("Err = %v, want first error", e.Err())
	}
	if !e.Failed() {
		t.Error("Failed() = false after Set")
	}
}

func TestBarrierRendezvous(t *testing.T) {
	const n = 8
	const rounds = 50
	b := NewBarrier(n)
	var mu sync.Mutex
	counts := make([]int, rounds)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mu.Lock()
				counts[r]++
				mu.Unlock()
				if !b.Wait() {
					t.Error("barrier broken unexpectedly")
					return
				}
				// After the barrier, every participant must have
				// incremented this round's count.
				mu.Lock()
				if counts[r] != n {
					t.Errorf("round %d: count %d at barrier exit", r, counts[r])
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestBarrierBreak(t *testing.T) {
	b := NewBarrier(2)
	done := make(chan bool)
	go func() { done <- b.Wait() }()
	b.Break()
	if ok := <-done; ok {
		t.Error("Wait returned true after Break")
	}
	if b.Wait() {
		t.Error("Wait after Break returned true")
	}
}

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox[int]()
	for i := 0; i < 10; i++ {
		m.Send(i)
	}
	for i := 0; i < 10; i++ {
		v, ok := m.Recv()
		if !ok || v != i {
			t.Fatalf("Recv = %d, %v; want %d, true", v, ok, i)
		}
	}
}

func TestMailboxCloseDrains(t *testing.T) {
	m := NewMailbox[int]()
	m.Send(1)
	m.Close()
	if v, ok := m.Recv(); !ok || v != 1 {
		t.Errorf("Recv after close = %d, %v; want 1, true", v, ok)
	}
	if _, ok := m.Recv(); ok {
		t.Error("Recv on drained closed mailbox returned ok")
	}
}

func TestMailboxBlocksUntilSend(t *testing.T) {
	m := NewMailbox[string]()
	got := make(chan string)
	go func() {
		v, _ := m.Recv()
		got <- v
	}()
	m.Send("hello")
	if v := <-got; v != "hello" {
		t.Errorf("Recv = %q", v)
	}
}

func TestRowsDoubleBuffer(t *testing.T) {
	r := NewRows(4, 8)
	copy(r.Cur(2), []byte("abcdefgh"))
	r.Flip()
	if string(r.Prev(2)) != "abcdefgh" {
		t.Errorf("Prev after flip = %q", r.Prev(2))
	}
	copy(r.Cur(2), []byte("12345678"))
	r.Flip()
	if string(r.Prev(2)) != "12345678" || string(r.Cur(2)) != "abcdefgh" {
		t.Error("second flip did not swap buffers")
	}
}

func TestBufPoolRefCounting(t *testing.T) {
	p := NewBufPool(16)
	b := p.Get(3)
	data := &b.Data[0]
	b.Release()
	b.Release()
	// Still one reference: a fresh Get must NOT return the same buffer.
	b2 := p.Get(1)
	if &b2.Data[0] == data {
		t.Fatal("buffer recycled while still referenced")
	}
	b.Release() // now recycled
	b2.Release()
}

func TestWorkersFor(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 2, MaxWidth: 2})
	app := core.NewApp(g)
	if w := WorkersFor(app); w > 2 || w < 1 {
		t.Errorf("WorkersFor capped = %d, want <= total width 2", w)
	}
	app.Workers = 1
	if w := WorkersFor(app); w != 1 {
		t.Errorf("explicit workers = %d, want 1", w)
	}
	// Multiple graphs widen the cap.
	app2 := core.NewApp(g, core.MustNew(core.Params{GraphID: 1, Timesteps: 2, MaxWidth: 2}))
	app2.Workers = 4
	if w := WorkersFor(app2); w != 4 {
		t.Errorf("two-graph workers = %d, want 4", w)
	}
}

func TestGatherInputsOrder(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 3, MaxWidth: 8, Dependence: core.Stencil1D})
	rows := map[int][]byte{3: {3}, 4: {4}, 5: {5}}
	inputs := GatherInputs(g, 1, 4, func(i int) []byte { return rows[i] }, nil)
	if len(inputs) != 3 || inputs[0][0] != 3 || inputs[1][0] != 4 || inputs[2][0] != 5 {
		t.Errorf("GatherInputs = %v", inputs)
	}
}
