package exec

import (
	"taskbench/internal/core"
)

// Fabric is the point-to-point communication substrate for rank-based
// backends (the analogs of MPI, PaRSEC and StarPU). Each dependence
// edge that crosses a rank boundary gets a dedicated buffered channel,
// the Go rendering of "each task dependency maps to one send/receive
// pair in MPI" (paper §3.4). Messages on an edge are consumed in
// timestep order, so no tag matching is needed; payload headers are
// still validated by the core library.
type Fabric struct {
	ranks int
	// chans[g] maps consumer column -> producer column -> channel.
	chans []map[int]map[int]chan []byte
}

// edgeCap bounds the per-edge buffering, like MPI's eager buffers. A
// producer more than edgeCap timesteps ahead of a consumer blocks. The
// value keeps memory bounded while never deadlocking: blocked sends
// are always drained by a consumer that already has its own inputs.
const edgeCap = 4

// NewFabric scans every dependence set of every graph and creates one
// channel per edge crossing a rank boundary under block distribution
// over the given rank count.
func NewFabric(app *core.App, ranks int) *Fabric {
	f := &Fabric{ranks: ranks, chans: make([]map[int]map[int]chan []byte, len(app.Graphs))}
	for gi, g := range app.Graphs {
		edges := map[int]map[int]chan []byte{}
		for dset := 0; dset < g.MaxDependenceSets(); dset++ {
			for i := 0; i < g.MaxWidth; i++ {
				consRank := OwnerOf(i, g.MaxWidth, ranks)
				g.Dependencies(dset, i).ForEach(func(j int) {
					if j < 0 || j >= g.MaxWidth {
						return
					}
					if OwnerOf(j, g.MaxWidth, ranks) == consRank {
						return
					}
					byProd := edges[i]
					if byProd == nil {
						byProd = map[int]chan []byte{}
						edges[i] = byProd
					}
					if _, ok := byProd[j]; !ok {
						byProd[j] = make(chan []byte, edgeCap)
					}
				})
			}
		}
		f.chans[gi] = edges
	}
	return f
}

// Remote reports whether the edge producer→consumer crosses a rank
// boundary (i.e. has a channel).
func (f *Fabric) Remote(graph, producer, consumer int) bool {
	byProd := f.chans[graph][consumer]
	if byProd == nil {
		return false
	}
	_, ok := byProd[producer]
	return ok
}

// Send transmits a copy of payload along the edge producer→consumer.
// The copy models the network's ownership transfer: the producer is
// free to reuse its output buffer immediately.
func (f *Fabric) Send(graph, producer, consumer int, payload []byte) {
	msg := make([]byte, len(payload))
	copy(msg, payload)
	f.chans[graph][consumer][producer] <- msg
}

// Recv blocks until the next message on the edge producer→consumer
// arrives and returns it. The caller owns the returned buffer.
func (f *Fabric) Recv(graph, producer, consumer int) []byte {
	return <-f.chans[graph][consumer][producer]
}

// SendRemoteOutputs sends task (t, i)'s output to every consumer in
// the next timestep owned by a different rank.
func (f *Fabric) SendRemoteOutputs(graph int, g *core.Graph, t, i int, output []byte) {
	g.ReverseDependenciesForPoint(t, i).ForEach(func(cons int) {
		if f.Remote(graph, i, cons) {
			f.Send(graph, i, cons, output)
		}
	})
}

// GatherRankInputs collects the inputs of task (t, i) for a rank that
// owns columns [span.Lo, span.Hi): local dependencies are read from
// prev, remote ones received from the fabric. Appends to dst and
// returns it.
func (f *Fabric) GatherRankInputs(graph int, g *core.Graph, t, i int, span Span, prev func(int) []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	g.DependenciesForPoint(t, i).ForEach(func(dep int) {
		if dep >= span.Lo && dep < span.Hi {
			dst = append(dst, prev(dep))
		} else {
			dst = append(dst, f.Recv(graph, dep, i))
		}
	})
	return dst
}
