package exec

import (
	"taskbench/internal/core"
)

// Edge is one dependence edge whose producer and consumer columns are
// owned by different ranks — the unit every rank transport (channel
// fabric or wire mesh) allocates a queue for.
type Edge struct {
	Producer, Consumer int
}

// CrossEdges calls fn once per distinct dependence edge of g crossing
// a rank boundary under block distribution over the given rank count,
// in deterministic order. It is the single edge enumeration shared by
// the in-process Fabric and the tcp backend's wire transport, which
// must agree exactly on which edges exist.
func CrossEdges(g *core.Graph, ranks int, fn func(producer, consumer int)) {
	dt := g.Deps()
	w := g.MaxWidth
	seen := map[Edge]struct{}{}
	for dset := 0; dset < g.MaxDependenceSets(); dset++ {
		for i := 0; i < w; i++ {
			consRank := OwnerOf(i, w, ranks)
			for _, iv := range dt.Forward(dset, i) {
				for j := max(iv.First, 0); j <= min(iv.Last, w-1); j++ {
					if OwnerOf(j, w, ranks) == consRank {
						continue
					}
					e := Edge{Producer: j, Consumer: i}
					if _, dup := seen[e]; dup {
						continue
					}
					seen[e] = struct{}{}
					fn(j, i)
				}
			}
		}
	}
}

// Fabric is the point-to-point communication substrate for rank-based
// backends (the analogs of MPI, PaRSEC and StarPU). Each dependence
// edge that crosses a rank boundary gets a dedicated buffered channel,
// the Go rendering of "each task dependency maps to one send/receive
// pair in MPI" (paper §3.4). Messages on an edge are consumed in
// timestep order, so no tag matching is needed; payload headers are
// still validated by the core library.
type Fabric struct {
	// chans[g] maps consumer column -> producer column -> channel.
	chans []map[int]map[int]chan []byte
	// free[g] recycles delivered payload buffers of graph g, so
	// steady-state sends stop allocating: Send draws its copy buffer
	// here and consumers return buffers after validating them.
	free []PayloadPool
}

// PayloadPool is a bounded free list of payload buffers — the shared
// recycling mechanism of the in-process Fabric and the tcp wire
// transport's demultiplexers, which must agree on behavior so the
// zero-allocs steady state holds on both. Get never blocks (it falls
// back to allocating when the pool is empty or the recycled buffer is
// too small) and Put never blocks (it drops the buffer when the pool
// is full).
type PayloadPool struct{ ch chan []byte }

// NewEdgePool sizes a pool for one graph's cross-rank traffic: every
// edge full (edgeCap messages in flight) plus one buffer per edge held
// by its consumer, so a warmed-up steady state never allocates.
func NewEdgePool(edges, edgeCap int) PayloadPool {
	return PayloadPool{ch: make(chan []byte, edges*(edgeCap+1)+1)}
}

// Get returns a buffer of the given length, recycled when possible.
//
//taskbench:hotpath
func (p PayloadPool) Get(length int) []byte {
	select {
	case buf := <-p.ch:
		if cap(buf) >= length {
			return buf[:length]
		}
	default:
	}
	return make([]byte, length) //taskbench:allocok pool-miss fallback; a warmed-up steady state never reaches it
}

// Put returns a consumed buffer to the pool, dropping it when full.
//
//taskbench:hotpath
func (p PayloadPool) Put(buf []byte) {
	select {
	case p.ch <- buf:
	default:
	}
}

// edgeCap bounds the per-edge buffering, like MPI's eager buffers. A
// producer more than edgeCap timesteps ahead of a consumer blocks. The
// value keeps memory bounded while never deadlocking: blocked sends
// are always drained by a consumer that already has its own inputs
// (see the deadlock-freedom argument in DESIGN.md).
const edgeCap = 4

// NewFabric enumerates every cross-rank dependence edge of the app
// (via CrossEdges) and creates one channel per edge.
func NewFabric(app *core.App, ranks int) *Fabric {
	lists := make([][]Edge, len(app.Graphs))
	for gi, g := range app.Graphs {
		CrossEdges(g, ranks, func(producer, consumer int) {
			lists[gi] = append(lists[gi], Edge{Producer: producer, Consumer: consumer})
		})
	}
	return NewFabricFromEdges(lists)
}

// NewFabricFromEdges builds the per-edge channels for precomputed
// cross-rank edge lists (one list per graph), letting a reusable
// RankPlan share one enumeration across fabric construction and wire
// transports. Each graph also gets a free list sized for the worst
// case of in-flight messages (every edge full plus a buffer per edge
// held by its consumer), so a warmed-up fabric never allocates.
func NewFabricFromEdges(lists [][]Edge) *Fabric {
	f := &Fabric{chans: EdgeQueues(lists, edgeCap), free: make([]PayloadPool, len(lists))}
	for gi, edges := range lists {
		f.free[gi] = NewEdgePool(len(edges), edgeCap)
	}
	return f
}

// EdgeQueues builds the per-edge queue maps (consumer → producer →
// buffered channel of the given capacity) for precomputed cross-rank
// edge lists — the common construction of the in-process Fabric and
// the tcp wire transport's demux queues, which must agree exactly on
// which edges have a queue.
func EdgeQueues(lists [][]Edge, capacity int) []map[int]map[int]chan []byte {
	queues := make([]map[int]map[int]chan []byte, len(lists))
	for gi, edges := range lists {
		byCons := map[int]map[int]chan []byte{}
		for _, e := range edges {
			byProd := byCons[e.Consumer]
			if byProd == nil {
				byProd = map[int]chan []byte{}
				byCons[e.Consumer] = byProd
			}
			byProd[e.Producer] = make(chan []byte, capacity)
		}
		queues[gi] = byCons
	}
	return queues
}

// Remote reports whether the edge producer→consumer crosses a rank
// boundary (i.e. has a channel).
func (f *Fabric) Remote(graph, producer, consumer int) bool {
	byProd := f.chans[graph][consumer]
	if byProd == nil {
		return false
	}
	_, ok := byProd[producer]
	return ok
}

// Send transmits a copy of payload along the edge producer→consumer.
// The copy models the network's ownership transfer: the producer is
// free to reuse its output buffer immediately. The copy buffer comes
// from the graph's free list when one is available, so steady-state
// communication is allocation-free once the first run has populated
// the list (consumers return buffers via Recycle).
//
//taskbench:hotpath
func (f *Fabric) Send(graph, producer, consumer int, payload []byte) {
	msg := f.free[graph].Get(len(payload))
	copy(msg, payload)
	f.chans[graph][consumer][producer] <- msg
}

// Recv blocks until the next message on the edge producer→consumer
// arrives and returns it. The caller owns the returned buffer and
// should Recycle it once the payload has been consumed.
//
//taskbench:hotpath
func (f *Fabric) Recv(graph, producer, consumer int) []byte {
	return <-f.chans[graph][consumer][producer]
}

// Recycle returns a delivered payload buffer to graph's free list for
// reuse by a later Send, dropping the buffer if the list is full. Only
// buffers obtained from Recv on this fabric may be recycled.
//
//taskbench:hotpath
func (f *Fabric) Recycle(graph int, payload []byte) {
	f.free[graph].Put(payload)
}
