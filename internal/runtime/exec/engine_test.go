package exec

import (
	"sort"
	"sync"
	"testing"
	"time"

	"taskbench/internal/core"
)

// refPlan is the single-threaded forward construction the parallel
// builder replaced: walk every task, resolve forward dependencies, and
// append consumers onto producers. BuildPlan must produce a
// structurally identical DAG.
type refTask struct {
	exists    bool
	counter   int32
	inputs    []int32
	consumers []int32
	refs      int32
}

func buildRef(app *core.App) []refTask {
	base := make([]int32, len(app.Graphs))
	total := int32(0)
	for gi, g := range app.Graphs {
		base[gi] = total
		total += int32(g.Timesteps * g.MaxWidth)
	}
	id := func(gi, t, i int) int32 {
		return base[gi] + int32(t*app.Graphs[gi].MaxWidth+i)
	}
	tasks := make([]refTask, total)
	for gi, g := range app.Graphs {
		serialize := g.ScratchBytes > 0
		for t := 0; t < g.Timesteps; t++ {
			off := g.OffsetAtTimestep(t)
			for i := off; i < off+g.WidthAtTimestep(t); i++ {
				task := &tasks[id(gi, t, i)]
				task.exists = true
				selfDep := false
				g.DependenciesForPoint(t, i).ForEach(func(dep int) {
					prod := &tasks[id(gi, t-1, dep)]
					task.inputs = append(task.inputs, id(gi, t-1, dep))
					prod.consumers = append(prod.consumers, id(gi, t, i))
					prod.refs++
					task.counter++
					if dep == i {
						selfDep = true
					}
				})
				if serialize && !selfDep && t > 0 && g.ContainsPoint(t-1, i) {
					prod := &tasks[id(gi, t-1, i)]
					prod.consumers = append(prod.consumers, id(gi, t, i))
					task.counter++
				}
			}
		}
	}
	return tasks
}

func sortedCopy(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// TestBuildPlanMatchesReference compares the parallel reverse-relation
// build against the forward reference for a battery of patterns,
// including hashed random dependencies, tree holes and scratch
// serialization.
func TestBuildPlanMatchesReference(t *testing.T) {
	apps := map[string]*core.App{
		"stencil": core.NewApp(core.MustNew(core.Params{
			Timesteps: 8, MaxWidth: 16, Dependence: core.Stencil1D})),
		"tree_holes": core.NewApp(core.MustNew(core.Params{
			Timesteps: 7, MaxWidth: 16, Dependence: core.Tree})),
		"fft": core.NewApp(core.MustNew(core.Params{
			Timesteps: 9, MaxWidth: 32, Dependence: core.FFT})),
		"random_nearest": core.NewApp(core.MustNew(core.Params{
			Timesteps: 8, MaxWidth: 16, Dependence: core.RandomNearest, Radix: 5, Seed: 11})),
		"spread_scratch": core.NewApp(core.MustNew(core.Params{
			Timesteps: 6, MaxWidth: 10, Dependence: core.Spread, Radix: 3, ScratchBytes: 64})),
		"trivial_scratch": core.NewApp(core.MustNew(core.Params{
			Timesteps: 5, MaxWidth: 4, Dependence: core.Trivial, ScratchBytes: 64})),
		"multi_graph": core.NewApp(
			core.MustNew(core.Params{GraphID: 0, Timesteps: 6, MaxWidth: 8, Dependence: core.Stencil1DPeriodic}),
			core.MustNew(core.Params{GraphID: 1, Timesteps: 4, MaxWidth: 4, Dependence: core.AllToAll}),
		),
	}
	for name, app := range apps {
		t.Run(name, func(t *testing.T) {
			plan := BuildPlan(app)
			ref := buildRef(app)
			if len(plan.Tasks) != len(ref) {
				t.Fatalf("task slots = %d, want %d", len(plan.Tasks), len(ref))
			}
			seeds := 0
			for id := range ref {
				got, want := &plan.Tasks[id], &ref[id]
				if got.Exists != want.exists {
					t.Fatalf("task %d exists = %v, want %v", id, got.Exists, want.exists)
				}
				if !want.exists {
					continue
				}
				if got.Counter.Load() != want.counter {
					t.Errorf("task %d counter = %d, want %d", id, got.Counter.Load(), want.counter)
				}
				if got.PayloadRefs != want.refs {
					t.Errorf("task %d refs = %d, want %d", id, got.PayloadRefs, want.refs)
				}
				// Inputs must match exactly (dependence order matters
				// for validation); consumer order is scheduling-only.
				if !equalIDs(got.Inputs, want.inputs) {
					t.Errorf("task %d inputs = %v, want %v", id, got.Inputs, want.inputs)
				}
				if !equalIDs(sortedCopy(got.Consumers), sortedCopy(want.consumers)) {
					t.Errorf("task %d consumers = %v, want %v", id, got.Consumers, want.consumers)
				}
				if want.counter == 0 {
					seeds++
				}
			}
			if len(plan.Seeds) != seeds {
				t.Errorf("seeds = %d, want %d", len(plan.Seeds), seeds)
			}
		})
	}
}

// TestBuildPlanParallelPathMatchesSerial forces the parallel path (by
// exceeding the size threshold) and checks it against the reference.
func TestBuildPlanParallelPathMatchesSerial(t *testing.T) {
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 64, MaxWidth: 128, Dependence: core.Stencil1D}))
	if app.TotalTasks() < buildParallelThreshold {
		t.Fatalf("app too small to exercise the parallel path")
	}
	plan := BuildPlan(app)
	ref := buildRef(app)
	for id := range ref {
		if !ref[id].exists {
			continue
		}
		got := &plan.Tasks[id]
		if got.Counter.Load() != ref[id].counter || !equalIDs(got.Inputs, ref[id].inputs) ||
			!equalIDs(sortedCopy(got.Consumers), sortedCopy(ref[id].consumers)) {
			t.Fatalf("task %d diverges from reference", id)
		}
	}
}

// TestPlanReset drains a plan and checks Reset restores every counter
// and the seed list admits a second complete drain.
func TestPlanReset(t *testing.T) {
	app := core.NewApp(
		core.MustNew(core.Params{GraphID: 0, Timesteps: 6, MaxWidth: 8, Dependence: core.FFT}),
		core.MustNew(core.Params{GraphID: 1, Timesteps: 5, MaxWidth: 4, Dependence: core.Trivial, ScratchBytes: 64}),
	)
	plan := BuildPlan(app)
	want := make([]int32, len(plan.Tasks))
	for id := range plan.Tasks {
		want[id] = plan.Tasks[id].Counter.Load()
	}
	for round := 0; round < 3; round++ {
		queue := append([]int32(nil), plan.Seeds...)
		var drained int64
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			drained++
			for _, cons := range plan.Tasks[id].Consumers {
				if plan.Tasks[cons].Counter.Add(-1) == 0 {
					queue = append(queue, cons)
				}
			}
		}
		if drained != plan.TaskCount() {
			t.Fatalf("round %d drained %d tasks, want %d", round, drained, plan.TaskCount())
		}
		plan.Reset()
		for id := range plan.Tasks {
			if got := plan.Tasks[id].Counter.Load(); got != want[id] {
				t.Fatalf("round %d: task %d counter after Reset = %d, want %d", round, id, got, want[id])
			}
		}
	}
}

// chanPolicy is a minimal channel-backed policy used to test the
// engine in isolation from the real backends.
type chanPolicy struct {
	ready chan int32
	batch [][1]int32
}

func (p *chanPolicy) Init(plan *Plan, workers int) {
	p.ready = make(chan int32, plan.TaskCount())
	p.batch = make([][1]int32, workers)
	for _, id := range plan.Seeds {
		p.ready <- id
	}
}

func (p *chanPolicy) Push(worker int, ids []int32) {
	for _, id := range ids {
		p.ready <- id
	}
}

func (p *chanPolicy) Pop(worker int) ([]int32, bool) {
	id, ok := <-p.ready
	if !ok {
		return nil, false
	}
	p.batch[worker][0] = id
	return p.batch[worker][:], true
}

func (p *chanPolicy) Close() { close(p.ready) }

func TestEngineRunsPlanToCompletion(t *testing.T) {
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 10, MaxWidth: 8, Dependence: core.Stencil1DPeriodic}))
	eng := NewEngine(BuildPlan(app), &chanPolicy{}, 4)
	if err := eng.Run(true); err != nil {
		t.Fatalf("engine run failed: %v", err)
	}
}

// TestEngineEmptyApp guards the zero-task path: with nothing to run,
// Close must fire immediately instead of leaving workers blocked in
// Pop forever.
func TestEngineEmptyApp(t *testing.T) {
	app := core.NewApp()
	eng := NewEngine(BuildPlan(app), &chanPolicy{}, 4)
	done := make(chan error, 1)
	go func() { done <- eng.Run(true) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("empty app returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine deadlocked on an empty app")
	}
}

func TestEngineSurfacesValidationError(t *testing.T) {
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 6, MaxWidth: 8, Dependence: core.Stencil1D,
		OutputBytes: 64, FaultRate: 1.0, Seed: 3}))
	eng := NewEngine(BuildPlan(app), &chanPolicy{}, 4)
	err := eng.Run(true)
	if err == nil {
		t.Fatal("engine did not surface injected corruption")
	}
	if _, ok := err.(*core.ValidationError); !ok {
		t.Fatalf("engine returned %T, want *core.ValidationError", err)
	}
}

func TestSessionReuse(t *testing.T) {
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 8, MaxWidth: 8, Dependence: core.Nearest, Radix: 3}))
	app.Workers = 4
	sess := NewSession(app, &chanPolicy{})
	for k := 0; k < 5; k++ {
		st, err := sess.Run()
		if err != nil {
			t.Fatalf("session run %d: %v", k, err)
		}
		if st.Tasks != app.TotalTasks() {
			t.Fatalf("session run %d: tasks = %d, want %d", k, st.Tasks, app.TotalTasks())
		}
	}
}

// TestSessionConcurrentEnginesShareNothing checks two sessions over
// the same app params never interfere (each builds its own plan).
func TestSessionConcurrentEnginesShareNothing(t *testing.T) {
	mk := func() *core.App {
		app := core.NewApp(core.MustNew(core.Params{
			Timesteps: 8, MaxWidth: 8, Dependence: core.Stencil1D}))
		app.Workers = 2
		return app
	}
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := NewSession(mk(), &chanPolicy{})
			for r := 0; r < 3; r++ {
				if _, err := sess.Run(); err != nil {
					t.Errorf("concurrent session: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestMeasureKeepsStatsOnError(t *testing.T) {
	app := core.NewApp(core.MustNew(core.Params{Timesteps: 2, MaxWidth: 2}))
	st, err := Measure(app, 3, func() error { return &core.ValidationError{Detail: "boom"} })
	if err == nil {
		t.Fatal("Measure swallowed the error")
	}
	if st.Workers != 3 {
		t.Errorf("Workers = %d, want 3 even on failure", st.Workers)
	}
	if st.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0 even on failure", st.Elapsed)
	}
	if st.Tasks != app.TotalTasks() {
		t.Errorf("Tasks = %d, want %d even on failure", st.Tasks, app.TotalTasks())
	}
}

// compilingPolicy records when Compile runs relative to engine
// construction and Run, guarding the untimed-compilation contract.
type compilingPolicy struct {
	chanPolicy
	compiled int
}

func (p *compilingPolicy) Compile(plan *Plan) { p.compiled++ }

func TestNewEngineCompilesOutsideTimedRegion(t *testing.T) {
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 4, MaxWidth: 4, Dependence: core.Stencil1D}))
	pol := &compilingPolicy{}
	eng := NewEngine(BuildPlan(app), pol, 2)
	if pol.compiled != 1 {
		t.Fatalf("Compile ran %d times at construction, want 1", pol.compiled)
	}
	if err := eng.Run(true); err != nil {
		t.Fatal(err)
	}
}
