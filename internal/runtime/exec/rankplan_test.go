package exec

import (
	"testing"

	"taskbench/internal/core"
)

// eagerPolicy is a minimal p2p-style rank policy used to exercise the
// engine without importing a backend package (which would cycle).
type eagerPolicy struct{}

func (eagerPolicy) Layout(app *core.App) RankLayout { return FlatLayout(app) }

func (eagerPolicy) Step(rc *RankCtx, t int) {
	for gi := 0; gi < rc.Graphs(); gi++ {
		if !rc.Active(gi, t) {
			continue
		}
		lo, hi := rc.Window(gi, t)
		for i := lo; i < hi; i++ {
			rc.SendOutputs(gi, t, i, rc.Run(gi, t, i))
		}
		rc.Flip(gi)
	}
}

func rankApp(width, steps int) *core.App {
	return core.NewApp(core.MustNew(core.Params{
		Timesteps: steps, MaxWidth: width, Dependence: core.Stencil1D, OutputBytes: 32,
	}))
}

func TestRankPlanSpansCoverWidth(t *testing.T) {
	app := core.NewApp(
		core.MustNew(core.Params{Timesteps: 3, MaxWidth: 7, Dependence: core.Stencil1D}),
		core.MustNew(core.Params{GraphID: 1, Timesteps: 5, MaxWidth: 4, Dependence: core.NoComm}),
	)
	plan := BuildRankPlan(app, 3)
	if plan.MaxSteps != 5 {
		t.Errorf("MaxSteps = %d, want 5", plan.MaxSteps)
	}
	for gi, g := range app.Graphs {
		covered := 0
		for r := 0; r < plan.Ranks; r++ {
			covered += plan.Span(gi, r).Len()
		}
		if covered != g.MaxWidth {
			t.Errorf("graph %d: spans cover %d columns, want %d", gi, covered, g.MaxWidth)
		}
	}
}

func TestRankPlanEdgesMatchCrossEdges(t *testing.T) {
	app := rankApp(8, 4)
	plan := BuildRankPlan(app, 2)
	want := map[Edge]struct{}{}
	CrossEdges(app.Graphs[0], 2, func(p, c int) { want[Edge{Producer: p, Consumer: c}] = struct{}{} })
	got := plan.Edges(0)
	if len(got) != len(want) {
		t.Fatalf("plan has %d edges, want %d", len(got), len(want))
	}
	for _, e := range got {
		if _, ok := want[e]; !ok {
			t.Errorf("unexpected plan edge %+v", e)
		}
	}
}

func TestRankSessionReuseValidates(t *testing.T) {
	app := rankApp(7, 9) // odd height: rows end a run flipped
	app.Workers = 3
	sess, err := NewRankSession(app, eagerPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var first core.RunStats
	for k := 0; k < 3; k++ {
		st, err := sess.Run()
		if err != nil {
			t.Fatalf("reuse run %d: %v", k, err)
		}
		if k == 0 {
			first = st
		} else if st.Tasks != first.Tasks || st.Workers != first.Workers {
			t.Errorf("run %d static stats diverged: %+v vs %+v", k, st, first)
		}
	}
}

func TestRowsRehome(t *testing.T) {
	r := NewRows(2, 4)
	home := r.Cur(0)
	r.Flip()
	if &r.Cur(0)[0] == &home[0] {
		t.Fatal("Flip did not swap buffers")
	}
	r.Rehome()
	if &r.Cur(0)[0] != &home[0] {
		t.Error("Rehome after one flip did not restore orientation")
	}
	r.Flip()
	r.Flip()
	r.Rehome()
	if &r.Cur(0)[0] != &home[0] {
		t.Error("Rehome after two flips changed orientation")
	}
}

func TestRunRanksEmptyApp(t *testing.T) {
	st, err := RunRanks(core.NewApp(), eagerPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 0 {
		t.Errorf("Tasks = %d, want 0", st.Tasks)
	}
}
