// Package exec provides the shared substrate used by every runtime
// backend: the Engine/Policy scheduler core and the reusable,
// parallel-built task-DAG Plan it executes (engine.go, policy.go,
// plan.go), plus worker accounting, block distribution of columns over
// ranks, first-error capture, a cyclic barrier, an unbounded mailbox,
// and double-buffered payload rows. Keeping these here keeps each
// backend focused on its scheduling paradigm, mirroring how the
// paper's core library absorbs everything shared between systems.
package exec

import (
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"taskbench/internal/core"
)

// WorkersFor picks the worker count for an app: the explicit setting
// if present, otherwise one worker per available CPU, capped at the
// total graph width so trivially small graphs do not spawn idle
// workers.
func WorkersFor(app *core.App) int {
	w := app.Workers
	if w <= 0 {
		w = stdruntime.GOMAXPROCS(0)
	}
	maxWidth := 0
	for _, g := range app.Graphs {
		maxWidth += g.MaxWidth
	}
	if maxWidth == 0 {
		// An app with no graphs needs no parallelism (and no fabric
		// mesh of idle ranks).
		return 1
	}
	if w > maxWidth {
		w = maxWidth
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Measure runs body, filling in the timing fields of the app's
// statistics. workers is recorded for task-granularity computation.
// On failure the partially filled statistics (Elapsed, Workers and the
// static task counts) are returned alongside the error, so callers can
// still report how long a failed run took and at what parallelism.
func Measure(app *core.App, workers int, body func() error) (core.RunStats, error) {
	stats := core.StatsFor(app)
	stats.Workers = workers
	start := time.Now()
	err := body()
	stats.Elapsed = time.Since(start)
	return stats, err
}

// ErrOnce records the first error reported by any worker and exposes a
// cheap cancellation check so workers can abandon work early.
type ErrOnce struct {
	failed atomic.Bool
	mu     sync.Mutex
	err    error
}

// Set records err if it is the first failure. Workers call it from the
// task loop (usually with nil), so the common paths — no error, or a
// failure already recorded — are a nil check and an atomic load; the
// sync.Once closure the previous version allocated per call is gone.
func (e *ErrOnce) Set(err error) {
	if err == nil || e.failed.Load() {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
		// The store orders after the write of e.err, so Err's unlocked
		// read is safe once it observes failed.
		e.failed.Store(true)
	}
	e.mu.Unlock()
}

// Failed reports whether any error has been recorded.
func (e *ErrOnce) Failed() bool { return e.failed.Load() }

// Err returns the recorded error, if any.
func (e *ErrOnce) Err() error {
	if e.failed.Load() {
		return e.err
	}
	return nil
}

// Span is a contiguous block of columns owned by one rank.
type Span struct {
	Lo int // first column (inclusive)
	Hi int // last column (exclusive)
}

// Len returns the number of columns in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// BlockAssign distributes width columns over ranks contiguous blocks,
// the distribution every distributed backend (and the paper's MPI
// implementation) uses. Earlier ranks receive the remainder.
func BlockAssign(width, ranks int) []Span {
	if ranks < 1 {
		ranks = 1
	}
	spans := make([]Span, ranks)
	base := width / ranks
	rem := width % ranks
	lo := 0
	for r := 0; r < ranks; r++ {
		n := base
		if r < rem {
			n++
		}
		spans[r] = Span{Lo: lo, Hi: lo + n}
		lo += n
	}
	return spans
}

// OwnerOf returns the rank owning column i under BlockAssign.
func OwnerOf(i, width, ranks int) int {
	if ranks < 1 {
		return 0
	}
	base := width / ranks
	rem := width % ranks
	// The first rem ranks own base+1 columns.
	cut := rem * (base + 1)
	if i < cut {
		return i / (base + 1)
	}
	if base == 0 {
		return ranks - 1
	}
	return rem + (i-cut)/base
}

// Barrier is a reusable cyclic barrier for bulk-synchronous backends.
type Barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	round  int
	broken bool
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants arrive. If Break has been
// called, Wait returns false immediately (and releases all waiters),
// letting bulk-synchronous workers unwind after an error.
func (b *Barrier) Wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return false
	}
	round := b.round
	b.count++
	if b.count == b.n {
		b.count = 0
		b.round++
		b.cond.Broadcast()
		return true
	}
	for b.round == round && !b.broken {
		b.cond.Wait()
	}
	return !b.broken
}

// Break permanently releases the barrier; all current and future
// waiters return false.
func (b *Barrier) Break() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Mailbox is an unbounded multi-producer single-consumer queue, the
// message substrate of the actor backend (Charm++ chares have
// unbounded message queues, so sends must never block or deadlock).
type Mailbox[M any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []M
	closed bool
}

// NewMailbox creates an empty mailbox.
func NewMailbox[M any]() *Mailbox[M] {
	m := &Mailbox[M]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Send enqueues a message. Send never blocks.
func (m *Mailbox[M]) Send(msg M) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.cond.Signal()
	m.mu.Unlock()
}

// Recv dequeues the next message, blocking until one is available or
// the mailbox is closed (ok=false).
func (m *Mailbox[M]) Recv() (msg M, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return msg, false
	}
	msg = m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// Close wakes any blocked receiver; subsequent Recv calls drain the
// queue and then report ok=false.
func (m *Mailbox[M]) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Rows manages the double-buffered payload rows of one graph: the
// outputs of the previous timestep (consumed as inputs) and the
// outputs being produced in the current timestep. The flat backing
// arrays are allocated once, so steady-state execution is
// allocation-free like the reference implementations.
type Rows struct {
	prev, cur [][]byte
	prevFlat  []byte
	curFlat   []byte
	flipped   bool
}

// NewRows allocates double buffers for a graph of the given width and
// payload size.
func NewRows(width, outputBytes int) *Rows {
	r := &Rows{
		prev:     make([][]byte, width),
		cur:      make([][]byte, width),
		prevFlat: make([]byte, width*outputBytes),
		curFlat:  make([]byte, width*outputBytes),
	}
	for i := 0; i < width; i++ {
		r.prev[i] = r.prevFlat[i*outputBytes : (i+1)*outputBytes]
		r.cur[i] = r.curFlat[i*outputBytes : (i+1)*outputBytes]
	}
	return r
}

// Prev returns the payload produced by column i in the previous
// timestep.
func (r *Rows) Prev(i int) []byte { return r.prev[i] }

// Cur returns the output buffer for column i in the current timestep.
func (r *Rows) Cur(i int) []byte { return r.cur[i] }

// Flip swaps the buffers at the end of a timestep.
func (r *Rows) Flip() {
	r.prev, r.cur = r.cur, r.prev
	r.prevFlat, r.curFlat = r.curFlat, r.prevFlat
	r.flipped = !r.flipped
}

// Rehome restores the orientation NewRows established, so a reused
// RankPlan starts every run with identical buffer parity regardless of
// how many timesteps the previous run flipped through.
func (r *Rows) Rehome() {
	if r.flipped {
		r.Flip()
	}
}

// GatherInputs appends the input payloads of task (t, i) drawn from
// prev rows, in dependence order, reusing dst. Hot callers should
// hoist the prev func value out of their task loop so the closure is
// created once per run, not once per task.
func GatherInputs(g *core.Graph, t, i int, prev func(int) []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	it := g.PointDeps(t, i)
	for dep, ok := it.Next(); ok; dep, ok = it.Next() {
		dst = append(dst, prev(dep))
	}
	return dst
}
