package exec

import (
	"sync"

	"taskbench/internal/core"
)

// Transport is the messaging substrate a RankEngine moves cross-rank
// payloads over. The in-process Fabric is the default; the tcp backend
// substitutes a real wire transport via RankTransporter.
type Transport interface {
	// Remote reports whether the edge producer→consumer crosses a rank
	// boundary (i.e. has a queue).
	Remote(graph, producer, consumer int) bool
	// Send transmits payload along the edge. rank identifies the
	// sending rank, for transports that route by connection.
	Send(rank, graph, producer, consumer int, payload []byte) error
	// Recv blocks until the next payload on the edge arrives and
	// returns it; the caller owns the returned buffer.
	Recv(graph, producer, consumer int) []byte
	// Recycle hands a buffer returned by Recv back to the transport
	// once its payload has been consumed, so steady-state messaging can
	// reuse buffers instead of allocating. Transports may drop the
	// buffer; callers must not touch it afterwards.
	Recycle(graph int, payload []byte)
	// Err reports any asynchronous transport failure observed so far.
	Err() error
	// Close releases transport resources.
	Close()
}

// Flusher is an optional Transport extension for transports that batch
// outbound sends (tcp's mesh coalesces every payload headed to the
// same peer rank into one frame). The engine calls Flush(rank) on the
// rank's own goroutine after every policy Step, so the flush point is
// the timestep boundary: a batching transport may defer any Send until
// then. That is safe for every policy whose receives at step t consume
// only payloads sent at steps before t (dependencies span consecutive
// timesteps); a policy that consumed same-step sends would need an
// explicit mid-step flush, which no current policy does.
type Flusher interface {
	Flush(rank int) error
}

// fabricTransport adapts the in-process Fabric to the Transport
// interface.
type fabricTransport struct{ f *Fabric }

func (t fabricTransport) Remote(graph, producer, consumer int) bool {
	return t.f.Remote(graph, producer, consumer)
}

func (t fabricTransport) Send(rank, graph, producer, consumer int, payload []byte) error {
	t.f.Send(graph, producer, consumer, payload)
	return nil
}

func (t fabricTransport) Recv(graph, producer, consumer int) []byte {
	return t.f.Recv(graph, producer, consumer)
}

func (t fabricTransport) Recycle(graph int, payload []byte) {
	t.f.Recycle(graph, payload)
}

func (t fabricTransport) Err() error { return nil }
func (t fabricTransport) Close()     {}

// RankLayout is a policy's rank/thread decomposition of an app.
type RankLayout struct {
	// Ranks is the number of communicating address-space analogs.
	Ranks int
	// Threads is the number of intra-rank workers (hybrid's OpenMP
	// threads); 1 for the pure message-passing paradigms.
	Threads int
}

// Workers is the total worker count the layout occupies, recorded in
// run statistics.
func (l RankLayout) Workers() int { return l.Ranks * l.Threads }

// FlatLayout is the pure message-passing decomposition: one
// single-threaded rank per worker.
func FlatLayout(app *core.App) RankLayout {
	return RankLayout{Ranks: WorkersFor(app), Threads: 1}
}

// RankPolicy expresses one message-passing paradigm over the shared
// RankEngine. The engine owns everything every rank-based backend has
// in common — rank goroutine spawn and join, transport construction
// and reuse, per-rank column ownership, barrier lifecycle, payload row
// buffering, and first-error capture — and delegates only the
// paradigm itself: how one rank enumerates and communicates one
// timestep. Each backend (p2p, bsp, dtd, shard, ptg, hybrid, tcp) is
// one RankPolicy of a few dozen lines.
//
// A RankPolicy is used by one RankEngine at a time. Step is called
// concurrently from every rank's goroutine; per-rank policy state must
// be indexed by rc.Rank.
type RankPolicy interface {
	// Layout picks the rank/thread decomposition for an app, before
	// the RankPlan is built.
	Layout(app *core.App) RankLayout

	// Step executes timestep t across every graph for one rank: the
	// policy decides enumeration order, communication discipline and
	// phase structure, using the RankCtx helpers for everything
	// shared. Step runs for every rank at every timestep, including
	// steps where the rank owns no work, so barrier-phased policies
	// stay aligned.
	Step(rc *RankCtx, t int)
}

// RankCompiler is an optional RankPolicy extension for policies that
// expand per-rank schedules from the plan (ptg's parameterized task
// graph). NewRankEngine invokes it once at construction — outside any
// timed region — so every point of an METG sweep sees an
// already-compiled schedule.
type RankCompiler interface {
	CompileRanks(plan *RankPlan)
}

// RankTransporter is an optional RankPolicy extension that replaces
// the in-process Fabric with the policy's own messaging substrate
// (tcp's wire mesh). NewRankEngine invokes it once at construction;
// the engine owns the returned transport and Closes it.
type RankTransporter interface {
	OpenTransport(plan *RankPlan) (Transport, error)
}

// RankCtx is one rank's execution context: its identity, its slice of
// every graph, and the shared-substrate helpers (gather, execute,
// send, flip, barrier) every policy composes its paradigm from.
type RankCtx struct {
	// Rank identifies this context in [0, plan.Ranks).
	Rank int

	engine   *RankEngine
	in       [][]byte // reusable gather buffer
	validate bool
	firstErr *ErrOnce
}

func (rc *RankCtx) plan() *RankPlan { return rc.engine.plan }

// Graphs returns the number of graphs in the app.
func (rc *RankCtx) Graphs() int { return len(rc.plan().App.Graphs) }

// Graph returns graph gi.
func (rc *RankCtx) Graph(gi int) *core.Graph { return rc.plan().App.Graphs[gi] }

// Span returns the columns of graph gi this rank owns.
func (rc *RankCtx) Span(gi int) Span { return rc.plan().Span(gi, rc.Rank) }

// Threads returns the intra-rank worker count of the engine's layout.
func (rc *RankCtx) Threads() int { return rc.engine.threads }

// Active reports whether graph gi has a timestep t.
func (rc *RankCtx) Active(gi, t int) bool { return t < rc.Graph(gi).Timesteps }

// Window returns this rank's owned slice [lo, hi) of graph gi's active
// window at timestep t; the slice may be empty.
func (rc *RankCtx) Window(gi, t int) (lo, hi int) {
	g := rc.Graph(gi)
	span := rc.Span(gi)
	off := g.OffsetAtTimestep(t)
	return max(span.Lo, off), min(span.Hi, off+g.WidthAtTimestep(t))
}

// Prev returns the payload column i of graph gi produced in the
// previous timestep.
func (rc *RankCtx) Prev(gi, i int) []byte { return rc.plan().Rows(rc.Rank, gi).Prev(i) }

// Cur returns the output buffer of column i of graph gi in the current
// timestep.
func (rc *RankCtx) Cur(gi, i int) []byte { return rc.plan().Rows(rc.Rank, gi).Cur(i) }

// Flip swaps graph gi's payload rows at the end of a timestep.
func (rc *RankCtx) Flip(gi int) { rc.plan().Rows(rc.Rank, gi).Flip() }

// Barrier blocks until every rank of the engine arrives — the global
// barrier of the bulk-synchronous paradigm. A policy either calls it
// on every rank at every timestep or not at all.
func (rc *RankCtx) Barrier() { rc.engine.barrier.Wait() }

// Recv blocks until the next payload on the edge producer→consumer of
// graph gi arrives.
func (rc *RankCtx) Recv(gi, producer, consumer int) []byte {
	return rc.engine.transport.Recv(gi, producer, consumer)
}

// Send transmits payload along the edge producer→consumer of graph gi,
// capturing transport failures as the run's first error.
func (rc *RankCtx) Send(gi, producer, consumer int, payload []byte) {
	if err := rc.engine.transport.Send(rc.Rank, gi, producer, consumer, payload); err != nil {
		rc.firstErr.Set(err)
	}
}

// Run executes owned task (t, i) of graph gi — gather local inputs
// from the previous row and remote ones from the transport, execute,
// capture errors — and returns the output buffer. Not safe for
// concurrent calls within one rank (it shares the rank's gather
// buffer); intra-rank threads use RunInto with their own buffers.
func (rc *RankCtx) Run(gi, t, i int) []byte {
	var out []byte
	rc.in, out = rc.RunInto(rc.in, gi, t, i)
	return out
}

// RunInto is Run with a caller-owned gather buffer, for policies that
// execute a rank's tasks on several goroutines. It returns the reused
// buffer and the task's output. Received remote payloads are recycled
// back to the transport after execution, so steady-state communication
// reuses buffers instead of allocating.
//
//taskbench:hotpath
func (rc *RankCtx) RunInto(inputs [][]byte, gi, t, i int) ([][]byte, []byte) {
	g := rc.Graph(gi)
	span := rc.Span(gi)
	rows := rc.plan().Rows(rc.Rank, gi)
	tr := rc.engine.transport
	inputs = inputs[:0]
	deps := g.PointDeps(t, i)
	for dep, ok := deps.Next(); ok; dep, ok = deps.Next() {
		if dep >= span.Lo && dep < span.Hi {
			inputs = append(inputs, rows.Prev(dep)) //taskbench:allocok grows to the max in-degree once, then reuses capacity
		} else {
			inputs = append(inputs, tr.Recv(gi, dep, i)) //taskbench:allocok grows to the max in-degree once, then reuses capacity
		}
	}
	out := rc.ExecWith(gi, t, i, inputs)
	// The remote inputs are dead now (validation samples them during
	// ExecWith); hand their buffers back to the transport. Re-walking
	// the relation recovers which gathered inputs were remote without
	// any per-call bookkeeping state (RunInto must stay reentrant for
	// hybrid's intra-rank threads).
	n := 0
	deps = g.PointDeps(t, i)
	for dep, ok := deps.Next(); ok; dep, ok = deps.Next() {
		if dep < span.Lo || dep >= span.Hi {
			tr.Recycle(gi, inputs[n])
		}
		n++
	}
	return inputs, out
}

// ExecWith executes task (t, i) of graph gi with explicitly gathered
// inputs, writing into the current row. On failure it records the
// run's first error but still publishes a valid output, keeping the
// protocol flowing so peer ranks do not deadlock on missing sends.
// Once the run has failed, remaining tasks skip kernel execution
// entirely: the schedule drains at wire speed (outputs are still
// published for peers) instead of burning kernel time on doomed work —
// which is what lets a job on a dead cluster peer fail in milliseconds
// rather than after the full busy-wait schedule.
//
//taskbench:hotpath
func (rc *RankCtx) ExecWith(gi, t, i int, inputs [][]byte) []byte {
	g := rc.Graph(gi)
	out := rc.plan().Rows(rc.Rank, gi).Cur(i)
	if rc.firstErr.Failed() {
		g.WriteOutput(t, i, out)
		return out
	}
	err := g.ExecutePoint(t, i, out, inputs, rc.plan().Scratch(gi, i), rc.validate)
	if err != nil {
		rc.firstErr.Set(err)
		g.WriteOutput(t, i, out)
	}
	return out
}

// SendOutputs sends task (t, i)'s output to every consumer in the next
// timestep owned by a different rank.
//
//taskbench:hotpath
func (rc *RankCtx) SendOutputs(gi, t, i int, out []byte) {
	g := rc.Graph(gi)
	tr := rc.engine.transport
	cons := g.PointConsumers(t, i)
	for c, ok := cons.Next(); ok; c, ok = cons.Next() {
		if tr.Remote(gi, i, c) {
			rc.Send(gi, i, c, out)
		}
	}
}

// Recycle hands a received payload buffer back to the transport once
// the policy is done with it, for policies (ptg) that gather inputs
// themselves instead of going through RunInto.
func (rc *RankCtx) Recycle(gi int, payload []byte) {
	rc.engine.transport.Recycle(gi, payload)
}

// RankEngine executes a RankPlan under a pluggable RankPolicy. It owns
// the parts every rank-based backend previously duplicated: rank
// goroutine spawn and join, transport construction and reuse, per-rank
// column ownership, barrier lifecycle, payload row buffering, and
// first-error capture. An engine may be reused: a caller holding a
// Reset RankPlan can rerun it without rewiring the fabric (see
// RankSession).
type RankEngine struct {
	plan      *RankPlan
	policy    RankPolicy
	threads   int
	local     Span // ranks hosted by this engine (all of them in-process)
	transport Transport
	barrier   *Barrier
	ctxs      []*RankCtx
}

// NewRankEngine builds an engine over plan with the given policy and
// intra-rank thread count. Schedule compilation (RankCompiler) and
// transport construction (RankTransporter, defaulting to the
// in-process Fabric over the plan's edge lists) happen here, outside
// any timed region.
func NewRankEngine(plan *RankPlan, policy RankPolicy, threads int) (*RankEngine, error) {
	e := newRankEngine(plan, policy, threads)
	if transporter, ok := policy.(RankTransporter); ok {
		transport, err := transporter.OpenTransport(plan)
		if err != nil {
			return nil, err
		}
		e.transport = transport
	} else {
		e.transport = fabricTransport{NewFabricFromEdges(plan.edges)}
	}
	return e, nil
}

// NewLocalRankEngine builds an engine hosting only the plan's Local
// rank span, moving cross-rank payloads over an externally supplied
// transport — a cluster worker's slice of a multi-process run whose
// remaining ranks live in other processes. The engine owns the
// transport and Closes it. Policies driven this way must be
// barrier-free: the cyclic barrier cannot span processes, so only the
// local ranks participate in it.
func NewLocalRankEngine(plan *RankPlan, policy RankPolicy, threads int, transport Transport) *RankEngine {
	e := newRankEngine(plan, policy, threads)
	e.transport = transport
	return e
}

func newRankEngine(plan *RankPlan, policy RankPolicy, threads int) *RankEngine {
	if threads < 1 {
		threads = 1
	}
	if compiler, ok := policy.(RankCompiler); ok {
		compiler.CompileRanks(plan)
	}
	e := &RankEngine{
		plan:    plan,
		policy:  policy,
		threads: threads,
		local:   plan.Local,
		barrier: NewBarrier(plan.Local.Len()),
	}
	e.ctxs = make([]*RankCtx, plan.Ranks)
	for r := e.local.Lo; r < e.local.Hi; r++ {
		e.ctxs[r] = &RankCtx{Rank: r, engine: e}
	}
	return e
}

// Run executes every locally hosted task of the plan once, one
// goroutine per rank, and returns the first validation or transport
// error. Even on error every rank completes its schedule (validation is
// skipped after the first failure), so the transport always drains.
// Call Plan.Reset before running again.
func (e *RankEngine) Run(validate bool) error {
	firstErr := &ErrOnce{}
	flusher, _ := e.transport.(Flusher)
	var wg sync.WaitGroup
	for r := e.local.Lo; r < e.local.Hi; r++ {
		rc := e.ctxs[r]
		rc.validate = validate
		rc.firstErr = firstErr
		wg.Add(1)
		go func(rc *RankCtx) {
			defer wg.Done()
			for t := 0; t < e.plan.MaxSteps; t++ {
				e.policy.Step(rc, t)
				if flusher != nil {
					if err := flusher.Flush(rc.Rank); err != nil {
						firstErr.Set(err)
					}
				}
			}
		}(rc)
	}
	wg.Wait()
	firstErr.Set(e.transport.Err())
	return firstErr.Err()
}

// Close releases the engine's transport.
func (e *RankEngine) Close() { e.transport.Close() }

// RankSession couples an app with a reusable RankPlan and RankEngine —
// the rank-space analog of Session. Repeated runs of one configuration
// (a distributed METG sweep measuring the same graph at shrinking
// kernel sizes) pay plan construction, fabric wiring and, for tcp,
// connection establishment once instead of per measurement point.
// Callers may mutate the app's kernel configuration between runs; the
// DAG shape must stay fixed.
type RankSession struct {
	App     *core.App
	Plan    *RankPlan
	engine  *RankEngine
	workers int
}

// NewRankSession builds the app's rank plan (in parallel) and prepares
// an engine over it with the given policy.
func NewRankSession(app *core.App, policy RankPolicy) (*RankSession, error) {
	layout := policy.Layout(app)
	plan := BuildRankPlan(app, layout.Ranks)
	engine, err := NewRankEngine(plan, policy, layout.Threads)
	if err != nil {
		return nil, err
	}
	return &RankSession{App: app, Plan: plan, engine: engine, workers: layout.Workers()}, nil
}

// Run resets the plan and executes it once, returning fresh statistics
// for the app's current kernel configuration.
func (s *RankSession) Run() (core.RunStats, error) {
	s.Plan.Reset()
	return Measure(s.App, s.workers, func() error {
		return s.engine.Run(s.App.Validate)
	})
}

// Close releases the session's transport resources.
func (s *RankSession) Close() { s.engine.Close() }

// RunRanks executes app once through a fresh RankSession — the shared
// Run body of every rank backend.
func RunRanks(app *core.App, policy RankPolicy) (core.RunStats, error) {
	sess, err := NewRankSession(app, policy)
	if err != nil {
		return core.RunStats{}, err
	}
	defer sess.Close()
	return sess.Run()
}
