//go:build race

package exec_test

// raceEnabled reports that this test binary was built with the race
// detector, which instruments allocations and makes
// testing.AllocsPerRun meaningless.
const raceEnabled = true
