package exec

import (
	"sync"
	"sync/atomic"
)

// Buf is a reference-counted payload buffer. Shared-memory DAG
// backends (taskpool, steal, events, graphexec, central) execute tasks
// from different timesteps concurrently, so a task's output must stay
// alive exactly until its last consumer has validated it — the same
// lifetime rule the paper's task-based runtimes implement. Producers
// set the reference count to the consumer count; each consumer
// releases once; the buffer then recycles through the pool.
type Buf struct {
	Data []byte
	refs atomic.Int32
	pool *BufPool
}

// Release drops one reference, recycling the buffer when it reaches
// zero. Safe to call concurrently from multiple consumers.
//
//taskbench:hotpath
func (b *Buf) Release() {
	if b.refs.Add(-1) == 0 {
		b.pool.put(b)
	}
}

// BufPool recycles fixed-size payload buffers.
type BufPool struct {
	size int
	pool sync.Pool
}

// NewBufPool creates a pool of buffers of the given size.
func NewBufPool(size int) *BufPool {
	p := &BufPool{size: size}
	p.pool.New = func() any {
		return &Buf{Data: make([]byte, size), pool: p}
	}
	return p
}

// Get returns a buffer with the reference count set to refs. A task
// with zero consumers may pass refs=1 and release after writing, so
// the buffer is still valid while the task writes its output.
//
//taskbench:hotpath
func (p *BufPool) Get(refs int) *Buf {
	b := p.pool.Get().(*Buf)
	b.refs.Store(int32(refs))
	return b
}

func (p *BufPool) put(b *Buf) {
	p.pool.Put(b)
}
