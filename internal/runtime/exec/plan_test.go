package exec

import (
	"testing"
	"testing/quick"

	"taskbench/internal/core"
)

func planApp() *core.App {
	return core.NewApp(
		core.MustNew(core.Params{GraphID: 0, Timesteps: 4, MaxWidth: 4, Dependence: core.Stencil1D}),
		core.MustNew(core.Params{GraphID: 1, Timesteps: 3, MaxWidth: 2, Dependence: core.Trivial}),
	)
}

func TestBuildPlanShape(t *testing.T) {
	app := planApp()
	p := BuildPlan(app)
	if got := p.TaskCount(); got != app.TotalTasks() {
		t.Errorf("TaskCount = %d, want %d", got, app.TotalTasks())
	}
	// Seeds: timestep 0 of graph 0 (4 tasks) plus every task of the
	// trivial graph (6 tasks).
	if got := len(p.Seeds); got != 4+6 {
		t.Errorf("Seeds = %d, want 10", got)
	}
	// Every existing task's counter equals its input count (stencil
	// has no scratch, so no serialization edges).
	for id := range p.Tasks {
		task := &p.Tasks[id]
		if !task.Exists {
			continue
		}
		if got := task.Counter.Load(); got != int32(len(task.Inputs)) {
			t.Errorf("task %d counter = %d, want %d", id, got, len(task.Inputs))
		}
	}
}

func TestBuildPlanConsumersMatchInputs(t *testing.T) {
	p := BuildPlan(planApp())
	// Sum of PayloadRefs equals total dependence edges.
	var refs, edges int64
	for id := range p.Tasks {
		task := &p.Tasks[id]
		if !task.Exists {
			continue
		}
		refs += int64(task.PayloadRefs)
		edges += int64(len(task.Inputs))
	}
	if refs != edges {
		t.Errorf("PayloadRefs sum = %d, edges = %d", refs, edges)
	}
}

func TestBuildPlanTreeHoles(t *testing.T) {
	app := core.NewApp(core.MustNew(core.Params{Timesteps: 5, MaxWidth: 8, Dependence: core.Tree}))
	p := BuildPlan(app)
	var existing int64
	for id := range p.Tasks {
		if p.Tasks[id].Exists {
			existing++
		}
	}
	if existing != app.TotalTasks() {
		t.Errorf("existing tasks = %d, want %d", existing, app.TotalTasks())
	}
	// Slot (0, 5) is a hole.
	if p.Tasks[p.ID(0, 0, 5)].Exists {
		t.Error("tree hole marked as existing")
	}
}

func TestBuildPlanScratchSerialization(t *testing.T) {
	// The trivial pattern with scratch must serialize each column.
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 3, MaxWidth: 2, Dependence: core.Trivial, ScratchBytes: 64,
	}))
	p := BuildPlan(app)
	// Only timestep 0 is seeded: later tasks wait on the column's
	// previous task.
	if got := len(p.Seeds); got != 2 {
		t.Errorf("Seeds = %d, want 2", got)
	}
	for tstep := 1; tstep < 3; tstep++ {
		for i := 0; i < 2; i++ {
			task := &p.Tasks[p.ID(0, tstep, i)]
			if got := task.Counter.Load(); got != 1 {
				t.Errorf("task (%d,%d) counter = %d, want 1 serialization edge", tstep, i, got)
			}
			if len(task.Inputs) != 0 {
				t.Errorf("task (%d,%d) has %d payload inputs, want 0", tstep, i, len(task.Inputs))
			}
		}
	}
	// No double-serialization when the pattern already has a self
	// dependence.
	app2 := core.NewApp(core.MustNew(core.Params{
		Timesteps: 3, MaxWidth: 2, Dependence: core.NoComm, ScratchBytes: 64,
	}))
	p2 := BuildPlan(app2)
	task := &p2.Tasks[p2.ID(0, 1, 0)]
	if got := task.Counter.Load(); got != 1 {
		t.Errorf("no_comm task counter = %d, want 1 (self dep only)", got)
	}
}

func TestPlanExecuteSequentially(t *testing.T) {
	app := planApp()
	p := BuildPlan(app)
	pools := NewPools(app)
	out := make([]*Buf, len(p.Tasks))
	// Kahn-style sequential drain.
	queue := append([]int32(nil), p.Seeds...)
	var executed int64
	var inputs [][]byte
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		var err error
		inputs, err = p.Execute(id, out, pools, true, inputs)
		if err != nil {
			t.Fatalf("Execute(%d): %v", id, err)
		}
		executed++
		for _, cons := range p.Tasks[id].Consumers {
			if p.Tasks[cons].Counter.Add(-1) == 0 {
				queue = append(queue, cons)
			}
		}
	}
	if executed != p.TaskCount() {
		t.Errorf("executed %d tasks, want %d", executed, p.TaskCount())
	}
}

func TestPlanIDRoundTrip(t *testing.T) {
	app := planApp()
	p := BuildPlan(app)
	for gi, g := range app.Graphs {
		for ts := 0; ts < g.Timesteps; ts++ {
			for i := 0; i < g.MaxWidth; i++ {
				id := p.ID(gi, ts, i)
				task := &p.Tasks[id]
				if !task.Exists {
					continue
				}
				if int(task.Graph) != gi || int(task.T) != ts || int(task.I) != i {
					t.Fatalf("ID(%d,%d,%d) → task (%d,%d,%d)", gi, ts, i, task.Graph, task.T, task.I)
				}
			}
		}
	}
}

// Property: the plan's seed set and counters admit a complete
// topological drain for every pattern — no task is unreachable.
func TestPlanDrainsCompletelyProperty(t *testing.T) {
	deps := core.DependenceTypes()
	f := func(depRaw, widthRaw, stepsRaw uint8, scratch bool) bool {
		dep := deps[int(depRaw)%len(deps)]
		width := 1 + int(widthRaw)%16
		if dep.RequiresPowerOfTwoWidth() {
			width = 1 << (int(widthRaw) % 5)
		}
		steps := 1 + int(stepsRaw)%8
		radix := 0
		if dep == core.Nearest || dep == core.Spread || dep == core.RandomNearest {
			radix = 1 + int(widthRaw)%min(5, width)
		}
		p := core.Params{Timesteps: steps, MaxWidth: width, Dependence: dep, Radix: radix}
		if scratch {
			p.ScratchBytes = 64
		}
		g, err := core.New(p)
		if err != nil {
			return false
		}
		plan := BuildPlan(core.NewApp(g))
		queue := append([]int32(nil), plan.Seeds...)
		var drained int64
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			drained++
			for _, cons := range plan.Tasks[id].Consumers {
				if plan.Tasks[cons].Counter.Add(-1) == 0 {
					queue = append(queue, cons)
				}
			}
		}
		return drained == plan.TaskCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
