package exec

import (
	"sync/atomic"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
)

// Plan is the fully expanded task DAG of an application, shared by the
// shared-memory DAG backends (taskpool, steal, events, graphexec,
// central). It resolves each task's dependencies to task IDs, counts
// scheduling predecessors, and precomputes the reference count of each
// task's output buffer.
//
// Tasks of the same column are additionally serialized when the graph
// carries a per-column scratch buffer: the memory kernel's working set
// is stateful, so two timesteps of one column must not run
// concurrently. This mirrors how the reference runtimes treat scratch
// as a read-write region of the column. The extra edge carries no
// payload.
//
// A Plan is single-use: the dependence counters burn down as the run
// progresses.
type Plan struct {
	App   *core.App
	Tasks []PlannedTask
	// Seeds are the IDs of initially ready tasks.
	Seeds []int32
	// base[gi] is the ID offset of graph gi.
	base []int32
	// scratch[gi][i] is the persistent working set of column i.
	scratch [][]*kernels.Scratch
}

// PlannedTask is one node of the expanded DAG.
type PlannedTask struct {
	// Exists is false for slots that are outside a graph's active
	// window (e.g. early timesteps of the tree pattern).
	Exists bool
	Graph  int32
	T, I   int32
	// Counter holds the number of unsatisfied scheduling
	// predecessors.
	Counter atomic.Int32
	// Inputs are the producer task IDs in dependence order.
	Inputs []int32
	// Consumers are the scheduling successor task IDs.
	Consumers []int32
	// PayloadRefs is the number of tasks that read this task's output
	// payload. The buffer is allocated with PayloadRefs+1 references;
	// the extra one belongs to the producer and is dropped right after
	// execution, so buffers with no readers recycle immediately.
	PayloadRefs int32
}

// BuildPlan expands every graph of the app into a single DAG.
func BuildPlan(app *core.App) *Plan {
	p := &Plan{App: app}
	total := int32(0)
	p.base = make([]int32, len(app.Graphs))
	p.scratch = make([][]*kernels.Scratch, len(app.Graphs))
	for gi, g := range app.Graphs {
		p.base[gi] = total
		total += int32(g.Timesteps * g.MaxWidth)
		p.scratch[gi] = make([]*kernels.Scratch, g.MaxWidth)
		for i := 0; i < g.MaxWidth; i++ {
			p.scratch[gi][i] = kernels.NewScratch(g.ScratchBytes)
		}
	}
	p.Tasks = make([]PlannedTask, total)

	for gi, g := range app.Graphs {
		serializeColumns := g.ScratchBytes > 0
		for t := 0; t < g.Timesteps; t++ {
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			for i := off; i < off+w; i++ {
				id := p.ID(gi, t, i)
				task := &p.Tasks[id]
				task.Exists = true
				task.Graph = int32(gi)
				task.T = int32(t)
				task.I = int32(i)

				deps := g.DependenciesForPoint(t, i)
				nDeps := 0
				selfDep := false
				deps.ForEach(func(dep int) {
					prodID := p.ID(gi, t-1, dep)
					task.Inputs = append(task.Inputs, prodID)
					prod := &p.Tasks[prodID]
					prod.Consumers = append(prod.Consumers, id)
					prod.PayloadRefs++
					nDeps++
					if dep == i {
						selfDep = true
					}
				})
				// Scratch serialization edge (no payload).
				if serializeColumns && !selfDep && t > 0 && g.ContainsPoint(t-1, i) {
					prodID := p.ID(gi, t-1, i)
					p.Tasks[prodID].Consumers = append(p.Tasks[prodID].Consumers, id)
					nDeps++
				}
				task.Counter.Store(int32(nDeps))
				if nDeps == 0 {
					p.Seeds = append(p.Seeds, id)
				}
			}
		}
	}
	return p
}

// ID maps (graph, timestep, column) to the task's DAG index.
func (p *Plan) ID(graph, t, i int) int32 {
	g := p.App.Graphs[graph]
	return p.base[graph] + int32(t*g.MaxWidth+i)
}

// Graph returns the graph of task id.
func (p *Plan) Graph(id int32) *core.Graph {
	return p.App.Graphs[p.Tasks[id].Graph]
}

// Scratch returns the working set of task id's column.
func (p *Plan) Scratch(id int32) *kernels.Scratch {
	task := &p.Tasks[id]
	return p.scratch[task.Graph][task.I]
}

// TaskCount returns the number of existing tasks.
func (p *Plan) TaskCount() int64 {
	return p.App.TotalTasks()
}

// Execute runs task id: it allocates the task's output from pool,
// gathers input payloads from out, validates and executes the kernel,
// publishes the output, and releases the input references. It does NOT
// touch dependence counters — queueing discipline is the backend's
// business. Returns the first validation error (the task still
// publishes an output so execution can continue draining).
func (p *Plan) Execute(id int32, out []*Buf, pools []*BufPool, validate bool, inputs [][]byte) ([][]byte, error) {
	task := &p.Tasks[id]
	g := p.App.Graphs[task.Graph]
	buf := pools[task.Graph].Get(int(task.PayloadRefs) + 1)

	inputs = inputs[:0]
	for _, prodID := range task.Inputs {
		inputs = append(inputs, out[prodID].Data)
	}

	err := g.ExecutePoint(int(task.T), int(task.I), buf.Data, inputs, p.Scratch(id), validate)
	if err != nil {
		g.WriteOutput(int(task.T), int(task.I), buf.Data)
	}
	out[id] = buf
	for _, prodID := range task.Inputs {
		out[prodID].Release()
	}
	buf.Release() // the producer's own reference
	return inputs, err
}

// NewPools allocates one payload buffer pool per graph.
func NewPools(app *core.App) []*BufPool {
	pools := make([]*BufPool, len(app.Graphs))
	for gi, g := range app.Graphs {
		pools[gi] = NewBufPool(g.OutputBytes)
	}
	return pools
}
