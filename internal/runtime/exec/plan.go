package exec

import (
	stdruntime "runtime"
	"sync/atomic"
	"unsafe"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
)

// Plan is the fully expanded task DAG of an application, shared by the
// shared-memory DAG backends (taskpool, steal, events, graphexec,
// central). It resolves each task's dependencies to task IDs, counts
// scheduling predecessors, and precomputes the reference count of each
// task's output buffer.
//
// Tasks of the same column are additionally serialized when the graph
// carries a per-column scratch buffer: the memory kernel's working set
// is stateful, so two timesteps of one column must not run
// concurrently. This mirrors how the reference runtimes treat scratch
// as a read-write region of the column. The extra edge carries no
// payload.
//
// The dependence counters burn down as a run progresses; Reset
// restores them, so one Plan can serve many runs (an METG sweep
// measures the same DAG at every point of the granularity curve).
type Plan struct {
	App   *core.App
	Tasks []PlannedTask
	// Seeds are the IDs of initially ready tasks.
	Seeds []int32
	// base[gi] is the ID offset of graph gi.
	base []int32
	// initCount[id] is the initial dependence-counter value of task
	// id, kept so Reset can restore a drained plan.
	initCount []int32
	// scratch[gi][i] is the persistent working set of column i.
	scratch [][]*kernels.Scratch
}

// plannedTask carries the fields of PlannedTask; see PlannedTask for
// why the two types are split.
type plannedTask struct {
	// Exists is false for slots that are outside a graph's active
	// window (e.g. early timesteps of the tree pattern).
	Exists bool
	Graph  int32
	T, I   int32
	// Counter holds the number of unsatisfied scheduling
	// predecessors.
	Counter atomic.Int32
	// PayloadRefs is the number of tasks that read this task's output
	// payload. The buffer is allocated with PayloadRefs+1 references;
	// the extra one belongs to the producer and is dropped right after
	// execution, so buffers with no readers recycle immediately.
	PayloadRefs int32
	// Inputs are the producer task IDs in dependence order.
	Inputs []int32
	// Consumers are the scheduling successor task IDs.
	Consumers []int32
}

// PlannedTask is one node of the expanded DAG. The embedded payload is
// padded out to a multiple of 128 bytes (two cache lines, covering the
// adjacent-line prefetcher) so that the Counters of neighboring tasks —
// decremented concurrently by different workers during burn-down —
// never false-share a cache line. Task slots in Plan.Tasks are
// therefore line-aligned relative to each other.
type PlannedTask struct {
	plannedTask
	_ [(128 - unsafe.Sizeof(plannedTask{})%128) % 128]byte
}

// buildParallelThreshold is the task count below which BuildPlan stays
// on one goroutine; tiny plans are not worth the fan-out.
const buildParallelThreshold = 4096

// BuildPlan expands every graph of the app into a single DAG. Columns
// are expanded in parallel: each task's inputs come from the forward
// dependence relation and its consumers from the reverse relation, so
// every goroutine writes only the tasks of its own columns.
func BuildPlan(app *core.App) *Plan {
	p := &Plan{App: app}
	total := int32(0)
	p.base = make([]int32, len(app.Graphs))
	p.scratch = make([][]*kernels.Scratch, len(app.Graphs))
	for gi, g := range app.Graphs {
		p.base[gi] = total
		total += int32(g.Timesteps * g.MaxWidth)
		p.scratch[gi] = make([]*kernels.Scratch, g.MaxWidth)
	}
	p.Tasks = make([]PlannedTask, total)
	p.initCount = make([]int32, total)

	// One job per (graph, column span). The compiled dependence tables
	// are built eagerly so workers only read shared graph state.
	type job struct {
		gi     int
		lo, hi int
	}
	var jobs []job
	workers := stdruntime.GOMAXPROCS(0)
	if app.TotalTasks() < buildParallelThreshold {
		workers = 1
	}
	for gi, g := range app.Graphs {
		g.PrecomputeDeps()
		n := workers
		if n > g.MaxWidth {
			n = g.MaxWidth
		}
		for _, span := range BlockAssign(g.MaxWidth, n) {
			if span.Len() > 0 {
				jobs = append(jobs, job{gi, span.Lo, span.Hi})
			}
		}
	}

	seedParts := make([][]int32, len(jobs))
	fills := make([]func(), len(jobs))
	for k, j := range jobs {
		k, j := k, j
		fills[k] = func() { seedParts[k] = p.fillColumns(j.gi, j.lo, j.hi) }
	}
	runJobs(workers, fills)
	for _, part := range seedParts {
		p.Seeds = append(p.Seeds, part...)
	}
	return p
}

// fillColumns expands columns [lo, hi) of graph gi, returning the seed
// tasks found. It writes only tasks of its own columns: inputs are
// read off the forward dependence relation and consumers off the
// reverse relation, which the core library guarantees are exact
// inverses of each other.
func (p *Plan) fillColumns(gi, lo, hi int) []int32 {
	g := p.App.Graphs[gi]
	serializeColumns := g.ScratchBytes > 0
	var seeds []int32
	for i := lo; i < hi; i++ {
		p.scratch[gi][i] = kernels.NewScratch(g.ScratchBytes)
		for t := 0; t < g.Timesteps; t++ {
			if !g.ContainsPoint(t, i) {
				continue
			}
			id := p.ID(gi, t, i)
			task := &p.Tasks[id]
			task.Exists = true
			task.Graph = int32(gi)
			task.T = int32(t)
			task.I = int32(i)

			nDeps := 0
			selfDep := false
			deps := g.PointDeps(t, i)
			for dep, ok := deps.Next(); ok; dep, ok = deps.Next() {
				task.Inputs = append(task.Inputs, p.ID(gi, t-1, dep))
				nDeps++
				if dep == i {
					selfDep = true
				}
			}
			// Scratch serialization edge from the column's previous
			// task (no payload).
			if serializeColumns && !selfDep && t > 0 && g.ContainsPoint(t-1, i) {
				nDeps++
			}

			refs := int32(0)
			cons := g.PointConsumers(t, i)
			for c, ok := cons.Next(); ok; c, ok = cons.Next() {
				task.Consumers = append(task.Consumers, p.ID(gi, t+1, c))
				refs++
			}
			task.PayloadRefs = refs
			// Mirror of the serialization edge: this task schedules the
			// column's next task when that task does not already
			// consume this one.
			if serializeColumns && g.ContainsPoint(t+1, i) {
				consumesSelf := false
				next := g.PointDeps(t+1, i)
				for dep, ok := next.Next(); ok; dep, ok = next.Next() {
					if dep == i {
						consumesSelf = true
					}
				}
				if !consumesSelf {
					task.Consumers = append(task.Consumers, p.ID(gi, t+1, i))
				}
			}

			task.Counter.Store(int32(nDeps))
			p.initCount[id] = int32(nDeps)
			if nDeps == 0 {
				seeds = append(seeds, id)
			}
		}
	}
	return seeds
}

// Reset restores the dependence counters of a drained plan, making it
// ready for another run without rebuilding the O(tasks) DAG. The seed
// list, inputs, consumers and payload reference counts are immutable,
// so only the counters need restoring. Scratch buffers keep their
// contents: they model persistent per-column working sets. Plans above
// buildParallelThreshold fan the counter walk out over task spans, so
// an METG sweep does not pay a serial O(tasks) pass at every
// measurement point.
func (p *Plan) Reset() {
	n := len(p.Tasks)
	workers := stdruntime.GOMAXPROCS(0)
	if n < buildParallelThreshold || workers <= 1 {
		p.resetSpan(0, n)
		return
	}
	jobs := make([]func(), 0, workers)
	for _, span := range BlockAssign(n, workers) {
		if span.Len() > 0 {
			span := span
			jobs = append(jobs, func() { p.resetSpan(span.Lo, span.Hi) })
		}
	}
	runJobs(workers, jobs)
}

// resetSpan restores the counters of task IDs [lo, hi).
func (p *Plan) resetSpan(lo, hi int) {
	for id := lo; id < hi; id++ {
		p.Tasks[id].Counter.Store(p.initCount[id])
	}
}

// ID maps (graph, timestep, column) to the task's DAG index.
func (p *Plan) ID(graph, t, i int) int32 {
	g := p.App.Graphs[graph]
	return p.base[graph] + int32(t*g.MaxWidth+i)
}

// Graph returns the graph of task id.
func (p *Plan) Graph(id int32) *core.Graph {
	return p.App.Graphs[p.Tasks[id].Graph]
}

// Scratch returns the working set of task id's column.
func (p *Plan) Scratch(id int32) *kernels.Scratch {
	task := &p.Tasks[id]
	return p.scratch[task.Graph][task.I]
}

// TaskCount returns the number of existing tasks.
func (p *Plan) TaskCount() int64 {
	return p.App.TotalTasks()
}

// Execute runs task id: it allocates the task's output from pool,
// gathers input payloads from out, validates and executes the kernel,
// publishes the output, and releases the input references. It does NOT
// touch dependence counters — queueing discipline is the backend's
// business. Returns the first validation error (the task still
// publishes an output so execution can continue draining).
//
//taskbench:hotpath
func (p *Plan) Execute(id int32, out []*Buf, pools []*BufPool, validate bool, inputs [][]byte) ([][]byte, error) {
	task := &p.Tasks[id]
	g := p.App.Graphs[task.Graph]
	buf := pools[task.Graph].Get(int(task.PayloadRefs) + 1)

	inputs = inputs[:0]
	for _, prodID := range task.Inputs {
		inputs = append(inputs, out[prodID].Data) //taskbench:allocok grows to the DAG's max in-degree once, then reuses capacity
	}

	err := g.ExecutePoint(int(task.T), int(task.I), buf.Data, inputs, p.Scratch(id), validate)
	if err != nil {
		g.WriteOutput(int(task.T), int(task.I), buf.Data)
	}
	out[id] = buf
	for _, prodID := range task.Inputs {
		out[prodID].Release()
	}
	buf.Release() // the producer's own reference
	return inputs, err
}

// NewPools allocates one payload buffer pool per graph.
func NewPools(app *core.App) []*BufPool {
	pools := make([]*BufPool, len(app.Graphs))
	for gi, g := range app.Graphs {
		pools[gi] = NewBufPool(g.OutputBytes)
	}
	return pools
}
