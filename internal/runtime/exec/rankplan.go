package exec

import (
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
)

// RankPlan is the rank-space analog of Plan: the precomputed, reusable
// layout a rank-based backend executes. It holds the per-rank column
// spans under block distribution, the distinct cross-rank dependence
// edges of every graph (the channels or wire queues a transport must
// provide), each rank's double-buffered payload rows, and the
// persistent per-column scratch working sets. Building it is the setup
// cost an METG sweep used to pay at every measurement point; a
// RankSession builds one RankPlan per configuration and Resets it per
// point instead.
type RankPlan struct {
	App   *core.App
	Ranks int
	// MaxSteps is the tallest graph's timestep count — the length of
	// every rank's outer loop.
	MaxSteps int
	// Local is the contiguous span of ranks hosted by this process. An
	// in-process plan hosts every rank; a cluster worker builds payload
	// rows and scratch only for its assigned span, while spans and edge
	// lists stay global (remote routing needs them).
	Local Span

	spans   [][]Span             // [graph][rank]
	edges   [][]Edge             // [graph]: distinct cross-rank dependence edges
	rows    [][]*Rows            // [rank][graph]; nil outside Local
	scratch [][]*kernels.Scratch // [graph][column]; nil outside Local's columns
}

// BuildRankPlan expands the app's rank layout for the given rank
// count. Like BuildPlan, construction fans out over a bounded pool:
// spans, edge lists and scratch are one job per graph, and each rank's
// payload rows (the large allocations) are one job per (rank, graph).
func BuildRankPlan(app *core.App, ranks int) *RankPlan {
	if ranks < 1 {
		ranks = 1
	}
	return BuildRankPlanLocal(app, ranks, Span{Lo: 0, Hi: ranks})
}

// BuildRankPlanLocal builds the plan of a process hosting only the
// local span of a ranks-wide run — a cluster worker's slice of a
// multi-process mesh. The global structures (per-rank spans, cross-rank
// edge lists) cover every rank, so transports can route to remote
// peers; the per-rank memory (payload rows, scratch working sets) is
// allocated for the local ranks only.
func BuildRankPlanLocal(app *core.App, ranks int, local Span) *RankPlan {
	if ranks < 1 {
		ranks = 1
	}
	local.Lo = max(local.Lo, 0)
	local.Hi = min(local.Hi, ranks)
	if local.Hi < local.Lo {
		local.Hi = local.Lo
	}
	p := &RankPlan{App: app, Ranks: ranks, Local: local}
	n := len(app.Graphs)
	p.spans = make([][]Span, n)
	p.edges = make([][]Edge, n)
	p.scratch = make([][]*kernels.Scratch, n)
	p.rows = make([][]*Rows, ranks)
	for r := range p.rows {
		p.rows[r] = make([]*Rows, n)
	}
	for _, g := range app.Graphs {
		if g.Timesteps > p.MaxSteps {
			p.MaxSteps = g.Timesteps
		}
	}

	var jobs []func()
	for gi := range app.Graphs {
		gi := gi
		jobs = append(jobs, func() { p.fillGraph(gi) })
		for r := local.Lo; r < local.Hi; r++ {
			r := r
			jobs = append(jobs, func() {
				g := app.Graphs[gi]
				p.rows[r][gi] = NewRows(g.MaxWidth, g.OutputBytes)
			})
		}
	}
	workers := stdruntime.GOMAXPROCS(0)
	if app.TotalTasks() < buildParallelThreshold {
		// Same cutoff as BuildPlan: tiny apps are not worth the
		// fan-out.
		workers = 1
	}
	runJobs(workers, jobs)
	return p
}

// fillGraph computes the span table, cross-rank edge list and scratch
// buffers of one graph.
func (p *RankPlan) fillGraph(gi int) {
	g := p.App.Graphs[gi]
	// Compile the dependence table up front: CrossEdges reads it here,
	// and every rank's Step-time queries (gather, send routing) hit the
	// already-built table instead of racing through the lazy build.
	g.PrecomputeDeps()
	p.spans[gi] = BlockAssign(g.MaxWidth, p.Ranks)
	CrossEdges(g, p.Ranks, func(producer, consumer int) {
		p.edges[gi] = append(p.edges[gi], Edge{Producer: producer, Consumer: consumer})
	})
	p.scratch[gi] = make([]*kernels.Scratch, g.MaxWidth)
	if p.Local.Len() > 0 {
		// Scratch working sets can be large; allocate them only for the
		// columns the local ranks execute (contiguous under block
		// distribution).
		lo := p.spans[gi][p.Local.Lo].Lo
		hi := p.spans[gi][p.Local.Hi-1].Hi
		for i := lo; i < hi; i++ {
			p.scratch[gi][i] = kernels.NewScratch(g.ScratchBytes)
		}
	}
}

// runJobs executes the jobs on a bounded pool of at most workers
// goroutines (spawning the jobs all at once would oversubscribe the
// scheduler), staying serial when workers or the job count is 1. It
// is the shared fan-out of BuildPlan and BuildRankPlan.
func runJobs(workers int, jobs []func()) {
	workers = min(workers, len(jobs))
	if workers <= 1 {
		for _, job := range jobs {
			job()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(jobs) {
					return
				}
				jobs[k]()
			}
		}()
	}
	wg.Wait()
}

// Span returns the columns of graph gi owned by rank.
func (p *RankPlan) Span(gi, rank int) Span { return p.spans[gi][rank] }

// Edges returns graph gi's distinct cross-rank dependence edges.
func (p *RankPlan) Edges(gi int) []Edge { return p.edges[gi] }

// Rows returns rank's payload rows for graph gi.
func (p *RankPlan) Rows(rank, gi int) *Rows { return p.rows[rank][gi] }

// Scratch returns the persistent working set of graph gi's column i.
func (p *RankPlan) Scratch(gi, i int) *kernels.Scratch { return p.scratch[gi][i] }

// Reset makes the plan ready for another run by restoring every rank's
// payload rows to their home orientation. Spans and edge lists are
// immutable, transport queues drain themselves (every send of a run is
// matched by a receive, even on the error path, because ranks keep the
// protocol flowing after a failure), and scratch buffers persist by
// design — they model per-column working sets. Unlike Plan.Reset there
// is no O(tasks) walk to parallelize here: each Rows.Rehome is at most
// one pair of slice-header swaps, so the whole reset is
// O(ranks × graphs) regardless of graph size.
func (p *RankPlan) Reset() {
	for _, rows := range p.rows {
		for _, r := range rows {
			if r != nil {
				r.Rehome()
			}
		}
	}
}
