package events

import (
	"sync/atomic"
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestPolicyConformance(t *testing.T) {
	runtimetest.PolicyConformance(t, "events")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "events", 5)
}

func TestEventSubscribeBeforeTrigger(t *testing.T) {
	var e Event
	var fired atomic.Int32
	e.Subscribe(func() { fired.Add(1) })
	if fired.Load() != 0 {
		t.Error("subscriber ran before trigger")
	}
	e.Trigger()
	if fired.Load() != 1 {
		t.Errorf("fired = %d, want 1", fired.Load())
	}
	// Triggering again is a no-op.
	e.Trigger()
	if fired.Load() != 1 {
		t.Errorf("double trigger fired = %d, want 1", fired.Load())
	}
}

func TestEventSubscribeAfterTrigger(t *testing.T) {
	var e Event
	e.Trigger()
	var fired atomic.Int32
	e.Subscribe(func() { fired.Add(1) })
	if fired.Load() != 1 {
		t.Errorf("late subscriber fired = %d, want 1 (immediate)", fired.Load())
	}
}
