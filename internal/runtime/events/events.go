// Package events implements the Realm analog (paper §3.9): tasks are
// asynchronous, and dependencies are expressed as first-class events
// passed from producers to consumers. Each task owns a completion
// event; a task is enqueued for execution when the events of all its
// inputs have triggered. The whole event graph is wired up front,
// modeling Realm's subgraph optimization, and execution is fully
// asynchronous across timesteps and graphs.
//
// The worker pool, buffer lifetime and error capture live in the
// shared exec.Engine; this package contributes the event wiring. It
// implements exec.Completer, so readiness propagates through event
// triggers rather than the engine's counter burn-down.
package events

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("events", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "events" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "events",
		Analog:      "Realm",
		Paradigm:    "task-based (event-driven)",
		Parallelism: "explicit",
		Distributed: false,
		Async:       true,
		Notes:       "first-class completion events; event graph wired up front (subgraph API)",
	}
}

// Event is a one-shot trigger with subscriber callbacks, the core
// synchronization primitive of Realm.
type Event struct {
	mu        sync.Mutex
	triggered bool
	subs      []func()
}

// Subscribe registers fn to run when the event triggers. If the event
// already triggered, fn runs immediately.
func (e *Event) Subscribe(fn func()) {
	e.mu.Lock()
	if e.triggered {
		e.mu.Unlock()
		fn()
		return
	}
	e.subs = append(e.subs, fn)
	e.mu.Unlock()
}

// Trigger fires the event exactly once, running all subscribers.
func (e *Event) Trigger() {
	e.mu.Lock()
	if e.triggered {
		e.mu.Unlock()
		return
	}
	e.triggered = true
	subs := e.subs
	e.subs = nil
	e.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
}

// policy wires one completion Event per task and subscribes each task
// to its scheduling predecessors; triggered countdowns feed a ready
// channel sized for the whole DAG so triggers never block.
type policy struct {
	ready  chan int32
	events []*Event
	batch  [][1]int32
}

func (p *policy) Init(plan *exec.Plan, workers int) {
	p.ready = make(chan int32, plan.TaskCount())
	p.events = make([]*Event, len(plan.Tasks))
	p.batch = make([][1]int32, workers)
	for id := range plan.Tasks {
		if plan.Tasks[id].Exists {
			p.events[id] = &Event{}
		}
	}
	// Wire the event graph: each task subscribes to the completion
	// events of its scheduling predecessors via a countdown.
	for id := range plan.Tasks {
		task := &plan.Tasks[id]
		if !task.Exists {
			continue
		}
		id32 := int32(id)
		n := task.Counter.Load()
		if n == 0 {
			p.ready <- id32
			continue
		}
		countdown := func() {
			if task.Counter.Add(-1) == 0 {
				p.ready <- id32
			}
		}
		for _, prodID := range task.Inputs {
			p.events[prodID].Subscribe(countdown)
		}
		// Scratch-serialization edges are scheduling-only
		// predecessors not present in Inputs.
		extra := int(n) - len(task.Inputs)
		if extra > 0 {
			prev := plan.ID(int(task.Graph), int(task.T)-1, int(task.I))
			for k := 0; k < extra; k++ {
				p.events[prev].Subscribe(countdown)
			}
		}
	}
}

// Push is never called: the policy implements exec.Completer, so
// readiness propagates through event triggers.
func (p *policy) Push(worker int, ids []int32) {}

func (p *policy) Pop(worker int) ([]int32, bool) {
	id, ok := <-p.ready
	if !ok {
		return nil, false
	}
	p.batch[worker][0] = id
	return p.batch[worker][:], true
}

// Complete triggers the task's completion event, running the countdown
// of every subscribed consumer.
func (p *policy) Complete(worker int, id int32) {
	p.events[id].Trigger()
}

func (p *policy) Close() { close(p.ready) }

func (rt) Policy() exec.Policy { return &policy{} }

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	return exec.Measure(app, workers, func() error {
		return exec.NewEngine(exec.BuildPlan(app), &policy{}, workers).Run(app.Validate)
	})
}
