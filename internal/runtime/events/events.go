// Package events implements the Realm analog (paper §3.9): tasks are
// asynchronous, and dependencies are expressed as first-class events
// passed from producers to consumers. Each task owns a completion
// event; a task is enqueued for execution when the events of all its
// inputs have triggered. The whole event graph is wired up front,
// modeling Realm's subgraph optimization, and execution is fully
// asynchronous across timesteps and graphs.
package events

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("events", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "events" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "events",
		Analog:      "Realm",
		Paradigm:    "task-based (event-driven)",
		Parallelism: "explicit",
		Distributed: false,
		Async:       true,
		Notes:       "first-class completion events; event graph wired up front (subgraph API)",
	}
}

// Event is a one-shot trigger with subscriber callbacks, the core
// synchronization primitive of Realm.
type Event struct {
	mu        sync.Mutex
	triggered bool
	subs      []func()
}

// Subscribe registers fn to run when the event triggers. If the event
// already triggered, fn runs immediately.
func (e *Event) Subscribe(fn func()) {
	e.mu.Lock()
	if e.triggered {
		e.mu.Unlock()
		fn()
		return
	}
	e.subs = append(e.subs, fn)
	e.mu.Unlock()
}

// Trigger fires the event exactly once, running all subscribers.
func (e *Event) Trigger() {
	e.mu.Lock()
	if e.triggered {
		e.mu.Unlock()
		return
	}
	e.triggered = true
	subs := e.subs
	e.subs = nil
	e.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		plan := exec.BuildPlan(app)
		pools := exec.NewPools(app)
		out := make([]*exec.Buf, len(plan.Tasks))
		total := plan.TaskCount()

		// ready is large enough to hold every task, so Trigger
		// callbacks never block.
		ready := make(chan int32, total)
		events := make([]*Event, len(plan.Tasks))
		for id := range plan.Tasks {
			if plan.Tasks[id].Exists {
				events[id] = &Event{}
			}
		}
		// Wire the event graph: each task subscribes to the completion
		// events of its scheduling predecessors via a countdown.
		for id := range plan.Tasks {
			task := &plan.Tasks[id]
			if !task.Exists {
				continue
			}
			id32 := int32(id)
			n := task.Counter.Load()
			if n == 0 {
				ready <- id32
				continue
			}
			countdown := func() {
				if task.Counter.Add(-1) == 0 {
					ready <- id32
				}
			}
			for _, prodID := range task.Inputs {
				events[prodID].Subscribe(countdown)
			}
			// Scratch-serialization edges are scheduling-only
			// predecessors not present in Inputs.
			extra := int(n) - len(task.Inputs)
			if extra > 0 {
				prev := plan.ID(int(task.Graph), int(task.T)-1, int(task.I))
				for k := 0; k < extra; k++ {
					events[prev].Subscribe(countdown)
				}
			}
		}

		var done sync.WaitGroup
		done.Add(int(total))
		go func() {
			done.Wait()
			close(ready)
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var inputs [][]byte
				for id := range ready {
					var err error
					inputs, err = plan.Execute(id, out, pools, app.Validate && !firstErr.Failed(), inputs)
					if err != nil {
						firstErr.Set(err)
					}
					events[id].Trigger()
					done.Done()
				}
			}()
		}
		wg.Wait()
		return firstErr.Err()
	})
}
