// Package runtimetest provides the conformance suite every backend
// must pass. Because the core library validates every task input
// against the dependence relation and every output is unique (paper
// §2), a run that completes without error proves the backend delivered
// exactly the right payloads to exactly the right tasks in every
// pattern. Each backend's own test file invokes Conformance (or
// PolicyConformance for backends built on the shared exec.Engine,
// which additionally checks fault injection and Plan.Reset reuse).
package runtimetest

import (
	"errors"
	"testing"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

// Case is one conformance scenario.
type Case struct {
	Name string
	App  func() *core.App
}

// graph is shorthand for building test graphs.
func graph(id int, dep core.DependenceType, width, steps, radix, output int) *core.Graph {
	return core.MustNew(core.Params{
		GraphID:     id,
		Timesteps:   steps,
		MaxWidth:    width,
		Dependence:  dep,
		Radix:       radix,
		OutputBytes: output,
		Seed:        99,
	})
}

// Cases returns the standard conformance battery.
func Cases() []Case {
	cases := []Case{}

	// Every dependence pattern on a power-of-two width.
	for _, dep := range core.DependenceTypes() {
		dep := dep
		radix := 0
		if dep == core.Nearest || dep == core.Spread || dep == core.RandomNearest {
			radix = 5
		}
		cases = append(cases, Case{
			Name: "pattern/" + dep.String(),
			App: func() *core.App {
				return core.NewApp(graph(0, dep, 8, 6, radix, 16))
			},
		})
	}

	cases = append(cases,
		Case{"wide_graph", func() *core.App {
			app := core.NewApp(graph(0, core.Stencil1D, 64, 8, 0, 16))
			app.Workers = 4
			return app
		}},
		Case{"tall_graph", func() *core.App {
			app := core.NewApp(graph(0, core.Stencil1D, 4, 100, 0, 16))
			app.Workers = 4
			return app
		}},
		Case{"large_payload", func() *core.App {
			return core.NewApp(graph(0, core.Stencil1DPeriodic, 8, 6, 0, 4096))
		}},
		Case{"single_column", func() *core.App {
			return core.NewApp(graph(0, core.NoComm, 1, 10, 0, 16))
		}},
		Case{"single_step", func() *core.App {
			return core.NewApp(graph(0, core.Stencil1D, 8, 1, 0, 16))
		}},
		Case{"single_worker", func() *core.App {
			app := core.NewApp(graph(0, core.Nearest, 16, 6, 5, 16))
			app.Workers = 1
			return app
		}},
		Case{"more_workers_than_columns", func() *core.App {
			app := core.NewApp(graph(0, core.Stencil1D, 2, 6, 0, 16))
			app.Workers = 8
			return app
		}},
		Case{"compute_kernel", func() *core.App {
			g := core.MustNew(core.Params{
				Timesteps: 5, MaxWidth: 8, Dependence: core.Stencil1D,
				Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: 50},
			})
			return core.NewApp(g)
		}},
		Case{"memory_kernel", func() *core.App {
			g := core.MustNew(core.Params{
				Timesteps: 5, MaxWidth: 8, Dependence: core.NoComm,
				Kernel:       kernels.Config{Type: kernels.MemoryBound, Iterations: 4, SpanBytes: 256},
				ScratchBytes: 4096,
			})
			return core.NewApp(g)
		}},
		Case{"imbalance_kernel", func() *core.App {
			g := core.MustNew(core.Params{
				Timesteps: 5, MaxWidth: 8, Dependence: core.Nearest, Radix: 5,
				Kernel: kernels.Config{Type: kernels.LoadImbalance, Iterations: 40, ImbalanceFactor: 1},
				Seed:   7,
			})
			return core.NewApp(g)
		}},
		Case{"two_heterogeneous_graphs", func() *core.App {
			return core.NewApp(
				graph(0, core.Stencil1D, 8, 6, 0, 16),
				graph(1, core.FFT, 16, 8, 0, 32),
			)
		}},
		Case{"four_identical_graphs", func() *core.App {
			gs := make([]*core.Graph, 4)
			for k := range gs {
				gs[k] = graph(k, core.Nearest, 8, 6, 5, 16)
			}
			return core.NewApp(gs...)
		}},
		Case{"graphs_of_unequal_height", func() *core.App {
			return core.NewApp(
				graph(0, core.Stencil1D, 8, 3, 0, 16),
				graph(1, core.Stencil1D, 8, 9, 0, 16),
			)
		}},
		Case{"validation_disabled", func() *core.App {
			app := core.NewApp(graph(0, core.Stencil1D, 8, 6, 0, 16))
			app.Validate = false
			return app
		}},
	)
	return cases
}

// FaultInjection verifies the backend's error path end to end: with
// payload corruption injected by the core library (Params.FaultRate),
// a consumer must detect the corruption during validation and the
// backend must surface a *core.ValidationError without deadlocking.
func FaultInjection(t *testing.T, name string) {
	t.Helper()
	rt, err := runtime.New(name)
	if err != nil {
		t.Fatalf("runtime.New(%q): %v", name, err)
	}
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps:   8,
		MaxWidth:    8,
		Dependence:  core.Stencil1D,
		OutputBytes: 64,
		FaultRate:   1.0, // every task corrupts its output
		Seed:        5,
	}))
	app.Workers = 4
	_, err = rt.Run(app)
	if err == nil {
		t.Fatalf("%s did not report injected corruption", name)
	}
	var verr *core.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("%s returned %T (%v), want *core.ValidationError", name, err, err)
	}

	// A clean app on the same backend still runs: the failure did not
	// poison shared state.
	clean := core.NewApp(core.MustNew(core.Params{
		Timesteps: 4, MaxWidth: 4, Dependence: core.Stencil1D,
	}))
	if _, err := rt.Run(clean); err != nil {
		t.Fatalf("%s failed on a clean app after a faulty one: %v", name, err)
	}
}

// Conformance runs the full battery against the named backend.
func Conformance(t *testing.T, name string) {
	t.Helper()
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			rt, err := runtime.New(name)
			if err != nil {
				t.Fatalf("runtime.New(%q): %v", name, err)
			}
			app := c.App()
			stats, err := rt.Run(app)
			if err != nil {
				t.Fatalf("%s failed on %s: %v", name, c.Name, err)
			}
			if stats.Tasks != app.TotalTasks() {
				t.Errorf("stats.Tasks = %d, want %d", stats.Tasks, app.TotalTasks())
			}
			if stats.Elapsed <= 0 {
				t.Errorf("stats.Elapsed = %v, want > 0", stats.Elapsed)
			}
			if stats.Workers <= 0 {
				t.Errorf("stats.Workers = %d, want > 0", stats.Workers)
			}
		})
	}
}

// PolicyConformance is the conformance suite for backends built on the
// shared exec.Engine: the full battery, the fault-injection error
// path, scratch-column serialization under plan reuse, and Plan.Reset
// reuse semantics. Each engine-backed backend's test file invokes it.
func PolicyConformance(t *testing.T, name string) {
	t.Helper()
	Conformance(t, name)
	t.Run("fault_injection", func(t *testing.T) { FaultInjection(t, name) })
	t.Run("plan_reuse", func(t *testing.T) { PlanReuse(t, name) })
	t.Run("plan_reuse_scratch", func(t *testing.T) { PlanReuseScratch(t, name) })
	t.Run("empty_app", func(t *testing.T) { EmptyApp(t, name) })
}

// EmptyApp checks the zero-task path: an app with no graphs must
// return immediately with zero tasks instead of deadlocking workers
// that wait for a first task.
func EmptyApp(t *testing.T, name string) {
	t.Helper()
	rt, err := runtime.New(name)
	if err != nil {
		t.Fatalf("runtime.New(%q): %v", name, err)
	}
	type result struct {
		stats core.RunStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		st, err := rt.Run(core.NewApp())
		done <- result{st, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("%s failed on an empty app: %v", name, r.err)
		}
		if r.stats.Tasks != 0 {
			t.Errorf("stats.Tasks = %d, want 0", r.stats.Tasks)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s deadlocked on an empty app", name)
	}
}

// policyFor fetches the backend's scheduling policy, failing the test
// if the backend does not run through the shared engine.
func policyFor(t *testing.T, name string) exec.Policy {
	t.Helper()
	rt, err := runtime.New(name)
	if err != nil {
		t.Fatalf("runtime.New(%q): %v", name, err)
	}
	pb, ok := rt.(runtime.PolicyBacked)
	if !ok {
		t.Fatalf("%s does not implement runtime.PolicyBacked", name)
	}
	return pb.Policy()
}

// PlanReuse runs one Session (one Plan, Reset between runs) several
// times and asserts every run validates cleanly and reports identical
// static statistics — the property METG sweeps rely on to drop the
// per-point O(tasks) rebuild.
func PlanReuse(t *testing.T, name string) {
	t.Helper()
	app := core.NewApp(
		graph(0, core.Stencil1D, 8, 10, 0, 32),
		graph(1, core.FFT, 8, 6, 0, 16),
	)
	app.Workers = 4
	sess := exec.NewSession(app, policyFor(t, name))
	var first core.RunStats
	for k := 0; k < 4; k++ {
		st, err := sess.Run()
		if err != nil {
			t.Fatalf("%s failed on reuse run %d: %v", name, k, err)
		}
		if st.Elapsed <= 0 {
			t.Errorf("run %d: Elapsed = %v, want > 0", k, st.Elapsed)
		}
		if k == 0 {
			first = st
			continue
		}
		if st.Tasks != first.Tasks || st.Dependencies != first.Dependencies ||
			st.Flops != first.Flops || st.Bytes != first.Bytes ||
			st.Workers != first.Workers {
			t.Errorf("run %d stats diverged: got %+v, want static fields of %+v", k, st, first)
		}
	}
}

// PlanReuseScratch reruns a Plan whose graph carries per-column
// scratch: the serialization edges must hold up across Reset, and the
// persistent working sets must not poison later runs.
func PlanReuseScratch(t *testing.T, name string) {
	t.Helper()
	g := core.MustNew(core.Params{
		Timesteps: 6, MaxWidth: 8, Dependence: core.NoComm,
		Kernel:       kernels.Config{Type: kernels.MemoryBound, Iterations: 4, SpanBytes: 256},
		ScratchBytes: 4096,
	})
	app := core.NewApp(g)
	app.Workers = 4
	sess := exec.NewSession(app, policyFor(t, name))
	for k := 0; k < 3; k++ {
		if _, err := sess.Run(); err != nil {
			t.Fatalf("%s failed on scratch reuse run %d: %v", name, k, err)
		}
	}
}

// RankPolicyConformance is the conformance suite for the rank-based
// message-passing backends built on the shared exec.RankEngine: the
// full battery, the fault-injection error path (whole-graph and
// deterministic mid-graph faults), RankPlan reuse across runs, rank
// counts 1–3 including widths not divisible by the rank count, and
// empty-app termination. Each rank backend's test file invokes it.
func RankPolicyConformance(t *testing.T, name string) {
	t.Helper()
	Conformance(t, name)
	t.Run("fault_injection", func(t *testing.T) { FaultInjection(t, name) })
	t.Run("fault_mid_graph", func(t *testing.T) { RankFaultMidGraph(t, name) })
	t.Run("rank_plan_reuse", func(t *testing.T) { RankPlanReuse(t, name) })
	t.Run("rank_counts", func(t *testing.T) { RankCounts(t, name) })
	t.Run("empty_app", func(t *testing.T) { EmptyApp(t, name) })
}

// rankPolicyFor fetches the backend's rank policy, failing the test if
// the backend does not run through the shared rank engine.
func rankPolicyFor(t *testing.T, name string) exec.RankPolicy {
	t.Helper()
	rt, err := runtime.New(name)
	if err != nil {
		t.Fatalf("runtime.New(%q): %v", name, err)
	}
	rb, ok := rt.(runtime.RankBacked)
	if !ok {
		t.Fatalf("%s does not implement runtime.RankBacked", name)
	}
	return rb.RankPolicy()
}

// RankPlanReuse runs one RankSession (one RankPlan and one transport,
// Reset between runs) several times and asserts every run validates
// cleanly and reports identical static statistics — the property
// distributed METG sweeps rely on to drop the per-point rebuild of
// spans, edge lists and fabric wiring. The widths are chosen so block
// distribution over three ranks is uneven.
func RankPlanReuse(t *testing.T, name string) {
	t.Helper()
	app := core.NewApp(
		graph(0, core.Stencil1DPeriodic, 6, 10, 0, 32),
		graph(1, core.Stencil1D, 7, 6, 0, 16),
	)
	app.Workers = 3
	app.Nodes = 3
	sess, err := exec.NewRankSession(app, rankPolicyFor(t, name))
	if err != nil {
		t.Fatalf("%s: NewRankSession: %v", name, err)
	}
	defer sess.Close()
	var first core.RunStats
	for k := 0; k < 4; k++ {
		st, err := sess.Run()
		if err != nil {
			t.Fatalf("%s failed on reuse run %d: %v", name, k, err)
		}
		if st.Elapsed <= 0 {
			t.Errorf("run %d: Elapsed = %v, want > 0", k, st.Elapsed)
		}
		if k == 0 {
			first = st
			continue
		}
		if st.Tasks != first.Tasks || st.Dependencies != first.Dependencies ||
			st.Flops != first.Flops || st.Bytes != first.Bytes ||
			st.Workers != first.Workers {
			t.Errorf("run %d stats diverged: got %+v, want static fields of %+v", k, st, first)
		}
	}
}

// RankCounts runs the backend at rank counts 1, 2 and 3 over widths
// that divide unevenly (or not at all) across the ranks, including a
// width smaller than the rank count.
func RankCounts(t *testing.T, name string) {
	t.Helper()
	rt, err := runtime.New(name)
	if err != nil {
		t.Fatalf("runtime.New(%q): %v", name, err)
	}
	for ranks := 1; ranks <= 3; ranks++ {
		for _, width := range []int{1, 2, 7} {
			app := core.NewApp(graph(0, core.Stencil1D, width, 6, 0, 16))
			app.Workers = ranks
			app.Nodes = ranks
			stats, err := rt.Run(app)
			if err != nil {
				t.Fatalf("%s failed at ranks=%d width=%d: %v", name, ranks, width, err)
			}
			if stats.Tasks != app.TotalTasks() {
				t.Errorf("ranks=%d width=%d: stats.Tasks = %d, want %d",
					ranks, width, stats.Tasks, app.TotalTasks())
			}
		}
	}
}

// RankFaultMidGraph injects a deterministic partial fault pattern (the
// corruption decision hashes seed, timestep and point, so the same
// tasks fail on every run) and requires the backend to surface the
// validation error without deadlocking: healthy columns must keep
// communicating so every rank can drain its schedule.
func RankFaultMidGraph(t *testing.T, name string) {
	t.Helper()
	rt, err := runtime.New(name)
	if err != nil {
		t.Fatalf("runtime.New(%q): %v", name, err)
	}
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps:   12,
		MaxWidth:    6,
		Dependence:  core.Stencil1DPeriodic,
		OutputBytes: 64,
		FaultRate:   0.2,
		Seed:        11,
	}))
	app.Workers = 3
	app.Nodes = 3
	type result struct{ err error }
	done := make(chan result, 1)
	go func() {
		_, err := rt.Run(app)
		done <- result{err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatalf("%s did not report the injected mid-graph corruption", name)
		}
		var verr *core.ValidationError
		if !errors.As(r.err, &verr) {
			t.Fatalf("%s returned %T (%v), want *core.ValidationError", name, r.err, r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s deadlocked on a mid-graph fault", name)
	}
}

// Repeat runs a nontrivial multi-graph app several times on the named
// backend, shaking out races that a single run might miss (use with
// -race in CI).
func Repeat(t *testing.T, name string, times int) {
	t.Helper()
	rt, err := runtime.New(name)
	if err != nil {
		t.Fatalf("runtime.New(%q): %v", name, err)
	}
	for k := 0; k < times; k++ {
		app := core.NewApp(
			graph(0, core.Spread, 16, 12, 5, 64),
			graph(1, core.FFT, 16, 12, 0, 16),
			graph(2, core.Tree, 16, 12, 0, 16),
		)
		app.Workers = 4
		if _, err := rt.Run(app); err != nil {
			t.Fatalf("%s failed on repeat %d: %v", name, k, err)
		}
	}
}
