// Package ptg implements the PaRSEC parameterized-task-graph analog
// (paper §3.8): the algebraic description of the task graph is
// expanded at "compile time" — before the timed region — into
// per-rank, per-dependence-set firing rules, so execution walks
// precompiled task and communication lists with no graph queries at
// all. This is the compile-time counterpart of dtd, reproducing the
// paper's DTD-vs-PTG scalability comparison (§5.4).
package ptg

import (
	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("ptg", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "ptg" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "ptg",
		Analog:      "PaRSEC PTG",
		Paradigm:    "task-based (parameterized task graph)",
		Parallelism: "implicit",
		Distributed: true,
		Async:       false,
		Notes:       "dependence relations expanded to firing rules before execution",
	}
}

// compiledInput is one input of a compiled task.
type compiledInput struct {
	col    int
	remote bool
}

// compiledTask is one owned task at some timestep.
type compiledTask struct {
	col     int
	inputs  []compiledInput
	sendsTo []int // remote consumer columns at t+1
}

// compiledStep is everything a rank does in one timestep of one graph.
type compiledStep struct {
	tasks []compiledTask
}

// compiledGraph is a rank's full schedule for one graph.
type compiledGraph struct {
	g       *core.Graph
	span    exec.Span
	steps   []compiledStep
	rows    *exec.Rows
	scratch []*kernels.Scratch
}

// compile expands the dependence relations for one rank.
func compile(app *core.App, rank, ranks int) []*compiledGraph {
	out := make([]*compiledGraph, len(app.Graphs))
	for gi, g := range app.Graphs {
		span := exec.BlockAssign(g.MaxWidth, ranks)[rank]
		cg := &compiledGraph{
			g: g, span: span,
			steps: make([]compiledStep, g.Timesteps),
			rows:  exec.NewRows(g.MaxWidth, g.OutputBytes),
		}
		cg.scratch = make([]*kernels.Scratch, g.MaxWidth)
		for i := span.Lo; i < span.Hi; i++ {
			cg.scratch[i] = kernels.NewScratch(g.ScratchBytes)
		}
		for t := 0; t < g.Timesteps; t++ {
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			lo := max(span.Lo, off)
			hi := min(span.Hi, off+w)
			for i := lo; i < hi; i++ {
				task := compiledTask{col: i}
				g.DependenciesForPoint(t, i).ForEach(func(dep int) {
					task.inputs = append(task.inputs, compiledInput{
						col:    dep,
						remote: dep < span.Lo || dep >= span.Hi,
					})
				})
				g.ReverseDependenciesForPoint(t, i).ForEach(func(cons int) {
					if cons < span.Lo || cons >= span.Hi {
						task.sendsTo = append(task.sendsTo, cons)
					}
				})
				cg.steps[t].tasks = append(cg.steps[t].tasks, task)
			}
		}
		out[gi] = cg
	}
	return out
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	ranks := exec.WorkersFor(app)
	fabric := exec.NewFabric(app, ranks)
	// Compile-time expansion, outside the timed region.
	compiled := make([][]*compiledGraph, ranks)
	maxSteps := 0
	for rank := 0; rank < ranks; rank++ {
		compiled[rank] = compile(app, rank, ranks)
	}
	for _, g := range app.Graphs {
		if g.Timesteps > maxSteps {
			maxSteps = g.Timesteps
		}
	}
	var firstErr exec.ErrOnce
	return exec.Measure(app, ranks, func() error {
		done := make(chan struct{})
		for rank := 0; rank < ranks; rank++ {
			go func(rank int) {
				defer func() { done <- struct{}{} }()
				runRank(app, fabric, compiled[rank], maxSteps, &firstErr)
			}(rank)
		}
		for rank := 0; rank < ranks; rank++ {
			<-done
		}
		return firstErr.Err()
	})
}

func runRank(app *core.App, fabric *exec.Fabric, graphs []*compiledGraph, maxSteps int, firstErr *exec.ErrOnce) {
	var inputs [][]byte
	for t := 0; t < maxSteps; t++ {
		for gi, cg := range graphs {
			g := cg.g
			if t >= g.Timesteps {
				continue
			}
			for _, task := range cg.steps[t].tasks {
				inputs = inputs[:0]
				for _, in := range task.inputs {
					if in.remote {
						inputs = append(inputs, fabric.Recv(gi, in.col, task.col))
					} else {
						inputs = append(inputs, cg.rows.Prev(in.col))
					}
				}
				out := cg.rows.Cur(task.col)
				err := g.ExecutePoint(t, task.col, out, inputs, cg.scratch[task.col], app.Validate && !firstErr.Failed())
				if err != nil {
					firstErr.Set(err)
					g.WriteOutput(t, task.col, out)
				}
				for _, cons := range task.sendsTo {
					fabric.Send(gi, task.col, cons, out)
				}
			}
			cg.rows.Flip()
		}
	}
}
