// Package ptg implements the PaRSEC parameterized-task-graph analog
// (paper §3.8): the algebraic description of the task graph is
// expanded at "compile time" — before the timed region — into
// per-rank, per-dependence-set firing rules, so execution walks
// precompiled task and communication lists with no graph queries at
// all. This is the compile-time counterpart of dtd, reproducing the
// paper's DTD-vs-PTG scalability comparison (§5.4).
package ptg

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("ptg", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "ptg" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "ptg",
		Analog:      "PaRSEC PTG",
		Paradigm:    "task-based (parameterized task graph)",
		Parallelism: "implicit",
		Distributed: true,
		Async:       false,
		Notes:       "dependence relations expanded to firing rules before execution",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	return exec.RunRanks(app, &policy{})
}

// RankPolicy implements runtime.RankBacked.
func (rt) RankPolicy() exec.RankPolicy { return &policy{} }

// compiledInput is one input of a compiled task.
type compiledInput struct {
	col    int
	remote bool
}

// compiledTask is one owned task at some timestep.
type compiledTask struct {
	col     int
	inputs  []compiledInput
	sendsTo []int // remote consumer columns at t+1
}

// compiledStep is everything a rank does in one timestep of one graph.
type compiledStep struct {
	tasks []compiledTask
}

// rankSchedule is a rank's full firing-rule expansion for one graph.
type rankSchedule struct {
	steps []compiledStep
}

// policy executes precompiled per-rank schedules. The expansion
// happens once in CompileRanks (at engine construction, outside any
// timed region), so a reused RankPlan replays the same schedule at
// every measurement point of a sweep.
type policy struct {
	compiled [][]rankSchedule // [rank][graph]
	inputs   [][][]byte       // [rank]: reusable gather buffer
}

func (*policy) Layout(app *core.App) exec.RankLayout { return exec.FlatLayout(app) }

// CompileRanks expands the dependence relations into per-rank firing
// rules, in parallel across ranks.
func (p *policy) CompileRanks(plan *exec.RankPlan) {
	p.compiled = make([][]rankSchedule, plan.Ranks)
	p.inputs = make([][][]byte, plan.Ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < plan.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p.compiled[rank] = compileRank(plan, rank)
		}(rank)
	}
	wg.Wait()
}

// compileRank expands the dependence relations for one rank.
func compileRank(plan *exec.RankPlan, rank int) []rankSchedule {
	out := make([]rankSchedule, len(plan.App.Graphs))
	for gi, g := range plan.App.Graphs {
		span := plan.Span(gi, rank)
		sched := rankSchedule{steps: make([]compiledStep, g.Timesteps)}
		for t := 0; t < g.Timesteps; t++ {
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			lo := max(span.Lo, off)
			hi := min(span.Hi, off+w)
			for i := lo; i < hi; i++ {
				task := compiledTask{col: i}
				deps := g.PointDeps(t, i)
				for dep, ok := deps.Next(); ok; dep, ok = deps.Next() {
					task.inputs = append(task.inputs, compiledInput{
						col:    dep,
						remote: dep < span.Lo || dep >= span.Hi,
					})
				}
				cons := g.PointConsumers(t, i)
				for c, ok := cons.Next(); ok; c, ok = cons.Next() {
					if c < span.Lo || c >= span.Hi {
						task.sendsTo = append(task.sendsTo, c)
					}
				}
				sched.steps[t].tasks = append(sched.steps[t].tasks, task)
			}
		}
		out[gi] = sched
	}
	return out
}

// Step walks the rank's precompiled task and communication lists; no
// graph queries happen inside the timed region.
func (p *policy) Step(rc *exec.RankCtx, t int) {
	inputs := p.inputs[rc.Rank]
	for gi := range p.compiled[rc.Rank] {
		if !rc.Active(gi, t) {
			continue
		}
		for _, task := range p.compiled[rc.Rank][gi].steps[t].tasks {
			inputs = inputs[:0]
			for _, in := range task.inputs {
				if in.remote {
					inputs = append(inputs, rc.Recv(gi, in.col, task.col))
				} else {
					inputs = append(inputs, rc.Prev(gi, in.col))
				}
			}
			out := rc.ExecWith(gi, t, task.col, inputs)
			for _, cons := range task.sendsTo {
				rc.Send(gi, task.col, cons, out)
			}
			// Received buffers are dead once the task has executed;
			// recycling them keeps the replayed schedule allocation-free.
			for k, in := range task.inputs {
				if in.remote {
					rc.Recycle(gi, inputs[k])
				}
			}
		}
		rc.Flip(gi)
	}
	p.inputs[rc.Rank] = inputs
}
