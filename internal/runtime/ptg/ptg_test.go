package ptg

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestRankPolicyConformance(t *testing.T) {
	runtimetest.RankPolicyConformance(t, "ptg")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "ptg", 5)
}
