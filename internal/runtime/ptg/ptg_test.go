package ptg

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "ptg")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "ptg", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "ptg")
}
