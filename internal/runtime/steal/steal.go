// Package steal implements the work-stealing analog (Chapel with the
// distrib scheduler, paper §5.7): each worker owns a deque, pushes
// tasks it makes ready onto its own deque (locality), pops LIFO, and
// steals FIFO from random victims when idle. Stealing rebalances load
// without programmer effort at large task granularities, at the cost
// of extra queue synchronization at very small ones — exactly the
// trade-off the paper observes between Chapel's default and distrib
// schedulers.
package steal

import (
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("steal", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "steal" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "steal",
		Analog:      "Chapel (distrib scheduler)",
		Paradigm:    "task-based",
		Parallelism: "both",
		Distributed: false,
		Async:       true,
		Notes:       "per-worker deques, LIFO local pop, FIFO random steal",
	}
}

// deque is a mutex-guarded work-stealing deque. Local pops take the
// newest task; thieves take the oldest.
type deque struct {
	mu    sync.Mutex
	items []int32
}

func (d *deque) push(id int32) {
	d.mu.Lock()
	d.items = append(d.items, id)
	d.mu.Unlock()
}

func (d *deque) popNewest() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return 0, false
	}
	id := d.items[n-1]
	d.items = d.items[:n-1]
	return id, true
}

func (d *deque) stealOldest() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	id := d.items[0]
	d.items = d.items[1:]
	return id, true
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		plan := exec.BuildPlan(app)
		pools := exec.NewPools(app)
		out := make([]*exec.Buf, len(plan.Tasks))
		deques := make([]*deque, workers)
		for w := range deques {
			deques[w] = &deque{}
		}
		// Seed round-robin so initial work is spread out.
		for k, id := range plan.Seeds {
			deques[k%workers].push(id)
		}

		var remaining atomic.Int64
		remaining.Store(plan.TaskCount())

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(self int) {
				defer wg.Done()
				// Deterministic per-worker victim sequence.
				rng := uint64(self)*0x9e3779b97f4a7c15 + 1
				var inputs [][]byte
				for remaining.Load() > 0 {
					id, ok := deques[self].popNewest()
					if !ok {
						// Steal from a pseudo-random victim.
						rng = rng*6364136223846793005 + 1442695040888963407
						victim := int(rng>>33) % workers
						if victim == self {
							victim = (victim + 1) % workers
						}
						id, ok = deques[victim].stealOldest()
					}
					if !ok {
						stdruntime.Gosched()
						continue
					}
					var err error
					inputs, err = plan.Execute(id, out, pools, app.Validate && !firstErr.Failed(), inputs)
					if err != nil {
						firstErr.Set(err)
					}
					for _, cons := range plan.Tasks[id].Consumers {
						if plan.Tasks[cons].Counter.Add(-1) == 0 {
							deques[self].push(cons)
						}
					}
					remaining.Add(-1)
				}
			}(w)
		}
		wg.Wait()
		return firstErr.Err()
	})
}
