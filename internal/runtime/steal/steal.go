// Package steal implements the work-stealing analog (Chapel with the
// distrib scheduler, paper §5.7): each worker owns a deque, pushes
// tasks it makes ready onto its own deque (locality), pops LIFO, and
// steals FIFO from random victims when idle. Stealing rebalances load
// without programmer effort at large task granularities, at the cost
// of extra queue synchronization at very small ones — exactly the
// trade-off the paper observes between Chapel's default and distrib
// schedulers.
//
// The worker pool, counter burn-down and buffer lifetime live in the
// shared exec.Engine; this package contributes only the deque policy.
package steal

import (
	"sync"
	"sync/atomic"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("steal", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "steal" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "steal",
		Analog:      "Chapel (distrib scheduler)",
		Paradigm:    "task-based",
		Parallelism: "both",
		Distributed: false,
		Async:       true,
		Notes:       "per-worker deques, LIFO local pop, FIFO random steal",
	}
}

// deque is one worker's mutex-guarded work-stealing deque: local pops
// take the newest tasks, thieves take the oldest.
type deque struct {
	mu    sync.Mutex
	items []int32
	// rng is the owner's deterministic victim-selection state.
	rng uint64
	// buf is the owner's reusable pop buffer.
	buf [1]int32
}

// policy holds the per-worker deques. Pop never blocks: when no work
// is found locally or at a random victim, it returns an empty batch
// and the engine spins the worker.
type policy struct {
	deques []deque
	closed atomic.Bool
}

func (p *policy) Init(plan *exec.Plan, workers int) {
	p.deques = make([]deque, workers)
	p.closed.Store(false)
	for w := range p.deques {
		// Deterministic per-worker victim sequence.
		p.deques[w].rng = uint64(w)*0x9e3779b97f4a7c15 + 1
	}
	// Seed round-robin so initial work is spread out.
	for k, id := range plan.Seeds {
		d := &p.deques[k%workers]
		d.items = append(d.items, id)
	}
}

// Push appends the whole ready batch to the worker's own deque under
// one lock — the newly ready tasks share inputs with the task that
// produced them, so keeping them local preserves locality.
func (p *policy) Push(worker int, ids []int32) {
	d := &p.deques[worker]
	d.mu.Lock()
	d.items = append(d.items, ids...)
	d.mu.Unlock()
}

func (p *policy) Pop(worker int) ([]int32, bool) {
	if p.closed.Load() {
		return nil, false
	}
	d := &p.deques[worker]
	d.mu.Lock()
	if n := len(d.items); n > 0 {
		d.buf[0] = d.items[n-1]
		d.items = d.items[:n-1]
		d.mu.Unlock()
		return d.buf[:1], true
	}
	// Steal the oldest task from a pseudo-random victim.
	d.rng = d.rng*6364136223846793005 + 1442695040888963407
	victim := int(d.rng>>33) % len(p.deques)
	d.mu.Unlock()
	if victim == worker {
		victim = (victim + 1) % len(p.deques)
	}
	v := &p.deques[victim]
	v.mu.Lock()
	if len(v.items) > 0 {
		d.buf[0] = v.items[0]
		v.items = v.items[1:]
		v.mu.Unlock()
		return d.buf[:1], true
	}
	v.mu.Unlock()
	return nil, true // nothing found; the engine spins
}

func (p *policy) Close() { p.closed.Store(true) }

func (rt) Policy() exec.Policy { return &policy{} }

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	return exec.Measure(app, workers, func() error {
		return exec.NewEngine(exec.BuildPlan(app), &policy{}, workers).Run(app.Validate)
	})
}
