package steal

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestPolicyConformance(t *testing.T) {
	runtimetest.PolicyConformance(t, "steal")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "steal", 5)
}
