package steal

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "steal")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "steal", 5)
}

func TestDeque(t *testing.T) {
	var d deque
	d.push(1)
	d.push(2)
	d.push(3)
	if id, ok := d.popNewest(); !ok || id != 3 {
		t.Errorf("popNewest = %d, %v; want 3, true", id, ok)
	}
	if id, ok := d.stealOldest(); !ok || id != 1 {
		t.Errorf("stealOldest = %d, %v; want 1, true", id, ok)
	}
	if id, ok := d.popNewest(); !ok || id != 2 {
		t.Errorf("popNewest = %d, %v; want 2, true", id, ok)
	}
	if _, ok := d.popNewest(); ok {
		t.Error("popNewest on empty deque returned ok")
	}
	if _, ok := d.stealOldest(); ok {
		t.Error("stealOldest on empty deque returned ok")
	}
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "steal")
}
