package central

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestPolicyConformance(t *testing.T) {
	runtimetest.PolicyConformance(t, "central")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "central", 5)
}
