package central

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "central")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "central", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "central")
}
