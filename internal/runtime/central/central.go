// Package central implements the centralized-controller analog of
// Spark and Dask (paper §3.3, §3.11): a single controller goroutine
// owns the entire scheduling state — dependence counters and the ready
// list — and workers round-trip to it for every task grant and every
// completion notification. The controller is a throughput bottleneck
// that grows with the number of workers, which is why the paper's
// Figure 9 shows Spark's METG rising immediately with node count.
package central

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("central", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "central" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "central",
		Analog:      "Spark / Dask",
		Paradigm:    "centralized task scheduling",
		Parallelism: "implicit",
		Distributed: true,
		Async:       true,
		Notes:       "single controller grants every task; workers round-trip per task",
	}
}

// request is a worker asking the controller for its next task.
type request struct {
	completed int32 // task the worker just finished, or -1
	reply     chan int32
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		plan := exec.BuildPlan(app)
		pools := exec.NewPools(app)
		out := make([]*exec.Buf, len(plan.Tasks))

		requests := make(chan request)
		var wg sync.WaitGroup

		// The controller: the only goroutine that touches scheduling
		// state, mirroring the Spark driver.
		go func() {
			ready := append([]int32(nil), plan.Seeds...)
			remaining := plan.TaskCount()
			var waiting []chan int32
			grant := func() {
				for len(waiting) > 0 && len(ready) > 0 {
					reply := waiting[0]
					waiting = waiting[1:]
					id := ready[0]
					ready = ready[1:]
					reply <- id
				}
			}
			for remaining > 0 {
				req := <-requests
				if req.completed >= 0 {
					remaining--
					for _, cons := range plan.Tasks[req.completed].Consumers {
						// Counters are owned by the controller; no
						// atomicity needed, but the field is atomic
						// for plan reuse across backends.
						if plan.Tasks[cons].Counter.Add(-1) == 0 {
							ready = append(ready, cons)
						}
					}
				}
				if req.reply != nil {
					waiting = append(waiting, req.reply)
				}
				grant()
			}
			// Drain: tell every waiting worker to exit, then keep
			// answering until all workers have gone.
			for _, reply := range waiting {
				reply <- -1
			}
			for req := range requests {
				if req.reply != nil {
					req.reply <- -1
				}
			}
		}()

		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				reply := make(chan int32, 1)
				last := int32(-1)
				var inputs [][]byte
				for {
					requests <- request{completed: last, reply: reply}
					id := <-reply
					if id < 0 {
						return
					}
					var err error
					inputs, err = plan.Execute(id, out, pools, app.Validate && !firstErr.Failed(), inputs)
					if err != nil {
						firstErr.Set(err)
					}
					last = id
				}
			}()
		}
		wg.Wait()
		close(requests)
		return firstErr.Err()
	})
}
