// Package central implements the centralized-controller analog of
// Spark and Dask (paper §3.3, §3.11): a single controller goroutine
// owns the entire scheduling state — the ready list and the grant
// queue — and workers round-trip to it for every task grant and every
// batch of newly ready tasks. The controller is a throughput
// bottleneck that grows with the number of workers, which is why the
// paper's Figure 9 shows Spark's METG rising immediately with node
// count.
//
// The worker pool, counter burn-down and buffer lifetime live in the
// shared exec.Engine; this package contributes only the grant policy.
package central

import (
	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("central", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "central" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "central",
		Analog:      "Spark / Dask",
		Paradigm:    "centralized task scheduling",
		Parallelism: "implicit",
		Distributed: true,
		Async:       true,
		Notes:       "single controller grants every task; workers round-trip per task",
	}
}

// msg is one worker→controller round-trip: a batch of newly ready
// tasks, a request for the next grant, or both are nil-checked apart.
type msg struct {
	ready []int32
	reply chan int32
}

// policy funnels every scheduling decision through one controller
// goroutine, mirroring the Spark driver. Pushes copy their batch (the
// handoff models serializing state to the driver); grants return one
// task per round-trip.
type policy struct {
	msgs    chan msg
	done    chan struct{}
	replies []chan int32
	batch   [][1]int32
}

func (p *policy) Init(plan *exec.Plan, workers int) {
	p.msgs = make(chan msg)
	p.done = make(chan struct{})
	p.replies = make([]chan int32, workers)
	p.batch = make([][1]int32, workers)
	for w := range p.replies {
		p.replies[w] = make(chan int32, 1)
	}
	go p.controller(append([]int32(nil), plan.Seeds...), workers)
}

// controller is the only goroutine that touches the ready list. It
// serves until every worker has received its shutdown grant (-1), so
// late pushes and requests never block a worker.
func (p *policy) controller(ready []int32, workers int) {
	var waiting []chan int32
	closed := false
	served := 0
	for served < workers {
		if closed {
			m := <-p.msgs
			if m.reply != nil {
				m.reply <- -1
				served++
			}
			continue
		}
		select {
		case m := <-p.msgs:
			ready = append(ready, m.ready...)
			if m.reply != nil {
				waiting = append(waiting, m.reply)
			}
		case <-p.done:
			closed = true
			for _, reply := range waiting {
				reply <- -1
				served++
			}
			waiting = nil
			continue
		}
		for len(waiting) > 0 && len(ready) > 0 {
			waiting[0] <- ready[0]
			waiting = waiting[1:]
			ready = ready[1:]
		}
	}
}

// Push ships the ready batch to the controller. The copy models the
// completion message a Spark executor sends to the driver.
func (p *policy) Push(worker int, ids []int32) {
	p.msgs <- msg{ready: append([]int32(nil), ids...)}
}

func (p *policy) Pop(worker int) ([]int32, bool) {
	p.msgs <- msg{reply: p.replies[worker]}
	id := <-p.replies[worker]
	if id < 0 {
		return nil, false
	}
	p.batch[worker][0] = id
	return p.batch[worker][:], true
}

func (p *policy) Close() { close(p.done) }

func (rt) Policy() exec.Policy { return &policy{} }

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	return exec.Measure(app, workers, func() error {
		return exec.NewEngine(exec.BuildPlan(app), &policy{}, workers).Run(app.Validate)
	})
}
