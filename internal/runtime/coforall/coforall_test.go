package coforall

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "coforall")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "coforall", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "coforall")
}
