// Package coforall implements the Chapel-default analog (paper §3.1):
// explicit task instantiation with a coforall-style parallel loop over
// the columns of every timestep, bulk access to the shared payload
// rows, and atomic counters for synchronization. Unlike hybrid there
// is no rank partitioning or message passing — every worker reads the
// previous row directly — and unlike steal there is no work stealing:
// the paper contrasts exactly these two Chapel schedulers in §5.7.
package coforall

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("coforall", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "coforall" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "coforall",
		Analog:      "Chapel (default scheduler)",
		Paradigm:    "fork-join parallel loops (PGAS-style shared rows)",
		Parallelism: "both",
		Distributed: false,
		Async:       false,
		Notes:       "coforall over columns per timestep; no stealing, no messages",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		type graphState struct {
			g       *core.Graph
			rows    *exec.Rows
			scratch []*kernels.Scratch
		}
		states := make([]*graphState, len(app.Graphs))
		maxSteps := 0
		for gi, g := range app.Graphs {
			st := &graphState{g: g, rows: exec.NewRows(g.MaxWidth, g.OutputBytes)}
			st.scratch = make([]*kernels.Scratch, g.MaxWidth)
			for i := range st.scratch {
				st.scratch[i] = kernels.NewScratch(g.ScratchBytes)
			}
			states[gi] = st
			if g.Timesteps > maxSteps {
				maxSteps = g.Timesteps
			}
		}

		for t := 0; t < maxSteps; t++ {
			for _, st := range states {
				g := st.g
				if t >= g.Timesteps {
					continue
				}
				off := g.OffsetAtTimestep(t)
				w := g.WidthAtTimestep(t)
				// coforall chunk in chunks(columns) — one task per
				// worker, joined before the next timestep.
				chunks := exec.BlockAssign(w, workers)
				var wg sync.WaitGroup
				for _, chunk := range chunks {
					if chunk.Len() == 0 {
						continue
					}
					wg.Add(1)
					go func(chunk exec.Span) {
						defer wg.Done()
						var inputs [][]byte
						prev := st.rows.Prev
						for i := off + chunk.Lo; i < off+chunk.Hi; i++ {
							inputs = exec.GatherInputs(g, t, i, prev, inputs)
							out := st.rows.Cur(i)
							err := g.ExecutePoint(t, i, out, inputs, st.scratch[i], app.Validate && !firstErr.Failed())
							if err != nil {
								firstErr.Set(err)
								g.WriteOutput(t, i, out)
							}
						}
					}(chunk)
				}
				wg.Wait()
				st.rows.Flip()
			}
		}
		return firstErr.Err()
	})
}
