// Package taskpool implements the OpenMP-task / OmpSs analog (paper
// §3.6–3.7): a shared-memory pool of workers draining a central FIFO
// ready queue, with OpenMP-4.0-style task dependencies tracked by
// per-task counters. The central queue is simple and fair but becomes
// a serialization point at very small task granularities — the same
// contention effect the paper observes for task-dependency runtimes.
package taskpool

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("taskpool", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "taskpool" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "taskpool",
		Analog:      "OpenMP task / OmpSs",
		Paradigm:    "task-based",
		Parallelism: "both",
		Distributed: false,
		Async:       true,
		Notes:       "central FIFO ready queue with dependence counters",
	}
}

// queue is the central ready queue.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []int32
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(ids ...int32) {
	q.mu.Lock()
	q.items = append(q.items, ids...)
	if len(ids) == 1 {
		q.cond.Signal()
	} else {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

func (q *queue) pop() (int32, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return 0, false
	}
	id := q.items[0]
	q.items = q.items[1:]
	return id, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		plan := exec.BuildPlan(app)
		pools := exec.NewPools(app)
		out := make([]*exec.Buf, len(plan.Tasks))
		q := newQueue()
		q.push(plan.Seeds...)

		var remaining sync.WaitGroup
		remaining.Add(int(plan.TaskCount()))
		go func() {
			remaining.Wait()
			q.close()
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var inputs [][]byte
				for {
					id, ok := q.pop()
					if !ok {
						return
					}
					var err error
					inputs, err = plan.Execute(id, out, pools, app.Validate && !firstErr.Failed(), inputs)
					if err != nil {
						firstErr.Set(err)
					}
					for _, cons := range plan.Tasks[id].Consumers {
						if plan.Tasks[cons].Counter.Add(-1) == 0 {
							q.push(cons)
						}
					}
					remaining.Done()
				}
			}()
		}
		wg.Wait()
		return firstErr.Err()
	})
}
