// Package taskpool implements the OpenMP-task / OmpSs analog (paper
// §3.6–3.7): a shared-memory pool of workers draining a central FIFO
// ready queue, with OpenMP-4.0-style task dependencies tracked by
// per-task counters. The central queue is simple and fair but becomes
// a serialization point at very small task granularities — the same
// contention effect the paper observes for task-dependency runtimes.
//
// The worker pool, counter burn-down and buffer lifetime live in the
// shared exec.Engine; this package contributes only the queue policy.
package taskpool

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("taskpool", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "taskpool" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "taskpool",
		Analog:      "OpenMP task / OmpSs",
		Paradigm:    "task-based",
		Parallelism: "both",
		Distributed: false,
		Async:       true,
		Notes:       "central FIFO ready queue with dependence counters",
	}
}

// policy is the central FIFO ready queue: one mutex-guarded list every
// worker pushes to and pops from, in batches.
type policy struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []int32
	closed  bool
	workers int
	// batch[w] is worker w's reusable pop buffer.
	batch [][]int32
}

func (p *policy) Init(plan *exec.Plan, workers int) {
	p.cond = sync.NewCond(&p.mu)
	p.items = append(p.items[:0], plan.Seeds...)
	p.closed = false
	p.workers = workers
	p.batch = make([][]int32, workers)
}

func (p *policy) Push(worker int, ids []int32) {
	p.mu.Lock()
	p.items = append(p.items, ids...)
	if len(ids) == 1 {
		p.cond.Signal()
	} else {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

func (p *policy) Pop(worker int) ([]int32, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.items) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.items) == 0 {
		return nil, false
	}
	n := exec.FairShare(len(p.items), p.workers)
	p.batch[worker] = append(p.batch[worker][:0], p.items[:n]...)
	p.items = p.items[n:]
	return p.batch[worker], true
}

func (p *policy) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (rt) Policy() exec.Policy { return &policy{} }

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	return exec.Measure(app, workers, func() error {
		return exec.NewEngine(exec.BuildPlan(app), &policy{}, workers).Run(app.Validate)
	})
}
