package taskpool

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestPolicyConformance(t *testing.T) {
	runtimetest.PolicyConformance(t, "taskpool")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "taskpool", 5)
}
