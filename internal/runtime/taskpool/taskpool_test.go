package taskpool

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "taskpool")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "taskpool", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "taskpool")
}
