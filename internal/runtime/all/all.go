// Package all registers every runtime backend. Import it for side
// effects wherever the full registry is needed (the CLI tools, the
// figure harness, and the top-level benchmarks).
package all

import (
	_ "taskbench/internal/runtime/actor"
	_ "taskbench/internal/runtime/bsp"
	_ "taskbench/internal/runtime/central"
	_ "taskbench/internal/runtime/coforall"
	_ "taskbench/internal/runtime/dataflow"
	_ "taskbench/internal/runtime/dtd"
	_ "taskbench/internal/runtime/events"
	_ "taskbench/internal/runtime/graphexec"
	_ "taskbench/internal/runtime/hybrid"
	_ "taskbench/internal/runtime/p2p"
	_ "taskbench/internal/runtime/places"
	_ "taskbench/internal/runtime/ptg"
	_ "taskbench/internal/runtime/serial"
	_ "taskbench/internal/runtime/steal"
	_ "taskbench/internal/runtime/taskpool"
	_ "taskbench/internal/runtime/tcp"
)
