package hybrid

import (
	"testing"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/runtimetest"
)

func TestRankPolicyConformance(t *testing.T) {
	runtimetest.RankPolicyConformance(t, "hybrid")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "hybrid", 5)
}

func TestExplicitNodeCount(t *testing.T) {
	rt, err := runtime.New("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps: 6, MaxWidth: 16, Dependence: core.Stencil1D,
	}))
	app.Nodes = 4
	app.Workers = 8
	stats, err := rt.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 8 {
		t.Errorf("Workers = %d, want 8 (4 nodes × 2 threads)", stats.Workers)
	}
}
