// Package hybrid implements the MPI+OpenMP analog (paper §3.5): a
// small number of ranks (nodes) communicate point-to-point, and within
// each rank a forall-style parallel loop executes the rank's tasks
// each timestep. The fork-join inside every timestep is the
// hierarchical-model overhead the paper studies; communication is
// funneled through the rank itself between joins.
package hybrid

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("hybrid", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "hybrid" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "hybrid",
		Analog:      "MPI+OpenMP",
		Paradigm:    "hybrid message passing + forall",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "p2p between ranks, fork-join parallel loop within each rank",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	return exec.RunRanks(app, policy{})
}

// RankPolicy implements runtime.RankBacked.
func (rt) RankPolicy() exec.RankPolicy { return policy{} }

// policy is the ranks-of-engines discipline: each rank forks a
// parallel loop over its owned columns every timestep (each chunk
// worker receives its own remote inputs — edges are per-consumer, so
// chunks never contend on a channel), joins, and then communicates in
// a funneled phase.
type policy struct{}

// Layout decomposes the workers into app.Nodes ranks of equal thread
// counts, defaulting to two nodes.
func (policy) Layout(app *core.App) exec.RankLayout {
	workers := exec.WorkersFor(app)
	nodes := app.Nodes
	if nodes <= 0 {
		nodes = 2
	}
	if nodes > workers {
		nodes = workers
	}
	threads := workers / nodes
	if threads < 1 {
		threads = 1
	}
	return exec.RankLayout{Ranks: nodes, Threads: threads}
}

func (policy) Step(rc *exec.RankCtx, t int) {
	for gi := 0; gi < rc.Graphs(); gi++ {
		if !rc.Active(gi, t) {
			continue
		}
		lo, hi := rc.Window(gi, t)
		if lo >= hi {
			rc.Flip(gi)
			continue
		}
		// Fork: parallel loop over this rank's columns.
		chunks := exec.BlockAssign(hi-lo, rc.Threads())
		var wg sync.WaitGroup
		for _, chunk := range chunks {
			if chunk.Len() == 0 {
				continue
			}
			wg.Add(1)
			go func(chunk exec.Span) {
				defer wg.Done()
				var inputs [][]byte
				for i := lo + chunk.Lo; i < lo+chunk.Hi; i++ {
					inputs, _ = rc.RunInto(inputs, gi, t, i)
				}
			}(chunk)
		}
		wg.Wait()
		// Join: funneled communication phase.
		for i := lo; i < hi; i++ {
			rc.SendOutputs(gi, t, i, rc.Cur(gi, i))
		}
		rc.Flip(gi)
	}
}
