// Package hybrid implements the MPI+OpenMP analog (paper §3.5): a
// small number of ranks (nodes) communicate point-to-point, and within
// each rank a forall-style parallel loop executes the rank's tasks
// each timestep. The fork-join inside every timestep is the
// hierarchical-model overhead the paper studies; communication is
// funneled through the rank itself between joins.
package hybrid

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("hybrid", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "hybrid" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "hybrid",
		Analog:      "MPI+OpenMP",
		Paradigm:    "hybrid message passing + forall",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "p2p between ranks, fork-join parallel loop within each rank",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	nodes := app.Nodes
	if nodes <= 0 {
		nodes = 2
	}
	if nodes > workers {
		nodes = workers
	}
	threads := workers / nodes
	if threads < 1 {
		threads = 1
	}
	fabric := exec.NewFabric(app, nodes)
	var firstErr exec.ErrOnce
	return exec.Measure(app, nodes*threads, func() error {
		var wg sync.WaitGroup
		for r := 0; r < nodes; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				runRank(app, fabric, rank, nodes, threads, &firstErr)
			}(r)
		}
		wg.Wait()
		return firstErr.Err()
	})
}

type rankState struct {
	g       *core.Graph
	span    exec.Span
	rows    *exec.Rows
	scratch []*kernels.Scratch
}

func runRank(app *core.App, fabric *exec.Fabric, rank, nodes, threads int, firstErr *exec.ErrOnce) {
	states := make([]*rankState, len(app.Graphs))
	maxSteps := 0
	for gi, g := range app.Graphs {
		span := exec.BlockAssign(g.MaxWidth, nodes)[rank]
		st := &rankState{g: g, span: span, rows: exec.NewRows(g.MaxWidth, g.OutputBytes)}
		st.scratch = make([]*kernels.Scratch, g.MaxWidth)
		for i := span.Lo; i < span.Hi; i++ {
			st.scratch[i] = kernels.NewScratch(g.ScratchBytes)
		}
		states[gi] = st
		if g.Timesteps > maxSteps {
			maxSteps = g.Timesteps
		}
	}

	for t := 0; t < maxSteps; t++ {
		for gi, st := range states {
			g := st.g
			if t >= g.Timesteps {
				continue
			}
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			lo := max(st.span.Lo, off)
			hi := min(st.span.Hi, off+w)
			if lo >= hi {
				st.rows.Flip()
				continue
			}
			// Fork: parallel loop over this rank's columns. Each
			// chunk worker receives its own remote inputs (edges are
			// per-consumer, so chunks never contend on a channel).
			chunks := exec.BlockAssign(hi-lo, threads)
			var wg sync.WaitGroup
			for c := 0; c < threads; c++ {
				chunk := chunks[c]
				if chunk.Len() == 0 {
					continue
				}
				wg.Add(1)
				go func(chunk exec.Span) {
					defer wg.Done()
					var inputs [][]byte
					for i := lo + chunk.Lo; i < lo+chunk.Hi; i++ {
						inputs = fabric.GatherRankInputs(gi, g, t, i, st.span, st.rows.Prev, inputs)
						out := st.rows.Cur(i)
						err := g.ExecutePoint(t, i, out, inputs, st.scratch[i], app.Validate && !firstErr.Failed())
						if err != nil {
							firstErr.Set(err)
							g.WriteOutput(t, i, out)
						}
					}
				}(chunk)
			}
			wg.Wait()
			// Join: funneled communication phase.
			for i := lo; i < hi; i++ {
				fabric.SendRemoteOutputs(gi, g, t, i, st.rows.Cur(i))
			}
			st.rows.Flip()
		}
	}
}
