package graphexec

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestPolicyConformance(t *testing.T) {
	runtimetest.PolicyConformance(t, "graphexec")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "graphexec", 5)
}
