package graphexec

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "graphexec")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "graphexec", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "graphexec")
}
