// Package graphexec implements the TensorFlow analog (paper §3.14):
// the task graph is compiled once into an immutable execution plan
// (the analog of explicit graph construction in Python), and a C++-
// style executor — a worker pool over a ready channel with atomic
// in-degree counters — runs it. Plan construction happens outside the
// timed region, like building a TensorFlow graph before session.run.
package graphexec

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("graphexec", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "graphexec" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "graphexec",
		Analog:      "TensorFlow",
		Paradigm:    "dataflow (compiled graph executor)",
		Parallelism: "explicit",
		Distributed: false,
		Async:       true,
		Notes:       "graph compiled before execution; atomic in-degree executor",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	// Graph construction is untimed, as in TensorFlow.
	plan := exec.BuildPlan(app)
	pools := exec.NewPools(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		out := make([]*exec.Buf, len(plan.Tasks))
		total := plan.TaskCount()
		ready := make(chan int32, total)
		for _, id := range plan.Seeds {
			ready <- id
		}

		var done sync.WaitGroup
		done.Add(int(total))
		go func() {
			done.Wait()
			close(ready)
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var inputs [][]byte
				for id := range ready {
					var err error
					inputs, err = plan.Execute(id, out, pools, app.Validate && !firstErr.Failed(), inputs)
					if err != nil {
						firstErr.Set(err)
					}
					for _, cons := range plan.Tasks[id].Consumers {
						if plan.Tasks[cons].Counter.Add(-1) == 0 {
							ready <- cons
						}
					}
					done.Done()
				}
			}()
		}
		wg.Wait()
		return firstErr.Err()
	})
}
