// Package graphexec implements the TensorFlow analog (paper §3.14):
// the task graph is compiled once into an immutable execution plan
// (the analog of explicit graph construction in Python) and a static
// schedule — a topological wavefront per timestep — is derived from it
// before execution begins, like XLA scheduling a compiled graph.
// Workers drain the current wavefront in batches and advance to the
// next when every task of the wave has completed. Plan construction
// happens outside the timed region, like building a TensorFlow graph
// before session.run.
//
// The worker pool, buffer lifetime and error capture live in the
// shared exec.Engine; this package contributes the wavefront policy.
// It implements exec.Completer: the static schedule makes dependence
// counters redundant, since every predecessor of wave t lives in wave
// t-1.
package graphexec

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("graphexec", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "graphexec" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "graphexec",
		Analog:      "TensorFlow",
		Paradigm:    "dataflow (compiled graph executor)",
		Parallelism: "explicit",
		Distributed: false,
		// The wavefront schedule imposes a global phase per timestep.
		Async: false,
		Notes: "graph compiled to a static per-timestep wavefront schedule",
	}
}

// policy executes a precompiled wavefront schedule: levels[t] holds
// every task of timestep t (across all graphs), and level t+1 opens
// only when level t has fully completed. All plan edges connect
// adjacent timesteps, so the schedule is topological by construction.
type policy struct {
	mu      sync.Mutex
	cond    *sync.Cond
	plan    *exec.Plan
	levels  [][]int32
	level   int // current wavefront
	cursor  int // next unclaimed task in the current wavefront
	pending int // claimed but not yet completed tasks of the wavefront
	workers int
	closed  bool
}

// Compile derives the static wavefront schedule from the plan,
// invoked by exec.NewEngine at construction so the work stays outside
// the timed region, like building a TensorFlow graph before
// session.run. The schedule is immutable; reruns of a Reset plan (and
// Init itself) reuse it.
func (p *policy) Compile(plan *exec.Plan) {
	if p.plan == plan {
		return
	}
	p.plan = plan
	p.levels = nil
	for id := range plan.Tasks {
		task := &plan.Tasks[id]
		if !task.Exists {
			continue
		}
		for int(task.T) >= len(p.levels) {
			p.levels = append(p.levels, nil)
		}
		p.levels[task.T] = append(p.levels[task.T], int32(id))
	}
}

func (p *policy) Init(plan *exec.Plan, workers int) {
	p.cond = sync.NewCond(&p.mu)
	p.Compile(plan) // cached no-op after NewEngine's untimed compile
	p.level = 0
	p.cursor = 0
	p.pending = 0
	p.workers = workers
	p.closed = false
}

// Push is never called: the policy implements exec.Completer and the
// schedule is static.
func (p *policy) Push(worker int, ids []int32) {}

func (p *policy) Pop(worker int) ([]int32, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, false
		}
		if p.level < len(p.levels) {
			if avail := len(p.levels[p.level]) - p.cursor; avail > 0 {
				n := exec.FairShare(avail, p.workers)
				// The compiled schedule is immutable and the cursor
				// only advances, so the subslice can be handed out
				// without copying.
				wave := p.levels[p.level][p.cursor : p.cursor+n]
				p.cursor += n
				p.pending += n
				return wave, true
			}
		}
		// Wave drained (or schedule exhausted): wait for stragglers to
		// complete and open the next wave, or for Close.
		p.cond.Wait()
	}
}

// Complete retires one task of the current wavefront, opening the next
// wave when the last straggler finishes.
func (p *policy) Complete(worker int, id int32) {
	p.mu.Lock()
	p.pending--
	if p.pending == 0 && p.cursor == len(p.levels[p.level]) {
		p.level++
		p.cursor = 0
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

func (p *policy) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (rt) Policy() exec.Policy { return &policy{} }

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	// Plan expansion and schedule compilation (the Compiler hook in
	// NewEngine) are untimed, as in TensorFlow.
	engine := exec.NewEngine(exec.BuildPlan(app), &policy{}, workers)
	return exec.Measure(app, workers, func() error {
		return engine.Run(app.Validate)
	})
}
