package dataflow

import (
	"sync/atomic"
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "dataflow")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "dataflow", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "dataflow")
}

func TestFutureResolveOnce(t *testing.T) {
	f := &future{}
	var fired atomic.Int32
	f.when(func() { fired.Add(1) })
	f.resolve([]byte("x"))
	if fired.Load() != 1 {
		t.Errorf("fired = %d, want 1", fired.Load())
	}
	f.when(func() { fired.Add(1) }) // immediate for resolved futures
	if fired.Load() != 2 {
		t.Errorf("late waiter fired = %d, want 2", fired.Load())
	}
	if string(f.get()) != "x" {
		t.Errorf("get = %q", f.get())
	}
	defer func() {
		if recover() == nil {
			t.Error("double resolve did not panic")
		}
	}()
	f.resolve([]byte("y"))
}
