// Package dataflow implements the Swift/T analog (paper §3.13): the
// program is a sequence of statements with dataflow semantics — every
// statement may execute as soon as the futures it reads are resolved.
// An interpreter enumerates one statement per task in program order,
// subscribing it to the futures of its inputs; statement bodies run on
// a worker pool and resolve the task's own future, releasing
// downstream statements.
package dataflow

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("dataflow", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "dataflow" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "dataflow",
		Analog:      "Swift/T",
		Paradigm:    "dataflow scripting (futures)",
		Parallelism: "implicit",
		Distributed: false,
		Async:       true,
		Notes:       "statements interpreted in program order; futures release execution",
	}
}

// future is a single-assignment dataflow variable holding a payload.
type future struct {
	mu       sync.Mutex
	resolved bool
	value    []byte
	waiters  []func()
}

// when runs fn once the future is resolved (immediately if already).
func (f *future) when(fn func()) {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		fn()
		return
	}
	f.waiters = append(f.waiters, fn)
	f.mu.Unlock()
}

// resolve assigns the value exactly once and wakes waiters.
func (f *future) resolve(value []byte) {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		panic("dataflow: future resolved twice")
	}
	f.resolved = true
	f.value = value
	waiters := f.waiters
	f.waiters = nil
	f.mu.Unlock()
	for _, fn := range waiters {
		fn()
	}
}

// get returns the resolved value; valid only after resolution.
func (f *future) get() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.value
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		total := app.TotalTasks()
		work := make(chan func(), total)
		var done sync.WaitGroup
		done.Add(int(total))

		var pool sync.WaitGroup
		for w := 0; w < workers; w++ {
			pool.Add(1)
			go func() {
				defer pool.Done()
				for body := range work {
					body()
				}
			}()
		}

		// The "script": one statement per task, interpreted in
		// program order. Futures are stored per graph in a dense
		// table; scratch serializes a column through its own chain of
		// futures only when the pattern lacks a self dependence.
		for _, g := range app.Graphs {
			g := g
			futures := make([]*future, g.Timesteps*g.MaxWidth)
			fut := func(t, i int) *future { return futures[t*g.MaxWidth+i] }
			for t := 0; t < g.Timesteps; t++ {
				off := g.OffsetAtTimestep(t)
				w := g.WidthAtTimestep(t)
				for i := off; i < off+w; i++ {
					futures[t*g.MaxWidth+i] = &future{}
				}
			}
			scratch := make([]*kernels.Scratch, g.MaxWidth)
			for i := range scratch {
				scratch[i] = kernels.NewScratch(g.ScratchBytes)
			}

			for t := 0; t < g.Timesteps; t++ {
				off := g.OffsetAtTimestep(t)
				w := g.WidthAtTimestep(t)
				for i := off; i < off+w; i++ {
					t, i := t, i
					deps := g.DependenciesForPoint(t, i)
					self := fut(t, i)

					body := func() {
						inputs := make([][]byte, 0, deps.Count())
						deps.ForEach(func(dep int) {
							inputs = append(inputs, fut(t-1, dep).get())
						})
						out := make([]byte, g.OutputBytes)
						err := g.ExecutePoint(t, i, out, inputs, scratch[i], app.Validate && !firstErr.Failed())
						if err != nil {
							firstErr.Set(err)
							g.WriteOutput(t, i, out)
						}
						self.resolve(out)
						done.Done()
					}

					// Countdown over the statement's input futures.
					n := deps.Count()
					serialize := g.ScratchBytes > 0 && t > 0 && !deps.Contains(i) && g.ContainsPoint(t-1, i)
					if serialize {
						n++ // the column's working set is read-write
					}
					if n == 0 {
						work <- body
						continue
					}
					count := int32(n)
					var mu sync.Mutex
					dec := func() {
						mu.Lock()
						count--
						ready := count == 0
						mu.Unlock()
						if ready {
							work <- body
						}
					}
					deps.ForEach(func(dep int) {
						fut(t-1, dep).when(dec)
					})
					if serialize {
						fut(t-1, i).when(dec)
					}
				}
			}
		}

		done.Wait()
		close(work)
		pool.Wait()
		return firstErr.Err()
	})
}
