package bsp

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestRankPolicyConformance(t *testing.T) {
	runtimetest.RankPolicyConformance(t, "bsp")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "bsp", 5)
}
