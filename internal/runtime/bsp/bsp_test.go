package bsp

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "bsp")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "bsp", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "bsp")
}
