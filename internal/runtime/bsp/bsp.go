// Package bsp implements the MPI bulk-synchronous analog: like p2p,
// but every timestep ends with a global barrier that enforces the
// boundary between the communication and computation phases (paper
// §3.4, "bulk synchronous implementation which enforces the boundary
// ... with MPI_Barrier"). The barrier is pure overhead relative to
// p2p and couples every rank to the slowest one — the structural
// reason MPI suffers most under load imbalance (paper §5.7).
package bsp

import (
	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("bsp", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "bsp" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "bsp",
		Analog:      "MPI bulk sync",
		Paradigm:    "message passing",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "global barrier per timestep between compute and communication phases",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	ranks := exec.WorkersFor(app)
	fabric := exec.NewFabric(app, ranks)
	barrier := exec.NewBarrier(ranks)
	var firstErr exec.ErrOnce
	return exec.Measure(app, ranks, func() error {
		done := make(chan struct{})
		for r := 0; r < ranks; r++ {
			go func(rank int) {
				defer func() { done <- struct{}{} }()
				runRank(app, fabric, barrier, rank, ranks, &firstErr)
			}(r)
		}
		for r := 0; r < ranks; r++ {
			<-done
		}
		return firstErr.Err()
	})
}

type rankState struct {
	g       *core.Graph
	span    exec.Span
	rows    *exec.Rows
	scratch []*kernels.Scratch
}

func runRank(app *core.App, fabric *exec.Fabric, barrier *exec.Barrier, rank, ranks int, firstErr *exec.ErrOnce) {
	states := make([]*rankState, len(app.Graphs))
	maxSteps := 0
	for gi, g := range app.Graphs {
		span := exec.BlockAssign(g.MaxWidth, ranks)[rank]
		st := &rankState{g: g, span: span, rows: exec.NewRows(g.MaxWidth, g.OutputBytes)}
		st.scratch = make([]*kernels.Scratch, g.MaxWidth)
		for i := span.Lo; i < span.Hi; i++ {
			st.scratch[i] = kernels.NewScratch(g.ScratchBytes)
		}
		states[gi] = st
		if g.Timesteps > maxSteps {
			maxSteps = g.Timesteps
		}
	}

	var inputs [][]byte
	for t := 0; t < maxSteps; t++ {
		// Phase 1: receive and compute every owned task of the step.
		for gi, st := range states {
			g := st.g
			if t >= g.Timesteps {
				continue
			}
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			lo := max(st.span.Lo, off)
			hi := min(st.span.Hi, off+w)
			for i := lo; i < hi; i++ {
				inputs = fabric.GatherRankInputs(gi, g, t, i, st.span, st.rows.Prev, inputs)
				out := st.rows.Cur(i)
				err := g.ExecutePoint(t, i, out, inputs, st.scratch[i], app.Validate && !firstErr.Failed())
				if err != nil {
					firstErr.Set(err)
					g.WriteOutput(t, i, out)
				}
			}
		}
		// Phase 2: communicate every output produced in the step.
		for gi, st := range states {
			g := st.g
			if t >= g.Timesteps {
				continue
			}
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			lo := max(st.span.Lo, off)
			hi := min(st.span.Hi, off+w)
			for i := lo; i < hi; i++ {
				fabric.SendRemoteOutputs(gi, g, t, i, st.rows.Cur(i))
			}
			st.rows.Flip()
		}
		// Phase 3: global barrier.
		barrier.Wait()
	}
}
