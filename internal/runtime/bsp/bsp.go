// Package bsp implements the MPI bulk-synchronous analog: like p2p,
// but every timestep ends with a global barrier that enforces the
// boundary between the communication and computation phases (paper
// §3.4, "bulk synchronous implementation which enforces the boundary
// ... with MPI_Barrier"). The barrier is pure overhead relative to
// p2p and couples every rank to the slowest one — the structural
// reason MPI suffers most under load imbalance (paper §5.7).
package bsp

import (
	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("bsp", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "bsp" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "bsp",
		Analog:      "MPI bulk sync",
		Paradigm:    "message passing",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "global barrier per timestep between compute and communication phases",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	return exec.RunRanks(app, policy{})
}

// RankPolicy implements runtime.RankBacked.
func (rt) RankPolicy() exec.RankPolicy { return policy{} }

// policy is the bulk-synchronous discipline: compute every owned task
// of the step, then communicate every output, then hit the global
// barrier.
type policy struct{}

func (policy) Layout(app *core.App) exec.RankLayout { return exec.FlatLayout(app) }

func (policy) Step(rc *exec.RankCtx, t int) {
	// Phase 1: receive and compute every owned task of the step.
	for gi := 0; gi < rc.Graphs(); gi++ {
		if !rc.Active(gi, t) {
			continue
		}
		lo, hi := rc.Window(gi, t)
		for i := lo; i < hi; i++ {
			rc.Run(gi, t, i)
		}
	}
	// Phase 2: communicate every output produced in the step.
	for gi := 0; gi < rc.Graphs(); gi++ {
		if !rc.Active(gi, t) {
			continue
		}
		lo, hi := rc.Window(gi, t)
		for i := lo; i < hi; i++ {
			rc.SendOutputs(gi, t, i, rc.Cur(gi, i))
		}
		rc.Flip(gi)
	}
	// Phase 3: global barrier.
	rc.Barrier()
}
