package actor

import (
	"testing"

	"taskbench/internal/runtime/runtimetest"
)

func TestConformance(t *testing.T) {
	runtimetest.Conformance(t, "actor")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "actor", 5)
}

func TestFaultInjection(t *testing.T) {
	runtimetest.FaultInjection(t, "actor")
}
