// Package actor implements the Charm++ analog (paper §3.2): one chare
// per column of each task graph, communicating exclusively by
// messages. A chare executes its task for a timestep as soon as all of
// that task's dependencies have arrived in its mailbox — fully
// asynchronous, message-driven execution with no global phases, which
// is what lets the actor model overlap communication and computation
// and absorb load imbalance (paper §5.6, §5.7).
package actor

import (
	"sync"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("actor", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "actor" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "actor",
		Analog:      "Charm++",
		Paradigm:    "actor model",
		Parallelism: "explicit",
		Distributed: true,
		Async:       true,
		Notes:       "chare per column; tasks fire when all dependence messages arrive",
	}
}

// message carries one dependence payload to a consumer chare.
type message struct {
	t        int
	producer int
	payload  []byte
}

// chare is one actor: a column of one graph.
type chare struct {
	g        *core.Graph
	graphIdx int
	col      int
	mailbox  *exec.Mailbox[message]
	peers    []*chare // chares of the same graph, indexed by column
	scratch  *kernels.Scratch

	// pending accumulates early messages by timestep.
	pending map[int]map[int][]byte
}

func (c *chare) run(validate bool, firstErr *exec.ErrOnce, wg *sync.WaitGroup) {
	defer wg.Done()
	g := c.g
	selfPrev := make([]byte, g.OutputBytes)
	out := make([]byte, g.OutputBytes)
	var inputs [][]byte
	for t := 0; t < g.Timesteps; t++ {
		if !g.ContainsPoint(t, c.col) {
			continue
		}
		deps := g.DependenciesForPoint(t, c.col)

		// Wait for every remote dependence message of this timestep.
		needed := 0
		deps.ForEach(func(dep int) {
			if dep != c.col {
				needed++
			}
		})
		for len(c.pending[t]) < needed {
			msg, ok := c.mailbox.Recv()
			if !ok {
				return
			}
			byProd := c.pending[msg.t]
			if byProd == nil {
				byProd = map[int][]byte{}
				c.pending[msg.t] = byProd
			}
			byProd[msg.producer] = msg.payload
		}

		// Assemble inputs in dependence order.
		inputs = inputs[:0]
		arrived := c.pending[t]
		deps.ForEach(func(dep int) {
			if dep == c.col {
				inputs = append(inputs, selfPrev)
			} else {
				inputs = append(inputs, arrived[dep])
			}
		})
		delete(c.pending, t)

		err := g.ExecutePoint(t, c.col, out, inputs, c.scratch, validate && !firstErr.Failed())
		if err != nil {
			firstErr.Set(err)
			g.WriteOutput(t, c.col, out)
		}

		// Deliver the output: keep a local copy for the self edge and
		// send one marshalled message per remote consumer.
		copy(selfPrev, out)
		g.ReverseDependenciesForPoint(t, c.col).ForEach(func(cons int) {
			if cons == c.col {
				return
			}
			payload := make([]byte, len(out))
			copy(payload, out)
			c.peers[cons].mailbox.Send(message{t: t + 1, producer: c.col, payload: payload})
		})
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	workers := exec.WorkersFor(app)
	var firstErr exec.ErrOnce
	return exec.Measure(app, workers, func() error {
		var wg sync.WaitGroup
		var all []*chare
		for gi, g := range app.Graphs {
			peers := make([]*chare, g.MaxWidth)
			for i := 0; i < g.MaxWidth; i++ {
				peers[i] = &chare{
					g: g, graphIdx: gi, col: i,
					mailbox: exec.NewMailbox[message](),
					peers:   peers,
					scratch: kernels.NewScratch(g.ScratchBytes),
					pending: map[int]map[int][]byte{},
				}
			}
			all = append(all, peers...)
		}
		for _, c := range all {
			wg.Add(1)
			go c.run(app.Validate, &firstErr, &wg)
		}
		wg.Wait()
		for _, c := range all {
			c.mailbox.Close()
		}
		return firstErr.Err()
	})
}
