package p2p

import (
	"testing"

	"taskbench/internal/runtime"
	"taskbench/internal/runtime/runtimetest"
)

func TestRankPolicyConformance(t *testing.T) {
	runtimetest.RankPolicyConformance(t, "p2p")
}

func TestRepeat(t *testing.T) {
	runtimetest.Repeat(t, "p2p", 5)
}

func TestInfo(t *testing.T) {
	rt, err := runtime.New("p2p")
	if err != nil {
		t.Fatal(err)
	}
	info := rt.Info()
	if !info.Distributed || info.Async {
		t.Errorf("unexpected info %+v", info)
	}
}
