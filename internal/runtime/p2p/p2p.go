// Package p2p implements the MPI point-to-point analog: one goroutine
// per rank, columns block-distributed over ranks, and one
// send/receive channel pair per dependence edge that crosses a rank
// boundary (paper §3.4). Each rank alternates a receive+compute phase
// with sends issued as soon as each task completes, the best
// performing strategy the paper found for MPI.
package p2p

import (
	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("p2p", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "p2p" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "p2p",
		Analog:      "MPI p2p",
		Paradigm:    "message passing",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "rank per worker; per-edge channels; sends issued per task",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	ranks := exec.WorkersFor(app)
	fabric := exec.NewFabric(app, ranks)
	var firstErr exec.ErrOnce
	return exec.Measure(app, ranks, func() error {
		done := make(chan struct{})
		for r := 0; r < ranks; r++ {
			go func(rank int) {
				defer func() { done <- struct{}{} }()
				runRank(app, fabric, rank, ranks, &firstErr)
			}(r)
		}
		for r := 0; r < ranks; r++ {
			<-done
		}
		return firstErr.Err()
	})
}

// rankState holds one rank's slice of one graph.
type rankState struct {
	g       *core.Graph
	span    exec.Span
	rows    *exec.Rows
	scratch []*kernels.Scratch
}

func runRank(app *core.App, fabric *exec.Fabric, rank, ranks int, firstErr *exec.ErrOnce) {
	states := make([]*rankState, len(app.Graphs))
	maxSteps := 0
	for gi, g := range app.Graphs {
		span := exec.BlockAssign(g.MaxWidth, ranks)[rank]
		st := &rankState{g: g, span: span, rows: exec.NewRows(g.MaxWidth, g.OutputBytes)}
		st.scratch = make([]*kernels.Scratch, g.MaxWidth)
		for i := span.Lo; i < span.Hi; i++ {
			st.scratch[i] = kernels.NewScratch(g.ScratchBytes)
		}
		states[gi] = st
		if g.Timesteps > maxSteps {
			maxSteps = g.Timesteps
		}
	}

	var inputs [][]byte
	for t := 0; t < maxSteps; t++ {
		for gi, st := range states {
			g := st.g
			if t >= g.Timesteps {
				continue
			}
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			lo := max(st.span.Lo, off)
			hi := min(st.span.Hi, off+w)
			for i := lo; i < hi; i++ {
				inputs = fabric.GatherRankInputs(gi, g, t, i, st.span, st.rows.Prev, inputs)
				out := st.rows.Cur(i)
				err := g.ExecutePoint(t, i, out, inputs, st.scratch[i], app.Validate && !firstErr.Failed())
				if err != nil {
					// Record the failure but keep the protocol flowing
					// so peer ranks do not deadlock on missing sends.
					firstErr.Set(err)
					g.WriteOutput(t, i, out)
				}
				fabric.SendRemoteOutputs(gi, g, t, i, out)
			}
			st.rows.Flip()
		}
	}
}
