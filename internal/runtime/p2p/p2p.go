// Package p2p implements the MPI point-to-point analog: one goroutine
// per rank, columns block-distributed over ranks, and one
// send/receive channel pair per dependence edge that crosses a rank
// boundary (paper §3.4). Each rank alternates a receive+compute phase
// with sends issued as soon as each task completes, the best
// performing strategy the paper found for MPI.
package p2p

import (
	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
)

func init() {
	runtime.Register("p2p", func() runtime.Runtime { return rt{} })
}

type rt struct{}

func (rt) Name() string { return "p2p" }

func (rt) Info() runtime.Info {
	return runtime.Info{
		Name:        "p2p",
		Analog:      "MPI p2p",
		Paradigm:    "message passing",
		Parallelism: "explicit",
		Distributed: true,
		Async:       false,
		Notes:       "rank per worker; per-edge channels; sends issued per task",
	}
}

func (rt) Run(app *core.App) (core.RunStats, error) {
	return exec.RunRanks(app, Policy{})
}

// RankPolicy implements runtime.RankBacked.
func (rt) RankPolicy() exec.RankPolicy { return Policy{} }

// Policy is the eager point-to-point discipline: each rank walks its
// owned window in program order, receiving and computing each task and
// sending its output to remote consumers the moment it is produced.
// The tcp backend reuses this policy over its wire transport.
type Policy struct{}

// Layout runs one single-threaded rank per worker.
func (Policy) Layout(app *core.App) exec.RankLayout { return exec.FlatLayout(app) }

// Step receives, computes and eagerly sends one timestep of every
// graph.
func (Policy) Step(rc *exec.RankCtx, t int) {
	for gi := 0; gi < rc.Graphs(); gi++ {
		if !rc.Active(gi, t) {
			continue
		}
		lo, hi := rc.Window(gi, t)
		for i := lo; i < hi; i++ {
			rc.SendOutputs(gi, t, i, rc.Run(gi, t, i))
		}
		rc.Flip(gi)
	}
}
