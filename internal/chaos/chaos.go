// Package chaos is a deterministic fault-injection harness for the
// cluster subsystem. A Scenario is a small script of fault rules —
// delayed, dropped or duplicated control frames, connection resets at
// named protocol points, slow-worker throttling, heartbeat suppression
// — and an Injector evaluates that script against a seeded PRNG, so
// the same (scenario, seed) pair always yields the same fault
// schedule. Tests inject it in-process through cluster.Options /
// cluster.WorkerOptions; a live fleet takes it via `taskbenchd worker
// -chaos` and `loadgen -chaos`.
//
// Scenario strings are semicolon-separated rules:
//
//	delay:p=0.2,d=5ms          delay a control frame 5ms with prob 0.2
//	drop:p=0.05                drop a control frame (pretend success)
//	dup:p=0.05                 write a control frame twice
//	slow:d=2ms                 delay EVERY frame (slow-worker throttle)
//	reset:at=post-prepare,n=1  close the connection at a named point
//	reset:at=mid-run,after=1   ... skipping the first occurrence
//	mute-hb:after=3,n=10       suppress 10 heartbeats after the 3rd
//
// Rules default to the control plane; `on=mesh` scopes a delay/drop
// rule to mesh (data-plane) writes instead, applied through WrapConn.
// Probabilistic rules draw from the injector's own PRNG in rule order,
// which is what makes a schedule reproducible: determinism holds per
// injector for a given call sequence, and Fork derives independent
// deterministic children for concurrent streams (one per connection).
//
// The named protocol points the cluster worker consults today are
// "post-prepare" (its prepared reply is on the wire), "mid-run" (a run
// just started executing; the reset fires act.Delay later, concurrent
// with the run) and "pre-result" (a result is about to be written);
// loadgen consults "pre-submit". Points are matched by exact name, so
// scenarios and code cannot drift silently — an unknown point simply
// never fires.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Rule kinds.
const (
	KindDelay  = "delay"
	KindDrop   = "drop"
	KindDup    = "dup"
	KindSlow   = "slow"
	KindReset  = "reset"
	KindMuteHB = "mute-hb"
)

// Scopes a frame rule applies to.
const (
	OnControl = "control"
	OnMesh    = "mesh"
)

// Rule is one scripted fault.
type Rule struct {
	// Kind selects the fault: delay, drop, dup, slow, reset, mute-hb.
	Kind string
	// P is the per-event probability of delay/drop/dup rules; slow is
	// delay with P pinned to 1.
	P float64
	// Delay is the injected latency of delay/slow rules, and the fuse
	// of a mid-run reset (how long after the point the reset fires).
	Delay time.Duration
	// At names the protocol point a reset rule fires at.
	At string
	// After skips the first After occurrences (reset: occurrences of
	// the point; mute-hb: heartbeats).
	After int
	// N bounds how many times the rule fires; 0 means unlimited for
	// frame rules, and defaults to 1 (reset) or 5 (mute-hb).
	N int
	// On scopes a frame rule to "control" (default) or "mesh" writes.
	On string
}

// Scenario is a parsed fault script.
type Scenario struct {
	Name  string
	Rules []Rule
}

// Presets are named ready-made scenarios, usable anywhere a scenario
// string is: `-chaos flaky` is `-chaos 'delay:p=0.2,d=2ms;dup:p=0.05'`.
var Presets = map[string]string{
	// flaky: a lossy, laggy control plane — latency spikes, duplicated
	// and occasionally dropped frames. Timeouts and (job, attempt)
	// matching must absorb all of it.
	"flaky": "delay:p=0.2,d=2ms;dup:p=0.05;drop:p=0.02",
	// reset-storm: connections die at the protocol's tender points.
	"reset-storm": "reset:at=post-prepare,n=1;reset:at=mid-run,after=1,n=1,d=50ms",
	// slow-worker: every control frame crawls, throttling one worker
	// without killing it.
	"slow-worker": "slow:d=2ms",
	// dead-air: the worker stays alive but stops heartbeating, forcing
	// the coordinator onto its heartbeat-timeout death path.
	"dead-air": "mute-hb:after=3,n=1000",
}

// PresetNames lists the preset scenarios, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(Presets))
	for n := range Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse turns a scenario string — a preset name or a rule script — into
// a Scenario.
func Parse(s string) (*Scenario, error) {
	name := s
	if expanded, ok := Presets[strings.TrimSpace(s)]; ok {
		s = expanded
	} else {
		name = "custom"
	}
	sc := &Scenario{Name: name}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		sc.Rules = append(sc.Rules, rule)
	}
	if len(sc.Rules) == 0 {
		return nil, fmt.Errorf("chaos: scenario %q has no rules", s)
	}
	return sc, nil
}

func parseRule(s string) (Rule, error) {
	kind, params, _ := strings.Cut(s, ":")
	r := Rule{Kind: strings.TrimSpace(kind), On: OnControl}
	switch r.Kind {
	case KindDelay, KindSlow:
		r.P, r.Delay = 1, time.Millisecond
	case KindDrop, KindDup:
		r.P = 0.05
	case KindReset:
		r.N = 1
	case KindMuteHB:
		r.N = 5
	default:
		return Rule{}, fmt.Errorf("chaos: unknown rule kind %q", r.Kind)
	}
	if params != "" {
		for _, p := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok {
				return Rule{}, fmt.Errorf("chaos: rule %q: parameter %q is not key=value", s, p)
			}
			var err error
			switch key {
			case "p":
				_, err = fmt.Sscanf(val, "%g", &r.P)
				if err == nil && (r.P < 0 || r.P > 1) {
					err = fmt.Errorf("probability %g outside [0,1]", r.P)
				}
			case "d":
				r.Delay, err = time.ParseDuration(val)
			case "at":
				r.At = val
			case "after":
				_, err = fmt.Sscanf(val, "%d", &r.After)
			case "n":
				_, err = fmt.Sscanf(val, "%d", &r.N)
			case "on":
				if val != OnControl && val != OnMesh {
					err = fmt.Errorf("want control or mesh, got %q", val)
				}
				r.On = val
			default:
				err = fmt.Errorf("unknown key")
			}
			if err != nil {
				return Rule{}, fmt.Errorf("chaos: rule %q: %s: %v", s, key, err)
			}
		}
	}
	if r.Kind == KindSlow {
		r.P = 1
	}
	if r.Kind == KindReset && r.At == "" {
		return Rule{}, fmt.Errorf("chaos: rule %q: reset requires at=<point>", s)
	}
	return r, nil
}

// String renders the scenario back into its script form.
func (sc *Scenario) String() string {
	var parts []string
	for _, r := range sc.Rules {
		var ps []string
		switch r.Kind {
		case KindDelay, KindDrop, KindDup, KindSlow:
			ps = append(ps, fmt.Sprintf("p=%g", r.P))
			if r.Delay > 0 {
				ps = append(ps, "d="+r.Delay.String())
			}
			if r.On == OnMesh {
				ps = append(ps, "on=mesh")
			}
			if r.N > 0 {
				ps = append(ps, fmt.Sprintf("n=%d", r.N))
			}
		case KindReset:
			ps = append(ps, "at="+r.At)
			if r.After > 0 {
				ps = append(ps, fmt.Sprintf("after=%d", r.After))
			}
			ps = append(ps, fmt.Sprintf("n=%d", r.N))
			if r.Delay > 0 {
				ps = append(ps, "d="+r.Delay.String())
			}
		case KindMuteHB:
			ps = append(ps, fmt.Sprintf("after=%d", r.After), fmt.Sprintf("n=%d", r.N))
		}
		parts = append(parts, r.Kind+":"+strings.Join(ps, ","))
	}
	return strings.Join(parts, ";")
}

// Action is one injection decision: what to do to the frame (or point)
// just consulted.
type Action struct {
	// Delay is slept before the write (or before a mid-run reset).
	Delay time.Duration
	// Drop discards the frame while pretending the write succeeded.
	Drop bool
	// Dup writes the frame twice.
	Dup bool
	// Reset closes the connection.
	Reset bool
}

// Injector evaluates one Scenario deterministically. All methods are
// safe for concurrent use (a mutex serializes the PRNG), and all are
// nil-safe: a nil *Injector injects nothing, so call sites need no
// guards. Determinism is per call sequence: one injector consulted in
// the same order always decides the same way, so concurrent streams
// should each Fork their own child.
type Injector struct {
	sc   *Scenario
	seed int64

	mu    sync.Mutex
	rng   *rand.Rand
	fired []int          // per-rule firings (N budgets)
	seen  map[string]int // per-point occurrence counts
	hb    int            // heartbeats consulted
}

// NewInjector builds an injector for the scenario with the given seed.
func NewInjector(sc *Scenario, seed int64) *Injector {
	return &Injector{
		sc:    sc,
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		fired: make([]int, len(sc.Rules)),
		seen:  map[string]int{},
	}
}

// Fork derives a child injector whose seed is a hash of this
// injector's seed and the name — the same (parent seed, name) pair
// always produces the same child schedule, independent of how
// concurrent streams interleave. Fork of nil is nil.
func (in *Injector) Fork(name string) *Injector {
	if in == nil {
		return nil
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", in.seed, name)
	return NewInjector(in.sc, int64(h.Sum64()))
}

// Scenario returns the script this injector evaluates (nil-safe).
func (in *Injector) Scenario() *Scenario {
	if in == nil {
		return nil
	}
	return in.sc
}

// budget consumes one firing of rule i if its N allows, reporting
// whether the rule may fire. Callers hold in.mu.
func (in *Injector) budget(i int) bool {
	r := in.sc.Rules[i]
	if r.N > 0 && in.fired[i] >= r.N {
		return false
	}
	in.fired[i]++
	return true
}

// frame evaluates the delay/drop/dup/slow rules of one scope against a
// single frame write.
func (in *Injector) frame(scope string) Action {
	if in == nil {
		return Action{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var act Action
	for i, r := range in.sc.Rules {
		if r.On != scope {
			continue
		}
		switch r.Kind {
		case KindDelay, KindSlow:
			if (r.P >= 1 || in.rng.Float64() < r.P) && in.budget(i) {
				act.Delay += r.Delay
			}
		case KindDrop:
			if in.rng.Float64() < r.P && in.budget(i) {
				act.Drop = true
			}
		case KindDup:
			if in.rng.Float64() < r.P && in.budget(i) {
				act.Dup = true
			}
		}
	}
	return act
}

// Frame is consulted once per control-plane frame write.
func (in *Injector) Frame(msgType string) Action { return in.frame(OnControl) }

// MeshFrame is consulted once per mesh (data-plane) write.
func (in *Injector) MeshFrame() Action { return in.frame(OnMesh) }

// Point is consulted at a named protocol point; a reset rule scripted
// at this point (whose after/n budget allows) answers with Reset and
// its fuse Delay.
func (in *Injector) Point(name string) Action {
	if in == nil {
		return Action{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	occurrence := in.seen[name]
	in.seen[name] = occurrence + 1
	var act Action
	for i, r := range in.sc.Rules {
		if r.Kind != KindReset || r.At != name || occurrence < r.After {
			continue
		}
		if in.budget(i) {
			act.Reset = true
			act.Delay = r.Delay
		}
	}
	return act
}

// WrapConn returns a net.Conn wrapper applying this injector's
// mesh-scoped rules to writes, or nil if there are none (or the
// injector is nil) — callers pass the result straight to an optional
// wrap hook. Delay throttles the write; Drop closes the connection and
// fails the write: silently discarding bytes from a stream would be
// framing corruption, not a fault a system is expected to survive,
// while a reset is exactly the link failure the mesh teardown paths
// exist for.
func (in *Injector) WrapConn() func(net.Conn) net.Conn {
	if in == nil {
		return nil
	}
	mesh := false
	for _, r := range in.sc.Rules {
		if r.On == OnMesh {
			mesh = true
			break
		}
	}
	if !mesh {
		return nil
	}
	return func(c net.Conn) net.Conn { return &chaosConn{Conn: c, in: in} }
}

type chaosConn struct {
	net.Conn
	in *Injector
}

func (c *chaosConn) Write(p []byte) (int, error) {
	act := c.in.MeshFrame()
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	if act.Drop {
		c.Conn.Close()
		return 0, fmt.Errorf("chaos: mesh connection reset")
	}
	return c.Conn.Write(p)
}

// Heartbeat reports whether this heartbeat should be suppressed
// (mute-hb rules count heartbeats consulted, not wall time, so the
// schedule is deterministic).
func (in *Injector) Heartbeat() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	beat := in.hb
	in.hb++
	mute := false
	for i, r := range in.sc.Rules {
		if r.Kind != KindMuteHB || beat < r.After {
			continue
		}
		if in.budget(i) {
			mute = true
		}
	}
	return mute
}
