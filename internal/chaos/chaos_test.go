package chaos

import (
	"testing"
	"time"
)

// schedule runs a fixed consultation sequence against a fresh injector
// and records every decision, so two runs can be compared byte for
// byte.
func schedule(t *testing.T, scenario string, seed int64) []Action {
	t.Helper()
	sc, err := Parse(scenario)
	if err != nil {
		t.Fatalf("Parse(%q): %v", scenario, err)
	}
	in := NewInjector(sc, seed)
	var acts []Action
	for i := 0; i < 200; i++ {
		acts = append(acts, in.Frame("run"))
		acts = append(acts, in.MeshFrame())
		acts = append(acts, in.Point("post-prepare"))
		acts = append(acts, in.Point("mid-run"))
		if in.Heartbeat() {
			acts = append(acts, Action{Drop: true})
		}
	}
	return acts
}

// TestDeterminism is the chaos harness's core contract: the same seed
// and scenario produce the identical fault schedule, run after run.
func TestDeterminism(t *testing.T) {
	scenarios := []string{
		"flaky",
		"reset-storm",
		"dead-air",
		"delay:p=0.5,d=3ms;drop:p=0.3;dup:p=0.2;reset:at=mid-run,after=2,n=3;mute-hb:after=5,n=7;slow:d=1ms,on=mesh",
	}
	for _, scenario := range scenarios {
		a := schedule(t, scenario, 42)
		b := schedule(t, scenario, 42)
		if len(a) != len(b) {
			t.Fatalf("%s: schedule lengths differ: %d vs %d", scenario, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: schedules diverge at step %d: %+v vs %+v", scenario, i, a[i], b[i])
			}
		}
	}
}

// TestSeedsDiverge guards against the degenerate determinism where the
// seed is ignored: different seeds must (for a probabilistic scenario)
// produce different schedules.
func TestSeedsDiverge(t *testing.T) {
	a := schedule(t, "flaky", 1)
	b := schedule(t, "flaky", 2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical flaky schedules; seed is being ignored")
	}
}

// TestForkDeterminism: forked children are themselves deterministic and
// independent of sibling interleaving — the same (parent seed, name)
// always yields the same child schedule.
func TestForkDeterminism(t *testing.T) {
	sc, err := Parse("flaky")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, burn int) []Action {
		parent := NewInjector(sc, 7)
		for i := 0; i < burn; i++ {
			parent.Frame("noise") // sibling traffic must not perturb the child
		}
		child := parent.Fork(name)
		var acts []Action
		for i := 0; i < 50; i++ {
			acts = append(acts, child.Frame("run"))
		}
		return acts
	}
	a, b := mk("w1", 0), mk("w1", 33)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fork w1 diverges at %d under different parent interleaving", i)
		}
	}
	c := mk("w2", 0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forks w1 and w2 produced identical schedules; fork name is being ignored")
	}
}

func TestResetPointSchedule(t *testing.T) {
	sc, err := Parse("reset:at=mid-run,after=1,n=2,d=10ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sc, 1)
	if act := in.Point("post-prepare"); act.Reset {
		t.Fatal("reset fired at the wrong point")
	}
	if act := in.Point("mid-run"); act.Reset {
		t.Fatal("reset fired before its after= budget")
	}
	for i := 0; i < 2; i++ {
		act := in.Point("mid-run")
		if !act.Reset || act.Delay != 10*time.Millisecond {
			t.Fatalf("occurrence %d: want reset with 10ms fuse, got %+v", i+2, act)
		}
	}
	if act := in.Point("mid-run"); act.Reset {
		t.Fatal("reset fired past its n= budget")
	}
}

func TestHeartbeatMute(t *testing.T) {
	sc, err := Parse("mute-hb:after=2,n=3")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sc, 1)
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, in.Heartbeat())
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heartbeat %d: got mute=%v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"explode:p=1",
		"delay:p=2",
		"delay:p",
		"delay:q=1",
		"reset:n=1", // missing at=
		"delay:d=bogus",
		"drop:on=wire",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error, got nil", s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	in := "delay:p=0.2,d=2ms;dup:p=0.05;drop:p=0.02,on=mesh;reset:at=pre-result,n=1;mute-hb:after=3,n=5;slow:p=1,d=4ms"
	sc, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := Parse(sc.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", sc.String(), err)
	}
	if len(sc.Rules) != len(sc2.Rules) {
		t.Fatalf("round trip changed rule count: %d vs %d", len(sc.Rules), len(sc2.Rules))
	}
	for i := range sc.Rules {
		if sc.Rules[i] != sc2.Rules[i] {
			t.Fatalf("rule %d changed across round trip: %+v vs %+v", i, sc.Rules[i], sc2.Rules[i])
		}
	}
}

func TestPresetsParse(t *testing.T) {
	for _, name := range PresetNames() {
		sc, err := Parse(name)
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if sc.Name != name {
			t.Errorf("preset %s: parsed name %q", name, sc.Name)
		}
	}
}

// TestNilInjector: every method on a nil injector is a no-op, so call
// sites need no nil guards.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if act := in.Frame("run"); act != (Action{}) {
		t.Fatalf("nil Frame: %+v", act)
	}
	if act := in.MeshFrame(); act != (Action{}) {
		t.Fatalf("nil MeshFrame: %+v", act)
	}
	if act := in.Point("mid-run"); act != (Action{}) {
		t.Fatalf("nil Point: %+v", act)
	}
	if in.Heartbeat() {
		t.Fatal("nil Heartbeat muted")
	}
	if in.Fork("child") != nil {
		t.Fatal("nil Fork returned non-nil")
	}
	if in.Scenario() != nil {
		t.Fatal("nil Scenario returned non-nil")
	}
}

func TestSlowAppliesEveryFrame(t *testing.T) {
	sc, err := Parse("slow:d=3ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sc, 9)
	for i := 0; i < 10; i++ {
		if act := in.Frame("x"); act.Delay != 3*time.Millisecond {
			t.Fatalf("frame %d: want 3ms delay, got %+v", i, act)
		}
	}
	if act := in.MeshFrame(); act.Delay != 0 {
		t.Fatalf("control-scoped slow leaked onto mesh: %+v", act)
	}
}
