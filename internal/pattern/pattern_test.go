package pattern

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomPattern builds a valid random curve for property tests.
func randomPattern(rng *rand.Rand) Pattern {
	d := time.Duration(1+rng.Intn(3600)) * time.Second
	n := 1 + rng.Intn(12)
	pts := make([]Point, n)
	var at time.Duration
	for i := range pts {
		at += time.Duration(rng.Int63n(int64(d)/int64(n) + 1))
		if at > d {
			at = d
		}
		pts[i] = Point{At: at, Rate: rng.Float64() * 100}
	}
	return Pattern{Name: "random", Duration: d, Points: pts}
}

// TestRateWithinSegmentBounds is the interpolation property: at any
// instant, the rate lies within the bounds of its bracketing segment
// (and the curve is clamped to the end knots outside them).
func TestRateWithinSegmentBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := randomPattern(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random pattern: %v", trial, err)
		}
		for probe := 0; probe < 100; probe++ {
			at := time.Duration(rng.Int63n(int64(p.Duration) + 1))
			got := p.RateAt(at)
			lo, hi := math.Inf(1), math.Inf(-1)
			switch {
			case at <= p.Points[0].At:
				lo, hi = p.Points[0].Rate, p.Points[0].Rate
			case at >= p.Points[len(p.Points)-1].At:
				last := p.Points[len(p.Points)-1].Rate
				lo, hi = last, last
			default:
				for i := 1; i < len(p.Points); i++ {
					if p.Points[i-1].At <= at && at <= p.Points[i].At {
						lo = math.Min(p.Points[i-1].Rate, p.Points[i].Rate)
						hi = math.Max(p.Points[i-1].Rate, p.Points[i].Rate)
						break
					}
				}
			}
			const eps = 1e-9
			if got < lo-eps || got > hi+eps {
				t.Fatalf("trial %d: rate %v at %v outside segment bounds [%v, %v]\npattern: %+v",
					trial, got, at, lo, hi, p)
			}
		}
	}
}

// TestPresetsIntegrateToTotalUnderCompression is the conservation
// property the loadgen design rests on: every preset integrates to its
// nominal total job count, and because compression lives in the Clock
// (arrivals are drawn in simulated time), the total is independent of
// the time-scale factor — checked by numerically integrating the
// real-time rate scale·r(scale·t) over the compressed run.
func TestPresetsIntegrateToTotalUnderCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, name := range PresetNames() {
		for trial := 0; trial < 20; trial++ {
			d := time.Duration(10+rng.Intn(86400)) * time.Second
			total := float64(1 + rng.Intn(100000))
			scale := []float64{1, 12, 60, 3600}[rng.Intn(4)]
			p, err := Preset(name, d, total)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.Integral(0, p.Duration); math.Abs(got-total) > 1e-6*total {
				t.Fatalf("%s: integral %v, want nominal total %v", name, got, total)
			}
			// Riemann sum of the compressed real-time rate.
			realDur := float64(d) / scale / float64(time.Second)
			const steps = 20000
			dt := realDur / steps
			var sum float64
			for i := 0; i < steps; i++ {
				tReal := (float64(i) + 0.5) * dt
				sim := time.Duration(tReal * scale * float64(time.Second))
				sum += p.RateAt(sim) * scale * dt
			}
			if math.Abs(sum-total) > 0.01*total {
				t.Fatalf("%s at scale %v: compressed integral %v, want %v", name, scale, sum, total)
			}
		}
	}
}

// TestIntegralMatchesRiemann cross-checks the exact trapezoid integral
// against a numeric sum on random curves and random subintervals.
func TestIntegralMatchesRiemann(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		p := randomPattern(rng)
		from := time.Duration(rng.Int63n(int64(p.Duration)))
		to := from + time.Duration(rng.Int63n(int64(p.Duration-from)+1))
		got := p.Integral(from, to)
		const steps = 5000
		dt := float64(to-from) / steps
		var sum float64
		for i := 0; i < steps; i++ {
			at := from + time.Duration((float64(i)+0.5)*dt)
			sum += p.RateAt(at) * dt / float64(time.Second)
		}
		tol := 1e-3*sum + 1e-6
		if math.Abs(got-sum) > tol {
			t.Fatalf("trial %d: integral(%v,%v) = %v, riemann %v\npattern %+v", trial, from, to, got, sum, p)
		}
	}
}

// TestDeterministicArrivalCount pins the deterministic stream: a
// preset scaled to N jobs yields N arrivals (±1 for the boundary
// landing on the final instant), non-decreasing, within the duration.
func TestDeterministicArrivalCount(t *testing.T) {
	for _, name := range PresetNames() {
		for _, total := range []float64{1, 17, 400} {
			p, err := Preset(name, 10*time.Minute, total)
			if err != nil {
				t.Fatal(err)
			}
			arr := NewArrivals(p, nil)
			var count int
			var last time.Duration
			for {
				at, ok := arr.Next()
				if !ok {
					break
				}
				if at < last || at > p.Duration {
					t.Fatalf("%s: arrival %v out of order or range (prev %v)", name, at, last)
				}
				last = at
				count++
				if count > int(total)+1 {
					t.Fatalf("%s: runaway arrival stream (> %v)", name, total)
				}
			}
			if count < int(total)-1 {
				t.Errorf("%s total %v: only %d arrivals", name, total, count)
			}
		}
	}
}

// TestPoissonArrivalCount bounds the seeded stochastic stream: the
// arrival count concentrates around the nominal total.
func TestPoissonArrivalCount(t *testing.T) {
	p, err := Preset("burst", time.Hour, 10000)
	if err != nil {
		t.Fatal(err)
	}
	arr := NewArrivals(p, rand.New(rand.NewSource(42)))
	var count int
	var last time.Duration
	for {
		at, ok := arr.Next()
		if !ok {
			break
		}
		if at < last {
			t.Fatalf("arrival %v before %v", at, last)
		}
		last = at
		count++
	}
	// A Poisson(10000) draw is within ±5σ = ±500 essentially always.
	if count < 9500 || count > 10500 {
		t.Errorf("poisson arrivals = %d, want ≈10000", count)
	}
}

// TestClockRoundTrip pins the compressed clock's two directions
// against each other and its rate contract.
func TestClockRoundTrip(t *testing.T) {
	start := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	for _, scale := range []float64{1, 12, 60, 3600} {
		c := NewClock(start, scale)
		for _, sim := range []time.Duration{0, time.Second, time.Hour, 24 * time.Hour} {
			back := c.Sim(c.Real(sim))
			if diff := (back - sim).Abs(); diff > time.Duration(scale)*time.Microsecond {
				t.Errorf("scale %v: sim %v round-tripped to %v", scale, sim, back)
			}
		}
		// One real second is scale simulated seconds.
		got := c.Sim(start.Add(time.Second))
		want := time.Duration(scale * float64(time.Second))
		if (got - want).Abs() > time.Millisecond {
			t.Errorf("scale %v: 1 real second = %v simulated, want %v", scale, got, want)
		}
	}
}

// TestPresetRejectsUnknown pins the error path and the name list.
func TestPresetRejectsUnknown(t *testing.T) {
	if _, err := Preset("sawtooth", time.Minute, 10); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Preset("burst", 0, 10); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Preset("burst", time.Minute, 0); err == nil {
		t.Error("zero total accepted")
	}
	for _, name := range PresetNames() {
		if _, err := Preset(name, time.Minute, 10); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
}
