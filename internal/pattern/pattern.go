// Package pattern models time-varying submission load for the cluster
// load generator: piecewise-linear curves of instantaneous job rate
// over *simulated* time, a compressed clock that maps simulated time
// onto real wall time under a -time-scale factor, and an arrival
// generator that turns a curve into concrete submission instants.
//
// The split matters: patterns are written in simulated time (a diurnal
// curve is 24 simulated hours regardless of how fast it replays), and
// compression lives entirely in the Clock. Because arrivals are drawn
// in simulated time and only mapped to wall time at scheduling, the
// total number of jobs a pattern produces is independent of the
// compression factor — a property the tests pin.
package pattern

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Point is one knot of a load curve: at simulated offset At, the
// instantaneous submission rate is Rate jobs per simulated second.
// Between knots the rate is linearly interpolated; before the first
// and after the last knot it is held constant at that knot's rate.
type Point struct {
	At   time.Duration
	Rate float64
}

// Pattern is a piecewise-linear load curve over one simulated run.
type Pattern struct {
	// Name labels the pattern in timelines and logs.
	Name string
	// Duration is the simulated length of the run. Arrivals stop here.
	Duration time.Duration
	// Points are the curve's knots, sorted by At within [0, Duration].
	Points []Point
}

// Validate checks the curve is well formed: a positive duration, at
// least one knot, knots sorted and in range, rates finite and
// non-negative.
func (p Pattern) Validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("pattern %q: duration %v not positive", p.Name, p.Duration)
	}
	if len(p.Points) == 0 {
		return fmt.Errorf("pattern %q: no points", p.Name)
	}
	for i, pt := range p.Points {
		if pt.At < 0 || pt.At > p.Duration {
			return fmt.Errorf("pattern %q: point %d at %v outside [0, %v]", p.Name, i, pt.At, p.Duration)
		}
		if i > 0 && pt.At < p.Points[i-1].At {
			return fmt.Errorf("pattern %q: point %d at %v before point %d at %v", p.Name, i, pt.At, i-1, p.Points[i-1].At)
		}
		if math.IsNaN(pt.Rate) || math.IsInf(pt.Rate, 0) || pt.Rate < 0 {
			return fmt.Errorf("pattern %q: point %d rate %v invalid", p.Name, i, pt.Rate)
		}
	}
	return nil
}

// RateAt returns the instantaneous rate (jobs per simulated second) at
// simulated offset at: linear interpolation between the bracketing
// knots, clamped to the first and last knot's rates outside them.
func (p Pattern) RateAt(at time.Duration) float64 {
	pts := p.Points
	if len(pts) == 0 {
		return 0
	}
	if at <= pts[0].At {
		return pts[0].Rate
	}
	if at >= pts[len(pts)-1].At {
		return pts[len(pts)-1].Rate
	}
	// First knot strictly after at; its predecessor opens the segment.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At > at })
	a, b := pts[i-1], pts[i]
	if b.At == a.At {
		return b.Rate
	}
	frac := float64(at-a.At) / float64(b.At-a.At)
	return a.Rate + (b.Rate-a.Rate)*frac
}

// Integral returns the exact number of jobs the curve produces over
// the simulated interval [from, to] — the trapezoid sum of the
// piecewise-linear rate, with the interval clamped to [0, Duration].
func (p Pattern) Integral(from, to time.Duration) float64 {
	if from < 0 {
		from = 0
	}
	if to > p.Duration {
		to = p.Duration
	}
	if to <= from || len(p.Points) == 0 {
		return 0
	}
	// Integrate segment by segment between every pair of adjacent
	// breakpoints of the clamped interval; RateAt is linear inside each.
	cuts := make([]time.Duration, 0, len(p.Points)+2)
	cuts = append(cuts, from)
	for _, pt := range p.Points {
		if pt.At > from && pt.At < to {
			cuts = append(cuts, pt.At)
		}
	}
	cuts = append(cuts, to)
	var total float64
	for i := 1; i < len(cuts); i++ {
		lo, hi := cuts[i-1], cuts[i]
		total += (p.RateAt(lo) + p.RateAt(hi)) / 2 * (hi - lo).Seconds()
	}
	return total
}

// PeakRate returns the curve's maximum instantaneous rate (at a knot:
// linear segments attain their extrema at the endpoints).
func (p Pattern) PeakRate() float64 {
	var peak float64
	for _, pt := range p.Points {
		if pt.Rate > peak {
			peak = pt.Rate
		}
	}
	return peak
}

// WithTotal scales every rate so the whole curve integrates to exactly
// total jobs, preserving its shape. A zero-integral curve is returned
// unchanged.
func (p Pattern) WithTotal(total float64) Pattern {
	cur := p.Integral(0, p.Duration)
	if cur <= 0 || total < 0 {
		return p
	}
	factor := total / cur
	scaled := p
	scaled.Points = make([]Point, len(p.Points))
	for i, pt := range p.Points {
		scaled.Points[i] = Point{At: pt.At, Rate: pt.Rate * factor}
	}
	return scaled
}

// PresetNames lists the built-in load shapes in CLI order.
func PresetNames() []string {
	return []string{"constant", "ramp", "burst", "diurnal", "batch"}
}

// Preset builds a named load shape over the simulated duration, scaled
// so it integrates to totalJobs submissions:
//
//	constant  flat rate for the whole run
//	ramp      linear growth from zero to peak — capacity discovery
//	burst     a low baseline with a 5-minute-scale plateau at 16× the
//	          baseline in the middle fifth — the overload window that
//	          exercises admission control and client back-off
//	diurnal   a raised-cosine day: trough at both ends, peak mid-run
//	batch     interactive baseline plus a heavy square batch window in
//	          the last quarter — the scheduled nightly-load shape
func Preset(name string, duration time.Duration, totalJobs float64) (Pattern, error) {
	if duration <= 0 {
		return Pattern{}, fmt.Errorf("pattern: preset duration %v not positive", duration)
	}
	if totalJobs <= 0 {
		return Pattern{}, fmt.Errorf("pattern: preset total %v not positive", totalJobs)
	}
	at := func(frac float64) time.Duration { return time.Duration(frac * float64(duration)) }
	var p Pattern
	switch strings.ToLower(name) {
	case "constant":
		p = Pattern{Points: []Point{{0, 1}, {duration, 1}}}
	case "ramp":
		p = Pattern{Points: []Point{{0, 0}, {duration, 1}}}
	case "burst":
		p = Pattern{Points: []Point{
			{0, 1}, {at(0.40), 1},
			{at(0.42), 16}, {at(0.58), 16},
			{at(0.60), 1}, {duration, 1},
		}}
	case "diurnal":
		// Sampled raised cosine (1-cos(2πt/d))/2: piecewise-linear is
		// the contract, so the smooth day is approximated by 24 knots.
		const knots = 24
		pts := make([]Point, 0, knots+1)
		for i := 0; i <= knots; i++ {
			frac := float64(i) / knots
			rate := (1 - math.Cos(2*math.Pi*frac)) / 2
			pts = append(pts, Point{At: at(frac), Rate: 0.05 + rate})
		}
		p = Pattern{Points: pts}
	case "batch":
		p = Pattern{Points: []Point{
			{0, 1}, {at(0.74), 1},
			{at(0.75), 8}, {at(0.95), 8},
			{at(0.96), 1}, {duration, 1},
		}}
	default:
		return Pattern{}, fmt.Errorf("pattern: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
	}
	p.Name = strings.ToLower(name)
	p.Duration = duration
	p = p.WithTotal(totalJobs)
	if err := p.Validate(); err != nil {
		return Pattern{}, err
	}
	return p, nil
}

// Clock maps between real wall time and simulated time under a
// compression factor: one real second advances Scale simulated
// seconds, so a 24-hour diurnal pattern replays in 24 real minutes at
// Scale 60.
type Clock struct {
	start time.Time
	scale float64
}

// NewClock starts a compressed clock at the given wall instant. Scale
// values at or below zero mean real time (scale 1).
func NewClock(start time.Time, scale float64) Clock {
	if scale <= 0 {
		scale = 1
	}
	return Clock{start: start, scale: scale}
}

// Scale returns the compression factor.
func (c Clock) Scale() float64 { return c.scale }

// Sim returns the simulated offset corresponding to the wall instant
// now (negative before the clock's start).
func (c Clock) Sim(now time.Time) time.Duration {
	return time.Duration(float64(now.Sub(c.start)) * c.scale)
}

// Real returns the wall instant at which the simulated offset sim is
// reached.
func (c Clock) Real(sim time.Duration) time.Time {
	return c.start.Add(time.Duration(float64(sim) / c.scale))
}

// Arrivals draws the submission instants of one run from a pattern, in
// simulated time, by inverting the curve's cumulative integral: the
// n-th arrival lands where the area under the rate curve reaches the
// n-th target. With a seed the targets are unit-mean exponential
// increments (a non-homogeneous Poisson process — realistic jitter);
// deterministic mode spaces targets exactly one job apart, so a run
// produces ⌊total⌋ arrivals reproducibly, which is what the CI smoke
// asserts against.
type Arrivals struct {
	p   Pattern
	rng *rand.Rand // nil in deterministic mode

	seg    int           // current segment index (p.Points[seg] opens it)
	at     time.Duration // simulated position of the cursor
	area   float64       // cumulative integral at the cursor
	target float64       // cumulative target of the next arrival
}

// NewArrivals creates the arrival stream for p. A nil rng selects
// deterministic unit spacing.
func NewArrivals(p Pattern, rng *rand.Rand) *Arrivals {
	a := &Arrivals{p: p, rng: rng}
	a.target = a.step()
	return a
}

// step returns the cumulative-area gap to the next arrival.
func (a *Arrivals) step() float64 {
	if a.rng == nil {
		return 1
	}
	return a.rng.ExpFloat64()
}

// Next returns the simulated offset of the next submission, or false
// once the pattern's duration is exhausted. Offsets are non-decreasing.
func (a *Arrivals) Next() (time.Duration, bool) {
	pts := a.p.Points
	for {
		// End of the curve: arrivals past the last knot happen at the
		// final rate, held constant until Duration.
		var segEnd time.Duration
		var r0, r1 float64
		if a.seg >= len(pts)-1 {
			segEnd = a.p.Duration
			last := pts[len(pts)-1]
			r0, r1 = last.Rate, last.Rate
			if a.at >= segEnd {
				return 0, false
			}
		} else {
			segEnd = pts[a.seg+1].At
			r0 = a.p.RateAt(a.at)
			r1 = pts[a.seg+1].Rate
		}
		h := (segEnd - a.at).Seconds()
		segArea := (r0 + r1) / 2 * h
		need := a.target - a.area
		if segArea < need || h <= 0 {
			// The target lies beyond this segment: consume it whole.
			a.area += segArea
			a.at = segEnd
			if a.seg < len(pts)-1 {
				a.seg++
				continue
			}
			return 0, false
		}
		// Solve r0·dt + (r1-r0)/(2h)·dt² = need for dt within [0, h].
		var dt float64
		if r1 == r0 {
			if r0 <= 0 {
				// Zero-rate segment with zero need: land at its end.
				dt = h
			} else {
				dt = need / r0
			}
		} else {
			k := (r1 - r0) / (2 * h)
			disc := r0*r0 + 4*k*need
			if disc < 0 {
				disc = 0 // numeric guard; need ≤ segArea bounds the root
			}
			dt = (math.Sqrt(disc) - r0) / (2 * k)
			if dt < 0 {
				dt = 0
			}
			if dt > h {
				dt = h
			}
		}
		a.area = a.target
		a.at += time.Duration(dt * float64(time.Second))
		if a.at > a.p.Duration {
			return 0, false
		}
		a.target += a.step()
		return a.at, true
	}
}
