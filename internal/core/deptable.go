package core

// The compiled dependence table. Dependencies is a pure function of
// (dset, column) and MaxDependenceSets is small (at most Period or
// log2(width) sets), so the whole relation — forward and reverse — can
// be compiled once into flat interval arenas and served as O(1)
// allocation-free views. The naive per-call path allocates a fresh
// IntervalList in Dependencies and a second in clip for every query; at
// sub-100µs task granularities those per-task heap allocations are
// overhead the benchmark itself injects (§4), so every hot caller
// queries the table instead.

// DepTable is the compiled dependence relation of one Graph: for every
// (dependence set, column) pair, the forward relation (producer columns
// at t-1) and the reverse relation (consumer columns at t+1), stored
// back to back in shared interval arenas. Queries return views into the
// arenas and never allocate. Obtain with Graph.Deps.
type DepTable struct {
	width int
	sets  int
	fwd   depRel
	rev   depRel
	// Per-timestep precomputes, so per-task queries replace the
	// DependenceSetAt/WidthAtTimestep switches with two array loads.
	// dsetAt[t] is the dependence set in effect at timestep t, offAt[t]
	// and widthAt[t] the active window of timestep t.
	dsetAt  []int32
	offAt   []int32
	widthAt []int32
}

// depRel is one direction of the relation. arena holds every interval
// of every (dset, column) list contiguously; the list of (dset, i)
// occupies arena[off[dset*width+i]:off[dset*width+i+1]].
type depRel struct {
	arena []Interval
	off   []int32
}

func (r *depRel) list(width, dset, i int) IntervalList {
	k := dset*width + i
	lo, hi := r.off[k], r.off[k+1]
	return IntervalList(r.arena[lo:hi:hi])
}

// Forward returns the compiled forward relation at (dset, i): the
// producer columns of the previous timestep, clamped to [0, MaxWidth)
// like Dependencies but not clipped to any active window. The result
// is a view into the table's arena and must not be modified.
//
//taskbench:hotpath
func (dt *DepTable) Forward(dset, i int) IntervalList {
	if dset < 0 || dset >= dt.sets || i < 0 || i >= dt.width {
		return nil
	}
	return dt.fwd.list(dt.width, dset, i)
}

// Reverse returns the compiled reverse relation at (dset, i): the
// consumer columns of the next timestep, the exact inverse of Forward.
// The result is a view into the table's arena and must not be modified.
//
//taskbench:hotpath
func (dt *DepTable) Reverse(dset, i int) IntervalList {
	if dset < 0 || dset >= dt.sets || i < 0 || i >= dt.width {
		return nil
	}
	return dt.rev.list(dt.width, dset, i)
}

// Deps returns the graph's compiled dependence table, building it on
// first use. The fast path is a single atomic load (and inlines into
// per-query callers), so per-task callers (input validation, payload
// routing) pay no locking and no allocation. The build is the
// terminating branch, keeping the steady-state path visibly cold-free
// for hotpathalloc.
func (g *Graph) Deps() *DepTable {
	dt := g.depTable.Load()
	if dt == nil {
		return g.depsSlow()
	}
	return dt
}

// depsSlow builds the table under the once guard, keeping the closure
// out of Deps so the fast path stays inlinable.
func (g *Graph) depsSlow() *DepTable {
	g.depOnce.Do(func() { g.depTable.Store(g.compileDeps()) })
	return g.depTable.Load()
}

// PrecomputeDeps compiles the dependence table eagerly. Plan builders
// call it before fanning out over columns so worker goroutines only
// read shared graph state.
func (g *Graph) PrecomputeDeps() { g.Deps() }

// compileDeps expands the forward relation from the reference
// Dependencies implementation and inverts it per dependence set. The
// inversion is independent of the lazy revTable build in graph.go, so
// the two paths cross-check each other (see TestDepTableMatchesReference).
func (g *Graph) compileDeps() *DepTable {
	sets := g.MaxDependenceSets()
	w := g.MaxWidth
	dt := &DepTable{width: w, sets: sets}

	dt.dsetAt = make([]int32, g.Timesteps)
	dt.offAt = make([]int32, g.Timesteps)
	dt.widthAt = make([]int32, g.Timesteps)
	for t := 0; t < g.Timesteps; t++ {
		dt.dsetAt[t] = int32(g.DependenceSetAt(t))
		dt.offAt[t] = int32(g.OffsetAtTimestep(t))
		dt.widthAt[t] = int32(g.WidthAtTimestep(t))
	}

	dt.fwd.off = make([]int32, sets*w+1)
	for dset := 0; dset < sets; dset++ {
		for i := 0; i < w; i++ {
			dt.fwd.arena = append(dt.fwd.arena, g.Dependencies(dset, i)...)
			dt.fwd.off[dset*w+i+1] = int32(len(dt.fwd.arena))
		}
	}

	// Invert each set. Scanning consumers j in ascending order appends
	// each producer's consumer list already sorted, so the lists
	// compress into maximal intervals directly.
	dt.rev.off = make([]int32, sets*w+1)
	consumers := make([][]int32, w)
	for dset := 0; dset < sets; dset++ {
		for i := range consumers {
			consumers[i] = consumers[i][:0]
		}
		for j := 0; j < w; j++ {
			for _, iv := range dt.fwd.list(w, dset, j) {
				for p := max(iv.First, 0); p <= min(iv.Last, w-1); p++ {
					consumers[p] = append(consumers[p], int32(j))
				}
			}
		}
		for i := 0; i < w; i++ {
			dt.rev.arena = appendIntervalsFromSorted(dt.rev.arena, consumers[i])
			dt.rev.off[dset*w+i+1] = int32(len(dt.rev.arena))
		}
	}
	return dt
}

// appendIntervalsFromSorted compresses a sorted, deduplicated point
// slice into intervals appended to arena.
func appendIntervalsFromSorted(arena []Interval, pts []int32) []Interval {
	for n := 0; n < len(pts); {
		first := int(pts[n])
		last := first
		n++
		for n < len(pts) && int(pts[n]) == last+1 {
			last = int(pts[n])
			n++
		}
		arena = append(arena, Interval{first, last})
	}
	return arena
}

// PointIter is an allocation-free cursor over the points of a clipped
// interval list — the compiled replacement for the
// DependenciesForPoint(...).ForEach(...) pattern, which allocates two
// IntervalLists per query and calls back through a closure per point.
// The zero value is an empty iterator. A PointIter is a value type:
// copy it freely, iterate with Next or NextSpan.
type PointIter struct {
	list   IntervalList
	lo, hi int // clip window, inclusive
	k      int // next interval index
	cur    int // next point of the current clipped interval
	end    int // one past the last point of the current clipped interval
}

// Next returns the next point, in ascending order. The in-interval
// fast path is free of loops so it inlines into callers; per-point
// cost is then an increment and a compare.
//
//taskbench:hotpath
func (it *PointIter) Next() (int, bool) {
	p := it.cur
	if p < it.end {
		it.cur = p + 1
		return p, true
	}
	return it.nextSlow()
}

// nextSlow advances to the next non-empty clipped interval.
func (it *PointIter) nextSlow() (int, bool) {
	for it.k < len(it.list) {
		iv := it.list[it.k]
		it.k++
		cur := max(iv.First, it.lo)
		end := min(iv.Last, it.hi) + 1
		if cur < end {
			it.cur = cur + 1
			it.end = end
			return cur, true
		}
	}
	return 0, false
}

// NextSpan returns the next maximal run of points as an interval, for
// callers that work interval-at-a-time (ownership overlap tests). A
// partially consumed interval is returned in full remainder first;
// mixing Next and NextSpan on one iterator is allowed.
//
//taskbench:hotpath
func (it *PointIter) NextSpan() (Interval, bool) {
	if it.cur < it.end {
		iv := Interval{it.cur, it.end - 1}
		it.cur = it.end
		return iv, true
	}
	for it.k < len(it.list) {
		raw := it.list[it.k]
		it.k++
		lo, hi := max(raw.First, it.lo), min(raw.Last, it.hi)
		if lo <= hi {
			return Interval{lo, hi}, true
		}
	}
	return Interval{}, false
}

// Count returns the number of points remaining without consuming them.
func (it *PointIter) Count() int {
	n := it.end - it.cur
	if n < 0 {
		n = 0
	}
	for _, iv := range it.list[it.k:] {
		lo, hi := max(iv.First, it.lo), min(iv.Last, it.hi)
		if lo <= hi {
			n += hi - lo + 1
		}
	}
	return n
}

// PointDeps returns an allocation-free iterator over the concrete
// dependencies of task (t, i) — the compiled counterpart of
// DependenciesForPoint, clipped to the active window of timestep t-1.
// The whole query is table lookups: no switches, no allocation.
//
//taskbench:hotpath
func (g *Graph) PointDeps(t, i int) PointIter {
	dt := g.Deps()
	if t <= 0 || t >= len(dt.widthAt) || i < int(dt.offAt[t]) ||
		i >= int(dt.offAt[t])+int(dt.widthAt[t]) {
		return PointIter{}
	}
	k := int(dt.dsetAt[t])*dt.width + i
	off := int(dt.offAt[t-1])
	return PointIter{
		list: dt.fwd.arena[dt.fwd.off[k]:dt.fwd.off[k+1]],
		lo:   off,
		hi:   off + int(dt.widthAt[t-1]) - 1,
	}
}

// PointConsumers returns an allocation-free iterator over the concrete
// consumers of task (t, i) at timestep t+1 — the compiled counterpart
// of ReverseDependenciesForPoint.
//
//taskbench:hotpath
func (g *Graph) PointConsumers(t, i int) PointIter {
	dt := g.Deps()
	if t < 0 || t+1 >= len(dt.widthAt) || i < int(dt.offAt[t]) ||
		i >= int(dt.offAt[t])+int(dt.widthAt[t]) {
		return PointIter{}
	}
	k := int(dt.dsetAt[t+1])*dt.width + i
	off := int(dt.offAt[t+1])
	return PointIter{
		list: dt.rev.arena[dt.rev.off[k]:dt.rev.off[k+1]],
		lo:   off,
		hi:   off + int(dt.widthAt[t+1]) - 1,
	}
}
