package core

import "fmt"

// DependenceType selects the dependence relation of a task graph
// (paper Table 2 plus the additional patterns shipped by the reference
// implementation).
type DependenceType int

// Supported dependence patterns.
const (
	// Trivial has no dependencies at all: embarrassing parallelism.
	Trivial DependenceType = iota
	// NoComm depends only on the same point in the previous timestep.
	NoComm
	// Stencil1D depends on {i-1, i, i+1}, clamped at the edges.
	Stencil1D
	// Stencil1DPeriodic is Stencil1D with wrap-around boundaries.
	Stencil1DPeriodic
	// Dom is the sweep/wavefront pattern {i-1, i} (paper "Sweep").
	Dom
	// Tree is binary fan-out (width doubles each step until the full
	// width is reached) followed by butterfly exchange. See Figure 1e.
	Tree
	// FFT depends on {i, i-2^t, i+2^t}, the butterfly of an FFT.
	FFT
	// AllToAll depends on every point of the previous timestep.
	AllToAll
	// Nearest depends on the Radix nearest columns (including self);
	// Radix 3 is equivalent to Stencil1D, Radix 0 to Trivial.
	Nearest
	// Spread depends on Radix columns spread as widely as possible
	// across the graph, shifting each timestep.
	Spread
	// RandomNearest is Nearest with each candidate dependency kept
	// with probability Fraction, decided by a deterministic hash.
	RandomNearest
)

var dependenceNames = map[DependenceType]string{
	Trivial:           "trivial",
	NoComm:            "no_comm",
	Stencil1D:         "stencil_1d",
	Stencil1DPeriodic: "stencil_1d_periodic",
	Dom:               "dom",
	Tree:              "tree",
	FFT:               "fft",
	AllToAll:          "all_to_all",
	Nearest:           "nearest",
	Spread:            "spread",
	RandomNearest:     "random_nearest",
}

// String returns the canonical CLI name of the dependence type.
func (d DependenceType) String() string {
	if s, ok := dependenceNames[d]; ok {
		return s
	}
	return fmt.Sprintf("core.DependenceType(%d)", int(d))
}

// ParseDependenceType converts a CLI name into a DependenceType.
func ParseDependenceType(s string) (DependenceType, error) {
	for d, name := range dependenceNames {
		if s == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("core: unknown dependence type %q", s)
}

// DependenceTypes lists every supported pattern in declaration order,
// for table generators and exhaustive tests.
func DependenceTypes() []DependenceType {
	return []DependenceType{
		Trivial, NoComm, Stencil1D, Stencil1DPeriodic, Dom, Tree,
		FFT, AllToAll, Nearest, Spread, RandomNearest,
	}
}

// RequiresPowerOfTwoWidth reports whether the pattern's relation is
// defined only for power-of-two graph widths (butterfly structures).
func (d DependenceType) RequiresPowerOfTwoWidth() bool {
	return d == Tree || d == FFT
}

// log2Floor returns floor(log2(x)) for x >= 1.
func log2Floor(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// isPowerOfTwo reports whether x is a positive power of two.
func isPowerOfTwo(x int) bool {
	return x > 0 && x&(x-1) == 0
}
