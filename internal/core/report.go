package core

import (
	"fmt"
	"io"
	"time"
)

// RunStats summarizes one execution of an App on some backend. The
// fields mirror the quantities the reference driver prints: elapsed
// time, task count and throughput, plus the derived task granularity
// used throughout the paper's evaluation.
type RunStats struct {
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
	// Tasks is the number of tasks executed.
	Tasks int64
	// Dependencies is the number of dependence edges satisfied.
	Dependencies int64
	// Flops is the useful floating point work performed.
	Flops float64
	// Bytes is the useful memory traffic performed.
	Bytes float64
	// Workers is the number of cores/workers used for the run.
	Workers int
}

// StatsFor precomputes the static portion of RunStats for an App; the
// backend fills in Elapsed and Workers after the run.
func StatsFor(a *App) RunStats {
	return RunStats{
		Tasks:        a.TotalTasks(),
		Dependencies: a.TotalDependencies(),
		Flops:        a.ExpectedFlops(),
		Bytes:        a.ExpectedBytes(),
	}
}

// TaskGranularity is the paper's definition: wall time × cores ÷ tasks
// (§4). It is the average per-task slot duration, counting idle time.
func (r RunStats) TaskGranularity() time.Duration {
	if r.Tasks == 0 {
		return 0
	}
	return time.Duration(float64(r.Elapsed) * float64(r.Workers) / float64(r.Tasks))
}

// FlopsPerSecond returns the achieved floating point throughput.
func (r RunStats) FlopsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.Flops / r.Elapsed.Seconds()
}

// BytesPerSecond returns the achieved memory throughput.
func (r RunStats) BytesPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.Bytes / r.Elapsed.Seconds()
}

// TasksPerSecond returns raw task throughput (the metric the paper
// argues is insufficient without an efficiency constraint, §4).
func (r RunStats) TasksPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Tasks) / r.Elapsed.Seconds()
}

// Efficiency returns achieved ÷ peak for the dominant resource: FLOP/s
// against peakFlops when the workload does floating point work,
// otherwise B/s against peakBytes.
func (r RunStats) Efficiency(peakFlops, peakBytes float64) float64 {
	switch {
	case r.Flops > 0 && peakFlops > 0:
		return r.FlopsPerSecond() / peakFlops
	case r.Bytes > 0 && peakBytes > 0:
		return r.BytesPerSecond() / peakBytes
	default:
		return 0
	}
}

// WriteReport prints the run summary in the uniform format shared by
// every backend, mirroring the reference core library's reporting role.
func (r RunStats) WriteReport(w io.Writer, name string) {
	fmt.Fprintf(w, "%-12s elapsed %12v  tasks %8d  granularity %12v",
		name, r.Elapsed.Round(time.Microsecond), r.Tasks,
		r.TaskGranularity().Round(time.Nanosecond))
	if r.Flops > 0 {
		fmt.Fprintf(w, "  %10.3f GFLOP/s", r.FlopsPerSecond()/1e9)
	}
	if r.Bytes > 0 {
		fmt.Fprintf(w, "  %10.3f GB/s", r.BytesPerSecond()/1e9)
	}
	fmt.Fprintln(w)
}
