package core

import (
	"reflect"
	"testing"
)

// depTableGraphs enumerates graphs covering every dependence pattern
// over power-of-two and ragged widths, several radixes, periods and
// seeds — the configuration space the compiled table must reproduce
// bit-for-bit.
func depTableGraphs(t *testing.T) []*Graph {
	t.Helper()
	var graphs []*Graph
	for _, dep := range DependenceTypes() {
		widths := []int{1, 2, 3, 5, 8, 16, 33}
		if dep.RequiresPowerOfTwoWidth() {
			widths = []int{1, 2, 8, 16, 64}
		}
		for _, w := range widths {
			radixes := []int{0}
			switch dep {
			case Nearest:
				radixes = dedupeRadixes([]int{0, 1, 3, 5, w}, w)
			case Spread, RandomNearest:
				radixes = dedupeRadixes([]int{1, 3, 5, w}, w)
			}
			for _, radix := range radixes {
				periods := []int{0}
				if dep == Spread || dep == RandomNearest {
					periods = []int{1, 3, 5}
				}
				for _, period := range periods {
					for _, seed := range []uint64{0, 42} {
						g, err := New(Params{
							Timesteps:  9,
							MaxWidth:   w,
							Dependence: dep,
							Radix:      radix,
							Period:     period,
							Fraction:   0.4,
							Seed:       seed,
						})
						if err != nil {
							t.Fatalf("New(%s, w=%d, radix=%d, period=%d): %v",
								dep, w, radix, period, err)
						}
						graphs = append(graphs, g)
					}
				}
			}
		}
	}
	return graphs
}

// dedupeRadixes drops candidates above the width (invalid) and
// duplicates introduced by the clamp.
func dedupeRadixes(candidates []int, w int) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range candidates {
		if r <= w && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// TestDepTableMatchesReference checks that the compiled forward and
// reverse relations agree exactly with the per-call reference
// implementations for every dependence set and column.
func TestDepTableMatchesReference(t *testing.T) {
	for _, g := range depTableGraphs(t) {
		dt := g.Deps()
		for dset := 0; dset < g.MaxDependenceSets(); dset++ {
			for i := 0; i < g.MaxWidth; i++ {
				want := g.Dependencies(dset, i)
				got := dt.Forward(dset, i)
				if !reflect.DeepEqual(got.Points(), want.Points()) {
					t.Fatalf("%s w=%d radix=%d: Forward(%d, %d) = %v, want %v",
						g.Dependence, g.MaxWidth, g.Radix, dset, i, got, want)
				}
				wantRev := g.ReverseDependencies(dset, i)
				gotRev := dt.Reverse(dset, i)
				if !reflect.DeepEqual(gotRev.Points(), wantRev.Points()) {
					t.Fatalf("%s w=%d radix=%d: Reverse(%d, %d) = %v, want %v",
						g.Dependence, g.MaxWidth, g.Radix, dset, i, gotRev, wantRev)
				}
			}
		}
	}
}

// TestPointItersMatchReference checks the clipped per-point iterators
// against DependenciesForPoint / ReverseDependenciesForPoint for every
// task of every graph, including Count and NextSpan consistency.
func TestPointItersMatchReference(t *testing.T) {
	collect := func(it PointIter) []int {
		pts := make([]int, 0, 8)
		for p, ok := it.Next(); ok; p, ok = it.Next() {
			pts = append(pts, p)
		}
		return pts
	}
	collectSpans := func(it PointIter) []int {
		pts := make([]int, 0, 8)
		for iv, ok := it.NextSpan(); ok; iv, ok = it.NextSpan() {
			for p := iv.First; p <= iv.Last; p++ {
				pts = append(pts, p)
			}
		}
		return pts
	}
	for _, g := range depTableGraphs(t) {
		for ts := 0; ts < g.Timesteps; ts++ {
			for i := 0; i < g.WidthAtTimestep(ts); i++ {
				want := g.DependenciesForPoint(ts, i).Points()
				it := g.PointDeps(ts, i)
				if got := it.Count(); got != len(want) {
					t.Fatalf("%s w=%d: PointDeps(%d, %d).Count() = %d, want %d",
						g.Dependence, g.MaxWidth, ts, i, got, len(want))
				}
				if got := collect(g.PointDeps(ts, i)); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s w=%d: PointDeps(%d, %d) = %v, want %v",
						g.Dependence, g.MaxWidth, ts, i, got, want)
				}
				if got := collectSpans(g.PointDeps(ts, i)); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s w=%d: PointDeps(%d, %d) spans = %v, want %v",
						g.Dependence, g.MaxWidth, ts, i, got, want)
				}
				wantRev := g.ReverseDependenciesForPoint(ts, i).Points()
				if got := collect(g.PointConsumers(ts, i)); !reflect.DeepEqual(got, wantRev) {
					t.Fatalf("%s w=%d: PointConsumers(%d, %d) = %v, want %v",
						g.Dependence, g.MaxWidth, ts, i, got, wantRev)
				}
			}
		}
	}
}

// TestPointIterZeroValue checks that the zero iterator is empty and
// that out-of-graph queries return it.
func TestPointIterZeroValue(t *testing.T) {
	var it PointIter
	if _, ok := it.Next(); ok {
		t.Error("zero PointIter yielded a point")
	}
	if n := it.Count(); n != 0 {
		t.Errorf("zero PointIter Count = %d", n)
	}
	g := MustNew(Params{Timesteps: 4, MaxWidth: 4, Dependence: Stencil1D})
	for _, bad := range [][2]int{{0, 0}, {-1, 2}, {4, 0}, {2, -1}, {2, 4}} {
		it := g.PointDeps(bad[0], bad[1])
		if bad[0] == 0 && bad[1] == 0 {
			// First timestep: in the graph but has no dependencies.
			if n := it.Count(); n != 0 {
				t.Errorf("PointDeps(0, 0).Count() = %d, want 0", n)
			}
			continue
		}
		if _, ok := it.Next(); ok {
			t.Errorf("PointDeps(%d, %d) yielded a point for an invalid task", bad[0], bad[1])
		}
	}
}

// TestDepTableOutOfRange checks the table's bounds guards match the
// reference methods' behavior (empty result, no panic).
func TestDepTableOutOfRange(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Spread, Radix: 3})
	dt := g.Deps()
	for _, q := range [][2]int{{-1, 0}, {g.MaxDependenceSets(), 0}, {0, -1}, {0, 8}} {
		if got := dt.Forward(q[0], q[1]); got != nil {
			t.Errorf("Forward(%d, %d) = %v, want nil", q[0], q[1], got)
		}
		if got := dt.Reverse(q[0], q[1]); got != nil {
			t.Errorf("Reverse(%d, %d) = %v, want nil", q[0], q[1], got)
		}
	}
}
