package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"taskbench/internal/kernels"
)

func TestWriteOutputUnique(t *testing.T) {
	g := MustNew(Params{Timesteps: 8, MaxWidth: 8, OutputBytes: 64})
	seen := map[string]bool{}
	buf := make([]byte, g.OutputBytes)
	for ts := 0; ts < 8; ts++ {
		for i := 0; i < 8; i++ {
			g.WriteOutput(ts, i, buf)
			key := string(buf)
			if seen[key] {
				t.Fatalf("duplicate output payload for (t=%d, i=%d)", ts, i)
			}
			seen[key] = true
		}
	}
}

func TestWriteOutputPanicsOnShortBuffer(t *testing.T) {
	g := MustNew(Params{Timesteps: 1, MaxWidth: 1})
	defer func() {
		if recover() == nil {
			t.Error("WriteOutput did not panic on short buffer")
		}
	}()
	g.WriteOutput(0, 0, make([]byte, 8))
}

func execStencilPoint(g *Graph, t, i int, tamper func(inputs [][]byte)) error {
	inputs := make([][]byte, 0, 3)
	g.DependenciesForPoint(t, i).ForEach(func(dep int) {
		buf := make([]byte, g.OutputBytes)
		g.WriteOutput(t-1, dep, buf)
		inputs = append(inputs, buf)
	})
	if tamper != nil {
		tamper(inputs)
	}
	out := make([]byte, g.OutputBytes)
	return g.ExecutePoint(t, i, out, inputs, nil, true)
}

func TestExecutePointValidInputs(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Stencil1D, OutputBytes: 40})
	for ts := 1; ts < 4; ts++ {
		for i := 0; i < 8; i++ {
			if err := execStencilPoint(g, ts, i, nil); err != nil {
				t.Errorf("valid inputs rejected at (t=%d, i=%d): %v", ts, i, err)
			}
		}
	}
}

func TestExecutePointDetectsMissingInput(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Stencil1D})
	// Supply a single input where the stencil expects three.
	inputs := [][]byte{make([]byte, g.OutputBytes)}
	g.WriteOutput(1, 3, inputs[0])
	out := make([]byte, g.OutputBytes)
	err := g.ExecutePoint(2, 4, out, inputs, nil, true)
	var verr *ValidationError
	if !errors.As(err, &verr) || !strings.Contains(err.Error(), "inputs") {
		t.Errorf("missing input not detected: %v", err)
	}
}

func TestExecutePointDetectsWrongProducer(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Stencil1D})
	err := execStencilPoint(g, 2, 4, func(inputs [][]byte) {
		g.WriteOutput(1, 7, inputs[0]) // should be from column 3
	})
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("wrong producer not detected: %v", err)
	}
	if verr.Timestep != 2 || verr.Point != 4 {
		t.Errorf("error located at (t=%d, i=%d), want (2, 4)", verr.Timestep, verr.Point)
	}
}

func TestExecutePointDetectsWrongTimestep(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Stencil1D})
	err := execStencilPoint(g, 2, 4, func(inputs [][]byte) {
		g.WriteOutput(0, 3, inputs[0]) // stale timestep
	})
	if err == nil {
		t.Error("stale timestep not detected")
	}
}

func TestExecutePointDetectsCorruptFill(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Stencil1D, OutputBytes: 256})
	err := execStencilPoint(g, 2, 4, func(inputs [][]byte) {
		inputs[0][len(inputs[0])-1] ^= 0xFF
	})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt fill not detected: %v", err)
	}
}

func TestExecutePointDetectsWrongSize(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Stencil1D, OutputBytes: 64})
	err := execStencilPoint(g, 2, 4, func(inputs [][]byte) {
		inputs[0] = inputs[0][:32]
	})
	if err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Errorf("wrong size not detected: %v", err)
	}
}

func TestExecutePointSkipsValidationWhenDisabled(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Stencil1D})
	out := make([]byte, g.OutputBytes)
	// No inputs at all: would fail with validation on.
	if err := g.ExecutePoint(2, 4, out, nil, nil, false); err != nil {
		t.Errorf("validation-off run failed: %v", err)
	}
}

func TestExecutePointOutsideGraph(t *testing.T) {
	g := MustNew(Params{Timesteps: 2, MaxWidth: 2})
	out := make([]byte, g.OutputBytes)
	if err := g.ExecutePoint(5, 0, out, nil, nil, true); err == nil {
		t.Error("out-of-graph task not rejected")
	}
}

func TestExecutePointRunsKernel(t *testing.T) {
	g := MustNew(Params{
		Timesteps: 2, MaxWidth: 2,
		Kernel:       kernels.Config{Type: kernels.MemoryBound, Iterations: 4, SpanBytes: 64},
		ScratchBytes: 1024,
	})
	scratch := kernels.NewScratch(g.ScratchBytes)
	out := make([]byte, g.OutputBytes)
	if err := g.ExecutePoint(0, 0, out, nil, scratch, true); err != nil {
		t.Fatalf("ExecutePoint: %v", err)
	}
	gotT, gotI := decodeHeader(out)
	if gotT != 0 || gotI != 0 {
		t.Errorf("output header = (%d, %d), want (0, 0)", gotT, gotI)
	}
}

// Property: any single-byte corruption of the header or sampled fill
// positions is detected.
func TestPayloadCorruptionDetectionProperty(t *testing.T) {
	g := MustNew(Params{Timesteps: 8, MaxWidth: 8, Dependence: NoComm, OutputBytes: 48})
	f := func(tsRaw, iRaw uint8, flip uint8) bool {
		ts := 1 + int(tsRaw)%7
		i := int(iRaw) % 8
		buf := make([]byte, g.OutputBytes)
		g.WriteOutput(ts-1, i, buf)
		// Corrupt a byte that validation inspects: header, first fill,
		// middle fill, or last fill.
		checked := []int{0, 5, 8, 13, PayloadHeaderSize, (PayloadHeaderSize + len(buf)) / 2, len(buf) - 1}
		pos := checked[int(flip)%len(checked)]
		buf[pos] ^= 1 | flip // always a non-zero flip
		out := make([]byte, g.OutputBytes)
		err := g.ExecutePoint(ts, i, out, [][]byte{buf}, nil, true)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	e := &ValidationError{GraphID: 3, Timestep: 5, Point: 7, Detail: "boom"}
	msg := e.Error()
	for _, want := range []string{"t=5", "i=7", "graph 3", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}
