package core

import (
	"encoding/binary"
	"fmt"

	"taskbench/internal/kernels"
)

// PayloadHeaderSize is the number of bytes at the front of every task
// output identifying the producing task. The paper's core library makes
// "the output of every task ... unique, and all inputs are verified"
// (§2); the header carries (timestep, point) and the remaining bytes a
// deterministic fill pattern, so corruption anywhere is detectable.
const PayloadHeaderSize = 16

// ValidationError describes a failed input check. Runtimes treat any
// validation error as fatal, mirroring the assertion in the reference
// core library.
type ValidationError struct {
	GraphID  int
	Timestep int
	Point    int
	Detail   string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("core: validation failed for task (t=%d, i=%d) of graph %d: %s",
		e.Timestep, e.Point, e.GraphID, e.Detail)
}

// fillSeed derives the per-task seed of the deterministic fill
// pattern. Uniqueness of the payload is carried by the exact (t, i)
// header; the fill only needs to be deterministic and well spread so
// corruption anywhere is detectable at sampled offsets.
func fillSeed(t, i int) uint64 {
	return splitmix64(uint64(int64(t))<<32 ^ uint64(int64(i)) ^ 0x7461736b62656e63)
}

// fillWord is 64-bit lane w of the fill pattern, covering payload bytes
// [PayloadHeaderSize+8w, PayloadHeaderSize+8w+8). One multiply-add and
// one xor-shift per 8 bytes, so filling runs word-wise instead of the
// byte-at-a-time loop that used to dominate WriteOutput for large
// payloads.
func fillWord(seed uint64, w int) uint64 {
	v := seed + uint64(w+1)*0x9e3779b97f4a7c15
	return v ^ (v >> 29)
}

// fillByteAt is the pattern byte at payload offset k (with
// k >= PayloadHeaderSize), consistent with the word-wise fill so
// validation can sample individual bytes.
func fillByteAt(seed uint64, k int) byte {
	body := k - PayloadHeaderSize
	return byte(fillWord(seed, body>>3) >> (8 * uint(body&7)))
}

// WriteOutput encodes task (t, i)'s unique output into buf, which must
// be at least PayloadHeaderSize bytes (guaranteed by Params
// validation). The bytes beyond the header carry the fill pattern,
// written in uint64 lanes.
//
//taskbench:hotpath
func (g *Graph) WriteOutput(t, i int, buf []byte) {
	if len(buf) < PayloadHeaderSize {
		panic("core: output buffer smaller than payload header")
	}
	binary.LittleEndian.PutUint64(buf[0:8], uint64(int64(t)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(int64(i)))
	seed := fillSeed(t, i)
	body := buf[PayloadHeaderSize:]
	w := 0
	for ; len(body) >= 8; w++ {
		binary.LittleEndian.PutUint64(body, fillWord(seed, w))
		body = body[8:]
	}
	if len(body) > 0 {
		v := fillWord(seed, w)
		for k := range body {
			body[k] = byte(v >> (8 * uint(k)))
		}
	}
}

// decodeHeader extracts the (timestep, point) pair from a payload.
func decodeHeader(buf []byte) (t, i int64) {
	return int64(binary.LittleEndian.Uint64(buf[0:8])),
		int64(binary.LittleEndian.Uint64(buf[8:16]))
}

// checkInput validates one input payload against the expected producer
// (wantT, wantI). The header is checked exactly; the fill pattern is
// sampled at the first, middle and last bytes, keeping the validation
// overhead below the paper's 3% bound even for large payloads. The
// success path allocates nothing — error values are only constructed
// on failure.
//
//taskbench:hotpath
func (g *Graph) checkInput(t, i int, buf []byte, wantT, wantI int) error {
	if len(buf) != g.OutputBytes {
		return &ValidationError{GraphID: g.GraphID, Timestep: t, Point: i,
			Detail: fmt.Sprintf("input from (t=%d, i=%d) has %d bytes, want %d",
				wantT, wantI, len(buf), g.OutputBytes)}
	}
	gotT, gotI := decodeHeader(buf)
	if gotT != int64(wantT) || gotI != int64(wantI) {
		return &ValidationError{GraphID: g.GraphID, Timestep: t, Point: i,
			Detail: fmt.Sprintf("input header is (t=%d, i=%d), want (t=%d, i=%d)",
				gotT, gotI, wantT, wantI)}
	}
	if len(buf) > PayloadHeaderSize {
		seed := fillSeed(wantT, wantI)
		samples := [3]int{PayloadHeaderSize, (PayloadHeaderSize + len(buf)) / 2, len(buf) - 1}
		for _, k := range samples {
			if buf[k] != fillByteAt(seed, k) {
				return &ValidationError{GraphID: g.GraphID, Timestep: t, Point: i,
					Detail: fmt.Sprintf("input from (t=%d, i=%d) corrupt at byte %d", wantT, wantI, k)}
			}
		}
	}
	return nil
}

// ExecutePoint runs task (t, i): it validates every input payload
// against the graph's dependence relation, executes the configured
// kernel against the column's scratch buffer, and writes the task's
// unique output into output. inputs must be supplied in dependence
// enumeration order (ascending column). Returns a *ValidationError if
// the inputs do not match the graph structure.
//
// Setting validate to false skips input checking; the ablation
// benchmark uses this to measure validation overhead.
//
//taskbench:hotpath
func (g *Graph) ExecutePoint(t, i int, output []byte, inputs [][]byte, scratch *kernels.Scratch, validate bool) error {
	if !g.ContainsPoint(t, i) {
		return &ValidationError{GraphID: g.GraphID, Timestep: t, Point: i,
			Detail: "task is outside the graph"}
	}
	if validate {
		// The compiled table keeps the steady-state validation path
		// allocation-free: the naive DependenciesForPoint would allocate
		// two IntervalLists per executed task.
		it := g.PointDeps(t, i)
		if got, want := len(inputs), it.Count(); got != want {
			return &ValidationError{GraphID: g.GraphID, Timestep: t, Point: i,
				Detail: fmt.Sprintf("got %d inputs, want %d", got, want)}
		}
		n := 0
		for dep, ok := it.Next(); ok; dep, ok = it.Next() {
			if err := g.checkInput(t, i, inputs[n], t-1, dep); err != nil {
				return err
			}
			n++
		}
	}

	kernels.Execute(g.Kernel, scratch, g.TaskMultiplier(t, i))

	if len(output) != g.OutputBytes {
		return &ValidationError{GraphID: g.GraphID, Timestep: t, Point: i,
			Detail: fmt.Sprintf("output buffer has %d bytes, want %d", len(output), g.OutputBytes)}
	}
	g.WriteOutput(t, i, output)
	if g.FaultRate > 0 {
		g.maybeInjectFault(t, i, output)
	}
	return nil
}

// maybeInjectFault corrupts the task's output with probability
// FaultRate, flipping the last fill byte (one of the positions every
// consumer samples). Used by the fault-injection conformance tests.
func (g *Graph) maybeInjectFault(t, i int, output []byte) {
	h := hashPoint(g.Seed^0xfa017, int64(g.GraphID), int64(t), int64(i))
	if uniformFloat(h) < g.FaultRate && len(output) > PayloadHeaderSize {
		output[len(output)-1] ^= 0xFF
	}
}
