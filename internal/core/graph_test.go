package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"taskbench/internal/kernels"
)

func simpleGraph(t *testing.T, dep DependenceType, width, steps int) *Graph {
	t.Helper()
	p := Params{
		Timesteps:  steps,
		MaxWidth:   width,
		Dependence: dep,
		Kernel:     kernels.Config{Type: kernels.Empty},
	}
	switch dep {
	case Nearest, Spread, RandomNearest:
		p.Radix = 5
	}
	g, err := New(p)
	if err != nil {
		t.Fatalf("New(%v): %v", dep, err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	base := Params{Timesteps: 4, MaxWidth: 4}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero timesteps", func(p *Params) { p.Timesteps = 0 }},
		{"negative width", func(p *Params) { p.MaxWidth = -1 }},
		{"fft non-pow2", func(p *Params) { p.Dependence = FFT; p.MaxWidth = 6 }},
		{"tree non-pow2", func(p *Params) { p.Dependence = Tree; p.MaxWidth = 12 }},
		{"radix too large", func(p *Params) { p.Dependence = Nearest; p.Radix = 5 }},
		{"negative radix", func(p *Params) { p.Radix = -1 }},
		{"spread radix zero", func(p *Params) { p.Dependence = Spread }},
		{"bad fraction", func(p *Params) { p.Dependence = RandomNearest; p.Radix = 2; p.Fraction = 1.5 }},
		{"negative scratch", func(p *Params) { p.ScratchBytes = -1 }},
		{"negative period", func(p *Params) { p.Period = -2 }},
		{"bad kernel", func(p *Params) { p.Kernel.Iterations = -1 }},
		{"bad dependence", func(p *Params) { p.Dependence = DependenceType(99) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := base
			c.mutate(&p)
			if _, err := New(p); err == nil {
				t.Errorf("New accepted invalid params %+v", p)
			}
		})
	}
}

func TestNewDefaults(t *testing.T) {
	g := MustNew(Params{Timesteps: 2, MaxWidth: 2})
	if g.OutputBytes != PayloadHeaderSize {
		t.Errorf("OutputBytes default = %d, want %d", g.OutputBytes, PayloadHeaderSize)
	}
	if g.Period != 3 {
		t.Errorf("Period default = %d, want 3", g.Period)
	}
	if g.Fraction != 0.25 {
		t.Errorf("Fraction default = %v, want 0.25", g.Fraction)
	}
}

// TestTable2DependenceRelations checks the exact relations of paper
// Table 2 for interior points.
func TestTable2DependenceRelations(t *testing.T) {
	const w = 16
	i := 8 // interior point

	trivial := simpleGraph(t, Trivial, w, 4)
	if got := trivial.Dependencies(0, i); got.Count() != 0 {
		t.Errorf("trivial deps = %v, want empty", got)
	}

	stencil := simpleGraph(t, Stencil1D, w, 4)
	if got := stencil.Dependencies(0, i).Points(); !reflect.DeepEqual(got, []int{7, 8, 9}) {
		t.Errorf("stencil deps = %v, want [7 8 9]", got)
	}

	sweep := simpleGraph(t, Dom, w, 4)
	if got := sweep.Dependencies(0, i).Points(); !reflect.DeepEqual(got, []int{7, 8}) {
		t.Errorf("sweep deps = %v, want [7 8]", got)
	}

	// FFT at timestep t uses distance 2^(t-1): {i, i-2^t, i+2^t} in the
	// paper's zero-based butterfly indexing.
	fft := simpleGraph(t, FFT, w, 8)
	wantFFT := map[int][]int{
		1: {7, 8, 9},  // distance 1
		2: {6, 8, 10}, // distance 2
		3: {4, 8, 12}, // distance 4
		4: {0, 8},     // distance 8 (i+8 out of range)
		5: {7, 8, 9},  // wraps back to distance 1
	}
	for ts, want := range wantFFT {
		got := fft.Dependencies(fft.DependenceSetAt(ts), i).Points()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("fft deps at t=%d = %v, want %v", ts, got, want)
		}
	}

	all := simpleGraph(t, AllToAll, w, 4)
	if got := all.Dependencies(0, i); got.Count() != w {
		t.Errorf("all_to_all deps count = %d, want %d", got.Count(), w)
	}
}

func TestNearestMatchesStencilAtRadix3(t *testing.T) {
	const w = 32
	stencil := simpleGraph(t, Stencil1D, w, 4)
	nearest := MustNew(Params{Timesteps: 4, MaxWidth: w, Dependence: Nearest, Radix: 3})
	for i := 0; i < w; i++ {
		s := stencil.Dependencies(0, i).Points()
		n := nearest.Dependencies(0, i).Points()
		if !reflect.DeepEqual(s, n) {
			t.Errorf("point %d: nearest(3) = %v, stencil = %v", i, n, s)
		}
	}
}

func TestNearestRadixZeroIsTrivial(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 8, Dependence: Nearest, Radix: 0})
	for i := 0; i < 8; i++ {
		if got := g.Dependencies(0, i); got.Count() != 0 {
			t.Errorf("nearest(0) deps at %d = %v, want empty", i, got)
		}
	}
}

func TestNearestRadixCounts(t *testing.T) {
	const w = 64
	for radix := 0; radix <= 9; radix++ {
		g := MustNew(Params{Timesteps: 4, MaxWidth: w, Dependence: Nearest, Radix: radix})
		// Interior points see exactly radix dependencies.
		if got := g.Dependencies(0, w/2).Count(); got != radix {
			t.Errorf("radix %d: interior deps = %d, want %d", radix, got, radix)
		}
	}
}

func TestStencilPeriodicWraps(t *testing.T) {
	const w = 8
	g := simpleGraph(t, Stencil1DPeriodic, w, 4)
	if got := g.Dependencies(0, 0).Points(); !reflect.DeepEqual(got, []int{0, 1, 7}) {
		t.Errorf("periodic deps at 0 = %v, want [0 1 7]", got)
	}
	if got := g.Dependencies(0, w-1).Points(); !reflect.DeepEqual(got, []int{0, 6, 7}) {
		t.Errorf("periodic deps at %d = %v, want [0 6 7]", w-1, got)
	}
	if got := g.Dependencies(0, 3).Points(); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Errorf("periodic deps at 3 = %v, want [2 3 4]", got)
	}
}

func TestTreeWidthDoubles(t *testing.T) {
	g := simpleGraph(t, Tree, 16, 10)
	want := []int{1, 2, 4, 8, 16, 16, 16, 16, 16, 16}
	for ts, w := range want {
		if got := g.WidthAtTimestep(ts); got != w {
			t.Errorf("tree width at t=%d = %d, want %d", ts, got, w)
		}
	}
	if got := g.TotalTasks(); got != 1+2+4+8+16*6 {
		t.Errorf("tree total tasks = %d, want %d", got, 1+2+4+8+16*6)
	}
}

func TestTreeFanOutParents(t *testing.T) {
	g := simpleGraph(t, Tree, 16, 12)
	// During fan-out, task (t, i) depends on its parent i/2.
	for ts := 1; ts <= 4; ts++ {
		for i := 0; i < g.WidthAtTimestep(ts); i++ {
			got := g.DependenciesForPoint(ts, i).Points()
			if !reflect.DeepEqual(got, []int{i / 2}) {
				t.Errorf("tree deps at (t=%d, i=%d) = %v, want [%d]", ts, i, got, i/2)
			}
		}
	}
	// After fan-out, butterfly pairs.
	for ts := 5; ts < 12; ts++ {
		for i := 0; i < 16; i++ {
			got := g.DependenciesForPoint(ts, i).Points()
			if len(got) != 2 || !contains(got, i) {
				t.Errorf("tree butterfly deps at (t=%d, i=%d) = %v, want self + partner", ts, i, got)
			}
		}
	}
}

func contains(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

func TestSpreadDeps(t *testing.T) {
	const w, radix = 20, 5
	g := MustNew(Params{Timesteps: 6, MaxWidth: w, Dependence: Spread, Radix: radix})
	for dset := 0; dset < g.MaxDependenceSets(); dset++ {
		for i := 0; i < w; i++ {
			deps := g.Dependencies(dset, i)
			if deps.Count() != radix {
				t.Fatalf("spread deps count at dset=%d i=%d = %d, want %d", dset, i, deps.Count(), radix)
			}
			// The spread must cover a range much wider than nearest:
			// max - min >= (radix-1)*stride.
			pts := deps.Points()
			if span := pts[len(pts)-1] - pts[0]; span < (radix-1)*(w/radix)-1 {
				t.Errorf("spread at dset=%d i=%d spans only %d columns: %v", dset, i, span, pts)
			}
		}
	}
	// Different dependence sets shift the relation.
	if reflect.DeepEqual(g.Dependencies(0, 0).Points(), g.Dependencies(1, 0).Points()) {
		t.Error("spread dsets 0 and 1 are identical, want shifted")
	}
}

func TestRandomNearestDeterministicAndBounded(t *testing.T) {
	g := MustNew(Params{Timesteps: 6, MaxWidth: 32, Dependence: RandomNearest,
		Radix: 7, Fraction: 0.5, Seed: 42})
	h := MustNew(Params{Timesteps: 6, MaxWidth: 32, Dependence: RandomNearest,
		Radix: 7, Fraction: 0.5, Seed: 42})
	for dset := 0; dset < g.MaxDependenceSets(); dset++ {
		for i := 0; i < 32; i++ {
			a := g.Dependencies(dset, i)
			b := h.Dependencies(dset, i)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("random_nearest not deterministic at dset=%d i=%d: %v vs %v", dset, i, a, b)
			}
			if a.Count() > 7 {
				t.Errorf("random_nearest deps %d > radix 7", a.Count())
			}
			window := g.nearestWindow(i)
			a.ForEach(func(j int) {
				if !window.Contains(j) {
					t.Errorf("random_nearest dep %d outside nearest window %v", j, window)
				}
			})
		}
	}
}

func TestRandomNearestFractionExtremes(t *testing.T) {
	full := MustNew(Params{Timesteps: 2, MaxWidth: 16, Dependence: RandomNearest,
		Radix: 5, Fraction: 1.0})
	if got := full.Dependencies(0, 8).Count(); got != 5 {
		t.Errorf("fraction 1.0 deps = %d, want 5", got)
	}
}

func TestDependenceSetsCycle(t *testing.T) {
	fft := simpleGraph(t, FFT, 16, 20)
	if got := fft.MaxDependenceSets(); got != 4 {
		t.Errorf("fft sets = %d, want 4", got)
	}
	for ts := 1; ts < 20; ts++ {
		if got := fft.DependenceSetAt(ts); got != (ts-1)%4 {
			t.Errorf("fft dset at t=%d = %d, want %d", ts, got, (ts-1)%4)
		}
	}

	spread := MustNew(Params{Timesteps: 9, MaxWidth: 12, Dependence: Spread, Radix: 3, Period: 4})
	if got := spread.MaxDependenceSets(); got != 4 {
		t.Errorf("spread sets = %d, want 4", got)
	}

	stencil := simpleGraph(t, Stencil1D, 8, 4)
	if got := stencil.MaxDependenceSets(); got != 1 {
		t.Errorf("stencil sets = %d, want 1", got)
	}
}

func TestContainsPoint(t *testing.T) {
	g := simpleGraph(t, Tree, 8, 6)
	cases := []struct {
		t, i int
		want bool
	}{
		{0, 0, true}, {0, 1, false},
		{1, 1, true}, {1, 2, false},
		{3, 7, true}, {3, 8, false},
		{-1, 0, false}, {6, 0, false},
	}
	for _, c := range cases {
		if got := g.ContainsPoint(c.t, c.i); got != c.want {
			t.Errorf("ContainsPoint(%d, %d) = %v, want %v", c.t, c.i, got, c.want)
		}
	}
}

func TestFirstTimestepHasNoDeps(t *testing.T) {
	for _, dep := range DependenceTypes() {
		g := simpleGraph(t, dep, 8, 4)
		for i := 0; i < g.WidthAtTimestep(0); i++ {
			if got := g.DependenciesForPoint(0, i); got.Count() != 0 {
				t.Errorf("%v: deps at t=0 = %v, want empty", dep, got)
			}
		}
	}
}

// forwardReverseConsistent checks j ∈ deps(dset, i) ⟺ i ∈ rev(dset, j).
func forwardReverseConsistent(g *Graph) bool {
	for dset := 0; dset < g.MaxDependenceSets(); dset++ {
		fwd := make(map[[2]int]bool)
		for i := 0; i < g.MaxWidth; i++ {
			g.Dependencies(dset, i).ForEach(func(j int) {
				if j >= 0 && j < g.MaxWidth {
					fwd[[2]int{i, j}] = true
				}
			})
		}
		rev := make(map[[2]int]bool)
		for j := 0; j < g.MaxWidth; j++ {
			g.ReverseDependencies(dset, j).ForEach(func(i int) {
				rev[[2]int{i, j}] = true
			})
		}
		if len(fwd) != len(rev) {
			return false
		}
		for k := range fwd {
			if !rev[k] {
				return false
			}
		}
	}
	return true
}

func TestForwardReverseConsistencyAllPatterns(t *testing.T) {
	for _, dep := range DependenceTypes() {
		g := simpleGraph(t, dep, 16, 8)
		if !forwardReverseConsistent(g) {
			t.Errorf("%v: forward/reverse dependencies inconsistent", dep)
		}
	}
}

// Property-based: random widths/radices keep every invariant.
func TestGraphInvariantsProperty(t *testing.T) {
	f := func(widthRaw, radixRaw, stepsRaw uint8, depRaw uint8, seed uint64) bool {
		deps := DependenceTypes()
		dep := deps[int(depRaw)%len(deps)]
		width := 1 + int(widthRaw)%32
		if dep.RequiresPowerOfTwoWidth() {
			width = 1 << (int(widthRaw) % 6)
		}
		steps := 1 + int(stepsRaw)%12
		radix := int(radixRaw) % (width + 1)
		if (dep == Spread || dep == RandomNearest) && radix == 0 {
			radix = 1
		}
		g, err := New(Params{
			Timesteps: steps, MaxWidth: width, Dependence: dep,
			Radix: radix, Seed: seed,
		})
		if err != nil {
			return false
		}
		// Invariant 1: all deps within [0, width).
		for dset := 0; dset < g.MaxDependenceSets(); dset++ {
			for i := 0; i < width; i++ {
				ok := true
				g.Dependencies(dset, i).ForEach(func(j int) {
					if j < 0 || j >= width {
						ok = false
					}
				})
				if !ok {
					return false
				}
			}
		}
		// Invariant 2: forward/reverse consistency.
		if !forwardReverseConsistent(g) {
			return false
		}
		// Invariant 3: clipped deps land in the previous active window.
		for ts := 1; ts < steps; ts++ {
			prevW := g.WidthAtTimestep(ts - 1)
			for i := 0; i < g.WidthAtTimestep(ts); i++ {
				ok := true
				g.DependenciesForPoint(ts, i).ForEach(func(j int) {
					if j < 0 || j >= prevW {
						ok = false
					}
				})
				if !ok {
					return false
				}
			}
		}
		// Invariant 4: total dependencies equals sum of reverse edges.
		var fwdTotal, revTotal int64
		for ts := 1; ts < steps; ts++ {
			for i := 0; i < g.WidthAtTimestep(ts); i++ {
				fwdTotal += int64(g.DependenciesForPoint(ts, i).Count())
			}
		}
		for ts := 0; ts < steps-1; ts++ {
			for i := 0; i < g.WidthAtTimestep(ts); i++ {
				revTotal += int64(g.ReverseDependenciesForPoint(ts, i).Count())
			}
		}
		return fwdTotal == revTotal && fwdTotal == g.TotalDependencies()
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTaskMultiplierDeterministicUniform(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 4, Seed: 7})
	h := MustNew(Params{Timesteps: 4, MaxWidth: 4, Seed: 7})
	var sum float64
	const n = 10000
	for k := 0; k < n; k++ {
		v := g.TaskMultiplier(k%100, k/100)
		if v != h.TaskMultiplier(k%100, k/100) {
			t.Fatal("TaskMultiplier not deterministic")
		}
		if v < 0 || v >= 1 {
			t.Fatalf("TaskMultiplier out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("TaskMultiplier mean = %v, want ≈ 0.5", mean)
	}
	// Different seeds give different workloads.
	other := MustNew(Params{Timesteps: 4, MaxWidth: 4, Seed: 8})
	if g.TaskMultiplier(1, 2) == other.TaskMultiplier(1, 2) &&
		g.TaskMultiplier(2, 3) == other.TaskMultiplier(2, 3) {
		t.Error("different seeds produced identical multipliers")
	}
}

func TestTotalTasksAndDependenciesStencil(t *testing.T) {
	g := simpleGraph(t, Stencil1D, 8, 5)
	if got := g.TotalTasks(); got != 40 {
		t.Errorf("TotalTasks = %d, want 40", got)
	}
	// Each non-first timestep: interior 6 points × 3 deps + 2 edges × 2 deps = 22.
	if got := g.TotalDependencies(); got != 4*22 {
		t.Errorf("TotalDependencies = %d, want %d", got, 4*22)
	}
}

func TestDependenceTypeStringsRoundTrip(t *testing.T) {
	for _, d := range DependenceTypes() {
		back, err := ParseDependenceType(d.String())
		if err != nil || back != d {
			t.Errorf("round trip of %v failed: %v, %v", d, back, err)
		}
	}
	if _, err := ParseDependenceType("bogus"); err == nil {
		t.Error("ParseDependenceType accepted bogus name")
	}
}

func TestPersistentImbalanceMultiplier(t *testing.T) {
	g := MustNew(Params{Timesteps: 8, MaxWidth: 8, Seed: 3,
		Kernel: kernels.Config{Type: kernels.LoadImbalance, Iterations: 10,
			ImbalanceFactor: 1, PersistentImbalance: true}})
	// Constant across timesteps.
	for i := 0; i < 8; i++ {
		base := g.TaskMultiplier(0, i)
		for ts := 1; ts < 8; ts++ {
			if g.TaskMultiplier(ts, i) != base {
				t.Fatalf("persistent multiplier varies with t at column %d", i)
			}
		}
	}
	// Still varies across columns.
	if g.TaskMultiplier(0, 0) == g.TaskMultiplier(0, 1) &&
		g.TaskMultiplier(0, 1) == g.TaskMultiplier(0, 2) {
		t.Error("persistent multipliers identical across columns")
	}
	// Non-persistent varies with t.
	np := MustNew(Params{Timesteps: 8, MaxWidth: 8, Seed: 3,
		Kernel: kernels.Config{Type: kernels.LoadImbalance, Iterations: 10, ImbalanceFactor: 1}})
	if np.TaskMultiplier(0, 0) == np.TaskMultiplier(1, 0) {
		t.Error("non-persistent multiplier constant across timesteps")
	}
}
