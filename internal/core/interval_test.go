package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalLen(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int
	}{
		{Interval{0, 0}, 1},
		{Interval{2, 5}, 4},
		{Interval{5, 2}, 0},
		{Interval{-3, -1}, 3},
	}
	for _, c := range cases {
		if got := c.iv.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{3, 7}
	for i := 0; i < 12; i++ {
		want := i >= 3 && i <= 7
		if got := iv.Contains(i); got != want {
			t.Errorf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestIntervalListCount(t *testing.T) {
	l := IntervalList{{0, 2}, {5, 5}, {8, 9}}
	if got := l.Count(); got != 6 {
		t.Errorf("Count() = %d, want 6", got)
	}
	if got := IntervalList(nil).Count(); got != 0 {
		t.Errorf("nil Count() = %d, want 0", got)
	}
}

func TestIntervalListPoints(t *testing.T) {
	l := IntervalList{{0, 2}, {5, 5}}
	want := []int{0, 1, 2, 5}
	if got := l.Points(); !reflect.DeepEqual(got, want) {
		t.Errorf("Points() = %v, want %v", got, want)
	}
}

func TestIntervalListForEachOrder(t *testing.T) {
	l := IntervalList{{3, 4}, {7, 8}}
	var got []int
	l.ForEach(func(i int) { got = append(got, i) })
	want := []int{3, 4, 7, 8}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach order = %v, want %v", got, want)
	}
}

func TestIntervalListClip(t *testing.T) {
	l := IntervalList{{-2, 3}, {5, 10}}
	got := l.clip(0, 7)
	want := IntervalList{{0, 3}, {5, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("clip = %v, want %v", got, want)
	}
	if got := l.clip(20, 30); got != nil {
		t.Errorf("clip outside = %v, want nil", got)
	}
}

func TestIntervalsFromSorted(t *testing.T) {
	got := intervalsFromSorted([]int{1, 2, 3, 7, 9, 10})
	want := IntervalList{{1, 3}, {7, 7}, {9, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("intervalsFromSorted = %v, want %v", got, want)
	}
	if got := intervalsFromSorted(nil); got != nil {
		t.Errorf("intervalsFromSorted(nil) = %v, want nil", got)
	}
}

// Property: compressing any sorted deduplicated point set into
// intervals and expanding it back is the identity.
func TestIntervalRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[int]bool{}
		var pts []int
		for _, r := range raw {
			if !seen[int(r)] {
				seen[int(r)] = true
				pts = append(pts, int(r))
			}
		}
		sortInts(pts)
		l := intervalsFromSorted(pts)
		back := l.Points()
		if len(pts) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(pts, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortInts(t *testing.T) {
	f := func(raw []int16) bool {
		a := make([]int, len(raw))
		for i, r := range raw {
			a[i] = int(r)
		}
		sortInts(a)
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
