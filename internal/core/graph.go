package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"taskbench/internal/kernels"
)

// Params describes one task graph: the iteration space, the dependence
// relation, the kernel each task runs, and the payload sizes. It is the
// Go rendering of the paper's Table 1.
type Params struct {
	// GraphID distinguishes graphs when several execute concurrently.
	GraphID int

	// Timesteps is the height of the graph (number of timesteps).
	Timesteps int

	// MaxWidth is the width of the graph (degree of parallelism).
	MaxWidth int

	// Dependence selects the dependence relation.
	Dependence DependenceType

	// Radix is the number of dependencies per task for the Nearest,
	// Spread and RandomNearest patterns.
	Radix int

	// Period is the number of distinct dependence sets cycled through
	// by the Spread and RandomNearest patterns (default 3).
	Period int

	// Fraction is the probability that a candidate dependency of the
	// RandomNearest pattern is kept (default 0.25).
	Fraction float64

	// Seed feeds the deterministic hash behind load imbalance and
	// random dependencies, so all runtimes see identical workloads.
	Seed uint64

	// Kernel configures the computation each task performs.
	Kernel kernels.Config

	// OutputBytes is the size of each task's output payload, and thus
	// the number of bytes carried by every dependence edge. It is at
	// least PayloadHeaderSize so outputs can be validated.
	OutputBytes int

	// ScratchBytes is the size of the per-column persistent working
	// set used by the memory-bound kernel.
	ScratchBytes int64

	// FaultRate injects payload corruption for testing the validation
	// machinery end-to-end: each task's output has this probability
	// (decided by the deterministic per-task hash) of carrying one
	// flipped fill byte. Consumers must detect the corruption and the
	// runtime must surface a *ValidationError. Zero in normal runs.
	FaultRate float64
}

// Graph is a validated task graph. Construct with New; Graph values
// must not be copied (they hold internal caches).
type Graph struct {
	Params

	steadyWidthLog int // log2(MaxWidth), for Tree/FFT

	revOnce  sync.Once
	revTable [][]IntervalList // [dset][point] -> reverse deps

	depOnce  sync.Once
	depTable atomic.Pointer[DepTable] // compiled relation; see deptable.go

	totalDepsOnce sync.Once
	totalDeps     int64
}

// New validates the parameters and builds a Graph.
func New(p Params) (*Graph, error) {
	if p.Timesteps <= 0 {
		return nil, errors.New("core: graph must have at least one timestep")
	}
	if p.MaxWidth <= 0 {
		return nil, errors.New("core: graph must have positive width")
	}
	if p.Dependence.RequiresPowerOfTwoWidth() && !isPowerOfTwo(p.MaxWidth) {
		return nil, fmt.Errorf("core: %s pattern requires power-of-two width, got %d",
			p.Dependence, p.MaxWidth)
	}
	if _, ok := dependenceNames[p.Dependence]; !ok {
		return nil, fmt.Errorf("core: invalid dependence type %d", int(p.Dependence))
	}
	if p.Radix < 0 || p.Radix > p.MaxWidth {
		return nil, fmt.Errorf("core: radix %d out of range [0, width=%d]", p.Radix, p.MaxWidth)
	}
	switch p.Dependence {
	case Nearest, Spread, RandomNearest:
		if p.Radix == 0 && p.Dependence != Nearest {
			return nil, fmt.Errorf("core: %s pattern requires radix > 0", p.Dependence)
		}
	}
	if p.Period == 0 {
		p.Period = 3
	}
	if p.Period < 0 {
		return nil, errors.New("core: period must be positive")
	}
	if p.Fraction == 0 {
		p.Fraction = 0.25
	}
	if p.Fraction < 0 || p.Fraction > 1 {
		return nil, errors.New("core: fraction must be in [0, 1]")
	}
	if p.OutputBytes < PayloadHeaderSize {
		p.OutputBytes = PayloadHeaderSize
	}
	if p.ScratchBytes < 0 {
		return nil, errors.New("core: scratch bytes must be non-negative")
	}
	if p.FaultRate < 0 || p.FaultRate > 1 {
		return nil, errors.New("core: fault rate must be in [0, 1]")
	}
	if p.FaultRate > 0 && p.OutputBytes <= PayloadHeaderSize {
		// Corruption flips a fill byte, so there must be one.
		p.OutputBytes = PayloadHeaderSize + 8
	}
	if err := p.Kernel.Validate(); err != nil {
		return nil, err
	}
	return &Graph{Params: p, steadyWidthLog: log2Floor(p.MaxWidth)}, nil
}

// MustNew is New for programmatic graphs known to be valid; it panics
// on error. Used heavily by examples and tests.
func MustNew(p Params) *Graph {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

// OffsetAtTimestep returns the first active column at timestep t. All
// current patterns keep the window anchored at zero; the method exists
// for API fidelity with the reference core library.
func (g *Graph) OffsetAtTimestep(t int) int {
	if t < 0 || t >= g.Timesteps {
		return 0
	}
	return 0
}

// WidthAtTimestep returns the number of active columns at timestep t.
// The Tree pattern doubles the width each timestep during fan-out;
// every other pattern is full width throughout.
func (g *Graph) WidthAtTimestep(t int) int {
	if t < 0 || t >= g.Timesteps {
		return 0
	}
	if g.Dependence == Tree {
		if t >= g.steadyWidthLog {
			return g.MaxWidth
		}
		return 1 << t
	}
	return g.MaxWidth
}

// ContainsPoint reports whether task (t, i) exists in the graph.
func (g *Graph) ContainsPoint(t, i int) bool {
	off := g.OffsetAtTimestep(t)
	return t >= 0 && t < g.Timesteps && i >= off && i < off+g.WidthAtTimestep(t)
}

// TotalTasks returns the number of tasks in the graph.
func (g *Graph) TotalTasks() int64 {
	var n int64
	for t := 0; t < g.Timesteps; t++ {
		n += int64(g.WidthAtTimestep(t))
	}
	return n
}

// MaxDependenceSets returns the number of distinct dependence relations
// the graph cycles through. Patterns whose relation is independent of
// the timestep have a single set.
func (g *Graph) MaxDependenceSets() int {
	switch g.Dependence {
	case FFT:
		if g.steadyWidthLog == 0 {
			return 1
		}
		return g.steadyWidthLog
	case Tree:
		return 1 + g.steadyWidthLog
	case Spread, RandomNearest:
		return g.Period
	default:
		return 1
	}
}

// DependenceSetAt returns the dependence set in effect for tasks at
// timestep t (i.e. the relation linking timestep t-1 to t).
func (g *Graph) DependenceSetAt(t int) int {
	switch g.Dependence {
	case FFT:
		if t <= 0 || g.steadyWidthLog == 0 {
			return 0
		}
		return (t - 1) % g.steadyWidthLog
	case Tree:
		if t <= g.steadyWidthLog {
			return 0
		}
		if g.steadyWidthLog == 0 {
			return 0
		}
		return 1 + (t-g.steadyWidthLog-1)%g.steadyWidthLog
	case Spread, RandomNearest:
		if t < 0 {
			return 0
		}
		return t % g.Period
	default:
		return 0
	}
}

// Dependencies returns the dependence relation for dependence set dset
// at column i: the columns of the previous timestep that a task at
// column i consumes. The result is clamped to [0, MaxWidth) but not to
// the producing timestep's active window; use DependenciesForPoint for
// a fully clipped answer.
func (g *Graph) Dependencies(dset, i int) IntervalList {
	w := g.MaxWidth
	switch g.Dependence {
	case Trivial:
		return nil
	case NoComm:
		return IntervalList{{i, i}}
	case Stencil1D:
		return IntervalList{{max(0, i-1), min(w-1, i+1)}}
	case Stencil1DPeriodic:
		if w <= 2 {
			return IntervalList{{0, w - 1}}
		}
		switch i {
		case 0:
			return IntervalList{{0, 1}, {w - 1, w - 1}}
		case w - 1:
			return IntervalList{{0, 0}, {w - 2, w - 1}}
		default:
			return IntervalList{{i - 1, i + 1}}
		}
	case Dom:
		return IntervalList{{max(0, i-1), i}}
	case Tree:
		if dset == 0 {
			return IntervalList{{i / 2, i / 2}}
		}
		k := dset - 1
		j := i ^ (1 << k)
		if j < 0 || j >= w {
			return IntervalList{{i, i}}
		}
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi == lo+1 {
			return IntervalList{{lo, hi}}
		}
		return IntervalList{{lo, lo}, {hi, hi}}
	case FFT:
		d := 1 << dset
		pts := make([]int, 0, 3)
		if i-d >= 0 {
			pts = append(pts, i-d)
		}
		pts = append(pts, i)
		if i+d < w {
			pts = append(pts, i+d)
		}
		return intervalsFromSorted(pts)
	case AllToAll:
		return IntervalList{{0, w - 1}}
	case Nearest:
		return g.nearestWindow(i)
	case Spread:
		return g.spreadDeps(dset, i)
	case RandomNearest:
		return g.randomNearestDeps(dset, i)
	default:
		panic(fmt.Sprintf("core: invalid dependence type %d", int(g.Dependence)))
	}
}

// nearestWindow returns the Radix columns nearest to i (preferring the
// column itself, then alternating left/right), clamped to the graph.
func (g *Graph) nearestWindow(i int) IntervalList {
	if g.Radix == 0 {
		return nil
	}
	// Offsets in nearness order 0, -1, +1, -2, +2, ... cover a window
	// [i-left, i+right] with left = radix/2, right = (radix-1)/2.
	lo := i - g.Radix/2
	hi := i + (g.Radix-1)/2
	lo = max(lo, 0)
	hi = min(hi, g.MaxWidth-1)
	if lo > hi {
		return nil
	}
	return IntervalList{{lo, hi}}
}

// spreadDeps spreads Radix dependencies as widely as possible across
// the width, rotating by dset each timestep so successive steps
// exercise different links (paper Figure 9c).
func (g *Graph) spreadDeps(dset, i int) IntervalList {
	stride := g.MaxWidth / g.Radix
	if stride < 1 {
		stride = 1
	}
	seen := make(map[int]bool, g.Radix)
	pts := make([]int, 0, g.Radix)
	for j := 0; j < g.Radix; j++ {
		p := (i + dset + j*stride) % g.MaxWidth
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	sortInts(pts)
	return intervalsFromSorted(pts)
}

// randomNearestDeps keeps each column of the nearest window with
// probability Fraction, decided by a hash of (seed, dset, point,
// candidate) so that producers and consumers agree without coordination.
func (g *Graph) randomNearestDeps(dset, i int) IntervalList {
	window := g.nearestWindow(i)
	pts := make([]int, 0, g.Radix)
	window.ForEach(func(j int) {
		h := hashPoint(g.Seed^uint64(g.GraphID)<<32, int64(dset), int64(i), int64(j))
		if uniformFloat(h) < g.Fraction {
			pts = append(pts, j)
		}
	})
	return intervalsFromSorted(pts)
}

// DependenciesForPoint returns the concrete dependencies of task
// (t, i): the relation for the timestep's dependence set, clipped to
// the active window of timestep t-1. Tasks in the first timestep have
// no dependencies.
func (g *Graph) DependenciesForPoint(t, i int) IntervalList {
	if t <= 0 || !g.ContainsPoint(t, i) {
		return nil
	}
	off := g.OffsetAtTimestep(t - 1)
	w := g.WidthAtTimestep(t - 1)
	deps := g.Dependencies(g.DependenceSetAt(t), i)
	return deps.clip(off, off+w-1)
}

// ReverseDependencies returns, for dependence set dset, the columns of
// the next timestep that consume the output of a task at column i.
func (g *Graph) ReverseDependencies(dset, i int) IntervalList {
	g.buildReverse()
	if dset < 0 || dset >= len(g.revTable) || i < 0 || i >= g.MaxWidth {
		return nil
	}
	return g.revTable[dset][i]
}

// ReverseDependenciesForPoint returns the concrete consumers of task
// (t, i) at timestep t+1, clipped to that timestep's active window.
func (g *Graph) ReverseDependenciesForPoint(t, i int) IntervalList {
	if t+1 >= g.Timesteps || !g.ContainsPoint(t, i) {
		return nil
	}
	off := g.OffsetAtTimestep(t + 1)
	w := g.WidthAtTimestep(t + 1)
	rev := g.ReverseDependencies(g.DependenceSetAt(t+1), i)
	return rev.clip(off, off+w-1)
}

// PrecomputeReverse builds the reverse-dependence tables eagerly.
// Parallel plan construction calls it before fanning out over columns
// so worker goroutines only read shared graph state instead of
// serializing on the lazy once-guarded build.
func (g *Graph) PrecomputeReverse() { g.buildReverse() }

// buildReverse computes the reverse-dependence table by inverting the
// forward relation, guaranteeing the two are exactly consistent for
// every pattern (including hashed random patterns).
func (g *Graph) buildReverse() {
	g.revOnce.Do(func() {
		sets := g.MaxDependenceSets()
		g.revTable = make([][]IntervalList, sets)
		for dset := 0; dset < sets; dset++ {
			consumers := make([][]int, g.MaxWidth)
			for j := 0; j < g.MaxWidth; j++ {
				g.Dependencies(dset, j).ForEach(func(p int) {
					if p >= 0 && p < g.MaxWidth {
						consumers[p] = append(consumers[p], j)
					}
				})
			}
			g.revTable[dset] = make([]IntervalList, g.MaxWidth)
			for i, cs := range consumers {
				sortInts(cs)
				g.revTable[dset][i] = intervalsFromSorted(cs)
			}
		}
	})
}

// TotalDependencies counts every dependence edge in the graph, used by
// reporting and by the simulator's message accounting. The count is
// computed once from the compiled table and memoized: StatsFor calls
// this at every run, and before memoization the O(tasks) walk through
// the allocating per-call path dominated the steady-state allocation
// profile of small-granularity sweeps.
func (g *Graph) TotalDependencies() int64 {
	g.totalDepsOnce.Do(func() {
		var n int64
		for t := 1; t < g.Timesteps; t++ {
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			for i := off; i < off+w; i++ {
				it := g.PointDeps(t, i)
				n += int64(it.Count())
			}
		}
		g.totalDeps = n
	})
	return g.totalDeps
}

// sortInts is insertion sort; dependence lists are tiny (≤ radix).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
