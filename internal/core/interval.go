// Package core implements the Task Bench core library: the
// parameterized task-graph description (iteration space × dependence
// relation), kernel dispatch, payload validation, parameter parsing and
// result reporting. Every runtime backend in internal/runtime executes
// graphs described by this package, mirroring the paper's separation of
// benchmark specification from system-specific implementation (§2).
package core

import "fmt"

// Interval is an inclusive range [First, Last] of column indices. The
// core library reports dependencies as interval lists, like the C
// implementation, so that wide relations (all-to-all) stay compact.
type Interval struct {
	First int
	Last  int
}

// Len returns the number of points in the interval.
func (iv Interval) Len() int {
	if iv.Last < iv.First {
		return 0
	}
	return iv.Last - iv.First + 1
}

// Contains reports whether the column lies within the interval.
func (iv Interval) Contains(i int) bool {
	return i >= iv.First && i <= iv.Last
}

// String renders the interval in [first, last] form.
func (iv Interval) String() string {
	return fmt.Sprintf("[%d, %d]", iv.First, iv.Last)
}

// IntervalList is an ordered, non-overlapping set of intervals.
type IntervalList []Interval

// Count returns the total number of points covered by the list.
func (l IntervalList) Count() int {
	n := 0
	for _, iv := range l {
		n += iv.Len()
	}
	return n
}

// Contains reports whether any interval in the list covers the column.
func (l IntervalList) Contains(i int) bool {
	for _, iv := range l {
		if iv.Contains(i) {
			return true
		}
	}
	return false
}

// Points expands the list into individual column indices in order.
func (l IntervalList) Points() []int {
	pts := make([]int, 0, l.Count())
	for _, iv := range l {
		for i := iv.First; i <= iv.Last; i++ {
			pts = append(pts, i)
		}
	}
	return pts
}

// ForEach invokes fn on every point in the list, in order.
func (l IntervalList) ForEach(fn func(i int)) {
	for _, iv := range l {
		for i := iv.First; i <= iv.Last; i++ {
			fn(i)
		}
	}
}

// clip restricts the list to [lo, hi] (inclusive), dropping or trimming
// intervals that fall outside. Runtimes use it to clip a dependence
// relation to the active window of the producing timestep.
func (l IntervalList) clip(lo, hi int) IntervalList {
	var out IntervalList
	for _, iv := range l {
		first, last := iv.First, iv.Last
		if first < lo {
			first = lo
		}
		if last > hi {
			last = hi
		}
		if first <= last {
			out = append(out, Interval{first, last})
		}
	}
	return out
}

// intervalsFromSorted compresses a sorted, deduplicated point slice
// into an interval list.
func intervalsFromSorted(pts []int) IntervalList {
	var out IntervalList
	for n := 0; n < len(pts); {
		first := pts[n]
		last := first
		n++
		for n < len(pts) && pts[n] == last+1 {
			last = pts[n]
			n++
		}
		out = append(out, Interval{first, last})
	}
	return out
}
