package core

import (
	"fmt"
	"strconv"
	"time"

	"taskbench/internal/kernels"
)

// App is a full Task Bench configuration: one or more task graphs to
// execute concurrently (paper §2: "multiple (potentially heterogeneous)
// task graphs can be executed concurrently to introduce task
// parallelism"), plus machine-shape hints shared by all backends.
type App struct {
	Graphs []*Graph

	// Workers is the degree of execution parallelism the backend
	// should use (analogous to cores per run). Zero means one worker
	// per graph column.
	Workers int

	// Nodes is the number of simulated nodes for distributed backends
	// and the simulator. Zero means one node.
	Nodes int

	// Validate controls input payload verification (on by default;
	// the ablation study turns it off).
	Validate bool

	// Verbose enables per-graph reporting.
	Verbose bool
}

// NewApp builds an App over the given graphs with validation enabled.
func NewApp(graphs ...*Graph) *App {
	return &App{Graphs: graphs, Validate: true}
}

// TotalTasks sums the task counts of all graphs.
func (a *App) TotalTasks() int64 {
	var n int64
	for _, g := range a.Graphs {
		n += g.TotalTasks()
	}
	return n
}

// TotalDependencies sums the dependence edge counts of all graphs.
func (a *App) TotalDependencies() int64 {
	var n int64
	for _, g := range a.Graphs {
		n += g.TotalDependencies()
	}
	return n
}

// ExpectedFlops sums the floating point work of all tasks.
func (a *App) ExpectedFlops() float64 {
	var f float64
	for _, g := range a.Graphs {
		f += float64(g.TotalTasks()) * g.Kernel.FlopsPerTask()
	}
	return f
}

// ExpectedBytes sums the memory kernel traffic of all tasks.
func (a *App) ExpectedBytes() float64 {
	var b float64
	for _, g := range a.Graphs {
		b += float64(g.TotalTasks()) * g.Kernel.BytesPerTask()
	}
	return b
}

// parseState accumulates one graph's parameters during CLI parsing.
type parseState struct {
	p Params
}

func defaultParseState(graphID int) parseState {
	return parseState{p: Params{
		GraphID:    graphID,
		Timesteps:  4,
		MaxWidth:   4,
		Dependence: Trivial,
		Kernel:     kernels.Config{Type: kernels.Empty},
	}}
}

// ParseArgs parses a Task Bench command line in the style of the
// reference driver. Graph options (Table 1) apply to the graph being
// described; "-and" finishes the current graph and starts another that
// inherits the defaults afresh. Global options (-workers, -nodes,
// -novalidate, -verbose) may appear anywhere.
//
//	-steps H -width W -type stencil_1d -kernel compute_bound -iter N
//	  [-radix K] [-period P] [-fraction F] [-output BYTES]
//	  [-scratch BYTES] [-span BYTES] [-imbalance F] [-wait DUR]
//	  [-seed S] [-and ...next graph...]
func ParseArgs(args []string) (*App, error) {
	app := &App{Validate: true}
	cur := defaultParseState(0)

	need := func(i int, flag string) (string, error) {
		if i+1 >= len(args) {
			return "", fmt.Errorf("core: flag %s requires a value", flag)
		}
		return args[i+1], nil
	}
	parseInt := func(i int, flag string) (int, error) {
		v, err := need(i, flag)
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("core: flag %s: %v", flag, err)
		}
		return n, nil
	}
	parseFloat := func(i int, flag string) (float64, error) {
		v, err := need(i, flag)
		if err != nil {
			return 0, err
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("core: flag %s: %v", flag, err)
		}
		return f, nil
	}

	finish := func() error {
		g, err := New(cur.p)
		if err != nil {
			return err
		}
		app.Graphs = append(app.Graphs, g)
		return nil
	}

	for i := 0; i < len(args); i++ {
		var err error
		switch flag := args[i]; flag {
		case "-steps":
			cur.p.Timesteps, err = parseInt(i, flag)
			i++
		case "-width":
			cur.p.MaxWidth, err = parseInt(i, flag)
			i++
		case "-type":
			var v string
			if v, err = need(i, flag); err == nil {
				cur.p.Dependence, err = ParseDependenceType(v)
			}
			i++
		case "-radix":
			cur.p.Radix, err = parseInt(i, flag)
			i++
		case "-period":
			cur.p.Period, err = parseInt(i, flag)
			i++
		case "-fraction":
			cur.p.Fraction, err = parseFloat(i, flag)
			i++
		case "-kernel":
			var v string
			if v, err = need(i, flag); err == nil {
				cur.p.Kernel.Type, err = kernels.ParseType(v)
			}
			i++
		case "-iter":
			var n int
			n, err = parseInt(i, flag)
			cur.p.Kernel.Iterations = int64(n)
			i++
		case "-span":
			var n int
			n, err = parseInt(i, flag)
			cur.p.Kernel.SpanBytes = int64(n)
			i++
		case "-wait":
			var v string
			if v, err = need(i, flag); err == nil {
				cur.p.Kernel.WaitDuration, err = time.ParseDuration(v)
			}
			i++
		case "-imbalance":
			cur.p.Kernel.ImbalanceFactor, err = parseFloat(i, flag)
			i++
		case "-persistent":
			cur.p.Kernel.PersistentImbalance = true
		case "-output":
			cur.p.OutputBytes, err = parseInt(i, flag)
			i++
		case "-scratch":
			var n int
			n, err = parseInt(i, flag)
			cur.p.ScratchBytes = int64(n)
			i++
		case "-seed":
			var n int
			n, err = parseInt(i, flag)
			cur.p.Seed = uint64(n)
			i++
		case "-and":
			if err = finish(); err == nil {
				cur = defaultParseState(len(app.Graphs))
			}
		case "-workers":
			app.Workers, err = parseInt(i, flag)
			i++
		case "-nodes":
			app.Nodes, err = parseInt(i, flag)
			i++
		case "-novalidate":
			app.Validate = false
		case "-verbose":
			app.Verbose = true
		default:
			return nil, fmt.Errorf("core: unknown flag %q", flag)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return app, nil
}
