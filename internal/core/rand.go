package core

// Deterministic pseudo-random hashing for load imbalance and the
// random_nearest dependence pattern. The paper requires task durations
// to be "generated with a deterministic pseudo random number generator
// with a consistent seed to ensure identical task durations for all
// systems" (§5.7). A stateless splitmix64-style hash over
// (seed, graph, timestep, point) gives exactly that property without
// shared state between concurrently executing tasks.

// splitmix64 is the finalizer from the splitmix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPoint mixes a seed with up to three coordinates into a uniform
// 64-bit value.
func hashPoint(seed uint64, a, b, c int64) uint64 {
	h := splitmix64(seed ^ 0x51f2cd1e95b4d4d5)
	h = splitmix64(h ^ uint64(a))
	h = splitmix64(h ^ uint64(b))
	h = splitmix64(h ^ uint64(c))
	return h
}

// uniformFloat converts a 64-bit hash into a float64 in [0, 1).
func uniformFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// TaskMultiplier returns the deterministic uniform [0, 1) variable
// associated with task (t, i) of this graph, used by the
// load-imbalance kernel. Identical for every runtime backend. Under
// persistent imbalance the multiplier depends on the column only, so
// timesteps are perfectly correlated (the future-work case of §5.7).
func (g *Graph) TaskMultiplier(t, i int) float64 {
	if g.Kernel.PersistentImbalance {
		t = 0
	}
	return uniformFloat(hashPoint(g.Seed, int64(g.GraphID), int64(t), int64(i)))
}
