package core

import (
	"strings"
	"testing"
	"time"

	"taskbench/internal/kernels"
)

func TestParseArgsSingleGraph(t *testing.T) {
	app, err := ParseArgs([]string{
		"-steps", "100", "-width", "32", "-type", "stencil_1d",
		"-kernel", "compute_bound", "-iter", "512", "-output", "64",
		"-scratch", "4096", "-seed", "9", "-workers", "8", "-verbose",
	})
	if err != nil {
		t.Fatalf("ParseArgs: %v", err)
	}
	if len(app.Graphs) != 1 {
		t.Fatalf("got %d graphs, want 1", len(app.Graphs))
	}
	g := app.Graphs[0]
	if g.Timesteps != 100 || g.MaxWidth != 32 || g.Dependence != Stencil1D {
		t.Errorf("graph shape = %d×%d %v", g.Timesteps, g.MaxWidth, g.Dependence)
	}
	if g.Kernel.Type != kernels.ComputeBound || g.Kernel.Iterations != 512 {
		t.Errorf("kernel = %+v", g.Kernel)
	}
	if g.OutputBytes != 64 || g.ScratchBytes != 4096 || g.Seed != 9 {
		t.Errorf("payload params = %d, %d, %d", g.OutputBytes, g.ScratchBytes, g.Seed)
	}
	if app.Workers != 8 || !app.Verbose || !app.Validate {
		t.Errorf("app flags = %+v", app)
	}
}

func TestParseArgsMultipleGraphs(t *testing.T) {
	app, err := ParseArgs([]string{
		"-steps", "10", "-width", "8", "-type", "nearest", "-radix", "5",
		"-and",
		"-steps", "20", "-width", "8", "-type", "fft",
	})
	if err != nil {
		t.Fatalf("ParseArgs: %v", err)
	}
	if len(app.Graphs) != 2 {
		t.Fatalf("got %d graphs, want 2", len(app.Graphs))
	}
	if app.Graphs[0].GraphID != 0 || app.Graphs[1].GraphID != 1 {
		t.Errorf("graph IDs = %d, %d", app.Graphs[0].GraphID, app.Graphs[1].GraphID)
	}
	if app.Graphs[1].Dependence != FFT || app.Graphs[1].Timesteps != 20 {
		t.Errorf("second graph = %+v", app.Graphs[1].Params)
	}
	// Settings do not leak between graphs.
	if app.Graphs[1].Radix != 0 {
		t.Errorf("radix leaked into second graph: %d", app.Graphs[1].Radix)
	}
}

func TestParseArgsKernelOptions(t *testing.T) {
	app, err := ParseArgs([]string{
		"-steps", "2", "-width", "2", "-kernel", "busy_wait", "-wait", "50us",
	})
	if err != nil {
		t.Fatalf("ParseArgs: %v", err)
	}
	if got := app.Graphs[0].Kernel.WaitDuration; got != 50*time.Microsecond {
		t.Errorf("wait = %v, want 50µs", got)
	}

	app, err = ParseArgs([]string{
		"-steps", "2", "-width", "2", "-kernel", "memory_bound",
		"-iter", "8", "-span", "1024", "-scratch", "65536",
	})
	if err != nil {
		t.Fatalf("ParseArgs: %v", err)
	}
	if got := app.Graphs[0].Kernel.SpanBytes; got != 1024 {
		t.Errorf("span = %d, want 1024", got)
	}

	app, err = ParseArgs([]string{
		"-steps", "2", "-width", "2", "-kernel", "load_imbalance",
		"-iter", "100", "-imbalance", "1.0",
	})
	if err != nil {
		t.Fatalf("ParseArgs: %v", err)
	}
	if got := app.Graphs[0].Kernel.ImbalanceFactor; got != 1.0 {
		t.Errorf("imbalance = %v, want 1.0", got)
	}
}

func TestParseArgsErrors(t *testing.T) {
	cases := [][]string{
		{"-steps"},                      // missing value
		{"-steps", "abc"},               // non-numeric
		{"-type", "bogus"},              // unknown pattern
		{"-kernel", "bogus"},            // unknown kernel
		{"-bogus"},                      // unknown flag
		{"-steps", "0"},                 // invalid graph
		{"-type", "fft", "-width", "6"}, // pow2 violation
		{"-wait", "xyz"},                // bad duration
	}
	for _, args := range cases {
		if _, err := ParseArgs(args); err == nil {
			t.Errorf("ParseArgs(%v) accepted invalid input", args)
		}
	}
}

func TestParseArgsNoValidate(t *testing.T) {
	app, err := ParseArgs([]string{"-steps", "1", "-width", "1", "-novalidate"})
	if err != nil {
		t.Fatalf("ParseArgs: %v", err)
	}
	if app.Validate {
		t.Error("-novalidate did not clear Validate")
	}
}

func TestAppAccounting(t *testing.T) {
	g1 := MustNew(Params{Timesteps: 10, MaxWidth: 4, Dependence: Stencil1D,
		Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: 100}})
	g2 := MustNew(Params{Timesteps: 5, MaxWidth: 2, Dependence: NoComm,
		Kernel: kernels.Config{Type: kernels.MemoryBound, Iterations: 3, SpanBytes: 128}})
	app := NewApp(g1, g2)
	if got := app.TotalTasks(); got != 50 {
		t.Errorf("TotalTasks = %d, want 50", got)
	}
	wantFlops := float64(40) * 100 * kernels.FlopsPerIteration
	if got := app.ExpectedFlops(); got != wantFlops {
		t.Errorf("ExpectedFlops = %v, want %v", got, wantFlops)
	}
	wantBytes := float64(10) * 3 * 128 * 2
	if got := app.ExpectedBytes(); got != wantBytes {
		t.Errorf("ExpectedBytes = %v, want %v", got, wantBytes)
	}
	if got := app.TotalDependencies(); got != g1.TotalDependencies()+g2.TotalDependencies() {
		t.Errorf("TotalDependencies = %d", got)
	}
}

func TestRunStatsDerived(t *testing.T) {
	r := RunStats{
		Elapsed: time.Second,
		Tasks:   1000,
		Flops:   5e9,
		Workers: 4,
	}
	if got := r.TaskGranularity(); got != 4*time.Millisecond {
		t.Errorf("TaskGranularity = %v, want 4ms", got)
	}
	if got := r.FlopsPerSecond(); got != 5e9 {
		t.Errorf("FlopsPerSecond = %v, want 5e9", got)
	}
	if got := r.TasksPerSecond(); got != 1000 {
		t.Errorf("TasksPerSecond = %v, want 1000", got)
	}
	if got := r.Efficiency(10e9, 0); got != 0.5 {
		t.Errorf("Efficiency = %v, want 0.5", got)
	}
	mem := RunStats{Elapsed: time.Second, Tasks: 10, Bytes: 4e9, Workers: 1}
	if got := mem.Efficiency(0, 8e9); got != 0.5 {
		t.Errorf("memory Efficiency = %v, want 0.5", got)
	}
	var zero RunStats
	if zero.TaskGranularity() != 0 || zero.FlopsPerSecond() != 0 || zero.Efficiency(1, 1) != 0 {
		t.Error("zero RunStats should produce zero derived values")
	}
}

func TestWriteReport(t *testing.T) {
	r := RunStats{Elapsed: time.Second, Tasks: 10, Flops: 1e9, Workers: 2}
	var sb strings.Builder
	r.WriteReport(&sb, "serial")
	out := sb.String()
	for _, want := range []string{"serial", "tasks", "GFLOP/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("report %q missing %q", out, want)
		}
	}
}

func TestStatsFor(t *testing.T) {
	g := MustNew(Params{Timesteps: 4, MaxWidth: 4, Dependence: Stencil1D,
		Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: 10}})
	app := NewApp(g)
	s := StatsFor(app)
	if s.Tasks != 16 || s.Flops != 16*10*kernels.FlopsPerIteration {
		t.Errorf("StatsFor = %+v", s)
	}
}
