package metrics

import (
	"sync"
	"time"
)

// Snapshot is a flat point-in-time sample of every instrument in a
// registry — the unit the /snapshots.json endpoint retains and the
// loadgen poller consumes. Labeled counters flatten to
// "name{label=value}" keys so the map stays one level deep.
type Snapshot struct {
	UnixNanos  int64                    `json:"unix_nanos"`
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramData `json:"histograms,omitempty"`
}

// TakeSnapshot samples every instrument at the given timestamp. Gauge
// functions run inline, under the registry mutex (see the package
// comment for the locking contract).
func (r *Registry) TakeSnapshot(now time.Time) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()

	s := Snapshot{
		UnixNanos:  now.UnixNano(),
		Counters:   make(map[string]int64, len(r.counters)+len(r.vecs)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramData, len(r.histograms)),
	}
	for _, c := range r.counters {
		s.Counters[c.name] = c.Value()
	}
	for _, v := range r.vecs {
		for _, lv := range v.snapshotChildren() {
			s.Counters[v.name+"{"+v.label+"="+lv.label+"}"] = lv.value
		}
	}
	for _, g := range r.gauges {
		s.Gauges[g.name] = float64(g.Value())
	}
	for _, gf := range r.gaugeFns {
		s.Gauges[gf.name] = gf.fn()
	}
	for _, h := range r.histograms {
		s.Histograms[h.name] = h.Snapshot()
	}
	return s
}

// Ring is a fixed-capacity snapshot buffer: Add overwrites the oldest
// entry once full, Snapshots returns the retained window oldest-first.
type Ring struct {
	mu    sync.Mutex
	buf   []Snapshot
	next  int
	count int
}

// NewRing creates a ring retaining up to capacity snapshots
// (capacity < 1 is clamped to 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Snapshot, capacity)}
}

// Add appends a snapshot, evicting the oldest when full.
func (r *Ring) Add(s Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// Snapshots returns the retained snapshots, oldest first.
func (r *Ring) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained snapshots.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Collector periodically samples a registry into a ring. One snapshot
// is taken immediately on start so the endpoint never serves an empty
// ring on a freshly booted coordinator.
type Collector struct {
	reg      *Registry
	ring     *Ring
	interval time.Duration

	stop chan struct{}
	done chan struct{}
}

// StartCollector begins sampling reg every interval, retaining the
// most recent `retention` snapshots. interval < 1ms is clamped to 1s;
// retention < 1 is clamped to 1.
func StartCollector(reg *Registry, interval time.Duration, retention int) *Collector {
	if interval < time.Millisecond {
		interval = time.Second
	}
	c := &Collector{
		reg:      reg,
		ring:     NewRing(retention),
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.ring.Add(reg.TakeSnapshot(time.Now()))
	go c.run()
	return c
}

func (c *Collector) run() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.ring.Add(c.reg.TakeSnapshot(now))
		}
	}
}

// Ring exposes the retained snapshots.
func (c *Collector) Ring() *Ring { return c.ring }

// Interval reports the sampling interval.
func (c *Collector) Interval() time.Duration { return c.interval }

// Stop halts sampling and waits for the sampler goroutine to exit.
func (c *Collector) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}
