package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format v0.0.4, families sorted by metric name so the
// output is stable across scrapes and diffable in tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	type family struct {
		name   string
		render func(*bufio.Writer)
	}
	fams := make([]family, 0,
		len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.vecs)+len(r.histograms))

	for _, c := range r.counters {
		c := c
		fams = append(fams, family{c.name, func(bw *bufio.Writer) {
			header(bw, c.name, c.help, "counter")
			fmt.Fprintf(bw, "%s %d\n", c.name, c.Value())
		}})
	}
	for _, g := range r.gauges {
		g := g
		fams = append(fams, family{g.name, func(bw *bufio.Writer) {
			header(bw, g.name, g.help, "gauge")
			fmt.Fprintf(bw, "%s %d\n", g.name, g.Value())
		}})
	}
	for _, gf := range r.gaugeFns {
		gf := gf
		fams = append(fams, family{gf.name, func(bw *bufio.Writer) {
			header(bw, gf.name, gf.help, "gauge")
			fmt.Fprintf(bw, "%s %s\n", gf.name, formatFloat(gf.fn()))
		}})
	}
	for _, v := range r.vecs {
		v := v
		fams = append(fams, family{v.name, func(bw *bufio.Writer) {
			header(bw, v.name, v.help, "counter")
			for _, lv := range v.snapshotChildren() {
				fmt.Fprintf(bw, "%s{%s=\"%s\"} %d\n", v.name, v.label, escapeLabel(lv.label), lv.value)
			}
		}})
	}
	for _, h := range r.histograms {
		h := h
		fams = append(fams, family{h.name, func(bw *bufio.Writer) {
			header(bw, h.name, h.help, "histogram")
			d := h.Snapshot()
			var cum int64
			for i, b := range d.Bounds {
				cum += d.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", h.name, formatFloat(b), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.name, d.Count)
			fmt.Fprintf(bw, "%s_sum %s\n", h.name, formatFloat(d.Sum))
			fmt.Fprintf(bw, "%s_count %d\n", h.name, d.Count)
		}})
	}

	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.render(bw)
	}
	return bw.Flush()
}

func header(bw *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, no exponent for typical magnitudes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline for HELP lines (the v0.0.4
// escaping rules for help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double-quote and newline for label
// values; callers wrap the result in plain quotes.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
