package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"taskbench/internal/timeline"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters never go down
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cache_hits_total", "hits", "shape")
	v.With("stencil/4x4").Add(3)
	v.With("trivial/2x1").Inc()
	v.With("stencil/4x4").Inc()
	if got := v.Total(); got != 5 {
		t.Fatalf("vec total = %d, want 5", got)
	}
	kids := v.snapshotChildren()
	if len(kids) != 2 || kids[0].label != "stencil/4x4" || kids[0].value != 4 {
		t.Fatalf("unexpected children: %+v", kids)
	}
}

func TestHistogramEmptyQuantileIsZero(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil)
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	// The contract renderers rely on: an empty histogram reports
	// Count()==0 and Quantile==0, and the renderer — not the
	// histogram — substitutes "-".
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestHistogramSingleSamplePercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	// One sample: every quantile is that sample's bucket bound.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0.1 {
			t.Fatalf("Quantile(%v) = %v, want 0.1", q, got)
		}
	}
	if h.Count() != 1 || h.Sum() != 0.05 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramObserveBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 2, 4})
	h.Observe(1)   // exactly on a bound → that bucket (le semantics)
	h.Observe(1.5) // between bounds → next bound's bucket
	h.Observe(9)   // past the last bound → overflow
	d := h.Snapshot()
	want := []int64{1, 1, 0, 1}
	for i, w := range want {
		if d.Counts[i] != w {
			t.Fatalf("bucket counts = %v, want %v", d.Counts, want)
		}
	}
	// Overflow observations can only report the last finite bound.
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) with overflow = %v, want 4", got)
	}
}

// TestHistogramQuantileAgreesWithTimeline pins the two percentile
// implementations to the same nearest-rank convention: observations
// placed exactly on bucket bounds must yield identical p50/p95/p99
// from the histogram and from internal/timeline's raw-sample math.
func TestHistogramQuantileAgreesWithTimeline(t *testing.T) {
	bounds := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1}

	for _, n := range []int{1, 2, 3, 7, 20, 100} {
		r := NewRegistry()
		h := r.Histogram("lat_seconds", "", bounds)
		col := timeline.New(time.Second, nil)

		// n samples cycling through the bucket bounds, one value per
		// observation, fed identically to both implementations.
		for i := 0; i < n; i++ {
			sec := bounds[i%len(bounds)]
			h.Observe(sec)
			col.Completed(0, time.Duration(sec*float64(time.Second)))
		}
		totals := col.Finish().Totals

		checks := []struct {
			q    float64
			want float64 // ms, from timeline
		}{
			{0.50, totals.P50Millis},
			{0.95, totals.P95Millis},
			{0.99, totals.P99Millis},
		}
		for _, c := range checks {
			gotMs := h.Quantile(c.q) * 1000
			if diff := gotMs - c.want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("n=%d q=%v: histogram %vms, timeline %vms", n, c.q, gotMs, c.want)
			}
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("taskbench_jobs_completed_total", "Jobs completed.")
	c.Add(3)
	g := r.Gauge("taskbench_queue_depth", "Queue depth.")
	g.Set(2)
	r.GaugeFunc("taskbench_workers_live", "Live workers.", func() float64 { return 4 })
	v := r.CounterVec("taskbench_config_cache_hits_total", "Cache hits by shape.", "shape")
	v.With(`odd"shape\n`).Add(2)
	h := r.Histogram("taskbench_job_latency_seconds", "Job latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP taskbench_jobs_completed_total Jobs completed.\n# TYPE taskbench_jobs_completed_total counter\ntaskbench_jobs_completed_total 3\n",
		"# TYPE taskbench_queue_depth gauge\ntaskbench_queue_depth 2\n",
		"# TYPE taskbench_workers_live gauge\ntaskbench_workers_live 4\n",
		`taskbench_config_cache_hits_total{shape="odd\"shape\\n"} 2`,
		"taskbench_job_latency_seconds_bucket{le=\"0.01\"} 1\n",
		"taskbench_job_latency_seconds_bucket{le=\"0.1\"} 2\n",
		"taskbench_job_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"taskbench_job_latency_seconds_sum 5.055\n",
		"taskbench_job_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Families must be sorted by name for stable scrapes.
	iHits := strings.Index(out, "taskbench_config_cache_hits_total")
	iLat := strings.Index(out, "taskbench_job_latency_seconds")
	iQueue := strings.Index(out, "taskbench_queue_depth")
	if !(iHits < iLat && iLat < iQueue) {
		t.Errorf("families not sorted: hits=%d lat=%d queue=%d", iHits, iLat, iQueue)
	}
}

func TestSnapshotFlattensEverything(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(1)
	r.CounterVec("b_total", "", "shape").With("s1").Add(2)
	r.Gauge("g", "").Set(3)
	r.GaugeFunc("gf", "", func() float64 { return 4.5 })
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)

	s := r.TakeSnapshot(time.Unix(0, 42))
	if s.UnixNanos != 42 {
		t.Fatalf("unix_nanos = %d", s.UnixNanos)
	}
	if s.Counters["a_total"] != 1 || s.Counters["b_total{shape=s1}"] != 2 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if s.Gauges["g"] != 3 || s.Gauges["gf"] != 4.5 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	hd, ok := s.Histograms["h_seconds"]
	if !ok || hd.Count != 1 || hd.Counts[0] != 1 {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
}

func TestRingRetentionBounds(t *testing.T) {
	r := NewRing(3)
	for i := int64(1); i <= 5; i++ {
		r.Add(Snapshot{UnixNanos: i})
	}
	got := r.Snapshots()
	if len(got) != 3 || r.Len() != 3 {
		t.Fatalf("retained %d snapshots, want 3", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].UnixNanos != want {
			t.Fatalf("ring order = %v", got)
		}
	}
}

func TestCollectorSamplesAndStops(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	g.Set(9)
	c := StartCollector(r, 5*time.Millisecond, 10)
	defer c.Stop()

	// The first snapshot is immediate: a fresh coordinator never
	// serves an empty ring.
	if c.Ring().Len() == 0 {
		t.Fatal("no immediate snapshot on start")
	}
	deadline := time.After(2 * time.Second)
	for c.Ring().Len() < 3 {
		select {
		case <-deadline:
			t.Fatalf("collector stuck at %d snapshots", c.Ring().Len())
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop()
	c.Stop() // idempotent
	snaps := c.Ring().Snapshots()
	if snaps[0].Gauges["g"] != 9 {
		t.Fatalf("snapshot gauges = %+v", snaps[0].Gauges)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.5, 1})
	c := r.Counter("c_total", "")
	v := r.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.25)
				c.Inc()
				v.With("x").Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 || v.Total() != 8000 {
		t.Fatalf("lost updates: hist=%d counter=%d vec=%d", h.Count(), c.Value(), v.Total())
	}
	if sum := h.Sum(); sum != 2000 {
		t.Fatalf("sum = %v, want 2000", sum)
	}
}
