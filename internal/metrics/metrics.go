// Package metrics is the coordinator-side instrumentation registry:
// counters, gauges and fixed-bucket latency histograms fed from the
// scheduler hot paths, rendered on demand as Prometheus text
// exposition (prom.go) and sampled periodically into a bounded ring of
// snapshots (snapshot.go) so a scrape sees history, not just an
// instant.
//
// The package is deliberately hand-rolled — no client_golang, no new
// dependencies — and deliberately cheap on the write side: counter and
// histogram updates are single atomic operations, so instrumentation
// lives on the coordinator's control plane without ever touching the
// zero-allocation data plane the benchmark exists to measure.
//
// Lock ordering: the registry mutex is taken by registration, render
// and snapshot only. Instrument updates (Inc, Add, Set, Observe) are
// lock-free; CounterVec.With takes only the vec's own mutex. Gauge
// functions run during render/snapshot with the registry mutex held,
// so a gauge function may take its owner's locks but an instrument
// owner must never call registry-level methods while holding a lock a
// gauge function also takes.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero Counter is not
// usable; obtain one from Registry.Counter or CounterVec.With.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and are
// ignored: a counter never goes down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// gaugeFunc is a gauge computed at render/snapshot time — the right
// shape for values the owner already maintains under its own locks
// (queue depth, fleet size, heartbeat age).
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// CounterVec is a family of counters partitioned by one label — the
// per-shape config cache counters. Children are created on first use
// and live for the registry's lifetime (shape cardinality is bounded
// by the coordinator's MaxConfigs-style caps, not by traffic).
type CounterVec struct {
	name, help, label string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the label value, creating it on
// first use. Safe for concurrent use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[value]
	if c == nil {
		c = &Counter{name: v.name, help: v.help}
		v.children[value] = c
	}
	return c
}

// Total sums every child — the aggregate the wire-level StatsInfo
// carries when the per-label split would not fit a flat snapshot.
func (v *CounterVec) Total() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var sum int64
	for _, c := range v.children {
		sum += c.Value()
	}
	return sum
}

// snapshotChildren returns (label value, count) pairs sorted by label.
func (v *CounterVec) snapshotChildren() []labeledValue {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]labeledValue, 0, len(v.children))
	for value, c := range v.children {
		out = append(out, labeledValue{value, c.Value()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].label < out[b].label })
	return out
}

type labeledValue struct {
	label string
	value int64
}

// Histogram is a fixed-bucket histogram of float64 observations
// (latencies in seconds, by convention). Buckets are cumulative-le in
// exposition but stored as per-bucket counts; bounds are upper bounds,
// with an implicit +Inf overflow bucket. Observe is two atomic adds
// plus a CAS loop for the sum — safe for concurrent use, cheap enough
// for the control plane's per-job paths.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits of the observation sum
}

// LatencyBuckets is the default latency bucket ladder, in seconds:
// 1ms to 5 minutes, roughly 2.5× per step — wide enough that a
// cluster job (milliseconds to minutes) lands in a meaningful bucket
// at both ends.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le semantics
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns the nearest-rank q-quantile (0 < q <= 1) as the
// upper bound of the bucket holding the rank'th observation — the
// same nearest-rank convention internal/timeline uses over raw
// samples, so the two agree whenever observations sit on bucket
// bounds. An observation past the last bound reports the last finite
// bound (the histogram cannot say more). Returns 0 when empty;
// renderers show "-" for an empty histogram, never a fabricated 0.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Snapshot captures a consistent-enough view of the histogram: counts
// are read once each, so a snapshot taken mid-Observe may be off by
// the in-flight observation but never corrupt.
func (h *Histogram) Snapshot() HistogramData {
	d := HistogramData{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		d.Counts[i] = c
		d.Count += c
	}
	return d
}

// HistogramData is a point-in-time copy of a histogram: per-bucket
// counts (not cumulative), the implicit overflow bucket last.
type HistogramData struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is the +Inf overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile is the nearest-rank quantile over the bucketed counts; see
// Histogram.Quantile for the convention.
func (d HistogramData) Quantile(q float64) float64 {
	if d.Count == 0 || len(d.Bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(d.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range d.Counts {
		cum += c
		if cum >= rank {
			if i < len(d.Bounds) {
				return d.Bounds[i]
			}
			break
		}
	}
	return d.Bounds[len(d.Bounds)-1]
}

// Registry holds named instruments. Registration happens at
// construction time (duplicate names panic: a name collision is a
// programming error, not a runtime condition); rendering and
// snapshotting iterate instruments sorted by name.
type Registry struct {
	mu    sync.Mutex
	names map[string]struct{}

	counters   []*Counter
	gauges     []*Gauge
	gaugeFns   []*gaugeFunc
	vecs       []*CounterVec
	histograms []*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]struct{}{}}
}

func (r *Registry) claim(name string) {
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.names[name] = struct{}{}
}

// Counter registers and returns a counter. Counter names end in
// _total by Prometheus convention; the registry does not enforce it.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers and returns an integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	g := &Gauge{name: name, help: help}
	r.gauges = append(r.gauges, g)
	return g
}

// GaugeFunc registers a gauge computed by fn at render/snapshot time.
// fn runs with the registry mutex held; see the package comment for
// the lock-ordering contract.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.gaugeFns = append(r.gaugeFns, &gaugeFunc{name: name, help: help, fn: fn})
}

// CounterVec registers a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	v := &CounterVec{name: name, help: help, label: label, children: map[string]*Counter{}}
	r.vecs = append(r.vecs, v)
	return v
}

// Histogram registers a fixed-bucket histogram. bounds must be sorted
// ascending; nil selects LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) || len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q: bounds must be non-empty and sorted", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.histograms = append(r.histograms, h)
	return h
}
