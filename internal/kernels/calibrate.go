package kernels

import (
	"runtime"
	"sync"
	"time"
)

// Calibration holds empirically measured peak rates for the machine the
// benchmark is running on. The paper calibrates 100% efficiency against
// the best measured FLOP/s (1.26 TFLOP/s on a Cori Haswell node) rather
// than a theoretical number (§5.1); we do the same.
type Calibration struct {
	// FlopsPerSecondPerCore is the single-core compute-bound kernel
	// throughput.
	FlopsPerSecondPerCore float64
	// BytesPerSecondPerCore is the single-core memory-bound kernel
	// throughput (read+write bytes).
	BytesPerSecondPerCore float64
	// Cores is the number of cores the calibration assumed.
	Cores int
}

// PeakFlops returns the machine peak FLOP/s assuming linear scaling
// across the calibrated core count.
func (c Calibration) PeakFlops() float64 {
	return c.FlopsPerSecondPerCore * float64(c.Cores)
}

// PeakBytes returns the machine peak B/s across the calibrated cores.
func (c Calibration) PeakBytes() float64 {
	return c.BytesPerSecondPerCore * float64(c.Cores)
}

var (
	calOnce sync.Once
	cal     Calibration
)

// Calibrate measures single-core kernel throughput on the current
// machine. The result is cached for the lifetime of the process: Task
// Bench efficiency numbers must all be computed against the same peak.
func Calibrate() Calibration {
	calOnce.Do(func() {
		cal = measure()
	})
	return cal
}

func measure() Calibration {
	cores := runtime.GOMAXPROCS(0)

	// Compute-bound: run enough iterations to dominate timer overhead.
	const computeIters = 2_000_000
	start := time.Now()
	keep(executeCompute(computeIters))
	computeElapsed := time.Since(start)
	flops := float64(computeIters) * FlopsPerIteration / computeElapsed.Seconds()

	// Memory-bound: stream through an L2-busting working set.
	scratch := NewScratch(8 << 20)
	const memIters = 64
	span := int64(1 << 20)
	start = time.Now()
	keep(executeMemory(memIters, span, scratch))
	memElapsed := time.Since(start)
	bytes := float64(memIters) * float64(span) * 2 / memElapsed.Seconds()

	return Calibration{
		FlopsPerSecondPerCore: flops,
		BytesPerSecondPerCore: bytes,
		Cores:                 cores,
	}
}

// EstimateDuration predicts how long a kernel invocation will take on a
// calibrated core. The discrete-event simulator uses this to convert a
// kernel configuration into a task duration without executing it.
func (c Calibration) EstimateDuration(cfg Config) time.Duration {
	switch cfg.Type {
	case Empty:
		return 0
	case BusyWait:
		return cfg.WaitDuration
	case ComputeBound, LoadImbalance:
		if c.FlopsPerSecondPerCore <= 0 {
			return 0
		}
		flops := float64(cfg.Iterations) * FlopsPerIteration
		return time.Duration(flops / c.FlopsPerSecondPerCore * float64(time.Second))
	case MemoryBound:
		if c.BytesPerSecondPerCore <= 0 {
			return 0
		}
		bytes := float64(cfg.Iterations) * float64(cfg.SpanBytes) * 2
		return time.Duration(bytes / c.BytesPerSecondPerCore * float64(time.Second))
	default:
		return 0
	}
}
