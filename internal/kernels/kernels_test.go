package kernels

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTypeStringsRoundTrip(t *testing.T) {
	for _, typ := range []Type{Empty, BusyWait, ComputeBound, MemoryBound, LoadImbalance} {
		back, err := ParseType(typ.String())
		if err != nil || back != typ {
			t.Errorf("round trip of %v failed: %v, %v", typ, back, err)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("ParseType accepted bogus name")
	}
}

func TestConfigValidate(t *testing.T) {
	valid := []Config{
		{Type: Empty},
		{Type: BusyWait, WaitDuration: time.Microsecond},
		{Type: ComputeBound, Iterations: 10},
		{Type: MemoryBound, Iterations: 10, SpanBytes: 64},
		{Type: LoadImbalance, Iterations: 10, ImbalanceFactor: 1},
	}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	invalid := []Config{
		{Type: Type(42)},
		{Type: ComputeBound, Iterations: -1},
		{Type: MemoryBound, Iterations: 10},
		{Type: BusyWait, WaitDuration: -time.Second},
		{Type: LoadImbalance, ImbalanceFactor: 2},
		{Type: LoadImbalance, ImbalanceFactor: -0.5},
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

func TestFlopsPerTask(t *testing.T) {
	c := Config{Type: ComputeBound, Iterations: 100}
	if got := c.FlopsPerTask(); got != 100*FlopsPerIteration {
		t.Errorf("FlopsPerTask = %v, want %v", got, 100*FlopsPerIteration)
	}
	imb := Config{Type: LoadImbalance, Iterations: 100, ImbalanceFactor: 1}
	if got := imb.FlopsPerTask(); got != 100*FlopsPerIteration*0.5 {
		t.Errorf("imbalanced FlopsPerTask = %v, want half", got)
	}
	if got := (Config{Type: Empty}).FlopsPerTask(); got != 0 {
		t.Errorf("empty FlopsPerTask = %v, want 0", got)
	}
}

func TestBytesPerTask(t *testing.T) {
	c := Config{Type: MemoryBound, Iterations: 4, SpanBytes: 256}
	if got := c.BytesPerTask(); got != 4*256*2 {
		t.Errorf("BytesPerTask = %v, want %v", got, 4*256*2)
	}
	if got := (Config{Type: ComputeBound}).BytesPerTask(); got != 0 {
		t.Errorf("compute BytesPerTask = %v, want 0", got)
	}
}

func TestComputeKernelScalesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	timeIters := func(n int64) time.Duration {
		start := time.Now()
		keep(executeCompute(n))
		return time.Since(start)
	}
	// Warm up, then compare 1x vs 4x.
	timeIters(200_000)
	t1 := timeIters(400_000)
	t4 := timeIters(1_600_000)
	ratio := float64(t4) / float64(t1)
	if ratio < 2 || ratio > 8 {
		t.Errorf("4x iterations took %.1fx the time, want ≈ 4x", ratio)
	}
}

func TestMemoryKernelConstantWorkingSet(t *testing.T) {
	s := NewScratch(1 << 16)
	// Streaming more iterations than fit in the buffer must wrap, not
	// grow the working set.
	before := s.Bytes()
	keep(executeMemory(64, 4096, s))
	if s.Bytes() != before {
		t.Errorf("working set changed from %d to %d bytes", before, s.Bytes())
	}
}

func TestMemoryKernelPositionAdvances(t *testing.T) {
	s := NewScratch(1 << 12)
	keep(executeMemory(1, 64, s))
	if s.pos != 8 {
		t.Errorf("stream position = %d, want 8 words", s.pos)
	}
	s.Reset()
	if s.pos != 0 {
		t.Error("Reset did not rewind position")
	}
}

func TestMemoryKernelNilAndEmptyScratch(t *testing.T) {
	if got := executeMemory(10, 64, nil); got != 0 {
		t.Errorf("nil scratch returned %v, want 0", got)
	}
	if got := executeMemory(10, 64, NewScratch(0)); got != 0 {
		t.Errorf("empty scratch returned %v, want 0", got)
	}
}

func TestBusyWaitDuration(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	start := time.Now()
	executeBusyWait(2 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("busy wait returned after %v, want >= 2ms", elapsed)
	}
	executeBusyWait(0) // must not hang
}

func TestImbalancedIterations(t *testing.T) {
	c := Config{Type: LoadImbalance, Iterations: 1000, ImbalanceFactor: 1}
	if got := imbalancedIterations(c, 0); got != 0 {
		t.Errorf("mult 0 → %d iterations, want 0", got)
	}
	if got := imbalancedIterations(c, 0.5); got != 500 {
		t.Errorf("mult 0.5 → %d iterations, want 500", got)
	}
	half := Config{Type: LoadImbalance, Iterations: 1000, ImbalanceFactor: 0.5}
	if got := imbalancedIterations(half, 0); got != 500 {
		t.Errorf("factor 0.5, mult 0 → %d iterations, want 500", got)
	}
	balanced := Config{Type: LoadImbalance, Iterations: 1000, ImbalanceFactor: 0}
	if got := imbalancedIterations(balanced, 0.123); got != 1000 {
		t.Errorf("factor 0 → %d iterations, want 1000", got)
	}
}

// Property: imbalanced iteration counts stay within [iters*(1-f), iters].
func TestImbalancedIterationsBoundsProperty(t *testing.T) {
	f := func(itersRaw uint16, factorRaw, multRaw uint8) bool {
		iters := int64(itersRaw)
		factor := float64(factorRaw) / 255
		mult := float64(multRaw) / 256
		c := Config{Type: LoadImbalance, Iterations: iters, ImbalanceFactor: factor}
		got := imbalancedIterations(c, mult)
		lo := int64(float64(iters) * (1 - factor))
		return got >= lo-1 && got <= iters
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecuteDispatch(t *testing.T) {
	// Every kernel type must run without panicking.
	s := NewScratch(4096)
	Execute(Config{Type: Empty}, nil, 0)
	Execute(Config{Type: BusyWait, WaitDuration: time.Microsecond}, nil, 0)
	Execute(Config{Type: ComputeBound, Iterations: 10}, nil, 0)
	Execute(Config{Type: MemoryBound, Iterations: 2, SpanBytes: 64}, s, 0)
	Execute(Config{Type: LoadImbalance, Iterations: 10, ImbalanceFactor: 1}, nil, 0.5)

	defer func() {
		if recover() == nil {
			t.Error("Execute did not panic on invalid type")
		}
	}()
	Execute(Config{Type: Type(42)}, nil, 0)
}

func TestCalibrate(t *testing.T) {
	c := Calibrate()
	if c.FlopsPerSecondPerCore <= 0 || c.BytesPerSecondPerCore <= 0 || c.Cores <= 0 {
		t.Fatalf("implausible calibration %+v", c)
	}
	if c.PeakFlops() != c.FlopsPerSecondPerCore*float64(c.Cores) {
		t.Error("PeakFlops inconsistent")
	}
	if c.PeakBytes() != c.BytesPerSecondPerCore*float64(c.Cores) {
		t.Error("PeakBytes inconsistent")
	}
	// Cached: second call returns identical values.
	if c2 := Calibrate(); c2 != c {
		t.Error("Calibrate not cached")
	}
}

func TestEstimateDuration(t *testing.T) {
	c := Calibration{FlopsPerSecondPerCore: 1e9, BytesPerSecondPerCore: 1e9, Cores: 4}
	compute := Config{Type: ComputeBound, Iterations: 1_000_000}
	want := time.Duration(float64(compute.Iterations) * FlopsPerIteration)
	if got := c.EstimateDuration(compute); got != want {
		t.Errorf("compute estimate = %v, want %v", got, want)
	}
	mem := Config{Type: MemoryBound, Iterations: 10, SpanBytes: 1000}
	if got := c.EstimateDuration(mem); got != 20*time.Microsecond {
		t.Errorf("memory estimate = %v, want 20µs", got)
	}
	bw := Config{Type: BusyWait, WaitDuration: 3 * time.Millisecond}
	if got := c.EstimateDuration(bw); got != 3*time.Millisecond {
		t.Errorf("busy wait estimate = %v, want 3ms", got)
	}
	if got := c.EstimateDuration(Config{Type: Empty}); got != 0 {
		t.Errorf("empty estimate = %v, want 0", got)
	}
	var zero Calibration
	if zero.EstimateDuration(compute) != 0 {
		t.Error("zero calibration should estimate 0")
	}
}

func TestScratchBytes(t *testing.T) {
	if got := NewScratch(1000).Bytes(); got != 1000/8*8 {
		t.Errorf("Bytes = %d, want %d", got, 1000/8*8)
	}
	if got := (*Scratch)(nil).Bytes(); got != 0 {
		t.Errorf("nil Bytes = %d, want 0", got)
	}
	NewScratch(-5) // must not panic
}
