package kernels

// Scratch is a task's persistent working set for the memory-bound
// kernel. The paper allocates one scratch buffer per column of the task
// graph; the buffer survives across timesteps so its total size — not
// the per-task iteration count — determines cache behaviour.
//
// The buffer is kept as float64 words so the memory kernel streams
// through it without per-access type conversion.
type Scratch struct {
	words []float64
	pos   int
}

// NewScratch allocates a working set of approximately the given number
// of bytes (rounded down to whole float64 words) and initializes it to
// a non-trivial pattern so stores cannot be elided.
func NewScratch(bytes int64) *Scratch {
	n := int(bytes / 8)
	if n < 0 {
		n = 0
	}
	s := &Scratch{words: make([]float64, n)}
	for i := range s.words {
		s.words[i] = 1.0 + float64(i%97)/97.0
	}
	return s
}

// Bytes returns the size of the working set in bytes.
func (s *Scratch) Bytes() int64 {
	if s == nil {
		return 0
	}
	return int64(len(s.words)) * 8
}

// Reset rewinds the stream position to the start of the buffer. Tests
// use it to make kernel runs reproducible.
func (s *Scratch) Reset() {
	if s != nil {
		s.pos = 0
	}
}
