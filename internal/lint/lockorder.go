package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the coordinator's documented lock hierarchy from a
// declarative ordering table. Locks must be acquired in strictly
// increasing rank; acquiring a lock whose rank is less than or equal to
// any held lock's rank — directly, or by calling a function whose
// (transitive) acquire set contains one — is a violation.
//
// The hierarchy (see DESIGN.md §14 and the internal/metrics package
// comment):
//
//	rank 10  cluster.configEntry.lock  per-shape run lock (a 1-buffered
//	         channel: a send acquires, a receive releases)
//	rank 20  metrics.Registry.mu       held across render/snapshot and
//	         while gauge functions run
//	rank 25  metrics.CounterVec.mu     CounterVec.With must run outside
//	         c.mu (the runJob cache-miss contract)
//	rank 30  cluster.Coordinator.mu    taken by gauge functions, so
//	         coordinator code must never call registry-level methods
//	         while holding it
//	rank 40  cluster.workerConn.mu, cluster.clientConn.mu  leaf locks
//
// Gauge closures passed to Registry.GaugeFunc are analyzed as if
// metrics.Registry.mu were already held, because that is how the
// registry runs them. Branch bodies are analyzed with a copy of the
// held set; function facts carry each function's transitive acquire
// set across packages.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the coordinator's declarative lock hierarchy",
	Run:  runLockOrder,
}

type lockKey struct {
	pkg, typ, field string
}

type lockInfo struct {
	rank int
	name string
	ch   bool // a channel used as a lock: send acquires, receive releases
}

var lockOrderTable = map[lockKey]lockInfo{
	{"taskbench/internal/cluster", "configEntry", "lock"}: {10, "configEntry.lock (per-shape run lock)", true},
	{"taskbench/internal/metrics", "Registry", "mu"}:      {20, "metrics.Registry.mu", false},
	{"taskbench/internal/metrics", "CounterVec", "mu"}:    {25, "metrics.CounterVec.mu", false},
	{"taskbench/internal/cluster", "Coordinator", "mu"}:   {30, "cluster.Coordinator.mu", false},
	{"taskbench/internal/cluster", "workerConn", "mu"}:    {40, "cluster.workerConn.mu", false},
	{"taskbench/internal/cluster", "clientConn", "mu"}:    {40, "cluster.clientConn.mu", false},
}

// registryMu is the lock implicitly held while gauge functions run.
var registryMu = lockKey{"taskbench/internal/metrics", "Registry", "mu"}

type lockAcquireSet map[lockKey]bool

func runLockOrder(pass *Pass) error {
	w := &lockWalker{pass: pass, local: map[*types.Func]lockAcquireSet{}, localCalls: map[*types.Func][]*types.Func{}}

	// Phase 1: per-function direct acquire sets and the local call
	// graph, then the transitive closure (imported facts are already
	// complete, because imports are analyzed first).
	type declFunc struct {
		obj *types.Func
		fd  *ast.FuncDecl
	}
	var decls []declFunc
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls = append(decls, declFunc{obj, fd})
			w.collectAcquires(obj, fd.Body)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			set := w.local[d.obj]
			for _, callee := range w.localCalls[d.obj] {
				for k := range w.acquireSet(callee) {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}
	for _, d := range decls {
		pass.ExportFact(d.obj, w.local[d.obj])
	}

	// Phase 2: held-set walk with complete facts.
	for _, d := range decls {
		w.checkBody(d.fd.Body, map[lockKey]token.Pos{})
	}
	return nil
}

type lockWalker struct {
	pass       *Pass
	local      map[*types.Func]lockAcquireSet
	localCalls map[*types.Func][]*types.Func
	gaugeLits  map[*ast.FuncLit]bool
}

// lockField resolves expr to a lock in the ordering table: a selector
// of a field listed there, e.g. c.mu or e.lock.
func (w *lockWalker) lockField(expr ast.Expr) (lockKey, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false
	}
	s, ok := w.pass.TypesInfo.Selections[sel]
	if !ok {
		return lockKey{}, false
	}
	if _, ok := s.Obj().(*types.Var); !ok {
		return lockKey{}, false
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return lockKey{}, false
	}
	key := lockKey{named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name}
	_, listed := lockOrderTable[key]
	return key, listed
}

// callTarget resolves a call to a statically-known function, skipping
// interface dispatch.
func (w *lockWalker) callTarget(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := w.pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := w.pass.TypesInfo.Selections[f]; ok {
			if m, ok := sel.Obj().(*types.Func); ok {
				if recv := m.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type().Underlying()) {
					return nil
				}
				return m
			}
			return nil
		}
		fn, _ := w.pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// mutexOp classifies a call as a Lock/Unlock-style operation on a
// table-listed lock.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (key lockKey, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockKey{}, false, false
	}
	key, listed := w.lockField(sel.X)
	return key, acquire, listed
}

// collectAcquires records every table-listed lock a function body may
// acquire (mutex Lock/RLock and run-lock channel sends), excluding
// nested closures (they run in their own context), plus the local
// static callees for the closure pass.
func (w *lockWalker) collectAcquires(obj *types.Func, body *ast.BlockStmt) {
	set := lockAcquireSet{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if key, ok := w.lockField(n.Chan); ok && lockOrderTable[key].ch {
				set[key] = true
			}
		case *ast.CallExpr:
			if key, acquire, ok := w.mutexOp(n); ok {
				if acquire {
					set[key] = true
				}
				return true
			}
			if fn := w.callTarget(n); fn != nil && w.pass.Session.InSession(fn.Pkg()) {
				w.localCalls[obj] = append(w.localCalls[obj], fn)
			}
		}
		return true
	})
	w.local[obj] = set
}

// acquireSet returns fn's transitive acquire set from the local map or
// the cross-package facts.
func (w *lockWalker) acquireSet(fn *types.Func) lockAcquireSet {
	if s, ok := w.local[fn]; ok {
		return s
	}
	if v, ok := w.pass.ImportFact(fn); ok {
		return v.(lockAcquireSet)
	}
	return nil
}

// checkAcquire reports a violation if taking key while any held lock
// has an equal or higher rank.
func (w *lockWalker) checkAcquire(pos token.Pos, key lockKey, held map[lockKey]token.Pos) {
	info := lockOrderTable[key]
	for h := range held {
		hinfo := lockOrderTable[h]
		switch {
		case h == key:
			w.pass.Reportf(pos, "lock order violation: acquiring %s while already holding it", info.name)
		case info.rank <= hinfo.rank:
			w.pass.Reportf(pos, "lock order violation: acquiring %s (rank %d) while holding %s (rank %d)",
				info.name, info.rank, hinfo.name, hinfo.rank)
		}
	}
}

// checkCall reports a violation if the callee's transitive acquire set
// conflicts with the held locks.
func (w *lockWalker) checkCall(call *ast.CallExpr, fn *types.Func, held map[lockKey]token.Pos) {
	for key := range w.acquireSet(fn) {
		info := lockOrderTable[key]
		for h := range held {
			if key == h || info.rank <= lockOrderTable[h].rank {
				w.pass.Reportf(call.Pos(), "lock order violation: calling %s, which acquires %s (rank %d), while holding %s (rank %d)",
					fn.Name(), info.name, info.rank, lockOrderTable[h].name, lockOrderTable[h].rank)
			}
		}
	}
}

// checkBody walks a statement list in source order, threading the held
// set through simple statements and giving each branch body a copy.
func (w *lockWalker) checkBody(body *ast.BlockStmt, held map[lockKey]token.Pos) {
	for _, s := range body.List {
		w.checkStmt(s, held)
	}
}

func copyHeld(held map[lockKey]token.Pos) map[lockKey]token.Pos {
	cp := make(map[lockKey]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func (w *lockWalker) checkStmt(s ast.Stmt, held map[lockKey]token.Pos) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.checkBody(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.checkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		w.checkBody(s.Body, copyHeld(held))
		if s.Else != nil {
			w.checkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.checkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		w.checkBody(s.Body, copyHeld(held))
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.checkBody(s.Body, copyHeld(held))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.checkBranches(s, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held through the rest of the
		// function — exactly what the linear walk already assumes — and
		// a deferred call runs under the locks held at return, which the
		// walk cannot see; both are left alone.
	case *ast.GoStmt:
		// The goroutine runs concurrently: no ordering edge. Closures
		// inside it are still analyzed (with an empty held set).
		w.scanExpr(s.Call, map[lockKey]token.Pos{})
	default:
		w.scanStmtExprs(s, held)
	}
}

// checkBranches analyzes each clause of a switch/select with its own
// copy of the held set.
func (w *lockWalker) checkBranches(s ast.Stmt, held map[lockKey]token.Pos) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.checkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	for _, c := range clauses {
		branch := copyHeld(held)
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, stmt := range c.Body {
				w.checkStmt(stmt, branch)
			}
		case *ast.CommClause:
			if c.Comm != nil {
				// A comm-clause send on a run lock is a non-blocking
				// try-acquire: it establishes no wait-for edge, so it is
				// not checked, but the branch runs with the lock held.
				if send, ok := c.Comm.(*ast.SendStmt); ok {
					if key, ok := w.lockField(send.Chan); ok && lockOrderTable[key].ch {
						branch[key] = send.Pos()
					}
				} else {
					w.checkStmt(c.Comm, branch)
				}
			}
			for _, stmt := range c.Body {
				w.checkStmt(stmt, branch)
			}
		}
	}
}

// scanStmtExprs processes a simple statement: lock channel sends and
// receives, then every call expression inside it, in source order.
func (w *lockWalker) scanStmtExprs(s ast.Stmt, held map[lockKey]token.Pos) {
	if send, ok := s.(*ast.SendStmt); ok {
		if key, ok := w.lockField(send.Chan); ok && lockOrderTable[key].ch {
			w.checkAcquire(send.Pos(), key, held)
			held[key] = send.Pos()
			return
		}
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.analyzeFuncLit(n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key, ok := w.lockField(n.X); ok && lockOrderTable[key].ch {
					delete(held, key)
				}
			}
		case *ast.CallExpr:
			w.handleCall(n, held)
		}
		return true
	})
}

// scanExpr processes calls inside one expression.
func (w *lockWalker) scanExpr(e ast.Expr, held map[lockKey]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.analyzeFuncLit(n)
			return false
		case *ast.CallExpr:
			w.handleCall(n, held)
		}
		return true
	})
}

// handleCall applies one call's effect on the held set: mutex ops
// mutate it, gauge-function registrations get their closure analyzed
// under the registry lock, and other static calls are checked against
// their acquire facts.
func (w *lockWalker) handleCall(call *ast.CallExpr, held map[lockKey]token.Pos) {
	if key, acquire, ok := w.mutexOp(call); ok {
		if acquire {
			w.checkAcquire(call.Pos(), key, held)
			held[key] = call.Pos()
		} else {
			delete(held, key)
		}
		return
	}
	fn := w.callTarget(call)
	if fn == nil {
		return
	}
	if fn.Name() == "GaugeFunc" && fn.Pkg() != nil && fn.Pkg().Path() == registryMu.pkg {
		if lit, ok := lastFuncLit(call.Args); ok {
			if w.gaugeLits == nil {
				w.gaugeLits = map[*ast.FuncLit]bool{}
			}
			w.gaugeLits[lit] = true
		}
	}
	w.checkCall(call, fn, held)
}

// analyzeFuncLit checks a closure body in its own context: gauge
// closures run with the registry mutex held, everything else starts
// clean.
func (w *lockWalker) analyzeFuncLit(lit *ast.FuncLit) {
	held := map[lockKey]token.Pos{}
	if w.gaugeLits[lit] {
		held[registryMu] = lit.Pos()
	}
	w.checkBody(lit.Body, held)
}

// lastFuncLit returns the trailing function-literal argument, the
// position Registry.GaugeFunc takes its gauge in.
func lastFuncLit(args []ast.Expr) (*ast.FuncLit, bool) {
	if len(args) == 0 {
		return nil, false
	}
	lit, ok := ast.Unparen(args[len(args)-1]).(*ast.FuncLit)
	return lit, ok
}
