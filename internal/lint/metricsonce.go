package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// MetricsOnce keeps metrics registration from panicking at runtime: the
// registry treats a duplicate name as a programming error, so the
// analyzer requires every Registry.Counter / Gauge / GaugeFunc /
// CounterVec / Histogram call to use a string literal or named string
// constant as its name (a computed name defeats static duplicate
// detection), forbids registration inside a for/range loop (the
// canonical way to register the same name twice), and flags two
// registrations of the same constant name within one function body.
var MetricsOnce = &Analyzer{
	Name: "metricsonce",
	Doc:  "metrics registration must use constant names, stay out of loops, and never duplicate a name",
	Run:  runMetricsOnce,
}

// metricsPkgPath owns the Registry type whose registration methods are
// checked.
const metricsPkgPath = "taskbench/internal/metrics"

var registrationMethods = map[string]bool{
	"Counter":    true,
	"Gauge":      true,
	"GaugeFunc":  true,
	"CounterVec": true,
	"Histogram":  true,
}

func runMetricsOnce(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRegistrations(pass, fd.Body)
		}
	}
	return nil
}

// checkRegistrations walks one function body tracking loop depth and
// the constant names already registered in it.
func checkRegistrations(pass *Pass, body *ast.BlockStmt) {
	seen := map[string]bool{}
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Init != nil {
					walk(m.Init, loopDepth)
				}
				walk(m.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				walk(m.Body, loopDepth+1)
				return false
			case *ast.CallExpr:
				if name, ok := registrationCall(pass, m); ok {
					checkOneRegistration(pass, m, name, loopDepth, seen)
				}
			}
			return true
		})
	}
	walk(body, 0)
}

// registrationCall reports whether call is a Registry registration
// method and returns the method name.
func registrationCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registrationMethods[sel.Sel.Name] {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != metricsPkgPath {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	return sel.Sel.Name, true
}

func checkOneRegistration(pass *Pass, call *ast.CallExpr, method string, loopDepth int, seen map[string]bool) {
	if loopDepth > 0 {
		pass.Reportf(call.Pos(), "metrics: Registry.%s inside a loop — a repeated name panics at runtime; register once at construction", method)
	}
	if len(call.Args) == 0 {
		return
	}
	nameArg := call.Args[0]
	tv := pass.TypesInfo.Types[nameArg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(nameArg.Pos(), "metrics: Registry.%s name must be a string literal or named string constant, not a computed value", method)
		return
	}
	name := constant.StringVal(tv.Value)
	if seen[name] {
		pass.Reportf(call.Pos(), "metrics: duplicate registration of %q in this function — the registry panics on duplicate names", name)
		return
	}
	seen[name] = true
}
