// Package lint is a self-contained static-analysis framework plus the
// taskbenchvet analyzers that enforce this repository's load-bearing
// invariants: the zero-allocation hot path (hotpathalloc), the
// coordinator's lock hierarchy (lockorder), the append-only wire
// contract (wireexhaustive) and panic-free metrics registration
// (metricsonce).
//
// The framework mirrors the golang.org/x/tools go/analysis API shape —
// Analyzer, Pass, Diagnostic, cross-package facts — but is built on the
// standard library only (go/parser, go/types, go/importer), because the
// module deliberately has zero dependencies. Packages are enumerated
// with `go list -deps -export -json`, module packages are type-checked
// from source in dependency order against one shared FileSet, and
// out-of-module imports resolve through compiler export data, so the
// whole session shares one types.Object world and facts are plain map
// lookups.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run is invoked once per package, in dependency order, so a pass
	// may rely on facts exported while analyzing its imports.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Package is one type-checked module (or testdata) package in a
// Session.
type Package struct {
	Path      string
	Dir       string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Session holds every package of one analysis run, type-checked in
// dependency order against a shared FileSet. Analyzers run over the
// packages in that order, so by the time a pass sees a call into
// another session package, that package's facts already exist.
type Session struct {
	Fset     *token.FileSet
	Packages []*Package // dependency order: imports before importers
	ByPath   map[string]*Package

	facts map[factKey]any
	state map[string]any
}

type factKey struct {
	analyzer string
	obj      types.Object
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Session   *Session
	Pkg       *Package
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ExportFact associates v with obj for this analyzer, visible to later
// passes of the same analyzer in this session.
func (p *Pass) ExportFact(obj types.Object, v any) {
	p.Session.facts[factKey{p.Analyzer.Name, obj}] = v
}

// ImportFact returns the fact previously exported for obj by this
// analyzer, if any.
func (p *Pass) ImportFact(obj types.Object) (any, bool) {
	v, ok := p.Session.facts[factKey{p.Analyzer.Name, obj}]
	return v, ok
}

// State returns analyzer-scoped session state, creating it with mk on
// first use — the place for cross-package bookkeeping that is not
// attached to a single object (e.g. the set of already-reported sites).
func (p *Pass) State(mk func() any) any {
	v, ok := p.Session.state[p.Analyzer.Name]
	if !ok {
		v = mk()
		p.Session.state[p.Analyzer.Name] = v
	}
	return v
}

// InSession reports whether pkg is one of the session's own packages —
// the module-internal test used by analyzers that follow static calls
// (testdata packages count, stdlib does not).
func (s *Session) InSession(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	_, ok := s.ByPath[pkg.Path()]
	return ok
}

// Run applies one analyzer to every package of the session and returns
// its findings sorted by position.
func (s *Session) Run(a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range s.Packages {
		pass := &Pass{
			Analyzer:  a,
			Session:   s,
			Pkg:       pkg,
			Fset:      s.Fset,
			Files:     pkg.Files,
			Types:     pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// Analyzers lists every taskbenchvet analyzer, in the order the driver
// runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		LockOrder,
		WireExhaustive,
		MetricsOnce,
	}
}

// commentDirectives returns the set of file lines whose comments carry
// the given //taskbench:<name> directive. A directive suppresses or
// marks the line it sits on and, when it is a whole-line comment, the
// line directly below it.
func commentDirectives(fset *token.FileSet, file *ast.File, directive string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, directive) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// hasDirective reports whether a declaration's doc comment carries the
// given //taskbench:<name> directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), directive) {
			return true
		}
	}
	return false
}
