package lint_test

import (
	"testing"

	"taskbench/internal/lint"
	"taskbench/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "hotpathalloc/dep", "hotpathalloc/a")
}
