package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotPathAnnotationCoverage pins the //taskbench:hotpath annotation
// set to the packages the benchmark's zero-allocation claim rests on:
// the shared-memory engine's task loop, the compiled dependence table
// and point iterator, payload fill/validate, and the tcp mesh's batch
// send and demux. An annotation removed by a refactor fails here, not
// silently in a future allocation regression.
func TestHotPathAnnotationCoverage(t *testing.T) {
	want := map[string][]string{
		"../core":         {"ExecutePoint", "WriteOutput", "checkInput", "PointDeps", "Next"},
		"../runtime/exec": {"runWorker", "Execute", "Get", "Release", "RunInto", "Send"},
		"../runtime/tcp":  {"Send", "flushTo", "demux", "deliver", "Recv"},
	}
	for dir, fns := range want {
		annotated := hotpathFuncs(t, dir)
		if len(annotated) == 0 {
			t.Errorf("%s: no //taskbench:hotpath annotations at all", dir)
			continue
		}
		for _, fn := range fns {
			if !annotated[fn] {
				t.Errorf("%s: function %s is not annotated //taskbench:hotpath", dir, fn)
			}
		}
	}
}

// hotpathFuncs parses every non-test file of dir and returns the names
// of functions whose doc comment carries the hotpath directive.
func hotpathFuncs(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	annotated := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.TrimSpace(c.Text) == "//taskbench:hotpath" {
					annotated[fd.Name.Name] = true
				}
			}
		}
	}
	return annotated
}
