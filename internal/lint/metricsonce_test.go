package lint_test

import (
	"testing"

	"taskbench/internal/lint"
	"taskbench/internal/lint/linttest"
)

func TestMetricsOnce(t *testing.T) {
	linttest.Run(t, lint.MetricsOnce, "metricsonce/a")
}
