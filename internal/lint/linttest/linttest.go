// Package linttest runs internal/lint analyzers over testdata package
// trees and checks their diagnostics against expectations written as
// comments in the sources — the analysistest convention:
//
//	v := make([]int, n) // want `make`
//
// Each `// want "regexp"` (one or more quoted regexps, double-quoted or
// backquoted) on a line demands a diagnostic on that same line whose
// message matches; every diagnostic must be demanded by some want.
// Testdata trees use the GOPATH-style layout testdata/src/<import
// path>/*.go, so fake stand-ins for real module packages (for example a
// skeletal taskbench/internal/metrics) can occupy their real import
// paths.
package linttest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"taskbench/internal/lint"
)

// Run analyzes the named packages under testdata/src and compares
// diagnostics with want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	RunDir(t, a, "testdata/src", pkgs...)
}

// RunDir is Run with an explicit source root, for suites that need
// multiple versions of the same import path (e.g. a good and a bad
// fake of taskbench/internal/wire).
func RunDir(t *testing.T, a *lint.Analyzer, srcRoot string, pkgs ...string) {
	t.Helper()
	session, err := lint.LoadTree(srcRoot, pkgs...)
	if err != nil {
		t.Fatalf("loading %v from %s: %v", pkgs, srcRoot, err)
	}
	diags, err := session.Run(a)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants, err := collectWants(session)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := session.Fset.Position(d.Pos)
		if !consumeWant(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func consumeWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.rx.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans every comment of every session file for want
// expectations. Comments are re-scanned from the file set's token data
// via each AST file's comment lists.
func collectWants(session *lint.Session) ([]*expectation, error) {
	var wants []*expectation
	for _, pkg := range session.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := session.Fset.Position(c.Pos())
					ws, err := parseWant(c.Text)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", pos, err)
					}
					for _, rx := range ws {
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return wants, nil
}

// parseWant extracts the quoted regexps of a `// want "..." "..."`
// comment, using the Go scanner so escapes and backquotes both work.
func parseWant(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(comment, "//")), "/*")
	idx := strings.Index(text, "want ")
	if idx < 0 {
		return nil, nil
	}
	rest := text[idx+len("want "):]

	var rxs []*regexp.Regexp
	var sc scanner.Scanner
	fset := token.NewFileSet()
	f := fset.AddFile("want", -1, len(rest))
	sc.Init(f, []byte(rest), nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok != token.STRING {
			break
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", lit, err)
		}
		rx, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", s, err)
		}
		rxs = append(rxs, rx)
	}
	if len(rxs) == 0 {
		return nil, fmt.Errorf("want comment with no quoted regexp: %s", comment)
	}
	return rxs, nil
}
