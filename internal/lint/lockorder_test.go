package lint_test

import (
	"testing"

	"taskbench/internal/lint"
	"taskbench/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "taskbench/internal/cluster")
}
