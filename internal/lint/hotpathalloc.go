package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the zero-allocation hot path of DESIGN.md §8:
// a function annotated //taskbench:hotpath — and every function it
// statically calls inside the module — must not allocate in steady
// state. Flagged constructs: append, make, new, map/slice/chan
// composite literals, &T{} literals, closures, go statements, string
// concatenation and string<->[]byte conversions, boxing a non-pointer
// value into an interface, and any call into fmt, errors, log, reflect
// or encoding/json.
//
// Two escape hatches keep the rule about steady state rather than
// syntax. First, allocations inside an if body or switch case that ends
// in return or panic are exempt: error paths run O(1) times, the budget
// is per-task. Second, a //taskbench:allocok comment on (or directly
// above) a line waives it — the idiom for appends into recycled
// capacity, which amortize to zero.
//
// Dynamic calls (interface methods, func values) are opaque: the
// analyzer assumes their implementations keep their own contracts.
// Stdlib calls outside the denylist are assumed allocation-free on the
// paths the hot code uses.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "hot-path functions (//taskbench:hotpath) and their static callees must not allocate",
	Run:  runHotPathAlloc,
}

// allocDenylist names packages whose every call is treated as an
// allocation (their APIs allocate by design or via reflection).
var allocDenylist = map[string]bool{
	"fmt":           true,
	"errors":        true,
	"log":           true,
	"reflect":       true,
	"encoding/json": true,
}

type allocSite struct {
	pos  token.Pos
	what string
}

type allocSummary struct {
	fn      *types.Func
	hot     bool
	sites   []allocSite
	callees []*types.Func
}

type hotpathState struct {
	reported map[*types.Func]bool
}

func runHotPathAlloc(pass *Pass) error {
	st := pass.State(func() any {
		return &hotpathState{reported: map[*types.Func]bool{}}
	}).(*hotpathState)

	local := map[*types.Func]*allocSummary{}
	var roots []*allocSummary
	for _, file := range pass.Files {
		allocok := commentDirectives(pass.Fset, file, "taskbench:allocok")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sum := summarizeAllocs(pass, obj, fd, allocok)
			local[obj] = sum
			pass.ExportFact(obj, sum)
			if sum.hot {
				roots = append(roots, sum)
			}
		}
	}

	// Walk the static call graph from every annotated root. Imports are
	// analyzed before importers, so callee summaries in other session
	// packages already exist as facts.
	lookup := func(fn *types.Func) *allocSummary {
		if s, ok := local[fn]; ok {
			return s
		}
		if v, ok := pass.ImportFact(fn); ok {
			return v.(*allocSummary)
		}
		return nil
	}
	for _, root := range roots {
		seen := map[*types.Func]bool{}
		var visit func(sum *allocSummary)
		visit = func(sum *allocSummary) {
			if seen[sum.fn] {
				return
			}
			seen[sum.fn] = true
			if !st.reported[sum.fn] {
				st.reported[sum.fn] = true
				for _, site := range sum.sites {
					if sum.fn == root.fn {
						pass.Reportf(site.pos, "hot path allocates: %s", site.what)
					} else {
						pass.Reportf(site.pos, "hot path allocates: %s (in %s, reachable from //taskbench:hotpath %s)",
							site.what, sum.fn.Name(), root.fn.Name())
					}
				}
			}
			for _, callee := range sum.callees {
				if csum := lookup(callee); csum != nil {
					visit(csum)
				}
			}
		}
		visit(root)
	}
	return nil
}

// summarizeAllocs records a function's direct allocation sites and its
// static module-internal callees, skipping cold regions (terminating
// branches) and //taskbench:allocok-waived lines.
func summarizeAllocs(pass *Pass, obj *types.Func, fd *ast.FuncDecl, allocok map[int]bool) *allocSummary {
	sum := &allocSummary{fn: obj, hot: hasDirective(fd.Doc, "//taskbench:hotpath")}
	cold := coldRanges(fd.Body)
	isCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	record := func(pos token.Pos, what string) {
		if isCold(pos) || allocok[pass.Fset.Position(pos).Line] {
			return
		}
		sum.sites = append(sum.sites, allocSite{pos, what})
	}

	sig, _ := obj.Type().(*types.Signature)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			record(n.Pos(), "func literal (closure)")
			return false // the closure body runs in its own context
		case *ast.GoStmt:
			record(n.Pos(), "go statement (new goroutine)")
			return false
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map, *types.Slice, *types.Chan:
					record(n.Pos(), "map/slice/chan composite literal")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					record(n.Pos(), "&composite literal (escapes to heap)")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n.X]; ok && isStringType(tv.Type) {
					record(n.Pos(), "string concatenation")
				}
			}
		case *ast.ReturnStmt:
			if sig != nil {
				checkBoxedResults(pass, n, sig, record)
			}
		case *ast.CallExpr:
			summarizeCall(pass, n, sum, record, isCold)
		}
		return true
	})
	return sum
}

// summarizeCall classifies one call expression: allocation-relevant
// conversion or builtin, denylisted package, boxing at the arguments,
// or a static module-internal callee to follow.
func summarizeCall(pass *Pass, call *ast.CallExpr, sum *allocSummary, record func(token.Pos, string), isCold func(token.Pos) bool) {
	// Type conversions.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		target := tv.Type
		argT := pass.TypesInfo.Types[call.Args[0]].Type
		switch {
		case types.IsInterface(target.Underlying()):
			if argT != nil && !types.IsInterface(argT.Underlying()) && !pointerShaped(argT) {
				record(call.Pos(), "conversion to interface (boxing)")
			}
		case isStringType(target) && argT != nil && isByteOrRuneSlice(argT):
			record(call.Pos(), "[]byte/[]rune to string conversion")
		case isByteOrRuneSlice(target) && argT != nil && isStringType(argT):
			record(call.Pos(), "string to []byte/[]rune conversion")
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				record(call.Pos(), "append (may grow backing array)")
			case "make":
				record(call.Pos(), "make")
			case "new":
				record(call.Pos(), "new")
			}
			return
		}
	}

	// Static callee resolution.
	var fn *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[f]; ok {
			if m, ok := sel.Obj().(*types.Func); ok {
				if recv := m.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type().Underlying()) {
					fn = nil // dynamic dispatch: opaque
				} else {
					fn = m
				}
			}
		} else {
			fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
		}
	}

	if fn != nil && fn.Pkg() != nil {
		switch {
		case pass.Session.InSession(fn.Pkg()):
			if !isCold(call.Pos()) {
				sum.callees = append(sum.callees, fn)
			}
		case allocDenylist[fn.Pkg().Path()]:
			record(call.Pos(), "call to "+fn.Pkg().Name()+"."+fn.Name())
		}
	}

	// Boxing at the call boundary: a non-pointer concrete argument
	// passed to an interface parameter escapes to the heap.
	ft := pass.TypesInfo.Types[call.Fun].Type
	if ft == nil {
		return
	}
	sigT, _ := ft.Underlying().(*types.Signature)
	if sigT == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sigT, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.Types[arg]
		if at.Type == nil || at.IsNil() || types.IsInterface(at.Type.Underlying()) || pointerShaped(at.Type) {
			continue
		}
		record(arg.Pos(), "argument boxed into interface parameter")
	}
}

// checkBoxedResults flags concrete non-pointer values returned through
// interface result types (the classic `return myErr` boxing).
func checkBoxedResults(pass *Pass, ret *ast.ReturnStmt, sig *types.Signature, record func(token.Pos, string)) {
	res := sig.Results()
	if res == nil || len(ret.Results) != res.Len() {
		return // bare return or multi-value call passthrough
	}
	for i, expr := range ret.Results {
		rt := res.At(i).Type()
		if !types.IsInterface(rt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.Types[expr]
		if at.Type == nil || at.IsNil() || types.IsInterface(at.Type.Underlying()) || pointerShaped(at.Type) {
			continue
		}
		record(expr.Pos(), "result boxed into interface return")
	}
}

// paramType returns the type of parameter i of sig, unrolling variadic
// parameters; ellipsis calls pass the slice through unchanged.
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	if sig.Variadic() && !ellipsis && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// pointerShaped reports whether boxing a value of type t into an
// interface stores the value directly (no heap allocation): pointers,
// channels, maps, funcs and unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// coldRanges collects the position ranges of branches that terminate in
// return or panic: the steady-state hot loop never takes them, so their
// allocations are O(1) error-path costs, not per-task costs.
func coldRanges(body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if terminates(n.Body.List) {
				ranges = append(ranges, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			}
			if els, ok := n.Else.(*ast.BlockStmt); ok && terminates(els.List) {
				ranges = append(ranges, [2]token.Pos{els.Pos(), els.End()})
			}
		case *ast.CaseClause:
			if terminates(n.Body) && len(n.Body) > 0 {
				ranges = append(ranges, [2]token.Pos{n.Body[0].Pos(), n.Body[len(n.Body)-1].End()})
			}
		case *ast.CommClause:
			if terminates(n.Body) && len(n.Body) > 0 {
				ranges = append(ranges, [2]token.Pos{n.Body[0].Pos(), n.Body[len(n.Body)-1].End()})
			}
		}
		return true
	})
	return ranges
}

// terminates reports whether a statement list ends in return or panic.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
