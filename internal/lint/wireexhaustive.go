package lint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
)

// WireExhaustive enforces the wire protocol's exhaustiveness and
// append-only contracts on taskbench/internal/wire:
//
//   - every Msg* message-type constant has a binary type code in the
//     msgCodes table, and no two types share a code;
//   - every Message field is written by appendMessageBody and read by
//     decodeMessageBody (a field added to the envelope but not the
//     codec would silently vanish on the binary path);
//   - the statsFields schedule lists exactly the fields of StatsInfo in
//     declaration order — reordering or removing a field breaks decode
//     against older peers, so StatsInfo is append-only;
//   - every message type appears in both golden fixtures,
//     testdata/messages.jsonl and testdata/messages.bin, so the decode
//     goldens actually cover the whole protocol.
var WireExhaustive = &Analyzer{
	Name: "wireexhaustive",
	Doc:  "wire message codes, codec field coverage, statsFields order and golden fixtures must stay exhaustive",
	Run:  runWireExhaustive,
}

// wirePkgPath is the only package the analyzer inspects.
const wirePkgPath = "taskbench/internal/wire"

// msgConst is one Msg* message-type constant.
type msgConst struct {
	name, value string
	pos         token.Pos
}

func runWireExhaustive(pass *Pass) error {
	if pass.Pkg.Path != wirePkgPath {
		return nil
	}

	// Msg* string constants, in declaration order.
	var msgs []msgConst
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, name := range vs.Names {
				obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
				if !ok || len(name.Name) < 4 || name.Name[:3] != "Msg" {
					continue
				}
				if obj.Val().Kind() != constant.String || obj.Parent() != pass.Types.Scope() {
					continue
				}
				msgs = append(msgs, msgConst{name.Name, constant.StringVal(obj.Val()), name.Pos()})
			}
			return true
		})
	}

	// The msgCodes composite literal: constant name -> byte code.
	codes := map[string]byte{}
	var codesPos token.Pos
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "msgCodes" || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				codesPos = name.Pos()
				seen := map[byte]string{}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					keyID, ok := ast.Unparen(kv.Key).(*ast.Ident)
					if !ok {
						continue
					}
					cv := pass.TypesInfo.Types[kv.Value]
					if cv.Value == nil {
						continue
					}
					code64, _ := constant.Int64Val(cv.Value)
					code := byte(code64)
					if code == 0 {
						pass.Reportf(kv.Value.Pos(), "wire: %s has binary code 0, which is reserved as invalid", keyID.Name)
					}
					if prev, dup := seen[code]; dup {
						pass.Reportf(kv.Value.Pos(), "wire: %s and %s share binary code %d", prev, keyID.Name, code)
					}
					seen[code] = keyID.Name
					codes[keyID.Name] = code
				}
			}
			return true
		})
	}
	if codesPos == token.NoPos {
		pass.Reportf(pass.Files[0].Pos(), "wire: no msgCodes table found; the binary codec cannot be checked")
		return nil
	}
	for _, m := range msgs {
		if _, ok := codes[m.name]; !ok {
			pass.Reportf(m.pos, "wire: message type %s (%q) has no binary code in msgCodes", m.name, m.value)
		}
	}

	checkCodecCoverage(pass)
	checkStatsFields(pass)
	checkGoldenFixtures(pass, msgs, codes)
	return nil
}

// checkCodecCoverage requires every Message field to be touched by both
// appendMessageBody and decodeMessageBody.
func checkCodecCoverage(pass *Pass) {
	msgStruct, fields := namedStructFields(pass, "Message")
	if msgStruct == nil {
		return
	}
	enc := fieldsTouched(pass, "appendMessageBody", msgStruct)
	dec := fieldsTouched(pass, "decodeMessageBody", msgStruct)
	if enc == nil || dec == nil {
		pass.Reportf(pass.Files[0].Pos(), "wire: appendMessageBody/decodeMessageBody not found; codec coverage cannot be checked")
		return
	}
	for _, f := range fields {
		if !enc[f.name] {
			pass.Reportf(f.pos, "wire: Message field %s is never written by appendMessageBody", f.name)
		}
		if !dec[f.name] {
			pass.Reportf(f.pos, "wire: Message field %s is never read by decodeMessageBody", f.name)
		}
	}
}

type namedField struct {
	name string
	pos  token.Pos
}

// namedStructFields returns the named struct type and its fields in
// declaration order.
func namedStructFields(pass *Pass, typeName string) (*types.Named, []namedField) {
	obj, ok := pass.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	fields := make([]namedField, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[i] = namedField{st.Field(i).Name(), st.Field(i).Pos()}
	}
	return named, fields
}

// fieldsTouched returns the set of fieldOwner's field names selected
// anywhere inside the named function, or nil if the function does not
// exist.
func fieldsTouched(pass *Pass, funcName string, owner *types.Named) map[string]bool {
	var body *ast.BlockStmt
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == funcName && fd.Recv == nil && fd.Body != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return nil
	}
	touched := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		recv := s.Recv()
		if p, ok := recv.Underlying().(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj() == owner.Obj() {
			touched[sel.Sel.Name] = true
		}
		return true
	})
	return touched
}

// checkStatsFields pins statsFields to StatsInfo's declaration order:
// the binary schedule must list every field, in order — the append-only
// contract that keeps old peers able to decode the prefix they know.
func checkStatsFields(pass *Pass) {
	_, fields := namedStructFields(pass, "StatsInfo")
	if fields == nil {
		return
	}
	var fd *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if f, ok := decl.(*ast.FuncDecl); ok && f.Name.Name == "statsFields" && f.Body != nil {
				fd = f
			}
		}
	}
	if fd == nil {
		pass.Reportf(pass.Files[0].Pos(), "wire: statsFields not found; the StatsInfo append-only contract cannot be checked")
		return
	}
	var schedule []string
	var schedulePos []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return true
		}
		if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
			schedule = append(schedule, sel.Sel.Name)
			schedulePos = append(schedulePos, sel.Pos())
		}
		return false
	})
	for i, f := range fields {
		if i >= len(schedule) {
			pass.Reportf(f.pos, "wire: StatsInfo field %s is missing from the statsFields schedule (new fields append at the end, with a ProtoVersion bump)", f.name)
			continue
		}
		if schedule[i] != f.name {
			pass.Reportf(schedulePos[i], "wire: statsFields position %d is %s, but StatsInfo declares %s there — the schedule is append-only and must match declaration order", i, schedule[i], f.name)
			return
		}
	}
	if len(schedule) > len(fields) {
		pass.Reportf(schedulePos[len(fields)], "wire: statsFields lists %d fields but StatsInfo declares only %d", len(schedule), len(fields))
	}
}

// checkGoldenFixtures requires every message type to appear in the
// golden JSONL and binary fixtures next to the package sources.
func checkGoldenFixtures(pass *Pass, msgs []msgConst, codes map[string]byte) {
	jsonlPath := filepath.Join(pass.Pkg.Dir, "testdata", "messages.jsonl")
	binPath := filepath.Join(pass.Pkg.Dir, "testdata", "messages.bin")

	jsonTypes, err := jsonlMessageTypes(jsonlPath)
	if err != nil {
		pass.Reportf(pass.Files[0].Pos(), "wire: golden JSONL fixture unreadable: %v", err)
	}
	binCodes, err := binFrameCodes(binPath)
	if err != nil {
		pass.Reportf(pass.Files[0].Pos(), "wire: golden BIN fixture unreadable: %v", err)
	}
	for _, m := range msgs {
		if jsonTypes != nil && !jsonTypes[m.value] {
			pass.Reportf(m.pos, "wire: message type %s (%q) missing from golden fixture testdata/messages.jsonl", m.name, m.value)
		}
		if binCodes != nil {
			if code, ok := codes[m.name]; ok && !binCodes[code] {
				pass.Reportf(m.pos, "wire: message type %s (code %d) missing from golden fixture testdata/messages.bin", m.name, code)
			}
		}
	}
}

// jsonlMessageTypes reads the "type" of every line of a JSONL fixture.
func jsonlMessageTypes(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	typesSeen := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &m); err == nil && m.Type != "" {
			typesSeen[m.Type] = true
		}
	}
	return typesSeen, sc.Err()
}

// binFrameCodes scans a binary golden fixture's frames (0xB1, uvarint
// body length, body = uvarint version + type code byte + fields) and
// returns the set of type codes present.
func binFrameCodes(path string) (map[byte]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	codesSeen := map[byte]bool{}
	for len(data) > 0 {
		if data[0] != 0xB1 {
			return codesSeen, nil // trailing garbage: report what was found
		}
		bodyLen, n := binary.Uvarint(data[1:])
		if n <= 0 || uint64(len(data[1+n:])) < bodyLen {
			return codesSeen, nil
		}
		body := data[1+n : 1+n+int(bodyLen)]
		if _, vn := binary.Uvarint(body); vn > 0 && vn < len(body) {
			codesSeen[body[vn]] = true
		}
		data = data[1+n+int(bodyLen):]
	}
	return codesSeen, nil
}
