package lint_test

import (
	"testing"

	"taskbench/internal/lint"
	"taskbench/internal/lint/linttest"
)

// The good and bad fakes both occupy the real wire import path, so they
// live under separate source roots.

func TestWireExhaustiveClean(t *testing.T) {
	linttest.RunDir(t, lint.WireExhaustive, "testdata/wire_good/src", "taskbench/internal/wire")
}

func TestWireExhaustiveViolations(t *testing.T) {
	linttest.RunDir(t, lint.WireExhaustive, "testdata/wire_bad/src", "taskbench/internal/wire")
}
