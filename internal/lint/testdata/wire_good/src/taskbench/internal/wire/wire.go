// Package wire is a miniature stand-in for the real
// taskbench/internal/wire with a fully consistent contract: every
// message type has a binary code, the codec touches every Message
// field, statsFields matches StatsInfo declaration order, and both
// golden fixtures cover every type.
package wire

type Message struct {
	V    int
	Type string
	Name string
	Job  uint64
}

const (
	MsgRegister = "register"
	MsgDone     = "done"
)

var msgCodes = map[string]byte{
	MsgRegister: 1,
	MsgDone:     2,
}

type StatsInfo struct {
	Workers int
	JobsRun int
}

func statsFields(s *StatsInfo) []*int {
	return []*int{&s.Workers, &s.JobsRun}
}

func appendMessageBody(b []byte, m *Message) []byte {
	b = append(b, byte(m.V), msgCodes[m.Type])
	b = append(b, byte(len(m.Name)))
	b = append(b, m.Name...)
	b = append(b, byte(m.Job))
	return b
}

func decodeMessageBody(body []byte) Message {
	var m Message
	m.V = int(body[0])
	m.Type = MsgRegister
	m.Name = string(body[3 : 3+body[2]])
	m.Job = uint64(body[len(body)-1])
	return m
}
