// Package wire is a miniature stand-in for the real
// taskbench/internal/wire with several planted contract violations: an
// orphan message type, stale golden fixtures, a codec that skips a
// field, and a statsFields schedule that disagrees with StatsInfo
// declaration order.
package wire

type Message struct {
	V     int
	Type  string
	Extra string // want `field Extra is never written by appendMessageBody` `field Extra is never read by decodeMessageBody`
}

const (
	MsgRegister = "register"
	MsgDone     = "done"   // want `missing from golden fixture testdata/messages\.jsonl` `missing from golden fixture testdata/messages\.bin`
	MsgOrphan   = "orphan" // want `has no binary code in msgCodes` `missing from golden fixture testdata/messages\.jsonl`
)

var msgCodes = map[string]byte{
	MsgRegister: 1,
	MsgDone:     2,
}

type StatsInfo struct {
	Workers int
	JobsRun int
}

func statsFields(s *StatsInfo) []*int {
	return []*int{&s.JobsRun, &s.Workers} // want `statsFields position 0 is JobsRun, but StatsInfo declares Workers there`
}

func appendMessageBody(b []byte, m *Message) []byte {
	b = append(b, byte(m.V), msgCodes[m.Type])
	return b
}

func decodeMessageBody(body []byte) Message {
	var m Message
	m.V = int(body[0])
	m.Type = MsgRegister
	return m
}
