// Package metrics is a skeletal stand-in for the real
// taskbench/internal/metrics, occupying its import path so the
// lockorder and metricsonce analyzers resolve receivers exactly as
// they do against the real module.
package metrics

import "sync"

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

type Histogram struct{}

type CounterVec struct {
	mu sync.Mutex
}

func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	return &Counter{}
}

type Registry struct {
	mu sync.Mutex
}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Counter{}
}

func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Gauge{}
}

func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
}

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &CounterVec{}
}

func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Histogram{}
}
