// Package cluster is a skeletal stand-in for the real
// taskbench/internal/cluster exercising the documented lock hierarchy:
// configEntry.lock (10) < metrics.Registry.mu (20) <
// metrics.CounterVec.mu (25) < Coordinator.mu (30) < workerConn.mu /
// clientConn.mu (40). Locks may only be acquired in increasing rank.
package cluster

import (
	"sync"

	"taskbench/internal/metrics"
)

type configEntry struct {
	lock chan struct{}
}

type workerConn struct {
	mu sync.Mutex
}

type Coordinator struct {
	mu      sync.Mutex
	reg     *metrics.Registry
	vec     *metrics.CounterVec
	queue   []int
	workers []*workerConn
}

// goodGauge follows the hierarchy: the gauge closure runs under the
// registry render lock (rank 20) and takes c.mu (rank 30) inside it.
func (c *Coordinator) goodGauge() {
	c.reg.GaugeFunc("queue_depth", "", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.queue))
	})
}

// badRegistryUnderCoordinator registers a metric while holding c.mu:
// rank 20 acquired under rank 30.
func (c *Coordinator) badRegistryUnderCoordinator() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Counter("x", "") // want `calling Counter, which acquires metrics\.Registry\.mu \(rank 20\), while holding cluster\.Coordinator\.mu \(rank 30\)`
}

// badGaugeReentry calls back into the registry from a gauge closure,
// which deadlocks against the render loop that invoked it.
func (c *Coordinator) badGaugeReentry() {
	c.reg.GaugeFunc("bad", "", func() float64 {
		c.reg.Counter("y", "") // want `calling Counter, which acquires metrics\.Registry\.mu \(rank 20\), while holding metrics\.Registry\.mu \(rank 20\)`
		return 0
	})
}

// badVecUnderCoordinator touches a CounterVec under c.mu; With must run
// outside the coordinator lock.
func (c *Coordinator) badVecUnderCoordinator() {
	c.mu.Lock()
	c.vec.With("shape") // want `calling With, which acquires metrics\.CounterVec\.mu \(rank 25\), while holding cluster\.Coordinator\.mu \(rank 30\)`
	c.mu.Unlock()
}

// goodVecOutside releases c.mu before touching the vec.
func (c *Coordinator) goodVecOutside() {
	c.mu.Lock()
	n := len(c.queue)
	c.mu.Unlock()
	if n > 0 {
		c.vec.With("shape").Inc()
	}
}

// badRunLockUnderMu acquires the per-shape run lock (rank 10, a channel
// send) while holding c.mu (rank 30).
func (c *Coordinator) badRunLockUnderMu(e *configEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.lock <- struct{}{} // want `acquiring configEntry\.lock \(per-shape run lock\) \(rank 10\) while holding cluster\.Coordinator\.mu \(rank 30\)`
}

// goodRunLock takes the run lock first, then the coordinator mutex.
func (c *Coordinator) goodRunLock(e *configEntry) {
	e.lock <- struct{}{}
	c.mu.Lock()
	c.queue = c.queue[:0]
	c.mu.Unlock()
	<-e.lock
}

// badDoubleLock re-enters its own mutex through a helper.
func (c *Coordinator) badDoubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.helperLocks() // want `calling helperLocks, which acquires cluster\.Coordinator\.mu \(rank 30\), while holding cluster\.Coordinator\.mu \(rank 30\)`
}

func (c *Coordinator) helperLocks() {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// badLeafOrder takes the coordinator lock while holding a leaf
// connection lock: rank 30 acquired under rank 40.
func (c *Coordinator) badLeafOrder(w *workerConn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	c.mu.Lock() // want `acquiring cluster\.Coordinator\.mu \(rank 30\) while holding cluster\.workerConn\.mu \(rank 40\)`
	c.mu.Unlock()
}

// goodLeafOrder takes the coordinator lock, then the leaf lock.
func (c *Coordinator) goodLeafOrder(w *workerConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.mu.Lock()
	w.mu.Unlock()
}

// goodBranches releases on the early-exit path; the steady path keeps
// the lock to the end. Neither branch misorders anything.
func (c *Coordinator) goodBranches(stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.queue = append(c.queue, 1)
	c.mu.Unlock()
}

// goodTryAcquire models the select-based non-blocking try-acquire of a
// run lock: the send arm holds the lock inside the clause only.
func (c *Coordinator) goodTryAcquire(e *configEntry) bool {
	select {
	case e.lock <- struct{}{}:
		<-e.lock
		return true
	default:
		return false
	}
}
