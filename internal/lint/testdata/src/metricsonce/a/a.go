package a

import (
	"strconv"

	"taskbench/internal/metrics"
)

const metricGood = "good_total"

// Setup registers constant names once, outside any loop: all fine.
func Setup(r *metrics.Registry) {
	r.Counter(metricGood, "help")
	r.Gauge("depth", "help")
	r.Histogram("latency", "help", nil)
	r.CounterVec("by_shape", "help", "shape")
}

// LoopRegistration would panic on the second iteration at runtime.
func LoopRegistration(r *metrics.Registry, names []string) {
	for _, n := range names {
		r.Counter(n, "help") // want `Registry\.Counter inside a loop` `string literal or named string constant`
	}
}

// Duplicate registers the same name twice in one constructor.
func Duplicate(r *metrics.Registry) {
	r.Counter("dup_total", "help")
	r.Counter("dup_total", "help") // want `duplicate registration of "dup_total"`
}

// Computed builds the metric name at runtime, defeating static
// duplicate detection.
func Computed(r *metrics.Registry, shard int) {
	r.Gauge("shard_"+strconv.Itoa(shard), "help") // want `string literal or named string constant`
}
