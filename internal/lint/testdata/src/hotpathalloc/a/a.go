package a

import (
	"fmt"

	"hotpathalloc/dep"
)

var sink int

// Hot is an annotated root: every allocating construct in its steady
// state must be flagged.
//
//taskbench:hotpath
func Hot(xs []int, n int, s string) int {
	xs = append(xs, n)            // want `append`
	m := make([]int, n)           // want `make`
	p := new(int)                 // want `new`
	lit := []int{1, 2}            // want `composite literal`
	box(n)                        // want `boxed into interface`
	cl := func() int { return n } // want `closure`
	go spin()                     // want `go statement`
	s2 := s + "x"                 // want `string concatenation`
	b := []byte(s)                // want `string to \[\]byte`
	sink = len(m) + len(lit) + len(b) + len(s2) + *p + cl() + xs[0]
	return helper(n) + dep.Sum(xs)
}

func box(v any) { sink += v.(int) }

func spin() {}

// helper is hot by reachability: Hot calls it statically.
func helper(n int) int {
	q := make([]int, n) // want `make.*in helper, reachable from //taskbench:hotpath Hot`
	return len(q)
}

// Clean is annotated and steady-state allocation-free: the error path
// terminates (exempt), and the append into recycled capacity carries an
// explicit waiver.
//
//taskbench:hotpath
func Clean(buf []byte, n int) ([]byte, error) {
	if n < 0 {
		return nil, errRange(n)
	}
	if n > 1<<20 {
		panic(fmt.Sprintf("clean: n out of range: %d", n))
	}
	buf = append(buf, byte(n)) //taskbench:allocok amortized into recycled capacity
	return buf, nil
}

// errRange is only called on the terminating error path, so it is not
// part of the hot reachability set.
func errRange(n int) error {
	return fmt.Errorf("value %d out of range", n)
}

// Setup is not annotated: allocation off the hot path is fine.
func Setup(n int) []int {
	return make([]int, n)
}
