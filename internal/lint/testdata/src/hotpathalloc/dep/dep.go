// Package dep is a cross-package callee of the annotated root in
// package a: its allocation must be attributed to that root through
// the exported fact, not missed at the package boundary.
package dep

// Sum is not annotated itself; it is hot because hotpathalloc/a.Hot
// statically calls it.
func Sum(xs []int) int {
	seen := map[int]bool{} // want `composite literal.*reachable from //taskbench:hotpath Hot`
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

// Cold is never reached from an annotated root: it may allocate.
func Cold(n int) []int {
	return make([]int, n)
}
