package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// Load enumerates the packages matched by patterns (relative to dir,
// e.g. "./...") with `go list -deps -export -json`, type-checks the
// module's packages from source in dependency order, and resolves every
// out-of-module import through the compiler export data go list just
// produced — no network, no module downloads, one shared FileSet.
func Load(dir string, patterns ...string) (*Session, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var mods []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		switch {
		case lp.Module != nil && lp.Module.Main:
			// -deps emits dependencies before dependents, so mods is
			// already in type-check order.
			p := lp
			mods = append(mods, &p)
		case lp.Export != "":
			exports[lp.ImportPath] = lp.Export
		}
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("no module packages matched %v", patterns)
	}

	c := newChecker(exports)
	for _, lp := range mods {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		if _, err := c.check(lp.ImportPath, lp.Dir, files); err != nil {
			return nil, err
		}
	}
	return c.session, nil
}

// checker type-checks a sequence of source packages against one shared
// FileSet and session, resolving imports through already-checked
// session packages first and compiler export data second.
type checker struct {
	session *Session
	exports map[string]string
	gc      types.Importer
}

func newChecker(exports map[string]string) *checker {
	fset := token.NewFileSet()
	c := &checker{
		session: &Session{
			Fset:   fset,
			ByPath: map[string]*Package{},
			facts:  map[factKey]any{},
			state:  map[string]any{},
		},
		exports: exports,
	}
	c.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return c
}

// Import implements types.Importer over the session.
func (c *checker) Import(path string) (*types.Package, error) {
	if p, ok := c.session.ByPath[path]; ok {
		return p.Types, nil
	}
	return c.gc.Import(path)
}

// check parses and type-checks one package from its source files and
// adds it to the session.
func (c *checker) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(c.session.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: c}
	tpkg, err := conf.Check(path, c.session.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, TypesInfo: info}
	c.session.ByPath[path] = pkg
	c.session.Packages = append(c.session.Packages, pkg)
	return pkg, nil
}

// LoadTree type-checks a tree of source packages rooted at srcRoot
// (srcRoot/<import path>/*.go — the analysistest testdata layout),
// starting from the named packages and following their imports inside
// the tree. Imports that leave the tree resolve through compiler export
// data obtained from one `go list` invocation over the needed paths.
func LoadTree(srcRoot string, paths ...string) (*Session, error) {
	// Pass 1: parse the requested packages and their in-tree imports to
	// discover the full package set and the external import closure.
	fset := token.NewFileSet() // throwaway; reparsed by the checker
	type srcPkg struct {
		path  string
		files []string
	}
	parsed := map[string]*srcPkg{}
	external := map[string]bool{}
	var order []string // DFS postorder = dependency order

	var visit func(path string) error
	visit = func(path string) error {
		if _, ok := parsed[path]; ok {
			return nil
		}
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("package %q not found under %s: %w", path, srcRoot, err)
		}
		sp := &srcPkg{path: path}
		parsed[path] = sp
		var imports []string
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			name := filepath.Join(dir, e.Name())
			sp.files = append(sp.files, name)
			f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, im := range f.Imports {
				p, err := strconv.Unquote(im.Path.Value)
				if err != nil {
					continue
				}
				imports = append(imports, p)
			}
		}
		if len(sp.files) == 0 {
			return fmt.Errorf("package %q under %s has no Go files", path, srcRoot)
		}
		for _, im := range imports {
			if _, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(im))); err == nil {
				if err := visit(im); err != nil {
					return err
				}
			} else {
				external[im] = true
			}
		}
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	// go list runs from the process working directory (inside the
	// module), not srcRoot: testdata trees are not modules.
	exports, err := exportData(".", external)
	if err != nil {
		return nil, err
	}
	c := newChecker(exports)
	for _, path := range order {
		sp := parsed[path]
		sort.Strings(sp.files)
		if _, err := c.check(path, filepath.Join(srcRoot, filepath.FromSlash(path)), sp.files); err != nil {
			return nil, err
		}
	}
	return c.session, nil
}

// exportData maps every external import (and its transitive closure) to
// a compiler export-data file via one `go list -deps -export` run.
func exportData(dir string, pkgs map[string]bool) (map[string]string, error) {
	exports := map[string]string{}
	if len(pkgs) == 0 {
		return exports, nil
	}
	args := []string{"list", "-deps", "-export", "-json"}
	for p := range pkgs {
		args = append(args, p)
	}
	sort.Strings(args[4:])
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args[4:], err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}
