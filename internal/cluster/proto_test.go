package cluster

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"taskbench/internal/wire"
)

// binaryWrites reports whether the worker's control writes have
// switched to the binary frame format (the welcome echoed its offer).
func (w *Worker) binaryWrites() bool {
	w.mu.Lock()
	mc := w.mc
	w.mu.Unlock()
	return mc != nil && mc.binary.Load()
}

// waitCond polls until cond holds, failing the test at the deadline.
func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterNegotiatesBinary pins the default negotiation: workers
// offer binary at register, the coordinator echoes on the welcome, and
// both directions of every conversation — worker control traffic and
// the client's submit/accepted/done exchange — switch to binary
// frames. The job completing end-to-end is the proof that each side
// parses the other's binary frames; the flag assertions pin that the
// switch actually happened rather than the run riding on JSON.
func TestClusterNegotiatesBinary(t *testing.T) {
	coord, workers := testFleet(t, 2)
	for _, w := range workers {
		waitCond(t, "worker binary switch", 10*time.Second, w.binaryWrites)
	}
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Submit(stencilSpec(2, 64))
	if err != nil || res.Err != nil {
		t.Fatalf("submit over binary protocol: %v / %v", err, res.Err)
	}
	if !cli.mc.binary.Load() {
		t.Fatal("client writes never switched to binary after the accepted echo")
	}
}

// TestClusterJSONPinnedCoordinator pins the opt-out: a coordinator
// started with Proto json never echoes the binary offers, so every
// conversation stays in the line-delimited debug format end to end.
func TestClusterJSONPinnedCoordinator(t *testing.T) {
	coord, workers := testFleetOpts(t, 2, func(o *Options) { o.Proto = wire.ProtoJSON })
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Submit(stencilSpec(2, 64))
	if err != nil || res.Err != nil {
		t.Fatalf("submit to JSON-pinned coordinator: %v / %v", err, res.Err)
	}
	if cli.mc.binary.Load() {
		t.Fatal("client switched to binary against a JSON-pinned coordinator")
	}
	for _, w := range workers {
		if w.binaryWrites() {
			t.Fatal("worker switched to binary against a JSON-pinned coordinator")
		}
	}
}

// TestClusterJSONPinnedWorker pins the other opt-out: a worker that
// never offers binary keeps its conversation JSON even when the
// coordinator (default binary) would have accepted, and still serves
// jobs alongside binary-speaking peers.
func TestClusterJSONPinnedWorker(t *testing.T) {
	coord, _ := testFleet(t, 1)
	pinned := NewWorker(WorkerOptions{
		Coordinator: coord.Addr(),
		Name:        "json-pinned",
		Proto:       wire.ProtoJSON,
		Logf:        t.Logf,
	})
	go pinned.Run()
	t.Cleanup(pinned.Close)
	if _, err := coord.WaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Submit(stencilSpec(2, 64))
	if err != nil || res.Err != nil {
		t.Fatalf("mixed-proto fleet job: %v / %v", err, res.Err)
	}
	if pinned.binaryWrites() {
		t.Fatal("JSON-pinned worker switched to binary")
	}
}

// TestClusterServesRawJSONClient pins backward compatibility: a client
// that speaks only v2-style JSON — no Proto offer on its submit — must
// get JSON replies it can parse with a plain json.Decoder. This is the
// interop path for foreign tooling scripting the coordinator.
func TestClusterServesRawJSONClient(t *testing.T) {
	coord, _ := testFleet(t, 2)
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	spec := stencilSpec(2, 64)
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgSubmit, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	// A json.Decoder is the proof the replies are JSON lines: a binary
	// frame's 0xB1 magic would fail it immediately.
	dec := json.NewDecoder(conn)
	accepted, err := wire.ReadMessage(dec)
	if err != nil {
		t.Fatalf("reading accepted as JSON: %v", err)
	}
	if accepted.Type != wire.MsgAccepted {
		t.Fatalf("expected accepted, got %q (err %q)", accepted.Type, accepted.Err)
	}
	done, err := wire.ReadMessage(dec)
	if err != nil {
		t.Fatalf("reading done as JSON: %v", err)
	}
	if done.Type != wire.MsgDone || done.Job != accepted.Job || done.Err != "" {
		t.Fatalf("bad done reply: %+v", done)
	}
}
