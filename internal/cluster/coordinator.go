package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"taskbench/internal/chaos"
	"taskbench/internal/metrics"
	"taskbench/internal/runtime/exec"
	"taskbench/internal/wire"
)

// Options configures a Coordinator.
type Options struct {
	// Listen is the control address; default "127.0.0.1:0".
	Listen string
	// HeartbeatInterval is how often workers must heartbeat; default 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a silent worker dead; default 5×interval.
	HeartbeatTimeout time.Duration
	// SetupTimeout bounds configuration provisioning (plan build plus
	// mesh establishment) per worker; default 60s.
	SetupTimeout time.Duration
	// JobTimeout bounds one run; default 10m. It is the last-resort
	// no-hang guarantee behind the heartbeat machinery.
	JobTimeout time.Duration
	// QueueDepth is the job queue capacity; default 64. Submissions
	// beyond it are rejected immediately (a fast `rejected` reply)
	// instead of blocking the submitter behind the backlog.
	QueueDepth int
	// Concurrency is the number of scheduler slots — jobs that may be
	// in flight across the fleet at once; default 4. Jobs of different
	// shapes run concurrently on their own configurations; jobs sharing
	// a shape serialize on that shape's run lock (the prepared mesh is
	// single-run state) but pipeline over it without re-provisioning.
	Concurrency int
	// Proto selects the control-plane frame format this coordinator is
	// willing to negotiate: wire.ProtoBinary (the default) accepts a
	// peer's binary offer at register/submit time, wire.ProtoJSON pins
	// every conversation to newline-delimited JSON (the debug and
	// interop format). Receivers are always bilingual, so a JSON-pinned
	// coordinator still interoperates with binary-capable peers — it
	// just never echoes their offer, and the conversation stays JSON.
	Proto string
	// MaxAttempts bounds how many times one job may run; default 3. A
	// job whose attempt fails because a worker died (not because its
	// spec or run is invalid) is re-run with the configuration
	// re-provisioned over the reshaped fleet, up to this many attempts.
	// 1 disables retry.
	MaxAttempts int
	// MaxConfigs caps how many shapes may hold a prepared configuration
	// (plans, payload rows, a live mesh) across the fleet at once;
	// default 32. Past the cap the least-recently-used idle shape is
	// evicted, so an elastic fleet reshaping under a long-tailed shape
	// mix recycles mesh state instead of accumulating it forever.
	MaxConfigs int
	// DrainTimeout bounds a graceful drain: a worker whose configs are
	// still busy after this long is treated as dead (configs torn,
	// running attempts retried) instead of holding its departure
	// hostage. Default JobTimeout.
	DrainTimeout time.Duration
	// HTTPAddr, when non-empty, serves the observability endpoints —
	// /metrics (Prometheus text exposition), /healthz, /snapshots.json —
	// on that address. Empty disables the HTTP server entirely.
	HTTPAddr string
	// SnapshotInterval is how often the metrics collector samples the
	// registry into the retained ring; default 1s. Only meaningful with
	// HTTPAddr set.
	SnapshotInterval time.Duration
	// SnapshotRetention is how many periodic snapshots the ring keeps
	// (oldest evicted first); default 300 — five minutes of history at
	// the default interval.
	SnapshotRetention int
	// Chaos, when set, injects scripted faults into the control frames
	// this coordinator writes (forked per accepted connection). Tests
	// and the chaos harness only; nil injects nothing.
	Chaos *chaos.Injector
	// Logf, when set, receives coordinator lifecycle logging.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * o.HeartbeatInterval
	}
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 60 * time.Second
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.MaxConfigs <= 0 {
		o.MaxConfigs = 32
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = o.JobTimeout
	}
	if o.Proto == "" {
		o.Proto = wire.ProtoBinary
	}
	if o.SnapshotInterval <= 0 {
		o.SnapshotInterval = time.Second
	}
	if o.SnapshotRetention <= 0 {
		o.SnapshotRetention = 300
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Stats counts coordinator activity, for monitoring and tests.
type Stats struct {
	// Workers is the current live fleet size.
	Workers int
	// ConfigsBuilt counts configurations provisioned across the fleet.
	ConfigsBuilt int
	// ConfigsReused counts jobs that ran on an already-prepared
	// configuration (the cross-request session-reuse win).
	ConfigsReused int
	// JobsRun counts completed jobs, successful or not. Cancelled jobs
	// are counted under JobsCancelled instead.
	JobsRun int
	// JobsFailed counts jobs that completed with an error.
	JobsFailed int
	// JobsInFlight is the number of jobs currently claimed by scheduler
	// slots (provisioning, waiting on a shape's run lock, or running).
	JobsInFlight int
	// JobsRunning is the number of jobs currently executing on the
	// fleet — the overlap the concurrent scheduler exists for.
	JobsRunning int
	// JobsRetried counts re-runs after a worker death (one per extra
	// attempt, not per job).
	JobsRetried int
	// JobsRejected counts submissions refused at admission: a full
	// queue, an invalid spec, or a closing coordinator.
	JobsRejected int
	// JobsCancelled counts jobs abandoned before completion because
	// their client disconnected or sent an explicit cancel.
	JobsCancelled int
	// ConfigsReprovisioned counts prepared configurations torn down and
	// rebuilt because the fleet changed under them — a join that let a
	// shape spread wider, or a drain that excluded a member.
	ConfigsReprovisioned int
	// ConfigsEvicted counts idle configurations dropped by the
	// MaxConfigs LRU cap.
	ConfigsEvicted int
	// WorkersDraining is a gauge: fleet members mid-drain, excluded
	// from new placement but not yet released.
	WorkersDraining int
	// ConfigCacheHits counts jobs that found a usable prepared
	// configuration for their shape. Unlike ConfigsReused (which it
	// currently equals), it is defined by cache outcome at lookup time,
	// and it has a per-shape split in the metrics registry.
	ConfigCacheHits int
	// ConfigCacheMisses counts jobs that had to provision: a first job
	// of a shape, or a re-provision after the prepared configuration
	// went stale or was lost. Counted at lookup, whether or not the
	// build then succeeds.
	ConfigCacheMisses int
}

// Coordinator accepts worker registrations and client job submissions
// on one control port and drives distributed runs across the fleet.
type Coordinator struct {
	opts Options
	ln   net.Listener

	mu           sync.Mutex
	workers      map[int64]*workerConn
	fleetChanged chan struct{} // closed and replaced on every registration/death
	configs      map[string]*configEntry
	building     map[*clusterConfig]struct{} // configs mid-provision, not yet in an entry
	conns        map[*msgConn]struct{}       // every open control connection (workers and clients)
	stats        Stats
	inFlight     int
	running      int
	nextWorker   int64
	nextConfig   uint64
	nextJob      uint64
	nextConn     int64

	queue chan *job
	done  chan struct{}
	stop  sync.Once
	wg    sync.WaitGroup

	// metrics is the scrape-side instrumentation; always non-nil. The
	// HTTP server and collector only exist when Options.HTTPAddr is set.
	metrics   *coordMetrics
	collector *metrics.Collector
	http      *httpServer
}

// workerConn is the coordinator's view of one registered worker.
type workerConn struct {
	id       int64
	name     string
	mc       *msgConn
	lastSeen atomic.Int64 // unix nanos

	dead     chan struct{}
	deadOnce sync.Once

	// draining is guarded by Coordinator.mu: once set, buildConfig no
	// longer places configurations on this worker.
	draining bool

	mu      sync.Mutex
	waiters map[string]chan wire.Message
}

// clusterConfig is one provisioned configuration: a shape of job
// prepared across a fixed set of workers, with a live mesh between
// them.
type clusterConfig struct {
	id      uint64
	key     string
	ranks   int
	members []*workerConn
	spans   []exec.Span
	// lost is set when a member died: a job that failed on this
	// configuration may retry over the reshaped fleet.
	lost atomic.Bool
	// stale is set when the fleet changed in a way this configuration
	// should react to — a join that would let the shape spread wider,
	// or a member starting to drain. The next job of the shape drops
	// and re-provisions instead of reusing; unlike lost, nothing about
	// the prepared state is broken, so a run already in flight finishes
	// normally.
	stale atomic.Bool
}

// configEntry is the scheduler's per-shape slot: its run lock
// serializes provisioning and runs of one shape (the prepared mesh and
// payload rows are single-run state) while other shapes proceed
// concurrently on their own entries. The lock is a 1-slot channel, not
// a mutex, so a job waiting its turn can abandon the wait the moment
// it is cancelled or the coordinator closes — a cancelled job must not
// pin a scheduler slot for the length of its predecessors' runs.
// active counts jobs currently holding (or waiting on) the run lock;
// an entry may only leave the map once no job references it, or a
// later same-shape job would mint a second run lock and break the
// shape's mutual exclusion.
type configEntry struct {
	key  string
	lock chan struct{} // buffered(1): send acquires, receive releases
	// cfg, active and lastUsed are guarded by Coordinator.mu.
	cfg    *clusterConfig
	active int
	// lastUsed orders entries for LRU eviction under the MaxConfigs
	// cap; stamped every time a job takes a reference.
	lastUsed time.Time
}

// errWorkerLost marks failures caused by a worker leaving the fleet —
// the retryable class, as opposed to invalid specs or run errors.
var errWorkerLost = errors.New("worker lost")

// errCancelled marks calls abandoned because their job was cancelled.
var errCancelled = errors.New("job cancelled")

// job is one accepted client submission.
type job struct {
	id      uint64
	spec    wire.AppSpec
	key     string
	attempt int
	client  *clientConn
	// enqueued stamps admission, the epoch for the queue-wait and
	// end-to-end latency histograms.
	enqueued time.Time

	// cancel fires when the job should stop occupying the fleet: the
	// client disconnected, sent an explicit cancel, or the accepted ack
	// could not be delivered. cancelReason is written before the close
	// and read only after <-cancel.
	cancel       chan struct{}
	cancelOnce   sync.Once
	cancelReason string

	// acked closes once the accepted reply has been written (or its
	// write has failed), so a fast job's done cannot overtake its own
	// ack on the wire.
	acked chan struct{}
}

func (j *job) cancelNow(reason string) {
	j.cancelOnce.Do(func() {
		j.cancelReason = reason
		close(j.cancel)
	})
}

// clientConn tracks one client control connection's in-flight jobs so
// a disconnect can cancel all of them.
type clientConn struct {
	mc *msgConn
	// proto echoes the client's accepted frame-format offer on every
	// admission reply, so a client that pipelines submits sees the
	// echo no matter which reply arrives first.
	proto string

	mu   sync.Mutex
	jobs map[uint64]*job
	gone bool
}

// Start launches a coordinator listening on opts.Listen.
func Start(opts Options) (*Coordinator, error) {
	opts.fill()
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", opts.Listen, err)
	}
	c := &Coordinator{
		opts:         opts,
		ln:           ln,
		workers:      map[int64]*workerConn{},
		fleetChanged: make(chan struct{}),
		configs:      map[string]*configEntry{},
		building:     map[*clusterConfig]struct{}{},
		conns:        map[*msgConn]struct{}{},
		queue:        make(chan *job, opts.QueueDepth),
		done:         make(chan struct{}),
	}
	c.metrics = newCoordMetrics(c)
	if opts.HTTPAddr != "" {
		srv, err := startHTTPServer(c, opts.HTTPAddr)
		if err != nil {
			ln.Close()
			return nil, err
		}
		c.http = srv
		c.collector = metrics.StartCollector(c.metrics.reg, opts.SnapshotInterval, opts.SnapshotRetention)
	}
	c.wg.Add(2 + opts.Concurrency)
	go c.acceptLoop()
	go c.monitorHeartbeats()
	for i := 0; i < opts.Concurrency; i++ {
		go c.scheduleSlot()
	}
	opts.Logf("cluster: coordinator listening on %s (%d scheduler slots)", ln.Addr(), opts.Concurrency)
	return c, nil
}

// Addr returns the control address the coordinator is listening on.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Workers = len(c.workers)
	s.JobsInFlight = c.inFlight
	s.JobsRunning = c.running
	s.WorkersDraining = c.drainingLocked()
	return s
}

// drainingLocked counts mid-drain fleet members. Callers hold c.mu.
func (c *Coordinator) drainingLocked() int {
	n := 0
	for _, w := range c.workers {
		if w.draining {
			n++
		}
	}
	return n
}

// statsInfo snapshots the coordinator for a statsreply: the Stats
// counters plus the queue and scheduler dimensions a remote client
// needs to turn JobsRunning into a utilization fraction.
func (c *Coordinator) statsInfo() *wire.StatsInfo {
	// Histogram reads are atomic and the heartbeat scan takes c.mu
	// itself, so both happen before the stats lock below.
	lat := c.metrics.jobLatency.Snapshot()
	var p50, p95, p99 int64
	if lat.Count > 0 {
		p50 = int64(lat.Quantile(0.50) * float64(time.Second))
		p95 = int64(lat.Quantile(0.95) * float64(time.Second))
		p99 = int64(lat.Quantile(0.99) * float64(time.Second))
	}
	hbAge := c.maxHeartbeatAgeNanos(time.Now())

	c.mu.Lock()
	defer c.mu.Unlock()
	return &wire.StatsInfo{
		Workers:       len(c.workers),
		ConfigsBuilt:  c.stats.ConfigsBuilt,
		ConfigsReused: c.stats.ConfigsReused,
		JobsRun:       c.stats.JobsRun,
		JobsFailed:    c.stats.JobsFailed,
		JobsInFlight:  c.inFlight,
		JobsRunning:   c.running,
		JobsRetried:   c.stats.JobsRetried,
		JobsRejected:  c.stats.JobsRejected,
		JobsCancelled: c.stats.JobsCancelled,
		QueueLen:      len(c.queue),
		QueueCap:      c.opts.QueueDepth,
		Concurrency:   c.opts.Concurrency,
		MaxAttempts:   c.opts.MaxAttempts,

		ConfigsReprovisioned: c.stats.ConfigsReprovisioned,
		ConfigsEvicted:       c.stats.ConfigsEvicted,
		WorkersDraining:      c.drainingLocked(),

		ConfigCacheHits:      c.stats.ConfigCacheHits,
		ConfigCacheMisses:    c.stats.ConfigCacheMisses,
		MaxHeartbeatAgeNanos: int(hbAge),
		LatencyP50Nanos:      int(p50),
		LatencyP95Nanos:      int(p95),
		LatencyP99Nanos:      int(p99),
	}
}

// WorkerCount returns the current live fleet size.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// WaitWorkers blocks until at least n workers are registered, the
// timeout passes, or the coordinator closes. Registrations and deaths
// signal a fleet-change channel, so waiters wake the moment the fleet
// reaches n (no polling) and a zero timeout checks the fleet exactly
// once without waiting a tick. It returns the fleet size observed
// last, and an error if that is still below n.
func (c *Coordinator) WaitWorkers(n int, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		got := len(c.workers)
		changed := c.fleetChanged
		c.mu.Unlock()
		if got >= n {
			return got, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return got, fmt.Errorf("cluster: %d of %d workers registered after %v", got, n, timeout)
		}
		timer := time.NewTimer(remain)
		select {
		case <-c.done:
			timer.Stop()
			return got, fmt.Errorf("cluster: coordinator closed with %d of %d workers", got, n)
		case <-changed:
			timer.Stop()
		case <-timer.C:
			return c.WorkerCount(), fmt.Errorf("cluster: %d of %d workers registered after %v", c.WorkerCount(), n, timeout)
		}
	}
}

// bumpFleetLocked wakes WaitWorkers waiters after a fleet change.
// Callers hold c.mu.
func (c *Coordinator) bumpFleetLocked() {
	close(c.fleetChanged)
	c.fleetChanged = make(chan struct{})
}

// Close shuts the coordinator down: the listener closes, queued jobs
// fail, and every control connection — workers and clients alike —
// drops, so the connection handlers (and with them wg.Wait) cannot
// stay blocked in reads on idle client connections.
func (c *Coordinator) Close() {
	c.stop.Do(func() {
		close(c.done)
		c.ln.Close()
		if c.collector != nil {
			c.collector.Stop()
		}
		if c.http != nil {
			c.http.close()
		}
		c.mu.Lock()
		for mc := range c.conns {
			mc.close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		mc := newMsgConn(conn)
		// Control messages are single JSON lines: a peer that cannot
		// absorb one inside a minute has stopped reading. The deadline
		// turns such a peer into a write error (its handler then drops
		// the connection, cancelling its jobs) rather than a scheduler
		// slot parked in write forever.
		mc.writeTimeout = time.Minute
		c.mu.Lock()
		select {
		case <-c.done:
			// Raced with Close after it swept the registry; this
			// connection must not escape the sweep.
			c.mu.Unlock()
			mc.close()
			continue
		default:
		}
		c.conns[mc] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() {
				c.mu.Lock()
				delete(c.conns, mc)
				c.mu.Unlock()
				mc.close()
			}()
			c.handleConn(mc)
		}()
	}
}

// handleConn reads the first message of a fresh connection to decide
// whether its peer is a worker (register) or a client (submit).
func (c *Coordinator) handleConn(mc *msgConn) {
	m, err := mc.read()
	if err != nil {
		mc.close()
		return
	}
	switch m.Type {
	case wire.MsgRegister:
		c.serveWorker(mc, m)
	case wire.MsgSubmit, wire.MsgStats:
		// A stats-first connection is a client too: the load generator
		// polls utilization before (and while) it submits.
		c.serveClient(mc, m)
	default:
		c.opts.Logf("cluster: %s opened with unexpected %q", mc.remoteAddr(), m.Type)
		mc.close()
	}
}

// --- worker side ---------------------------------------------------

func (c *Coordinator) serveWorker(mc *msgConn, reg wire.Message) {
	w := &workerConn{
		name:    reg.Name,
		mc:      mc,
		dead:    make(chan struct{}),
		waiters: map[string]chan wire.Message{},
	}
	w.lastSeen.Store(time.Now().UnixNano())
	// Chaos scopes to worker conversations only: the client admission
	// protocol matches replies to submits in FIFO order, so dropping a
	// client frame would desynchronize the connection rather than
	// exercise a recoverable fault. Forked per worker connection so
	// concurrent workers cannot perturb each other's schedules.
	c.mu.Lock()
	c.nextConn++
	seq := c.nextConn
	c.mu.Unlock()
	mc.chaos = c.opts.Chaos.Fork(fmt.Sprintf("coord-worker-%d", seq))

	c.mu.Lock()
	c.nextWorker++
	w.id = c.nextWorker
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", w.id)
	}
	// A named worker re-registering after a fast restart replaces its
	// stale fleet entry instead of double-counting slots: the old
	// connection is a corpse the heartbeat monitor has not yet noticed.
	var replaced *workerConn
	if reg.Name != "" {
		for _, old := range c.workers {
			if old.name == reg.Name {
				replaced = old
				break
			}
		}
	}
	c.workers[w.id] = w
	c.bumpFleetLocked()
	// Join-triggered growth: shapes squeezed onto fewer members than
	// they have ranks can spread wider now — mark them stale so their
	// next job re-provisions over the grown fleet instead of reusing
	// the narrow mesh.
	for _, e := range c.configs {
		if e.cfg != nil && e.cfg.ranks > len(e.cfg.members) {
			e.cfg.stale.Store(true)
		}
	}
	c.mu.Unlock()
	if replaced != nil {
		c.markDead(replaced, fmt.Errorf("replaced by re-registration from %s", mc.remoteAddr()))
	}

	// Frame-format negotiation: a register carrying the binary offer
	// means the worker reads binary frames, so this side may write them
	// from the welcome on; echoing the offer licenses the worker's own
	// writes the same way. An old worker never offers and an old
	// coordinator never echoes — either way the conversation stays
	// JSON.
	var proto string
	if reg.Proto == wire.ProtoBinary && c.opts.Proto == wire.ProtoBinary {
		proto = wire.ProtoBinary
		mc.binary.Store(true)
	}
	if err := mc.write(wire.Message{
		Type:           wire.MsgWelcome,
		Worker:         w.id,
		HeartbeatNanos: int64(c.opts.HeartbeatInterval),
		Proto:          proto,
	}); err != nil {
		c.markDead(w, fmt.Errorf("welcome: %w", err))
		return
	}
	c.opts.Logf("cluster: worker %q registered from %s (proto %s)", w.name, mc.remoteAddr(), protoName(proto))

	for {
		m, err := mc.read()
		if err != nil {
			c.markDead(w, fmt.Errorf("control connection: %w", err))
			return
		}
		w.lastSeen.Store(time.Now().UnixNano())
		switch m.Type {
		case wire.MsgHeartbeat:
			// lastSeen update above is the whole point.
		case wire.MsgPrepared:
			w.route(fmt.Sprintf("prepared/%d", m.Config), m)
		case wire.MsgReady:
			w.route(fmt.Sprintf("ready/%d", m.Config), m)
		case wire.MsgResult:
			// Keyed by (job, attempt): a stale attempt's late result
			// finds no waiter instead of satisfying the live attempt.
			w.route(fmt.Sprintf("result/%d.%d", m.Job, m.Attempt), m)
		case wire.MsgDrain:
			c.beginDrain(w)
		default:
			c.opts.Logf("cluster: worker %q sent unexpected %q", w.name, m.Type)
		}
	}
}

// markDead declares a worker dead exactly once: it leaves the fleet,
// every configuration it participated in is dropped (surviving members
// are told to release, which aborts any wedged run), and any await on
// it fails immediately. The fleet map and config table are updated
// BEFORE the death signal fires, so a job that observed the death and
// retries never re-provisions over a fleet still listing the corpse.
func (c *Coordinator) markDead(w *workerConn, cause error) {
	w.deadOnce.Do(func() {
		c.mu.Lock()
		delete(c.workers, w.id)
		c.bumpFleetLocked()
		var torn []*clusterConfig
		for key, e := range c.configs {
			cfg := e.cfg
			if cfg == nil {
				continue
			}
			for _, member := range cfg.members {
				if member == w {
					cfg.lost.Store(true)
					e.cfg = nil
					if e.active == 0 {
						// Idle shape: nothing references the entry, so
						// it can leave the map right away.
						delete(c.configs, key)
					}
					torn = append(torn, cfg)
					break
				}
			}
		}
		c.mu.Unlock()

		close(w.dead)
		w.mc.close()

		c.opts.Logf("cluster: worker %q dead (%v); dropped %d configs", w.name, cause, len(torn))
		for _, cfg := range torn {
			c.releaseConfig(cfg, w)
		}
	})
}

// releaseConfig tells every member except skip to drop a
// configuration. Best-effort: members may themselves be dying.
func (c *Coordinator) releaseConfig(cfg *clusterConfig, skip *workerConn) {
	for _, member := range cfg.members {
		if member == skip {
			continue
		}
		member.mc.write(wire.Message{Type: wire.MsgRelease, Config: cfg.id})
	}
}

// configHas reports whether w is a member of cfg.
func configHas(cfg *clusterConfig, w *workerConn) bool {
	for _, member := range cfg.members {
		if member == w {
			return true
		}
	}
	return false
}

// beginDrain starts a worker's graceful departure: it leaves the
// placement pool immediately (buildConfig skips draining workers), its
// prepared configurations are marked stale so the next job of each
// shape re-provisions without it, and a drain goroutine waits for the
// configurations still pinning it to empty out before releasing it.
// Unlike the death path, nothing is torn out from under a running
// attempt — that is the whole point of draining.
func (c *Coordinator) beginDrain(w *workerConn) {
	c.mu.Lock()
	if w.draining {
		c.mu.Unlock()
		return // duplicate drain announcement
	}
	w.draining = true
	for _, e := range c.configs {
		if e.cfg != nil && configHas(e.cfg, w) {
			e.cfg.stale.Store(true)
		}
	}
	c.bumpFleetLocked()
	c.mu.Unlock()
	c.opts.Logf("cluster: worker %q draining", w.name)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.drainWorker(w)
	}()
}

// drainWorker waits until no configuration — prepared or mid-build —
// references the draining worker, proactively tearing down idle ones,
// then releases the worker with a drained reply. Configurations with
// jobs in flight (active references) are left to finish or to observe
// the stale flag themselves; freshly built ones that raced the drain
// announcement are re-marked stale every pass. A drain that exceeds
// DrainTimeout falls back to the death path: configs torn, running
// attempts retried — the worker leaves either way.
func (c *Coordinator) drainWorker(w *workerConn) {
	deadline := time.NewTimer(c.opts.DrainTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(c.opts.HeartbeatInterval / 4)
	defer tick.Stop()
	for {
		var idle []*clusterConfig
		busy := false
		c.mu.Lock()
		for key, e := range c.configs {
			cfg := e.cfg
			if cfg == nil || !configHas(cfg, w) {
				continue
			}
			// Re-mark every pass: a config built from a fleet snapshot
			// taken before the drain began can land here afterwards.
			cfg.stale.Store(true)
			if e.active > 0 {
				busy = true // a job holds or awaits this shape's run lock
				continue
			}
			// Idle prepared config pinning the drainer: tear it down now
			// rather than waiting for a next job of its shape that may
			// never come. The next job of the shape rebuilds it over the
			// post-drain fleet, so this counts as a re-provision.
			e.cfg = nil
			delete(c.configs, key)
			c.stats.ConfigsReprovisioned++
			c.metrics.configsReprovisioned.Inc()
			idle = append(idle, cfg)
		}
		for cfg := range c.building {
			if configHas(cfg, w) {
				busy = true // mid-provision; invisible to the entry scan
			}
		}
		changed := c.fleetChanged
		c.mu.Unlock()
		for _, cfg := range idle {
			c.releaseConfig(cfg, nil)
		}
		if !busy && len(idle) == 0 {
			c.finishDrain(w)
			return
		}
		select {
		case <-changed:
		case <-tick.C:
		case <-w.dead:
			return // died (or was replaced) mid-drain: markDead handled it
		case <-c.done:
			return
		case <-deadline.C:
			c.opts.Logf("cluster: worker %q drain timed out after %v; falling back to death path", w.name, c.opts.DrainTimeout)
			c.markDead(w, fmt.Errorf("drain timeout (%v)", c.opts.DrainTimeout))
			return
		}
	}
}

// finishDrain completes a clean drain: the worker leaves the fleet and
// is told it may exit. Claiming deadOnce here is what distinguishes
// drain from death — the read loop's subsequent connection error and
// the heartbeat monitor both become no-ops, so a drained worker's
// departure produces zero worker-lost retries.
func (c *Coordinator) finishDrain(w *workerConn) {
	w.deadOnce.Do(func() {
		c.mu.Lock()
		delete(c.workers, w.id)
		c.bumpFleetLocked()
		c.mu.Unlock()
		close(w.dead)
		w.mc.write(wire.Message{Type: wire.MsgDrained, Worker: w.id})
		c.opts.Logf("cluster: worker %q drained and released", w.name)
	})
}

// monitorHeartbeats declares silent workers dead. Control-connection
// errors catch a killed process faster; the heartbeat timeout catches
// stalls and partitions where the connection stays open.
func (c *Coordinator) monitorHeartbeats() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-c.opts.HeartbeatTimeout).UnixNano()
		c.mu.Lock()
		var stale []*workerConn
		for _, w := range c.workers {
			if w.lastSeen.Load() < cutoff {
				stale = append(stale, w)
			}
		}
		c.mu.Unlock()
		for _, w := range stale {
			c.markDead(w, fmt.Errorf("heartbeat timeout (%v)", c.opts.HeartbeatTimeout))
		}
	}
}

// call registers interest in replyKey, sends m, and waits for the
// reply — failing fast if the worker dies, the job is cancelled, or
// the timeout passes. A reply whose Err field is set is returned as an
// error. Worker-loss failures wrap errWorkerLost (the retryable
// class); cancellation returns errCancelled.
func (w *workerConn) call(m wire.Message, replyKey string, timeout time.Duration, cancel <-chan struct{}) (wire.Message, error) {
	ch := make(chan wire.Message, 1)
	w.mu.Lock()
	w.waiters[replyKey] = ch
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.waiters, replyKey)
		w.mu.Unlock()
	}()

	if err := w.mc.write(m); err != nil {
		return wire.Message{}, fmt.Errorf("worker %q: write %s: %v: %w", w.name, m.Type, err, errWorkerLost)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply := <-ch:
		if reply.Err != "" {
			return reply, fmt.Errorf("worker %q: %s", w.name, reply.Err)
		}
		return reply, nil
	case <-w.dead:
		return wire.Message{}, fmt.Errorf("worker %q died: %w", w.name, errWorkerLost)
	case <-cancel:
		return wire.Message{}, errCancelled
	case <-timer.C:
		return wire.Message{}, fmt.Errorf("worker %q: timed out waiting for %s", w.name, replyKey)
	}
}

func (w *workerConn) route(key string, m wire.Message) {
	w.mu.Lock()
	ch := w.waiters[key]
	w.mu.Unlock()
	if ch != nil {
		select {
		case ch <- m:
		default:
		}
	}
}

// --- client side ---------------------------------------------------

// serveClient runs one client connection's read loop: submits are
// admitted (accepted or rejected immediately) and run concurrently by
// the scheduler slots, with done replies written as jobs finish,
// matched by job id — multiple jobs may be in flight per connection.
// When the connection drops, every job it still has in flight is
// cancelled, so a vanished client stops occupying workers.
func (c *Coordinator) serveClient(mc *msgConn, first wire.Message) {
	cl := &clientConn{mc: mc, jobs: map[uint64]*job{}}
	// Frame-format negotiation, the client-side analog of the worker's
	// register/welcome exchange: the first submit's binary offer is
	// accepted by switching this side's writes to binary and echoing
	// the offer on admission replies (the client switches its own
	// writes when it sees the echo).
	if first.Proto == wire.ProtoBinary && c.opts.Proto == wire.ProtoBinary {
		cl.proto = wire.ProtoBinary
		mc.binary.Store(true)
	}
	m := first
loop:
	for {
		switch m.Type {
		case wire.MsgSubmit:
			if !c.admit(cl, m) {
				break loop // reply write failed: the client is gone
			}
		case wire.MsgCancel:
			cl.mu.Lock()
			j := cl.jobs[m.Job]
			cl.mu.Unlock()
			if j != nil {
				j.cancelNow("cancelled by client")
			}
		case wire.MsgStats:
			// Job is a client-chosen correlation id echoed verbatim, so
			// snapshots interleave freely with in-flight submissions. A
			// failed reply write means the client is gone — same
			// teardown rule as a failed admission reply.
			if cl.mc.write(wire.Message{Type: wire.MsgStatsRply, Job: m.Job, Stats: c.statsInfo(), Proto: cl.proto}) != nil {
				break loop
			}
		default:
			c.opts.Logf("cluster: client %s sent unexpected %q", mc.remoteAddr(), m.Type)
			break loop
		}
		var err error
		if m, err = mc.read(); err != nil {
			break
		}
	}
	cl.mu.Lock()
	cl.gone = true
	inflight := make([]*job, 0, len(cl.jobs))
	for _, j := range cl.jobs {
		inflight = append(inflight, j)
	}
	cl.mu.Unlock()
	for _, j := range inflight {
		j.cancelNow("client disconnected")
	}
}

// admit validates and enqueues one submission, answering immediately:
// accepted (job id, now queued) or rejected (invalid spec, full queue,
// closing coordinator). It never blocks on the queue — admission
// control is what keeps a full coordinator's submitters unblocked. A
// false return means the reply write failed: the client is gone (or
// has stopped draining its socket), and the connection must be torn
// down — clients match accepted/rejected replies to submissions in
// FIFO order, so serving further submits after a dropped reply would
// desynchronize every later job.
func (c *Coordinator) admit(cl *clientConn, m wire.Message) bool {
	reject := func(id uint64, format string, args ...any) bool {
		c.mu.Lock()
		c.stats.JobsRejected++
		c.mu.Unlock()
		c.metrics.jobsRejected.Inc()
		return cl.mc.write(wire.Message{Type: wire.MsgRejected, Job: id, Err: fmt.Sprintf(format, args...), Proto: cl.proto}) == nil
	}
	c.mu.Lock()
	c.nextJob++
	id := c.nextJob
	c.mu.Unlock()

	if m.Spec == nil {
		return reject(id, "submit without spec")
	}
	if _, err := m.Spec.ToApp(); err != nil {
		return reject(id, "invalid spec: %v", err)
	}
	j := &job{
		id:       id,
		spec:     *m.Spec,
		key:      wire.ShapeKey(*m.Spec),
		client:   cl,
		enqueued: time.Now(),
		cancel:   make(chan struct{}),
		acked:    make(chan struct{}),
	}
	cl.mu.Lock()
	cl.jobs[id] = j
	cl.mu.Unlock()

	select {
	case <-c.done:
		cl.mu.Lock()
		delete(cl.jobs, id)
		cl.mu.Unlock()
		return reject(id, "coordinator shutting down")
	default:
	}
	select {
	case c.queue <- j:
	default:
		cl.mu.Lock()
		delete(cl.jobs, id)
		cl.mu.Unlock()
		return reject(id, "queue full (depth %d)", c.opts.QueueDepth)
	}
	if cl.mc.write(wire.Message{Type: wire.MsgAccepted, Job: id, Proto: cl.proto}) != nil {
		// The ack never reached the client, so nobody is waiting for
		// this job: without cancellation it would still run over the
		// whole fleet for a peer that is already gone. (The caller
		// tears the connection down, cancelling any other jobs.)
		j.cancelNow("client disconnected before ack")
		close(j.acked)
		return false
	}
	close(j.acked)
	return true
}

// deliver writes a job's done reply back to its submitting client,
// after the accepted ack is on the wire and unless the client is gone.
func (c *Coordinator) deliver(j *job, done wire.Message) {
	<-j.acked
	cl := j.client
	cl.mu.Lock()
	delete(cl.jobs, j.id)
	gone := cl.gone
	cl.mu.Unlock()
	if !gone {
		cl.mc.write(done)
	}
}

// --- scheduler -----------------------------------------------------

// runVerdict classifies how one run attempt ended.
type runVerdict int

const (
	runOK        runVerdict = iota
	runFailed               // terminal failure: invalid provisioning or run error
	runRetryable            // a worker died under the job; may re-run
	runCancelled            // the job was cancelled mid-flight
)

// scheduleSlot is one of Options.Concurrency scheduler workers: each
// claims queued jobs and drives them to completion, so jobs of
// different shapes overlap across the fleet instead of serializing
// behind one loop.
func (c *Coordinator) scheduleSlot() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case j := <-c.queue:
			c.runQueued(j)
		}
	}
}

func (c *Coordinator) runQueued(j *job) {
	select {
	case <-j.cancel:
		// Cancelled while queued: the job never touched the fleet.
		c.mu.Lock()
		c.stats.JobsCancelled++
		c.mu.Unlock()
		c.metrics.jobsCancelled.Inc()
		c.deliver(j, wire.Message{Type: wire.MsgDone, Job: j.id, Err: "cancelled: " + j.cancelReason})
		return
	default:
	}
	c.metrics.queueWait.ObserveDuration(time.Since(j.enqueued))
	c.mu.Lock()
	c.inFlight++
	c.mu.Unlock()
	done, verdict := c.runJobWithRetry(j)
	c.mu.Lock()
	c.inFlight--
	if verdict == runCancelled {
		c.stats.JobsCancelled++
	} else {
		c.stats.JobsRun++
		if done.Err != "" {
			c.stats.JobsFailed++
		}
	}
	c.mu.Unlock()
	if verdict == runCancelled {
		c.metrics.jobsCancelled.Inc()
	} else {
		c.metrics.jobsCompleted.Inc()
		if done.Err != "" {
			c.metrics.jobsFailed.Inc()
		}
		c.metrics.jobLatency.ObserveDuration(time.Since(j.enqueued))
	}
	c.deliver(j, done)
}

// runJobWithRetry drives one job through up to MaxAttempts runs:
// worker-death failures re-provision over the reshaped fleet and run
// again; every other outcome is final.
func (c *Coordinator) runJobWithRetry(j *job) (wire.Message, runVerdict) {
	for {
		done, verdict, failed := c.runJob(j)
		if verdict != runRetryable || j.attempt+1 >= c.opts.MaxAttempts {
			if verdict == runRetryable {
				// Retryable failure with no attempts left: the job gave
				// up — the class the fleet-sizing dashboards watch.
				c.metrics.jobsGaveUp.Inc()
			}
			return done, verdict
		}
		j.attempt++
		c.mu.Lock()
		c.stats.JobsRetried++
		c.mu.Unlock()
		c.metrics.jobsRetried.Inc()
		c.opts.Logf("cluster: job %d re-queued (attempt %d/%d): %v", j.id, j.attempt+1, c.opts.MaxAttempts, done.Err)
		c.waitMemberGone(failed, j)
	}
}

// waitMemberGone blocks until some member of a failed configuration
// has actually left the fleet, bounded by the heartbeat timeout (the
// slowest any death can take to land). A worker-lost write error can
// race ahead of markDead — the read loop has not yet noticed the
// corpse — and an immediate retry would re-provision over a fleet map
// still listing the dead worker, burning the whole attempt budget in
// microseconds. Waiting on membership (not merely on one fleet-change
// event, which an unrelated registration also fires) guarantees the
// retry sees a reshaped fleet. A retryable failure with no named
// configuration (every worker mid-drain) instead waits for any fleet
// change at all — a join or a completed drain is what unblocks it.
func (c *Coordinator) waitMemberGone(failed *clusterConfig, j *job) {
	deadline := time.NewTimer(c.opts.HeartbeatTimeout)
	defer deadline.Stop()
	for {
		c.mu.Lock()
		gone := false
		if failed != nil {
			for _, member := range failed.members {
				if _, live := c.workers[member.id]; !live {
					gone = true
					break
				}
			}
		}
		changed := c.fleetChanged
		c.mu.Unlock()
		if gone {
			return
		}
		select {
		case <-changed:
			if failed == nil {
				return // any reshape at all is what the retry needs
			}
		case <-j.cancel:
			return
		case <-c.done:
			return
		case <-deadline.C:
			return
		}
	}
}

// entry returns (creating if needed) the scheduler entry of one
// shape, taking a reference a matching releaseEntry must drop.
func (c *Coordinator) entry(key string) *configEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.configs[key]
	if e == nil {
		e = &configEntry{key: key, lock: make(chan struct{}, 1)}
		c.configs[key] = e
	}
	e.active++
	e.lastUsed = time.Now()
	return e
}

// releaseEntry drops a job's reference; the last reference to an
// entry whose configuration is gone removes it from the map, so
// shapes that no longer hold fleet state do not accumulate forever.
func (c *Coordinator) releaseEntry(e *configEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.active--
	if e.active == 0 && e.cfg == nil && c.configs[e.key] == e {
		delete(c.configs, e.key)
	}
}

// runJob executes one attempt: acquire the shape's run lock, provision
// or reuse the shape's configuration, fan the run out, and classify
// the outcome for the retry machinery. On a retryable failure the
// third return names the configuration that failed, so the retry can
// wait for its dead member to actually leave the fleet.
func (c *Coordinator) runJob(j *job) (wire.Message, runVerdict, *clusterConfig) {
	fail := func(format string, args ...any) wire.Message {
		return wire.Message{Type: wire.MsgDone, Job: j.id, Err: fmt.Sprintf(format, args...)}
	}

	e := c.entry(j.key)
	defer c.releaseEntry(e)
	select {
	case e.lock <- struct{}{}:
	case <-j.cancel:
		return fail("cancelled: %s", j.cancelReason), runCancelled, nil
	case <-c.done:
		return fail("coordinator shutting down"), runFailed, nil
	}
	defer func() { <-e.lock }()

	c.mu.Lock()
	cfg := e.cfg
	c.mu.Unlock()
	if cfg != nil && cfg.stale.Load() {
		// The fleet changed under this configuration (join growth or a
		// draining member). Holding the shape's run lock, drop it and
		// provision fresh over the current fleet.
		c.mu.Lock()
		c.stats.ConfigsReprovisioned++
		c.mu.Unlock()
		c.metrics.configsReprovisioned.Inc()
		c.dropConfig(e, cfg)
		cfg = nil
	}
	if cfg == nil {
		// Cache miss, counted at lookup whether or not the build then
		// succeeds. CounterVec.With takes the vec's own lock, so it must
		// run outside c.mu.
		c.metrics.cacheMisses.With(shapeLabel(j.spec)).Inc()
		c.mu.Lock()
		c.stats.ConfigCacheMisses++
		c.mu.Unlock()
		var err error
		cfg, err = c.buildConfig(j.key, j.spec, j.cancel)
		if err != nil {
			if errors.Is(err, errCancelled) {
				return fail("cancelled: %s", j.cancelReason), runCancelled, nil
			}
			verdict := runFailed
			if errors.Is(err, errWorkerLost) {
				verdict = runRetryable
			}
			return fail("provision: %v", err), verdict, cfg
		}
		var evicted []*clusterConfig
		c.mu.Lock()
		e.cfg = cfg
		delete(c.building, cfg) // ownership handoff; see buildConfig
		c.stats.ConfigsBuilt++
		evicted = c.evictColdLocked(e)
		c.mu.Unlock()
		c.metrics.configsBuilt.Inc()
		for _, victim := range evicted {
			c.releaseConfig(victim, nil)
		}
	} else {
		c.metrics.cacheHits.With(shapeLabel(j.spec)).Inc()
		c.mu.Lock()
		c.stats.ConfigsReused++
		c.stats.ConfigCacheHits++
		c.mu.Unlock()
	}

	// Run the job on every member and take the slowest worker's wall
	// time as the job's elapsed time.
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	kernels := wire.KernelsOf(j.spec)
	// Snapshot the attempt number: fanout returns on the first error
	// without joining stragglers, so a late goroutine must not read
	// j.attempt after the retry loop has already incremented it (a
	// race, and a stale run stamped with the live attempt's key).
	attempt := j.attempt
	results := make([]wire.Message, len(cfg.members))
	err := fanout(cfg.members, func(k int, w *workerConn) error {
		reply, err := w.call(wire.Message{
			Type:    wire.MsgRun,
			Config:  cfg.id,
			Job:     j.id,
			Attempt: attempt,
			Kernels: kernels,
		}, fmt.Sprintf("result/%d.%d", j.id, attempt), c.opts.JobTimeout, j.cancel)
		results[k] = reply
		return err
	})
	c.mu.Lock()
	c.running--
	c.mu.Unlock()
	if err != nil {
		// The configuration's mesh may be mid-abort (a dead member) or
		// still executing an abandoned run (a cancelled job); dropping
		// it frees the fleet, and the next job of this shape provisions
		// a fresh one over the current workers.
		c.dropConfig(e, cfg)
		if errors.Is(err, errCancelled) {
			return fail("cancelled: %s", j.cancelReason), runCancelled, nil
		}
		verdict := runFailed
		if cfg.lost.Load() || errors.Is(err, errWorkerLost) {
			verdict = runRetryable
		}
		return fail("run: %v", err), verdict, cfg
	}
	var elapsed int64
	for _, r := range results {
		if r.ElapsedNanos > elapsed {
			elapsed = r.ElapsedNanos
		}
	}
	return wire.Message{
		Type:         wire.MsgDone,
		Job:          j.id,
		ElapsedNanos: elapsed,
		Workers:      cfg.ranks,
	}, runOK, nil
}

// buildConfig provisions a new configuration over the live fleet:
// assign rank spans, prepare every member (plan slice + data
// listener), then distribute the rank→address table and wait for the
// mesh to come up. On a provisioning error the partially built
// configuration is released and still returned (alongside the error),
// so the retry path knows which members the failure involved.
func (c *Coordinator) buildConfig(key string, spec wire.AppSpec, cancel <-chan struct{}) (*clusterConfig, error) {
	c.mu.Lock()
	fleet := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		if w.draining {
			continue // announced departure: place nothing new on it
		}
		fleet = append(fleet, w)
	}
	total := len(c.workers)
	c.nextConfig++
	id := c.nextConfig
	c.mu.Unlock()
	if len(fleet) == 0 {
		if total > 0 {
			// Every live worker is mid-drain: retryable, because a
			// replacement joining (or a drain completing) reshapes the
			// fleet — unlike an empty fleet, which is a standing error.
			return nil, fmt.Errorf("all %d workers draining: %w", total, errWorkerLost)
		}
		return nil, fmt.Errorf("no workers registered")
	}
	sort.Slice(fleet, func(a, b int) bool { return fleet[a].id < fleet[b].id })

	ranks := spec.Workers
	if ranks <= 0 {
		ranks = len(fleet)
	}
	spans := exec.BlockAssign(ranks, len(fleet))
	cfg := &clusterConfig{id: id, key: key, ranks: ranks}
	for k, w := range fleet {
		if spans[k].Len() == 0 {
			continue // more workers than ranks: the excess idles
		}
		cfg.members = append(cfg.members, w)
		cfg.spans = append(cfg.spans, spans[k])
	}

	// Register the build so a concurrent drain sees the worker as busy
	// even before the configuration lands in its entry — the fleet
	// snapshot above may predate the drain announcement. On success the
	// registration stays: the caller clears it in the same critical
	// section that installs the config in its entry, so no instant
	// exists where a drain scan sees the config in neither place.
	c.mu.Lock()
	c.building[cfg] = struct{}{}
	c.mu.Unlock()
	unbuild := func() {
		c.mu.Lock()
		delete(c.building, cfg)
		c.mu.Unlock()
	}

	// Prepare: every member builds its local plan slice and binds its
	// data listener, replying with the address.
	addrs := make([]string, ranks)
	err := fanout(cfg.members, func(k int, w *workerConn) error {
		spec := spec
		reply, err := w.call(wire.Message{
			Type:   wire.MsgPrepare,
			Config: id,
			Spec:   &spec,
			Ranks:  ranks,
			RankLo: cfg.spans[k].Lo,
			RankHi: cfg.spans[k].Hi,
		}, fmt.Sprintf("prepared/%d", id), c.opts.SetupTimeout, cancel)
		if err != nil {
			return err
		}
		for r := cfg.spans[k].Lo; r < cfg.spans[k].Hi; r++ {
			addrs[r] = reply.Addr
		}
		return nil
	})
	if err != nil {
		unbuild()
		c.releaseConfig(cfg, nil)
		return cfg, err
	}

	// Connect: all members wire the mesh concurrently — each one's
	// dials complete against the others' already-bound listeners.
	err = fanout(cfg.members, func(k int, w *workerConn) error {
		_, err := w.call(wire.Message{
			Type:   wire.MsgConnect,
			Config: id,
			Addrs:  addrs,
		}, fmt.Sprintf("ready/%d", id), c.opts.SetupTimeout, cancel)
		return err
	})
	if err != nil {
		unbuild()
		c.releaseConfig(cfg, nil)
		return cfg, err
	}
	c.opts.Logf("cluster: config %d ready: %d ranks over %d workers", id, ranks, len(cfg.members))
	return cfg, nil
}

// dropConfig removes a configuration from its entry and releases it on
// its members. Callers hold the entry's run lock.
func (c *Coordinator) dropConfig(e *configEntry, cfg *clusterConfig) {
	c.mu.Lock()
	if e.cfg == cfg {
		e.cfg = nil
	}
	c.mu.Unlock()
	c.releaseConfig(cfg, nil)
}

// evictColdLocked enforces the MaxConfigs cap: while more shapes hold
// prepared configurations than the cap allows, the least-recently-used
// entry with no active jobs is torn out of the map (nobody holds or
// awaits its run lock, so nothing can be mid-run on it). keep — the
// entry that just provisioned — is never a victim. Victims are
// returned for release outside c.mu. If every over-cap entry is busy,
// the fleet is genuinely that wide and the cap yields.
func (c *Coordinator) evictColdLocked(keep *configEntry) []*clusterConfig {
	var victims []*clusterConfig
	for {
		live := 0
		var oldest *configEntry
		for _, e := range c.configs {
			if e.cfg == nil {
				continue
			}
			live++
			if e == keep || e.active != 0 {
				continue
			}
			if oldest == nil || e.lastUsed.Before(oldest.lastUsed) {
				oldest = e
			}
		}
		if live <= c.opts.MaxConfigs || oldest == nil {
			return victims
		}
		victims = append(victims, oldest.cfg)
		oldest.cfg = nil
		delete(c.configs, oldest.key)
		c.stats.ConfigsEvicted++
		c.metrics.configsEvicted.Inc()
	}
}

// fanout runs f concurrently over the members and returns on the
// *first* error — callers immediately release the configuration, which
// aborts the surviving members' in-flight work, so failure latency is
// one member's detection time rather than the slowest member's
// timeout. Stragglers drain into the buffered channel (no goroutine
// leaks); a nil return means every member completed.
func fanout(members []*workerConn, f func(k int, w *workerConn) error) error {
	errCh := make(chan error, len(members))
	for k, w := range members {
		go func(k int, w *workerConn) { errCh <- f(k, w) }(k, w)
	}
	for range members {
		if err := <-errCh; err != nil {
			return err
		}
	}
	return nil
}
