package cluster

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"taskbench/internal/runtime/exec"
	"taskbench/internal/wire"
)

// Options configures a Coordinator.
type Options struct {
	// Listen is the control address; default "127.0.0.1:0".
	Listen string
	// HeartbeatInterval is how often workers must heartbeat; default 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a silent worker dead; default 5×interval.
	HeartbeatTimeout time.Duration
	// SetupTimeout bounds configuration provisioning (plan build plus
	// mesh establishment) per worker; default 60s.
	SetupTimeout time.Duration
	// JobTimeout bounds one run; default 10m. It is the last-resort
	// no-hang guarantee behind the heartbeat machinery.
	JobTimeout time.Duration
	// QueueDepth is the job queue capacity; default 64. Submissions
	// beyond it block the submitting client, not the coordinator.
	QueueDepth int
	// Logf, when set, receives coordinator lifecycle logging.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * o.HeartbeatInterval
	}
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 60 * time.Second
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Stats counts coordinator activity, for monitoring and tests.
type Stats struct {
	// Workers is the current live fleet size.
	Workers int
	// ConfigsBuilt counts configurations provisioned across the fleet.
	ConfigsBuilt int
	// ConfigsReused counts jobs that ran on an already-prepared
	// configuration (the cross-request session-reuse win).
	ConfigsReused int
	// JobsRun counts completed jobs, successful or not.
	JobsRun int
	// JobsFailed counts jobs that completed with an error.
	JobsFailed int
}

// Coordinator accepts worker registrations and client job submissions
// on one control port and drives distributed runs across the fleet.
type Coordinator struct {
	opts Options
	ln   net.Listener

	mu         sync.Mutex
	workers    map[int64]*workerConn
	configs    map[string]*clusterConfig
	conns      map[*msgConn]struct{} // every open control connection (workers and clients)
	stats      Stats
	nextWorker int64
	nextConfig uint64
	nextJob    uint64

	queue chan *job
	done  chan struct{}
	stop  sync.Once
	wg    sync.WaitGroup
}

// workerConn is the coordinator's view of one registered worker.
type workerConn struct {
	id       int64
	name     string
	mc       *msgConn
	lastSeen atomic.Int64 // unix nanos

	dead     chan struct{}
	deadOnce sync.Once

	mu      sync.Mutex
	waiters map[string]chan wire.Message
}

// clusterConfig is one provisioned configuration: a shape of job
// prepared across a fixed set of workers, with a live mesh between
// them.
type clusterConfig struct {
	id      uint64
	key     string
	ranks   int
	members []*workerConn
	spans   []exec.Span
}

// job is one queued client submission.
type job struct {
	id    uint64
	spec  wire.AppSpec
	reply chan wire.Message
}

// Start launches a coordinator listening on opts.Listen.
func Start(opts Options) (*Coordinator, error) {
	opts.fill()
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", opts.Listen, err)
	}
	c := &Coordinator{
		opts:    opts,
		ln:      ln,
		workers: map[int64]*workerConn{},
		configs: map[string]*clusterConfig{},
		conns:   map[*msgConn]struct{}{},
		queue:   make(chan *job, opts.QueueDepth),
		done:    make(chan struct{}),
	}
	c.wg.Add(3)
	go c.acceptLoop()
	go c.schedule()
	go c.monitorHeartbeats()
	opts.Logf("cluster: coordinator listening on %s", ln.Addr())
	return c, nil
}

// Addr returns the control address the coordinator is listening on.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Workers = len(c.workers)
	return s
}

// WorkerCount returns the current live fleet size.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// WaitWorkers blocks until at least n workers are registered, the
// timeout passes, or the coordinator closes. It returns the fleet size
// observed last, and an error if that is still below n.
func (c *Coordinator) WaitWorkers(n int, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for {
		got := c.WorkerCount()
		if got >= n {
			return got, nil
		}
		select {
		case <-c.done:
			return got, fmt.Errorf("cluster: coordinator closed with %d of %d workers", got, n)
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			return c.WorkerCount(), fmt.Errorf("cluster: %d of %d workers registered after %v", c.WorkerCount(), n, timeout)
		}
	}
}

// Close shuts the coordinator down: the listener closes, queued jobs
// fail, and every control connection — workers and clients alike —
// drops, so the connection handlers (and with them wg.Wait) cannot
// stay blocked in reads on idle client connections.
func (c *Coordinator) Close() {
	c.stop.Do(func() {
		close(c.done)
		c.ln.Close()
		c.mu.Lock()
		for mc := range c.conns {
			mc.close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		mc := newMsgConn(conn)
		c.mu.Lock()
		select {
		case <-c.done:
			// Raced with Close after it swept the registry; this
			// connection must not escape the sweep.
			c.mu.Unlock()
			mc.close()
			continue
		default:
		}
		c.conns[mc] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() {
				c.mu.Lock()
				delete(c.conns, mc)
				c.mu.Unlock()
				mc.close()
			}()
			c.handleConn(mc)
		}()
	}
}

// handleConn reads the first message of a fresh connection to decide
// whether its peer is a worker (register) or a client (submit).
func (c *Coordinator) handleConn(mc *msgConn) {
	m, err := mc.read()
	if err != nil {
		mc.close()
		return
	}
	switch m.Type {
	case wire.MsgRegister:
		c.serveWorker(mc, m)
	case wire.MsgSubmit:
		c.serveClient(mc, m)
	default:
		c.opts.Logf("cluster: %s opened with unexpected %q", mc.remoteAddr(), m.Type)
		mc.close()
	}
}

// --- worker side ---------------------------------------------------

func (c *Coordinator) serveWorker(mc *msgConn, reg wire.Message) {
	w := &workerConn{
		name:    reg.Name,
		mc:      mc,
		dead:    make(chan struct{}),
		waiters: map[string]chan wire.Message{},
	}
	w.lastSeen.Store(time.Now().UnixNano())

	c.mu.Lock()
	c.nextWorker++
	w.id = c.nextWorker
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", w.id)
	}
	c.workers[w.id] = w
	c.mu.Unlock()

	if err := mc.write(wire.Message{
		Type:           wire.MsgWelcome,
		Worker:         w.id,
		HeartbeatNanos: int64(c.opts.HeartbeatInterval),
	}); err != nil {
		c.markDead(w, fmt.Errorf("welcome: %w", err))
		return
	}
	c.opts.Logf("cluster: worker %q registered from %s", w.name, mc.remoteAddr())

	for {
		m, err := mc.read()
		if err != nil {
			c.markDead(w, fmt.Errorf("control connection: %w", err))
			return
		}
		w.lastSeen.Store(time.Now().UnixNano())
		switch m.Type {
		case wire.MsgHeartbeat:
			// lastSeen update above is the whole point.
		case wire.MsgPrepared:
			w.route(fmt.Sprintf("prepared/%d", m.Config), m)
		case wire.MsgReady:
			w.route(fmt.Sprintf("ready/%d", m.Config), m)
		case wire.MsgResult:
			w.route(fmt.Sprintf("result/%d", m.Job), m)
		default:
			c.opts.Logf("cluster: worker %q sent unexpected %q", w.name, m.Type)
		}
	}
}

// markDead declares a worker dead exactly once: it leaves the fleet,
// every configuration it participated in is dropped (surviving members
// are told to release, which aborts any wedged run), and any await on
// it fails immediately.
func (c *Coordinator) markDead(w *workerConn, cause error) {
	w.deadOnce.Do(func() {
		close(w.dead)
		w.mc.close()

		c.mu.Lock()
		delete(c.workers, w.id)
		var torn []*clusterConfig
		for key, cfg := range c.configs {
			for _, member := range cfg.members {
				if member == w {
					delete(c.configs, key)
					torn = append(torn, cfg)
					break
				}
			}
		}
		c.mu.Unlock()

		c.opts.Logf("cluster: worker %q dead (%v); dropped %d configs", w.name, cause, len(torn))
		for _, cfg := range torn {
			c.releaseConfig(cfg, w)
		}
	})
}

// releaseConfig tells every member except skip to drop a
// configuration. Best-effort: members may themselves be dying.
func (c *Coordinator) releaseConfig(cfg *clusterConfig, skip *workerConn) {
	for _, member := range cfg.members {
		if member == skip {
			continue
		}
		member.mc.write(wire.Message{Type: wire.MsgRelease, Config: cfg.id})
	}
}

// monitorHeartbeats declares silent workers dead. Control-connection
// errors catch a killed process faster; the heartbeat timeout catches
// stalls and partitions where the connection stays open.
func (c *Coordinator) monitorHeartbeats() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-c.opts.HeartbeatTimeout).UnixNano()
		c.mu.Lock()
		var stale []*workerConn
		for _, w := range c.workers {
			if w.lastSeen.Load() < cutoff {
				stale = append(stale, w)
			}
		}
		c.mu.Unlock()
		for _, w := range stale {
			c.markDead(w, fmt.Errorf("heartbeat timeout (%v)", c.opts.HeartbeatTimeout))
		}
	}
}

// call registers interest in replyKey, sends m, and waits for the
// reply — failing fast if the worker dies or the timeout passes. A
// reply whose Err field is set is returned as an error.
func (w *workerConn) call(m wire.Message, replyKey string, timeout time.Duration) (wire.Message, error) {
	ch := make(chan wire.Message, 1)
	w.mu.Lock()
	w.waiters[replyKey] = ch
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.waiters, replyKey)
		w.mu.Unlock()
	}()

	if err := w.mc.write(m); err != nil {
		return wire.Message{}, fmt.Errorf("worker %q: write %s: %w", w.name, m.Type, err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply := <-ch:
		if reply.Err != "" {
			return reply, fmt.Errorf("worker %q: %s", w.name, reply.Err)
		}
		return reply, nil
	case <-w.dead:
		return wire.Message{}, fmt.Errorf("worker %q died", w.name)
	case <-timer.C:
		return wire.Message{}, fmt.Errorf("worker %q: timed out waiting for %s", w.name, replyKey)
	}
}

func (w *workerConn) route(key string, m wire.Message) {
	w.mu.Lock()
	ch := w.waiters[key]
	w.mu.Unlock()
	if ch != nil {
		select {
		case ch <- m:
		default:
		}
	}
}

// --- client side ---------------------------------------------------

// serveClient streams one connection's jobs through the queue: each
// submit is answered with accepted (job id, while the job queues) and
// then done (result), so the client sees progress before completion.
func (c *Coordinator) serveClient(mc *msgConn, first wire.Message) {
	defer mc.close()
	m := first
	for {
		if m.Type != wire.MsgSubmit {
			return
		}
		done := c.submit(mc, m)
		if mc.write(done) != nil {
			return
		}
		var err error
		if m, err = mc.read(); err != nil {
			return
		}
	}
}

// submit validates, acknowledges, queues and runs one job, returning
// its done message.
func (c *Coordinator) submit(mc *msgConn, m wire.Message) wire.Message {
	fail := func(id uint64, format string, args ...any) wire.Message {
		return wire.Message{Type: wire.MsgDone, Job: id, Err: fmt.Sprintf(format, args...)}
	}
	c.mu.Lock()
	c.nextJob++
	id := c.nextJob
	c.mu.Unlock()

	if m.Spec == nil {
		return fail(id, "submit without spec")
	}
	if _, err := m.Spec.ToApp(); err != nil {
		return fail(id, "invalid spec: %v", err)
	}
	j := &job{id: id, spec: *m.Spec, reply: make(chan wire.Message, 1)}
	select {
	case c.queue <- j:
	case <-c.done:
		return fail(id, "coordinator shutting down")
	}
	mc.write(wire.Message{Type: wire.MsgAccepted, Job: id})
	select {
	case done := <-j.reply:
		return done
	case <-c.done:
		return fail(id, "coordinator shutting down")
	}
}

// schedule is the job loop: one run at a time across the fleet, with
// configuration reuse between jobs of the same shape.
func (c *Coordinator) schedule() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case j := <-c.queue:
			done := c.runJob(j)
			c.mu.Lock()
			c.stats.JobsRun++
			if done.Err != "" {
				c.stats.JobsFailed++
			}
			c.mu.Unlock()
			j.reply <- done
		}
	}
}

func (c *Coordinator) runJob(j *job) wire.Message {
	fail := func(format string, args ...any) wire.Message {
		return wire.Message{Type: wire.MsgDone, Job: j.id, Err: fmt.Sprintf(format, args...)}
	}

	key := wire.ShapeKey(j.spec)
	c.mu.Lock()
	cfg := c.configs[key]
	c.mu.Unlock()

	if cfg == nil {
		var err error
		cfg, err = c.buildConfig(key, j.spec)
		if err != nil {
			return fail("provision: %v", err)
		}
		c.mu.Lock()
		c.configs[key] = cfg
		c.stats.ConfigsBuilt++
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		c.stats.ConfigsReused++
		c.mu.Unlock()
	}

	// Run the job on every member and take the slowest worker's wall
	// time as the job's elapsed time.
	kernels := wire.KernelsOf(j.spec)
	results := make([]wire.Message, len(cfg.members))
	err := fanout(cfg.members, func(k int, w *workerConn) error {
		reply, err := w.call(wire.Message{
			Type:    wire.MsgRun,
			Config:  cfg.id,
			Job:     j.id,
			Kernels: kernels,
		}, fmt.Sprintf("result/%d", j.id), c.opts.JobTimeout)
		results[k] = reply
		return err
	})
	if err != nil {
		// The configuration's mesh may be mid-abort; drop it so the
		// next job of this shape provisions a fresh one over the
		// current fleet.
		c.dropConfig(cfg)
		return fail("run: %v", err)
	}
	var elapsed int64
	for _, r := range results {
		if r.ElapsedNanos > elapsed {
			elapsed = r.ElapsedNanos
		}
	}
	return wire.Message{
		Type:         wire.MsgDone,
		Job:          j.id,
		ElapsedNanos: elapsed,
		Workers:      cfg.ranks,
	}
}

// buildConfig provisions a new configuration over the live fleet:
// assign rank spans, prepare every member (plan slice + data
// listener), then distribute the rank→address table and wait for the
// mesh to come up.
func (c *Coordinator) buildConfig(key string, spec wire.AppSpec) (*clusterConfig, error) {
	c.mu.Lock()
	fleet := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		fleet = append(fleet, w)
	}
	c.nextConfig++
	id := c.nextConfig
	c.mu.Unlock()
	if len(fleet) == 0 {
		return nil, fmt.Errorf("no workers registered")
	}
	sort.Slice(fleet, func(a, b int) bool { return fleet[a].id < fleet[b].id })

	ranks := spec.Workers
	if ranks <= 0 {
		ranks = len(fleet)
	}
	spans := exec.BlockAssign(ranks, len(fleet))
	cfg := &clusterConfig{id: id, key: key, ranks: ranks}
	for k, w := range fleet {
		if spans[k].Len() == 0 {
			continue // more workers than ranks: the excess idles
		}
		cfg.members = append(cfg.members, w)
		cfg.spans = append(cfg.spans, spans[k])
	}

	// Prepare: every member builds its local plan slice and binds its
	// data listener, replying with the address.
	addrs := make([]string, ranks)
	err := fanout(cfg.members, func(k int, w *workerConn) error {
		spec := spec
		reply, err := w.call(wire.Message{
			Type:   wire.MsgPrepare,
			Config: id,
			Spec:   &spec,
			Ranks:  ranks,
			RankLo: cfg.spans[k].Lo,
			RankHi: cfg.spans[k].Hi,
		}, fmt.Sprintf("prepared/%d", id), c.opts.SetupTimeout)
		if err != nil {
			return err
		}
		for r := cfg.spans[k].Lo; r < cfg.spans[k].Hi; r++ {
			addrs[r] = reply.Addr
		}
		return nil
	})
	if err != nil {
		c.releaseConfig(cfg, nil)
		return nil, err
	}

	// Connect: all members wire the mesh concurrently — each one's
	// dials complete against the others' already-bound listeners.
	err = fanout(cfg.members, func(k int, w *workerConn) error {
		_, err := w.call(wire.Message{
			Type:   wire.MsgConnect,
			Config: id,
			Addrs:  addrs,
		}, fmt.Sprintf("ready/%d", id), c.opts.SetupTimeout)
		return err
	})
	if err != nil {
		c.releaseConfig(cfg, nil)
		return nil, err
	}
	c.opts.Logf("cluster: config %d ready: %d ranks over %d workers", id, ranks, len(cfg.members))
	return cfg, nil
}

// dropConfig removes a configuration and releases it on its members.
func (c *Coordinator) dropConfig(cfg *clusterConfig) {
	c.mu.Lock()
	if c.configs[cfg.key] == cfg {
		delete(c.configs, cfg.key)
	}
	c.mu.Unlock()
	c.releaseConfig(cfg, nil)
}

// fanout runs f concurrently over the members and returns on the
// *first* error — callers immediately release the configuration, which
// aborts the surviving members' in-flight work, so failure latency is
// one member's detection time rather than the slowest member's
// timeout. Stragglers drain into the buffered channel (no goroutine
// leaks); a nil return means every member completed.
func fanout(members []*workerConn, f func(k int, w *workerConn) error) error {
	errCh := make(chan error, len(members))
	for k, w := range members {
		go func(k int, w *workerConn) { errCh <- f(k, w) }(k, w)
	}
	for range members {
		if err := <-errCh; err != nil {
			return err
		}
	}
	return nil
}
