package cluster

import (
	"fmt"
	"strings"
	"time"

	"taskbench/internal/metrics"
	"taskbench/internal/wire"
)

// Exported metric names: the contract between the coordinator's
// registry, the /metrics exposition, the /snapshots.json gauges the
// loadgen poller reads, and the PromQL examples in the README. Gauges
// carry bare names; counters end in _total per Prometheus convention.
const (
	MetricQueueDepth      = "taskbench_queue_depth"
	MetricQueueCapacity   = "taskbench_queue_capacity"
	MetricJobsInFlight    = "taskbench_jobs_in_flight"
	MetricJobsRunning     = "taskbench_jobs_running"
	MetricWorkersLive     = "taskbench_workers_live"
	MetricWorkersDraining = "taskbench_workers_draining"
	MetricSchedulerSlots  = "taskbench_scheduler_slots"
	MetricConfigsPrepared = "taskbench_configs_prepared"
	MetricHeartbeatAge    = "taskbench_worker_heartbeat_age_seconds"

	MetricJobsCompleted = "taskbench_jobs_completed_total"
	MetricJobsFailed    = "taskbench_jobs_failed_total"
	MetricJobsRetried   = "taskbench_jobs_retried_total"
	MetricJobsRejected  = "taskbench_jobs_rejected_total"
	MetricJobsCancelled = "taskbench_jobs_cancelled_total"
	MetricJobsGaveUp    = "taskbench_jobs_gave_up_total"

	MetricConfigsBuilt         = "taskbench_configs_built_total"
	MetricConfigsReprovisioned = "taskbench_configs_reprovisioned_total"
	MetricConfigsEvicted       = "taskbench_configs_evicted_total"
	MetricCacheHits            = "taskbench_config_cache_hits_total"
	MetricCacheMisses          = "taskbench_config_cache_misses_total"

	MetricJobLatency = "taskbench_job_latency_seconds"
	MetricQueueWait  = "taskbench_job_queue_wait_seconds"
)

// coordMetrics is the coordinator's instrumentation: counters and
// histograms updated from the scheduler paths (atomic writes, no
// coordinator locks), gauges computed at scrape time from the
// coordinator's own state. Every counter here shadows a Stats field —
// Stats stays the control-protocol snapshot, the registry is the
// scrape/exposition view of the same events.
type coordMetrics struct {
	reg *metrics.Registry

	jobsCompleted *metrics.Counter
	jobsFailed    *metrics.Counter
	jobsRetried   *metrics.Counter
	jobsRejected  *metrics.Counter
	jobsCancelled *metrics.Counter
	jobsGaveUp    *metrics.Counter

	configsBuilt         *metrics.Counter
	configsReprovisioned *metrics.Counter
	configsEvicted       *metrics.Counter
	cacheHits            *metrics.CounterVec
	cacheMisses          *metrics.CounterVec

	jobLatency *metrics.Histogram
	queueWait  *metrics.Histogram
}

// newCoordMetrics builds the registry and wires the gauge functions to
// the coordinator. Gauge functions run at scrape/snapshot time with
// the registry mutex held and take c.mu (or read atomics) themselves —
// so coordinator code must never call registry-level methods (scrape,
// snapshot, registration) while holding c.mu. Counter and histogram
// updates are atomic and safe anywhere.
func newCoordMetrics(c *Coordinator) *coordMetrics {
	reg := metrics.NewRegistry()
	m := &coordMetrics{
		reg: reg,

		jobsCompleted: reg.Counter(MetricJobsCompleted, "Jobs that ran to completion, successful or not."),
		jobsFailed:    reg.Counter(MetricJobsFailed, "Jobs that completed with an error."),
		jobsRetried:   reg.Counter(MetricJobsRetried, "Re-runs after a worker death (one per extra attempt)."),
		jobsRejected:  reg.Counter(MetricJobsRejected, "Submissions refused at admission."),
		jobsCancelled: reg.Counter(MetricJobsCancelled, "Jobs abandoned before completion by client disconnect or cancel."),
		jobsGaveUp:    reg.Counter(MetricJobsGaveUp, "Retryable jobs that exhausted their attempt budget."),

		configsBuilt:         reg.Counter(MetricConfigsBuilt, "Configurations provisioned across the fleet."),
		configsReprovisioned: reg.Counter(MetricConfigsReprovisioned, "Configurations dropped because the fleet changed under them."),
		configsEvicted:       reg.Counter(MetricConfigsEvicted, "Idle configurations dropped by the MaxConfigs LRU cap."),
		cacheHits:            reg.CounterVec(MetricCacheHits, "Jobs that reused an already-prepared configuration, by shape.", "shape"),
		cacheMisses:          reg.CounterVec(MetricCacheMisses, "Jobs that had to provision a configuration, by shape.", "shape"),

		jobLatency: reg.Histogram(MetricJobLatency, "Job latency from admission to done reply.", nil),
		queueWait:  reg.Histogram(MetricQueueWait, "Time from admission to a scheduler slot claiming the job.", nil),
	}

	// locked wraps a reader so the gauge samples under c.mu. The
	// registration names stay literal constants at each GaugeFunc call:
	// metricsonce needs the name at the registration site to vet
	// duplicates statically.
	locked := func(fn func() float64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return fn()
		}
	}
	reg.GaugeFunc(MetricQueueDepth, "Jobs queued awaiting a scheduler slot.",
		locked(func() float64 { return float64(len(c.queue)) }))
	reg.GaugeFunc(MetricQueueCapacity, "Job queue capacity.",
		locked(func() float64 { return float64(c.opts.QueueDepth) }))
	reg.GaugeFunc(MetricJobsInFlight, "Jobs claimed by scheduler slots.",
		locked(func() float64 { return float64(c.inFlight) }))
	reg.GaugeFunc(MetricJobsRunning, "Jobs currently executing on the fleet.",
		locked(func() float64 { return float64(c.running) }))
	reg.GaugeFunc(MetricWorkersLive, "Registered live workers.",
		locked(func() float64 { return float64(len(c.workers)) }))
	reg.GaugeFunc(MetricWorkersDraining, "Fleet members mid-drain.",
		locked(func() float64 { return float64(c.drainingLocked()) }))
	reg.GaugeFunc(MetricSchedulerSlots, "Scheduler concurrency slots.",
		locked(func() float64 { return float64(c.opts.Concurrency) }))
	reg.GaugeFunc(MetricConfigsPrepared, "Shapes currently holding a prepared configuration.",
		locked(func() float64 {
			n := 0
			for _, e := range c.configs {
				if e.cfg != nil {
					n++
				}
			}
			return float64(n)
		}))
	reg.GaugeFunc(MetricHeartbeatAge, "Age of the stalest live worker's last heartbeat.",
		func() float64 {
			return time.Duration(c.maxHeartbeatAgeNanos(time.Now())).Seconds()
		})
	return m
}

// maxHeartbeatAgeNanos is the age of the stalest live worker's last
// heartbeat — 0 with an empty fleet (nothing to be stale about).
func (c *Coordinator) maxHeartbeatAgeNanos(now time.Time) int64 {
	nowNanos := now.UnixNano()
	c.mu.Lock()
	defer c.mu.Unlock()
	var max int64
	for _, w := range c.workers {
		if age := nowNanos - w.lastSeen.Load(); age > max {
			max = age
		}
	}
	return max
}

// shapeLabel renders a spec's structural shape as a bounded-length,
// human-readable metric label: per-graph "type/WxS" joined by "+",
// plus the requested rank count. Unlike wire.ShapeKey (the exact
// canonical JSON used as the cache key), the label is for dashboards —
// two specs with the same label may be distinct cache keys (kernel
// payload sizes differ), and that is fine for a counter label.
func shapeLabel(spec wire.AppSpec) string {
	var b strings.Builder
	for i, g := range spec.Graphs {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s/%dx%d", g.Type, g.Width, g.Steps)
	}
	if spec.Workers > 0 {
		fmt.Fprintf(&b, "/r%d", spec.Workers)
	}
	return b.String()
}
