package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// httpGet fetches one observability endpoint, returning status + body.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestHTTPObservabilityEndpoints(t *testing.T) {
	coord, _ := testFleetOpts(t, 2, func(o *Options) {
		o.HTTPAddr = "127.0.0.1:0"
		o.SnapshotInterval = 20 * time.Millisecond
		o.SnapshotRetention = 5
	})
	base := "http://" + coord.HTTPAddr()
	if coord.HTTPAddr() == "" {
		t.Fatal("HTTPAddr empty with HTTPAddr option set")
	}

	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Two jobs of one shape: a build (cache miss) then a reuse (hit).
	for i := 0; i < 2; i++ {
		if _, err := cli.Run(stencilSpec(2, 64)); err != nil {
			t.Fatal(err)
		}
	}

	// /metrics: Prometheus text including the acceptance-criteria
	// families — queue depth, per-shape cache hits, latency histogram.
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE " + MetricQueueDepth + " gauge",
		"# TYPE " + MetricJobsCompleted + " counter",
		MetricJobsCompleted + " 2",
		"# TYPE " + MetricCacheHits + " counter",
		MetricCacheHits + `{shape="stencil_1d_periodic/6x20/r2"} 1`,
		MetricCacheMisses + `{shape="stencil_1d_periodic/6x20/r2"} 1`,
		"# TYPE " + MetricJobLatency + " histogram",
		MetricJobLatency + `_bucket{le="+Inf"} 2`,
		MetricJobLatency + "_count 2",
		MetricWorkersLive + " 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// /healthz: two live workers and an empty queue is healthy.
	code, body = httpGet(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var hz healthzReply
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("/healthz decode: %v", err)
	}
	if hz.Status != "ok" || hz.Workers != 2 || hz.QueueCap == 0 {
		t.Fatalf("/healthz = %+v", hz)
	}

	// /snapshots.json: the ring retains at most SnapshotRetention
	// samples and the newest one carries the completed-jobs counter.
	deadline := time.Now().Add(5 * time.Second)
	var sr snapshotsReply
	for {
		_, body = httpGet(t, base+"/snapshots.json")
		sr = snapshotsReply{}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("/snapshots.json decode: %v", err)
		}
		if len(sr.Snapshots) == sr.Retention {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never filled: %d of %d snapshots", len(sr.Snapshots), sr.Retention)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sr.Retention != 5 || sr.IntervalNanos != int64(20*time.Millisecond) {
		t.Fatalf("snapshot dims = %+v", sr)
	}
	last := sr.Snapshots[len(sr.Snapshots)-1]
	if last.Counters[MetricJobsCompleted] != 2 {
		t.Fatalf("latest snapshot counters = %+v", last.Counters)
	}
	if _, ok := last.Gauges[MetricWorkersLive]; !ok {
		t.Fatalf("latest snapshot gauges = %+v", last.Gauges)
	}
	if prev := sr.Snapshots[0].UnixNanos; prev >= last.UnixNanos {
		t.Fatalf("snapshots not oldest-first: %d .. %d", prev, last.UnixNanos)
	}
}

func TestHTTPHealthzDegradedWithoutWorkers(t *testing.T) {
	coord, err := Start(Options{HTTPAddr: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	code, body := httpGet(t, "http://"+coord.HTTPAddr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d with empty fleet: %s", code, body)
	}
	var hz healthzReply
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Reason != "no placeable workers" {
		t.Fatalf("/healthz = %+v", hz)
	}
}

// TestStatsInfoObservabilityFields checks the v6 StatsInfo additions
// end to end over the control protocol: cache hit/miss counters,
// heartbeat age, and latency percentiles all populate after real jobs.
func TestStatsInfoObservabilityFields(t *testing.T) {
	coord, _ := testFleet(t, 2)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 3; i++ {
		if _, err := cli.Run(stencilSpec(2, 64)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.ConfigCacheMisses != 1 || s.ConfigCacheHits != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 2/1 (StatsInfo %+v)", s.ConfigCacheHits, s.ConfigCacheMisses, s)
	}
	if s.LatencyP50Nanos <= 0 || s.LatencyP99Nanos < s.LatencyP50Nanos {
		t.Fatalf("latency percentiles = p50 %d p99 %d", s.LatencyP50Nanos, s.LatencyP99Nanos)
	}
	// Heartbeat age is bounded by the test fleet's heartbeat interval
	// plus scheduling slack; with live workers it must be sane, not 0
	// forever and not minutes.
	if s.MaxHeartbeatAgeNanos < 0 || s.MaxHeartbeatAgeNanos > int(10*time.Second) {
		t.Fatalf("heartbeat age = %d ns", s.MaxHeartbeatAgeNanos)
	}
}

// TestMetricsOffDataPlane pins the instrumentation to the control
// plane: a coordinator without -http runs no collector and no HTTP
// server, and per-job metric updates are atomics — the zero-alloc
// data-plane benchmarks in internal/runtime stay the enforcement for
// the task path itself.
func TestMetricsOffDataPlane(t *testing.T) {
	coord, _ := testFleet(t, 1)
	if coord.collector != nil || coord.http != nil {
		t.Fatal("collector/http running without HTTPAddr")
	}
	if coord.HTTPAddr() != "" {
		t.Fatalf("HTTPAddr = %q without HTTP server", coord.HTTPAddr())
	}
	// The registry still exists (statsInfo percentiles read it), and
	// scraping it directly is allowed even without the server.
	var sb strings.Builder
	if err := coord.metrics.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), MetricWorkersLive+" 1") {
		t.Fatalf("registry scrape missing fleet gauge:\n%s", sb.String())
	}
}
