package cluster

import (
	"testing"
	"time"

	"taskbench/internal/chaos"
)

// TestClusterJoinReprovisionsShape pins join-triggered growth: a shape
// prepared while the fleet was small goes stale when a worker joins
// with spare room for its ranks, and the next job of that shape is
// re-provisioned over the grown fleet instead of running forever on
// the old, narrower placement.
func TestClusterJoinReprovisionsShape(t *testing.T) {
	coord, _ := testFleet(t, 1)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Two ranks squeezed onto the single worker.
	spec := stencilSpec(2, 64)
	if _, err := cli.Run(spec); err != nil {
		t.Fatalf("pre-join run: %v", err)
	}
	if st := coord.Stats(); st.ConfigsBuilt != 1 {
		t.Fatalf("configs built = %d, want 1", st.ConfigsBuilt)
	}

	// A second worker registers mid-flight.
	late := NewWorker(WorkerOptions{
		Coordinator: coord.Addr(),
		Name:        "late-join",
		Logf:        t.Logf,
	})
	go late.Run()
	t.Cleanup(late.Close)
	if _, err := coord.WaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// The same shape must be rebuilt over the grown fleet.
	if _, err := cli.Run(spec); err != nil {
		t.Fatalf("post-join run: %v", err)
	}
	st := coord.Stats()
	if st.ConfigsReprovisioned < 1 {
		t.Errorf("configs reprovisioned = %d, want >= 1 after join", st.ConfigsReprovisioned)
	}
	if st.ConfigsBuilt != 2 {
		t.Errorf("configs built = %d, want 2 (stale config rebuilt)", st.ConfigsBuilt)
	}
}

// TestClusterDrainMidRun pins the graceful-departure contract: a
// worker draining while it hosts ranks of a running job lets that run
// finish (no errWorkerLost retry, no failure), is excluded from new
// placement, and its Run call returns nil once the coordinator
// releases it — the clean-exit path, distinct from heartbeat death.
func TestClusterDrainMidRun(t *testing.T) {
	coord, _ := testFleetOpts(t, 1, nil)
	drainee := NewWorker(WorkerOptions{
		Coordinator: coord.Addr(),
		Name:        "drainee",
		Logf:        t.Logf,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- drainee.Run() }()
	t.Cleanup(drainee.Close)
	if _, err := coord.WaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// A job slow enough to still be running when the drain lands.
	p, err := cli.SubmitAsync(busySpec(2, 6, 400, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, coord, "job running", 20*time.Second, func(s Stats) bool {
		return s.JobsRunning >= 1
	})
	if err := drainee.Drain(); err != nil {
		t.Fatal(err)
	}
	waitStats(t, coord, "drain observed", 5*time.Second, func(s Stats) bool {
		return s.WorkersDraining == 1
	})

	res, err := p.Wait()
	if err != nil {
		t.Fatalf("protocol error during drain: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("job failed during drain: %v", res.Err)
	}

	// The worker's Run must return nil — the coordinator confirmed the
	// drain rather than cutting the connection.
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained worker Run = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker did not exit")
	}

	waitStats(t, coord, "fleet shrinks to 1", 10*time.Second, func(s Stats) bool {
		return s.Workers == 1 && s.WorkersDraining == 0
	})
	st := coord.Stats()
	if st.JobsRetried != 0 {
		t.Errorf("jobs retried = %d, want 0 (drain must not look like death)", st.JobsRetried)
	}
	if st.JobsFailed != 0 {
		t.Errorf("jobs failed = %d, want 0", st.JobsFailed)
	}

	// The survivor keeps serving.
	if _, err := cli.Run(stencilSpec(1, 32)); err != nil {
		t.Fatalf("post-drain run: %v", err)
	}
}

// TestClusterDuplicateRegistrationReplaces pins fast-restart identity:
// a worker re-registering under a name already in the fleet replaces
// the stale entry instead of double-counting scheduler slots.
func TestClusterDuplicateRegistrationReplaces(t *testing.T) {
	coord, _ := testFleet(t, 2)
	restarted := NewWorker(WorkerOptions{
		Coordinator: coord.Addr(),
		Name:        "wA", // same identity as testFleet's first worker
		Logf:        t.Logf,
	})
	go restarted.Run()
	t.Cleanup(restarted.Close)

	// The fleet must settle back at 2 — and stay there across a few
	// heartbeats, which catches both double-counting (3) and the
	// replacement evicting the wrong entry (1).
	waitStats(t, coord, "replacement settles", 10*time.Second, func(s Stats) bool {
		return s.Workers == 2
	})
	time.Sleep(300 * time.Millisecond)
	if n := coord.WorkerCount(); n != 2 {
		t.Fatalf("fleet size = %d after re-registration, want 2", n)
	}

	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Run(stencilSpec(2, 32)); err != nil {
		t.Fatalf("run after replacement: %v", err)
	}
}

// TestClusterEvictsColdConfigs pins the MaxConfigs LRU cap: preparing
// more shapes than the cap allows evicts the coldest idle
// configuration rather than growing without bound, and every job still
// completes.
func TestClusterEvictsColdConfigs(t *testing.T) {
	coord, _ := testFleetOpts(t, 1, func(o *Options) { o.MaxConfigs = 2 })
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for width := 2; width <= 5; width++ {
		if _, err := cli.Run(busySpec(1, width, 4, 100*time.Microsecond)); err != nil {
			t.Fatalf("width-%d run: %v", width, err)
		}
	}
	st := coord.Stats()
	if st.ConfigsBuilt != 4 {
		t.Errorf("configs built = %d, want 4", st.ConfigsBuilt)
	}
	if st.ConfigsEvicted < 2 {
		t.Errorf("configs evicted = %d, want >= 2 under MaxConfigs=2", st.ConfigsEvicted)
	}

	// An evicted shape rebuilds transparently on its next job.
	if _, err := cli.Run(busySpec(1, 2, 4, 100*time.Microsecond)); err != nil {
		t.Fatalf("re-run of evicted shape: %v", err)
	}
	if st := coord.Stats(); st.ConfigsBuilt != 5 {
		t.Errorf("configs built = %d after evicted-shape re-run, want 5", st.ConfigsBuilt)
	}
}

// TestClusterChaosResetMidRun pins crash recovery under the scripted
// harness: a worker whose chaos scenario resets its control connection
// at the mid-run point dies from the coordinator's perspective, and
// the job retries over the survivor and completes.
func TestClusterChaosResetMidRun(t *testing.T) {
	coord, _ := testFleetOpts(t, 1, nil)
	sc, err := chaos.Parse("reset:at=mid-run,n=1")
	if err != nil {
		t.Fatal(err)
	}
	chaotic := NewWorker(WorkerOptions{
		Coordinator: coord.Addr(),
		Name:        "chaotic",
		Chaos:       chaos.NewInjector(sc, 42),
		Logf:        t.Logf,
	})
	go chaotic.Run()
	t.Cleanup(chaotic.Close)
	if _, err := coord.WaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Run(stencilSpec(2, 64)); err != nil {
		t.Fatalf("job failed despite retry: %v", err)
	}
	st := coord.Stats()
	if st.JobsRetried < 1 {
		t.Errorf("jobs retried = %d, want >= 1 after chaos reset", st.JobsRetried)
	}
	waitStats(t, coord, "chaotic worker declared dead", 10*time.Second, func(s Stats) bool {
		return s.Workers == 1
	})
}

// TestClusterChaosHeartbeatMute pins the dead-air scenario: a worker
// whose heartbeats are muted by the chaos schedule trips the
// coordinator's heartbeat timeout and leaves the fleet, while the
// unmuted worker stays.
func TestClusterChaosHeartbeatMute(t *testing.T) {
	coord, _ := testFleetOpts(t, 1, nil)
	sc, err := chaos.Parse("mute-hb:after=1,n=1000")
	if err != nil {
		t.Fatal(err)
	}
	muted := NewWorker(WorkerOptions{
		Coordinator: coord.Addr(),
		Name:        "muted",
		Chaos:       chaos.NewInjector(sc, 7),
		Logf:        t.Logf,
	})
	go muted.Run()
	t.Cleanup(muted.Close)
	if _, err := coord.WaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	waitStats(t, coord, "muted worker times out", 10*time.Second, func(s Stats) bool {
		return s.Workers == 1
	})
}
