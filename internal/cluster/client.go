package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/wire"
)

// Client submits jobs to a coordinator and reads the streamed results.
// A client holds one control connection; Submit calls are serialized
// on it by an internal mutex (the coordinator runs jobs through a
// queue anyway), so a Client is safe for concurrent use.
type Client struct {
	mu sync.Mutex
	mc *msgConn

	// statsApp caches the app rebuilt for client-side statistics: an
	// METG sweep submits the same shape per point, and the cached
	// graphs keep their memoized dependence totals warm instead of
	// re-deriving the relation at every point.
	statsKey string
	statsApp *core.App
}

// JobResult is one completed job as reported by the coordinator.
type JobResult struct {
	// Job is the coordinator-assigned job id.
	Job uint64
	// Elapsed is the slowest participating worker's wall time.
	Elapsed time.Duration
	// Workers is the rank count the job ran on.
	Workers int
	// Err is the job-level failure, if any (a dead worker, a
	// validation error, an unprovisionable configuration).
	Err error
}

// Dial connects to a coordinator's control address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &Client{mc: newMsgConn(conn)}, nil
}

// Close releases the control connection.
func (c *Client) Close() { c.mc.close() }

// Submit queues one job and blocks until it completes, reading the
// streamed accepted/done pair. The error return covers protocol
// failures (lost coordinator); job-level failures come back in
// JobResult.Err so callers can distinguish "the run failed" from "the
// cluster is gone".
func (c *Client) Submit(spec wire.AppSpec) (JobResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submit(spec)
}

func (c *Client) submit(spec wire.AppSpec) (JobResult, error) {
	if err := c.mc.write(wire.Message{Type: wire.MsgSubmit, Spec: &spec}); err != nil {
		return JobResult{}, fmt.Errorf("cluster: submit: %w", err)
	}
	var res JobResult
	for {
		m, err := c.mc.read()
		if err != nil {
			return JobResult{}, fmt.Errorf("cluster: coordinator connection: %w", err)
		}
		switch m.Type {
		case wire.MsgAccepted:
			res.Job = m.Job
		case wire.MsgDone:
			res.Job = m.Job
			res.Elapsed = time.Duration(m.ElapsedNanos)
			res.Workers = m.Workers
			if m.Err != "" {
				res.Err = errors.New(m.Err)
			}
			return res, nil
		default:
			return JobResult{}, fmt.Errorf("cluster: unexpected %q from coordinator", m.Type)
		}
	}
}

// Run submits the spec and converts the result into the same RunStats
// every local backend reports, so cluster runs drop into existing
// tooling (METG sweeps, reports). The static quantities (task count,
// expected flops) are derived client-side from the spec; the cluster
// contributes the measured wall time and rank count.
func (c *Client) Run(spec wire.AppSpec) (core.RunStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, err := c.appFor(spec)
	if err != nil {
		return core.RunStats{}, err
	}
	res, err := c.submit(spec)
	if err != nil {
		return core.RunStats{}, err
	}
	stats := core.StatsFor(app)
	stats.Elapsed = res.Elapsed
	stats.Workers = res.Workers
	return stats, res.Err
}

// appFor returns the app for client-side statistics, reusing the
// cached graphs when only the kernels changed (the sweep case) so the
// shape-static totals stay memoized. Callers hold c.mu.
func (c *Client) appFor(spec wire.AppSpec) (*core.App, error) {
	key := wire.ShapeKey(spec)
	if c.statsApp != nil && c.statsKey == key {
		for gi, ks := range wire.KernelsOf(spec) {
			k, err := ks.ToConfig()
			if err != nil {
				return nil, err
			}
			c.statsApp.Graphs[gi].Kernel = k
		}
		return c.statsApp, nil
	}
	app, err := spec.ToApp()
	if err != nil {
		return nil, err
	}
	c.statsKey, c.statsApp = key, app
	return app, nil
}
