package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/wire"
)

// Client submits jobs to a coordinator over one control connection.
// Submissions pipeline: many jobs may be in flight at once (the
// coordinator matches done replies by job id), so a Client is safe —
// and useful — for concurrent use. A background read loop demultiplexes
// replies to the per-submission Pending handles.
type Client struct {
	mc *msgConn

	// subMu serializes submissions so the fifo order below matches the
	// order submits hit the wire; the read loop never takes it.
	subMu sync.Mutex

	mu       sync.Mutex
	err      error               // sticky protocol failure
	fifo     []*Pending          // submitted, awaiting accepted/rejected (reply order = submit order)
	byID     map[uint64]*Pending // accepted, awaiting done (matched by job id)
	queries  map[uint64]chan statsOutcome
	nextStat uint64 // correlation ids for stats queries
	started  bool

	// statsApp caches the app rebuilt for client-side statistics: an
	// METG sweep submits the same shape per point, and the cached
	// graphs keep their memoized dependence totals warm instead of
	// re-deriving the relation at every point.
	statsMu  sync.Mutex
	statsKey string
	statsApp *core.App
}

// JobResult is one completed job as reported by the coordinator.
type JobResult struct {
	// Job is the coordinator-assigned job id.
	Job uint64
	// Elapsed is the slowest participating worker's wall time.
	Elapsed time.Duration
	// Workers is the rank count the job ran on.
	Workers int
	// Rejected reports that the job never ran: the coordinator refused
	// it at admission (full queue, invalid spec), with the reason in
	// Err. A queue-full rejection is immediate — the fast signal to
	// back off and resubmit, rather than blocking behind the backlog.
	Rejected bool
	// Err is the job-level failure, if any (a dead worker after all
	// retry attempts, a validation error, a rejection, a cancellation).
	Err error
}

// Pending is one in-flight submission.
type Pending struct {
	cli          *Client
	ch           chan pendingOutcome
	id           atomic.Uint64
	cancelWanted atomic.Bool
}

type pendingOutcome struct {
	res JobResult
	err error
}

type statsOutcome struct {
	info wire.StatsInfo
	err  error
}

// Wait blocks until the job completes, is rejected, or the connection
// fails. The error return covers protocol failures (lost coordinator);
// job-level failures come back in JobResult.Err so callers can
// distinguish "the run failed" from "the cluster is gone".
func (p *Pending) Wait() (JobResult, error) {
	out := <-p.ch
	return out.res, out.err
}

// WaitContext is Wait with a deadline: a stalled coordinator yields
// ctx.Err() instead of a goroutine parked forever on the demux. The
// submission itself stays in flight — a later Wait (or the read loop)
// still resolves it, and callers abandoning the job should Cancel.
func (p *Pending) WaitContext(ctx context.Context) (JobResult, error) {
	select {
	case out := <-p.ch:
		return out.res, out.err
	case <-ctx.Done():
		return JobResult{}, ctx.Err()
	}
}

// Cancel asks the coordinator to abandon the job: a queued job is
// dropped, a running one is aborted and its workers released.
// Best-effort — the job may complete first.
func (p *Pending) Cancel() {
	p.cancelWanted.Store(true)
	if id := p.id.Load(); id != 0 {
		p.cli.mc.write(wire.Message{Type: wire.MsgCancel, Job: id})
	}
	// If the accepted reply has not arrived yet, the read loop sends
	// the cancel as soon as it learns the job id.
}

// Dial connects to a coordinator's control address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &Client{mc: newMsgConn(conn), byID: map[uint64]*Pending{}, queries: map[uint64]chan statsOutcome{}}, nil
}

// Close releases the control connection. In-flight submissions fail
// with a protocol error; coordinator-side, they are cancelled by the
// disconnect.
func (c *Client) Close() { c.mc.close() }

// SubmitAsync queues one job without waiting for it, so a connection
// can pipeline many jobs — the coordinator runs compatible shapes
// concurrently across the fleet. The returned Pending resolves when
// the coordinator rejects or finishes the job.
func (c *Client) SubmitAsync(spec wire.AppSpec) (*Pending, error) {
	p := &Pending{cli: c, ch: make(chan pendingOutcome, 1)}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if !c.started {
		c.started = true
		go c.readLoop()
	}
	c.fifo = append(c.fifo, p)
	c.mu.Unlock()
	// Every submit advertises the binary frame format; the coordinator
	// echoes the offer on its admission replies if it accepts, and the
	// read loop switches this side's writes then. A coordinator pinned
	// to JSON (or an older one) simply never echoes.
	if err := c.mc.write(wire.Message{Type: wire.MsgSubmit, Spec: &spec, Proto: wire.ProtoBinary}); err != nil {
		c.mu.Lock()
		for i, q := range c.fifo {
			if q == p {
				c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: submit: %w", err)
	}
	return p, nil
}

// Stats fetches the coordinator's gauge/counter snapshot over the
// control connection — queue depth, jobs in flight and running,
// admission and retry counters, and the scheduler dimensions — so a
// monitoring client (the load generator's utilization feed) never
// scrapes coordinator process internals. Safe for concurrent use and
// freely interleaved with in-flight submissions: requests are matched
// to replies by a correlation id, not by order.
func (c *Client) Stats() (wire.StatsInfo, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats with a deadline: a stalled coordinator (alive
// TCP connection, wedged process) yields ctx.Err() instead of a
// goroutine parked forever on the demux. An abandoned query's late
// reply is dropped by the read loop, not mistaken for a failure.
func (c *Client) StatsContext(ctx context.Context) (wire.StatsInfo, error) {
	ch := make(chan statsOutcome, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return wire.StatsInfo{}, err
	}
	if !c.started {
		c.started = true
		go c.readLoop()
	}
	c.nextStat++
	id := c.nextStat
	c.queries[id] = ch
	c.mu.Unlock()
	// Like every submit, a stats request advertises the binary frame
	// format; a stats-first connection negotiates through its reply.
	if err := c.mc.write(wire.Message{Type: wire.MsgStats, Job: id, Proto: wire.ProtoBinary}); err != nil {
		c.mu.Lock()
		delete(c.queries, id)
		c.mu.Unlock()
		return wire.StatsInfo{}, fmt.Errorf("cluster: stats: %w", err)
	}
	select {
	case out := <-ch:
		return out.info, out.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.queries, id)
		c.mu.Unlock()
		return wire.StatsInfo{}, ctx.Err()
	}
}

// Submit queues one job and blocks until it completes or is rejected.
func (c *Client) Submit(spec wire.AppSpec) (JobResult, error) {
	p, err := c.SubmitAsync(spec)
	if err != nil {
		return JobResult{}, err
	}
	return p.Wait()
}

// readLoop demultiplexes coordinator replies: accepted and rejected
// are matched to submissions in order (the coordinator answers every
// submit immediately), done is matched to its accepted job by id.
func (c *Client) readLoop() {
	for {
		m, err := c.mc.read()
		if err != nil {
			c.failAll(fmt.Errorf("cluster: coordinator connection: %w", err))
			return
		}
		if (m.Type == wire.MsgAccepted || m.Type == wire.MsgRejected || m.Type == wire.MsgStatsRply) && m.Proto == wire.ProtoBinary {
			c.mc.binary.Store(true)
		}
		switch m.Type {
		case wire.MsgAccepted:
			c.mu.Lock()
			p := c.popFIFO()
			if p != nil {
				c.byID[m.Job] = p
			}
			c.mu.Unlock()
			if p != nil {
				p.id.Store(m.Job)
				if p.cancelWanted.Load() {
					c.mc.write(wire.Message{Type: wire.MsgCancel, Job: m.Job})
				}
			}
		case wire.MsgRejected:
			c.mu.Lock()
			p := c.popFIFO()
			c.mu.Unlock()
			if p != nil {
				p.ch <- pendingOutcome{res: JobResult{Job: m.Job, Rejected: true, Err: errors.New(m.Err)}}
			}
		case wire.MsgDone:
			c.mu.Lock()
			p := c.byID[m.Job]
			delete(c.byID, m.Job)
			c.mu.Unlock()
			if p == nil {
				// Every done must name an accepted job; matching a
				// stray one against the FIFO instead would resolve an
				// unrelated submission with the wrong result.
				c.failAll(fmt.Errorf("cluster: done for unknown job %d", m.Job))
				return
			}
			res := JobResult{Job: m.Job, Elapsed: time.Duration(m.ElapsedNanos), Workers: m.Workers}
			if m.Err != "" {
				res.Err = errors.New(m.Err)
			}
			p.ch <- pendingOutcome{res: res}
		case wire.MsgStatsRply:
			c.mu.Lock()
			ch := c.queries[m.Job]
			delete(c.queries, m.Job)
			c.mu.Unlock()
			if ch == nil {
				// The query timed out (StatsContext) and was abandoned;
				// its late reply is stale, not a protocol violation.
				continue
			}
			var info wire.StatsInfo
			if m.Stats != nil {
				info = *m.Stats
			}
			ch <- statsOutcome{info: info}
		default:
			c.failAll(fmt.Errorf("cluster: unexpected %q from coordinator", m.Type))
			return
		}
	}
}

// popFIFO removes and returns the oldest submission still awaiting its
// accepted/rejected reply. Callers hold c.mu.
func (c *Client) popFIFO() *Pending {
	if len(c.fifo) == 0 {
		return nil
	}
	p := c.fifo[0]
	c.fifo = c.fifo[1:]
	return p
}

// failAll resolves every in-flight submission with a protocol error
// and poisons the client for further submits.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	c.err = err
	pending := make([]*Pending, 0, len(c.fifo)+len(c.byID))
	pending = append(pending, c.fifo...)
	for _, p := range c.byID {
		pending = append(pending, p)
	}
	c.fifo = nil
	c.byID = map[uint64]*Pending{}
	queries := make([]chan statsOutcome, 0, len(c.queries))
	for _, ch := range c.queries {
		queries = append(queries, ch)
	}
	c.queries = map[uint64]chan statsOutcome{}
	c.mu.Unlock()
	for _, p := range pending {
		p.ch <- pendingOutcome{err: err}
	}
	for _, ch := range queries {
		ch <- statsOutcome{err: err}
	}
}

// Run submits the spec and converts the result into the same RunStats
// every local backend reports, so cluster runs drop into existing
// tooling (METG sweeps, reports). The static quantities (task count,
// expected flops) are derived client-side from the spec; the cluster
// contributes the measured wall time and rank count.
func (c *Client) Run(spec wire.AppSpec) (core.RunStats, error) {
	// The static stats are snapshotted before the submission, under the
	// cache lock: a concurrent Run with a different kernel must not see
	// this call's kernel mutation on the shared cached app.
	stats, err := c.statsFor(spec)
	if err != nil {
		return core.RunStats{}, err
	}
	res, err := c.Submit(spec)
	if err != nil {
		return core.RunStats{}, err
	}
	stats.Elapsed = res.Elapsed
	stats.Workers = res.Workers
	return stats, res.Err
}

// statsFor computes the spec's static run statistics, reusing the
// cached graphs when only the kernels changed (the sweep case) so the
// shape-static totals stay memoized.
func (c *Client) statsFor(spec wire.AppSpec) (core.RunStats, error) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	key := wire.ShapeKey(spec)
	if c.statsApp != nil && c.statsKey == key {
		for gi, ks := range wire.KernelsOf(spec) {
			k, err := ks.ToConfig()
			if err != nil {
				return core.RunStats{}, err
			}
			c.statsApp.Graphs[gi].Kernel = k
		}
		return core.StatsFor(c.statsApp), nil
	}
	app, err := spec.ToApp()
	if err != nil {
		return core.RunStats{}, err
	}
	c.statsKey, c.statsApp = key, app
	return core.StatsFor(app), nil
}
