// Package cluster is the coordinator/worker subsystem for true
// multi-process distributed runs — the missing tier internal/wire
// promised when it described specs "shipped to remote workers".
//
// A Coordinator listens on a TCP control port. Worker processes dial
// in, register, and heartbeat; clients dial the same port and submit
// wire.AppSpec jobs. For each distinct job *shape* (the spec minus its
// kernel configurations) the coordinator provisions a configuration:
// it assigns every worker a contiguous span of the run's ranks, has
// each worker build its slice of the rank plan
// (exec.BuildRankPlanLocal) and a data listener, distributes the
// resulting rank→address table, and lets the workers wire a tcp
// MeshTransport spanning all processes. Jobs with the same shape reuse
// the prepared configuration — plans, payload rows and the live
// connection mesh — and only swap kernel configurations, the
// cross-request analog of the reusable exec.RankSession (so a
// distributed METG sweep pays mesh establishment once, not per point).
//
// Scheduling is concurrent: a bounded pool of scheduler slots
// (Options.Concurrency) claims queued jobs, so jobs of different
// shapes overlap across the fleet while jobs sharing a shape pipeline
// one at a time over their shared prepared configuration (a per-shape
// run lock — the mesh and payload rows are single-run state). A full
// queue rejects new submissions immediately instead of blocking the
// submitter, and one client connection may have many jobs in flight
// (done replies are matched by job id).
//
// Failure semantics: workers heartbeat on the control connection; a
// missed-heartbeat timeout or a control-connection error declares a
// worker dead. Death aborts its in-flight jobs cleanly (never a hang:
// surviving workers' mesh transports abort, unblocking every pending
// receive), drops every configuration the worker participated in, and
// the affected jobs are automatically retried — re-provisioned over
// the reshaped fleet, with an attempt counter on the wire so a stale
// run's late result is discarded — up to Options.MaxAttempts. A client
// that disconnects (or sends cancel) has its in-flight jobs cancelled,
// releasing the workers they occupied.
//
// The protocol state machine per worker:
//
//	register → welcome → { heartbeat | prepare→prepared |
//	                       connect→ready | run→result | release }*
//
// and per client: submit → accepted|rejected, with one done per
// accepted job (any order, matched by id) and cancel available for
// accepted jobs.
package cluster

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"taskbench/internal/chaos"
	"taskbench/internal/wire"
)

// msgConn frames wire.Messages over one TCP connection. Reads are
// bilingual — wire.ReadMessageFrom detects per message whether the
// peer framed it as newline-delimited JSON or as a binary frame — so
// the connection can switch formats mid-conversation without a window
// where a frame is unreadable. Writes start as JSON (the opening and
// debug format) and switch to binary once negotiation (the Proto
// offer/echo at register/welcome or submit/first-reply time) sets the
// binary flag. A write mutex serializes writers (heartbeats and
// replies interleave); a nonzero writeTimeout bounds each write: the
// coordinator arms it on accepted connections so a peer that stops
// draining its socket (a SIGSTOPped client, say) turns into a write
// error — freeing the scheduler slot delivering to it — instead of a
// goroutine parked in write forever.
type msgConn struct {
	conn         net.Conn
	br           *bufio.Reader
	wmu          sync.Mutex
	writeTimeout time.Duration
	binary       atomic.Bool
	// chaos, when set (before the connection is shared), injects
	// scripted control-frame faults into this side's writes: delays,
	// drops (the write pretends to succeed) and duplicates. Heartbeats
	// are exempt from drop/dup — suppressing them is its own scripted
	// fault (mute-hb), not a side effect of frame loss, so scenarios
	// stay orthogonal.
	chaos *chaos.Injector
}

func newMsgConn(conn net.Conn) *msgConn {
	return &msgConn{conn: conn, br: bufio.NewReader(conn)}
}

func (c *msgConn) read() (wire.Message, error) {
	return wire.ReadMessageFrom(c.br)
}

func (c *msgConn) write(m wire.Message) error {
	writes := 1
	if c.chaos != nil {
		act := c.chaos.Frame(m.Type)
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
		if m.Type != wire.MsgHeartbeat {
			if act.Drop {
				return nil
			}
			if act.Dup {
				writes = 2
			}
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for ; writes > 0; writes-- {
		if c.writeTimeout > 0 {
			c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout))
		}
		var err error
		if c.binary.Load() {
			err = wire.WriteMessageBinary(c.conn, m)
		} else {
			err = wire.WriteMessage(c.conn, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *msgConn) close() { c.conn.Close() }

// protoName labels a negotiated frame format for logs: the empty
// string (no offer, or offer declined) means the conversation stayed
// JSON.
func protoName(proto string) string {
	if proto == "" {
		return wire.ProtoJSON
	}
	return proto
}

// remoteAddr names the peer for log messages.
func (c *msgConn) remoteAddr() string { return c.conn.RemoteAddr().String() }
