package cluster

import (
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"taskbench/internal/wire"
)

// TestClusterWorkerHelper is not a test: it is the worker process body
// of the multi-process end-to-end test, entered when the test binary
// re-invokes itself with TASKBENCH_CLUSTER_COORD set. It serves until
// the coordinator (the parent test process) goes away. With
// TASKBENCH_CLUSTER_DRAIN set, SIGTERM triggers a graceful drain
// instead — the taskbenchd -drain-on path — and Run must then return
// nil so the process exits cleanly.
func TestClusterWorkerHelper(t *testing.T) {
	coord := os.Getenv("TASKBENCH_CLUSTER_COORD")
	if coord == "" {
		t.Skip("helper process entry point; set TASKBENCH_CLUSTER_COORD to use")
	}
	w := NewWorker(WorkerOptions{
		Coordinator: coord,
		Name:        os.Getenv("TASKBENCH_CLUSTER_NAME"),
	})
	if os.Getenv("TASKBENCH_CLUSTER_DRAIN") != "" {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGTERM)
		go func() {
			<-ch
			if err := w.Drain(); err != nil {
				t.Errorf("drain: %v", err)
				w.Close()
			}
		}()
		// A drained worker must exit its serve loop cleanly; the parent
		// asserts this process's exit status is zero.
		if err := w.Run(); err != nil {
			t.Fatalf("worker run after drain: %v", err)
		}
		return
	}
	// The helper's exit status is irrelevant — the parent kills it or
	// closes the coordinator; either ends Run.
	_ = w.Run()
}

// spawnWorkerProcess re-invokes the test binary as a worker process.
func spawnWorkerProcess(t *testing.T, coordAddr, name string, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestClusterWorkerHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"TASKBENCH_CLUSTER_COORD="+coordAddr,
		"TASKBENCH_CLUSTER_NAME="+name,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn worker %s: %v", name, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	return cmd
}

// TestClusterEndToEndMultiProcess is the acceptance test of cluster
// mode: one coordinator (this process) and three worker processes
// (os/exec re-invocations of the test binary), ranks spanning the
// processes via the tcp mesh. It asserts (a) a stencil run validates
// across process boundaries, (b) configurations are reused between
// jobs, (c) two jobs of different shapes pipelined down one connection
// execute on the fleet concurrently, and (d) SIGKILLing a worker
// process mid-run is survived: the job is retried over the reshaped
// fleet and completes, after which the queue keeps serving.
func TestClusterEndToEndMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	coord, err := Start(Options{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		SetupTimeout:      30 * time.Second,
		JobTimeout:        60 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	procs := make([]*exec.Cmd, 3)
	for k, name := range []string{"proc-a", "proc-b", "proc-c"} {
		procs[k] = spawnWorkerProcess(t, coord.Addr(), name)
	}
	if _, err := coord.WaitWorkers(3, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// (a) A validated stencil run with ranks spanning three processes.
	// Validation happens at every consumer, so success proves every
	// cross-process payload arrived intact at the right task.
	stats, err := cli.Run(stencilSpec(6, 128))
	if err != nil {
		t.Fatalf("multi-process stencil run: %v", err)
	}
	if stats.Workers != 6 {
		t.Errorf("workers = %d, want 6", stats.Workers)
	}
	if stats.Tasks != 120 {
		t.Errorf("tasks = %d, want 120", stats.Tasks)
	}

	// (b) Same shape, different kernel: the prepared mesh is reused.
	if _, err := cli.Run(stencilSpec(6, 32)); err != nil {
		t.Fatalf("reused-config run: %v", err)
	}
	if st := coord.Stats(); st.ConfigsBuilt != 1 || st.ConfigsReused != 1 {
		t.Errorf("configs built/reused = %d/%d, want 1/1", st.ConfigsBuilt, st.ConfigsReused)
	}

	// (c) Concurrent submissions: two different shapes pipelined down
	// this one connection must be observed executing simultaneously
	// across the worker processes.
	shapeA := busySpec(6, 6, 600, time.Millisecond)
	shapeB := busySpec(6, 8, 600, time.Millisecond)
	shapeB.Graphs[0].Type = "fft"
	pa, err := cli.SubmitAsync(shapeA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := cli.SubmitAsync(shapeB)
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, coord, "2 jobs running concurrently", 30*time.Second, func(s Stats) bool {
		return s.JobsRunning >= 2
	})
	for name, p := range map[string]*Pending{"A": pa, "B": pb} {
		res, err := p.Wait()
		if err != nil || res.Err != nil {
			t.Fatalf("concurrent job %s: %v / %v", name, err, res.Err)
		}
	}

	// (d) SIGKILL a worker process mid-run: the job must be retried
	// over the two surviving processes and complete.
	long := wire.AppSpec{
		Workers: 6,
		Graphs: []wire.GraphSpec{{
			Steps: 3000, Width: 6, Type: "stencil_1d_periodic",
			Kernel: "busy_wait", WaitNanos: int64(time.Millisecond),
			Output: 64,
		}},
	}
	type outcome struct {
		res JobResult
		err error
	}
	p, err := cli.SubmitAsync(long)
	if err != nil {
		t.Fatal(err)
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := p.Wait()
		resCh <- outcome{res, err}
	}()
	time.Sleep(500 * time.Millisecond)
	if err := procs[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-resCh:
		if out.err != nil {
			t.Fatalf("protocol error instead of job result: %v", out.err)
		}
		if out.res.Err != nil {
			t.Fatalf("job failed despite retry: %v", out.res.Err)
		}
		if out.res.Workers != 6 {
			t.Errorf("retried job workers = %d, want 6", out.res.Workers)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("job hung after worker process was killed")
	}
	if st := coord.Stats(); st.JobsRetried < 1 {
		t.Errorf("jobs retried = %d, want >= 1 after SIGKILL", st.JobsRetried)
	}

	// The queue keeps serving on the surviving processes. (WaitWorkers
	// waits for "at least", so confirm the dead worker really left.)
	if _, err := coord.WaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet size = %d, want 2 after kill", coord.WorkerCount())
		}
		time.Sleep(20 * time.Millisecond)
	}
	stats, err = cli.Run(stencilSpec(4, 32))
	if err != nil {
		t.Fatalf("post-kill job: %v", err)
	}
	if stats.Workers != 4 {
		t.Errorf("post-kill workers = %d, want 4", stats.Workers)
	}
}

// TestClusterEndToEndDrainAndJoin is the elasticity acceptance test:
// while a job spans two worker processes, a third joins mid-run and
// the drain-enabled process is SIGTERM'd. The running job must finish
// on its original placement (zero retries — drain is not death), the
// drained process must exit with status zero, and the fleet must keep
// serving on the survivor plus the joiner.
func TestClusterEndToEndDrainAndJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	coord, err := Start(Options{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		SetupTimeout:      30 * time.Second,
		JobTimeout:        60 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	spawnWorkerProcess(t, coord.Addr(), "stayer")
	drainer := spawnWorkerProcess(t, coord.Addr(), "drainer", "TASKBENCH_CLUSTER_DRAIN=1")
	if _, err := coord.WaitWorkers(2, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// A job long enough to outlive both fleet events.
	p, err := cli.SubmitAsync(busySpec(4, 6, 2000, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, coord, "job running", 30*time.Second, func(s Stats) bool {
		return s.JobsRunning >= 1
	})

	// Mid-run: a worker joins, then the drain-enabled worker is told to
	// leave via SIGTERM.
	spawnWorkerProcess(t, coord.Addr(), "joiner")
	if _, err := coord.WaitWorkers(3, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := drainer.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitStats(t, coord, "drain observed", 10*time.Second, func(s Stats) bool {
		return s.WorkersDraining == 1
	})

	res, err := p.Wait()
	if err != nil {
		t.Fatalf("protocol error during drain: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("job failed during drain: %v", res.Err)
	}

	// The drained process must exit on its own, with status zero.
	exited := make(chan error, 1)
	go func() { exited <- drainer.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("drained worker exit: %v, want status 0", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drained worker process did not exit")
	}

	waitStats(t, coord, "fleet settles at 2", 10*time.Second, func(s Stats) bool {
		return s.Workers == 2 && s.WorkersDraining == 0
	})
	st := coord.Stats()
	if st.JobsRetried != 0 {
		t.Errorf("jobs retried = %d, want 0 (drain must not trigger worker-lost retries)", st.JobsRetried)
	}
	if st.JobsFailed != 0 {
		t.Errorf("jobs failed = %d, want 0", st.JobsFailed)
	}

	// Post-drain, the shape re-provisions over survivor + joiner — the
	// join marked the old placement stale.
	if _, err := cli.Run(stencilSpec(4, 32)); err != nil {
		t.Fatalf("post-drain job: %v", err)
	}
	if st := coord.Stats(); st.ConfigsReprovisioned < 1 {
		t.Errorf("configs reprovisioned = %d, want >= 1 after join", st.ConfigsReprovisioned)
	}
}
