package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"taskbench/internal/chaos"
	"taskbench/internal/core"
	"taskbench/internal/runtime/exec"
	"taskbench/internal/runtime/p2p"
	"taskbench/internal/runtime/tcp"
	"taskbench/internal/wire"
)

// WorkerOptions configures a Worker process.
type WorkerOptions struct {
	// Coordinator is the control address to register with.
	Coordinator string
	// Name labels the worker in coordinator logs; defaults to an
	// assigned id.
	Name string
	// Advertise is the host data listeners bind to (and the address
	// peers dial); default "127.0.0.1". On a real multi-host cluster
	// this is the worker's routable address.
	Advertise string
	// SetupTimeout bounds mesh establishment; default 60s. It must
	// cover the slowest peer's plan build, or a large configuration's
	// connect phase fails spuriously.
	SetupTimeout time.Duration
	// Proto selects the control-plane frame format this worker offers
	// at registration: wire.ProtoBinary (the default) or wire.ProtoJSON
	// to pin the conversation to newline-delimited JSON for debugging.
	// The offer only takes effect if the coordinator echoes it.
	Proto string
	// Chaos, when set, injects scripted faults into this worker:
	// control-frame delays/drops/duplicates, connection resets at the
	// named protocol points (post-prepare, mid-run, pre-result),
	// heartbeat suppression, and mesh-write throttling. Nil injects
	// nothing.
	Chaos *chaos.Injector
	// Logf, when set, receives worker lifecycle logging.
	Logf func(format string, args ...any)
}

func (o *WorkerOptions) fill() {
	if o.Advertise == "" {
		o.Advertise = "127.0.0.1"
	}
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 60 * time.Second
	}
	if o.Proto == "" {
		o.Proto = wire.ProtoBinary
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Worker hosts rank spans of cluster runs: it registers with a
// coordinator, prepares per-configuration sessions (local plan slice,
// data listener, mesh transport, rank engine), and executes jobs on
// them. One worker process serves many jobs; sessions persist between
// jobs of the same shape.
type Worker struct {
	opts WorkerOptions
	mc   *msgConn
	id   int64

	mu       sync.Mutex
	sessions map[uint64]*workerSession
	closed   bool
	stop     sync.Once
	done     chan struct{}
}

// workerSession is one prepared configuration's local state. The
// connect phase runs off the control read loop, so release can arrive
// concurrently: mu guards the lifecycle fields, and cancel (closed by
// release) interrupts an in-flight mesh establishment.
type workerSession struct {
	id    uint64
	app   *core.App
	plan  *exec.RankPlan
	span  exec.Span
	ranks int

	mu       sync.Mutex
	released bool
	cancel   chan struct{}
	ln       net.Listener // bound at prepare, owned by the transport after connect
	tr       *tcp.MeshTransport
	engine   *exec.RankEngine

	runMu sync.Mutex // serializes runs on this session
}

// NewWorker creates a worker; Run connects and serves until the
// coordinator goes away or Close is called.
func NewWorker(opts WorkerOptions) *Worker {
	opts.fill()
	return &Worker{
		opts:     opts,
		sessions: map[uint64]*workerSession{},
		done:     make(chan struct{}),
	}
}

// Run registers with the coordinator and serves control messages until
// the connection drops or Close is called. The returned error explains
// why the worker stopped (nil after a clean Close).
func (w *Worker) Run() error {
	conn, err := net.Dial("tcp", w.opts.Coordinator)
	if err != nil {
		return fmt.Errorf("cluster: dial coordinator %s: %w", w.opts.Coordinator, err)
	}
	// Publish the connection under the lock so a concurrent Close
	// (signal handler, test cleanup) either sees it and closes it, or
	// has already closed done — in which case the dial is abandoned
	// here rather than leaving Run blocked in a read Close cannot
	// interrupt.
	w.mu.Lock()
	select {
	case <-w.done:
		w.mu.Unlock()
		conn.Close()
		return nil
	default:
	}
	w.mc = newMsgConn(conn)
	w.mc.chaos = w.opts.Chaos
	w.mu.Unlock()
	defer w.teardown()

	var offer string
	if w.opts.Proto == wire.ProtoBinary {
		offer = wire.ProtoBinary
	}
	if err := w.mc.write(wire.Message{Type: wire.MsgRegister, Name: w.opts.Name, Proto: offer}); err != nil {
		return fmt.Errorf("cluster: register: %w", err)
	}
	welcome, err := w.mc.read()
	if err != nil {
		return fmt.Errorf("cluster: welcome: %w", err)
	}
	if welcome.Type != wire.MsgWelcome {
		return fmt.Errorf("cluster: expected welcome, got %q", welcome.Type)
	}
	// The welcome echoing the binary offer licenses this side's writes
	// (heartbeats, prepared/ready/result replies — the high-rate
	// direction) to switch formats; reads were bilingual all along.
	if offer != "" && welcome.Proto == wire.ProtoBinary {
		w.mc.binary.Store(true)
	}
	w.mu.Lock()
	w.id = welcome.Worker // under mu: Drain reads it concurrently
	w.mu.Unlock()
	interval := time.Duration(welcome.HeartbeatNanos)
	if interval <= 0 {
		interval = time.Second
	}
	w.opts.Logf("cluster: registered as worker %d (proto %s), heartbeating every %v",
		w.id, protoName(welcome.Proto), interval)

	go w.heartbeat(interval)

	for {
		m, err := w.mc.read()
		if err != nil {
			select {
			case <-w.done:
				return nil // clean Close
			default:
				return fmt.Errorf("cluster: coordinator connection: %w", err)
			}
		}
		switch m.Type {
		case wire.MsgPrepare:
			// Prepare is purely local (plan build, listener bind) and
			// cannot wedge on peers, so it may hold the read loop.
			w.mc.write(w.handlePrepare(m))
			w.chaosPoint("post-prepare")
		case wire.MsgConnect:
			// Connects block on peer processes and runs block on the
			// mesh, so neither may occupy the read loop: a release
			// (peer died, coordinator tearing the config down) has to
			// be able to abort a wedged establishment or run.
			go func(m wire.Message) { w.mc.write(w.handleConnect(m)) }(m)
		case wire.MsgRun:
			go func(m wire.Message) { w.mc.write(w.handleRun(m)) }(m)
		case wire.MsgRelease:
			w.handleRelease(m.Config, fmt.Errorf("config %d released by coordinator", m.Config))
		case wire.MsgDrained:
			// The coordinator has unwound every configuration this worker
			// hosted and will place nothing more on it: the graceful
			// counterpart of a connection error, so Run returns nil.
			w.opts.Logf("cluster: worker %d drained; exiting", w.id)
			return nil
		default:
			w.opts.Logf("cluster: unexpected %q from coordinator", m.Type)
		}
	}
}

// Drain announces this worker's graceful departure to the coordinator:
// no new configurations are placed on it, running attempts finish (or
// are proactively re-provisioned), and once nothing references the
// worker the coordinator answers drained — at which point Run returns
// nil. The worker keeps serving its sessions in the meantime; Drain
// only starts the exchange.
func (w *Worker) Drain() error {
	w.mu.Lock()
	mc, id := w.mc, w.id
	w.mu.Unlock()
	if mc == nil {
		return fmt.Errorf("cluster: drain before registration")
	}
	if err := mc.write(wire.Message{Type: wire.MsgDrain, Worker: id, Name: w.opts.Name}); err != nil {
		return fmt.Errorf("cluster: drain: %w", err)
	}
	return nil
}

// chaosPoint consults the fault script at a named protocol point; a
// scripted reset closes the control connection — immediately, or after
// the rule's fuse delay (concurrently, so a mid-run reset lands while
// the run is executing).
func (w *Worker) chaosPoint(name string) {
	act := w.opts.Chaos.Point(name)
	if !act.Reset {
		return
	}
	if act.Delay > 0 {
		go func() {
			timer := time.NewTimer(act.Delay)
			defer timer.Stop()
			select {
			case <-w.done:
			case <-timer.C:
				w.opts.Logf("cluster: chaos reset at %s (+%v)", name, act.Delay)
				w.mc.close()
			}
		}()
		return
	}
	w.opts.Logf("cluster: chaos reset at %s", name)
	w.mc.close()
}

// Close stops the worker: the control connection drops (the
// coordinator sees a dead worker) and every session aborts.
func (w *Worker) Close() {
	w.stop.Do(func() {
		close(w.done)
		w.mu.Lock()
		mc := w.mc
		w.mu.Unlock()
		if mc != nil {
			mc.close()
		}
	})
}

func (w *Worker) teardown() {
	w.Close()
	w.mu.Lock()
	sessions := make([]*workerSession, 0, len(w.sessions))
	for _, s := range w.sessions {
		sessions = append(sessions, s)
	}
	w.sessions = map[uint64]*workerSession{}
	w.closed = true
	w.mu.Unlock()
	for _, s := range sessions {
		s.release(fmt.Errorf("worker shutting down"))
	}
}

func (w *Worker) heartbeat(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-tick.C:
		}
		if w.opts.Chaos.Heartbeat() {
			continue // scripted dead-air: alive but silent
		}
		if w.mc.write(wire.Message{Type: wire.MsgHeartbeat, Worker: w.id}) != nil {
			return
		}
	}
}

// handlePrepare builds this worker's slice of a configuration: the app
// from the spec, the local rank plan, and the data listener whose
// address peers will dial.
func (w *Worker) handlePrepare(m wire.Message) wire.Message {
	fail := func(format string, args ...any) wire.Message {
		return wire.Message{Type: wire.MsgPrepared, Config: m.Config, Err: fmt.Sprintf(format, args...)}
	}
	if m.Spec == nil {
		return fail("prepare without spec")
	}
	if m.Ranks < 1 || m.RankLo < 0 || m.RankHi > m.Ranks || m.RankLo >= m.RankHi {
		return fail("bad rank span [%d,%d) of %d", m.RankLo, m.RankHi, m.Ranks)
	}
	app, err := m.Spec.ToApp()
	if err != nil {
		return fail("spec: %v", err)
	}
	app.Workers = m.Ranks

	span := exec.Span{Lo: m.RankLo, Hi: m.RankHi}
	plan := exec.BuildRankPlanLocal(app, m.Ranks, span)
	ln, err := net.Listen("tcp", net.JoinHostPort(w.opts.Advertise, "0"))
	if err != nil {
		return fail("data listener: %v", err)
	}
	sess := &workerSession{
		id:     m.Config,
		app:    app,
		plan:   plan,
		span:   span,
		ranks:  m.Ranks,
		cancel: make(chan struct{}),
		ln:     ln,
	}

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return fail("worker shutting down")
	}
	if old := w.sessions[m.Config]; old != nil {
		// A re-prepare of a live config id means the coordinator lost
		// track; drop the stale session rather than leak its mesh.
		delete(w.sessions, m.Config)
		defer old.release(fmt.Errorf("config %d re-prepared", m.Config))
	}
	w.sessions[m.Config] = sess
	w.mu.Unlock()

	w.opts.Logf("cluster: prepared config %d: ranks [%d,%d) of %d, data %s",
		m.Config, span.Lo, span.Hi, m.Ranks, ln.Addr())
	return wire.Message{Type: wire.MsgPrepared, Config: m.Config, Addr: ln.Addr().String()}
}

// handleConnect wires this worker's slice of the mesh: dial every
// remote rank's hosting process, accept the expected inbound links,
// and stand up the engine over the resulting transport.
func (w *Worker) handleConnect(m wire.Message) wire.Message {
	fail := func(format string, args ...any) wire.Message {
		return wire.Message{Type: wire.MsgReady, Config: m.Config, Err: fmt.Sprintf(format, args...)}
	}
	sess := w.session(m.Config)
	if sess == nil {
		return fail("connect for unknown config %d", m.Config)
	}
	tr, err := tcp.NewMeshTransport(sess.plan, tcp.Topology{
		Local:    sess.span,
		Addrs:    m.Addrs,
		Config:   m.Config,
		Listener: sess.ln,
		Timeout:  w.opts.SetupTimeout,
		Cancel:   sess.cancel,
		Wrap:     w.opts.Chaos.WrapConn(),
	})
	if err != nil {
		w.dropSession(m.Config)
		sess.ln.Close()
		return fail("mesh: %v", err)
	}
	sess.mu.Lock()
	if sess.released {
		sess.mu.Unlock()
		tr.Abort(fmt.Errorf("config %d released during connect", m.Config))
		return fail("config %d released during connect", m.Config)
	}
	sess.tr = tr
	// The scheduling paradigm across processes is p2p's eager policy —
	// the only barrier-free rank policy, which is exactly what a
	// process-spanning engine requires.
	sess.engine = exec.NewLocalRankEngine(sess.plan, p2p.Policy{}, 1, tr)
	sess.mu.Unlock()
	w.opts.Logf("cluster: config %d mesh up (%d ranks)", m.Config, sess.ranks)
	return wire.Message{Type: wire.MsgReady, Config: m.Config}
}

// handleRun executes one job on a prepared session: swap in the job's
// kernel configurations, reset the plan, run the local ranks, and
// report the local wall time (the coordinator takes the fleet max).
// The attempt id is echoed in every result so the coordinator can
// match it to the live attempt and discard a stale run's late result;
// a stale attempt's run message itself names a released config and
// fails the unprepared-config check below instead of executing.
func (w *Worker) handleRun(m wire.Message) wire.Message {
	fail := func(format string, args ...any) wire.Message {
		return wire.Message{Type: wire.MsgResult, Config: m.Config, Job: m.Job, Attempt: m.Attempt, Err: fmt.Sprintf(format, args...)}
	}
	sess := w.session(m.Config)
	if sess == nil {
		return fail("run for unprepared config %d", m.Config)
	}
	sess.mu.Lock()
	engine := sess.engine
	sess.mu.Unlock()
	if engine == nil {
		return fail("run for unconnected config %d", m.Config)
	}
	sess.runMu.Lock()
	defer sess.runMu.Unlock()
	if len(m.Kernels) != len(sess.app.Graphs) {
		return fail("%d kernel specs for %d graphs", len(m.Kernels), len(sess.app.Graphs))
	}
	for gi, ks := range m.Kernels {
		k, err := ks.ToConfig()
		if err != nil {
			return fail("graph %d kernel: %v", gi, err)
		}
		sess.app.Graphs[gi].Kernel = k
	}
	sess.plan.Reset()
	w.chaosPoint("mid-run") // a fused reset lands while the run executes
	start := time.Now()
	err := engine.Run(sess.app.Validate)
	elapsed := time.Since(start)
	if err != nil {
		return fail("%v", err)
	}
	w.chaosPoint("pre-result")
	return wire.Message{
		Type:         wire.MsgResult,
		Config:       m.Config,
		Job:          m.Job,
		Attempt:      m.Attempt,
		ElapsedNanos: int64(elapsed),
	}
}

// handleRelease aborts and drops one session. Abort (not a plain
// close) is what unwedges a run blocked on a stalled peer the
// coordinator has declared dead.
func (w *Worker) handleRelease(config uint64, cause error) {
	if sess := w.dropSession(config); sess != nil {
		sess.release(cause)
		w.opts.Logf("cluster: released config %d (%v)", config, cause)
	}
}

func (w *Worker) session(config uint64) *workerSession {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sessions[config]
}

func (w *Worker) dropSession(config uint64) *workerSession {
	w.mu.Lock()
	defer w.mu.Unlock()
	sess := w.sessions[config]
	delete(w.sessions, config)
	return sess
}

// release tears the session down exactly once: an in-flight mesh
// establishment is canceled, a live mesh is aborted (unwedging any
// blocked run), and a pre-connect listener is closed.
func (s *workerSession) release(cause error) {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return
	}
	s.released = true
	tr, ln, cancel := s.tr, s.ln, s.cancel
	s.mu.Unlock()
	if cancel != nil {
		close(cancel)
	}
	if tr != nil {
		tr.Abort(cause)
	} else if ln != nil {
		ln.Close()
	}
}
