package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"taskbench/internal/wire"
)

// testFleet starts a coordinator and n in-process workers (each its
// own control connection and data listeners — only the address space
// is shared) and waits until all have registered.
func testFleet(t *testing.T, n int) (*Coordinator, []*Worker) {
	t.Helper()
	coord, err := Start(Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		SetupTimeout:      20 * time.Second,
		JobTimeout:        60 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	workers := make([]*Worker, n)
	for k := range workers {
		workers[k] = NewWorker(WorkerOptions{
			Coordinator: coord.Addr(),
			Name:        "w" + string(rune('A'+k)),
			Logf:        t.Logf,
		})
		go workers[k].Run()
		t.Cleanup(workers[k].Close)
	}
	if _, err := coord.WaitWorkers(n, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return coord, workers
}

func stencilSpec(ranks int, iterations int64) wire.AppSpec {
	return wire.AppSpec{
		Workers: ranks,
		Graphs: []wire.GraphSpec{{
			Steps: 20, Width: 6, Type: "stencil_1d_periodic",
			Kernel: "compute_bound", Iterations: iterations,
			Output: 128,
		}},
	}
}

func TestClusterRunsValidatedJob(t *testing.T) {
	coord, _ := testFleet(t, 3)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stats, err := cli.Run(stencilSpec(6, 64))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 6 {
		t.Errorf("workers = %d, want 6", stats.Workers)
	}
	if stats.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want > 0", stats.Elapsed)
	}
	if stats.Tasks != 120 {
		t.Errorf("tasks = %d, want 120", stats.Tasks)
	}
}

// TestClusterReusesConfigAcrossJobs is the cross-request session-reuse
// story: jobs that differ only in kernel configuration share one
// prepared configuration (plans, rows, live mesh).
func TestClusterReusesConfigAcrossJobs(t *testing.T) {
	coord, _ := testFleet(t, 3)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for _, iters := range []int64{256, 64, 16, 4} {
		if _, err := cli.Run(stencilSpec(6, iters)); err != nil {
			t.Fatalf("iters=%d: %v", iters, err)
		}
	}
	// A different shape provisions a second configuration.
	other := stencilSpec(6, 64)
	other.Graphs[0].Type = "fft"
	other.Graphs[0].Width = 8
	if _, err := cli.Run(other); err != nil {
		t.Fatal(err)
	}
	st := coord.Stats()
	if st.ConfigsBuilt != 2 {
		t.Errorf("configs built = %d, want 2", st.ConfigsBuilt)
	}
	if st.ConfigsReused != 3 {
		t.Errorf("configs reused = %d, want 3", st.ConfigsReused)
	}
	if st.JobsRun != 5 || st.JobsFailed != 0 {
		t.Errorf("jobs run/failed = %d/%d, want 5/0", st.JobsRun, st.JobsFailed)
	}
}

// TestClusterConcurrentClients queues submissions from several client
// connections at once; the scheduler serializes them without loss.
func TestClusterConcurrentClients(t *testing.T) {
	coord, _ := testFleet(t, 2)
	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cli, err := Dial(coord.Addr())
			if err != nil {
				errs[k] = err
				return
			}
			defer cli.Close()
			_, err = cli.Run(stencilSpec(4, int64(16*(k+1))))
			errs[k] = err
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", k, err)
		}
	}
	if st := coord.Stats(); st.JobsRun != clients {
		t.Errorf("jobs run = %d, want %d", st.JobsRun, clients)
	}
}

// TestClusterWorkerDeathFailsJobCleanly kills a worker mid-run and
// requires (a) the in-flight job to fail with an error, not hang, and
// (b) the queue to keep serving jobs on the surviving fleet.
func TestClusterWorkerDeathFailsJobCleanly(t *testing.T) {
	coord, workers := testFleet(t, 3)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// A deliberately long job: 6 ranks × 2000 steps of 1ms busy-wait
	// columns gives seconds of runtime to kill a worker in.
	long := wire.AppSpec{
		Workers: 6,
		Graphs: []wire.GraphSpec{{
			Steps: 2000, Width: 6, Type: "stencil_1d_periodic",
			Kernel: "busy_wait", WaitNanos: int64(time.Millisecond),
			Output: 64,
		}},
	}
	type outcome struct {
		res JobResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := cli.Submit(long)
		resCh <- outcome{res, err}
	}()
	time.Sleep(400 * time.Millisecond)
	workers[1].Close() // the "crash": control conn drops, sessions abort

	select {
	case out := <-resCh:
		if out.err != nil {
			t.Fatalf("protocol error instead of job error: %v", out.err)
		}
		if out.res.Err == nil {
			t.Fatal("job succeeded despite killed worker")
		}
		t.Logf("job failed as expected: %v", out.res.Err)
	case <-time.After(30 * time.Second):
		t.Fatal("job hung after worker death")
	}

	// The queue must not be wedged: the next job provisions a fresh
	// configuration over the two survivors.
	deadline := time.Now().Add(5 * time.Second)
	for coord.WorkerCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet size = %d, want 2", coord.WorkerCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats, err := cli.Run(stencilSpec(4, 32))
	if err != nil {
		t.Fatalf("post-death job: %v", err)
	}
	if stats.Workers != 4 {
		t.Errorf("post-death workers = %d, want 4", stats.Workers)
	}
	if st := coord.Stats(); st.JobsFailed != 1 {
		t.Errorf("jobs failed = %d, want 1", st.JobsFailed)
	}
}

// TestClusterRejectsBadSpec exercises coordinator-side validation.
func TestClusterRejectsBadSpec(t *testing.T) {
	coord, _ := testFleet(t, 1)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Submit(wire.AppSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "spec") {
		t.Fatalf("bad spec accepted: %v", res.Err)
	}
}

// TestCoordinatorCloseWithIdleClient must not hang on Close while a
// client connection is open but idle (its handler is blocked in a
// read; Close has to sweep client connections too).
func TestCoordinatorCloseWithIdleClient(t *testing.T) {
	coord, err := Start(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Give the accept loop a moment to hand the connection to a
	// handler, which then blocks reading the first message.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		coord.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator Close hung on an idle client connection")
	}
}

// TestClusterNoWorkers fails jobs instead of waiting forever when the
// fleet is empty.
func TestClusterNoWorkers(t *testing.T) {
	coord, err := Start(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Submit(stencilSpec(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "no workers") {
		t.Fatalf("want no-workers error, got %v", res.Err)
	}
}
