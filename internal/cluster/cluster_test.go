package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"taskbench/internal/wire"
)

// testFleetOpts starts a coordinator (with mut applied to the test
// defaults) and n in-process workers (each its own control connection
// and data listeners — only the address space is shared) and waits
// until all have registered.
func testFleetOpts(t *testing.T, n int, mut func(*Options)) (*Coordinator, []*Worker) {
	t.Helper()
	opts := Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		SetupTimeout:      20 * time.Second,
		JobTimeout:        60 * time.Second,
		Logf:              t.Logf,
	}
	if mut != nil {
		mut(&opts)
	}
	coord, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	workers := make([]*Worker, n)
	for k := range workers {
		workers[k] = NewWorker(WorkerOptions{
			Coordinator: coord.Addr(),
			Name:        "w" + string(rune('A'+k)),
			Logf:        t.Logf,
		})
		go workers[k].Run()
		t.Cleanup(workers[k].Close)
	}
	if _, err := coord.WaitWorkers(n, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return coord, workers
}

func testFleet(t *testing.T, n int) (*Coordinator, []*Worker) {
	t.Helper()
	return testFleetOpts(t, n, nil)
}

func stencilSpec(ranks int, iterations int64) wire.AppSpec {
	return wire.AppSpec{
		Workers: ranks,
		Graphs: []wire.GraphSpec{{
			Steps: 20, Width: 6, Type: "stencil_1d_periodic",
			Kernel: "compute_bound", Iterations: iterations,
			Output: 128,
		}},
	}
}

// busySpec is a deliberately slow job: steps timesteps of perTask
// busy-wait columns, sized so tests can observe (or interrupt) it
// mid-run.
func busySpec(ranks, width, steps int, perTask time.Duration) wire.AppSpec {
	return wire.AppSpec{
		Workers: ranks,
		Graphs: []wire.GraphSpec{{
			Steps: steps, Width: width, Type: "stencil_1d_periodic",
			Kernel: "busy_wait", WaitNanos: int64(perTask),
			Output: 64,
		}},
	}
}

// waitStats polls the coordinator until cond holds, failing the test
// at the deadline.
func waitStats(t *testing.T, coord *Coordinator, what string, timeout time.Duration, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond(coord.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, coord.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClusterRunsValidatedJob(t *testing.T) {
	coord, _ := testFleet(t, 3)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stats, err := cli.Run(stencilSpec(6, 64))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 6 {
		t.Errorf("workers = %d, want 6", stats.Workers)
	}
	if stats.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want > 0", stats.Elapsed)
	}
	if stats.Tasks != 120 {
		t.Errorf("tasks = %d, want 120", stats.Tasks)
	}
}

// TestClusterReusesConfigAcrossJobs is the cross-request session-reuse
// story: jobs that differ only in kernel configuration share one
// prepared configuration (plans, rows, live mesh).
func TestClusterReusesConfigAcrossJobs(t *testing.T) {
	coord, _ := testFleet(t, 3)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for _, iters := range []int64{256, 64, 16, 4} {
		if _, err := cli.Run(stencilSpec(6, iters)); err != nil {
			t.Fatalf("iters=%d: %v", iters, err)
		}
	}
	// A different shape provisions a second configuration.
	other := stencilSpec(6, 64)
	other.Graphs[0].Type = "fft"
	other.Graphs[0].Width = 8
	if _, err := cli.Run(other); err != nil {
		t.Fatal(err)
	}
	st := coord.Stats()
	if st.ConfigsBuilt != 2 {
		t.Errorf("configs built = %d, want 2", st.ConfigsBuilt)
	}
	if st.ConfigsReused != 3 {
		t.Errorf("configs reused = %d, want 3", st.ConfigsReused)
	}
	if st.JobsRun != 5 || st.JobsFailed != 0 {
		t.Errorf("jobs run/failed = %d/%d, want 5/0", st.JobsRun, st.JobsFailed)
	}
}

// TestClusterConcurrentClients submits from several client connections
// at once; the scheduler completes them all without loss.
func TestClusterConcurrentClients(t *testing.T) {
	coord, _ := testFleet(t, 2)
	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cli, err := Dial(coord.Addr())
			if err != nil {
				errs[k] = err
				return
			}
			defer cli.Close()
			_, err = cli.Run(stencilSpec(4, int64(16*(k+1))))
			errs[k] = err
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", k, err)
		}
	}
	if st := coord.Stats(); st.JobsRun != clients {
		t.Errorf("jobs run = %d, want %d", st.JobsRun, clients)
	}
}

// TestClusterJobsOverlapAcrossShapes is the concurrent scheduler's
// core claim: two jobs of different shapes, pipelined down one client
// connection, execute on the 4-worker fleet at the same time instead
// of serializing behind a single run loop.
func TestClusterJobsOverlapAcrossShapes(t *testing.T) {
	coord, _ := testFleet(t, 4)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	shapeA := busySpec(4, 4, 800, time.Millisecond)
	shapeB := busySpec(4, 8, 800, time.Millisecond)
	shapeB.Graphs[0].Type = "fft"

	pa, err := cli.SubmitAsync(shapeA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := cli.SubmitAsync(shapeB)
	if err != nil {
		t.Fatal(err)
	}
	// Both jobs must be observed EXECUTING simultaneously.
	waitStats(t, coord, "2 jobs running concurrently", 15*time.Second, func(s Stats) bool {
		return s.JobsRunning >= 2
	})
	for name, p := range map[string]*Pending{"A": pa, "B": pb} {
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("job %s: protocol error: %v", name, err)
		}
		if res.Err != nil {
			t.Errorf("job %s failed: %v", name, res.Err)
		}
	}
	if st := coord.Stats(); st.JobsRun != 2 || st.JobsFailed != 0 {
		t.Errorf("jobs run/failed = %d/%d, want 2/0", st.JobsRun, st.JobsFailed)
	}
}

// TestClusterPipelinedSubmissionsShareConfig pipelines several
// same-shape jobs down one connection before any completes: they
// serialize on the shape's run lock but reuse the one prepared
// configuration, never re-provisioning.
func TestClusterPipelinedSubmissionsShareConfig(t *testing.T) {
	coord, _ := testFleet(t, 2)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var pending []*Pending
	for _, iters := range []int64{64, 16, 4} {
		p, err := cli.SubmitAsync(stencilSpec(4, iters))
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	for k, p := range pending {
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", k, err)
		}
		if res.Err != nil {
			t.Errorf("job %d failed: %v", k, res.Err)
		}
	}
	st := coord.Stats()
	if st.ConfigsBuilt != 1 || st.ConfigsReused != 2 {
		t.Errorf("configs built/reused = %d/%d, want 1/2", st.ConfigsBuilt, st.ConfigsReused)
	}
}

// TestClusterWorkerDeathFailsJobCleanly kills a worker mid-run with
// retry disabled and requires (a) the in-flight job to fail with an
// error, not hang, and (b) the queue to keep serving jobs on the
// surviving fleet.
func TestClusterWorkerDeathFailsJobCleanly(t *testing.T) {
	coord, workers := testFleetOpts(t, 3, func(o *Options) { o.MaxAttempts = 1 })
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// A deliberately long job: 6 ranks × 2000 steps of 1ms busy-wait
	// columns gives seconds of runtime to kill a worker in.
	long := busySpec(6, 6, 2000, time.Millisecond)
	p, err := cli.SubmitAsync(long)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	workers[1].Close() // the "crash": control conn drops, sessions abort

	type outcome struct {
		res JobResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := p.Wait()
		resCh <- outcome{res, err}
	}()
	select {
	case out := <-resCh:
		if out.err != nil {
			t.Fatalf("protocol error instead of job error: %v", out.err)
		}
		if out.res.Err == nil {
			t.Fatal("job succeeded despite killed worker and disabled retry")
		}
		t.Logf("job failed as expected: %v", out.res.Err)
	case <-time.After(30 * time.Second):
		t.Fatal("job hung after worker death")
	}

	// The queue must not be wedged: the next job provisions a fresh
	// configuration over the two survivors.
	deadline := time.Now().Add(5 * time.Second)
	for coord.WorkerCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet size = %d, want 2", coord.WorkerCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats, err := cli.Run(stencilSpec(4, 32))
	if err != nil {
		t.Fatalf("post-death job: %v", err)
	}
	if stats.Workers != 4 {
		t.Errorf("post-death workers = %d, want 4", stats.Workers)
	}
	if st := coord.Stats(); st.JobsFailed != 1 || st.JobsRetried != 0 {
		t.Errorf("jobs failed/retried = %d/%d, want 1/0", st.JobsFailed, st.JobsRetried)
	}
}

// TestClusterRetriesAfterWorkerDeath kills a worker mid-run with the
// default retry budget: the job must be re-provisioned over the
// reshaped two-worker fleet and COMPLETE, not fail.
func TestClusterRetriesAfterWorkerDeath(t *testing.T) {
	coord, workers := testFleet(t, 3)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	long := busySpec(6, 6, 1200, time.Millisecond)
	p, err := cli.SubmitAsync(long)
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, coord, "job running", 10*time.Second, func(s Stats) bool { return s.JobsRunning >= 1 })
	time.Sleep(200 * time.Millisecond)
	workers[1].Close() // crash mid-run

	res, err := p.Wait()
	if err != nil {
		t.Fatalf("protocol error: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("job failed despite retry: %v", res.Err)
	}
	if res.Workers != 6 {
		t.Errorf("workers = %d, want 6 (same rank count on the reshaped fleet)", res.Workers)
	}
	st := coord.Stats()
	if st.JobsRetried < 1 {
		t.Errorf("jobs retried = %d, want >= 1", st.JobsRetried)
	}
	if st.JobsFailed != 0 || st.JobsRun != 1 {
		t.Errorf("jobs run/failed = %d/%d, want 1/0", st.JobsRun, st.JobsFailed)
	}
}

// TestClusterQueueFullRejectsFast fills the one-deep queue behind a
// busy one-slot scheduler: the next submission must get an immediate
// rejected reply, not block until capacity frees up.
func TestClusterQueueFullRejectsFast(t *testing.T) {
	coord, _ := testFleetOpts(t, 1, func(o *Options) {
		o.QueueDepth = 1
		o.Concurrency = 1
	})
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	pa, err := cli.SubmitAsync(busySpec(1, 2, 1000, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the slot to claim job A so job B definitely queues.
	waitStats(t, coord, "job A in flight", 10*time.Second, func(s Stats) bool { return s.JobsInFlight >= 1 })
	pb, err := cli.SubmitAsync(stencilSpec(1, 8))
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	pc, err := cli.SubmitAsync(stencilSpec(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("rejection took %v, want immediate", waited)
	}
	if !res.Rejected || res.Err == nil || !strings.Contains(res.Err.Error(), "queue full") {
		t.Fatalf("want fast queue-full rejection, got %+v", res)
	}
	if st := coord.Stats(); st.JobsRejected != 1 {
		t.Errorf("jobs rejected = %d, want 1", st.JobsRejected)
	}
	for name, p := range map[string]*Pending{"A": pa, "B": pb} {
		if res, err := p.Wait(); err != nil || res.Err != nil {
			t.Errorf("job %s: %v / %v", name, err, res.Err)
		}
	}
}

// TestClusterClientDisconnectCancelsQueuedJob is the regression test
// for the lost accepted ack: a job whose client vanished right after
// submitting must be cancelled, not run over the whole fleet for
// nobody. The scheduler slot is kept busy so the orphaned job is
// discovered in the queue.
func TestClusterClientDisconnectCancelsQueuedJob(t *testing.T) {
	coord, _ := testFleetOpts(t, 2, func(o *Options) { o.Concurrency = 1 })
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	pa, err := cli.SubmitAsync(busySpec(2, 2, 800, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, coord, "job A in flight", 10*time.Second, func(s Stats) bool { return s.JobsInFlight >= 1 })

	// A raw client: submit a job of a shape nobody else uses, then
	// vanish without reading a single reply.
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	orphan := stencilSpec(2, 32)
	orphan.Graphs[0].Width = 10 // a shape unique to the orphaned job
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgSubmit, Spec: &orphan}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if res, err := pa.Wait(); err != nil || res.Err != nil {
		t.Fatalf("job A: %v / %v", err, res.Err)
	}
	waitStats(t, coord, "orphaned job cancelled", 10*time.Second, func(s Stats) bool {
		return s.JobsCancelled == 1
	})
	st := coord.Stats()
	if st.JobsRun != 1 {
		t.Errorf("jobs run = %d, want 1 (the orphaned job must never run)", st.JobsRun)
	}
	if st.ConfigsBuilt != 1 {
		t.Errorf("configs built = %d, want 1 (no fleet provisioning for the orphaned shape)", st.ConfigsBuilt)
	}
}

// TestClusterCancelRunningJobReleasesFleet cancels a job mid-run: the
// client gets a cancelled result and the workers are freed (the next
// job of the same shape re-provisions and completes).
func TestClusterCancelRunningJobReleasesFleet(t *testing.T) {
	coord, _ := testFleet(t, 2)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	long := busySpec(4, 4, 5000, time.Millisecond)
	p, err := cli.SubmitAsync(long)
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, coord, "job running", 10*time.Second, func(s Stats) bool { return s.JobsRunning >= 1 })
	p.Cancel()
	res, err := p.Wait()
	if err != nil {
		t.Fatalf("protocol error: %v", err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "cancel") {
		t.Fatalf("want cancelled result, got %+v", res)
	}
	if st := coord.Stats(); st.JobsCancelled != 1 {
		t.Errorf("jobs cancelled = %d, want 1", st.JobsCancelled)
	}
	// The fleet is free again: a quick same-shape job completes.
	quick := busySpec(4, 4, 5, time.Millisecond)
	if res, err := cli.Submit(quick); err != nil || res.Err != nil {
		t.Fatalf("post-cancel job: %v / %v", err, res.Err)
	}
}

// TestClusterConcurrentMixedShapes hammers the scheduler from several
// pipelining clients with a mix of shapes — the race-detector workout
// for slot/entry/cancellation bookkeeping.
func TestClusterConcurrentMixedShapes(t *testing.T) {
	coord, _ := testFleet(t, 4)
	shapes := []wire.AppSpec{
		stencilSpec(4, 32),
		stencilSpec(8, 16),
		{Workers: 4, Graphs: []wire.GraphSpec{{
			Steps: 10, Width: 8, Type: "fft",
			Kernel: "compute_bound", Iterations: 32, Output: 64,
		}}},
		{Workers: 2, Graphs: []wire.GraphSpec{{
			Steps: 12, Width: 4, Type: "dom",
			Kernel: "compute_bound", Iterations: 32, Output: 64,
		}}},
	}
	const clients = 4
	const perClient = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cli, err := Dial(coord.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			var pending []*Pending
			for i := 0; i < perClient; i++ {
				p, err := cli.SubmitAsync(shapes[(k+i)%len(shapes)])
				if err != nil {
					errs <- err
					return
				}
				pending = append(pending, p)
			}
			for _, p := range pending {
				res, err := p.Wait()
				if err != nil {
					errs <- err
				} else if res.Err != nil {
					errs <- res.Err
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := coord.Stats()
	if st.JobsRun != clients*perClient || st.JobsFailed != 0 {
		t.Errorf("jobs run/failed = %d/%d, want %d/0", st.JobsRun, st.JobsFailed, clients*perClient)
	}
}

// TestClusterRejectsBadSpec exercises coordinator-side validation: an
// invalid spec is rejected at admission, before touching the queue.
func TestClusterRejectsBadSpec(t *testing.T) {
	coord, _ := testFleet(t, 1)
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Submit(wire.AppSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "spec") {
		t.Fatalf("bad spec accepted: %v", res.Err)
	}
	if !res.Rejected {
		t.Error("bad spec should be reported as rejected at admission")
	}
}

// TestCoordinatorCloseWithIdleClient must not hang on Close while a
// client connection is open but idle (its handler is blocked in a
// read; Close has to sweep client connections too).
func TestCoordinatorCloseWithIdleClient(t *testing.T) {
	coord, err := Start(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Give the accept loop a moment to hand the connection to a
	// handler, which then blocks reading the first message.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		coord.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator Close hung on an idle client connection")
	}
}

// TestClusterNoWorkers fails jobs instead of waiting forever when the
// fleet is empty.
func TestClusterNoWorkers(t *testing.T) {
	coord, err := Start(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Submit(stencilSpec(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "no workers") {
		t.Fatalf("want no-workers error, got %v", res.Err)
	}
}

// TestWaitWorkersDeadline pins the WaitWorkers contract: a zero
// timeout checks the fleet exactly once (no 10ms poll tick), a
// satisfied wait returns immediately, and a registration wakes a
// blocked waiter without polling.
func TestWaitWorkersDeadline(t *testing.T) {
	coord, err := Start(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	if got, err := coord.WaitWorkers(0, 0); got != 0 || err != nil {
		t.Errorf("WaitWorkers(0, 0) = %d, %v; want 0, nil", got, err)
	}
	start := time.Now()
	if _, err := coord.WaitWorkers(1, 0); err == nil {
		t.Error("WaitWorkers(1, 0) succeeded with an empty fleet")
	}
	if waited := time.Since(start); waited > 100*time.Millisecond {
		t.Errorf("WaitWorkers(1, 0) waited %v, want an immediate return", waited)
	}

	// A blocked waiter wakes on registration, well before its timeout.
	go func() {
		time.Sleep(150 * time.Millisecond)
		w := NewWorker(WorkerOptions{Coordinator: coord.Addr(), Name: "late"})
		t.Cleanup(w.Close)
		w.Run()
	}()
	start = time.Now()
	got, err := coord.WaitWorkers(1, 30*time.Second)
	if err != nil || got != 1 {
		t.Fatalf("WaitWorkers(1, 30s) = %d, %v", got, err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("waiter woke after %v, want promptly after registration", waited)
	}
}

// TestClientStats is the remote-observability contract: a client reads
// the coordinator's gauges and counters over its control connection —
// including on a stats-first connection that has never submitted — and
// the snapshot tracks the work the fleet actually did.
func TestClientStats(t *testing.T) {
	coord, _ := testFleetOpts(t, 2, func(o *Options) {
		o.QueueDepth = 16
		o.Concurrency = 3
		o.MaxAttempts = 2
	})

	// A stats-first connection: no submit has opened this conversation.
	mon, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	info, err := mon.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if info.Workers != 2 || info.QueueCap != 16 || info.Concurrency != 3 || info.MaxAttempts != 2 {
		t.Errorf("initial snapshot wrong: %+v", info)
	}
	if info.JobsRun != 0 || info.JobsRejected != 0 {
		t.Errorf("fresh coordinator has history: %+v", info)
	}

	// Work happens; the counters follow, visible from a second client.
	cli, err := Dial(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 3; i++ {
		if _, err := cli.Run(stencilSpec(2, 16)); err != nil {
			t.Fatal(err)
		}
	}
	info, err = mon.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if info.JobsRun != 3 || info.ConfigsBuilt != 1 || info.ConfigsReused != 2 {
		t.Errorf("post-run snapshot wrong: %+v", info)
	}
	if info.JobsFailed != 0 || info.JobsInFlight != 0 || info.JobsRunning != 0 || info.QueueLen != 0 {
		t.Errorf("idle fleet shows live work: %+v", info)
	}

	// Stats interleave with in-flight jobs on the SAME connection, and
	// observe them running.
	p, err := cli.SubmitAsync(busySpec(2, 4, 400, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, err = cli.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if info.JobsRunning >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never observed the running job: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Cancel()
	if res, err := p.Wait(); err != nil {
		t.Fatalf("wait after cancel: %v (res %+v)", err, res)
	}

	// Concurrent stats queries race safely (matched by id, not order).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := mon.Stats(); err != nil {
				t.Errorf("concurrent stats: %v", err)
			}
		}()
	}
	wg.Wait()
}
