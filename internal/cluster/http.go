package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"taskbench/internal/metrics"
)

// httpServer serves the coordinator's observability endpoints:
//
//	/metrics        Prometheus text exposition v0.0.4 of the registry
//	/healthz        fleet quorum + queue saturation, 200 ok / 503 degraded
//	/snapshots.json the retained snapshot ring, oldest first
//
// It is read-only and coordinator-local: every handler samples state
// the same way a stats reply does, so a scrape can never mutate the
// scheduler.
type httpServer struct {
	c   *Coordinator
	ln  net.Listener
	srv *http.Server
}

func startHTTPServer(c *Coordinator, addr string) (*httpServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: http listen %s: %w", addr, err)
	}
	s := &httpServer{c: c, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/snapshots.json", s.handleSnapshots)
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go s.srv.Serve(ln)
	c.opts.Logf("cluster: observability endpoints on http://%s (/metrics /healthz /snapshots.json)", ln.Addr())
	return s, nil
}

func (s *httpServer) close() {
	s.srv.Close()
}

// HTTPAddr returns the address the observability endpoints listen on,
// or "" when the HTTP server is disabled.
func (c *Coordinator) HTTPAddr() string {
	if c.http == nil {
		return ""
	}
	return c.http.ln.Addr().String()
}

func (s *httpServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.c.metrics.reg.WritePrometheus(w)
}

// healthzReply is the /healthz body. Status is "ok" iff at least one
// non-draining worker can take placements AND the queue has headroom —
// the two conditions under which a fresh submission can make progress.
type healthzReply struct {
	Status          string `json:"status"`
	Reason          string `json:"reason,omitempty"`
	Workers         int    `json:"workers"`
	WorkersDraining int    `json:"workers_draining"`
	QueueLen        int    `json:"queue_len"`
	QueueCap        int    `json:"queue_cap"`
	JobsRunning     int    `json:"jobs_running"`
	SchedulerSlots  int    `json:"scheduler_slots"`
}

func (s *httpServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c := s.c
	c.mu.Lock()
	reply := healthzReply{
		Status:          "ok",
		Workers:         len(c.workers),
		WorkersDraining: c.drainingLocked(),
		QueueLen:        len(c.queue),
		QueueCap:        c.opts.QueueDepth,
		JobsRunning:     c.running,
		SchedulerSlots:  c.opts.Concurrency,
	}
	c.mu.Unlock()

	switch {
	case reply.Workers-reply.WorkersDraining < 1:
		reply.Status = "degraded"
		reply.Reason = "no placeable workers"
	case reply.QueueLen >= reply.QueueCap:
		reply.Status = "degraded"
		reply.Reason = "queue saturated"
	}
	w.Header().Set("Content-Type", "application/json")
	if reply.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(reply)
}

// snapshotsReply is the /snapshots.json body: the sampling dimensions
// plus the retained ring, oldest first.
type snapshotsReply struct {
	IntervalNanos int64              `json:"interval_ns"`
	Retention     int                `json:"retention"`
	Snapshots     []metrics.Snapshot `json:"snapshots"`
}

func (s *httpServer) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	reply := snapshotsReply{
		IntervalNanos: int64(s.c.opts.SnapshotInterval),
		Retention:     s.c.opts.SnapshotRetention,
	}
	if col := s.c.collector; col != nil {
		reply.Snapshots = col.Ring().Snapshots()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}
