package wire

// Binary framing for the cluster control protocol. The JSON codec in
// proto.go remains the debug, golden and interop format — every
// connection opens in JSON, and peers that both speak the binary codec
// switch to it after the register/welcome (worker) or submit/first
// reply (client) exchange. The binary codec exists for one reason: at
// vanishing task granularity the per-message cost of the control plane
// (reflect-driven JSON encode/decode, fresh allocations per message)
// is system overhead of exactly the kind Task Bench exists to measure,
// so the wire layer must not pay it.
//
// Frame layout (everything little-endian; varints are encoding/binary
// Uvarint/Varint):
//
//	0xB1 | uvarint bodyLen | body
//
// The magic byte 0xB1 can never open a JSON control message (those
// always start with '{'), so a reader can dispatch per message between
// the two framings by peeking one byte — which is what makes the
// migration safe: a receiver is always bilingual, and negotiation only
// decides what a sender emits.
//
// The body is a fixed field schedule, no tags and no reflection:
//
//	uvarint version | byte typeCode | fields of Message in struct order
//
// Strings are uvarint length + bytes; float64s are 8 fixed bytes of
// IEEE-754 bits; the optional *AppSpec is a presence byte followed by
// the spec's own fixed schedule. Zero fields cost one byte each, so a
// heartbeat is ~20 bytes. Encoders append into free-listed buffers
// (sync.Pool) and write one frame per syscall; decode allocates only
// the strings and slices of the resulting Message.
//
// A corrupt or hostile length prefix must not drive an unbounded
// allocation: bodies beyond MaxControlFrame and any string or list
// length exceeding the remaining body are rejected as errors, and the
// connection owner tears the session down.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// BinMagic opens every binary control frame. JSON control messages
// always start with '{', so one peeked byte dispatches the format.
const BinMagic = 0xB1

// MaxControlFrame bounds one binary control message's body. The
// largest legitimate messages (a submit carrying a many-graph spec, a
// connect carrying thousands of addresses) are a few hundred KiB; a
// length prefix beyond this is corruption, and rejecting it keeps a
// bad frame from driving an unbounded allocation.
const MaxControlFrame = 16 << 20

// Protocol format names carried in Message.Proto during negotiation.
const (
	ProtoJSON   = "json"
	ProtoBinary = "binary"
)

// Message type codes of the binary codec, in protocol order. Code 0 is
// deliberately invalid so a zeroed frame cannot decode as a register.
var msgCodes = map[string]byte{
	MsgRegister:  1,
	MsgWelcome:   2,
	MsgHeartbeat: 3,
	MsgPrepare:   4,
	MsgPrepared:  5,
	MsgConnect:   6,
	MsgReady:     7,
	MsgRun:       8,
	MsgResult:    9,
	MsgRelease:   10,
	MsgSubmit:    11,
	MsgAccepted:  12,
	MsgRejected:  13,
	MsgCancel:    14,
	MsgDone:      15,
	MsgStats:     16,
	MsgStatsRply: 17,
	MsgDrain:     18,
	MsgDrained:   19,
}

var msgNames = func() map[byte]string {
	names := make(map[byte]string, len(msgCodes))
	for name, code := range msgCodes {
		names[code] = name
	}
	return names
}()

// binBufs recycles encode buffers: steady-state control traffic
// (heartbeats, run/result exchanges of a sweep) encodes into warm
// buffers instead of allocating per message.
var binBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

const maxFrameHeader = 1 + binary.MaxVarintLen64 // magic + bodyLen

// AppendMessageBinary appends one complete binary frame (magic, length
// prefix, body) for m to dst and returns the extended slice.
func AppendMessageBinary(dst []byte, m Message) ([]byte, error) {
	if _, ok := msgCodes[m.Type]; !ok {
		return dst, fmt.Errorf("wire: message type %q has no binary code", m.Type)
	}
	start := len(dst)
	// Reserve a maximal header, encode the body after it, then write
	// the real header right-aligned against the body — one buffer, no
	// second pass over the payload.
	for i := 0; i < maxFrameHeader; i++ {
		dst = append(dst, 0)
	}
	dst = appendMessageBody(dst, m)
	body := len(dst) - start - maxFrameHeader
	hdrLen := 1 + uvarintLen(uint64(body))
	hdrStart := start + maxFrameHeader - hdrLen
	dst[hdrStart] = BinMagic
	binary.PutUvarint(dst[hdrStart+1:start+maxFrameHeader], uint64(body))
	return append(dst[:start], dst[hdrStart:]...), nil
}

// WriteMessageBinary frames m onto w as one binary frame in a single
// Write, drawing the encode buffer from a free list. Callers serialize
// concurrent writers, as with WriteMessage.
func WriteMessageBinary(w io.Writer, m Message) error {
	m.V = ProtoVersion
	bufp := binBufs.Get().(*[]byte)
	buf, err := AppendMessageBinary((*bufp)[:0], m)
	if err == nil {
		_, err = w.Write(buf)
	}
	*bufp = buf[:0]
	binBufs.Put(bufp)
	return err
}

// DecodeMessageBinary decodes one complete binary frame (magic, length
// prefix, body). It is the symmetric counterpart of
// AppendMessageBinary, used by tests and fuzzers; connection readers
// use ReadMessageFrom, which frames incrementally off the stream.
func DecodeMessageBinary(frame []byte) (Message, error) {
	if len(frame) == 0 || frame[0] != BinMagic {
		return Message{}, fmt.Errorf("wire: not a binary frame")
	}
	bodyLen, n := binary.Uvarint(frame[1:])
	if n <= 0 {
		return Message{}, fmt.Errorf("wire: bad frame length prefix")
	}
	if bodyLen > MaxControlFrame {
		return Message{}, fmt.Errorf("wire: frame body %d bytes exceeds limit %d", bodyLen, MaxControlFrame)
	}
	body := frame[1+n:]
	if uint64(len(body)) != bodyLen {
		return Message{}, fmt.Errorf("wire: frame declares %d body bytes, has %d", bodyLen, len(body))
	}
	return decodeMessageBody(body)
}

// ReadMessageFrom reads the next control message from br, dispatching
// per message between the two framings: a peeked 0xB1 is a binary
// frame, anything else is a newline-delimited JSON message. Both sides
// of every control connection read through this, which is what lets
// negotiation concern only the sending direction.
func ReadMessageFrom(br *bufio.Reader) (Message, error) {
	for {
		c, err := br.ReadByte()
		if err != nil {
			return Message{}, err
		}
		switch c {
		case BinMagic:
			return readBinaryMessage(br)
		case '\n', '\r', ' ', '\t':
			continue // inter-message whitespace
		default:
			if err := br.UnreadByte(); err != nil {
				return Message{}, err
			}
			return readJSONLine(br)
		}
	}
}

func readBinaryMessage(br *bufio.Reader) (Message, error) {
	bodyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return Message{}, fmt.Errorf("wire: frame length: %w", err)
	}
	if bodyLen > MaxControlFrame {
		return Message{}, fmt.Errorf("wire: frame body %d bytes exceeds limit %d", bodyLen, MaxControlFrame)
	}
	bufp := binBufs.Get().(*[]byte)
	buf := *bufp
	if uint64(cap(buf)) < bodyLen {
		buf = make([]byte, bodyLen)
	}
	buf = buf[:bodyLen]
	_, err = io.ReadFull(br, buf)
	var m Message
	if err == nil {
		// Decoded strings and slices are copies, so the buffer can
		// recycle immediately.
		m, err = decodeMessageBody(buf)
	}
	*bufp = buf[:0]
	binBufs.Put(bufp)
	if err != nil {
		return Message{}, err
	}
	return m, nil
}

func readJSONLine(br *bufio.Reader) (Message, error) {
	line, err := br.ReadBytes('\n')
	if err != nil && (err != io.EOF || len(line) == 0) {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("wire: %w", err)
	}
	if m.V > ProtoVersion {
		return Message{}, fmt.Errorf("wire: message version %d newer than supported %d", m.V, ProtoVersion)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("wire: message without type")
	}
	return m, nil
}

// --- body encoding --------------------------------------------------

// appendMessageBody serializes every Message field; Type travels as
// its binary code (callers have already checked the table has one).
func appendMessageBody(b []byte, m Message) []byte {
	b = binary.AppendUvarint(b, uint64(m.V))
	b = append(b, msgCodes[m.Type])
	b = appendString(b, m.Proto)
	b = appendString(b, m.Name)
	b = binary.AppendVarint(b, m.Worker)
	b = binary.AppendVarint(b, m.HeartbeatNanos)
	b = binary.AppendUvarint(b, m.Config)
	b = binary.AppendUvarint(b, m.Job)
	b = binary.AppendVarint(b, int64(m.Attempt))
	b = binary.AppendVarint(b, int64(m.Ranks))
	b = binary.AppendVarint(b, int64(m.RankLo))
	b = binary.AppendVarint(b, int64(m.RankHi))
	if m.Spec == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = appendSpec(b, *m.Spec)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Kernels)))
	for _, k := range m.Kernels {
		b = appendKernel(b, k)
	}
	b = appendString(b, m.Addr)
	b = binary.AppendUvarint(b, uint64(len(m.Addrs)))
	for _, a := range m.Addrs {
		b = appendString(b, a)
	}
	b = binary.AppendVarint(b, m.ElapsedNanos)
	b = binary.AppendVarint(b, int64(m.Workers))
	b = appendString(b, m.Err)
	if m.Stats == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = appendStats(b, *m.Stats)
	}
	return b
}

func appendStats(b []byte, s StatsInfo) []byte {
	for _, v := range statsFields(&s) {
		b = binary.AppendVarint(b, int64(*v))
	}
	return b
}

// statsFields is the binary field schedule of StatsInfo, shared by the
// encoder and decoder so the two cannot drift. New fields append at
// the end only, alongside a ProtoVersion bump.
func statsFields(s *StatsInfo) []*int {
	return []*int{
		&s.Workers, &s.ConfigsBuilt, &s.ConfigsReused,
		&s.JobsRun, &s.JobsFailed, &s.JobsInFlight, &s.JobsRunning,
		&s.JobsRetried, &s.JobsRejected, &s.JobsCancelled,
		&s.QueueLen, &s.QueueCap, &s.Concurrency, &s.MaxAttempts,
		&s.ConfigsReprovisioned, &s.ConfigsEvicted, &s.WorkersDraining,
		&s.ConfigCacheHits, &s.ConfigCacheMisses, &s.MaxHeartbeatAgeNanos,
		&s.LatencyP50Nanos, &s.LatencyP95Nanos, &s.LatencyP99Nanos,
	}
}

func appendSpec(b []byte, spec AppSpec) []byte {
	b = binary.AppendUvarint(b, uint64(len(spec.Graphs)))
	for _, g := range spec.Graphs {
		b = binary.AppendVarint(b, int64(g.Steps))
		b = binary.AppendVarint(b, int64(g.Width))
		b = appendString(b, g.Type)
		b = binary.AppendVarint(b, int64(g.Radix))
		b = binary.AppendVarint(b, int64(g.Period))
		b = appendFloat(b, g.Fraction)
		b = appendString(b, g.Kernel)
		b = binary.AppendVarint(b, g.Iterations)
		b = binary.AppendVarint(b, g.SpanBytes)
		b = binary.AppendVarint(b, g.WaitNanos)
		b = appendFloat(b, g.Imbalance)
		b = binary.AppendVarint(b, int64(g.Output))
		b = binary.AppendVarint(b, g.Scratch)
		b = binary.AppendUvarint(b, g.Seed)
	}
	b = binary.AppendVarint(b, int64(spec.Workers))
	b = binary.AppendVarint(b, int64(spec.Nodes))
	switch {
	case spec.Validate == nil:
		b = append(b, 0)
	case *spec.Validate:
		b = append(b, 2)
	default:
		b = append(b, 1)
	}
	return b
}

func appendKernel(b []byte, k KernelSpec) []byte {
	b = appendString(b, k.Kernel)
	b = binary.AppendVarint(b, k.Iterations)
	b = binary.AppendVarint(b, k.SpanBytes)
	b = binary.AppendVarint(b, k.WaitNanos)
	b = appendFloat(b, k.Imbalance)
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// --- body decoding --------------------------------------------------

// binReader is a bounds-checked cursor over one frame body. Every read
// past the end sets err once and makes the remaining reads return zero
// values, so decoders can run the whole field schedule and check err
// at the end instead of threading it through every call.
type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) int() int { return int(r.varint()) }

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("truncated frame")
		return 0
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c
}

func (r *binReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail("string length %d exceeds remaining %d bytes", n, len(r.b))
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *binReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("truncated float")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return f
}

// count reads a list length and rejects lengths that cannot fit in the
// remaining body (each element costs at least minElem bytes), so a
// corrupt count cannot drive an unbounded make().
func (r *binReader) count(minElem int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)/minElem+1) {
		r.fail("list length %d exceeds remaining %d bytes", n, len(r.b))
		return 0
	}
	return int(n)
}

func decodeMessageBody(body []byte) (Message, error) {
	r := &binReader{b: body}
	var m Message
	m.V = int(r.uvarint())
	if r.err == nil && m.V > ProtoVersion {
		return Message{}, fmt.Errorf("wire: message version %d newer than supported %d", m.V, ProtoVersion)
	}
	code := r.byte()
	if r.err == nil {
		name, ok := msgNames[code]
		if !ok {
			return Message{}, fmt.Errorf("wire: unknown binary message code %d", code)
		}
		m.Type = name
	}
	m.Proto = r.string()
	m.Name = r.string()
	m.Worker = r.varint()
	m.HeartbeatNanos = r.varint()
	m.Config = r.uvarint()
	m.Job = r.uvarint()
	m.Attempt = r.int()
	m.Ranks = r.int()
	m.RankLo = r.int()
	m.RankHi = r.int()
	if r.byte() != 0 && r.err == nil {
		spec := decodeSpec(r)
		m.Spec = &spec
	}
	if n := r.count(1); n > 0 {
		m.Kernels = make([]KernelSpec, n)
		for i := range m.Kernels {
			m.Kernels[i] = decodeKernel(r)
		}
	}
	m.Addr = r.string()
	if n := r.count(1); n > 0 {
		m.Addrs = make([]string, n)
		for i := range m.Addrs {
			m.Addrs[i] = r.string()
		}
	}
	m.ElapsedNanos = r.varint()
	m.Workers = r.int()
	m.Err = r.string()
	if r.byte() != 0 && r.err == nil {
		var s StatsInfo
		for _, v := range statsFields(&s) {
			*v = r.int()
		}
		m.Stats = &s
	}
	if r.err != nil {
		return Message{}, r.err
	}
	if len(r.b) != 0 {
		return Message{}, fmt.Errorf("wire: %d trailing bytes after message body", len(r.b))
	}
	return m, nil
}

func decodeSpec(r *binReader) AppSpec {
	var spec AppSpec
	if n := r.count(1); n > 0 {
		spec.Graphs = make([]GraphSpec, n)
		for i := range spec.Graphs {
			spec.Graphs[i] = decodeGraph(r)
		}
	}
	spec.Workers = r.int()
	spec.Nodes = r.int()
	switch r.byte() {
	case 1:
		f := false
		spec.Validate = &f
	case 2:
		tr := true
		spec.Validate = &tr
	}
	return spec
}

func decodeGraph(r *binReader) GraphSpec {
	var g GraphSpec
	g.Steps = r.int()
	g.Width = r.int()
	g.Type = r.string()
	g.Radix = r.int()
	g.Period = r.int()
	g.Fraction = r.float()
	g.Kernel = r.string()
	g.Iterations = r.varint()
	g.SpanBytes = r.varint()
	g.WaitNanos = r.varint()
	g.Imbalance = r.float()
	g.Output = r.int()
	g.Scratch = r.varint()
	g.Seed = r.uvarint()
	return g
}

func decodeKernel(r *binReader) KernelSpec {
	var k KernelSpec
	k.Kernel = r.string()
	k.Iterations = r.varint()
	k.SpanBytes = r.varint()
	k.WaitNanos = r.varint()
	k.Imbalance = r.float()
	return k
}
