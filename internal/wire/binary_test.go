package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

// binaryTestMessages is one message per protocol type with every field
// exercised somewhere, shared by the round-trip and golden tests.
func binaryTestMessages() []Message {
	f := false
	return []Message{
		{Type: MsgRegister, Name: "node1", Proto: ProtoBinary},
		{Type: MsgWelcome, Worker: 3, HeartbeatNanos: 1000000000, Proto: ProtoBinary},
		{Type: MsgHeartbeat, Worker: 3},
		{Type: MsgPrepare, Config: 7, Ranks: 6, RankLo: 2, RankHi: 4, Spec: &AppSpec{
			Workers:  6,
			Nodes:    2,
			Validate: &f,
			Graphs: []GraphSpec{{
				Steps: 20, Width: 6, Type: "stencil_1d_periodic",
				Kernel: "compute_bound", Iterations: 64, Output: 128,
				Radix: 3, Period: 5, Fraction: 0.25, Imbalance: 1.5,
				SpanBytes: 4096, WaitNanos: 250, Scratch: 1 << 20, Seed: 42,
			}},
		}},
		{Type: MsgPrepared, Config: 7, Addr: "127.0.0.1:40721"},
		{Type: MsgConnect, Config: 7, Addrs: []string{"a:1", "a:1", "b:2", "b:2", "c:3", "c:3"}},
		{Type: MsgReady, Config: 7},
		{Type: MsgRun, Config: 7, Job: 9, Attempt: 1, Kernels: []KernelSpec{
			{Kernel: "compute_bound", Iterations: 64},
			{Kernel: "busy_wait", WaitNanos: 1500, Imbalance: 0.5, SpanBytes: 64},
		}},
		{Type: MsgResult, Config: 7, Job: 9, Attempt: 1, ElapsedNanos: 1234567},
		{Type: MsgRelease, Config: 7},
		{Type: MsgSubmit, Spec: &AppSpec{Graphs: []GraphSpec{{Steps: 2, Width: 2, Type: "trivial"}}}},
		{Type: MsgAccepted, Job: 9, Proto: ProtoBinary},
		{Type: MsgRejected, Job: 11, Err: "queue full (depth 64)"},
		{Type: MsgCancel, Job: 9},
		{Type: MsgDone, Job: 9, ElapsedNanos: 1234567, Workers: 6},
		{Type: MsgDone, Job: 10, Err: `worker "node2" died`},
		{Type: MsgStats, Job: 21},
		{Type: MsgStatsRply, Job: 21, Stats: &StatsInfo{
			Workers: 3, ConfigsBuilt: 2, ConfigsReused: 40,
			JobsRun: 42, JobsFailed: 1, JobsInFlight: 5, JobsRunning: 2,
			JobsRetried: 1, JobsRejected: 7, JobsCancelled: 1,
			QueueLen: 3, QueueCap: 64, Concurrency: 4, MaxAttempts: 3,
			ConfigsReprovisioned: 2, ConfigsEvicted: 1, WorkersDraining: 1,
			ConfigCacheHits: 40, ConfigCacheMisses: 2,
			MaxHeartbeatAgeNanos: 250_000_000,
			LatencyP50Nanos:      5_000_000, LatencyP95Nanos: 25_000_000, LatencyP99Nanos: 100_000_000,
		}},
		{Type: MsgDrain, Worker: 3, Name: "node1"},
		{Type: MsgDrained, Worker: 3},
	}
}

// TestBinaryRoundTrip pins decode(encode(m)) == m for every message
// type with every field populated somewhere.
func TestBinaryRoundTrip(t *testing.T) {
	for _, m := range binaryTestMessages() {
		m.V = ProtoVersion
		frame, err := AppendMessageBinary(nil, m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, err := DecodeMessageBinary(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s round trip changed message:\n sent %+v\n got  %+v", m.Type, m, got)
		}
	}
}

// TestBinaryMatchesJSON pins codec equivalence: a message sent through
// the binary framing decodes to exactly what the JSON framing decodes.
func TestBinaryMatchesJSON(t *testing.T) {
	for _, m := range binaryTestMessages() {
		var jbuf, bbuf bytes.Buffer
		if err := WriteMessage(&jbuf, m); err != nil {
			t.Fatal(err)
		}
		if err := WriteMessageBinary(&bbuf, m); err != nil {
			t.Fatal(err)
		}
		viaJSON, err := ReadMessageFrom(bufio.NewReader(&jbuf))
		if err != nil {
			t.Fatalf("%s: json read: %v", m.Type, err)
		}
		viaBinary, err := ReadMessageFrom(bufio.NewReader(&bbuf))
		if err != nil {
			t.Fatalf("%s: binary read: %v", m.Type, err)
		}
		if !reflect.DeepEqual(viaJSON, viaBinary) {
			t.Errorf("%s: codecs disagree:\n json   %+v\n binary %+v", m.Type, viaJSON, viaBinary)
		}
	}
}

// TestReadMessageFromMixedStream pins the migration property the
// negotiation relies on: one reader handles a stream that switches
// format mid-conversation (JSON register, binary afterwards).
func TestReadMessageFromMixedStream(t *testing.T) {
	msgs := binaryTestMessages()
	var stream bytes.Buffer
	for i, m := range msgs {
		var err error
		if i%2 == 0 {
			err = WriteMessage(&stream, m)
		} else {
			err = WriteMessageBinary(&stream, m)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&stream)
	for i, want := range msgs {
		got, err := ReadMessageFrom(br)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		want.V = ProtoVersion
		if !reflect.DeepEqual(want, got) {
			t.Errorf("message %d:\n want %+v\n got  %+v", i, want, got)
		}
	}
	if _, err := ReadMessageFrom(br); err == nil {
		t.Error("stream had extra messages")
	}
}

// TestBinaryTruncation feeds every strict prefix of a valid frame to
// the decoder: all must fail cleanly, none may panic or succeed.
func TestBinaryTruncation(t *testing.T) {
	for _, m := range binaryTestMessages() {
		m.V = ProtoVersion
		frame, err := AppendMessageBinary(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, err := DecodeMessageBinary(frame[:cut]); err == nil {
				t.Fatalf("%s: decode of %d/%d-byte prefix succeeded", m.Type, cut, len(frame))
			}
		}
		// And with the length prefix intact but the body truncated on
		// the stream: the reader must error, not block or misparse.
		for cut := 1; cut < len(frame); cut++ {
			if _, err := ReadMessageFrom(bufio.NewReader(bytes.NewReader(frame[:cut]))); err == nil {
				t.Fatalf("%s: stream read of %d/%d-byte prefix succeeded", m.Type, cut, len(frame))
			}
		}
	}
}

// TestBinaryOversizedFrame pins the max-frame guard: a corrupt length
// prefix beyond MaxControlFrame is rejected before any allocation of
// that size can happen.
func TestBinaryOversizedFrame(t *testing.T) {
	frame := []byte{BinMagic}
	frame = binary.AppendUvarint(frame, MaxControlFrame+1)
	if _, err := DecodeMessageBinary(frame); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame not rejected: %v", err)
	}
	if _, err := ReadMessageFrom(bufio.NewReader(bytes.NewReader(frame))); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized stream frame not rejected: %v", err)
	}

	// A plausible length prefix hiding an oversized string must also
	// fail: list and string lengths are checked against the remaining
	// body, not trusted.
	lie := []byte{BinMagic}
	body := binary.AppendUvarint(nil, ProtoVersion)
	body = append(body, msgCodes[MsgRegister])
	body = binary.AppendUvarint(body, 1<<40) // proto string "length"
	lie = binary.AppendUvarint(lie, uint64(len(body)))
	lie = append(lie, body...)
	if _, err := DecodeMessageBinary(lie); err == nil {
		t.Error("lying string length not rejected")
	}
}

// TestBinaryVersionGate rejects frames from a newer major version,
// mirroring the JSON reader's check.
func TestBinaryVersionGate(t *testing.T) {
	m := Message{V: ProtoVersion + 1, Type: MsgHeartbeat}
	frame, err := AppendMessageBinary(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessageBinary(frame); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("accepted binary message from the future: %v", err)
	}
}

// TestBinaryRejectsUnknownType pins that a zeroed or unknown type code
// is an error, not a silent misparse.
func TestBinaryRejectsUnknownType(t *testing.T) {
	body := binary.AppendUvarint(nil, ProtoVersion)
	body = append(body, 0) // invalid code
	frame := []byte{BinMagic}
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = append(frame, body...)
	if _, err := DecodeMessageBinary(frame); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown type code not rejected: %v", err)
	}
	if _, err := AppendMessageBinary(nil, Message{Type: "no_such_type"}); err == nil {
		t.Error("encoder accepted unknown message type")
	}
}

// TestBinaryTrailingBytes rejects frames whose body is longer than the
// field schedule: trailing garbage means a framing bug, and accepting
// it would let two peers silently desynchronize.
func TestBinaryTrailingBytes(t *testing.T) {
	frame, err := AppendMessageBinary(nil, Message{V: ProtoVersion, Type: MsgHeartbeat, Worker: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with one extra body byte and a matching length prefix.
	bodyLen, n := binary.Uvarint(frame[1:])
	body := append([]byte(nil), frame[1+n:]...)
	if uint64(len(body)) != bodyLen {
		t.Fatal("test framing confusion")
	}
	body = append(body, 0xEE)
	tampered := []byte{BinMagic}
	tampered = binary.AppendUvarint(tampered, uint64(len(body)))
	tampered = append(tampered, body...)
	if _, err := DecodeMessageBinary(tampered); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing bytes not rejected: %v", err)
	}
}
