package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// benchMessage returns a control message representative of the named
// hot-path shape: "heartbeat" is the highest-rate tiny message,
// "result" a typical reply, "submit" the spec-bearing worst case.
func benchMessage(shape string) Message {
	switch shape {
	case "heartbeat":
		return Message{Type: MsgHeartbeat, Worker: 17}
	case "result":
		return Message{Type: MsgResult, Job: 12345, Worker: 17, Attempt: 1, ElapsedNanos: 987654321}
	case "submit":
		return Message{Type: MsgSubmit, Proto: ProtoBinary, Spec: &AppSpec{
			Workers: 64,
			Graphs: []GraphSpec{{
				Steps: 1000, Width: 256, Type: "stencil_1d_periodic",
				Kernel: "compute_bound", Iterations: 8192, Output: 65536,
			}, {
				Steps: 1000, Width: 128, Type: "fft",
				Kernel: "memory_bound", SpanBytes: 1 << 20, Output: 1024,
				Fraction: 0.5, Imbalance: 0.25,
			}},
		}}
	}
	panic("unknown shape " + shape)
}

var benchShapes = []string{"heartbeat", "result", "submit"}

// BenchmarkWireEncodeJSON / BenchmarkWireEncodeBinary measure the
// per-message cost of each control frame format on the write path the
// cluster actually uses (WriteMessage / WriteMessageBinary to a
// writer). The CI perf gate watches these.
func BenchmarkWireEncodeJSON(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape, func(b *testing.B) {
			m := benchMessage(shape)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := WriteMessage(io.Discard, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireEncodeBinary(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape, func(b *testing.B) {
			m := benchMessage(shape)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := WriteMessageBinary(io.Discard, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The decode benchmarks go through ReadMessageFrom — the bilingual
// reader every cluster connection uses — so the per-message format
// detection is part of the measured cost for both formats.
func benchDecode(b *testing.B, frame []byte) {
	b.Helper()
	rd := bytes.NewReader(frame)
	br := bufio.NewReader(rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		br.Reset(rd)
		if _, err := ReadMessageFrom(br); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeJSON(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape, func(b *testing.B) {
			var buf bytes.Buffer
			if err := WriteMessage(&buf, benchMessage(shape)); err != nil {
				b.Fatal(err)
			}
			benchDecode(b, buf.Bytes())
		})
	}
}

func BenchmarkWireDecodeBinary(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape, func(b *testing.B) {
			var buf bytes.Buffer
			if err := WriteMessageBinary(&buf, benchMessage(shape)); err != nil {
				b.Fatal(err)
			}
			benchDecode(b, buf.Bytes())
		})
	}
}
