package wire

import (
	"strings"
	"testing"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
)

func sampleApp(t *testing.T) *core.App {
	t.Helper()
	app := core.NewApp(
		core.MustNew(core.Params{
			Timesteps: 10, MaxWidth: 8, Dependence: core.Nearest, Radix: 5,
			Kernel:      kernels.Config{Type: kernels.ComputeBound, Iterations: 256},
			OutputBytes: 64, Seed: 7,
		}),
		core.MustNew(core.Params{
			GraphID: 1, Timesteps: 5, MaxWidth: 4, Dependence: core.Trivial,
			Kernel: kernels.Config{Type: kernels.BusyWait, WaitDuration: 20 * time.Microsecond},
		}),
	)
	app.Workers = 4
	return app
}

func TestRoundTrip(t *testing.T) {
	app := sampleApp(t)
	spec := FromApp(app)
	back, err := spec.ToApp()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Graphs) != 2 || back.Workers != 4 || !back.Validate {
		t.Fatalf("round trip lost app fields: %+v", back)
	}
	g := back.Graphs[0]
	if g.Dependence != core.Nearest || g.Radix != 5 || g.Kernel.Iterations != 256 ||
		g.OutputBytes != 64 || g.Seed != 7 {
		t.Errorf("graph 0 fields lost: %+v", g.Params)
	}
	if back.Graphs[1].Kernel.WaitDuration != 20*time.Microsecond {
		t.Errorf("busy wait lost: %+v", back.Graphs[1].Kernel)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	app := sampleApp(t)
	var sb strings.Builder
	if err := Encode(&sb, FromApp(app)); err != nil {
		t.Fatal(err)
	}
	spec, err := Decode(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.ToApp()
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalTasks() != app.TotalTasks() || back.TotalDependencies() != app.TotalDependencies() {
		t.Error("JSON round trip changed the graph structure")
	}
}

func TestValidateFlagSurvives(t *testing.T) {
	app := sampleApp(t)
	app.Validate = false
	back, err := FromApp(app).ToApp()
	if err != nil {
		t.Fatal(err)
	}
	if back.Validate {
		t.Error("validate=false lost in round trip")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		``,                           // empty
		`{"graphs": []}`,             // no graphs
		`{"graphs": [{"steps": 1}]}`, // missing type
		`{"graphs": [{"bogus": 1}]}`, // unknown field
		`{"graphs": [{"steps": 1, "width": 1, "type": "nope"}]}`,
		`{"graphs": [{"steps": 1, "width": 1, "type": "trivial", "kernel": "nope"}]}`,
		`{"graphs": [{"steps": 0, "width": 1, "type": "trivial"}]}`,
	}
	for _, c := range cases {
		spec, err := Decode(strings.NewReader(c))
		if err == nil {
			_, err = spec.ToApp()
		}
		if err == nil {
			t.Errorf("Decode/ToApp accepted invalid spec %q", c)
		}
	}
}
