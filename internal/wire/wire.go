// Package wire serializes Task Bench configurations as JSON so that
// experiment sweeps can be described in files, shipped to remote
// workers, and reproduced exactly. The schema mirrors core.Params plus
// the app-level fields.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
)

// GraphSpec is the JSON form of one task graph.
type GraphSpec struct {
	Steps      int     `json:"steps"`
	Width      int     `json:"width"`
	Type       string  `json:"type"`
	Radix      int     `json:"radix,omitempty"`
	Period     int     `json:"period,omitempty"`
	Fraction   float64 `json:"fraction,omitempty"`
	Kernel     string  `json:"kernel,omitempty"`
	Iterations int64   `json:"iterations,omitempty"`
	SpanBytes  int64   `json:"span_bytes,omitempty"`
	WaitNanos  int64   `json:"wait_nanos,omitempty"`
	Imbalance  float64 `json:"imbalance,omitempty"`
	Output     int     `json:"output_bytes,omitempty"`
	Scratch    int64   `json:"scratch_bytes,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
}

// AppSpec is the JSON form of a full configuration.
type AppSpec struct {
	Graphs   []GraphSpec `json:"graphs"`
	Workers  int         `json:"workers,omitempty"`
	Nodes    int         `json:"nodes,omitempty"`
	Validate *bool       `json:"validate,omitempty"`
}

// FromApp converts a live configuration into its JSON form.
func FromApp(app *core.App) AppSpec {
	spec := AppSpec{Workers: app.Workers, Nodes: app.Nodes}
	if !app.Validate {
		f := false
		spec.Validate = &f
	}
	for _, g := range app.Graphs {
		gs := GraphSpec{
			Steps: g.Timesteps, Width: g.MaxWidth, Type: g.Dependence.String(),
			Radix: g.Radix, Period: g.Period, Fraction: g.Fraction,
			Iterations: g.Kernel.Iterations, SpanBytes: g.Kernel.SpanBytes,
			WaitNanos: int64(g.Kernel.WaitDuration), Imbalance: g.Kernel.ImbalanceFactor,
			Output: g.OutputBytes, Scratch: g.ScratchBytes, Seed: g.Seed,
		}
		if g.Kernel.Type != kernels.Empty {
			gs.Kernel = g.Kernel.Type.String()
		}
		spec.Graphs = append(spec.Graphs, gs)
	}
	return spec
}

// ToApp validates the spec and builds a runnable configuration.
func (spec AppSpec) ToApp() (*core.App, error) {
	if len(spec.Graphs) == 0 {
		return nil, fmt.Errorf("wire: spec has no graphs")
	}
	app := &core.App{Workers: spec.Workers, Nodes: spec.Nodes, Validate: true}
	if spec.Validate != nil {
		app.Validate = *spec.Validate
	}
	for gi, gs := range spec.Graphs {
		dep, err := core.ParseDependenceType(gs.Type)
		if err != nil {
			return nil, fmt.Errorf("wire: graph %d: %w", gi, err)
		}
		k := kernels.Config{
			Iterations: gs.Iterations, SpanBytes: gs.SpanBytes,
			WaitDuration: time.Duration(gs.WaitNanos), ImbalanceFactor: gs.Imbalance,
		}
		if gs.Kernel != "" {
			k.Type, err = kernels.ParseType(gs.Kernel)
			if err != nil {
				return nil, fmt.Errorf("wire: graph %d: %w", gi, err)
			}
		}
		g, err := core.New(core.Params{
			GraphID: gi, Timesteps: gs.Steps, MaxWidth: gs.Width, Dependence: dep,
			Radix: gs.Radix, Period: gs.Period, Fraction: gs.Fraction,
			Kernel: k, OutputBytes: gs.Output, ScratchBytes: gs.Scratch, Seed: gs.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("wire: graph %d: %w", gi, err)
		}
		app.Graphs = append(app.Graphs, g)
	}
	return app, nil
}

// Encode writes the spec as indented JSON.
func Encode(w io.Writer, spec AppSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// Decode reads a spec from JSON.
func Decode(r io.Reader) (AppSpec, error) {
	var spec AppSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return AppSpec{}, fmt.Errorf("wire: %w", err)
	}
	return spec, nil
}
