package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"taskbench/internal/kernels"
)

// ProtoVersion is the version stamped on every cluster protocol
// message. A receiver rejects messages from a newer major version
// instead of misinterpreting fields; unknown fields from same-version
// peers are ignored (the decoder here is deliberately lenient, unlike
// the strict spec Decode).
//
// Version history:
//
//	1  initial protocol (register…done)
//	2  rejected/cancel messages; results matched on (job, attempt) —
//	   a v1 worker would never echo Attempt, silently stalling every
//	   retried run, so the bump makes the mismatch loud.
//	3  binary framing (binary.go) negotiated via the Proto field at
//	   register/welcome (worker) and submit/first-reply (client) time.
//	   JSON remains the opening and fallback format: a v2 peer ignores
//	   the unknown proto field, never echoes it, and the conversation
//	   simply stays JSON.
//	4  stats/statsreply control messages: a client observes the
//	   coordinator's queue depth, in-flight gauges and counters over
//	   its existing control connection (the load generator's
//	   utilization feed). A v3 coordinator would drop a client on the
//	   unknown message, so the bump makes the mismatch loud.
//	5  drain/drained graceful-departure exchange: a worker announces
//	   it is leaving, the coordinator stops placing on it, unwinds its
//	   configs, and answers drained when the worker may exit. A v4
//	   coordinator would drop a draining worker on the unknown message
//	   — indistinguishable from a crash — so the bump makes the
//	   mismatch loud. StatsInfo also gains elasticity counters
//	   (reprovisioned/evicted configs, draining workers), appended to
//	   the binary field schedule per the statsFields contract.
//	6  StatsInfo gains observability fields: first-class config cache
//	   hit/miss counters (previously only inferrable from
//	   reprovision/evict deltas), the stalest live worker's heartbeat
//	   age, and nearest-rank job-latency percentiles from the
//	   coordinator's histogram — all appended to the binary field
//	   schedule per the statsFields contract, so a v5 peer decodes the
//	   prefix it knows and ignores the rest.
const ProtoVersion = 6

// Message types of the cluster control protocol. One flat Message
// envelope carries every type; unused fields stay at their zero value
// and are omitted from the JSON.
//
// Worker ↔ coordinator:
//
//	register →, ← welcome            worker joins the fleet
//	heartbeat →                      liveness, every HeartbeatNanos
//	← prepare, prepared →            build app/plan + data listener
//	← connect, ready →               wire the rank mesh across workers
//	← run, result →                  one job on a prepared config
//	← release                        drop a config (session teardown)
//	drain →, ← drained               graceful departure: the worker
//	                                 announces it is leaving; the
//	                                 coordinator stops placing on it,
//	                                 unwinds its configs, and answers
//	                                 drained when the worker may exit
//	                                 (distinct from the heartbeat-driven
//	                                 death path, which needs no consent)
//
// Client ↔ coordinator:
//
//	submit →, ← accepted | rejected  admission: every submit is answered
//	                                 immediately — accepted (queued) or
//	                                 rejected (full queue, invalid spec)
//	← done                           one per accepted job, matched by id;
//	                                 many jobs may be in flight per
//	                                 connection
//	cancel →                         abandon an accepted job by id
//	stats →, ← statsreply            coordinator gauge/counter snapshot;
//	                                 the request's Job field is a
//	                                 client-chosen correlation id the
//	                                 reply echoes, so stats interleave
//	                                 freely with in-flight jobs
const (
	MsgRegister  = "register"
	MsgWelcome   = "welcome"
	MsgHeartbeat = "heartbeat"
	MsgPrepare   = "prepare"
	MsgPrepared  = "prepared"
	MsgConnect   = "connect"
	MsgReady     = "ready"
	MsgRun       = "run"
	MsgResult    = "result"
	MsgRelease   = "release"
	MsgSubmit    = "submit"
	MsgAccepted  = "accepted"
	MsgRejected  = "rejected"
	MsgCancel    = "cancel"
	MsgDone      = "done"
	MsgStats     = "stats"
	MsgStatsRply = "statsreply"
	MsgDrain     = "drain"
	MsgDrained   = "drained"
)

// StatsInfo is the coordinator snapshot carried by a statsreply: the
// gauges and counters a remote client (the load generator's
// utilization feed) needs without scraping coordinator process
// internals. Counters are cumulative since coordinator start; gauges
// are instantaneous.
type StatsInfo struct {
	// Workers is the live fleet size.
	Workers int `json:"workers,omitempty"`
	// ConfigsBuilt / ConfigsReused count configuration provisioning
	// vs cross-request reuse.
	ConfigsBuilt  int `json:"configs_built,omitempty"`
	ConfigsReused int `json:"configs_reused,omitempty"`
	// JobsRun counts completed jobs (success or failure); JobsFailed
	// the failures among them.
	JobsRun    int `json:"jobs_run,omitempty"`
	JobsFailed int `json:"jobs_failed,omitempty"`
	// JobsInFlight and JobsRunning are gauges: jobs claimed by
	// scheduler slots, and jobs actually executing on the fleet.
	JobsInFlight int `json:"jobs_in_flight,omitempty"`
	JobsRunning  int `json:"jobs_running,omitempty"`
	// JobsRetried / JobsRejected / JobsCancelled mirror the
	// coordinator's counters of the same names.
	JobsRetried   int `json:"jobs_retried,omitempty"`
	JobsRejected  int `json:"jobs_rejected,omitempty"`
	JobsCancelled int `json:"jobs_cancelled,omitempty"`
	// QueueLen / QueueCap are the admission queue's current depth and
	// capacity — the backpressure gauge.
	QueueLen int `json:"queue_len,omitempty"`
	QueueCap int `json:"queue_cap,omitempty"`
	// Concurrency is the scheduler slot count — the denominator of
	// fleet utilization.
	Concurrency int `json:"concurrency,omitempty"`
	// MaxAttempts is the per-job run budget (1 = retry disabled).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// ConfigsReprovisioned counts configs torn down and rebuilt because
	// the fleet changed under them (join growth, drain shrink);
	// ConfigsEvicted counts cold configs dropped by the LRU cap.
	ConfigsReprovisioned int `json:"configs_reprovisioned,omitempty"`
	ConfigsEvicted       int `json:"configs_evicted,omitempty"`
	// WorkersDraining is a gauge: fleet members mid-drain (excluded
	// from placement, not yet released).
	WorkersDraining int `json:"workers_draining,omitempty"`
	// ConfigCacheHits / ConfigCacheMisses are first-class cache-outcome
	// counters: jobs that found a usable prepared configuration vs jobs
	// that had to provision (first of a shape, or after stale/lost).
	ConfigCacheHits   int `json:"config_cache_hits,omitempty"`
	ConfigCacheMisses int `json:"config_cache_misses,omitempty"`
	// MaxHeartbeatAgeNanos is a gauge: the age of the stalest live
	// worker's last heartbeat — the fleet-liveness early warning.
	MaxHeartbeatAgeNanos int `json:"max_heartbeat_age_ns,omitempty"`
	// LatencyP50/P95/P99Nanos are nearest-rank percentiles of the
	// admission→done job latency histogram, cumulative since
	// coordinator start (0 until a job completes).
	LatencyP50Nanos int `json:"latency_p50_ns,omitempty"`
	LatencyP95Nanos int `json:"latency_p95_ns,omitempty"`
	LatencyP99Nanos int `json:"latency_p99_ns,omitempty"`
}

// KernelSpec is the JSON form of one graph's kernel configuration —
// the part of a job that changes between runs of the same
// configuration (an METG sweep shrinks Iterations while the DAG shape,
// and therefore the prepared session, stays fixed).
type KernelSpec struct {
	Kernel     string  `json:"kernel,omitempty"`
	Iterations int64   `json:"iterations,omitempty"`
	SpanBytes  int64   `json:"span_bytes,omitempty"`
	WaitNanos  int64   `json:"wait_nanos,omitempty"`
	Imbalance  float64 `json:"imbalance,omitempty"`
}

// KernelSpecOf converts a live kernel configuration to its JSON form.
func KernelSpecOf(k kernels.Config) KernelSpec {
	ks := KernelSpec{
		Iterations: k.Iterations,
		SpanBytes:  k.SpanBytes,
		WaitNanos:  int64(k.WaitDuration),
		Imbalance:  k.ImbalanceFactor,
	}
	if k.Type != kernels.Empty {
		ks.Kernel = k.Type.String()
	}
	return ks
}

// ToConfig validates the spec and returns the kernel configuration.
func (ks KernelSpec) ToConfig() (kernels.Config, error) {
	k := kernels.Config{
		Iterations:      ks.Iterations,
		SpanBytes:       ks.SpanBytes,
		WaitDuration:    time.Duration(ks.WaitNanos),
		ImbalanceFactor: ks.Imbalance,
	}
	if ks.Kernel != "" {
		t, err := kernels.ParseType(ks.Kernel)
		if err != nil {
			return kernels.Config{}, err
		}
		k.Type = t
	}
	if err := k.Validate(); err != nil {
		return kernels.Config{}, err
	}
	return k, nil
}

// Message is the single envelope of the cluster control protocol:
// newline-delimited JSON over the coordinator's TCP control port.
// Type selects which fields are meaningful.
type Message struct {
	V    int    `json:"v"`
	Type string `json:"type"`

	// Proto negotiates the frame format of the sending direction:
	// a register or submit carrying ProtoBinary offers "I can read
	// binary frames; you may send them", and the welcome (or first
	// accepted/rejected reply) echoing it accepts the offer for the
	// opposite direction. Receivers always auto-detect per message
	// (ReadMessageFrom), so negotiation never has a window where a
	// frame is unreadable.
	Proto string `json:"proto,omitempty"`

	// Name identifies a worker at registration.
	Name string `json:"name,omitempty"`
	// Worker is the coordinator-assigned worker id (welcome).
	Worker int64 `json:"worker,omitempty"`
	// HeartbeatNanos is the interval workers must heartbeat at
	// (welcome).
	HeartbeatNanos int64 `json:"heartbeat_nanos,omitempty"`

	// Config identifies a prepared configuration (prepare…release).
	Config uint64 `json:"config,omitempty"`
	// Job identifies one queued job (run, result, accepted, rejected,
	// cancel, done).
	Job uint64 `json:"job,omitempty"`
	// Attempt is the retry generation of a run (run, result): a job
	// re-queued after a worker death runs again with the next attempt
	// number, and results are matched on (job, attempt) so a stale
	// run's late result cannot be mistaken for the live attempt's.
	Attempt int `json:"attempt,omitempty"`

	// Ranks is the total rank count of a configuration (prepare).
	Ranks int `json:"ranks,omitempty"`
	// RankLo, RankHi delimit the worker's contiguous rank span
	// (prepare); Lo inclusive, Hi exclusive.
	RankLo int `json:"rank_lo,omitempty"`
	RankHi int `json:"rank_hi,omitempty"`

	// Spec carries the full app configuration (submit, prepare).
	Spec *AppSpec `json:"spec,omitempty"`
	// Kernels carries per-graph kernel overrides for one run, in graph
	// order (run).
	Kernels []KernelSpec `json:"kernels,omitempty"`

	// Addr is the data address a worker's mesh listener is bound to
	// (prepared).
	Addr string `json:"addr,omitempty"`
	// Addrs maps every rank to the data address of its hosting worker
	// (connect).
	Addrs []string `json:"addrs,omitempty"`

	// ElapsedNanos is the measured wall time of a run (result, done).
	ElapsedNanos int64 `json:"elapsed_nanos,omitempty"`
	// Workers is the rank count a completed job actually ran on (done).
	Workers int `json:"workers,omitempty"`

	// Err carries a failure through prepared, ready, result and done.
	Err string `json:"err,omitempty"`

	// Stats is the coordinator snapshot of a statsreply.
	Stats *StatsInfo `json:"stats,omitempty"`
}

// WriteMessage frames one message onto w: compact JSON followed by a
// newline, the streaming-friendly counterpart of the spec files'
// indented Encode. Callers serialize concurrent writers.
func WriteMessage(w io.Writer, m Message) error {
	m.V = ProtoVersion
	return json.NewEncoder(w).Encode(m)
}

// ReadMessage decodes the next message from dec (one *json.Decoder per
// connection, so buffered bytes are not lost between reads). Unknown
// fields are ignored — newer same-major peers may say more — but a
// newer major version is an error, not a misread.
func ReadMessage(dec *json.Decoder) (Message, error) {
	var m Message
	if err := dec.Decode(&m); err != nil {
		return Message{}, err
	}
	if m.V > ProtoVersion {
		return Message{}, fmt.Errorf("wire: message version %d newer than supported %d", m.V, ProtoVersion)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("wire: message without type")
	}
	return m, nil
}

// ShapeKey canonicalizes the structural part of a spec — everything
// except the kernel configurations — as a comparable string. Two jobs
// with equal shape keys can share one prepared cluster configuration
// (plans, payload rows, connection mesh), the cross-request analog of
// the reusable RankSession.
func ShapeKey(spec AppSpec) string {
	shape := spec
	shape.Graphs = make([]GraphSpec, len(spec.Graphs))
	for i, g := range spec.Graphs {
		g.Kernel = ""
		g.Iterations = 0
		g.SpanBytes = 0
		g.WaitNanos = 0
		g.Imbalance = 0
		shape.Graphs[i] = g
	}
	b, err := json.Marshal(shape)
	if err != nil {
		// AppSpec contains only marshalable fields; this is unreachable.
		panic(fmt.Sprintf("wire: shape key: %v", err))
	}
	return string(b)
}

// KernelsOf extracts the per-graph kernel configurations of a spec, in
// graph order — the payload of a run message.
func KernelsOf(spec AppSpec) []KernelSpec {
	ks := make([]KernelSpec, len(spec.Graphs))
	for i, g := range spec.Graphs {
		ks[i] = KernelSpec{
			Kernel:     g.Kernel,
			Iterations: g.Iterations,
			SpanBytes:  g.SpanBytes,
			WaitNanos:  g.WaitNanos,
			Imbalance:  g.Imbalance,
		}
	}
	return ks
}
