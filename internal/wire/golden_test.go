package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGoldenSpecDecode pins the on-disk spec schema: the checked-in
// input decodes to exactly the expected configuration, and its
// normalized re-encoding matches the checked-in golden byte for byte.
// Cluster mode ships these documents between processes (and, across an
// upgrade, between versions), so schema drift must fail a test, not a
// fleet.
func TestGoldenSpecDecode(t *testing.T) {
	in, err := os.ReadFile(filepath.Join("testdata", "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Decode(bytes.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Graphs) != 2 || spec.Workers != 8 || spec.Nodes != 2 {
		t.Fatalf("unexpected decode: %+v", spec)
	}
	g0, g1 := spec.Graphs[0], spec.Graphs[1]
	if g0.Steps != 100 || g0.Width != 16 || g0.Type != "stencil_1d" ||
		g0.Kernel != "compute_bound" || g0.Iterations != 4096 ||
		g0.Output != 1024 || g0.Seed != 42 {
		t.Errorf("graph 0 decoded wrong: %+v", g0)
	}
	if g1.Type != "spread" || g1.Radix != 3 || g1.Period != 5 ||
		g1.Kernel != "memory_bound" || g1.SpanBytes != 65536 || g1.Scratch != 1048576 {
		t.Errorf("graph 1 decoded wrong: %+v", g1)
	}

	app, err := spec.ToApp()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := Encode(&out, FromApp(app)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "spec.normalized.json", []byte(out.String()))
}

// TestGoldenMessages pins the cluster control protocol: every message
// type round-trips through the checked-in newline-delimited stream.
func TestGoldenMessages(t *testing.T) {
	f := false
	msgs := []Message{
		{Type: MsgRegister, Name: "node1"},
		{Type: MsgWelcome, Worker: 3, HeartbeatNanos: 1000000000},
		{Type: MsgHeartbeat, Worker: 3},
		{Type: MsgPrepare, Config: 7, Ranks: 6, RankLo: 2, RankHi: 4, Spec: &AppSpec{
			Workers:  6,
			Validate: &f,
			Graphs: []GraphSpec{{
				Steps: 20, Width: 6, Type: "stencil_1d_periodic",
				Kernel: "compute_bound", Iterations: 64, Output: 128,
			}},
		}},
		{Type: MsgPrepared, Config: 7, Addr: "127.0.0.1:40721"},
		{Type: MsgConnect, Config: 7, Addrs: []string{"a:1", "a:1", "b:2", "b:2", "c:3", "c:3"}},
		{Type: MsgReady, Config: 7},
		{Type: MsgRun, Config: 7, Job: 9, Kernels: []KernelSpec{{Kernel: "compute_bound", Iterations: 64}}},
		{Type: MsgResult, Config: 7, Job: 9, ElapsedNanos: 1234567},
		{Type: MsgRun, Config: 8, Job: 9, Attempt: 1, Kernels: []KernelSpec{{Kernel: "compute_bound", Iterations: 64}}},
		{Type: MsgResult, Config: 8, Job: 9, Attempt: 1, ElapsedNanos: 1234567},
		{Type: MsgRelease, Config: 7},
		{Type: MsgSubmit, Spec: &AppSpec{Graphs: []GraphSpec{{Steps: 2, Width: 2, Type: "trivial"}}}},
		{Type: MsgAccepted, Job: 9},
		{Type: MsgRejected, Job: 11, Err: "queue full (depth 64)"},
		{Type: MsgCancel, Job: 9},
		{Type: MsgDone, Job: 9, ElapsedNanos: 1234567, Workers: 6},
		{Type: MsgDone, Job: 10, Err: `worker "node2" died`},
		{Type: MsgStats, Job: 21},
		{Type: MsgStatsRply, Job: 21, Stats: &StatsInfo{
			Workers: 3, JobsRun: 42, JobsRejected: 7,
			QueueLen: 3, QueueCap: 64, Concurrency: 4, MaxAttempts: 3,
			ConfigsReprovisioned: 2, ConfigsEvicted: 1, WorkersDraining: 1,
			ConfigCacheHits: 40, ConfigCacheMisses: 2,
			MaxHeartbeatAgeNanos: 250_000_000,
			LatencyP50Nanos:      5_000_000, LatencyP95Nanos: 25_000_000, LatencyP99Nanos: 100_000_000,
		}},
		{Type: MsgDrain, Worker: 3, Name: "node1"},
		{Type: MsgDrained, Worker: 3},
	}
	var out bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&out, m); err != nil {
			t.Fatal(err)
		}
	}
	compareGolden(t, "messages.jsonl", out.Bytes())

	// The checked-in stream decodes back to the same messages.
	golden, err := os.ReadFile(filepath.Join("testdata", "messages.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(golden))
	for k, want := range msgs {
		got, err := ReadMessage(dec)
		if err != nil {
			t.Fatalf("message %d: %v", k, err)
		}
		want.V = ProtoVersion
		if got.Spec != nil && want.Spec != nil {
			if string(mustJSON(t, got.Spec)) != string(mustJSON(t, want.Spec)) {
				t.Errorf("message %d spec mismatch", k)
			}
			got.Spec, want.Spec = nil, nil
		}
		gj, wj := mustJSON(t, got), mustJSON(t, want)
		if string(gj) != string(wj) {
			t.Errorf("message %d:\n got %s\nwant %s", k, gj, wj)
		}
	}
	if _, err := ReadMessage(dec); err == nil {
		t.Error("golden stream has extra messages")
	}
}

// TestGoldenMessagesBinary pins the binary framing byte for byte: the
// encoder's output for every message type matches the checked-in
// stream, and the checked-in stream decodes back to the same messages.
// Unlike JSON, the binary format has no lenient decode — any layout
// change is a protocol change and must bump ProtoVersion, so this test
// failing without a version bump is the bug, not the golden file.
func TestGoldenMessagesBinary(t *testing.T) {
	msgs := binaryTestMessages()
	var out bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessageBinary(&out, m); err != nil {
			t.Fatal(err)
		}
	}
	compareGolden(t, "messages.bin", out.Bytes())

	golden, err := os.ReadFile(filepath.Join("testdata", "messages.bin"))
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(golden))
	for k, want := range msgs {
		got, err := ReadMessageFrom(br)
		if err != nil {
			t.Fatalf("message %d: %v", k, err)
		}
		want.V = ProtoVersion
		if !reflect.DeepEqual(want, got) {
			t.Errorf("message %d:\n want %+v\n got  %+v", k, want, got)
		}
	}
	if _, err := ReadMessageFrom(br); err == nil {
		t.Error("golden stream has extra messages")
	}
}

// TestMessageVersioning rejects newer-major messages instead of
// misreading them, and tolerates unknown fields from same-version
// peers.
func TestMessageVersioning(t *testing.T) {
	dec := json.NewDecoder(strings.NewReader(
		`{"v":99,"type":"heartbeat"}` + "\n"))
	if _, err := ReadMessage(dec); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("accepted message from the future: %v", err)
	}
	dec = json.NewDecoder(strings.NewReader(
		`{"v":1,"type":"heartbeat","some_future_field":true}` + "\n" +
			`{"v":1}` + "\n"))
	if m, err := ReadMessage(dec); err != nil || m.Type != MsgHeartbeat {
		t.Errorf("lenient decode failed: %v %+v", err, m)
	}
	if _, err := ReadMessage(dec); err == nil {
		t.Error("accepted message without type")
	}
}

// TestShapeKeyIgnoresKernels pins the configuration-reuse contract:
// kernel changes keep the shape, structural changes do not.
func TestShapeKeyIgnoresKernels(t *testing.T) {
	base := AppSpec{Workers: 4, Graphs: []GraphSpec{{
		Steps: 10, Width: 4, Type: "stencil_1d",
		Kernel: "compute_bound", Iterations: 1024,
	}}}
	kernelSwap := base
	kernelSwap.Graphs = []GraphSpec{base.Graphs[0]}
	kernelSwap.Graphs[0].Iterations = 1
	kernelSwap.Graphs[0].Kernel = "busy_wait"
	kernelSwap.Graphs[0].WaitNanos = 500
	if ShapeKey(base) != ShapeKey(kernelSwap) {
		t.Error("kernel change altered the shape key")
	}
	for _, mutate := range []func(*GraphSpec){
		func(g *GraphSpec) { g.Steps = 11 },
		func(g *GraphSpec) { g.Width = 8 },
		func(g *GraphSpec) { g.Type = "fft" },
		func(g *GraphSpec) { g.Output = 64 },
		func(g *GraphSpec) { g.Seed = 1 },
	} {
		changed := base
		changed.Graphs = []GraphSpec{base.Graphs[0]}
		mutate(&changed.Graphs[0])
		if ShapeKey(base) == ShapeKey(changed) {
			t.Errorf("structural change %+v did not alter the shape key", changed.Graphs[0])
		}
	}
	moreRanks := base
	moreRanks.Workers = 8
	if ShapeKey(base) == ShapeKey(moreRanks) {
		t.Error("rank-count change did not alter the shape key")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// compareGolden checks got against the named golden file, rewriting it
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/wire -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n got: %s\nwant: %s", name, got, want)
	}
}
