package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzAppSpecRoundTrip checks, for any input the decoder accepts, that
// the normalized form (ToApp → FromApp, which fills defaults) is a
// fixed point of both the app round trip and the JSON round trip. The
// spec schema travels between processes and versions in cluster mode,
// so "decode(encode(x)) == x" must hold for everything we emit.
func FuzzAppSpecRoundTrip(f *testing.F) {
	seeds := []string{
		`{"graphs":[{"steps":4,"width":4,"type":"stencil_1d"}]}`,
		`{"graphs":[{"steps":10,"width":8,"type":"fft","kernel":"compute_bound","iterations":64}],"workers":4}`,
		`{"graphs":[{"steps":3,"width":6,"type":"spread","radix":2,"period":5,"seed":9}],"validate":false}`,
		`{"graphs":[{"steps":2,"width":2,"type":"trivial","kernel":"busy_wait","wait_nanos":1000}],"nodes":2}`,
		`{"graphs":[{"steps":5,"width":3,"type":"random_nearest","radix":2,"fraction":0.5},` +
			`{"steps":5,"width":4,"type":"dom","kernel":"memory_bound","iterations":8,"span_bytes":256,"scratch_bytes":4096}]}`,
		`{"graphs":[]}`,
		`{"graphs":[{"steps":-1,"width":4,"type":"stencil_1d"}]}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		for _, g := range spec.Graphs {
			// Bound the graph size so the fuzzer explores the schema,
			// not the allocator.
			if g.Steps > 1<<12 || g.Width > 1<<12 || g.Scratch > 1<<20 {
				return
			}
		}
		app, err := spec.ToApp()
		if err != nil {
			return // validly rejected configuration
		}
		norm := FromApp(app)

		// Normalization must be a fixed point: a second trip through
		// the app changes nothing.
		app2, err := norm.ToApp()
		if err != nil {
			t.Fatalf("normalized spec rejected: %v\nspec: %+v", err, norm)
		}
		if norm2 := FromApp(app2); !reflect.DeepEqual(norm, norm2) {
			t.Fatalf("normalization not a fixed point:\n first: %+v\nsecond: %+v", norm, norm2)
		}
		if app2.TotalTasks() != app.TotalTasks() || app2.TotalDependencies() != app.TotalDependencies() {
			t.Fatalf("round trip changed graph structure: %d/%d tasks, %d/%d deps",
				app.TotalTasks(), app2.TotalTasks(), app.TotalDependencies(), app2.TotalDependencies())
		}

		// And the JSON codec must preserve the normalized form exactly.
		var buf strings.Builder
		if err := Encode(&buf, norm); err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := Decode(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(norm, back) {
			t.Fatalf("JSON round trip changed spec:\n  out: %+v\n back: %+v", norm, back)
		}
	})
}
