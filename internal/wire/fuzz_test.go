package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzAppSpecRoundTrip checks, for any input the decoder accepts, that
// the normalized form (ToApp → FromApp, which fills defaults) is a
// fixed point of both the app round trip and the JSON round trip. The
// spec schema travels between processes and versions in cluster mode,
// so "decode(encode(x)) == x" must hold for everything we emit.
func FuzzAppSpecRoundTrip(f *testing.F) {
	seeds := []string{
		`{"graphs":[{"steps":4,"width":4,"type":"stencil_1d"}]}`,
		`{"graphs":[{"steps":10,"width":8,"type":"fft","kernel":"compute_bound","iterations":64}],"workers":4}`,
		`{"graphs":[{"steps":3,"width":6,"type":"spread","radix":2,"period":5,"seed":9}],"validate":false}`,
		`{"graphs":[{"steps":2,"width":2,"type":"trivial","kernel":"busy_wait","wait_nanos":1000}],"nodes":2}`,
		`{"graphs":[{"steps":5,"width":3,"type":"random_nearest","radix":2,"fraction":0.5},` +
			`{"steps":5,"width":4,"type":"dom","kernel":"memory_bound","iterations":8,"span_bytes":256,"scratch_bytes":4096}]}`,
		`{"graphs":[]}`,
		`{"graphs":[{"steps":-1,"width":4,"type":"stencil_1d"}]}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		for _, g := range spec.Graphs {
			// Bound the graph size so the fuzzer explores the schema,
			// not the allocator.
			if g.Steps > 1<<12 || g.Width > 1<<12 || g.Scratch > 1<<20 {
				return
			}
		}
		app, err := spec.ToApp()
		if err != nil {
			return // validly rejected configuration
		}
		norm := FromApp(app)

		// Normalization must be a fixed point: a second trip through
		// the app changes nothing.
		app2, err := norm.ToApp()
		if err != nil {
			t.Fatalf("normalized spec rejected: %v\nspec: %+v", err, norm)
		}
		if norm2 := FromApp(app2); !reflect.DeepEqual(norm, norm2) {
			t.Fatalf("normalization not a fixed point:\n first: %+v\nsecond: %+v", norm, norm2)
		}
		if app2.TotalTasks() != app.TotalTasks() || app2.TotalDependencies() != app.TotalDependencies() {
			t.Fatalf("round trip changed graph structure: %d/%d tasks, %d/%d deps",
				app.TotalTasks(), app2.TotalTasks(), app.TotalDependencies(), app2.TotalDependencies())
		}

		// And the JSON codec must preserve the normalized form exactly.
		var buf strings.Builder
		if err := Encode(&buf, norm); err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := Decode(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(norm, back) {
			t.Fatalf("JSON round trip changed spec:\n  out: %+v\n back: %+v", norm, back)
		}
	})
}

// FuzzMessageBinary drives the binary decoder with arbitrary bytes: it
// must never panic, and anything it accepts must re-encode to a frame
// that decodes back to the same message (decode∘encode fixed point).
func FuzzMessageBinary(f *testing.F) {
	for _, m := range binaryTestMessages() {
		frame, err := AppendMessageBinary(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		// Seed mutations the mutator finds slowly on its own: truncated
		// and bit-flipped variants of every message type.
		f.Add(frame[:len(frame)/2])
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)-1] ^= 0x80
		f.Add(flipped)
	}
	f.Add([]byte{BinMagic, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessageBinary(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		if hasNaN(m) {
			// The fixed 8-byte encoding preserves NaN bits exactly, but
			// reflect.DeepEqual cannot compare them (NaN != NaN).
			return
		}
		frame, err := AppendMessageBinary(nil, m)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v\n%+v", err, m)
		}
		back, err := DecodeMessageBinary(frame)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v\n%+v", err, m)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("binary round trip changed message:\n first %+v\n again %+v", m, back)
		}
	})
}

// FuzzMessageCodecEquivalence pins the two codecs to each other: any
// message the JSON reader accepts travels through the binary framing
// unchanged. The negotiation upgrades live conversations from JSON to
// binary, so a field the formats disagree on would corrupt exactly the
// messages that cross the switch.
func FuzzMessageCodecEquivalence(f *testing.F) {
	for _, m := range binaryTestMessages() {
		j, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(j)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if bytes.ContainsAny(data, "\n\r") {
			return // one frame per line by construction
		}
		line := append(append([]byte(nil), data...), '\n')
		m, err := ReadMessageFrom(bufio.NewReader(bytes.NewReader(line)))
		if err != nil {
			return // rejected input
		}
		if len(m.Proto)|len(m.Type)|len(m.Name)|len(m.Addr)|len(m.Err) > 1<<16 {
			return // bound string sizes: explore the schema, not the allocator
		}
		if _, known := msgCodes[m.Type]; !known || hasNaN(m) {
			// The lenient JSON reader accepts any nonempty type string;
			// binary only carries the seventeen protocol types (negotiation
			// happens between same-version peers, which never emit
			// others). NaN floats round-trip but defeat DeepEqual.
			return
		}
		var buf bytes.Buffer
		if err := WriteMessageBinary(&buf, m); err != nil {
			t.Fatalf("JSON-accepted message failed binary encode: %v\n%+v", err, m)
		}
		back, err := ReadMessageFrom(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("binary decode failed: %v\n%+v", err, m)
		}
		// Normalize the intentional differences: the writer stamps the
		// current version regardless of the input's claim, and binary
		// has no nil-vs-empty distinction for absent lists.
		m.V = ProtoVersion
		if len(m.Kernels) == 0 {
			m.Kernels = nil
		}
		if len(m.Addrs) == 0 {
			m.Addrs = nil
		}
		if m.Spec != nil && len(m.Spec.Graphs) == 0 {
			m.Spec.Graphs = nil
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("codecs disagree:\n json   %+v\n binary %+v", m, back)
		}
	})
}

// hasNaN reports whether any float field of the message is NaN — such
// messages round-trip bit-exactly but cannot be compared with
// reflect.DeepEqual.
func hasNaN(m Message) bool {
	for _, k := range m.Kernels {
		if math.IsNaN(k.Imbalance) {
			return true
		}
	}
	if m.Spec != nil {
		for _, g := range m.Spec.Graphs {
			if math.IsNaN(g.Fraction) || math.IsNaN(g.Imbalance) {
				return true
			}
		}
	}
	return false
}
