package trace

import (
	"testing"
	"testing/quick"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/sim"
)

func TestProfileStencil(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 10, MaxWidth: 8, Dependence: core.Stencil1D})
	p := Profile(g)
	if p.Tasks != 80 || p.MaxWidth != 8 {
		t.Errorf("profile = %+v", p)
	}
	// Every timestep depends on the previous one, so the critical path
	// is the full height.
	if p.CriticalPathLength != 10 {
		t.Errorf("critical path = %d, want 10", p.CriticalPathLength)
	}
	// Interior tasks have 3 deps, edges 2: average in (2, 3).
	if p.AvgDegree <= 2 || p.AvgDegree >= 3 {
		t.Errorf("avg degree = %v", p.AvgDegree)
	}
	if p.BytesPerStep != int64(g.TotalDependencies())/9*int64(g.OutputBytes) {
		t.Errorf("bytes per step = %d", p.BytesPerStep)
	}
}

func TestProfileTrivial(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 10, MaxWidth: 4, Dependence: core.Trivial})
	p := Profile(g)
	// No dependencies at all: the critical path is a single task.
	if p.CriticalPathLength != 1 {
		t.Errorf("trivial critical path = %d, want 1", p.CriticalPathLength)
	}
	if p.Edges != 0 || p.AvgDegree != 0 || p.BytesPerStep != 0 {
		t.Errorf("trivial profile = %+v", p)
	}
}

func TestProfileTree(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 6, MaxWidth: 8, Dependence: core.Tree})
	p := Profile(g)
	// The tree chains every timestep: fan-out then butterfly.
	if p.CriticalPathLength != 6 {
		t.Errorf("tree critical path = %d, want 6", p.CriticalPathLength)
	}
	if p.MaxWidth != 8 {
		t.Errorf("tree max width = %d, want 8", p.MaxWidth)
	}
}

func TestAppBounds(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 10, MaxWidth: 8, Dependence: core.Stencil1D})
	app := core.NewApp(g)
	b := AppBounds(app, time.Millisecond, 8)
	if b.Work != 80*time.Millisecond {
		t.Errorf("work = %v", b.Work)
	}
	if b.Span != 10*time.Millisecond {
		t.Errorf("span = %v", b.Span)
	}
	if b.Lower != 10*time.Millisecond {
		t.Errorf("lower = %v (work/8 = 10ms = span)", b.Lower)
	}
	if b.MaxSpeedup != 8 {
		t.Errorf("max speedup = %v, want 8", b.MaxSpeedup)
	}
	// Two concurrent graphs double the work, not the span.
	g2 := core.MustNew(core.Params{GraphID: 1, Timesteps: 10, MaxWidth: 8, Dependence: core.Stencil1D})
	b2 := AppBounds(core.NewApp(g, g2), time.Millisecond, 8)
	if b2.Work != 2*b.Work || b2.Span != b.Span {
		t.Errorf("two-graph bounds = %+v", b2)
	}
}

// Property: the simulator never beats the scheduling lower bound.
func TestSimulatorRespectsBoundsProperty(t *testing.T) {
	deps := []core.DependenceType{core.Trivial, core.Stencil1D, core.Dom, core.Nearest, core.Spread}
	f := func(depRaw, widthRaw, stepsRaw uint8, profRaw uint8) bool {
		dep := deps[int(depRaw)%len(deps)]
		width := 8 + int(widthRaw)%24
		steps := 2 + int(stepsRaw)%8
		radix := 0
		if dep == core.Nearest || dep == core.Spread {
			radix = 3
		}
		iters := int64(4096)
		g, err := core.New(core.Params{
			Timesteps: steps, MaxWidth: width, Dependence: dep, Radix: radix,
			Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: iters},
		})
		if err != nil {
			return false
		}
		app := core.NewApp(g)

		profiles := sim.Profiles()
		p := profiles[int(profRaw)%len(profiles)]
		m := sim.Cori(1)
		st := sim.Simulate(app, m, p)

		// Per-task duration on the simulated machine (no overheads).
		perTask := time.Duration(float64(iters) * 128 / m.FlopsPerCore * float64(time.Second))
		b := AppBounds(app, perTask, m.TotalCores())
		// The simulated makespan includes overhead, so it must be at
		// least the pure lower bound (tiny slack for rounding).
		return st.Elapsed >= b.Lower-time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
