// Package trace analyzes task graph structure and execution: critical
// paths, parallelism profiles, and lower bounds on makespan. The
// simulator's results are checked against these bounds (a simulated
// makespan below the critical path or below work ÷ cores would be a
// model bug), and the bounds tell users how much speedup a graph shape
// can possibly yield — context the paper's §4 discussion of weak and
// strong scaling limits assumes.
package trace

import (
	"time"

	"taskbench/internal/core"
)

// GraphProfile summarizes the structure of one task graph.
type GraphProfile struct {
	// Tasks is the total task count.
	Tasks int64
	// Edges is the total dependence edge count.
	Edges int64
	// CriticalPathLength is the number of tasks on the longest
	// dependence chain (every task counts 1).
	CriticalPathLength int
	// MaxWidth is the widest timestep (available parallelism).
	MaxWidth int
	// AvgDegree is the mean number of dependencies per task over
	// non-first timesteps.
	AvgDegree float64
	// BytesPerStep is the payload volume crossing one timestep
	// boundary in steady state (last boundary of the graph).
	BytesPerStep int64
}

// Profile computes the structural profile of a graph.
func Profile(g *core.Graph) GraphProfile {
	p := GraphProfile{
		Tasks: g.TotalTasks(),
		Edges: g.TotalDependencies(),
	}
	// Critical path: longest chain over unit-weight tasks. depth[i] is
	// the longest chain ending at (t, i).
	depth := make([]int, g.MaxWidth)
	next := make([]int, g.MaxWidth)
	for t := 0; t < g.Timesteps; t++ {
		off := g.OffsetAtTimestep(t)
		w := g.WidthAtTimestep(t)
		if w > p.MaxWidth {
			p.MaxWidth = w
		}
		for i := off; i < off+w; i++ {
			best := 0
			// The compiled table keeps profiling allocation-free; the
			// old DependenciesForPoint path allocated an IntervalList
			// per task.
			it := g.PointDeps(t, i)
			for dep, ok := it.Next(); ok; dep, ok = it.Next() {
				if depth[dep] > best {
					best = depth[dep]
				}
			}
			next[i] = best + 1
			if next[i] > p.CriticalPathLength {
				p.CriticalPathLength = next[i]
			}
		}
		copy(depth, next)
	}
	if denom := p.Tasks - int64(g.WidthAtTimestep(0)); denom > 0 {
		p.AvgDegree = float64(p.Edges) / float64(denom)
	}
	if g.Timesteps > 1 {
		t := g.Timesteps - 1
		off := g.OffsetAtTimestep(t)
		w := g.WidthAtTimestep(t)
		for i := off; i < off+w; i++ {
			it := g.PointDeps(t, i)
			p.BytesPerStep += int64(it.Count()) * int64(g.OutputBytes)
		}
	}
	return p
}

// Bounds are the classic scheduling lower bounds for an app on a
// machine with the given worker count, assuming a fixed per-task
// duration.
type Bounds struct {
	// Work is the serial execution time of all tasks.
	Work time.Duration
	// Span is the critical-path execution time (infinite workers).
	Span time.Duration
	// Lower is max(Work/workers, Span): no schedule can beat it.
	Lower time.Duration
	// MaxSpeedup is Work ÷ Span, the graph's parallelism.
	MaxSpeedup float64
}

// AppBounds computes work/span bounds for an app where every task
// takes perTask. Concurrent graphs add work but not span.
func AppBounds(app *core.App, perTask time.Duration, workers int) Bounds {
	var b Bounds
	longest := 0
	for _, g := range app.Graphs {
		p := Profile(g)
		b.Work += time.Duration(p.Tasks) * perTask
		if p.CriticalPathLength > longest {
			longest = p.CriticalPathLength
		}
	}
	b.Span = time.Duration(longest) * perTask
	if workers < 1 {
		workers = 1
	}
	even := b.Work / time.Duration(workers)
	b.Lower = max(even, b.Span)
	if b.Span > 0 {
		b.MaxSpeedup = float64(b.Work) / float64(b.Span)
	}
	return b
}
