package harness

import (
	"fmt"
	"strings"

	"taskbench/internal/core"
	"taskbench/internal/runtime"
	"taskbench/internal/sim"
)

// Markdown renders rows as a markdown table with the given header.
func Markdown(header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(header)) + "\n")
	for _, row := range rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Table1 renders the paper's Table 1: the Task Bench parameter space
// as implemented by this library's CLI.
func Table1() string {
	rows := [][]string{
		{"-steps", "height of graph", "number of timesteps"},
		{"-width", "width of graph", "degree of parallelism"},
		{"-type", "trivial, stencil_1d, ...", "dependence relation"},
		{"-radix", "count (nearest/spread/random)", "dependencies per task"},
		{"-period", "count", "dependence sets cycled through"},
		{"-fraction", "probability", "random_nearest edge density"},
		{"-kernel", "compute_bound, memory_bound, ...", "type of kernel"},
		{"-iter", "count", "task duration / problem size"},
		{"-span", "bytes (memory kernel)", "bytes used per task per iteration"},
		{"-scratch", "bytes", "total working set size per column"},
		{"-imbalance", "factor in [0,1]", "degree of load imbalance"},
		{"-persistent", "—", "imbalance is per-column, not per-task (extension)"},
		{"-output", "bytes per dependency", "degree of communication"},
		{"-and", "—", "start another concurrent task graph"},
	}
	return Markdown([]string{"Parameter", "Values", "Purpose"}, rows)
}

// Table2 renders the paper's Table 2: the dependence relations,
// evaluated from the implementation itself on a width-16 graph so the
// table can never drift from the code.
func Table2() string {
	width := 16
	point := 8
	var rows [][]string
	for _, dep := range core.DependenceTypes() {
		p := core.Params{Timesteps: 8, MaxWidth: width, Dependence: dep}
		if dep == core.Nearest || dep == core.Spread || dep == core.RandomNearest {
			p.Radix = 3
		}
		g := core.MustNew(p)
		var cells []string
		for _, ts := range []int{1, 2, 3} {
			deps := g.DependenciesForPoint(ts, point)
			cells = append(cells, fmt.Sprintf("%v", deps.Points()))
		}
		rows = append(rows, []string{dep.String(), cells[0], cells[1], cells[2]})
	}
	return Markdown([]string{"Pattern", "D(1, 8)", "D(2, 8)", "D(3, 8)"}, rows)
}

// Table3 renders the analog of the paper's Table 3: the runtime
// backends implemented in this repository, from live registry
// metadata.
func Table3() string {
	var rows [][]string
	for _, name := range runtime.Names() {
		rt, err := runtime.New(name)
		if err != nil {
			continue
		}
		info := rt.Info()
		rows = append(rows, []string{
			info.Name, info.Analog, info.Paradigm, info.Parallelism,
			yesNo(info.Distributed), yesNo(info.Async),
		})
	}
	return Markdown([]string{"Backend", "Models", "Paradigm", "Parallelism", "Distrib.", "Async"}, rows)
}

// Table4 renders the analog of the paper's Table 4: the simulator's
// per-system overhead profiles (our equivalent of version/flag
// configuration notes).
func Table4() string {
	var rows [][]string
	for _, p := range sim.Profiles() {
		rows = append(rows, []string{
			p.Name,
			p.TaskOverhead.String(),
			p.DepOverhead.String(),
			p.MsgOverhead.String(),
			p.CentralGrant.String(),
			fmt.Sprintf("%d", p.DedicatedCores),
			yesNo(p.Async),
			yesNo(p.WorkStealing),
		})
	}
	return Markdown([]string{"Profile", "Task ovh", "Dep ovh", "Msg ovh",
		"Central grant", "Dedicated cores", "Async", "Stealing"}, rows)
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
