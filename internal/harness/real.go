package harness

import (
	"fmt"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/metg"
	"taskbench/internal/runtime"
	"taskbench/internal/stats"
)

// RealConfig shapes the real-execution sweeps (Figures 2, 3, 6, 7, 8
// measured on this host's goroutine backends rather than the
// simulator). Defaults keep a full sweep under a minute on one core.
type RealConfig struct {
	// Backends to measure; nil means every registered backend.
	Backends []string
	// Steps and Width shape the graph; Width 0 means one column per
	// available worker.
	Steps, Width int
	// MaxIters is the top of the problem-size sweep.
	MaxIters int64
	// PerDoubling is the sweep resolution.
	PerDoubling int
}

// DefaultRealConfig returns the standard host-scale configuration.
func DefaultRealConfig() RealConfig {
	return RealConfig{Steps: 30, Width: 4, MaxIters: 1 << 15, PerDoubling: 1}
}

func (c RealConfig) backends() []string {
	if c.Backends != nil {
		return c.Backends
	}
	return runtime.Names()
}

// realRunner adapts a backend to the METG sweep for the stencil
// workload of Figures 2/3/6/7. Engine-backed backends reuse one
// Session — the plan is built once per configuration and Reset per
// point — so the sweep measures scheduling, not DAG reconstruction.
func realRunner(name string, cfg RealConfig) (metg.Runner, func(), error) {
	rt, err := runtime.New(name)
	if err != nil {
		return nil, nil, err
	}
	sweep, done := metg.BackendSweep(rt, func(iterations int64) *core.Graph {
		return core.MustNew(core.Params{
			Timesteps:  cfg.Steps,
			MaxWidth:   cfg.Width,
			Dependence: core.Stencil1D,
			Kernel:     kernels.Config{Type: kernels.ComputeBound, Iterations: iterations},
		})
	})
	return func(iterations int64) core.RunStats {
		st, err := sweep(iterations)
		if err != nil {
			panic(fmt.Sprintf("harness: %s failed: %v", name, err))
		}
		return st
	}, done, nil
}

// Fig6FlopsVsProblemSize measures Figure 6 (of which Figure 2 is the
// MPI-only subset) on the real backends: achieved FLOP/s against
// problem size for the stencil pattern on this host.
func Fig6FlopsVsProblemSize(cfg RealConfig) (*Figure, error) {
	fig := &Figure{
		ID: "fig6", Title: "FLOP/s vs problem size (stencil, real backends)",
		XLabel: "iterations per task", YLabel: "GFLOP/s", LogX: true,
	}
	iters := stats.GeomIters(cfg.MaxIters, 1, cfg.PerDoubling)
	for _, name := range cfg.backends() {
		run, done, err := realRunner(name, cfg)
		if err != nil {
			return nil, err
		}
		s := Series{Label: name}
		for _, it := range iters {
			st := run(it)
			s.X = append(s.X, float64(it))
			s.Y = append(s.Y, st.FlopsPerSecond()/1e9)
		}
		done()
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig7EfficiencyCurve measures Figure 7 (Figure 3 is the MPI subset):
// the same sweep replotted as efficiency vs task granularity against
// the host's calibrated peak.
func Fig7EfficiencyCurve(cfg RealConfig) (*Figure, error) {
	fig := &Figure{
		ID: "fig7", Title: "efficiency vs task granularity (stencil, real backends)",
		XLabel: "task granularity (ms)", YLabel: "efficiency", LogX: true,
	}
	cal := kernels.Calibrate()
	iters := stats.GeomIters(cfg.MaxIters, 1, cfg.PerDoubling)
	for _, name := range cfg.backends() {
		run, done, err := realRunner(name, cfg)
		if err != nil {
			return nil, err
		}
		var workers int
		points := metg.Curve(func(it int64) core.RunStats {
			st := run(it)
			workers = st.Workers
			return st
		}, iters, 0, 0) // efficiency filled below with per-run peaks
		done()
		s := Series{Label: name}
		for _, pt := range points {
			if pt.Granularity <= 0 {
				continue
			}
			peak := cal.FlopsPerSecondPerCore * float64(workers)
			s.X = append(s.X, pt.Granularity.Seconds()*1e3)
			s.Y = append(s.Y, pt.Stats.FlopsPerSecond()/peak)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8MemoryBandwidth measures Figure 8: achieved B/s against problem
// size with the memory-bound kernel at a constant working set.
func Fig8MemoryBandwidth(cfg RealConfig) (*Figure, error) {
	fig := &Figure{
		ID: "fig8", Title: "B/s vs problem size (memory kernel, real backends)",
		XLabel: "iterations per task", YLabel: "GB/s", LogX: true,
	}
	iters := stats.GeomIters(min64(cfg.MaxIters, 1<<10), 1, cfg.PerDoubling)
	mkGraph := func(it int64) *core.Graph {
		return core.MustNew(core.Params{
			Timesteps:  cfg.Steps,
			MaxWidth:   cfg.Width,
			Dependence: core.Stencil1D,
			Kernel: kernels.Config{
				Type: kernels.MemoryBound, Iterations: it, SpanBytes: 1 << 14,
			},
			ScratchBytes: 4 << 20, // constant per-column working set
		})
	}
	for _, name := range cfg.backends() {
		rt, err := runtime.New(name)
		if err != nil {
			return nil, err
		}
		// Engine-backed backends amortize one plan (and its 4 MiB
		// per-column scratch allocations) across the whole sweep.
		run, done := metg.BackendSweep(rt, mkGraph)
		s := Series{Label: name}
		for _, it := range iters {
			st, err := run(it)
			if err != nil {
				done()
				return nil, fmt.Errorf("harness: %s: %w", name, err)
			}
			s.X = append(s.X, float64(it))
			s.Y = append(s.Y, st.BytesPerSecond()/1e9)
		}
		done()
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// RealMETGRow is one backend's measured METG on this host. Kind
// distinguishes a true threshold crossing from the upper bound
// reported when the backend's curve never dips below the threshold.
type RealMETGRow struct {
	Backend string
	METG    time.Duration
	Kind    metg.Kind
}

// RealMETG measures METG(50%) for each backend on this host with the
// stencil workload — the host-scale analog of one point of Figure 9a.
func RealMETG(cfg RealConfig) ([]RealMETGRow, error) {
	cal := kernels.Calibrate()
	var rows []RealMETGRow
	for _, name := range cfg.backends() {
		run, done, err := realRunner(name, cfg)
		if err != nil {
			return nil, err
		}
		// Peak must use the worker count the backend actually uses.
		probe := run(1)
		peak := cal.FlopsPerSecondPerCore * float64(probe.Workers)
		m, _, kind := metg.Search(run, cfg.MaxIters, peak, 0, 0.5, cfg.PerDoubling)
		done()
		rows = append(rows, RealMETGRow{Backend: name, METG: m, Kind: kind})
	}
	return rows, nil
}

// RealMETGTable renders RealMETG results as markdown, reporting
// measured crossings plainly and bound-only results as "≤ value".
func RealMETGTable(rows []RealMETGRow) string {
	var cells [][]string
	for _, r := range rows {
		var v string
		switch r.Kind {
		case metg.Measured:
			v = r.METG.Round(100 * time.Nanosecond).String()
		case metg.UpperBound:
			v = "≤ " + r.METG.Round(100*time.Nanosecond).String() + " (upper bound)"
		default:
			v = "above threshold not reached"
		}
		cells = append(cells, []string{r.Backend, v})
	}
	return Markdown([]string{"Backend", "METG(50%) on this host"}, cells)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
