// Package harness turns the library's measurements into the paper's
// tables and figures: it defines the experiment drivers for Figures
// 2–13 and Tables 1–4, and renders their results as CSV files, ASCII
// plots and markdown tables under a results directory.
package harness

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Series is one labelled line of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Figure is a complete plot: several series over shared axes.
type Figure struct {
	ID     string // e.g. "fig9a"
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
}

// WriteCSV writes the figure as a long-format CSV (series,x,y).
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel)); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Label), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// SaveCSV writes the figure's CSV into dir as <ID>.csv.
func (f *Figure) SaveCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	file, err := os.Create(filepath.Join(dir, f.ID+".csv"))
	if err != nil {
		return err
	}
	defer file.Close()
	return f.WriteCSV(file)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Render draws the figure as an ASCII scatter plot, one rune per
// series, with log axes where configured. It is deliberately simple:
// enough to eyeball shapes (who wins, where lines cross) in a
// terminal or in EXPERIMENTS.md.
func (f *Figure) Render(w io.Writer, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	tx := func(x float64) float64 {
		if f.LogX && x > 0 {
			return math.Log10(x)
		}
		return x
	}
	ty := func(y float64) float64 {
		if f.LogY && y > 0 {
			return math.Log10(y)
		}
		return y
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		fmt.Fprintf(w, "%s: (no data)\n", f.Title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("*o+x#@%&=~^!?:;abcdefgh")
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			c := int((x - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = mark
			}
		}
	}

	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "y: %s (%s)\n", f.YLabel, axisKind(f.LogY))
	for _, row := range grid {
		fmt.Fprintf(w, "| %s\n", string(row))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width+1))
	fmt.Fprintf(w, "x: %s (%s), [%.3g, %.3g]\n", f.XLabel, axisKind(f.LogX), untx(minX, f.LogX), untx(maxX, f.LogX))
	for si, s := range f.Series {
		fmt.Fprintf(w, "  %c %s\n", marks[si%len(marks)], s.Label)
	}
}

func axisKind(log bool) string {
	if log {
		return "log"
	}
	return "linear"
}

func untx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

// SortSeries orders the figure's series by label for stable output.
func (f *Figure) SortSeries() {
	sort.Slice(f.Series, func(i, j int) bool {
		return f.Series[i].Label < f.Series[j].Label
	})
}
