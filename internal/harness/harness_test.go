package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	_ "taskbench/internal/runtime/all"
)

// tinyScale keeps simulator experiments test-sized.
func tinyScale() Scale { return Scale{MaxNodes: 2, Steps: 6, PerDoubling: 1, CurvePoints: 6} }

func tinyReal() RealConfig {
	return RealConfig{
		Backends: []string{"serial", "p2p"},
		Steps:    6, Width: 2, MaxIters: 1 << 10, PerDoubling: 1,
	}
}

func TestTable1Parameters(t *testing.T) {
	tbl := Table1()
	for _, want := range []string{"-steps", "-width", "-type", "-kernel", "-output", "-imbalance", "-and"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestTable2DependenceRelations(t *testing.T) {
	tbl := Table2()
	for _, want := range []string{"trivial", "stencil_1d", "fft", "tree", "nearest", "spread"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
	// The stencil row must show the actual relation around point 8.
	if !strings.Contains(tbl, "[7 8 9]") {
		t.Error("Table2 stencil relation missing [7 8 9]")
	}
}

func TestTable3Systems(t *testing.T) {
	tbl := Table3()
	for _, want := range []string{"p2p", "MPI p2p", "actor", "Charm++", "central", "Spark", "graphexec", "TensorFlow"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestTable4Profiles(t *testing.T) {
	tbl := Table4()
	for _, want := range []string{"mpi p2p", "spark", "realm", "parsec dtd"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table4 missing %q", want)
		}
	}
}

func TestFigureCSVAndRender(t *testing.T) {
	fig := &Figure{
		ID: "test", Title: "test figure", XLabel: "x", YLabel: "y", LogX: true,
		Series: []Series{
			{Label: "a", X: []float64{1, 10, 100}, Y: []float64{3, 2, 1}},
			{Label: "b", X: []float64{1, 10, 100}, Y: []float64{1, 2, 3}},
		},
	}
	var csv strings.Builder
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "a,10,2") {
		t.Errorf("CSV missing row: %s", csv.String())
	}
	var plot strings.Builder
	fig.Render(&plot, 40, 10)
	out := plot.String()
	if !strings.Contains(out, "test figure") || !strings.Contains(out, "* a") {
		t.Errorf("render missing pieces:\n%s", out)
	}
	// Rendering an empty figure must not panic.
	empty := &Figure{ID: "e", Title: "empty"}
	var sb strings.Builder
	empty.Render(&sb, 40, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty render missing placeholder")
	}
}

func TestFigureSaveCSV(t *testing.T) {
	fig := &Figure{ID: "unit", Series: []Series{{Label: "s", X: []float64{1}, Y: []float64{2}}}}
	dir := t.TempDir()
	if err := fig.SaveCSV(dir); err != nil {
		t.Fatal(err)
	}
}

func TestFig4WeakScalingFlatAtLargeTasks(t *testing.T) {
	fig := Fig4WeakScaling(tinyScale())
	if len(fig.Series) == 0 {
		t.Fatal("no series")
	}
	// The largest problem size weak-scales: wall time roughly constant.
	big := fig.Series[len(fig.Series)-1]
	if len(big.Y) < 2 {
		t.Fatal("need at least two node counts")
	}
	if ratio := big.Y[len(big.Y)-1] / big.Y[0]; ratio > 1.5 {
		t.Errorf("large-task weak scaling degraded %.2fx", ratio)
	}
	// The smallest problem size does not: overhead dominates.
	small := fig.Series[0]
	if small.Y[len(small.Y)-1] <= 0 {
		t.Error("small problem wall time not positive")
	}
}

func TestFig5StrongScalingDecreasesAtLargeTasks(t *testing.T) {
	fig := Fig5StrongScaling(tinyScale())
	big := fig.Series[len(fig.Series)-1]
	if big.Y[len(big.Y)-1] >= big.Y[0] {
		t.Errorf("strong scaling did not reduce wall time: %v", big.Y)
	}
}

func TestFig9QuickShape(t *testing.T) {
	variants := Fig9Variants(tinyScale())
	if len(variants) != 4 {
		t.Fatalf("got %d variants, want 4", len(variants))
	}
	fig := Fig9METGvsNodes(variants[0], tinyScale())
	if len(fig.Series) < 15 {
		t.Fatalf("only %d series in fig9a", len(fig.Series))
	}
	// Find mpi p2p and spark; spark must sit far above mpi.
	var mpi, spark []float64
	for _, s := range fig.Series {
		switch s.Label {
		case "mpi p2p":
			mpi = s.Y
		case "spark":
			spark = s.Y
		}
	}
	if len(mpi) == 0 || len(spark) == 0 {
		t.Fatal("missing mpi/spark series")
	}
	if spark[0] < 1000*mpi[0] {
		t.Errorf("spark METG (%v ms) not ≫ mpi (%v ms)", spark[0], mpi[0])
	}
}

func TestFig10DepsMonotoneForMPI(t *testing.T) {
	fig := Fig10METGvsDeps(tinyScale())
	for _, s := range fig.Series {
		if s.Label != "mpi p2p" {
			continue
		}
		if len(s.Y) < 10 {
			t.Fatalf("mpi series has %d points, want 10", len(s.Y))
		}
		if s.Y[9] <= s.Y[0] {
			t.Errorf("METG at 9 deps (%v) not above 0 deps (%v)", s.Y[9], s.Y[0])
		}
		return
	}
	t.Fatal("mpi p2p series missing")
}

func TestFig11Panel(t *testing.T) {
	fig := Fig11CommunicationHiding(4096, tinyScale(), "c")
	if fig.ID != "fig11c" || len(fig.Series) < 8 {
		t.Fatalf("unexpected fig11: %s with %d series", fig.ID, len(fig.Series))
	}
}

func TestFig12ImbalanceCapsBulkSync(t *testing.T) {
	fig := Fig12LoadImbalance(tinyScale())
	var bulk []float64
	for _, s := range fig.Series {
		if s.Label == "mpi bulk sync" {
			bulk = s.Y
		}
	}
	if len(bulk) == 0 {
		t.Fatal("mpi bulk sync series missing")
	}
	// Under uniform [0,1) imbalance the bulk-synchronous efficiency is
	// bounded well below 1 even at the largest granularity.
	maxEff := 0.0
	for _, y := range bulk {
		if y > maxEff {
			maxEff = y
		}
	}
	if maxEff > 0.8 {
		t.Errorf("bulk sync max efficiency %.3f under imbalance, want < 0.8", maxEff)
	}
}

func TestFig13Crossover(t *testing.T) {
	fig := Fig13GPU(tinyScale())
	if len(fig.Series) != 3 {
		t.Fatalf("fig13 series = %d, want 3", len(fig.Series))
	}
	cpu, w1, w4 := fig.Series[0], fig.Series[1], fig.Series[2]
	last := len(cpu.Y) - 1
	if w4.Y[0] <= cpu.Y[0] {
		t.Errorf("at large problems GPU w4 (%v) not above CPU (%v)", w4.Y[0], cpu.Y[0])
	}
	if w1.Y[last] >= cpu.Y[last] {
		t.Errorf("at small problems GPU w1 (%v) not below CPU (%v)", w1.Y[last], cpu.Y[last])
	}
}

func TestFig6And7Real(t *testing.T) {
	cfg := tinyReal()
	fig6, err := Fig6FlopsVsProblemSize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6.Series) != 2 {
		t.Fatalf("fig6 series = %d", len(fig6.Series))
	}
	for _, s := range fig6.Series {
		if s.Y[0] <= s.Y[len(s.Y)-1] {
			t.Logf("note: %s FLOPS not higher at large problems (noisy host?)", s.Label)
		}
	}
	fig7, err := Fig7EfficiencyCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Series) != 2 {
		t.Fatalf("fig7 series = %d", len(fig7.Series))
	}
}

func TestFig8Real(t *testing.T) {
	fig, err := Fig8MemoryBandwidth(tinyReal())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Y) == 0 {
		t.Fatalf("fig8 malformed: %+v", fig)
	}
}

func TestRealMETG(t *testing.T) {
	rows, err := RealMETG(tinyReal())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tbl := RealMETGTable(rows)
	if !strings.Contains(tbl, "serial") || !strings.Contains(tbl, "p2p") {
		t.Errorf("table missing backends:\n%s", tbl)
	}
}

func TestMarkdown(t *testing.T) {
	md := Markdown([]string{"A", "B"}, [][]string{{"1", "2"}})
	if !strings.Contains(md, "| A | B |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown malformed:\n%s", md)
	}
}

func TestWriteReport(t *testing.T) {
	dir := t.TempDir()
	fig := &Figure{ID: "fig99", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s", X: []float64{1, 2}, Y: []float64{2, 1}}}}
	if err := fig.SaveCSV(dir); err != nil {
		t.Fatal(err)
	}
	txt, err := os.Create(filepath.Join(dir, "fig99.txt"))
	if err != nil {
		t.Fatal(err)
	}
	fig.Render(txt, 30, 8)
	txt.Close()
	if err := os.WriteFile(filepath.Join(dir, "table1.md"), []byte(Table1()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(dir); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(filepath.Join(dir, "REPORT.md"))
	if err != nil {
		t.Fatal(err)
	}
	report := string(body)
	for _, want := range []string{"## table1", "## fig99", "fig99.csv", "-steps"} {
		if !strings.Contains(report, want) {
			t.Errorf("REPORT.md missing %q", want)
		}
	}
}

func TestSortFigures(t *testing.T) {
	names := []string{"fig11a.txt", "fig4.txt", "fig9d.txt", "fig10.txt", "fig9a.txt"}
	sortFigures(names)
	want := []string{"fig4.txt", "fig9a.txt", "fig9d.txt", "fig10.txt", "fig11a.txt"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sortFigures = %v, want %v", names, want)
		}
	}
}

func TestFig12PersistentWidensGap(t *testing.T) {
	fig := Fig12Persistent(tinyScale())
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Label] = s.Y
	}
	maxOf := func(ys []float64) float64 {
		m := 0.0
		for _, y := range ys {
			if y > m {
				m = y
			}
		}
		return m
	}
	pinned := maxOf(series["charm++"])
	stealing := maxOf(series["chapel distrib"])
	if stealing <= pinned {
		t.Errorf("persistent imbalance: stealing max eff %.3f not above pinned %.3f",
			stealing, pinned)
	}
}
