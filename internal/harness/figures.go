package harness

import (
	"strconv"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/metg"
	"taskbench/internal/sim"
	"taskbench/internal/stats"
)

// Scale bounds the cost of the simulator-driven experiments. Quick
// keeps everything test-sized; Full reproduces the paper's axes (256
// nodes).
type Scale struct {
	// MaxNodes bounds the node-count sweeps (paper: 256).
	MaxNodes int
	// Steps is the task-graph height used in METG workloads.
	Steps int
	// PerDoubling is the METG sweep resolution (points per 2×).
	PerDoubling int
	// CurvePoints is the resolution of efficiency-curve figures.
	CurvePoints int
}

// Quick is the configuration used by tests and the default CLI run.
func Quick() Scale { return Scale{MaxNodes: 16, Steps: 12, PerDoubling: 1, CurvePoints: 10} }

// Full reproduces the paper's axes. Sim time is minutes, not hours.
func Full() Scale { return Scale{MaxNodes: 256, Steps: 16, PerDoubling: 2, CurvePoints: 16} }

// nodeCounts returns 1, 2, 4, ... up to the scale's bound.
func (s Scale) nodeCounts() []int {
	var out []int
	for n := 1; n <= s.MaxNodes; n *= 2 {
		out = append(out, n)
	}
	return out
}

// startIters is the top of every problem-size sweep: big enough that
// even Spark-class systems reach their efficiency plateau.
const startIters = int64(1) << 31

// searchMETG runs the paper's METG procedure on the simulator.
func searchMETG(w sim.Workload, m sim.Machine, p sim.Profile, scale Scale) (time.Duration, bool) {
	run := metg.Runner(w.Runner(m, p))
	v, _, kind := metg.Search(run, startIters, m.PeakFlops(), 0, 0.5, scale.PerDoubling)
	return v, kind.Reached()
}

// Fig4WeakScaling reproduces Figure 4: MPI wall time vs node count
// when the problem size per node is held constant (stencil pattern).
// One series per per-task iteration count.
func Fig4WeakScaling(scale Scale) *Figure {
	p, _ := sim.ProfileByName("mpi p2p")
	fig := &Figure{
		ID: "fig4", Title: "MPI weak scaling (stencil)",
		XLabel: "nodes", YLabel: "wall time (s)", LogX: true, LogY: true,
	}
	for _, iters := range []int64{1 << 4, 1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		s := Series{Label: itersLabel(iters)}
		for _, nodes := range scale.nodeCounts() {
			m := sim.Cori(nodes)
			w := sim.Workload{Dependence: core.Stencil1D, Steps: 100, WidthPerNode: 32}
			st := sim.Simulate(w.App(nodes, iters), m, p)
			s.X = append(s.X, float64(nodes))
			s.Y = append(s.Y, st.Elapsed.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig5StrongScaling reproduces Figure 5: MPI wall time vs node count
// with the TOTAL problem size held constant.
func Fig5StrongScaling(scale Scale) *Figure {
	p, _ := sim.ProfileByName("mpi p2p")
	fig := &Figure{
		ID: "fig5", Title: "MPI strong scaling (stencil)",
		XLabel: "nodes", YLabel: "wall time (s)", LogX: true, LogY: true,
	}
	for _, baseIters := range []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26} {
		s := Series{Label: itersLabel(baseIters)}
		for _, nodes := range scale.nodeCounts() {
			m := sim.Cori(nodes)
			w := sim.Workload{Dependence: core.Stencil1D, Steps: 100, WidthPerNode: 32}
			iters := baseIters / int64(nodes)
			if iters < 1 {
				iters = 1
			}
			st := sim.Simulate(w.App(nodes, iters), m, p)
			s.X = append(s.X, float64(nodes))
			s.Y = append(s.Y, st.Elapsed.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig9Variant selects one of Figure 9's four dependence scenarios.
type Fig9Variant struct {
	Suffix string
	Title  string
	W      sim.Workload
}

// Fig9Variants returns the four panels of Figure 9.
func Fig9Variants(scale Scale) []Fig9Variant {
	return []Fig9Variant{
		{"a", "stencil", sim.Workload{Dependence: core.Stencil1D, Steps: scale.Steps, WidthPerNode: 32}},
		{"b", "nearest, 5 deps", sim.Workload{Dependence: core.Nearest, Radix: 5, Steps: scale.Steps, WidthPerNode: 32}},
		{"c", "spread, 5 deps", sim.Workload{Dependence: core.Spread, Radix: 5, Steps: scale.Steps, WidthPerNode: 32}},
		{"d", "nearest, 5 deps, 4 graphs", sim.Workload{Dependence: core.Nearest, Radix: 5, Steps: scale.Steps, WidthPerNode: 32, Graphs: 4}},
	}
}

// Fig9METGvsNodes reproduces one panel of Figure 9: METG(50%) against
// node count for every system profile.
func Fig9METGvsNodes(v Fig9Variant, scale Scale) *Figure {
	fig := &Figure{
		ID: "fig9" + v.Suffix, Title: "METG vs nodes (" + v.Title + ")",
		XLabel: "nodes", YLabel: "METG (ms)", LogX: true, LogY: true,
	}
	for _, p := range sim.Profiles() {
		s := Series{Label: p.Name}
		for _, nodes := range scale.nodeCounts() {
			m := sim.Cori(nodes)
			if got, ok := searchMETG(v.W, m, p, scale); ok {
				s.X = append(s.X, float64(nodes))
				s.Y = append(s.Y, got.Seconds()*1e3)
			}
		}
		if len(s.X) > 0 {
			fig.Series = append(fig.Series, s)
		}
	}
	return fig
}

// Fig10METGvsDeps reproduces Figure 10: METG(50%) against the number
// of dependencies per task (nearest pattern, 1 node).
func Fig10METGvsDeps(scale Scale) *Figure {
	fig := &Figure{
		ID: "fig10", Title: "METG vs dependencies per task (nearest, 1 node)",
		XLabel: "dependencies per task", YLabel: "METG (ms)", LogY: true,
	}
	m := sim.Cori(1)
	for _, p := range sim.Profiles() {
		s := Series{Label: p.Name}
		for radix := 0; radix <= 9; radix++ {
			w := sim.Workload{Dependence: core.Nearest, Radix: radix, Steps: scale.Steps, WidthPerNode: 32}
			if got, ok := searchMETG(w, m, p, scale); ok {
				s.X = append(s.X, float64(radix))
				s.Y = append(s.Y, got.Seconds()*1e3)
			}
		}
		if len(s.X) > 0 {
			fig.Series = append(fig.Series, s)
		}
	}
	return fig
}

// fig11Profiles is the subset of systems the paper plots in Figures
// 11 and 12.
var fig11Profiles = []string{
	"chapel", "charm++", "mpi bulk sync", "mpi p2p", "mpi+openmp",
	"parsec dtd", "parsec ptg", "parsec shard", "realm", "starpu",
}

// Fig11CommunicationHiding reproduces one panel of Figure 11:
// efficiency vs task granularity at a given payload size (spread
// pattern, 5 deps, 4 graphs, 64 nodes in the paper; the node count is
// capped by the scale).
func Fig11CommunicationHiding(bytes int, scale Scale, panel string) *Figure {
	nodes := min(64, scale.MaxNodes)
	m := sim.Cori(nodes)
	fig := &Figure{
		ID: "fig11" + panel, Title: "efficiency vs granularity, " + byteLabel(bytes) + " per dependency",
		XLabel: "task granularity (ms)", YLabel: "efficiency", LogX: true,
	}
	w := sim.Workload{Dependence: core.Spread, Radix: 5, Steps: scale.Steps,
		WidthPerNode: 32, Graphs: 4, OutputBytes: bytes}
	iterSweep := stats.GeomIters(startIters, 64, scale.PerDoubling)
	for _, name := range fig11Profiles {
		p, err := sim.ProfileByName(name)
		if err != nil {
			continue
		}
		points := metg.Curve(metg.Runner(w.Runner(m, p)), iterSweep, m.PeakFlops(), 0)
		s := Series{Label: name}
		for _, pt := range points {
			if pt.Granularity <= 0 {
				continue
			}
			s.X = append(s.X, pt.Granularity.Seconds()*1e3)
			s.Y = append(s.Y, pt.Efficiency)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig12LoadImbalance reproduces Figure 12: efficiency vs task
// granularity under uniform [0,1) load imbalance (nearest pattern,
// 5 deps, 4 graphs, 1 node).
func Fig12LoadImbalance(scale Scale) *Figure {
	m := sim.Cori(1)
	fig := &Figure{
		ID: "fig12", Title: "efficiency vs granularity under load imbalance",
		XLabel: "task granularity (ms)", YLabel: "efficiency", LogX: true,
	}
	w := sim.Workload{Dependence: core.Nearest, Radix: 5, Steps: scale.Steps,
		WidthPerNode: 32, Graphs: 4, Imbalance: 1.0, Seed: 2020}
	iterSweep := stats.GeomIters(startIters, 16, scale.PerDoubling)
	profiles := append([]string{"chapel distrib", "dask", "ompss", "openmp task", "x10"}, fig11Profiles...)
	for _, name := range profiles {
		p, err := sim.ProfileByName(name)
		if err != nil {
			continue
		}
		points := metg.Curve(metg.Runner(w.Runner(m, p)), iterSweep, m.PeakFlops(), 0)
		s := Series{Label: name}
		for _, pt := range points {
			if pt.Granularity <= 0 {
				continue
			}
			s.X = append(s.X, pt.Granularity.Seconds()*1e3)
			s.Y = append(s.Y, pt.Efficiency)
		}
		fig.Series = append(fig.Series, s)
	}
	fig.SortSeries()
	return fig
}

// Fig12Persistent is this repository's extension of Figure 12 to
// PERSISTENT load imbalance, the case the paper defers to future work
// (§5.7): each column's speed is fixed for the whole run. Pinned
// executions (sync and async alike) are now bound by the slowest
// column, so only work redistribution helps — the gap between the
// stealing and non-stealing lines widens compared to Figure 12.
func Fig12Persistent(scale Scale) *Figure {
	m := sim.Cori(1)
	fig := &Figure{
		ID: "fig12p", Title: "efficiency vs granularity under PERSISTENT load imbalance (extension)",
		XLabel: "task granularity (ms)", YLabel: "efficiency", LogX: true,
	}
	w := sim.Workload{Dependence: core.Nearest, Radix: 5, Steps: scale.Steps,
		WidthPerNode: 32, Graphs: 4, Imbalance: 1.0, Persistent: true, Seed: 2020}
	iterSweep := stats.GeomIters(startIters, 16, scale.PerDoubling)
	for _, name := range []string{"mpi bulk sync", "charm++", "chapel distrib", "realm"} {
		p, err := sim.ProfileByName(name)
		if err != nil {
			continue
		}
		points := metg.Curve(metg.Runner(w.Runner(m, p)), iterSweep, m.PeakFlops(), 0)
		s := Series{Label: name}
		for _, pt := range points {
			if pt.Granularity <= 0 {
				continue
			}
			s.X = append(s.X, pt.Granularity.Seconds()*1e3)
			s.Y = append(s.Y, pt.Efficiency)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig13GPU reproduces Figure 13: FLOP/s vs normalized problem size
// for CPU-only MPI and the MPI+CUDA offload model at w1 and w4.
func Fig13GPU(scale Scale) *Figure {
	cfg := sim.GPUConfig{Machine: sim.PizDaint(1), Steps: 100, Width: 12, CopyBytesPerTask: 1 << 16}
	fig := &Figure{
		ID: "fig13", Title: "GPU FLOP/s vs normalized problem size (stencil, 1 node)",
		XLabel: "iterations per task", YLabel: "TFLOP/s", LogX: true,
	}
	iters := stats.GeomIters(1<<27, 1<<4, scale.PerDoubling)
	cpu := Series{Label: "MPI (CPU)"}
	w1 := Series{Label: "MPI+CUDA w1"}
	w4 := Series{Label: "MPI+CUDA w4"}
	for _, it := range iters {
		cpuR := sim.SimulateGPUCPUBaseline(cfg, it)
		cpu.X = append(cpu.X, float64(it))
		cpu.Y = append(cpu.Y, cpuR.FlopsPerSecond()/1e12)

		c1 := cfg
		c1.RanksPerGPU = 1
		r1 := sim.SimulateGPU(c1, it)
		w1.X = append(w1.X, float64(it))
		w1.Y = append(w1.Y, r1.FlopsPerSecond()/1e12)

		c4 := cfg
		c4.RanksPerGPU = 4
		r4 := sim.SimulateGPU(c4, it)
		w4.X = append(w4.X, float64(it))
		w4.Y = append(w4.Y, r4.FlopsPerSecond()/1e12)
	}
	fig.Series = []Series{cpu, w1, w4}
	return fig
}

func itersLabel(iters int64) string {
	return "iters=" + formatPow2(iters)
}

func formatPow2(v int64) string {
	for p := 0; p < 63; p++ {
		if int64(1)<<p == v {
			return "2^" + strconv.Itoa(p)
		}
	}
	return strconv.FormatInt(v, 10)
}

func byteLabel(b int) string {
	switch {
	case b >= 1<<20:
		return strconv.Itoa(b>>20) + " MiB"
	case b >= 1<<10:
		return strconv.Itoa(b>>10) + " KiB"
	default:
		return strconv.Itoa(b) + " B"
	}
}
