// Package stats provides the small numeric helpers used by the METG
// harness and the figure generators: summary statistics, geometric
// spacing for problem-size sweeps, and log-space interpolation.
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum of xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeomSpace returns n values geometrically spaced from lo to hi
// inclusive. lo and hi must be positive and n >= 2.
func GeomSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := 0; i < n; i++ {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// GeomIters returns descending iteration counts from hi down to lo
// with the given number of points per factor of two. Duplicates are
// removed; the list always contains hi and lo.
func GeomIters(hi, lo int64, perDoubling int) []int64 {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	if perDoubling < 1 {
		perDoubling = 1
	}
	ratio := math.Pow(2, 1/float64(perDoubling))
	var out []int64
	v := float64(hi)
	last := int64(-1)
	for v >= float64(lo) {
		n := int64(math.Round(v))
		if n != last {
			out = append(out, n)
			last = n
		}
		v /= ratio
	}
	if last != lo {
		out = append(out, lo)
	}
	return out
}

// InterpLogX linearly interpolates y over log(x): given two points
// (x0, y0) and (x1, y1), it returns the x at which y crosses yt.
func InterpLogX(x0, y0, x1, y1, yt float64) float64 {
	if y1 == y0 {
		return x1
	}
	l0, l1 := math.Log(x0), math.Log(x1)
	f := (yt - y0) / (y1 - y0)
	return math.Exp(l0 + f*(l1-l0))
}
