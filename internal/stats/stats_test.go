package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ≈ 2.138", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/singleton edge cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestGeomSpace(t *testing.T) {
	got := GeomSpace(1, 16, 5)
	want := []float64{1, 2, 4, 8, 16}
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("GeomSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := GeomSpace(5, 100, 1); got[0] != 5 {
		t.Errorf("n<2 = %v", got)
	}
}

func TestGeomItersDescendingCoversRange(t *testing.T) {
	f := func(hiRaw uint16, perRaw uint8) bool {
		hi := int64(hiRaw) + 1
		per := 1 + int(perRaw)%4
		iters := GeomIters(hi, 1, per)
		if len(iters) == 0 || iters[0] != hi || iters[len(iters)-1] != 1 {
			return false
		}
		for k := 1; k < len(iters); k++ {
			if iters[k] >= iters[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeomItersClamping(t *testing.T) {
	iters := GeomIters(0, 0, 0)
	if len(iters) == 0 || iters[0] != 1 {
		t.Errorf("degenerate GeomIters = %v", iters)
	}
}

func TestInterpLogX(t *testing.T) {
	// y goes 1.0 → 0.0 as x goes 100 → 1; crossing y=0.5 is at x=10
	// in log space.
	got := InterpLogX(100, 1.0, 1, 0.0, 0.5)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("InterpLogX = %v, want 10", got)
	}
	// Degenerate flat segment returns x1.
	if got := InterpLogX(100, 0.5, 1, 0.5, 0.5); got != 1 {
		t.Errorf("flat InterpLogX = %v, want 1", got)
	}
}
