// Package timeline is the streaming measurement side of the load
// generator: it buckets per-job outcomes and sampled coordinator
// gauges into fixed aggregation intervals of simulated time and emits
// one row per interval — submission/outcome counts, latency
// percentiles, and fleet utilization — as CSV (streamed row by row
// while the run is live) and JSON (one self-contained document with
// run totals, written at the end).
//
// All instants are simulated offsets from the run start (the pattern
// package's Clock maps wall time to them), so a timeline recorded at
// -time-scale 60 lines up with the 60×-longer scenario it simulates.
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Row is one aggregation interval of the run.
type Row struct {
	// Start is the interval's first simulated instant, as an offset
	// from the run start.
	Start time.Duration `json:"start_ns"`

	// Submission counts. Submitted counts every submission attempt
	// entering the wire (including resubmissions); Accepted and
	// Rejected split the coordinator's admission verdicts; Retried
	// counts client-side resubmissions of rejected jobs (back-off
	// pressure made visible).
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	Retried   int `json:"retried"`

	// Outcome counts, bucketed by completion instant. Completed is
	// success; Failed is a job-level error; Cancelled covers abandoned
	// jobs; GaveUp counts rejected jobs whose resubmission budget ran
	// out — load the fleet permanently shed.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	GaveUp    int `json:"gave_up"`

	// Latency percentiles over the jobs completing (successfully or
	// not) in the interval, in simulated milliseconds from submission
	// to done.
	P50Millis float64 `json:"latency_p50_ms"`
	P95Millis float64 `json:"latency_p95_ms"`
	P99Millis float64 `json:"latency_p99_ms"`

	// Fleet gauges, averaged over the coordinator-stats samples taken
	// in the interval: control-queue depth, jobs executing on the
	// fleet, live workers, and utilization — jobs running per
	// scheduler slot, 1.0 meaning every slot busy.
	AvgQueue    float64 `json:"avg_queue"`
	AvgRunning  float64 `json:"avg_running"`
	AvgWorkers  float64 `json:"avg_workers"`
	Utilization float64 `json:"utilization"`
}

// Totals aggregates the whole run, with percentiles over every
// completion.
type Totals struct {
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	Retried   int `json:"retried"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	GaveUp    int `json:"gave_up"`

	P50Millis float64 `json:"latency_p50_ms"`
	P95Millis float64 `json:"latency_p95_ms"`
	P99Millis float64 `json:"latency_p99_ms"`
}

// Timeline is the finished run: every interval row plus the totals,
// the JSON document loadgen writes.
type Timeline struct {
	Pattern   string        `json:"pattern,omitempty"`
	TimeScale float64       `json:"time_scale,omitempty"`
	Interval  time.Duration `json:"interval_ns"`
	Rows      []Row         `json:"rows"`
	Totals    Totals        `json:"totals"`
}

// bucket accumulates one interval before it is sealed into a Row.
type bucket struct {
	row       Row
	latencies []float64 // ms, jobs completing in this interval

	samples int // gauge samples averaged into the fleet columns
	queue   int
	running int
	workers int
	slotted float64 // Σ running/slots per sample
}

// Collector buckets events as they happen. All methods are safe for
// concurrent use — submissions, completions and the stats poller race
// by design. Events before offset zero clamp into the first bucket.
type Collector struct {
	interval time.Duration

	mu      sync.Mutex
	buckets map[int]*bucket
	flushed int       // buckets below this index have been sealed
	sealed  []Row     // rows already sealed by Advance, in order
	allLats []float64 // ms, every completion latency of the run
	sink    func(Row)
}

// New creates a collector with the given aggregation interval of
// simulated time (1s if not positive). sink, when non-nil, receives
// sealed rows in order as Advance and Finish flush them — the
// streaming CSV path.
func New(interval time.Duration, sink func(Row)) *Collector {
	if interval <= 0 {
		interval = time.Second
	}
	return &Collector{interval: interval, buckets: map[int]*bucket{}, sink: sink}
}

// Interval returns the aggregation interval.
func (c *Collector) Interval() time.Duration { return c.interval }

func (c *Collector) at(off time.Duration) *bucket {
	idx := 0
	if off > 0 {
		idx = int(off / c.interval)
	}
	if idx < c.flushed {
		// A straggler for an already-streamed interval: fold it into
		// the oldest open bucket rather than losing the event.
		idx = c.flushed
	}
	b := c.buckets[idx]
	if b == nil {
		b = &bucket{row: Row{Start: time.Duration(idx) * c.interval}}
		c.buckets[idx] = b
	}
	return b
}

// Submitted records one submission attempt hitting the wire.
func (c *Collector) Submitted(off time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(off).row.Submitted++
}

// Accepted records an admission verdict of accepted.
func (c *Collector) Accepted(off time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(off).row.Accepted++
}

// Rejected records an admission verdict of rejected (queue full,
// invalid spec).
func (c *Collector) Rejected(off time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(off).row.Rejected++
}

// Retried records a client-side resubmission of a rejected job.
func (c *Collector) Retried(off time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(off).row.Retried++
}

// Completed records a successful job finishing at off, latency
// measured from its submission in simulated time.
func (c *Collector) Completed(off, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.at(off)
	b.row.Completed++
	b.latencies = append(b.latencies, float64(latency)/float64(time.Millisecond))
}

// Failed records a job finishing with a job-level error.
func (c *Collector) Failed(off, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.at(off)
	b.row.Failed++
	b.latencies = append(b.latencies, float64(latency)/float64(time.Millisecond))
}

// Cancelled records a job abandoned before completion.
func (c *Collector) Cancelled(off time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(off).row.Cancelled++
}

// GaveUp records a rejected job dropped after exhausting its
// resubmission budget.
func (c *Collector) GaveUp(off time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(off).row.GaveUp++
}

// Sample records one coordinator-stats snapshot: control-queue depth,
// jobs running, live workers, and the scheduler slot count utilization
// is measured against.
func (c *Collector) Sample(off time.Duration, queue, running, workers, slots int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.at(off)
	b.samples++
	b.queue += queue
	b.running += running
	b.workers += workers
	if slots > 0 {
		b.slotted += float64(running) / float64(slots)
	}
}

// seal converts a bucket into its final row.
func seal(b *bucket) Row {
	row := b.row
	sort.Float64s(b.latencies)
	row.P50Millis = percentile(b.latencies, 50)
	row.P95Millis = percentile(b.latencies, 95)
	row.P99Millis = percentile(b.latencies, 99)
	if b.samples > 0 {
		n := float64(b.samples)
		row.AvgQueue = float64(b.queue) / n
		row.AvgRunning = float64(b.running) / n
		row.AvgWorkers = float64(b.workers) / n
		row.Utilization = b.slotted / n
	}
	return row
}

// percentile is the nearest-rank percentile of sorted (ms); 0 when
// empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// sealThrough seals every bucket with index < limit into c.sealed
// (gaps become all-zero rows, so the timeline is continuous) and
// returns the newly sealed rows. Callers hold c.mu.
func (c *Collector) sealThrough(limit int) []Row {
	var out []Row
	for c.flushed < limit {
		idx := c.flushed
		c.flushed++
		b := c.buckets[idx]
		if b == nil {
			b = &bucket{row: Row{Start: time.Duration(idx) * c.interval}}
		} else {
			delete(c.buckets, idx)
		}
		row := seal(b)
		c.allLats = append(c.allLats, b.latencies...)
		c.sealed = append(c.sealed, row)
		out = append(out, row)
	}
	return out
}

// Advance seals every interval that ended strictly before the
// simulated offset now and streams the sealed rows to the sink — the
// streaming path: call it as simulated time passes and completed rows
// flow out while the run is still live. Sealed intervals no longer
// accept events (stragglers fold into the oldest open bucket).
func (c *Collector) Advance(now time.Duration) {
	c.mu.Lock()
	out := c.sealThrough(int(now / c.interval))
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		for _, r := range out {
			sink(r)
		}
	}
}

// Finish seals everything and returns the completed timeline: every
// interval from the run start to the last event, gaps included as
// all-zero rows, plus run totals over the whole run (including rows
// already streamed by Advance). Remaining rows stream to the sink
// first. The collector must not be used after Finish.
func (c *Collector) Finish() Timeline {
	c.mu.Lock()
	last := c.flushed - 1
	for idx := range c.buckets {
		if idx > last {
			last = idx
		}
	}
	out := c.sealThrough(last + 1)
	tl := Timeline{Interval: c.interval, Rows: append([]Row{}, c.sealed...)}
	all := append([]float64(nil), c.allLats...)
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		for _, r := range out {
			sink(r)
		}
	}
	for _, row := range tl.Rows {
		tl.Totals.Submitted += row.Submitted
		tl.Totals.Accepted += row.Accepted
		tl.Totals.Rejected += row.Rejected
		tl.Totals.Retried += row.Retried
		tl.Totals.Completed += row.Completed
		tl.Totals.Failed += row.Failed
		tl.Totals.Cancelled += row.Cancelled
		tl.Totals.GaveUp += row.GaveUp
	}
	sort.Float64s(all)
	tl.Totals.P50Millis = percentile(all, 50)
	tl.Totals.P95Millis = percentile(all, 95)
	tl.Totals.P99Millis = percentile(all, 99)
	return tl
}

// CSVHeader is the column row of the CSV form, matching WriteCSVRow's
// order.
const CSVHeader = "start_s,submitted,accepted,rejected,retried,completed,failed,cancelled,gave_up,p50_ms,p95_ms,p99_ms,avg_queue,avg_running,avg_workers,utilization"

// WriteCSVRow writes one row in CSVHeader's column order. Times are
// seconds of simulated offset; latencies simulated milliseconds.
func WriteCSVRow(w io.Writer, r Row) error {
	_, err := fmt.Fprintf(w, "%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.2f,%.2f,%.2f,%.4f\n",
		r.Start.Seconds(), r.Submitted, r.Accepted, r.Rejected, r.Retried,
		r.Completed, r.Failed, r.Cancelled, r.GaveUp,
		r.P50Millis, r.P95Millis, r.P99Millis,
		r.AvgQueue, r.AvgRunning, r.AvgWorkers, r.Utilization)
	return err
}

// WriteCSV writes the whole timeline as CSV: header plus one line per
// interval.
func WriteCSV(w io.Writer, tl Timeline) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	for _, r := range tl.Rows {
		if err := WriteCSVRow(w, r); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the timeline as one indented JSON document.
func WriteJSON(w io.Writer, tl Timeline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}
