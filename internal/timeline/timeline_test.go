package timeline

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// record replays a fixed little run into a collector: a ramp of
// submissions, an overload window with rejections and resubmissions,
// completions with spread-out latencies, one failure, one
// cancellation, and periodic fleet samples.
func record(c *Collector) {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	for i := 0; i < 8; i++ {
		at := sec(0.25 + float64(i)*0.5)
		c.Submitted(at)
		if i%4 == 3 {
			c.Rejected(at)
			c.Retried(at + sec(0.1))
			c.Submitted(at + sec(0.1))
			c.Accepted(at + sec(0.1))
		} else {
			c.Accepted(at)
		}
	}
	c.Completed(sec(1.2), sec(0.95))
	c.Completed(sec(1.7), sec(1.2))
	c.Completed(sec(2.3), sec(0.8))
	c.Completed(sec(3.4), sec(1.9))
	c.Completed(sec(4.6), sec(2.1))
	c.Failed(sec(4.8), sec(0.5))
	c.Cancelled(sec(5.1))
	c.GaveUp(sec(5.3))
	for i := 0; i < 10; i++ {
		c.Sample(sec(float64(i)*0.55), i%3, 1+i%4, 2, 4)
	}
}

// TestGoldenTimeline pins the emitted CSV and JSON forms byte for
// byte: the timeline is the machine-readable contract downstream
// tooling (the CI smoke's jq assertions included) parses, so format
// drift must fail a test, not a pipeline. Regenerate with -update.
func TestGoldenTimeline(t *testing.T) {
	c := New(time.Second, nil)
	record(c)
	tl := c.Finish()
	tl.Pattern = "golden"
	tl.TimeScale = 60

	var csv, js bytes.Buffer
	if err := WriteCSV(&csv, tl); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&js, tl); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "timeline.csv", csv.Bytes())
	compareGolden(t, "timeline.json", js.Bytes())
}

// TestStreamingMatchesBatch pins the streaming path against the batch
// path: interleaving Advance calls (sealing rows early, through the
// sink) must yield exactly the same rows and totals as sealing
// everything at Finish.
func TestStreamingMatchesBatch(t *testing.T) {
	batch := New(time.Second, nil)
	record(batch)
	want := batch.Finish()

	var streamed []Row
	c := New(time.Second, func(r Row) { streamed = append(streamed, r) })
	record(c)
	c.Advance(2500 * time.Millisecond) // seals intervals 0 and 1 mid-run
	if len(streamed) != 2 {
		t.Fatalf("advance streamed %d rows, want 2", len(streamed))
	}
	got := c.Finish()
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Errorf("streamed rows diverge from batch rows:\n want %+v\n got  %+v", want.Rows, got.Rows)
	}
	if want.Totals != got.Totals {
		t.Errorf("streamed totals diverge: want %+v, got %+v", want.Totals, got.Totals)
	}
	if !reflect.DeepEqual(streamed, got.Rows) {
		t.Errorf("sink rows diverge from Finish rows:\n sink %+v\n rows %+v", streamed, got.Rows)
	}
}

// TestStragglerFoldsForward pins the late-event rule: an event for an
// already-sealed interval lands in the oldest open bucket instead of
// vanishing.
func TestStragglerFoldsForward(t *testing.T) {
	c := New(time.Second, func(Row) {})
	c.Submitted(500 * time.Millisecond)
	c.Advance(3 * time.Second) // seals 0,1,2
	c.Completed(700*time.Millisecond, time.Second)
	tl := c.Finish()
	if tl.Totals.Completed != 1 {
		t.Fatalf("straggler lost: totals %+v", tl.Totals)
	}
	lastRow := tl.Rows[len(tl.Rows)-1]
	if lastRow.Completed != 1 || lastRow.Start != 3*time.Second {
		t.Errorf("straggler in wrong bucket: %+v", lastRow)
	}
}

// TestGapsAreZeroRows pins timeline continuity: intervals with no
// events still emit rows, so plots and diffs see an unbroken series.
func TestGapsAreZeroRows(t *testing.T) {
	c := New(time.Second, nil)
	c.Submitted(100 * time.Millisecond)
	c.Completed(4500*time.Millisecond, time.Second)
	tl := c.Finish()
	if len(tl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (gaps filled)", len(tl.Rows))
	}
	for i, r := range tl.Rows {
		if r.Start != time.Duration(i)*time.Second {
			t.Errorf("row %d starts at %v", i, r.Start)
		}
	}
	for _, i := range []int{1, 2, 3} {
		if tl.Rows[i] != (Row{Start: time.Duration(i) * time.Second}) {
			t.Errorf("gap row %d not zero: %+v", i, tl.Rows[i])
		}
	}
}

// TestPercentiles pins the nearest-rank definition on a known ladder.
func TestPercentiles(t *testing.T) {
	c := New(time.Second, nil)
	for i := 1; i <= 100; i++ {
		c.Completed(500*time.Millisecond, time.Duration(i)*time.Millisecond)
	}
	tl := c.Finish()
	if got := tl.Totals.P50Millis; got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := tl.Totals.P95Millis; got != 95 {
		t.Errorf("p95 = %v, want 95", got)
	}
	if got := tl.Totals.P99Millis; got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

// TestCSVHeaderMatchesRow pins the CSV column count against the row
// writer, so a new column cannot silently desynchronize them.
func TestCSVHeaderMatchesRow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSVRow(&buf, Row{}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if gotN, wantN := len(strings.Split(line, ",")), len(strings.Split(CSVHeader, ",")); gotN != wantN {
		t.Errorf("row has %d columns, header %d", gotN, wantN)
	}
}

// compareGolden checks got against the named golden file, rewriting it
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/timeline -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n got: %s\nwant: %s", name, got, want)
	}
}
