package report

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WriteConsole renders the report for a terminal: title, params,
// aligned tables, headline metrics, and latency percentiles. An empty
// histogram renders its percentiles as "-" — a run that completed
// nothing has no latency, and printing 0 would claim one.
func (r *Report) WriteConsole(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, r.Title)
	for _, p := range r.Params {
		fmt.Fprintf(bw, "  %-12s %s\n", p.Name, p.Value)
	}
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(bw, "\n%s\n", t.Title)
		}
		writeTable(bw, t)
	}
	if len(r.Summary) > 0 {
		fmt.Fprintln(bw)
		for _, m := range r.Summary {
			fmt.Fprintf(bw, "  %-14s %s\n", m.Name, formatMetric(m))
		}
	}
	for _, h := range r.Histograms {
		fmt.Fprintf(bw, "\n%s (%s): count %d  p50 %s  p95 %s  p99 %s\n",
			h.Name, h.Unit, h.Count,
			formatQuantile(h, h.P50), formatQuantile(h, h.P95), formatQuantile(h, h.P99))
	}
	return bw.Flush()
}

func writeTable(bw *bufio.Writer, t Table) {
	widths := make([]int, len(t.Columns))
	for i, col := range t.Columns {
		widths[i] = len(col)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		bw.WriteString("  ")
		for i, cell := range cells {
			if i > 0 {
				bw.WriteString("  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], cell)
		}
		bw.WriteString("\n")
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
}

// formatMetric renders a metric value with its unit and note. Seconds
// render as a duration; counts render as integers.
func formatMetric(m Metric) string {
	var s string
	switch {
	case m.Value == 0 && m.Note != "" && m.Unit == "s":
		// A qualified zero duration ("not reached") has no value to
		// print — the note carries the whole story.
		s = "-"
	case m.Unit == "s":
		s = time.Duration(m.Value * float64(time.Second)).Round(time.Nanosecond).String()
	case m.Value == float64(int64(m.Value)):
		s = strconv.FormatInt(int64(m.Value), 10)
	default:
		s = strconv.FormatFloat(m.Value, 'g', 6, 64)
	}
	if m.Note != "" {
		s += " (" + m.Note + ")"
	}
	return s
}

// formatQuantile renders one histogram percentile, "-" when empty.
func formatQuantile(h Histogram, v float64) string {
	if h.Count == 0 {
		return "-"
	}
	if h.Unit == "s" {
		return time.Duration(v * float64(time.Second)).Round(time.Nanosecond).String()
	}
	return strings.TrimSpace(strconv.FormatFloat(v, 'g', 6, 64))
}
