package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/metg"
	"taskbench/internal/metrics"
	"taskbench/internal/timeline"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// compareGolden pins a renderer's output byte for byte, the same
// pattern the wire package uses: `go test ./internal/report -update`
// regenerates after an intentional change.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n got: %s\nwant: %s", name, got, want)
	}
}

func metgReport() *Report {
	points := []metg.Point{
		{Iterations: 4096, Granularity: 820 * time.Microsecond, Efficiency: 0.97,
			Stats: core.RunStats{Elapsed: 84 * time.Millisecond, Tasks: 400, Workers: 4, Flops: 6.7e8}},
		{Iterations: 1024, Granularity: 240 * time.Microsecond, Efficiency: 0.81,
			Stats: core.RunStats{Elapsed: 24 * time.Millisecond, Tasks: 400, Workers: 4, Flops: 1.7e8}},
		{Iterations: 256, Granularity: 95 * time.Microsecond, Efficiency: 0.44,
			Stats: core.RunStats{Elapsed: 9500 * time.Microsecond, Tasks: 400, Workers: 4, Flops: 4.2e7}},
	}
	return FromMETG("metg sweep (stencil backend)", points, 112*time.Microsecond, metg.Measured, 0.5)
}

func loadgenReport(withHist bool) *Report {
	tl := timeline.Timeline{
		Pattern:   "burst",
		TimeScale: 60,
		Interval:  5 * time.Second,
		Totals: timeline.Totals{
			Submitted: 150, Accepted: 140, Rejected: 10, Retried: 6,
			Completed: 138, Failed: 0, Cancelled: 2, GaveUp: 0,
			P50Millis: 12, P95Millis: 80, P99Millis: 140,
		},
	}
	var lat *metrics.HistogramData
	if withHist {
		reg := metrics.NewRegistry()
		h := reg.Histogram("job_latency_seconds", "", []float64{0.01, 0.025, 0.05, 0.1, 0.25})
		for _, v := range []float64{0.008, 0.012, 0.02, 0.04, 0.09, 0.4} {
			h.Observe(v)
		}
		d := h.Snapshot()
		lat = &d
	}
	return FromTimeline("loadgen burst against 127.0.0.1:7591", tl, lat)
}

func TestGoldenMETGReport(t *testing.T) {
	r := metgReport()
	var j, c bytes.Buffer
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteConsole(&c); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "metg.json", j.Bytes())
	compareGolden(t, "metg.console.txt", c.Bytes())
}

func TestGoldenLoadgenReport(t *testing.T) {
	r := loadgenReport(true)
	var j, c bytes.Buffer
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteConsole(&c); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "loadgen.json", j.Bytes())
	compareGolden(t, "loadgen.console.txt", c.Bytes())
}

func TestGoldenRunReport(t *testing.T) {
	r := FromRuns("taskbench stencil 16x100",
		[]string{"serial", "goroutine"},
		[]core.RunStats{
			{Elapsed: 120 * time.Millisecond, Tasks: 1600, Workers: 1, Flops: 2.6e9},
			{Elapsed: 18 * time.Millisecond, Tasks: 1600, Workers: 8, Flops: 2.6e9},
		})
	var j, c bytes.Buffer
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteConsole(&c); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "run.json", j.Bytes())
	compareGolden(t, "run.console.txt", c.Bytes())
}

// TestEmptyHistogramRendersDash pins the satellite contract: a report
// whose run completed nothing shows "-" percentiles, never a
// fabricated 0.
func TestEmptyHistogramRendersDash(t *testing.T) {
	reg := metrics.NewRegistry()
	d := reg.Histogram("job_latency_seconds", "", nil).Snapshot()
	r := FromTimeline("empty run", timeline.Timeline{}, &d)
	var c bytes.Buffer
	if err := r.WriteConsole(&c); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if !strings.Contains(out, "p50 -") || !strings.Contains(out, "p99 -") {
		t.Fatalf("empty histogram did not render '-':\n%s", out)
	}
	if strings.Contains(out, "p50 0s") {
		t.Fatalf("empty histogram rendered a zero percentile:\n%s", out)
	}
}

// TestNotReachedMETG pins the qualified-zero rendering: a sweep that
// never attains the threshold has no METG value to print.
func TestNotReachedMETG(t *testing.T) {
	r := FromMETG("metg sweep", nil, 0, metg.NotReached, 0.5)
	var c bytes.Buffer
	if err := r.WriteConsole(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "- (not reached)") {
		t.Fatalf("NotReached rendering:\n%s", c.String())
	}
}
