// Package report renders any taskbench run — a local backend
// comparison, an METG sweep, or a cluster/loadgen run — as either a
// human console summary or schema-stable machine-readable JSON. The
// model is deliberately flat (params, summary metrics, tables,
// latency histograms) so the figures pipeline and the bench gate can
// consume the same document the operator reads.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/metg"
	"taskbench/internal/metrics"
	"taskbench/internal/timeline"
)

// Schema identifies the JSON layout; bump only when a field changes
// meaning or disappears (additions are compatible).
const Schema = "taskbench.report/v1"

// Report is one rendered run.
type Report struct {
	Schema string `json:"schema"`
	// Kind names the producing pipeline: "run", "metg", "loadgen".
	Kind  string `json:"kind"`
	Title string `json:"title"`
	// Params are the run's identifying inputs, in display order.
	Params []Param `json:"params,omitempty"`
	// Summary is the headline metrics, in display order.
	Summary []Metric `json:"summary,omitempty"`
	// Tables carry the per-point / per-backend breakdowns.
	Tables []Table `json:"tables,omitempty"`
	// Histograms carry latency distributions with percentiles.
	Histograms []Histogram `json:"histograms,omitempty"`
}

// Param is one identifying input of the run.
type Param struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Metric is one headline number. Note carries a qualifier ("upper
// bound", "not reached") the value alone cannot express.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	Note  string  `json:"note,omitempty"`
}

// Table is a rendered breakdown: all cells pre-formatted strings, so
// console and JSON show identical values.
type Table struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Bucket is one histogram bucket: observations at or below LE seconds.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"` // cumulative, Prometheus-style
}

// Histogram is a latency distribution. Overflow counts observations
// past the last bucket bound — kept out of Buckets because JSON
// cannot encode +Inf. Percentiles are nearest-rank bucket bounds; for
// an empty histogram (Count 0) they are meaningless and renderers
// show "-".
type Histogram struct {
	Name     string   `json:"name"`
	Unit     string   `json:"unit"`
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
	P50      float64  `json:"p50"`
	P95      float64  `json:"p95"`
	P99      float64  `json:"p99"`
}

// FromHistogramData converts a metrics snapshot into the report form.
func FromHistogramData(name, unit string, d metrics.HistogramData) Histogram {
	h := Histogram{Name: name, Unit: unit, Count: d.Count, Sum: d.Sum}
	var cum int64
	for i, b := range d.Bounds {
		cum += d.Counts[i]
		h.Buckets = append(h.Buckets, Bucket{LE: b, Count: cum})
	}
	if len(d.Counts) > len(d.Bounds) {
		h.Overflow = d.Counts[len(d.Bounds)]
	}
	if d.Count > 0 {
		h.P50 = d.Quantile(0.50)
		h.P95 = d.Quantile(0.95)
		h.P99 = d.Quantile(0.99)
	}
	return h
}

// WriteJSON renders the report as indented JSON, one stable document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// --- builders -------------------------------------------------------

// FromRuns renders a local backend comparison (the taskbench CLI): one
// table row per backend's RunStats.
func FromRuns(title string, names []string, runs []core.RunStats) *Report {
	r := &Report{Schema: Schema, Kind: "run", Title: title}
	t := Table{
		Columns: []string{"backend", "elapsed", "tasks", "granularity", "GFLOP/s", "GB/s"},
	}
	for i, st := range runs {
		gf, gb := "-", "-"
		if st.Flops > 0 {
			gf = fmt.Sprintf("%.3f", st.FlopsPerSecond()/1e9)
		}
		if st.Bytes > 0 {
			gb = fmt.Sprintf("%.3f", st.BytesPerSecond()/1e9)
		}
		t.Rows = append(t.Rows, []string{
			names[i],
			st.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", st.Tasks),
			st.TaskGranularity().Round(time.Nanosecond).String(),
			gf, gb,
		})
	}
	r.Tables = []Table{t}
	if len(runs) > 0 {
		st := runs[len(runs)-1]
		r.Summary = []Metric{
			{Name: "tasks", Value: float64(st.Tasks)},
			{Name: "granularity", Value: st.TaskGranularity().Seconds(), Unit: "s"},
		}
	}
	return r
}

// FromMETG renders an METG sweep: the efficiency-vs-granularity curve
// plus the headline METG value, qualified by how it was obtained.
func FromMETG(title string, points []metg.Point, value time.Duration, kind metg.Kind, threshold float64) *Report {
	r := &Report{
		Schema: Schema,
		Kind:   "metg",
		Title:  title,
		Params: []Param{
			{Name: "threshold", Value: fmt.Sprintf("%g%%", threshold*100)},
		},
	}
	t := Table{Columns: []string{"iterations", "granularity", "efficiency"}}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Iterations),
			p.Granularity.Round(time.Nanosecond).String(),
			fmt.Sprintf("%.4f", p.Efficiency),
		})
	}
	r.Tables = []Table{t}
	m := Metric{
		Name: fmt.Sprintf("metg_%g", threshold*100),
		Unit: "s",
		Note: kind.String(),
	}
	if kind.Reached() {
		m.Value = value.Seconds()
	}
	r.Summary = []Metric{m}
	return r
}

// FromTimeline renders a cluster/loadgen run from the timeline totals,
// optionally attaching the client-observed latency histogram (nil
// when the run recorded none).
func FromTimeline(title string, tl timeline.Timeline, lat *metrics.HistogramData) *Report {
	r := &Report{
		Schema: Schema,
		Kind:   "loadgen",
		Title:  title,
	}
	if tl.Pattern != "" {
		r.Params = append(r.Params, Param{Name: "pattern", Value: tl.Pattern})
	}
	if tl.TimeScale > 0 {
		r.Params = append(r.Params, Param{Name: "time_scale", Value: fmt.Sprintf("%g", tl.TimeScale)})
	}
	if tl.Interval > 0 {
		r.Params = append(r.Params, Param{Name: "interval", Value: tl.Interval.String()})
	}
	tot := tl.Totals
	r.Summary = []Metric{
		{Name: "submitted", Value: float64(tot.Submitted)},
		{Name: "accepted", Value: float64(tot.Accepted)},
		{Name: "rejected", Value: float64(tot.Rejected)},
		{Name: "retried", Value: float64(tot.Retried)},
		{Name: "completed", Value: float64(tot.Completed)},
		{Name: "failed", Value: float64(tot.Failed)},
		{Name: "cancelled", Value: float64(tot.Cancelled)},
		{Name: "gave_up", Value: float64(tot.GaveUp)},
		{Name: "latency_p50", Value: tot.P50Millis / 1e3, Unit: "s"},
		{Name: "latency_p95", Value: tot.P95Millis / 1e3, Unit: "s"},
		{Name: "latency_p99", Value: tot.P99Millis / 1e3, Unit: "s"},
	}
	if lat != nil {
		r.Histograms = []Histogram{FromHistogramData("job_latency", "s", *lat)}
	}
	return r
}
