package sim

import (
	"fmt"
	"time"
)

// Profile is the overhead model of one programming system: where the
// system spends time per task, per dependency and per message, whether
// it executes asynchronously, steals work, reserves cores, or funnels
// scheduling through a central controller. The constants below are
// calibrated so that single-node METG values land in the bands the
// paper reports (Figure 9a, §5.3–5.5); the multi-node behaviour then
// emerges from the model structure rather than from per-point tuning.
type Profile struct {
	// Name matches the figure legends of the paper.
	Name string

	// TaskOverhead is the per-task dispatch cost paid on the worker.
	TaskOverhead time.Duration
	// DepOverhead is the per-dependency bookkeeping cost.
	DepOverhead time.Duration
	// MsgOverhead is the per-remote-message software cost (send+recv).
	MsgOverhead time.Duration
	// BarrierOverhead is a per-timestep global synchronization cost
	// (bulk-synchronous systems only).
	BarrierOverhead time.Duration

	// CentralGrant is the controller service time per task; a nonzero
	// value serializes all scheduling through one controller
	// (Spark/Dask). Implies Async execution of granted tasks.
	CentralGrant time.Duration

	// DynamicCheckPerCore is the per-task discovery cost that scales
	// with the TOTAL number of cores, modeling DTD-style SPMD
	// enumeration where every rank walks the full task graph (§5.4).
	DynamicCheckPerCore time.Duration

	// DedicatedCores is the number of cores per node reserved for the
	// runtime (out-of-line overhead, §5.3).
	DedicatedCores int

	// Async systems execute any ready task, overlapping communication
	// and computation; synchronous systems process tasks in program
	// order with blocking receives.
	Async bool

	// WorkStealing rebalances ready tasks across the cores of a node.
	WorkStealing bool

	// UtilizationCap scales achievable kernel throughput (managed
	// runtimes that cannot reach peak FLOP/s, §5.1). Zero means 1.0.
	UtilizationCap float64
}

// cap returns the effective utilization cap.
func (p Profile) cap() float64 {
	if p.UtilizationCap <= 0 || p.UtilizationCap > 1 {
		return 1
	}
	return p.UtilizationCap
}

// Profiles returns the overhead models of the 19 system variants that
// appear across the paper's figures, in legend order.
func Profiles() []Profile {
	us := time.Microsecond
	ms := time.Millisecond
	return []Profile{
		// Chapel: coforall tasks + PGAS puts; moderate per-task cost.
		{Name: "chapel", TaskOverhead: 15 * us, DepOverhead: 2 * us, MsgOverhead: 4 * us, Async: false},
		// Chapel with the distrib (work-stealing) scheduler: extra
		// queue cost per task, but rebalances within a node.
		{Name: "chapel distrib", TaskOverhead: 25 * us, DepOverhead: 2 * us, MsgOverhead: 4 * us, Async: true, WorkStealing: true},
		// Charm++: message-driven chares, fully asynchronous.
		{Name: "charm++", TaskOverhead: 1500 * time.Nanosecond, DepOverhead: 600 * time.Nanosecond, MsgOverhead: 2 * us, Async: true},
		// Dask: centralized Python scheduler, ~ms per task decision.
		{Name: "dask", TaskOverhead: 200 * us, DepOverhead: 50 * us, MsgOverhead: 500 * us, CentralGrant: 2500 * us, Async: true, UtilizationCap: 0.9},
		// MPI bulk synchronous: p2p plus a barrier every timestep.
		{Name: "mpi bulk sync", TaskOverhead: 250 * time.Nanosecond, DepOverhead: 500 * time.Nanosecond, MsgOverhead: 900 * time.Nanosecond, BarrierOverhead: 5 * us},
		// MPI p2p: the leanest runtime; nonblocking sends/recvs.
		{Name: "mpi p2p", TaskOverhead: 250 * time.Nanosecond, DepOverhead: 500 * time.Nanosecond, MsgOverhead: 900 * time.Nanosecond},
		// MPI+OpenMP: adds a fork-join per timestep on every rank.
		{Name: "mpi+openmp", TaskOverhead: 700 * time.Nanosecond, DepOverhead: 500 * time.Nanosecond, MsgOverhead: 900 * time.Nanosecond, BarrierOverhead: 8 * us},
		// OmpSs: task dependencies resolved at runtime.
		{Name: "ompss", TaskOverhead: 3 * us, DepOverhead: 800 * time.Nanosecond, Async: true},
		// OpenMP tasks (Intel KMP): shared-memory task dependencies.
		{Name: "openmp task", TaskOverhead: 1200 * time.Nanosecond, DepOverhead: 400 * time.Nanosecond, Async: true},
		// PaRSEC DTD: asynchronous, but every rank enumerates the full
		// graph with dynamic checks that scale with total cores.
		{Name: "parsec dtd", TaskOverhead: 2 * us, DepOverhead: 700 * time.Nanosecond, MsgOverhead: 1500 * time.Nanosecond, DynamicCheckPerCore: 120 * time.Nanosecond, Async: true},
		// PaRSEC PTG: compile-time expansion shrinks but does not
		// eliminate the dynamic checks (§5.4).
		{Name: "parsec ptg", TaskOverhead: 1500 * time.Nanosecond, DepOverhead: 600 * time.Nanosecond, MsgOverhead: 1500 * time.Nanosecond, DynamicCheckPerCore: 25 * time.Nanosecond, Async: true},
		// PaRSEC shard: manual optimizations eliminate the checks.
		{Name: "parsec shard", TaskOverhead: 1500 * time.Nanosecond, DepOverhead: 600 * time.Nanosecond, MsgOverhead: 1500 * time.Nanosecond, Async: true},
		// Realm: event-based, one core per node reserved for the
		// runtime (out-of-line overhead); ready tasks run on any idle
		// worker, so the remaining cores absorb the reserved core's
		// columns.
		{Name: "realm", TaskOverhead: 900 * time.Nanosecond, DepOverhead: 400 * time.Nanosecond, MsgOverhead: 1800 * time.Nanosecond, DedicatedCores: 1, Async: true, WorkStealing: true},
		// Regent: Legion's dynamic analysis on top of Realm; two
		// dedicated cores and much higher per-task cost.
		{Name: "regent", TaskOverhead: 120 * us, DepOverhead: 10 * us, MsgOverhead: 5 * us, DedicatedCores: 2, Async: true, WorkStealing: true},
		// Spark: centralized driver, tens-of-ms scheduling decisions,
		// JVM utilization cap.
		{Name: "spark", TaskOverhead: 1 * ms, DepOverhead: 200 * us, MsgOverhead: 2 * ms, CentralGrant: 8 * ms, Async: true, UtilizationCap: 0.85},
		// StarPU: STF model, similar regime to PaRSEC DTD.
		{Name: "starpu", TaskOverhead: 3 * us, DepOverhead: 900 * time.Nanosecond, MsgOverhead: 1800 * time.Nanosecond, DynamicCheckPerCore: 100 * time.Nanosecond, Async: true},
		// Swift/T: interpreted dataflow; very high per-statement cost.
		{Name: "swift/t", TaskOverhead: 30 * ms, DepOverhead: 1 * ms, MsgOverhead: 2 * ms, Async: true},
		// TensorFlow: graph executor with ~ms-scale op dispatch
		// (single-node in the paper's evaluation).
		{Name: "tensorflow", TaskOverhead: 4 * ms, DepOverhead: 100 * us, Async: true, UtilizationCap: 0.9},
		// X10: place-based PGAS, compiled native backend.
		{Name: "x10", TaskOverhead: 40 * us, DepOverhead: 4 * us, MsgOverhead: 8 * us, Async: false},
	}
}

// ProfileByName finds a profile in Profiles.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("sim: unknown profile %q", name)
}
