package sim

import (
	"taskbench/internal/core"
	"taskbench/internal/kernels"
)

// kernelConfig returns the compute-bound kernel at the given problem
// size.
func kernelConfig(iterations int64) kernels.Config {
	return kernels.Config{Type: kernels.ComputeBound, Iterations: iterations}
}

// Workload describes one evaluation scenario: the dependence pattern,
// graph shape per node, number of concurrent graphs, payload size and
// optional load imbalance. It generates apps for any node count and
// problem size, which is exactly how the paper's sweeps are organized
// (§5: "32 tasks wide and 1000 timesteps long" per node).
type Workload struct {
	// Dependence selects the pattern; Radix applies to nearest/spread.
	Dependence core.DependenceType
	Radix      int
	// Steps is the graph height.
	Steps int
	// WidthPerNode is the number of columns per node (the paper uses
	// one per core: 32 on Cori).
	WidthPerNode int
	// Graphs is the number of identical concurrent task graphs.
	Graphs int
	// OutputBytes is the payload per dependence edge.
	OutputBytes int
	// Imbalance is the load-imbalance factor (0 = balanced).
	Imbalance float64
	// Persistent makes the imbalance a fixed property of each column
	// rather than a fresh draw per task (§5.7 future work).
	Persistent bool
	// Seed feeds deterministic task multipliers.
	Seed uint64
}

// App instantiates the workload for a node count and per-task
// iteration count.
func (w Workload) App(nodes int, iterations int64) *core.App {
	if w.Graphs <= 0 {
		w.Graphs = 1
	}
	width := w.WidthPerNode * nodes
	if width < 1 {
		width = 1
	}
	k := kernelConfig(iterations)
	if w.Imbalance > 0 {
		k.Type = kernels.LoadImbalance
		k.ImbalanceFactor = w.Imbalance
		k.PersistentImbalance = w.Persistent
	}
	graphs := make([]*core.Graph, w.Graphs)
	for gi := range graphs {
		graphs[gi] = core.MustNew(core.Params{
			GraphID:     gi,
			Timesteps:   w.Steps,
			MaxWidth:    width,
			Dependence:  w.Dependence,
			Radix:       w.Radix,
			Kernel:      k,
			OutputBytes: w.OutputBytes,
			Seed:        w.Seed,
		})
	}
	return core.NewApp(graphs...)
}

// Runner adapts the workload to the METG search procedure for a fixed
// machine and profile.
func (w Workload) Runner(m Machine, p Profile) func(iterations int64) core.RunStats {
	return func(iterations int64) core.RunStats {
		return Simulate(w.App(m.Nodes, iterations), m, p)
	}
}
