// Package sim is a discrete-event simulator of a cluster running Task
// Bench applications. It substitutes for the paper's testbeds (Cori's
// 256 Haswell nodes and Piz Daint's P100 nodes, §5), which we do not
// have: the simulator executes the exact same task graphs from
// internal/core on a machine model (nodes × cores, NIC latency and
// bandwidth) under per-system overhead profiles, reproducing the
// multi-node figures' shapes from first-principles cost models.
//
// Single-node results can be cross-checked against real goroutine
// backends; multi-node results (Figures 4, 5, 9, 11, 13) come from
// here.
package sim

import "time"

// Machine describes the simulated hardware.
type Machine struct {
	// Name identifies the model in reports.
	Name string
	// Nodes is the number of nodes.
	Nodes int
	// CoresPerNode is the number of physical cores per node.
	CoresPerNode int
	// FlopsPerCore is the per-core peak of the compute-bound kernel.
	FlopsPerCore float64
	// NetLatency is the one-way network latency between nodes.
	NetLatency time.Duration
	// HopLatency is added per log2(Nodes) to model topology diameter.
	HopLatency time.Duration
	// NetBandwidth is the per-node injection bandwidth in bytes/s.
	NetBandwidth float64
	// LocalLatency is the core-to-core latency within a node (shared
	// memory).
	LocalLatency time.Duration

	// GPU offload model (Figure 13). Zero values mean no accelerator.
	GPUsPerNode  int
	GPUFlops     float64       // per-GPU peak
	GPULaunch    time.Duration // per-kernel launch overhead
	GPUCopyBW    float64       // host<->device bandwidth, bytes/s
	GPUCopyBytes int64         // bytes copied to and from the device per task
}

// Cori models one to 256 Haswell nodes of the Cori supercomputer:
// 32 physical cores and 1.26 TFLOP/s per node (the paper's empirically
// measured peak, §5.1), with a Cray Aries interconnect (~1.3 µs
// latency, ~8 GB/s effective injection bandwidth).
func Cori(nodes int) Machine {
	return Machine{
		Name:         "cori-haswell",
		Nodes:        nodes,
		CoresPerNode: 32,
		FlopsPerCore: 1.26e12 / 32,
		NetLatency:   1300 * time.Nanosecond,
		HopLatency:   150 * time.Nanosecond,
		NetBandwidth: 8e9,
		LocalLatency: 120 * time.Nanosecond,
	}
}

// PizDaint models Piz Daint XC50 nodes: one 12-core Xeon E5-2690 v3
// (5.726e11 FLOP/s measured, §5.8) plus one P100 GPU (4.759e12 FLOP/s
// measured) per node, PCIe-attached at ~11 GB/s.
func PizDaint(nodes int) Machine {
	return Machine{
		Name:         "piz-daint",
		Nodes:        nodes,
		CoresPerNode: 12,
		FlopsPerCore: 5.726e11 / 12,
		NetLatency:   1300 * time.Nanosecond,
		HopLatency:   150 * time.Nanosecond,
		NetBandwidth: 8e9,
		LocalLatency: 120 * time.Nanosecond,
		GPUsPerNode:  1,
		GPUFlops:     4.759e12,
		GPULaunch:    10 * time.Microsecond,
		GPUCopyBW:    11e9,
		GPUCopyBytes: 1 << 20,
	}
}

// TotalCores returns the machine's total core count.
func (m Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// PeakFlops returns the machine's aggregate compute-kernel peak.
func (m Machine) PeakFlops() float64 {
	return m.FlopsPerCore * float64(m.TotalCores())
}

// RemoteLatency returns the node-to-node latency including the
// topology term for the machine's size.
func (m Machine) RemoteLatency() time.Duration {
	hops := 0
	for n := m.Nodes; n > 1; n >>= 1 {
		hops++
	}
	return m.NetLatency + time.Duration(hops)*m.HopLatency
}
