package sim

import (
	"container/heap"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/runtime/exec"
)

// Simulate executes the app on the machine under the profile and
// returns run statistics with Elapsed set to the simulated makespan.
// Workers is the machine's total core count (matching the paper's
// task-granularity formula, which divides by all cores of the
// allocation whether or not the runtime reserves some).
//
// Columns are block-distributed over nodes and, within a node, over
// the node's compute cores (total cores minus the profile's dedicated
// cores). Synchronous profiles execute each core's tasks in program
// order with blocking receives; asynchronous profiles execute any
// ready task, overlapping communication with computation; work
// stealing lets a ready task run on any idle core of its node;
// a central controller serializes every task grant.
func Simulate(app *core.App, m Machine, p Profile) core.RunStats {
	s := newSimState(app, m, p)
	if p.Async || p.CentralGrant > 0 {
		s.runAsync()
	} else {
		s.runSync()
	}
	stats := core.StatsFor(app)
	stats.Workers = m.TotalCores()
	stats.Elapsed = s.makespan
	return stats
}

// simState carries the mutable simulation state.
type simState struct {
	app  *core.App
	m    Machine
	p    Profile
	plan *exec.Plan

	computeCores int // per node
	totalCores   int

	// node[id] and coreOf[id] pin each task.
	node   []int32
	coreOf []int32 // global core index

	// ready[id] is the time all inputs have arrived; counter lives in
	// the plan.
	ready []time.Duration

	coreFree []time.Duration // per global core
	nicFree  []time.Duration // per node
	ctrlFree time.Duration

	remoteLat time.Duration
	makespan  time.Duration
}

func newSimState(app *core.App, m Machine, p Profile) *simState {
	s := &simState{app: app, m: m, p: p, plan: exec.BuildPlan(app)}
	s.computeCores = m.CoresPerNode - p.DedicatedCores
	if s.computeCores < 1 {
		s.computeCores = 1
	}
	s.totalCores = m.Nodes * s.computeCores
	n := len(s.plan.Tasks)
	s.node = make([]int32, n)
	s.coreOf = make([]int32, n)
	s.ready = make([]time.Duration, n)
	s.coreFree = make([]time.Duration, s.totalCores)
	s.nicFree = make([]time.Duration, m.Nodes)
	s.remoteLat = m.RemoteLatency()

	for gi, g := range app.Graphs {
		nodeSpans := exec.BlockAssign(g.MaxWidth, m.Nodes)
		for i := 0; i < g.MaxWidth; i++ {
			nd := exec.OwnerOf(i, g.MaxWidth, m.Nodes)
			span := nodeSpans[nd]
			var c int
			if span.Len() > 0 {
				c = exec.OwnerOf(i-span.Lo, span.Len(), s.computeCores)
			}
			for t := 0; t < g.Timesteps; t++ {
				id := s.plan.ID(gi, t, i)
				s.node[id] = int32(nd)
				s.coreOf[id] = int32(nd*s.computeCores + c)
			}
		}
	}
	return s
}

// duration returns the kernel execution time of task id on a CPU core.
func (s *simState) duration(id int32) time.Duration {
	task := &s.plan.Tasks[id]
	g := s.app.Graphs[task.Graph]
	k := g.Kernel
	var seconds float64
	switch {
	case k.FlopsPerTask() > 0:
		// Use the un-imbalanced iteration count, then scale by the
		// task's deterministic multiplier.
		flops := float64(k.Iterations) * 128
		seconds = flops / (s.m.FlopsPerCore * s.p.cap())
		if k.ImbalanceFactor > 0 {
			mult := g.TaskMultiplier(int(task.T), int(task.I))
			seconds *= (1 - k.ImbalanceFactor) + k.ImbalanceFactor*mult
		}
	case k.WaitDuration > 0:
		return k.WaitDuration
	default:
		return 0
	}
	return time.Duration(seconds * float64(time.Second))
}

// service returns the total core occupancy of task id.
func (s *simState) service(id int32) time.Duration {
	task := &s.plan.Tasks[id]
	sv := s.duration(id) + s.p.TaskOverhead
	sv += time.Duration(len(task.Inputs)) * s.p.DepOverhead
	if s.p.DynamicCheckPerCore > 0 {
		sv += time.Duration(s.totalCores) * s.p.DynamicCheckPerCore
	}
	return sv
}

// deliver propagates task id's completion at time finish to all of its
// consumers, modeling payload transfer costs, and decrements their
// counters. push is called with each newly ready consumer.
func (s *simState) deliver(id int32, finish time.Duration, push func(cons int32)) {
	task := &s.plan.Tasks[id]
	g := s.app.Graphs[task.Graph]
	bytes := float64(g.OutputBytes)
	for _, cons := range task.Consumers {
		var arrival time.Duration
		switch {
		case s.coreOf[cons] == s.coreOf[id]:
			arrival = finish
		case s.node[cons] == s.node[id]:
			arrival = finish + s.m.LocalLatency
		default:
			xfer := time.Duration(bytes / s.m.NetBandwidth * float64(time.Second))
			sendStart := max(s.nicFree[s.node[id]], finish)
			s.nicFree[s.node[id]] = sendStart + xfer
			arrival = sendStart + xfer + s.remoteLat + s.p.MsgOverhead
		}
		if arrival > s.ready[cons] {
			s.ready[cons] = arrival
		}
		if s.plan.Tasks[cons].Counter.Add(-1) == 0 {
			push(cons)
		}
	}
}

// runSync simulates phase-based execution with blocking receives:
// every core (rank) processes its tasks in (timestep, graph, column)
// order, and — crucially — outputs depart only in the communication
// phase at the end of the rank's compute phase for the step. This is
// the distinct computation/communication phase structure of the
// paper's MPI implementation (§3.4), and the reason synchronous
// systems cannot overlap communication with computation (§5.6).
func (s *simState) runSync() {
	maxSteps := 0
	for _, g := range s.app.Graphs {
		if g.Timesteps > maxSteps {
			maxSteps = g.Timesteps
		}
	}
	var stepTasks []int32
	for t := 0; t < maxSteps; t++ {
		// Compute phase.
		stepTasks = stepTasks[:0]
		for gi, g := range s.app.Graphs {
			if t >= g.Timesteps {
				continue
			}
			off := g.OffsetAtTimestep(t)
			w := g.WidthAtTimestep(t)
			for i := off; i < off+w; i++ {
				id := s.plan.ID(gi, t, i)
				core := s.coreOf[id]
				start := max(s.coreFree[core], s.ready[id])
				finish := start + s.service(id)
				s.coreFree[core] = finish
				if finish > s.makespan {
					s.makespan = finish
				}
				stepTasks = append(stepTasks, id)
			}
		}
		// Communication phase: every output departs when its rank has
		// finished computing the whole step.
		for _, id := range stepTasks {
			s.deliver(id, s.coreFree[s.coreOf[id]], func(int32) {})
		}
		if s.p.BarrierOverhead > 0 {
			// Global barrier: everyone waits for the slowest core.
			var slowest time.Duration
			for _, f := range s.coreFree {
				if f > slowest {
					slowest = f
				}
			}
			slowest += s.p.BarrierOverhead
			for c := range s.coreFree {
				s.coreFree[c] = slowest
			}
			if slowest > s.makespan {
				s.makespan = slowest
			}
		}
	}
}

// readyItem is a heap entry for the asynchronous scheduler.
type readyItem struct {
	at time.Duration
	id int32
}

type readyHeap []readyItem

func (h readyHeap) Len() int           { return len(h) }
func (h readyHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h readyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)        { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *readyHeap) push(it readyItem) { heap.Push(h, it) }
func (h *readyHeap) pop() readyItem    { return heap.Pop(h).(readyItem) }

// runAsync simulates event-driven execution: any ready task runs as
// soon as a core is available, so communication overlaps computation
// and multiple graphs interleave freely.
func (s *simState) runAsync() {
	var h readyHeap
	for _, id := range s.plan.Seeds {
		h.push(readyItem{0, id})
	}
	for h.Len() > 0 {
		it := h.pop()
		id := it.id
		at := it.at

		// Central controller grant (Spark/Dask).
		if s.p.CentralGrant > 0 {
			grant := max(s.ctrlFree, at) + s.p.CentralGrant
			s.ctrlFree = grant
			at = grant
		}

		// Core selection.
		core := s.coreOf[id]
		if s.p.WorkStealing {
			nd := int(s.node[id])
			best := nd * s.computeCores
			for c := best; c < (nd+1)*s.computeCores; c++ {
				if s.coreFree[c] < s.coreFree[best] {
					best = c
				}
			}
			core = int32(best)
		}

		start := max(s.coreFree[core], at)
		finish := start + s.service(id)
		s.coreFree[core] = finish
		if finish > s.makespan {
			s.makespan = finish
		}
		s.deliver(id, finish, func(cons int32) {
			h.push(readyItem{s.ready[cons], cons})
		})
	}
}
