package sim

import (
	"time"

	"taskbench/internal/core"
)

// GPUConfig describes the MPI+CUDA offload experiment of Figure 13:
// a single Piz Daint node running the stencil pattern, with data
// copied to and from the GPU on every timestep (the paper's offload
// model, §3.5) and RanksPerGPU MPI ranks pushing work to one GPU
// (w1 = 1 rank; w4 = 4 ranks, overdecomposing the work 4×).
type GPUConfig struct {
	Machine     Machine
	RanksPerGPU int
	// Steps and Width shape the task graph (Width tasks per step for
	// w1; overdecomposition multiplies the task count and divides the
	// per-task work).
	Steps, Width int
	// CopyBytesPerTask is the data staged to and from the device for
	// each w1-sized task (the kernel working set plus halos).
	CopyBytesPerTask int64
}

// singleStreamUtil is the fraction of GPU peak a single rank's
// serialized offload stream can sustain; overdecomposition overlaps
// transfers with kernels and removes the cap (§5.8: "w4 achieves
// higher FLOP/s").
const singleStreamUtil = 0.90

// GPUResult is one point of the Figure 13 curve.
type GPUResult struct {
	Iterations int64
	Flops      float64
	Elapsed    time.Duration
}

// FlopsPerSecond returns achieved throughput.
func (r GPUResult) FlopsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.Flops / r.Elapsed.Seconds()
}

// SimulateGPU models the offload execution at one problem size
// (iterations of the compute kernel per w1-sized task).
//
// With one rank (w1) each task serializes launch, copy-in/out and
// kernel, and a single stream cannot quite saturate the device. With
// w ranks the work is overdecomposed w-fold: copies overlap kernels,
// so large problems reach the GPU's full peak, but every step now
// pays w times as many kernel launches, which is why w4 drops faster
// at small problem sizes (§5.8).
func SimulateGPU(cfg GPUConfig, iterations int64) GPUResult {
	m := cfg.Machine
	w := cfg.RanksPerGPU
	if w < 1 {
		w = 1
	}
	flopsPerStep := float64(iterations) * 128 * float64(cfg.Width)
	copySecsPerStep := 2 * float64(cfg.CopyBytesPerTask) * float64(cfg.Width) / m.GPUCopyBW

	var stepSecs float64
	if w == 1 {
		kernelSecs := flopsPerStep / (m.GPUFlops * singleStreamUtil)
		stepSecs = float64(cfg.Width)*m.GPULaunch.Seconds() + copySecsPerStep + kernelSecs
	} else {
		kernelSecs := flopsPerStep / m.GPUFlops
		launches := float64(cfg.Width*w) * m.GPULaunch.Seconds()
		stepSecs = max(kernelSecs, copySecsPerStep) + launches
	}
	return GPUResult{
		Iterations: iterations,
		Flops:      flopsPerStep * float64(cfg.Steps),
		Elapsed:    time.Duration(stepSecs * float64(cfg.Steps) * float64(time.Second)),
	}
}

// SimulateGPUCPUBaseline runs the same problem on the node's CPU cores
// using the mpi p2p profile, for the CPU line of Figure 13. The CPU
// kernel performs the same FLOPs (the paper normalizes problem size to
// keep FLOPs constant between CPU and GPU).
func SimulateGPUCPUBaseline(cfg GPUConfig, iterations int64) GPUResult {
	p, _ := ProfileByName("mpi p2p")
	g := core.MustNew(core.Params{
		Timesteps:  cfg.Steps,
		MaxWidth:   cfg.Width,
		Dependence: core.Stencil1D,
		Kernel:     kernelConfig(iterations),
	})
	app := core.NewApp(g)
	st := Simulate(app, cfg.Machine, p)
	return GPUResult{
		Iterations: iterations,
		Flops:      st.Flops,
		Elapsed:    st.Elapsed,
	}
}
