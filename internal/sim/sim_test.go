package sim

import (
	"testing"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/metg"
)

// stencilWorkload is the paper's baseline configuration scaled down in
// height to keep simulations fast (METG is a steady-state property).
func stencilWorkload() Workload {
	return Workload{Dependence: core.Stencil1D, Steps: 20, WidthPerNode: 32}
}

func simMETG(t *testing.T, w Workload, m Machine, profileName string) time.Duration {
	t.Helper()
	p, err := ProfileByName(profileName)
	if err != nil {
		t.Fatal(err)
	}
	run := metg.Runner(w.Runner(m, p))
	got, _, kind := metg.Search(run, 1<<31, m.PeakFlops(), 0, 0.5, 2)
	if !kind.Reached() {
		t.Fatalf("METG(50%%) not found for %s", profileName)
	}
	return got
}

func TestMachineModels(t *testing.T) {
	c := Cori(4)
	if c.TotalCores() != 128 {
		t.Errorf("Cori(4) cores = %d, want 128", c.TotalCores())
	}
	if pf := c.PeakFlops(); pf < 5e12 || pf > 5.1e12 {
		t.Errorf("Cori(4) peak = %v, want ≈ 5.04e12", pf)
	}
	if Cori(1).RemoteLatency() != c.NetLatency {
		t.Error("1-node machine should have no hop latency")
	}
	if Cori(256).RemoteLatency() <= Cori(2).RemoteLatency() {
		t.Error("remote latency should grow with node count")
	}
	d := PizDaint(1)
	if d.GPUsPerNode != 1 || d.GPUFlops <= 0 {
		t.Errorf("PizDaint GPU model missing: %+v", d)
	}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) < 18 {
		t.Fatalf("only %d profiles, want at least the paper's 18 lines", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, want := range []string{"mpi p2p", "mpi bulk sync", "charm++", "spark", "dask",
		"realm", "regent", "parsec dtd", "parsec ptg", "parsec shard", "swift/t",
		"tensorflow", "x10", "chapel", "chapel distrib", "starpu", "openmp task",
		"ompss", "mpi+openmp"} {
		if !seen[want] {
			t.Errorf("missing profile %q", want)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("ProfileByName accepted bogus name")
	}
}

func TestSimulateLargeTasksReachPeak(t *testing.T) {
	// With huge tasks every system approaches peak efficiency —
	// Figure 6's plateau.
	m := Cori(1)
	w := stencilWorkload()
	for _, name := range []string{"mpi p2p", "charm++", "realm", "spark"} {
		p, _ := ProfileByName(name)
		st := Simulate(w.App(1, 1<<31), m, p)
		eff := st.Efficiency(m.PeakFlops(), 0)
		if eff < 0.5 {
			t.Errorf("%s: efficiency %v at huge tasks, want > 0.5", name, eff)
		}
		if eff > 1.01 {
			t.Errorf("%s: efficiency %v exceeds peak", name, eff)
		}
	}
}

func TestSimulateTinyTasksCollapse(t *testing.T) {
	m := Cori(1)
	w := stencilWorkload()
	p, _ := ProfileByName("mpi p2p")
	st := Simulate(w.App(1, 1), m, p)
	if eff := st.Efficiency(m.PeakFlops(), 0); eff > 0.5 {
		t.Errorf("1-iteration tasks reached %v efficiency, expected collapse", eff)
	}
}

// TestMETGSingleNodeBands checks the paper's headline finding: on one
// node, METG(50%) spans orders of magnitude across systems, with MPI
// in the microsecond band and Spark in the 100ms+ band (Figure 9a).
func TestMETGSingleNodeBands(t *testing.T) {
	m := Cori(1)
	w := stencilWorkload()

	mpi := simMETG(t, w, m, "mpi p2p")
	if mpi < 500*time.Nanosecond || mpi > 50*time.Microsecond {
		t.Errorf("mpi p2p METG = %v, want single-digit µs band", mpi)
	}

	spark := simMETG(t, w, m, "spark")
	if spark < 50*time.Millisecond {
		t.Errorf("spark METG = %v, want ≥ 50ms", spark)
	}

	// ≥ 4 orders of magnitude spread (paper: > 5 across all systems).
	if ratio := float64(spark) / float64(mpi); ratio < 1e4 {
		t.Errorf("spark/mpi METG ratio = %.0f, want ≥ 1e4", ratio)
	}

	// Realm and Charm++ land between MPI and the data-analytics
	// systems.
	realm := simMETG(t, w, m, "realm")
	if realm < mpi/4 || realm > spark {
		t.Errorf("realm METG = %v out of expected band (mpi=%v, spark=%v)", realm, mpi, spark)
	}
}

// TestMETGRisesWithNodeCount checks §5.4: systems with the smallest
// 1-node METG see roughly an order of magnitude higher METG at scale
// because communication latency requires larger tasks.
func TestMETGRisesWithNodeCount(t *testing.T) {
	w := stencilWorkload()
	one := simMETG(t, w, Cori(1), "mpi p2p")
	big := simMETG(t, w, Cori(64), "mpi p2p")
	if big < 2*one {
		t.Errorf("METG at 64 nodes (%v) not clearly above 1 node (%v)", big, one)
	}
}

// TestCentralizedSchedulerScalesBadly checks §5.4: Spark's centralized
// controller makes METG rise immediately with node count.
func TestCentralizedSchedulerScalesBadly(t *testing.T) {
	w := stencilWorkload()
	one := simMETG(t, w, Cori(1), "spark")
	four := simMETG(t, w, Cori(4), "spark")
	if four < 2*one {
		t.Errorf("spark METG: 4 nodes %v vs 1 node %v, want ≥ 2× growth", four, one)
	}
}

// TestDTDChecksVsShard checks §5.4: DTD's dynamic checks grow with
// scale while the sharded variant stays flat.
func TestDTDChecksVsShard(t *testing.T) {
	w := stencilWorkload()
	dtd1 := simMETG(t, w, Cori(1), "parsec dtd")
	dtd16 := simMETG(t, w, Cori(16), "parsec dtd")
	shard1 := simMETG(t, w, Cori(1), "parsec shard")
	shard16 := simMETG(t, w, Cori(16), "parsec shard")
	growthDTD := float64(dtd16) / float64(dtd1)
	growthShard := float64(shard16) / float64(shard1)
	if growthDTD < 1.5*growthShard {
		t.Errorf("DTD METG growth %.1fx not clearly above shard growth %.1fx",
			growthDTD, growthShard)
	}
}

// TestDependenciesRaiseMETG checks §5.5 (Figure 10): more dependencies
// per task raise METG substantially for inline-overhead systems.
func TestDependenciesRaiseMETG(t *testing.T) {
	m := Cori(1)
	zero := simMETG(t, Workload{Dependence: core.Nearest, Radix: 0, Steps: 20, WidthPerNode: 32}, m, "mpi p2p")
	five := simMETG(t, Workload{Dependence: core.Nearest, Radix: 5, Steps: 20, WidthPerNode: 32}, m, "mpi p2p")
	if five < 2*zero {
		t.Errorf("METG with 5 deps (%v) not clearly above 0 deps (%v)", five, zero)
	}
}

// TestAsyncHidesCommunication checks §5.6 (Figure 11): with multiple
// graphs and non-trivial payloads, asynchronous systems achieve higher
// efficiency than phase-based MPI at equal task granularity.
func TestAsyncHidesCommunication(t *testing.T) {
	m := Cori(8)
	w := Workload{Dependence: core.Spread, Radix: 5, Steps: 12, WidthPerNode: 32,
		Graphs: 4, OutputBytes: 4096}
	iters := int64(30000) // medium granularity where overlap matters

	sync, _ := ProfileByName("mpi p2p")
	async, _ := ProfileByName("charm++")
	effSync := Simulate(w.App(m.Nodes, iters), m, sync).Efficiency(m.PeakFlops(), 0)
	effAsync := Simulate(w.App(m.Nodes, iters), m, async).Efficiency(m.PeakFlops(), 0)
	if effAsync <= effSync {
		t.Errorf("async efficiency %.3f not above sync %.3f under communication load",
			effAsync, effSync)
	}
}

// TestStealingMitigatesImbalance checks §5.7 (Figure 12): under
// uniform [0,1) imbalance at large granularity, a work-stealing
// runtime beats phase-based MPI, whose efficiency is capped by the
// slowest rank.
func TestStealingMitigatesImbalance(t *testing.T) {
	m := Cori(1)
	w := Workload{Dependence: core.Nearest, Radix: 5, Steps: 16, WidthPerNode: 32,
		Graphs: 4, Imbalance: 1.0, Seed: 11}
	iters := int64(1 << 18) // large tasks: imbalance dominates overhead

	mpi, _ := ProfileByName("mpi bulk sync")
	steal, _ := ProfileByName("chapel distrib")
	effMPI := Simulate(w.App(1, iters), m, mpi).Efficiency(m.PeakFlops(), 0)
	effSteal := Simulate(w.App(1, iters), m, steal).Efficiency(m.PeakFlops(), 0)
	if effSteal <= effMPI {
		t.Errorf("stealing efficiency %.3f not above bulk-sync %.3f under imbalance",
			effSteal, effMPI)
	}
	// The paper notes imbalance puts an upper bound on MPI efficiency:
	// with duration ~ U[0,1), the slowest of 32 ranks per step forces
	// efficiency towards E[mean]/E[max] ≈ 0.5.
	if effMPI > 0.75 {
		t.Errorf("bulk-sync efficiency %.3f implausibly high under full imbalance", effMPI)
	}
}

// TestDedicatedCoresCapEfficiency checks §5.1: systems that reserve
// cores cannot reach 100% of machine peak.
func TestDedicatedCoresCapEfficiency(t *testing.T) {
	m := Cori(1)
	w := stencilWorkload()
	p, _ := ProfileByName("realm") // 1 dedicated core
	st := Simulate(w.App(1, 1<<24), m, p)
	eff := st.Efficiency(m.PeakFlops(), 0)
	want := float64(31) / 32
	if eff > want+0.02 {
		t.Errorf("realm efficiency %.3f exceeds dedicated-core cap %.3f", eff, want)
	}
}

// TestGPUOffloadShapes checks Figure 13: the GPU beats the CPU at
// large problems, loses at small ones, and overdecomposition (w4)
// reaches higher peak but decays faster.
func TestGPUOffloadShapes(t *testing.T) {
	base := GPUConfig{Machine: PizDaint(1), Steps: 50, Width: 12, CopyBytesPerTask: 1 << 16}

	w1 := base
	w1.RanksPerGPU = 1
	w4 := base
	w4.RanksPerGPU = 4

	bigIters := int64(1 << 26)
	smallIters := int64(1 << 8)

	cpuBig := SimulateGPUCPUBaseline(base, bigIters).FlopsPerSecond()
	gpuBig := SimulateGPU(w1, bigIters).FlopsPerSecond()
	gpu4Big := SimulateGPU(w4, bigIters).FlopsPerSecond()
	if gpuBig <= cpuBig {
		t.Errorf("GPU (%.2e) not above CPU (%.2e) at large problems", gpuBig, cpuBig)
	}
	if gpu4Big <= gpuBig {
		t.Errorf("w4 (%.2e) not above w1 (%.2e) at large problems", gpu4Big, gpuBig)
	}

	cpuSmall := SimulateGPUCPUBaseline(base, smallIters).FlopsPerSecond()
	gpuSmall := SimulateGPU(w1, smallIters).FlopsPerSecond()
	if gpuSmall >= cpuSmall {
		t.Errorf("GPU (%.2e) not below CPU (%.2e) at small problems", gpuSmall, cpuSmall)
	}

	// w4 drops more steeply: its small/large ratio is worse than w1's.
	gpu4Small := SimulateGPU(w4, smallIters).FlopsPerSecond()
	if gpu4Small/gpu4Big >= gpuSmall/gpuBig {
		t.Error("w4 does not decay faster than w1 at small problems")
	}
}

// TestSimulateDeterministic: identical inputs give identical makespans.
func TestSimulateDeterministic(t *testing.T) {
	m := Cori(2)
	w := Workload{Dependence: core.Spread, Radix: 5, Steps: 10, WidthPerNode: 32,
		Graphs: 2, Imbalance: 0.5, Seed: 3}
	p, _ := ProfileByName("charm++")
	a := Simulate(w.App(2, 5000), m, p)
	b := Simulate(w.App(2, 5000), m, p)
	if a.Elapsed != b.Elapsed {
		t.Errorf("simulation not deterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

// TestWorkloadApp checks the workload generator shapes.
func TestWorkloadApp(t *testing.T) {
	w := Workload{Dependence: core.Nearest, Radix: 3, Steps: 5, WidthPerNode: 32, Graphs: 4}
	app := w.App(4, 100)
	if len(app.Graphs) != 4 {
		t.Fatalf("graphs = %d, want 4", len(app.Graphs))
	}
	if app.Graphs[0].MaxWidth != 128 {
		t.Errorf("width = %d, want 128", app.Graphs[0].MaxWidth)
	}
	imb := Workload{Dependence: core.Trivial, Steps: 2, WidthPerNode: 1, Imbalance: 0.5}
	g := imb.App(1, 10).Graphs[0]
	if g.Kernel.ImbalanceFactor != 0.5 {
		t.Errorf("imbalance not applied: %+v", g.Kernel)
	}
}

// TestPersistentImbalanceNeedsStealing covers the paper's future-work
// extension (§5.7): with per-column (persistent) imbalance, pinned
// execution — even asynchronous — is bound by the slowest column, so
// work stealing helps far more than under per-task imbalance.
func TestPersistentImbalanceNeedsStealing(t *testing.T) {
	m := Cori(1)
	iters := int64(1 << 18)
	base := Workload{Dependence: core.Nearest, Radix: 5, Steps: 16, WidthPerNode: 32,
		Graphs: 4, Imbalance: 1.0, Seed: 11}
	persistent := base
	persistent.Persistent = true

	charm, _ := ProfileByName("charm++")        // async, pinned columns
	steal, _ := ProfileByName("chapel distrib") // async + stealing

	effCharmNP := Simulate(base.App(1, iters), m, charm).Efficiency(m.PeakFlops(), 0)
	effCharmP := Simulate(persistent.App(1, iters), m, charm).Efficiency(m.PeakFlops(), 0)
	effStealP := Simulate(persistent.App(1, iters), m, steal).Efficiency(m.PeakFlops(), 0)

	// Persistent imbalance hurts a pinned runtime more than per-task
	// imbalance (no averaging across timesteps).
	if effCharmP >= effCharmNP {
		t.Errorf("pinned async: persistent eff %.3f not below non-persistent %.3f",
			effCharmP, effCharmNP)
	}
	// Stealing recovers most of the loss.
	if effStealP <= effCharmP+0.1 {
		t.Errorf("stealing eff %.3f not clearly above pinned %.3f under persistent imbalance",
			effStealP, effCharmP)
	}
}

// TestStrongScalingProjection ties §4's worked example together: the
// node count at which a problem stops strong-scaling is predicted by
// where its shrinking task granularity crosses the METG curve.
func TestStrongScalingProjection(t *testing.T) {
	w := stencilWorkload()
	metgAt := map[int]time.Duration{}
	for nodes := 1; nodes <= 8; nodes *= 2 {
		metgAt[nodes] = simMETG(t, w, Cori(nodes), "mpi p2p")
	}
	lookup := func(nodes int) time.Duration { return metgAt[nodes] }

	// A workload 4× above METG at 1 node scales a little, not forever.
	limit := metg.StrongScalingLimit(4*metgAt[1], lookup, 8)
	if limit < 1 || limit >= 8 {
		t.Errorf("projected strong-scaling limit = %d, want within [1, 8)", limit)
	}
	// A workload 1000× above METG scales past the whole sweep.
	if got := metg.StrongScalingLimit(1000*metgAt[1], lookup, 8); got != 8 {
		t.Errorf("large-problem limit = %d, want 8", got)
	}
}
