// Package metg implements the paper's central metric: minimum
// effective task granularity (§4). METG(x%) for a workload is the
// smallest average task granularity — wall time × cores ÷ tasks — at
// which the workload still achieves at least x% of the machine's peak
// performance. The efficiency constraint is what distinguishes METG
// from raw tasks-per-second limit studies: it only counts
// configurations that do useful work at an acceptable rate.
//
// The measurement procedure mirrors Figures 2 and 3: hold the machine
// configuration fixed, repeatedly shrink the problem size (kernel
// iteration count), replot the results as efficiency vs. task
// granularity, and intersect the curve with the efficiency threshold.
package metg

import (
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	"taskbench/internal/runtime/exec"
	"taskbench/internal/stats"
)

// Runner executes the workload at a given per-task iteration count and
// reports run statistics. Implementations wrap either a real runtime
// backend or the cluster simulator.
type Runner func(iterations int64) core.RunStats

// BackendSweep returns the per-point measurement function for a real
// runtime backend over a graph family parameterized by iteration
// count. A sweep measures the same task graph at every point of the
// curve — only the per-task kernel size changes — so engine-backed
// backends reuse one session: shared-memory backends
// (runtime.PolicyBacked) drive an exec.Session whose Plan is built
// once per configuration and Reset per point, and rank-based backends
// (runtime.RankBacked) drive an exec.RankSession whose RankPlan —
// spans, cross-rank edge lists, fabric wiring, and for tcp the
// connection mesh — is likewise paid once. Other backends rebuild the
// app at each point.
//
// The second return value releases the reused session's resources
// (for tcp, the live connection mesh); call it when the sweep is
// done. It is always non-nil and safe to call more than once.
func BackendSweep(rt runtime.Runtime, mkGraph func(iterations int64) *core.Graph) (run func(iterations int64) (core.RunStats, error), close func()) {
	type session interface {
		Run() (core.RunStats, error)
	}
	var open func(app *core.App) (session, error)
	switch b := rt.(type) {
	case runtime.PolicyBacked:
		open = func(app *core.App) (session, error) { return exec.NewSession(app, b.Policy()), nil }
	case runtime.RankBacked:
		open = func(app *core.App) (session, error) { return exec.NewRankSession(app, b.RankPolicy()) }
	default:
		return func(iterations int64) (core.RunStats, error) {
			return rt.Run(core.NewApp(mkGraph(iterations)))
		}, func() {}
	}
	template := mkGraph(1)
	var sess session // built lazily on the first same-shape point
	run = func(iterations int64) (core.RunStats, error) {
		fresh := mkGraph(iterations)
		if !sameShape(fresh, template) {
			// The family varies the DAG shape with the iteration
			// count, so a prebuilt plan does not apply; fall back
			// to a correct per-point rebuild.
			return rt.Run(core.NewApp(fresh))
		}
		if sess == nil {
			s, err := open(core.NewApp(template))
			if err != nil {
				return core.RunStats{}, err
			}
			sess = s
		}
		template.Kernel = fresh.Kernel
		return sess.Run()
	}
	close = func() {
		if closer, ok := sess.(interface{ Close() }); ok {
			closer.Close()
		}
		sess = nil
	}
	return run, close
}

// sameShape reports whether two graphs of a sweep family differ only
// in their kernel configuration, i.e. share the exact DAG topology a
// reusable plan was built for.
func sameShape(a, b *core.Graph) bool {
	pa, pb := a.Params, b.Params
	pa.Kernel, pb.Kernel = kernels.Config{}, kernels.Config{}
	return pa == pb
}

// Point is one measurement of the efficiency-vs-granularity curve.
type Point struct {
	// Iterations is the per-task kernel iteration count.
	Iterations int64
	// Granularity is wall time × cores ÷ tasks.
	Granularity time.Duration
	// Efficiency is achieved ÷ peak throughput (0..1).
	Efficiency float64
	// Stats is the full run record.
	Stats core.RunStats
}

// Curve measures the workload at each iteration count (pass them in
// descending order for the paper's shrinking-problem-size procedure)
// and converts the results into (granularity, efficiency) points.
func Curve(run Runner, iterations []int64, peakFlops, peakBytes float64) []Point {
	points := make([]Point, 0, len(iterations))
	for _, it := range iterations {
		st := run(it)
		points = append(points, Point{
			Iterations:  it,
			Granularity: st.TaskGranularity(),
			Efficiency:  st.Efficiency(peakFlops, peakBytes),
			Stats:       st,
		})
	}
	return points
}

// Kind classifies how an METG value was obtained, distinguishing a
// true threshold crossing from the conservative bound reported when
// the measured curve never dips below the threshold.
type Kind int

const (
	// NotReached: the curve never attains the threshold; there is no
	// METG value.
	NotReached Kind = iota
	// UpperBound: every measured point sits at or above the threshold,
	// so the smallest observed granularity only bounds METG from above
	// (the paper's "≤" rows for systems whose asymptote lies above
	// 50%).
	UpperBound
	// Measured: the curve crosses the threshold between two measured
	// points and the value is the log-interpolated crossing.
	Measured
)

// Reached reports whether the curve attains the threshold at all,
// i.e. whether a value (measured or bound) exists.
func (k Kind) Reached() bool { return k != NotReached }

func (k Kind) String() string {
	switch k {
	case Measured:
		return "measured"
	case UpperBound:
		return "upper bound"
	default:
		return "not reached"
	}
}

// METG extracts the minimum effective task granularity at the given
// efficiency threshold from a curve measured with shrinking problem
// sizes. It returns the granularity at which the curve crosses the
// threshold, log-interpolated between the bracketing points — the red
// dashed intersection of Figure 3. A noisy curve may cross the
// threshold more than once; every adjacent bracket is scanned and the
// minimum crossing wins, since METG is the smallest granularity at
// which the efficiency constraint still holds.
//
// The Kind disambiguates the no-crossing cases: NotReached means the
// curve never attains the threshold (no value); UpperBound means every
// point is above the threshold, so the smallest granularity observed
// is only a conservative upper bound on METG, matching how the paper
// reports systems whose asymptote lies above 50%.
func METG(points []Point, threshold float64) (time.Duration, Kind) {
	best := time.Duration(0)
	found := false
	for _, p := range points {
		if p.Efficiency >= threshold && p.Granularity > 0 {
			if !found || p.Granularity < best {
				best = p.Granularity
			}
			found = true
		}
	}
	if !found {
		return 0, NotReached
	}
	kind := UpperBound
	// Refine with every bracketing pair. Taking only the first bracket
	// would silently ignore a later crossing at smaller granularity on
	// a non-monotone curve.
	for k := 0; k+1 < len(points); k++ {
		a, b := points[k], points[k+1]
		if a.Efficiency >= threshold && b.Efficiency < threshold &&
			a.Granularity > 0 && b.Granularity > 0 {
			x := stats.InterpLogX(
				float64(a.Granularity), a.Efficiency,
				float64(b.Granularity), b.Efficiency,
				threshold)
			cross := time.Duration(x)
			if cross < best {
				best = cross
			}
			kind = Measured
		}
	}
	return best, kind
}

// Search runs the complete METG procedure: sweep iteration counts
// geometrically downward from startIters until efficiency drops well
// below the threshold (or the iteration count reaches 1), then extract
// METG. It returns the metg value, the measured curve, and the Kind of
// the value (measured crossing, upper bound, or not reached).
func Search(run Runner, startIters int64, peakFlops, peakBytes float64, threshold float64, perDoubling int) (time.Duration, []Point, Kind) {
	iters := stats.GeomIters(startIters, 1, perDoubling)
	var points []Point
	for _, it := range iters {
		st := run(it)
		p := Point{
			Iterations:  it,
			Granularity: st.TaskGranularity(),
			Efficiency:  st.Efficiency(peakFlops, peakBytes),
			Stats:       st,
		}
		points = append(points, p)
		// Stop once the curve is clearly below the threshold: the
		// crossing is bracketed and smaller problems only waste time.
		if p.Efficiency < threshold*0.5 && len(points) >= 2 {
			break
		}
	}
	m, kind := METG(points, threshold)
	return m, points, kind
}
