package metg

import (
	"testing"
	"time"
)

func TestWeakScalingFloor(t *testing.T) {
	metgAt := func(nodes int) time.Duration {
		return time.Duration(nodes) * 10 * time.Microsecond
	}
	if got := WeakScalingFloor(metgAt, 16); got != 160*time.Microsecond {
		t.Errorf("WeakScalingFloor = %v, want 160µs", got)
	}
}

func TestStrongScalingLimit(t *testing.T) {
	// Flat METG of 10µs: a 640µs-granularity workload strong-scales
	// 64× before tasks hit the floor.
	flat := func(int) time.Duration { return 10 * time.Microsecond }
	if got := StrongScalingLimit(640*time.Microsecond, flat, 1024); got != 64 {
		t.Errorf("flat limit = %d, want 64", got)
	}

	// Rising METG (doubling every 4× nodes) stops scaling earlier.
	rising := func(nodes int) time.Duration {
		m := 10 * time.Microsecond
		for n := 1; n < nodes; n *= 4 {
			m *= 2
		}
		return m
	}
	limit := StrongScalingLimit(640*time.Microsecond, rising, 1024)
	if limit >= 64 || limit < 4 {
		t.Errorf("rising limit = %d, want within [4, 64)", limit)
	}

	// A workload already below METG cannot scale at all.
	if got := StrongScalingLimit(time.Microsecond, flat, 1024); got != 0 {
		t.Errorf("hopeless limit = %d, want 0", got)
	}

	// Larger problems scale further: monotonicity.
	small := StrongScalingLimit(100*time.Microsecond, flat, 1024)
	large := StrongScalingLimit(10*time.Millisecond, flat, 1024)
	if large <= small {
		t.Errorf("larger problems should scale further: %d vs %d", large, small)
	}
}
