package metg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	_ "taskbench/internal/runtime/p2p"
	_ "taskbench/internal/runtime/serial"
	_ "taskbench/internal/runtime/taskpool"
	"taskbench/internal/stats"
)

// syntheticRunner models a runtime with a fixed per-task overhead: a
// task of duration d achieves efficiency d/(d+overhead). This is the
// idealized curve of Figure 3.
func syntheticRunner(overhead time.Duration, tasks int64, peak float64) Runner {
	return func(iterations int64) core.RunStats {
		perTask := time.Duration(iterations) * time.Microsecond // 1 µs per iteration
		elapsed := time.Duration(tasks) * (perTask + overhead)
		return core.RunStats{
			Elapsed: elapsed,
			Tasks:   tasks,
			Flops:   float64(iterations) * float64(tasks) * peak / 1e6 * float64(time.Microsecond) / float64(time.Second) * 1e6,
			Workers: 1,
		}
	}
}

// flopsRunner builds a runner whose efficiency is exactly
// work/(work+overhead) against peak=1.
func flopsRunner(overhead time.Duration, tasks int64) Runner {
	return func(iterations int64) core.RunStats {
		work := time.Duration(iterations) * time.Microsecond
		elapsed := time.Duration(tasks) * (work + overhead)
		return core.RunStats{
			Elapsed: elapsed,
			Tasks:   tasks,
			// Useful work in "flop" units: 1 flop per second of work
			// against a peak of 1 flop/s.
			Flops:   work.Seconds() * float64(tasks),
			Workers: 1,
		}
	}
}

func TestMETGMatchesOverhead(t *testing.T) {
	// With efficiency = work/(work+ovh), 50% efficiency is exactly at
	// work = overhead, so granularity there is 2×overhead... but METG
	// is defined on granularity = wall×cores/tasks = work+ovh, i.e.
	// 2×overhead at the 50% point.
	overhead := 100 * time.Microsecond
	run := flopsRunner(overhead, 100)
	m, points, kind := Search(run, 1<<20, 1.0, 0, 0.5, 2)
	if kind != Measured {
		t.Fatalf("METG kind = %v, want measured; curve: %+v", kind, points)
	}
	want := 2 * overhead
	ratio := float64(m) / float64(want)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("METG = %v, want ≈ %v (ratio %.2f)", m, want, ratio)
	}
}

func TestMETGOrdering(t *testing.T) {
	// A runtime with 10× the overhead must have ≈10× the METG.
	fast, _, k1 := Search(flopsRunner(10*time.Microsecond, 50), 1<<20, 1.0, 0, 0.5, 2)
	slow, _, k2 := Search(flopsRunner(100*time.Microsecond, 50), 1<<20, 1.0, 0, 0.5, 2)
	if !k1.Reached() || !k2.Reached() {
		t.Fatal("METG not found")
	}
	ratio := float64(slow) / float64(fast)
	if ratio < 5 || ratio > 20 {
		t.Errorf("slow/fast METG ratio = %.1f, want ≈ 10", ratio)
	}
}

func TestMETGNotFound(t *testing.T) {
	// A runtime so slow it never reaches 50%.
	run := func(iterations int64) core.RunStats {
		return core.RunStats{
			Elapsed: time.Hour,
			Tasks:   10,
			Flops:   1, // negligible vs peak
			Workers: 1,
		}
	}
	if _, _, kind := Search(run, 1<<10, 1e12, 0, 0.5, 1); kind.Reached() {
		t.Error("Search claimed to find METG for a hopeless runtime")
	}
}

func TestMETGAllAboveThreshold(t *testing.T) {
	points := []Point{
		{Granularity: 10 * time.Millisecond, Efficiency: 0.99},
		{Granularity: 1 * time.Millisecond, Efficiency: 0.90},
		{Granularity: 100 * time.Microsecond, Efficiency: 0.80},
	}
	m, kind := METG(points, 0.5)
	if kind != UpperBound || m != 100*time.Microsecond {
		t.Errorf("METG = %v, %v; want upper bound 100µs", m, kind)
	}
}

func TestMETGInterpolatesCrossing(t *testing.T) {
	points := []Point{
		{Granularity: 1 * time.Millisecond, Efficiency: 1.0},
		{Granularity: 100 * time.Microsecond, Efficiency: 0.6},
		{Granularity: 10 * time.Microsecond, Efficiency: 0.2},
	}
	m, kind := METG(points, 0.5)
	if kind != Measured {
		t.Fatalf("crossing not found: kind = %v", kind)
	}
	if m >= 100*time.Microsecond || m <= 10*time.Microsecond {
		t.Errorf("METG = %v, want between 10µs and 100µs", m)
	}
}

func TestMETGEmptyCurve(t *testing.T) {
	if _, kind := METG(nil, 0.5); kind.Reached() {
		t.Error("METG on empty curve reported success")
	}
}

// TestMETGMinimumCrossingNonMonotone is the directed regression for
// the break-after-first-bracket bug: on a noisy curve that dips below
// the threshold, recovers, and dips again, METG is the crossing of the
// LAST bracket (smallest granularity), not the first.
func TestMETGMinimumCrossingNonMonotone(t *testing.T) {
	points := []Point{
		{Granularity: 8 * time.Millisecond, Efficiency: 0.9},
		{Granularity: 4 * time.Millisecond, Efficiency: 0.4},
		{Granularity: 2 * time.Millisecond, Efficiency: 0.8},
		{Granularity: 1 * time.Millisecond, Efficiency: 0.45},
	}
	m, kind := METG(points, 0.5)
	if kind != Measured {
		t.Fatalf("kind = %v, want measured", kind)
	}
	// The old code broke after the first bracket (8ms→4ms, crossing
	// above 4ms, worse than the 2ms point) and returned 2ms. The true
	// minimum crossing lies in the last bracket, between 1ms and 2ms.
	if m >= 2*time.Millisecond || m <= 1*time.Millisecond {
		t.Errorf("METG = %v, want the last bracket's crossing in (1ms, 2ms)", m)
	}
	want := time.Duration(stats.InterpLogX(
		float64(2*time.Millisecond), 0.8,
		float64(1*time.Millisecond), 0.45,
		0.5))
	if m != want {
		t.Errorf("METG = %v, want interpolated crossing %v", m, want)
	}
}

// refMETG is a brute-force reference for the property test: the
// minimum over all above-threshold point granularities and all
// adjacent-bracket crossings, written as one obvious pass.
func refMETG(points []Point, threshold float64) (time.Duration, Kind) {
	best := time.Duration(math.MaxInt64)
	kind := NotReached
	for _, p := range points {
		if p.Granularity > 0 && p.Efficiency >= threshold {
			if p.Granularity < best {
				best = p.Granularity
			}
			if kind == NotReached {
				kind = UpperBound
			}
		}
	}
	for k := 0; k+1 < len(points); k++ {
		a, b := points[k], points[k+1]
		if a.Granularity > 0 && b.Granularity > 0 &&
			a.Efficiency >= threshold && b.Efficiency < threshold {
			cross := time.Duration(stats.InterpLogX(
				float64(a.Granularity), a.Efficiency,
				float64(b.Granularity), b.Efficiency,
				threshold))
			if cross < best {
				best = cross
			}
			kind = Measured
		}
	}
	if kind == NotReached {
		return 0, NotReached
	}
	return best, kind
}

// TestMETGPropertyAgainstReference drives METG over randomized,
// deliberately non-monotone efficiency curves and checks value and
// kind against the brute-force reference.
func TestMETGPropertyAgainstReference(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%14
		points := make([]Point, n)
		g := float64((10 + rng.Intn(100))) * float64(time.Millisecond)
		for k := range points {
			points[k] = Point{
				Granularity: time.Duration(g),
				// Uniform noise straddling the threshold keeps multiple
				// crossings likely.
				Efficiency: rng.Float64() * 1.05,
			}
			g /= 1.2 + 2*rng.Float64() // strictly shrinking granularity
		}
		got, gotKind := METG(points, 0.5)
		want, wantKind := refMETG(points, 0.5)
		if got != want || gotKind != wantKind {
			t.Logf("curve %+v:\n got %v (%v)\nwant %v (%v)", points, got, gotKind, want, wantKind)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCurveShape(t *testing.T) {
	run := flopsRunner(50*time.Microsecond, 20)
	points := Curve(run, []int64{1 << 16, 1 << 12, 1 << 8, 1 << 4}, 1.0, 0)
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	// Efficiency must be non-increasing as problems shrink.
	for k := 1; k < len(points); k++ {
		if points[k].Efficiency > points[k-1].Efficiency+1e-9 {
			t.Errorf("efficiency increased from %v to %v as problem shrank",
				points[k-1].Efficiency, points[k].Efficiency)
		}
	}
	// Granularity shrinks too.
	if points[len(points)-1].Granularity >= points[0].Granularity {
		t.Error("granularity did not shrink with problem size")
	}
}

func TestBackendSweepReusesEnginePlan(t *testing.T) {
	mkGraph := func(iterations int64) *core.Graph {
		return core.MustNew(core.Params{
			Timesteps: 10, MaxWidth: 4, Dependence: core.Stencil1D,
			Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: iterations},
		})
	}
	// taskpool is engine-backed (session reuse path); serial is not
	// (rebuild path). Both must produce correct per-point stats.
	for _, name := range []string{"taskpool", "serial"} {
		rt, err := runtime.New(name)
		if err != nil {
			t.Fatalf("runtime.New(%q): %v", name, err)
		}
		sweep, done := BackendSweep(rt, mkGraph)
		defer done()
		want := mkGraph(1).TotalTasks()
		for _, it := range []int64{64, 16, 4} {
			st, err := sweep(it)
			if err != nil {
				t.Fatalf("%s sweep at %d iterations: %v", name, it, err)
			}
			if st.Tasks != want {
				t.Errorf("%s at %d iterations: tasks = %d, want %d", name, it, st.Tasks, want)
			}
			// Flops must track the mutated iteration count, proving the
			// kernel configuration was applied to the reused plan.
			if wantFlops := mkGraph(it).Kernel.FlopsPerTask() * float64(want); st.Flops != wantFlops {
				t.Errorf("%s at %d iterations: flops = %v, want %v", name, it, st.Flops, wantFlops)
			}
		}
	}
}

// Rank-based backends must drive the sweep through a reused
// RankSession: one RankPlan (spans, edges, fabric) per configuration,
// with the mutated kernel applied at every point.
func TestBackendSweepReusesRankPlan(t *testing.T) {
	mkGraph := func(iterations int64) *core.Graph {
		return core.MustNew(core.Params{
			Timesteps: 10, MaxWidth: 4, Dependence: core.Stencil1D,
			Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: iterations},
		})
	}
	rt, err := runtime.New("p2p")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.(runtime.RankBacked); !ok {
		t.Fatal("p2p does not implement runtime.RankBacked")
	}
	sweep, done := BackendSweep(rt, mkGraph)
	defer done()
	want := mkGraph(1).TotalTasks()
	for _, it := range []int64{64, 16, 4} {
		st, err := sweep(it)
		if err != nil {
			t.Fatalf("p2p sweep at %d iterations: %v", it, err)
		}
		if st.Tasks != want {
			t.Errorf("at %d iterations: tasks = %d, want %d", it, st.Tasks, want)
		}
		if wantFlops := mkGraph(it).Kernel.FlopsPerTask() * float64(want); st.Flops != wantFlops {
			t.Errorf("at %d iterations: flops = %v, want %v", it, st.Flops, wantFlops)
		}
	}
}

// A family that varies the DAG shape with the iteration count must
// fall back to per-point rebuilds on engine-backed backends instead of
// silently measuring the frozen template shape.
func TestBackendSweepShapeChangeFallsBack(t *testing.T) {
	rt, err := runtime.New("taskpool")
	if err != nil {
		t.Fatal(err)
	}
	sweep, done := BackendSweep(rt, func(iterations int64) *core.Graph {
		return core.MustNew(core.Params{
			Timesteps: int(4 + iterations), MaxWidth: 4, Dependence: core.Stencil1D,
			Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: iterations},
		})
	})
	defer done()
	for _, it := range []int64{8, 2} {
		st, err := sweep(it)
		if err != nil {
			t.Fatalf("sweep at %d iterations: %v", it, err)
		}
		if want := int64(4+it) * 4; st.Tasks != want {
			t.Errorf("at %d iterations: tasks = %d, want %d (shape must track the family)", it, st.Tasks, want)
		}
	}
}
