package metg

import "time"

// This file implements the paper's §4 relationship between METG and
// the quantities application developers actually care about: the
// smallest problem that weak-scales, and the node count at which
// strong scaling stops paying off.

// WeakScalingFloor returns the smallest per-task granularity that can
// be weak-scaled to the given node count at the target efficiency: by
// definition (§4), exactly METG at that node count. metgAt reports
// METG(threshold) as a function of node count.
func WeakScalingFloor(metgAt func(nodes int) time.Duration, nodes int) time.Duration {
	return metgAt(nodes)
}

// StrongScalingLimit returns the largest node count (≤ maxNodes,
// scanned in powers of two) at which a workload whose task granularity
// is granularityAtOne on a single node still runs at the target
// efficiency. Strong scaling divides the same total work over more
// cores, so granularity shrinks as 1/nodes; scaling stops where the
// shrinking granularity crosses the (typically rising) METG curve —
// the paper's worked example is a 2^18 problem strong-scaling to 64
// nodes (§4, Figure 5).
func StrongScalingLimit(granularityAtOne time.Duration, metgAt func(nodes int) time.Duration, maxNodes int) int {
	limit := 0
	for nodes := 1; nodes <= maxNodes; nodes *= 2 {
		granularity := granularityAtOne / time.Duration(nodes)
		if granularity >= metgAt(nodes) {
			limit = nodes
		} else {
			break
		}
	}
	return limit
}
