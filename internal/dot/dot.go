// Package dot renders task graphs in Graphviz DOT format, the
// visualization counterpart of the paper's Figure 1. Columns become
// ranks of nodes, timesteps flow top to bottom, and every dependence
// edge is drawn, so small graphs can be inspected exactly as the paper
// draws them.
package dot

import (
	"fmt"
	"io"

	"taskbench/internal/core"
)

// Write renders the graph as a DOT digraph. Intended for small graphs
// (the output has one node per task).
func Write(w io.Writer, g *core.Graph) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n", g.Dependence.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=circle, fontsize=10, width=0.35, fixedsize=true];")

	for t := 0; t < g.Timesteps; t++ {
		off := g.OffsetAtTimestep(t)
		width := g.WidthAtTimestep(t)
		fmt.Fprintf(w, "  { rank=same;")
		for i := off; i < off+width; i++ {
			fmt.Fprintf(w, " t%dp%d;", t, i)
		}
		fmt.Fprintln(w, " }")
		for i := off; i < off+width; i++ {
			fmt.Fprintf(w, "  t%dp%d [label=%q];\n", t, i, fmt.Sprintf("%d,%d", t, i))
		}
	}
	for t := 1; t < g.Timesteps; t++ {
		off := g.OffsetAtTimestep(t)
		width := g.WidthAtTimestep(t)
		for i := off; i < off+width; i++ {
			g.DependenciesForPoint(t, i).ForEach(func(dep int) {
				fmt.Fprintf(w, "  t%dp%d -> t%dp%d;\n", t-1, dep, t, i)
			})
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
