package dot

import (
	"strings"
	"testing"

	"taskbench/internal/core"
)

func TestWriteStencil(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 3, MaxWidth: 3, Dependence: core.Stencil1D})
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "stencil_1d"`,
		"t0p0", "t2p2",
		"t0p0 -> t1p0;", // self edge
		"t0p1 -> t1p0;", // right neighbour
		"t1p2 -> t2p1;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Exactly one node per task.
	if n := strings.Count(out, "[label="); n != 9 {
		t.Errorf("node count = %d, want 9", n)
	}
	// Edge count matches the graph.
	if n := strings.Count(out, "->"); int64(n) != g.TotalDependencies() {
		t.Errorf("edge count = %d, want %d", n, g.TotalDependencies())
	}
}

func TestWriteTreeHasNarrowFirstRank(t *testing.T) {
	g := core.MustNew(core.Params{Timesteps: 4, MaxWidth: 8, Dependence: core.Tree})
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "t0p1") {
		t.Error("tree rendered a task outside the active window at t=0")
	}
	if !strings.Contains(out, "t0p0 -> t1p1;") {
		t.Error("fan-out edge missing")
	}
}
