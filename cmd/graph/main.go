// Command graph inspects a Task Bench task graph without running it:
// it prints the structural profile (tasks, edges, critical path,
// parallelism bounds) and can render the graph as Graphviz DOT.
//
//	graph -steps 8 -width 8 -type fft
//	graph -steps 6 -width 8 -type tree -dot > tree.dot
package main

import (
	"fmt"
	"os"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/dot"
	"taskbench/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	emitDot := false
	var rest []string
	for _, a := range args {
		if a == "-dot" {
			emitDot = true
			continue
		}
		rest = append(rest, a)
	}
	app, err := core.ParseArgs(rest)
	if err != nil {
		return err
	}

	if emitDot {
		for _, g := range app.Graphs {
			if err := dot.Write(os.Stdout, g); err != nil {
				return err
			}
		}
		return nil
	}

	for _, g := range app.Graphs {
		p := trace.Profile(g)
		fmt.Printf("graph %d: %s %d×%d\n", g.GraphID, g.Dependence, g.Timesteps, g.MaxWidth)
		fmt.Printf("  tasks              %d\n", p.Tasks)
		fmt.Printf("  dependence edges   %d\n", p.Edges)
		fmt.Printf("  critical path      %d tasks\n", p.CriticalPathLength)
		fmt.Printf("  max width          %d\n", p.MaxWidth)
		fmt.Printf("  avg degree         %.2f deps/task\n", p.AvgDegree)
		fmt.Printf("  payload per step   %d B\n", p.BytesPerStep)
	}
	b := trace.AppBounds(app, time.Millisecond, app.Workers)
	fmt.Printf("bounds at 1ms/task, %d workers: work %v, span %v, lower %v, max speedup %.1fx\n",
		max(app.Workers, 1), b.Work, b.Span, b.Lower, b.MaxSpeedup)
	return nil
}
