// Command loadgen drives a live cluster fleet through a time-varying
// submission pattern and measures what the coordinator does under it:
// admission verdicts, completion latency percentiles, and fleet
// utilization, bucketed into a timeline of aggregation intervals.
//
//	loadgen -coordinator host:7580 -preset burst -duration 2h -time-scale 60 \
//	        -jobs 500 -timeline-csv run.csv -timeline-json run.json
//
// Patterns are written in simulated time and replayed compressed: with
// -time-scale 60 a two-hour burst scenario runs in two real minutes,
// and the emitted timeline is stamped in simulated offsets so it lines
// up with the scenario it models. The total job count is set by -jobs
// regardless of compression.
//
// Rejected submissions (the coordinator's queue-full fast path) are
// resubmitted with jittered exponential back-off up to -retries times,
// per the admission-control contract; the timeline's rejected, retried
// and gave_up columns make the back-pressure — and the load the client
// permanently sheds — visible. Submissions mix the -shapes list
// round-robin, so distinct graph shapes contend the coordinator's
// per-shape configuration cache and run locks the way a real mixed
// workload would.
//
// With -http the fleet-gauge poller reads the coordinator's
// /snapshots.json observability endpoint instead of the control
// protocol (keeping the control connection free for submissions),
// falling back to control-protocol stats if the endpoint fails.
// -report renders a post-run summary with the full client-side latency
// histogram as a console table or a schema-stable JSON report.
//
// -chaos injects a deterministic fault schedule (see internal/chaos)
// into the client's submission path: delays stall submissions, and
// drop/reset rules at the pre-submit point burn a resubmission attempt
// as if the coordinator had rejected the job, so lost submissions stay
// inside the retry budget instead of poisoning the shared control
// connection.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"taskbench/internal/chaos"
	"taskbench/internal/cluster"
	"taskbench/internal/metrics"
	"taskbench/internal/pattern"
	"taskbench/internal/report"
	"taskbench/internal/timeline"
	"taskbench/internal/wire"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	log.SetPrefix("loadgen: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator control address (required)")
	httpAddr := fs.String("http", "", "coordinator observability address (taskbenchd -http); the stats poller reads /snapshots.json from it instead of the control protocol")
	preset := fs.String("preset", "burst", "load shape: "+strings.Join(pattern.PresetNames(), ", "))
	duration := fs.Duration("duration", 2*time.Minute, "simulated length of the run")
	timeScale := fs.Float64("time-scale", 1, "compression factor: simulated seconds per real second")
	jobs := fs.Float64("jobs", 200, "total jobs the pattern integrates to")
	seed := fs.Int64("seed", 0, "Poisson arrival seed; 0 selects deterministic unit spacing")
	interval := fs.Duration("interval", 5*time.Second, "timeline aggregation interval, simulated time")
	shapes := fs.String("shapes", "stencil_1d_periodic/6x8/2,trivial/6x8/2",
		"job shapes to mix round-robin, comma-separated type/WIDTHxSTEPS/RANKS")
	task := fs.Duration("task", 500*time.Microsecond, "busy-wait duration of each task in every job")
	retries := fs.Int("retries", 4, "resubmissions per rejected job before giving up")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "base real-time back-off after a rejection (doubles per attempt)")
	poll := fs.Duration("poll", 100*time.Millisecond, "real-time period of the coordinator stats poller")
	drain := fs.Duration("drain", 60*time.Second, "real-time grace for in-flight jobs after the last arrival")
	chaosFlag := fs.String("chaos", "", "chaos scenario for the submission path: a preset ("+strings.Join(chaos.PresetNames(), ", ")+") or a rule script")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed of the chaos fault schedule")
	csvPath := fs.String("timeline-csv", "", "stream timeline rows as CSV to this file")
	jsonPath := fs.String("timeline-json", "-", "write the timeline JSON document here (- for stdout)")
	reportMode := fs.String("report", "none", "post-run rendering: console (summary + latency histogram), json (machine-readable report), none")
	fs.Parse(args)

	if *coordinator == "" {
		return fmt.Errorf("-coordinator is required")
	}
	if *reportMode != "console" && *reportMode != "json" && *reportMode != "none" {
		return fmt.Errorf("-report must be console, json or none, got %q", *reportMode)
	}
	// In json report mode the report document owns stdout; an untouched
	// -timeline-json default would interleave two JSON documents there,
	// so it yields unless the user asked for it explicitly.
	if *reportMode == "json" && *jsonPath == "-" {
		explicit := false
		fs.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "timeline-json" })
		if explicit {
			return fmt.Errorf("-report json and -timeline-json - both claim stdout; write the timeline to a file")
		}
		*jsonPath = ""
	}
	specs, err := parseShapes(*shapes, *task)
	if err != nil {
		return err
	}
	pat, err := pattern.Preset(*preset, *duration, *jobs)
	if err != nil {
		return err
	}
	var rng *rand.Rand
	if *seed != 0 {
		rng = rand.New(rand.NewSource(*seed))
	}
	var inj *chaos.Injector
	if *chaosFlag != "" {
		sc, err := chaos.Parse(*chaosFlag)
		if err != nil {
			return err
		}
		inj = chaos.NewInjector(sc, *chaosSeed).Fork("client")
		log.Printf("chaos: scenario %s (seed %d)", sc, *chaosSeed)
	}

	var sink func(timeline.Row)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := fmt.Fprintln(f, timeline.CSVHeader); err != nil {
			return err
		}
		sink = func(r timeline.Row) {
			if err := timeline.WriteCSVRow(f, r); err != nil {
				log.Printf("timeline csv: %v", err)
			}
		}
	}
	col := timeline.New(*interval, sink)

	cli, err := cluster.Dial(*coordinator)
	if err != nil {
		return err
	}
	defer cli.Close()
	initCtx, initCancel := context.WithTimeout(context.Background(), 10*time.Second)
	info, err := cli.StatsContext(initCtx)
	initCancel()
	if err != nil {
		return fmt.Errorf("initial stats: %w", err)
	}
	log.Printf("fleet: %d workers, %d slots, queue %d/%d; pattern %s over %v at %gx (peak %.1f jobs/s simulated)",
		info.Workers, info.Concurrency, info.QueueLen, info.QueueCap,
		pat.Name, pat.Duration, *timeScale, pat.PeakRate())

	clock := pattern.NewClock(time.Now(), *timeScale)
	stop := make(chan struct{}) // closed on SIGINT/SIGTERM: stop submitting
	done := make(chan struct{}) // closed when the run is over: stop polling
	var protoErr atomic.Bool    // a lost coordinator fails the run
	var gaveUp, submitted int64

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case s := <-sigs:
			log.Printf("signal %v: draining", s)
			close(stop)
		case <-done:
		}
	}()

	// The stats poller samples the coordinator's gauges into the
	// timeline and advances the streaming window as simulated time
	// passes. Each query carries a deadline so a stalled coordinator
	// (or a chaos-delayed control path) costs one skipped sample, not a
	// wedged poller. With -http the poller prefers the observability
	// endpoint's snapshot ring — keeping the control connection free for
	// submissions — and falls back to control-protocol stats if the
	// endpoint ever fails.
	statsTimeout := 10 * *poll
	if statsTimeout < time.Second {
		statsTimeout = time.Second
	}
	snapPoll := newSnapshotPoller(*httpAddr)
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		tick := time.NewTicker(*poll)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			ctx, cancel := context.WithTimeout(context.Background(), statsTimeout)
			queueLen, running, workers, slots, err := snapPoll.sample(ctx, cli)
			cancel()
			if errors.Is(err, context.DeadlineExceeded) {
				continue
			}
			if err != nil {
				protoErr.Store(true)
				return
			}
			now := clock.Sim(time.Now())
			col.Sample(now, queueLen, running, workers, slots)
			col.Advance(now)
		}
	}()

	// Per-job completion latencies feed a client-side histogram (in
	// simulated seconds) so the post-run report carries the full
	// distribution, not just the timeline's three percentiles.
	latHist := metrics.NewRegistry().Histogram("job_latency_seconds",
		"Simulated submit-to-completion latency per job.", metrics.LatencyBuckets)

	// The submission loop schedules each arrival at its compressed wall
	// instant and hands the job to a goroutine that sees it through
	// rejection back-off and resubmission.
	var jobWG sync.WaitGroup
	arr := pattern.NewArrivals(pat, rng)
	idx := 0
submitting:
	for {
		simAt, ok := arr.Next()
		if !ok {
			break
		}
		if wait := time.Until(clock.Real(simAt)); wait > 0 {
			select {
			case <-stop:
				break submitting
			case <-time.After(wait):
			}
		}
		select {
		case <-stop:
			break submitting
		default:
		}
		spec := specs[idx%len(specs)]
		idx++
		atomic.AddInt64(&submitted, 1)
		jobWG.Add(1)
		go func() {
			defer jobWG.Done()
			if !oneJob(cli, spec, clock, col, latHist, inj, *retries, *backoff) {
				if !protoErr.Load() {
					atomic.AddInt64(&gaveUp, 1)
				}
			}
		}()
		if protoErr.Load() {
			break
		}
	}

	// Drain: in-flight jobs get a real-time grace, then the run is cut.
	drained := make(chan struct{})
	go func() { jobWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(*drain):
		log.Printf("drain timeout after %v with jobs still in flight", *drain)
	}
	close(done)
	pollWG.Wait()

	tl := col.Finish()
	tl.Pattern = pat.Name
	tl.TimeScale = *timeScale
	if err := writeTimeline(*jsonPath, tl); err != nil {
		return err
	}
	t := tl.Totals
	log.Printf("run summary: %d arrivals, %d submitted / %d accepted / %d rejected / %d retried; %d completed, %d failed, %d gave up; p50 %.1fms p95 %.1fms p99 %.1fms (simulated)",
		atomic.LoadInt64(&submitted), t.Submitted, t.Accepted, t.Rejected, t.Retried,
		t.Completed, t.Failed, atomic.LoadInt64(&gaveUp),
		t.P50Millis, t.P95Millis, t.P99Millis)
	if *reportMode != "none" {
		lat := latHist.Snapshot()
		rep := report.FromTimeline(fmt.Sprintf("loadgen %s against %s", pat.Name, *coordinator), tl, &lat)
		var rerr error
		if *reportMode == "json" {
			rerr = rep.WriteJSON(os.Stdout)
		} else {
			rerr = rep.WriteConsole(os.Stdout)
		}
		if rerr != nil {
			return rerr
		}
	}
	if protoErr.Load() {
		return fmt.Errorf("coordinator connection lost mid-run")
	}
	return nil
}

// snapshotPoller reads fleet gauges from the coordinator's
// /snapshots.json observability endpoint when one was given, falling
// back to control-protocol stats permanently (with a single log line)
// the first time the endpoint fails.
type snapshotPoller struct {
	url  string
	http http.Client
}

func newSnapshotPoller(addr string) *snapshotPoller {
	p := &snapshotPoller{}
	if addr != "" {
		p.url = "http://" + addr + "/snapshots.json"
	}
	return p
}

// sample returns (queueLen, jobsRunning, workers, schedulerSlots) from
// whichever source is active.
func (p *snapshotPoller) sample(ctx context.Context, cli *cluster.Client) (int, int, int, int, error) {
	if p.url != "" {
		q, r, w, s, err := p.fetch(ctx)
		if err == nil {
			return q, r, w, s, nil
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("snapshot endpoint %s: %v; falling back to control-protocol stats", p.url, err)
			p.url = ""
		} else {
			return 0, 0, 0, 0, context.DeadlineExceeded
		}
	}
	s, err := cli.StatsContext(ctx)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return s.QueueLen, s.JobsRunning, s.Workers, s.Concurrency, nil
}

func (p *snapshotPoller) fetch(ctx context.Context) (int, int, int, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url, nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, 0, fmt.Errorf("status %s", resp.Status)
	}
	var reply struct {
		Snapshots []metrics.Snapshot `json:"snapshots"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return 0, 0, 0, 0, err
	}
	if len(reply.Snapshots) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("empty snapshot ring")
	}
	g := reply.Snapshots[len(reply.Snapshots)-1].Gauges
	return int(g[cluster.MetricQueueDepth]), int(g[cluster.MetricJobsRunning]),
		int(g[cluster.MetricWorkersLive]), int(g[cluster.MetricSchedulerSlots]), nil
}

// oneJob submits the spec and follows it to an outcome, resubmitting
// with jittered exponential back-off when the coordinator rejects it
// (or a chaos rule eats the submission). It reports whether the job
// reached a terminal verdict (completed or failed); false means it
// gave up after exhausting its resubmission budget or the connection
// died.
func oneJob(cli *cluster.Client, spec wire.AppSpec, clock pattern.Clock, col *timeline.Collector, lat *metrics.Histogram, inj *chaos.Injector, retries int, backoff time.Duration) bool {
	for attempt := 0; ; attempt++ {
		submitSim := clock.Sim(time.Now())
		act := inj.Point("pre-submit")
		if act.Delay > 0 {
			time.Sleep(act.Delay)
			submitSim = clock.Sim(time.Now())
		}
		col.Submitted(submitSim)
		if act.Drop || act.Reset {
			// The scripted fault ate the submission before the
			// coordinator saw it. That burns an attempt from the same
			// budget as a rejection — a real lost frame costs the client
			// a timeout-and-resubmit round.
			now := clock.Sim(time.Now())
			if attempt >= retries {
				col.GaveUp(now)
				return false
			}
			sleepBackoff(backoff, attempt)
			col.Retried(clock.Sim(time.Now()))
			continue
		}
		p, err := cli.SubmitAsync(spec)
		if err != nil {
			return false
		}
		res, err := p.Wait()
		if err != nil {
			return false
		}
		now := clock.Sim(time.Now())
		if res.Rejected {
			col.Rejected(now)
			if attempt >= retries {
				col.GaveUp(now)
				return false
			}
			sleepBackoff(backoff, attempt)
			col.Retried(clock.Sim(time.Now()))
			continue
		}
		// Admission is synchronous on the coordinator, so the verdict
		// belongs to the submission instant.
		col.Accepted(submitSim)
		lat.ObserveDuration(now - submitSim)
		if res.Err != nil {
			col.Failed(now, now-submitSim)
		} else {
			col.Completed(now, now-submitSim)
		}
		return true
	}
}

// sleepBackoff sleeps the attempt's back-off: base doubled per attempt,
// jittered uniformly over [d/2, 3d/2) so synchronized rejections don't
// resubmit in lockstep and re-collide on the same queue-full instant.
func sleepBackoff(base time.Duration, attempt int) {
	if attempt > 16 {
		attempt = 16
	}
	d := int64(base) << uint(attempt)
	time.Sleep(time.Duration(d/2 + rand.Int63n(d+1)))
}

// parseShapes turns the -shapes list ("type/WIDTHxSTEPS/RANKS", comma
// separated) into submission specs, all running busy-wait tasks of the
// given duration.
func parseShapes(s string, task time.Duration) ([]wire.AppSpec, error) {
	var specs []wire.AppSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("shape %q: want type/WIDTHxSTEPS/RANKS", item)
		}
		wxs := strings.SplitN(parts[1], "x", 2)
		if len(wxs) != 2 {
			return nil, fmt.Errorf("shape %q: want WIDTHxSTEPS, got %q", item, parts[1])
		}
		width, err1 := strconv.Atoi(wxs[0])
		steps, err2 := strconv.Atoi(wxs[1])
		ranks, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || width <= 0 || steps <= 0 || ranks <= 0 {
			return nil, fmt.Errorf("shape %q: bad dimensions", item)
		}
		specs = append(specs, wire.AppSpec{
			Workers: ranks,
			Graphs: []wire.GraphSpec{{
				Steps: steps, Width: width, Type: parts[0],
				Kernel: "busy_wait", WaitNanos: int64(task),
				Output: 64,
			}},
		})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no shapes in %q", s)
	}
	return specs, nil
}

// writeTimeline writes the timeline document to path ("-" = stdout).
func writeTimeline(path string, tl timeline.Timeline) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return timeline.WriteJSON(os.Stdout, tl)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := timeline.WriteJSON(f, tl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
