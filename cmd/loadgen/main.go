// Command loadgen drives a live cluster fleet through a time-varying
// submission pattern and measures what the coordinator does under it:
// admission verdicts, completion latency percentiles, and fleet
// utilization, bucketed into a timeline of aggregation intervals.
//
//	loadgen -coordinator host:7580 -preset burst -duration 2h -time-scale 60 \
//	        -jobs 500 -timeline-csv run.csv -timeline-json run.json
//
// Patterns are written in simulated time and replayed compressed: with
// -time-scale 60 a two-hour burst scenario runs in two real minutes,
// and the emitted timeline is stamped in simulated offsets so it lines
// up with the scenario it models. The total job count is set by -jobs
// regardless of compression.
//
// Rejected submissions (the coordinator's queue-full fast path) are
// resubmitted with jittered exponential back-off up to -retries times,
// per the admission-control contract; the timeline's rejected, retried
// and gave_up columns make the back-pressure — and the load the client
// permanently sheds — visible. Submissions mix the -shapes list
// round-robin, so distinct graph shapes contend the coordinator's
// per-shape configuration cache and run locks the way a real mixed
// workload would.
//
// -chaos injects a deterministic fault schedule (see internal/chaos)
// into the client's submission path: delays stall submissions, and
// drop/reset rules at the pre-submit point burn a resubmission attempt
// as if the coordinator had rejected the job, so lost submissions stay
// inside the retry budget instead of poisoning the shared control
// connection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"taskbench/internal/chaos"
	"taskbench/internal/cluster"
	"taskbench/internal/pattern"
	"taskbench/internal/timeline"
	"taskbench/internal/wire"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	log.SetPrefix("loadgen: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator control address (required)")
	preset := fs.String("preset", "burst", "load shape: "+strings.Join(pattern.PresetNames(), ", "))
	duration := fs.Duration("duration", 2*time.Minute, "simulated length of the run")
	timeScale := fs.Float64("time-scale", 1, "compression factor: simulated seconds per real second")
	jobs := fs.Float64("jobs", 200, "total jobs the pattern integrates to")
	seed := fs.Int64("seed", 0, "Poisson arrival seed; 0 selects deterministic unit spacing")
	interval := fs.Duration("interval", 5*time.Second, "timeline aggregation interval, simulated time")
	shapes := fs.String("shapes", "stencil_1d_periodic/6x8/2,trivial/6x8/2",
		"job shapes to mix round-robin, comma-separated type/WIDTHxSTEPS/RANKS")
	task := fs.Duration("task", 500*time.Microsecond, "busy-wait duration of each task in every job")
	retries := fs.Int("retries", 4, "resubmissions per rejected job before giving up")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "base real-time back-off after a rejection (doubles per attempt)")
	poll := fs.Duration("poll", 100*time.Millisecond, "real-time period of the coordinator stats poller")
	drain := fs.Duration("drain", 60*time.Second, "real-time grace for in-flight jobs after the last arrival")
	chaosFlag := fs.String("chaos", "", "chaos scenario for the submission path: a preset ("+strings.Join(chaos.PresetNames(), ", ")+") or a rule script")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed of the chaos fault schedule")
	csvPath := fs.String("timeline-csv", "", "stream timeline rows as CSV to this file")
	jsonPath := fs.String("timeline-json", "-", "write the timeline JSON document here (- for stdout)")
	fs.Parse(args)

	if *coordinator == "" {
		return fmt.Errorf("-coordinator is required")
	}
	specs, err := parseShapes(*shapes, *task)
	if err != nil {
		return err
	}
	pat, err := pattern.Preset(*preset, *duration, *jobs)
	if err != nil {
		return err
	}
	var rng *rand.Rand
	if *seed != 0 {
		rng = rand.New(rand.NewSource(*seed))
	}
	var inj *chaos.Injector
	if *chaosFlag != "" {
		sc, err := chaos.Parse(*chaosFlag)
		if err != nil {
			return err
		}
		inj = chaos.NewInjector(sc, *chaosSeed).Fork("client")
		log.Printf("chaos: scenario %s (seed %d)", sc, *chaosSeed)
	}

	var sink func(timeline.Row)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := fmt.Fprintln(f, timeline.CSVHeader); err != nil {
			return err
		}
		sink = func(r timeline.Row) {
			if err := timeline.WriteCSVRow(f, r); err != nil {
				log.Printf("timeline csv: %v", err)
			}
		}
	}
	col := timeline.New(*interval, sink)

	cli, err := cluster.Dial(*coordinator)
	if err != nil {
		return err
	}
	defer cli.Close()
	initCtx, initCancel := context.WithTimeout(context.Background(), 10*time.Second)
	info, err := cli.StatsContext(initCtx)
	initCancel()
	if err != nil {
		return fmt.Errorf("initial stats: %w", err)
	}
	log.Printf("fleet: %d workers, %d slots, queue %d/%d; pattern %s over %v at %gx (peak %.1f jobs/s simulated)",
		info.Workers, info.Concurrency, info.QueueLen, info.QueueCap,
		pat.Name, pat.Duration, *timeScale, pat.PeakRate())

	clock := pattern.NewClock(time.Now(), *timeScale)
	stop := make(chan struct{}) // closed on SIGINT/SIGTERM: stop submitting
	done := make(chan struct{}) // closed when the run is over: stop polling
	var protoErr atomic.Bool    // a lost coordinator fails the run
	var gaveUp, submitted int64

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case s := <-sigs:
			log.Printf("signal %v: draining", s)
			close(stop)
		case <-done:
		}
	}()

	// The stats poller samples the coordinator's gauges into the
	// timeline and advances the streaming window as simulated time
	// passes. Each query carries a deadline so a stalled coordinator
	// (or a chaos-delayed control path) costs one skipped sample, not a
	// wedged poller.
	statsTimeout := 10 * *poll
	if statsTimeout < time.Second {
		statsTimeout = time.Second
	}
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		tick := time.NewTicker(*poll)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			ctx, cancel := context.WithTimeout(context.Background(), statsTimeout)
			s, err := cli.StatsContext(ctx)
			cancel()
			if errors.Is(err, context.DeadlineExceeded) {
				continue
			}
			if err != nil {
				protoErr.Store(true)
				return
			}
			now := clock.Sim(time.Now())
			col.Sample(now, s.QueueLen, s.JobsRunning, s.Workers, s.Concurrency)
			col.Advance(now)
		}
	}()

	// The submission loop schedules each arrival at its compressed wall
	// instant and hands the job to a goroutine that sees it through
	// rejection back-off and resubmission.
	var jobWG sync.WaitGroup
	arr := pattern.NewArrivals(pat, rng)
	idx := 0
submitting:
	for {
		simAt, ok := arr.Next()
		if !ok {
			break
		}
		if wait := time.Until(clock.Real(simAt)); wait > 0 {
			select {
			case <-stop:
				break submitting
			case <-time.After(wait):
			}
		}
		select {
		case <-stop:
			break submitting
		default:
		}
		spec := specs[idx%len(specs)]
		idx++
		atomic.AddInt64(&submitted, 1)
		jobWG.Add(1)
		go func() {
			defer jobWG.Done()
			if !oneJob(cli, spec, clock, col, inj, *retries, *backoff) {
				if !protoErr.Load() {
					atomic.AddInt64(&gaveUp, 1)
				}
			}
		}()
		if protoErr.Load() {
			break
		}
	}

	// Drain: in-flight jobs get a real-time grace, then the run is cut.
	drained := make(chan struct{})
	go func() { jobWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(*drain):
		log.Printf("drain timeout after %v with jobs still in flight", *drain)
	}
	close(done)
	pollWG.Wait()

	tl := col.Finish()
	tl.Pattern = pat.Name
	tl.TimeScale = *timeScale
	if err := writeTimeline(*jsonPath, tl); err != nil {
		return err
	}
	t := tl.Totals
	log.Printf("run summary: %d arrivals, %d submitted / %d accepted / %d rejected / %d retried; %d completed, %d failed, %d gave up; p50 %.1fms p95 %.1fms p99 %.1fms (simulated)",
		atomic.LoadInt64(&submitted), t.Submitted, t.Accepted, t.Rejected, t.Retried,
		t.Completed, t.Failed, atomic.LoadInt64(&gaveUp),
		t.P50Millis, t.P95Millis, t.P99Millis)
	if protoErr.Load() {
		return fmt.Errorf("coordinator connection lost mid-run")
	}
	return nil
}

// oneJob submits the spec and follows it to an outcome, resubmitting
// with jittered exponential back-off when the coordinator rejects it
// (or a chaos rule eats the submission). It reports whether the job
// reached a terminal verdict (completed or failed); false means it
// gave up after exhausting its resubmission budget or the connection
// died.
func oneJob(cli *cluster.Client, spec wire.AppSpec, clock pattern.Clock, col *timeline.Collector, inj *chaos.Injector, retries int, backoff time.Duration) bool {
	for attempt := 0; ; attempt++ {
		submitSim := clock.Sim(time.Now())
		act := inj.Point("pre-submit")
		if act.Delay > 0 {
			time.Sleep(act.Delay)
			submitSim = clock.Sim(time.Now())
		}
		col.Submitted(submitSim)
		if act.Drop || act.Reset {
			// The scripted fault ate the submission before the
			// coordinator saw it. That burns an attempt from the same
			// budget as a rejection — a real lost frame costs the client
			// a timeout-and-resubmit round.
			now := clock.Sim(time.Now())
			if attempt >= retries {
				col.GaveUp(now)
				return false
			}
			sleepBackoff(backoff, attempt)
			col.Retried(clock.Sim(time.Now()))
			continue
		}
		p, err := cli.SubmitAsync(spec)
		if err != nil {
			return false
		}
		res, err := p.Wait()
		if err != nil {
			return false
		}
		now := clock.Sim(time.Now())
		if res.Rejected {
			col.Rejected(now)
			if attempt >= retries {
				col.GaveUp(now)
				return false
			}
			sleepBackoff(backoff, attempt)
			col.Retried(clock.Sim(time.Now()))
			continue
		}
		// Admission is synchronous on the coordinator, so the verdict
		// belongs to the submission instant.
		col.Accepted(submitSim)
		if res.Err != nil {
			col.Failed(now, now-submitSim)
		} else {
			col.Completed(now, now-submitSim)
		}
		return true
	}
}

// sleepBackoff sleeps the attempt's back-off: base doubled per attempt,
// jittered uniformly over [d/2, 3d/2) so synchronized rejections don't
// resubmit in lockstep and re-collide on the same queue-full instant.
func sleepBackoff(base time.Duration, attempt int) {
	if attempt > 16 {
		attempt = 16
	}
	d := int64(base) << uint(attempt)
	time.Sleep(time.Duration(d/2 + rand.Int63n(d+1)))
}

// parseShapes turns the -shapes list ("type/WIDTHxSTEPS/RANKS", comma
// separated) into submission specs, all running busy-wait tasks of the
// given duration.
func parseShapes(s string, task time.Duration) ([]wire.AppSpec, error) {
	var specs []wire.AppSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("shape %q: want type/WIDTHxSTEPS/RANKS", item)
		}
		wxs := strings.SplitN(parts[1], "x", 2)
		if len(wxs) != 2 {
			return nil, fmt.Errorf("shape %q: want WIDTHxSTEPS, got %q", item, parts[1])
		}
		width, err1 := strconv.Atoi(wxs[0])
		steps, err2 := strconv.Atoi(wxs[1])
		ranks, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || width <= 0 || steps <= 0 || ranks <= 0 {
			return nil, fmt.Errorf("shape %q: bad dimensions", item)
		}
		specs = append(specs, wire.AppSpec{
			Workers: ranks,
			Graphs: []wire.GraphSpec{{
				Steps: steps, Width: width, Type: parts[0],
				Kernel: "busy_wait", WaitNanos: int64(task),
				Output: 64,
			}},
		})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no shapes in %q", s)
	}
	return specs, nil
}

// writeTimeline writes the timeline document to path ("-" = stdout).
func writeTimeline(path string, tl timeline.Timeline) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return timeline.WriteJSON(os.Stdout, tl)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := timeline.WriteJSON(f, tl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
