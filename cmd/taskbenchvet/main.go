// Command taskbenchvet is the repository's custom static-analysis
// suite: a multichecker over the analyzers in internal/lint that
// enforce the invariants the benchmark's results depend on — the
// zero-allocation hot path (hotpathalloc), the coordinator's lock
// hierarchy (lockorder), the append-only wire contract
// (wireexhaustive) and panic-free metrics registration (metricsonce).
//
// Usage:
//
//	go run ./cmd/taskbenchvet ./...
//	go run ./cmd/taskbenchvet -analyzers hotpathalloc,lockorder ./internal/cluster
//
// The exit status is 1 when any analyzer reports a finding, 2 on a
// loading or internal error — the same convention as go vet, so the CI
// lint lane can treat findings as errors. See DESIGN.md §14 for the
// annotation conventions (//taskbench:hotpath, //taskbench:allocok)
// and the lock-ordering table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"taskbench/internal/lint"
)

func main() {
	analyzersFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: taskbenchvet [-analyzers a,b] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *analyzersFlag != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*analyzersFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "taskbenchvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	session, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskbenchvet:", err)
		os.Exit(2)
	}

	findings := 0
	for _, a := range analyzers {
		diags, err := session.Run(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taskbenchvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", session.Fset.Position(d.Pos), d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "taskbenchvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
