// Command metg measures minimum effective task granularity (paper §4)
// for a real runtime backend on this host, for a live multi-process
// cluster fleet, or for a simulated system profile on a simulated
// cluster:
//
//	metg -backend p2p                         # real, this host
//	metg -cluster host:7580 -nodes 6          # real, a taskbenchd fleet
//	metg -profile "mpi p2p" -nodes 64         # simulated Cori
//
// It prints the efficiency-vs-granularity curve (the data behind
// Figures 3 and 7) followed by the METG(50%) value.
package main

import (
	"flag"
	"fmt"
	"os"
	stdruntime "runtime"
	"runtime/pprof"
	"time"

	"taskbench/internal/cluster"
	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/metg"
	"taskbench/internal/report"
	"taskbench/internal/runtime"
	_ "taskbench/internal/runtime/all"
	"taskbench/internal/sim"
	"taskbench/internal/wire"
)

// main delegates to run so that deferred profile writers flush before
// the process exits with a status code.
func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		backend    = flag.String("backend", "", "real runtime backend to measure")
		clusterAt  = flag.String("cluster", "", "coordinator address of a live taskbenchd fleet to measure")
		profile    = flag.String("profile", "", "simulator profile to measure (e.g. \"mpi p2p\")")
		nodes      = flag.Int("nodes", 1, "simulated node count (with -profile); total rank count (with -cluster, <=1 = one rank per worker)")
		steps      = flag.Int("steps", 20, "graph height")
		width      = flag.Int("width", 0, "graph width (0 = one column per worker / core)")
		pattern    = flag.String("type", "stencil_1d", "dependence pattern")
		radix      = flag.Int("radix", 0, "dependencies per task (nearest/spread)")
		threshold  = flag.Float64("threshold", 0.5, "efficiency threshold")
		maxIters   = flag.Int64("maxiters", 0, "top of the problem-size sweep (0 = auto)")
		density    = flag.Int("density", 2, "sweep points per doubling")
		reportMode = flag.String("report", "console", "sweep rendering: console (aligned table), json (machine-readable report), none (METG line only)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile after the sweep")
	)
	flag.Parse()
	if *reportMode != "console" && *reportMode != "json" && *reportMode != "none" {
		fmt.Fprintf(os.Stderr, "metg: -report must be console, json or none, got %q\n", *reportMode)
		return 2
	}

	modes := 0
	for _, set := range []bool{*backend != "", *clusterAt != "", *profile != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "metg: specify exactly one of -backend, -cluster or -profile")
		fmt.Fprintln(os.Stderr, "backends:", runtime.Names())
		return 2
	}

	dep, err := core.ParseDependenceType(*pattern)
	if err != nil {
		return fatal(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// The named return lets the deferred writer escalate a profile
		// failure into a nonzero exit even after a successful sweep.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				code = fatal(err)
				return
			}
			defer f.Close()
			stdruntime.GC() // settle live-object counts before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				code = fatal(err)
			}
		}()
	}

	var runner metg.Runner
	var peak float64
	top := *maxIters

	if *backend != "" {
		rt, err := runtime.New(*backend)
		if err != nil {
			return fatal(err)
		}
		w := *width
		if w == 0 {
			w = 4
		}
		// Engine-backed backends reuse one plan across the whole
		// sweep: shared-memory ones Reset an exec.Plan per point,
		// rank-based ones Reset an exec.RankPlan (spans, cross-rank
		// edges, fabric wiring) per point.
		sweep, done := metg.BackendSweep(rt, func(iterations int64) *core.Graph {
			return core.MustNew(core.Params{
				Timesteps: *steps, MaxWidth: w, Dependence: dep, Radix: *radix,
				Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: iterations},
			})
		})
		defer done()
		runner = func(iterations int64) core.RunStats {
			st, err := sweep(iterations)
			if err != nil {
				die(err)
			}
			return st
		}
		cal := kernels.Calibrate()
		peak = cal.FlopsPerSecondPerCore * float64(runner(1).Workers)
		if top == 0 {
			top = 1 << 16
		}
	} else if *clusterAt != "" {
		cli, err := cluster.Dial(*clusterAt)
		if err != nil {
			return fatal(err)
		}
		defer cli.Close()
		// In cluster mode -nodes is the total rank count across the
		// fleet. Only an *unset* -nodes defers to the coordinator's
		// default of one rank per registered worker — an explicit
		// `-nodes 1` means a genuine 1-rank measurement.
		ranks, nodesSet := 0, false
		flag.Visit(func(f *flag.Flag) { nodesSet = nodesSet || f.Name == "nodes" })
		if nodesSet {
			if *nodes < 1 {
				fmt.Fprintln(os.Stderr, "metg: -nodes must be at least 1")
				return 2
			}
			ranks = *nodes
		}
		w := *width
		if w == 0 {
			if ranks == 0 {
				// The fleet size (and so the defaulted rank count) is
				// unknown client-side; a fixed default width would
				// strand ranks on larger fleets and silently cap
				// measurable efficiency below the threshold.
				fmt.Fprintln(os.Stderr, "metg: -cluster needs -nodes (total ranks) or an explicit -width")
				return 2
			}
			w = 4 * ranks
		}
		// Every point of the sweep shares one graph shape, so the
		// coordinator reuses a single prepared configuration (plans,
		// payload rows, live mesh) and only the kernel size travels.
		runner = func(iterations int64) core.RunStats {
			st, err := cli.Run(wire.AppSpec{
				Workers: ranks,
				Graphs: []wire.GraphSpec{{
					Steps: *steps, Width: w, Type: dep.String(), Radix: *radix,
					Kernel: kernels.ComputeBound.String(), Iterations: iterations,
				}},
			})
			if err != nil {
				die(err)
			}
			return st
		}
		// Peak is calibrated locally and scaled by the fleet's rank
		// count — exact when the fleet shares this host's core type,
		// an approximation otherwise (as with any cross-machine peak).
		cal := kernels.Calibrate()
		peak = cal.FlopsPerSecondPerCore * float64(runner(1).Workers)
		if top == 0 {
			top = 1 << 16
		}
	} else {
		p, err := sim.ProfileByName(*profile)
		if err != nil {
			return fatal(err)
		}
		m := sim.Cori(*nodes)
		wpn := 32
		if *width > 0 {
			wpn = *width / *nodes
		}
		w := sim.Workload{Dependence: dep, Radix: *radix, Steps: *steps, WidthPerNode: wpn}
		runner = metg.Runner(w.Runner(m, p))
		peak = m.PeakFlops()
		if top == 0 {
			top = 1 << 31
		}
	}

	value, points, kind := metg.Search(runner, top, peak, 0, *threshold, *density)
	title := "metg sweep"
	switch {
	case *backend != "":
		title += " (backend " + *backend + ")"
	case *clusterAt != "":
		title += " (cluster " + *clusterAt + ")"
	default:
		title += " (profile " + *profile + ")"
	}
	rep := report.FromMETG(title, points, value, kind, *threshold)
	switch *reportMode {
	case "json":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return fatal(err)
		}
	case "console":
		if err := rep.WriteConsole(os.Stdout); err != nil {
			return fatal(err)
		}
	}
	// The METG line is the headline contract scripts grep for; it
	// prints in every mode, after whichever rendering was chosen — to
	// stderr in json mode, so stdout stays one parseable document.
	headline := os.Stdout
	if *reportMode == "json" {
		headline = os.Stderr
	}
	switch kind {
	case metg.Measured:
		fmt.Fprintf(headline, "METG(%.0f%%) = %v\n", *threshold*100, value.Round(time.Nanosecond))
	case metg.UpperBound:
		// Every measured point stayed above the threshold, so the
		// smallest observed granularity only bounds METG from above.
		fmt.Fprintf(headline, "METG(%.0f%%) ≤ %v (upper bound: curve never dropped below threshold)\n",
			*threshold*100, value.Round(time.Nanosecond))
	default:
		fmt.Fprintf(headline, "METG(%.0f%%): never reached\n", *threshold*100)
		return 1
	}
	return 0
}

// fatal reports an error and returns the exit code for run, letting
// deferred profile writers flush on the way out.
func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "metg:", err)
	return 1
}

// die aborts from inside a sweep callback, where no error return path
// exists. The CPU profile is stopped first so a partial profile is
// still readable.
func die(err error) {
	pprof.StopCPUProfile()
	fmt.Fprintln(os.Stderr, "metg:", err)
	os.Exit(1)
}
