// Command taskbenchd runs the cluster-mode daemons: a coordinator that
// accepts benchmark jobs and fans them out over a fleet, and workers
// that host rank spans of distributed runs in their own processes.
//
//	taskbenchd coordinator -listen 0.0.0.0:7580
//	taskbenchd worker -coordinator host:7580 -name node1 [-advertise 10.0.0.5]
//
// Clients submit wire.AppSpec jobs to the coordinator — interactively
// with `metg -cluster host:7580`, or programmatically through
// internal/cluster.Client. The scheduler runs up to -concurrency jobs
// at once (different shapes overlap across the fleet; same-shape jobs
// pipeline over their shared prepared configuration), re-runs jobs
// whose workers died up to -retries times, and rejects submissions
// immediately once the -queue deep backlog is full. Jobs with the same
// graph shape share one prepared configuration (plans, payload rows,
// live TCP mesh) across requests, so sweeps pay mesh establishment
// once.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taskbench/internal/cluster"
	"taskbench/internal/wire"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "coordinator":
		err = runCoordinator(os.Args[2:])
	case "worker":
		err = runWorker(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "taskbenchd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("taskbenchd: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  taskbenchd coordinator [-listen addr] [-heartbeat d] [-timeout d] [-job-timeout d]
                         [-concurrency n] [-retries n] [-queue n] [-proto json|binary]
  taskbenchd worker -coordinator addr [-name s] [-advertise host] [-proto json|binary]`)
}

func runCoordinator(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7580", "control address to listen on")
	heartbeat := fs.Duration("heartbeat", time.Second, "worker heartbeat interval")
	timeout := fs.Duration("timeout", 5*time.Second, "heartbeat timeout declaring a worker dead")
	jobTimeout := fs.Duration("job-timeout", 10*time.Minute, "per-job run timeout")
	concurrency := fs.Int("concurrency", 4, "scheduler slots: jobs that may run across the fleet at once")
	retries := fs.Int("retries", 2, "re-runs per job when workers die mid-run (0 disables retry)")
	queue := fs.Int("queue", 64, "job queue depth; submissions beyond it are rejected immediately")
	proto := fs.String("proto", "binary", "control frame format to negotiate: binary or json (json pins every conversation to the debug format)")
	fs.Parse(args)
	if *retries < 0 {
		*retries = 0
	}
	if err := checkProto(*proto); err != nil {
		return err
	}

	coord, err := cluster.Start(cluster.Options{
		Listen:            *listen,
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *timeout,
		JobTimeout:        *jobTimeout,
		Concurrency:       *concurrency,
		// -retries counts RE-runs; MaxAttempts counts total runs.
		MaxAttempts: *retries + 1,
		QueueDepth:  *queue,
		Proto:       *proto,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	log.Printf("taskbenchd: coordinator on %s; submit jobs with `metg -cluster %s`", coord.Addr(), coord.Addr())
	waitForSignal()
	return nil
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "127.0.0.1:7580", "coordinator control address")
	name := fs.String("name", "", "worker name in coordinator logs (default hostname)")
	advertise := fs.String("advertise", "127.0.0.1", "host peers dial for rank data connections")
	proto := fs.String("proto", "binary", "control frame format to offer the coordinator: binary or json")
	fs.Parse(args)
	if err := checkProto(*proto); err != nil {
		return err
	}

	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		}
	}
	w := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Advertise:   *advertise,
		Proto:       *proto,
		Logf:        log.Printf,
	})
	go func() {
		waitForSignal()
		w.Close()
	}()
	return w.Run()
}

func checkProto(p string) error {
	if p != wire.ProtoJSON && p != wire.ProtoBinary {
		return fmt.Errorf("-proto must be %q or %q, got %q", wire.ProtoJSON, wire.ProtoBinary, p)
	}
	return nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	log.Printf("taskbenchd: shutting down")
}
