// Command taskbenchd runs the cluster-mode daemons: a coordinator that
// accepts benchmark jobs and fans them out over a fleet, and workers
// that host rank spans of distributed runs in their own processes.
//
//	taskbenchd coordinator -listen 0.0.0.0:7580
//	taskbenchd worker -coordinator host:7580 -name node1 [-advertise 10.0.0.5]
//
// Clients submit wire.AppSpec jobs to the coordinator — interactively
// with `metg -cluster host:7580`, or programmatically through
// internal/cluster.Client. The scheduler runs up to -concurrency jobs
// at once (different shapes overlap across the fleet; same-shape jobs
// pipeline over their shared prepared configuration), re-runs jobs
// whose workers died up to -retries times, and rejects submissions
// immediately once the -queue deep backlog is full. Jobs with the same
// graph shape share one prepared configuration (plans, payload rows,
// live TCP mesh) across requests, so sweeps pay mesh establishment
// once.
//
// The fleet is elastic: workers may join mid-run (queued jobs re-plan
// over the grown fleet) and leave gracefully — a worker started with
// -drain-on SIGTERM answers the first SIGTERM by announcing a drain,
// finishing its in-flight runs, and exiting once the coordinator
// releases it. -chaos injects a deterministic fault schedule (see
// internal/chaos) for robustness testing.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"taskbench/internal/chaos"
	"taskbench/internal/cluster"
	"taskbench/internal/wire"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "coordinator":
		err = runCoordinator(os.Args[2:])
	case "worker":
		err = runWorker(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "taskbenchd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("taskbenchd: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  taskbenchd coordinator [-listen addr] [-heartbeat d] [-timeout d] [-job-timeout d]
                         [-concurrency n] [-retries n] [-queue n] [-max-configs n]
                         [-drain-timeout d] [-proto json|binary] [-chaos scenario]
                         [-http addr] [-snapshot-interval d] [-snapshot-retention n]
  taskbenchd worker -coordinator addr [-name s] [-advertise host] [-proto json|binary]
                    [-drain-on SIGTERM] [-chaos scenario] [-chaos-seed n]`)
}

func runCoordinator(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7580", "control address to listen on")
	heartbeat := fs.Duration("heartbeat", time.Second, "worker heartbeat interval")
	timeout := fs.Duration("timeout", 5*time.Second, "heartbeat timeout declaring a worker dead")
	jobTimeout := fs.Duration("job-timeout", 10*time.Minute, "per-job run timeout")
	concurrency := fs.Int("concurrency", 4, "scheduler slots: jobs that may run across the fleet at once")
	retries := fs.Int("retries", 2, "re-runs per job when workers die mid-run (0 disables retry)")
	queue := fs.Int("queue", 64, "job queue depth; submissions beyond it are rejected immediately")
	maxConfigs := fs.Int("max-configs", 32, "prepared shape configurations kept live; cold ones are evicted LRU")
	drainTimeout := fs.Duration("drain-timeout", 0, "grace for a draining worker's in-flight runs before it is declared dead (default -job-timeout)")
	proto := fs.String("proto", "binary", "control frame format to negotiate: binary or json (json pins every conversation to the debug format)")
	httpAddr := fs.String("http", "", "serve observability endpoints (/metrics /healthz /snapshots.json) on this address; empty disables")
	snapInterval := fs.Duration("snapshot-interval", time.Second, "metrics snapshot sampling interval (with -http)")
	snapRetention := fs.Int("snapshot-retention", 300, "snapshots retained in the /snapshots.json ring (with -http)")
	chaosFlag := fs.String("chaos", "", "chaos scenario for worker control conversations: a preset ("+strings.Join(chaos.PresetNames(), ", ")+") or a rule script")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed of the chaos fault schedule")
	fs.Parse(args)
	if *retries < 0 {
		*retries = 0
	}
	if err := checkProto(*proto); err != nil {
		return err
	}
	inj, err := parseChaos(*chaosFlag, *chaosSeed)
	if err != nil {
		return err
	}

	coord, err := cluster.Start(cluster.Options{
		Listen:            *listen,
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *timeout,
		JobTimeout:        *jobTimeout,
		Concurrency:       *concurrency,
		// -retries counts RE-runs; MaxAttempts counts total runs.
		MaxAttempts:  *retries + 1,
		QueueDepth:   *queue,
		MaxConfigs:   *maxConfigs,
		DrainTimeout: *drainTimeout,
		Proto:        *proto,
		Chaos:        inj,
		Logf:         log.Printf,

		HTTPAddr:          *httpAddr,
		SnapshotInterval:  *snapInterval,
		SnapshotRetention: *snapRetention,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	log.Printf("taskbenchd: coordinator on %s; submit jobs with `metg -cluster %s`", coord.Addr(), coord.Addr())
	waitForSignal()
	return nil
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "127.0.0.1:7580", "coordinator control address")
	name := fs.String("name", "", "worker name in coordinator logs (default hostname)")
	advertise := fs.String("advertise", "127.0.0.1", "host peers dial for rank data connections")
	proto := fs.String("proto", "binary", "control frame format to offer the coordinator: binary or json")
	drainOn := fs.String("drain-on", "", "signal that triggers a graceful drain instead of an abrupt exit (only SIGTERM); any further signal forces the abrupt path")
	chaosFlag := fs.String("chaos", "", "chaos scenario for this worker's control and mesh paths: a preset ("+strings.Join(chaos.PresetNames(), ", ")+") or a rule script")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed of the chaos fault schedule")
	fs.Parse(args)
	if err := checkProto(*proto); err != nil {
		return err
	}
	if *drainOn != "" && *drainOn != "SIGTERM" {
		return fmt.Errorf("-drain-on supports only SIGTERM, got %q", *drainOn)
	}
	inj, err := parseChaos(*chaosFlag, *chaosSeed)
	if err != nil {
		return err
	}

	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		}
	}
	w := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Advertise:   *advertise,
		Proto:       *proto,
		Chaos:       inj,
		Logf:        log.Printf,
	})
	go func() {
		ch := make(chan os.Signal, 2)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		s := <-ch
		if *drainOn == "SIGTERM" && s == syscall.SIGTERM {
			log.Printf("taskbenchd: SIGTERM: draining (send another signal to force exit)")
			if err := w.Drain(); err != nil {
				log.Printf("taskbenchd: drain: %v; closing", err)
				w.Close()
				return
			}
			// Run exits on its own when the coordinator confirms the
			// drain; a second signal cuts the wait short.
			s = <-ch
			log.Printf("taskbenchd: signal %v during drain: closing", s)
			w.Close()
			return
		}
		log.Printf("taskbenchd: signal %v: shutting down", s)
		w.Close()
	}()
	return w.Run()
}

// parseChaos builds the seeded fault injector for a -chaos scenario;
// an empty scenario disables injection.
func parseChaos(scenario string, seed int64) (*chaos.Injector, error) {
	if scenario == "" {
		return nil, nil
	}
	sc, err := chaos.Parse(scenario)
	if err != nil {
		return nil, err
	}
	log.Printf("taskbenchd: chaos scenario %s (seed %d)", sc, seed)
	return chaos.NewInjector(sc, seed), nil
}

func checkProto(p string) error {
	if p != wire.ProtoJSON && p != wire.ProtoBinary {
		return fmt.Errorf("-proto must be %q or %q, got %q", wire.ProtoJSON, wire.ProtoBinary, p)
	}
	return nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	log.Printf("taskbenchd: shutting down")
}
