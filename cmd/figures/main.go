// Command figures regenerates every table and figure of the paper's
// evaluation into a results directory: a CSV per figure, an ASCII
// rendering, and markdown for the tables.
//
//	figures -out results            # quick scale (≤16 nodes)
//	figures -out results -full      # the paper's axes (≤256 nodes)
//	figures -only fig9a,fig13       # subset
//
// Single-node Figures 6/7/8 are measured on this host's real runtime
// backends; multi-node figures come from the cluster simulator (see
// DESIGN.md for the substitution rationale).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"taskbench/internal/harness"
	_ "taskbench/internal/runtime/all"
)

func main() {
	var (
		out  = flag.String("out", "results", "output directory")
		full = flag.Bool("full", false, "use the paper's full axes (256 nodes; slower)")
		only = flag.String("only", "", "comma-separated subset of experiment IDs")
	)
	flag.Parse()

	scale := harness.Quick()
	if *full {
		scale = harness.Full()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	// Tables.
	for id, gen := range map[string]func() string{
		"table1": harness.Table1,
		"table2": harness.Table2,
		"table3": harness.Table3,
		"table4": harness.Table4,
	} {
		if !selected(id) {
			continue
		}
		path := filepath.Join(*out, id+".md")
		if err := os.WriteFile(path, []byte(gen()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	real := harness.DefaultRealConfig()
	type job struct {
		id  string
		gen func() (*harness.Figure, error)
	}
	jobs := []job{
		{"fig4", wrap(func() *harness.Figure { return harness.Fig4WeakScaling(scale) })},
		{"fig5", wrap(func() *harness.Figure { return harness.Fig5StrongScaling(scale) })},
		{"fig6", func() (*harness.Figure, error) { return harness.Fig6FlopsVsProblemSize(real) }},
		{"fig7", func() (*harness.Figure, error) { return harness.Fig7EfficiencyCurve(real) }},
		{"fig8", func() (*harness.Figure, error) { return harness.Fig8MemoryBandwidth(real) }},
		{"fig10", wrap(func() *harness.Figure { return harness.Fig10METGvsDeps(scale) })},
		{"fig12", wrap(func() *harness.Figure { return harness.Fig12LoadImbalance(scale) })},
		{"fig12p", wrap(func() *harness.Figure { return harness.Fig12Persistent(scale) })},
		{"fig13", wrap(func() *harness.Figure { return harness.Fig13GPU(scale) })},
	}
	for _, v := range harness.Fig9Variants(scale) {
		v := v
		jobs = append(jobs, job{"fig9" + v.Suffix, wrap(func() *harness.Figure {
			return harness.Fig9METGvsNodes(v, scale)
		})})
	}
	for i, bytes := range []int{16, 256, 4096, 65536} {
		bytes := bytes
		panel := string(rune('a' + i))
		jobs = append(jobs, job{"fig11" + panel, wrap(func() *harness.Figure {
			return harness.Fig11CommunicationHiding(bytes, scale, panel)
		})})
	}

	for _, j := range jobs {
		if !selected(j.id) {
			continue
		}
		start := time.Now()
		fig, err := j.gen()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", j.id, err))
		}
		if err := fig.SaveCSV(*out); err != nil {
			fatal(err)
		}
		txt, err := os.Create(filepath.Join(*out, fig.ID+".txt"))
		if err != nil {
			fatal(err)
		}
		fig.Render(txt, 72, 20)
		txt.Close()
		fmt.Printf("wrote %s (%d series, %v)\n",
			filepath.Join(*out, fig.ID+".csv"), len(fig.Series), time.Since(start).Round(time.Millisecond))
	}

	// Host-scale real METG table (the 1-node column of Figure 9a
	// measured for real on the goroutine backends).
	if selected("realmetg") {
		rows, err := harness.RealMETG(real)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, "realmetg.md")
		if err := os.WriteFile(path, []byte(harness.RealMETGTable(rows)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	if err := harness.WriteReport(*out); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", filepath.Join(*out, "REPORT.md"))
}

func wrap(f func() *harness.Figure) func() (*harness.Figure, error) {
	return func() (*harness.Figure, error) { return f(), nil }
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
