package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := strings.NewReader(`
goos: linux
BenchmarkPlanBuild-8         	     100	   1200.5 ns/op	     320 B/op	       4 allocs/op
BenchmarkDepQuery            	 5000000	     25.0 ns/op	       0 B/op	       0 allocs/op	  12.5 tasks/s
--- FAIL: BenchmarkBroken
PASS
`)
	rep, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	pb := rep.Benchmarks["BenchmarkPlanBuild"]
	if pb.NsPerOp != 1200.5 || pb.BPerOp == nil || *pb.BPerOp != 320 || *pb.AllocsPerOp != 4 {
		t.Errorf("PlanBuild parsed wrong: %+v", pb)
	}
	dq := rep.Benchmarks["BenchmarkDepQuery"]
	if dq.Metrics["tasks/s"] != 12.5 {
		t.Errorf("custom metric lost: %+v", dq)
	}
}

func TestDiffReports(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep Report) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	f := func(v float64) *float64 { return &v }
	oldPath := write("old.json", Report{Benchmarks: map[string]Result{
		"BenchmarkSame":   {NsPerOp: 100, AllocsPerOp: f(2)},
		"BenchmarkFaster": {NsPerOp: 200, AllocsPerOp: f(8)},
		"BenchmarkGone":   {NsPerOp: 50},
	}})
	newPath := write("new.json", Report{Benchmarks: map[string]Result{
		"BenchmarkSame":   {NsPerOp: 100, AllocsPerOp: f(2)},
		"BenchmarkFaster": {NsPerOp: 150, AllocsPerOp: f(0)},
		"BenchmarkNew":    {NsPerOp: 75},
	}})

	var out strings.Builder
	if err := diff(&out, oldPath, newPath, -1, nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkFaster", "-25.0%", "8 → 0",
		"BenchmarkSame", "+0.0%",
		"BenchmarkGone", "gone",
		"BenchmarkNew", "new",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

func TestDiffRejectsEmptyReport(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"benchmarks":{}}`), 0o644)
	if err := diff(os.Stdout, empty, empty, -1, nil); err == nil {
		t.Error("diff accepted an empty report")
	}
}

// writeReport marshals a report to a file in dir for the gate tests.
func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateTripsOnRegression pins the CI tripwire contract: a synthetic
// >10% ns/op regression must turn the diff into a nonzero exit, naming
// the offender, while benchmarks inside the threshold pass.
func TestGateTripsOnRegression(t *testing.T) {
	dir := t.TempDir()
	f := func(v float64) *float64 { return &v }
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: map[string]Result{
		"BenchmarkHot":    {NsPerOp: 100, AllocsPerOp: f(0)},
		"BenchmarkNoisy":  {NsPerOp: 100, AllocsPerOp: f(0)},
		"BenchmarkCustom": {NsPerOp: 40},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: map[string]Result{
		"BenchmarkHot":    {NsPerOp: 115, AllocsPerOp: f(0)}, // +15%: trips a 10% gate
		"BenchmarkNoisy":  {NsPerOp: 109, AllocsPerOp: f(0)}, // +9%: inside the gate
		"BenchmarkCustom": {NsPerOp: 40},
	}})

	var out strings.Builder
	err := diff(&out, oldPath, newPath, 10, nil)
	if err == nil {
		t.Fatalf("gate passed a +15%% regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "GATE: BenchmarkHot") {
		t.Errorf("gate output does not name the offender:\n%s", out.String())
	}
	if strings.Contains(out.String(), "GATE: BenchmarkNoisy") {
		t.Errorf("gate tripped on a within-threshold delta:\n%s", out.String())
	}

	out.Reset()
	if err := diff(&out, oldPath, newPath, 20, nil); err != nil {
		t.Errorf("20%% gate tripped on a +15%% delta: %v\n%s", err, out.String())
	}
}

// TestGateTripsOnAllocIncrease pins the zero-alloc contract: any
// allocs/op increase trips the gate regardless of the ns/op threshold,
// while appearing/vanishing benchmarks never do.
func TestGateTripsOnAllocIncrease(t *testing.T) {
	dir := t.TempDir()
	f := func(v float64) *float64 { return &v }
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: map[string]Result{
		"BenchmarkZeroAlloc": {NsPerOp: 100, AllocsPerOp: f(0)},
		"BenchmarkGone":      {NsPerOp: 500, AllocsPerOp: f(9)},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: map[string]Result{
		"BenchmarkZeroAlloc": {NsPerOp: 100, AllocsPerOp: f(1)}, // same speed, new alloc
		"BenchmarkNew":       {NsPerOp: 500, AllocsPerOp: f(9)},
	}})

	var out strings.Builder
	err := diff(&out, oldPath, newPath, 10, nil)
	if err == nil {
		t.Fatalf("gate passed an allocs/op increase:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "GATE: BenchmarkZeroAlloc") ||
		!strings.Contains(out.String(), "0 → 1") {
		t.Errorf("gate output does not name the alloc regression:\n%s", out.String())
	}
	if strings.Contains(out.String(), "GATE: BenchmarkGone") || strings.Contains(out.String(), "GATE: BenchmarkNew") {
		t.Errorf("gate tripped on an appearing/vanishing benchmark:\n%s", out.String())
	}
}

// TestGateDisjointReports pins the gate to the intersection of the two
// reports: with fully disjoint benchmark sets — a baseline from before a
// wholesale benchmark rename, say — there is nothing to compare, so the
// diff renders only gone/new rows and the gate never trips, at any
// threshold.
func TestGateDisjointReports(t *testing.T) {
	dir := t.TempDir()
	f := func(v float64) *float64 { return &v }
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: map[string]Result{
		"BenchmarkOldOnlyFast": {NsPerOp: 10, AllocsPerOp: f(0)},
		"BenchmarkOldOnlySlow": {NsPerOp: 9999, AllocsPerOp: f(50)},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: map[string]Result{
		"BenchmarkNewOnlyFast": {NsPerOp: 10, AllocsPerOp: f(0)},
		"BenchmarkNewOnlySlow": {NsPerOp: 9999, AllocsPerOp: f(50)},
	}})

	for _, gatePct := range []float64{-1, 0, 10} {
		var out strings.Builder
		if err := diff(&out, oldPath, newPath, gatePct, nil); err != nil {
			t.Errorf("gate %v tripped on disjoint reports: %v\n%s", gatePct, err, out.String())
		}
		if strings.Contains(out.String(), "GATE:") {
			t.Errorf("gate %v emitted a GATE line with nothing comparable:\n%s", gatePct, out.String())
		}
		for _, name := range []string{"BenchmarkOldOnlyFast", "BenchmarkNewOnlyFast"} {
			if !strings.Contains(out.String(), name) {
				t.Errorf("diff table dropped %s:\n%s", name, out.String())
			}
		}
	}
}

// TestGateSubsetBaseline pins the asymmetric case: benchmarks present
// only in the new report ride along un-gated, while the shared subset is
// still compared — adding benchmarks must not require refreshing the
// baseline, but cannot mask a real regression either.
func TestGateSubsetBaseline(t *testing.T) {
	dir := t.TempDir()
	f := func(v float64) *float64 { return &v }
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: map[string]Result{
		"BenchmarkShared": {NsPerOp: 100, AllocsPerOp: f(0)},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: map[string]Result{
		"BenchmarkShared": {NsPerOp: 150, AllocsPerOp: f(0)}, // +50%: trips
		"BenchmarkAdded":  {NsPerOp: 5000, AllocsPerOp: f(99)},
	}})

	var out strings.Builder
	if err := diff(&out, oldPath, newPath, 10, nil); err == nil {
		t.Fatalf("gate passed a +50%% regression on the shared subset:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "GATE: BenchmarkShared") {
		t.Errorf("gate output does not name the shared offender:\n%s", out.String())
	}
	if strings.Contains(out.String(), "GATE: BenchmarkAdded") {
		t.Errorf("gate tripped on a benchmark with no baseline:\n%s", out.String())
	}
}

// TestGateMatchRestrictsScope pins -match: a regression outside the
// matched hot set is invisible to both the table and the gate.
func TestGateMatchRestrictsScope(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: map[string]Result{
		"BenchmarkHot":  {NsPerOp: 100},
		"BenchmarkCold": {NsPerOp: 100},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: map[string]Result{
		"BenchmarkHot":  {NsPerOp: 100},
		"BenchmarkCold": {NsPerOp: 300},
	}})

	var out strings.Builder
	if err := diff(&out, oldPath, newPath, 10, regexp.MustCompile("Hot")); err != nil {
		t.Errorf("gate tripped on a benchmark outside -match: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "BenchmarkCold") {
		t.Errorf("-match leaked an unmatched benchmark into the table:\n%s", out.String())
	}

	out.Reset()
	if err := diff(&out, oldPath, newPath, 10, regexp.MustCompile("Cold")); err == nil {
		t.Errorf("gate passed a matched 3x regression:\n%s", out.String())
	}
}

// TestRunFlagValidation pins the CLI surface: -gate/-match without
// -diff, and malformed values, are refused rather than ignored.
func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-gate", "10"},
		{"-match", "Hot"},
		{"-diff", "a.json", "b.json", "-gate", "0"},
		{"-diff", "a.json", "b.json", "-gate", "ten"},
		{"-diff", "a.json", "b.json", "-match", "("},
		{"-gate"},
		{"-match"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}
