package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := strings.NewReader(`
goos: linux
BenchmarkPlanBuild-8         	     100	   1200.5 ns/op	     320 B/op	       4 allocs/op
BenchmarkDepQuery            	 5000000	     25.0 ns/op	       0 B/op	       0 allocs/op	  12.5 tasks/s
--- FAIL: BenchmarkBroken
PASS
`)
	rep, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	pb := rep.Benchmarks["BenchmarkPlanBuild"]
	if pb.NsPerOp != 1200.5 || pb.BPerOp == nil || *pb.BPerOp != 320 || *pb.AllocsPerOp != 4 {
		t.Errorf("PlanBuild parsed wrong: %+v", pb)
	}
	dq := rep.Benchmarks["BenchmarkDepQuery"]
	if dq.Metrics["tasks/s"] != 12.5 {
		t.Errorf("custom metric lost: %+v", dq)
	}
}

func TestDiffReports(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep Report) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	f := func(v float64) *float64 { return &v }
	oldPath := write("old.json", Report{Benchmarks: map[string]Result{
		"BenchmarkSame":   {NsPerOp: 100, AllocsPerOp: f(2)},
		"BenchmarkFaster": {NsPerOp: 200, AllocsPerOp: f(8)},
		"BenchmarkGone":   {NsPerOp: 50},
	}})
	newPath := write("new.json", Report{Benchmarks: map[string]Result{
		"BenchmarkSame":   {NsPerOp: 100, AllocsPerOp: f(2)},
		"BenchmarkFaster": {NsPerOp: 150, AllocsPerOp: f(0)},
		"BenchmarkNew":    {NsPerOp: 75},
	}})

	var out strings.Builder
	if err := diff(&out, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkFaster", "-25.0%", "8 → 0",
		"BenchmarkSame", "+0.0%",
		"BenchmarkGone", "gone",
		"BenchmarkNew", "new",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

func TestDiffRejectsEmptyReport(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"benchmarks":{}}`), 0o644)
	if err := diff(os.Stdout, empty, empty); err == nil {
		t.Error("diff accepted an empty report")
	}
}
