// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report mapping benchmark name → ns/op, B/op,
// allocs/op and any custom b.ReportMetric units. CI runs it after the
// bench-smoke job and uploads the result as BENCH_<sha>.json, seeding
// a perf trajectory that can be diffed across commits:
//
//	go test -bench . -benchmem -benchtime 1x -run '^$' ./... | tee bench.txt
//	benchjson -in bench.txt -out BENCH_$(git rev-parse --short HEAD).json
//
// The -diff mode turns two such reports into a regression table —
// per-benchmark ns/op and allocs/op deltas, plus appearing/vanishing
// benchmarks — so the CI artifact history reads as a perf trail:
//
//	benchjson -diff BENCH_old.json BENCH_new.json
//
// Adding -gate turns the trail into a tripwire: the process exits
// nonzero if any benchmark present in both reports slowed by more than
// the given percentage of ns/op, or increased its allocs/op at all
// (the hot paths are zero-alloc by design, so any new allocation is a
// regression, not noise). -match restricts the diff to benchmarks
// whose name matches a regexp — CI gates a hand-picked hot set at a
// meaningful -benchtime rather than the full 1x smoke sweep:
//
//	benchjson -diff BENCH_prev.json BENCH_GATE.json -gate 10 -match 'WireEncode|MeshSend'
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result holds the parsed metrics of one benchmark line.
type Result struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BPerOp and AllocsPerOp are present only when the run used
	// -benchmem (or the benchmark called b.ReportAllocs).
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries custom b.ReportMetric units (tasks/s, METG-µs, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string            `json:"go_version"`
	GoOS       string            `json:"goos"`
	GoArch     string            `json:"goarch"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	in := ""
	out := ""
	var diffPaths []string
	gate := -1.0 // percent; negative means no gate
	matchExpr := ""
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-in":
			if i+1 >= len(args) {
				return fmt.Errorf("-in requires a file path")
			}
			in = args[i+1]
			i++
		case "-out":
			if i+1 >= len(args) {
				return fmt.Errorf("-out requires a file path")
			}
			out = args[i+1]
			i++
		case "-diff":
			if i+2 >= len(args) {
				return fmt.Errorf("-diff requires two report paths (old.json new.json)")
			}
			diffPaths = []string{args[i+1], args[i+2]}
			i += 2
		case "-gate":
			if i+1 >= len(args) {
				return fmt.Errorf("-gate requires a percentage (e.g. -gate 10)")
			}
			pct, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || pct <= 0 {
				return fmt.Errorf("-gate wants a positive percentage, got %q", args[i+1])
			}
			gate = pct
			i++
		case "-match":
			if i+1 >= len(args) {
				return fmt.Errorf("-match requires a regexp")
			}
			matchExpr = args[i+1]
			i++
		default:
			return fmt.Errorf("unknown flag %q (usage: benchjson [-in bench.txt] [-out BENCH.json] | -diff old.json new.json [-gate pct] [-match regexp])", args[i])
		}
	}
	if diffPaths != nil {
		var match *regexp.Regexp
		if matchExpr != "" {
			var err error
			if match, err = regexp.Compile(matchExpr); err != nil {
				return fmt.Errorf("-match: %w", err)
			}
		}
		return diff(os.Stdout, diffPaths[0], diffPaths[1], gate, match)
	}
	if gate >= 0 || matchExpr != "" {
		return fmt.Errorf("-gate and -match only apply to -diff")
	}

	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	report, err := parse(r)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parse reads `go test -bench` output: each benchmark line is the name
// (with a -GOMAXPROCS suffix), the iteration count, then value/unit
// pairs ("123 ns/op", "45 B/op", "6 allocs/op", "7.8 tasks/s").
func parse(r io.Reader) (*Report, error) {
	report := &Report{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Benchmarks: map[string]Result{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "--- FAIL: BenchmarkX" line
		}
		res := Result{Iterations: iters}
		for k := 2; k+1 < len(fields); k += 2 {
			v, err := strconv.ParseFloat(fields[k], 64)
			if err != nil {
				break
			}
			switch unit := fields[k+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				b := v
				res.BPerOp = &b
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		report.Benchmarks[trimProcs(fields[0])] = res
	}
	return report, sc.Err()
}

// diff prints a per-benchmark regression table between two reports:
// ns/op delta (percent), allocs/op delta (absolute), and benchmarks
// present in only one report. match, when non-nil, restricts the table
// to benchmarks whose name it matches. With gatePct negative the exit
// status stays zero — the table is a trail; thresholds belong to
// whoever reads it. With gatePct set, the diff becomes a CI tripwire:
// a benchmark present in both reports that slowed by more than gatePct
// percent of ns/op, or allocated more per op at all, is an error.
// Appearing and vanishing benchmarks never trip the gate — renames and
// new coverage are not regressions.
func diff(w io.Writer, oldPath, newPath string, gatePct float64, match *regexp.Regexp) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}

	names := map[string]bool{}
	for name := range oldRep.Benchmarks {
		names[name] = true
	}
	for name := range newRep.Benchmarks {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		if match == nil || match.MatchString(name) {
			sorted = append(sorted, name)
		}
	}
	sort.Strings(sorted)

	var tripped []string
	fmt.Fprintf(w, "%-44s %14s %14s %9s %14s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, name := range sorted {
		o, inOld := oldRep.Benchmarks[name]
		n, inNew := newRep.Benchmarks[name]
		switch {
		case !inOld:
			fmt.Fprintf(w, "%-44s %14s %14.1f %9s %14s\n", name, "-", n.NsPerOp, "new", allocDelta(nil, n.AllocsPerOp))
		case !inNew:
			fmt.Fprintf(w, "%-44s %14.1f %14s %9s %14s\n", name, o.NsPerOp, "-", "gone", allocDelta(o.AllocsPerOp, nil))
		default:
			delta := "n/a"
			if o.NsPerOp > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp)
			}
			fmt.Fprintf(w, "%-44s %14.1f %14.1f %9s %14s\n", name, o.NsPerOp, n.NsPerOp, delta, allocDelta(o.AllocsPerOp, n.AllocsPerOp))
			if gatePct >= 0 {
				if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+gatePct/100) {
					tripped = append(tripped, fmt.Sprintf("%s: ns/op %+.1f%% exceeds +%.1f%%",
						name, 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp, gatePct))
				}
				if o.AllocsPerOp != nil && n.AllocsPerOp != nil && *n.AllocsPerOp > *o.AllocsPerOp {
					tripped = append(tripped, fmt.Sprintf("%s: allocs/op %.0f → %.0f",
						name, *o.AllocsPerOp, *n.AllocsPerOp))
				}
			}
		}
	}
	if len(tripped) > 0 {
		for _, line := range tripped {
			fmt.Fprintf(w, "GATE: %s\n", line)
		}
		return fmt.Errorf("%d benchmark regression(s) beyond the gate", len(tripped))
	}
	return nil
}

// allocDelta renders the allocs/op transition of one benchmark;
// reports without -benchmem have no allocation data.
func allocDelta(o, n *float64) string {
	switch {
	case o == nil && n == nil:
		return "-"
	case o == nil:
		return fmt.Sprintf("→ %.0f", *n)
	case n == nil:
		return fmt.Sprintf("%.0f →", *o)
	case *o == *n:
		return fmt.Sprintf("%.0f", *o)
	default:
		return fmt.Sprintf("%.0f → %.0f", *o, *n)
	}
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}

// trimProcs drops the trailing -GOMAXPROCS suffix go test appends to
// benchmark names, so names stay stable across machine shapes.
func trimProcs(name string) string {
	k := strings.LastIndexByte(name, '-')
	if k < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[k+1:]); err != nil {
		return name
	}
	return name[:k]
}
