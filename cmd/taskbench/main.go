// Command taskbench runs one Task Bench configuration on one runtime
// backend, mirroring the reference implementation's driver:
//
//	taskbench -backend p2p -steps 1000 -width 4 -type stencil_1d \
//	    -kernel compute_bound -iter 2048 [-runs 3] [-and ...]
//
// Graph options follow the paper's Table 1 (see core.ParseArgs); the
// -and flag starts an additional concurrent task graph. Every task
// input is validated against the dependence relation unless
// -novalidate is given, so a run that completes is a correct run.
package main

import (
	"fmt"
	"os"
	stdruntime "runtime"
	"runtime/pprof"
	"strconv"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/report"
	"taskbench/internal/runtime"
	_ "taskbench/internal/runtime/all"
	"taskbench/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "taskbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	backend := "p2p"
	runs := 1
	specPath := ""
	cpuProfile := ""
	memProfile := ""
	reportMode := "console"
	var rest []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-report":
			if i+1 >= len(args) {
				return fmt.Errorf("-report requires console, json or none")
			}
			reportMode = args[i+1]
			if reportMode != "console" && reportMode != "json" && reportMode != "none" {
				return fmt.Errorf("-report must be console, json or none, got %q", reportMode)
			}
			i++
		case "-cpuprofile":
			if i+1 >= len(args) {
				return fmt.Errorf("-cpuprofile requires a file path")
			}
			cpuProfile = args[i+1]
			i++
		case "-memprofile":
			if i+1 >= len(args) {
				return fmt.Errorf("-memprofile requires a file path")
			}
			memProfile = args[i+1]
			i++
		case "-spec":
			if i+1 >= len(args) {
				return fmt.Errorf("-spec requires a JSON file path")
			}
			specPath = args[i+1]
			i++
		case "-backend":
			if i+1 >= len(args) {
				return fmt.Errorf("-backend requires a value (one of %v)", runtime.Names())
			}
			backend = args[i+1]
			i++
		case "-runs":
			if i+1 >= len(args) {
				return fmt.Errorf("-runs requires a value")
			}
			n, err := strconv.Atoi(args[i+1])
			if err != nil || n < 1 {
				return fmt.Errorf("invalid -runs %q", args[i+1])
			}
			runs = n
			i++
		case "-help", "--help", "-h":
			usage()
			return nil
		default:
			rest = append(rest, args[i])
		}
	}

	var app *core.App
	var err error
	if specPath != "" {
		if len(rest) > 0 {
			return fmt.Errorf("-spec cannot be combined with graph flags %v", rest)
		}
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		spec, err := wire.Decode(f)
		if err != nil {
			return err
		}
		if app, err = spec.ToApp(); err != nil {
			return err
		}
	} else if app, err = core.ParseArgs(rest); err != nil {
		return err
	}
	rt, err := runtime.New(backend)
	if err != nil {
		return err
	}

	if app.Verbose {
		cal := kernels.Calibrate()
		fmt.Printf("host calibration: %.2f GFLOP/s/core, %.2f GB/s/core, %d cores\n",
			cal.FlopsPerSecondPerCore/1e9, cal.BytesPerSecondPerCore/1e9, cal.Cores)
		fmt.Printf("app: %d graph(s), %d tasks, %d dependencies\n",
			len(app.Graphs), app.TotalTasks(), app.TotalDependencies())
	}

	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var best core.RunStats
	var all []core.RunStats
	var names []string
	for r := 0; r < runs; r++ {
		stats, err := rt.Run(app)
		if err != nil {
			return err
		}
		if r == 0 || stats.Elapsed < best.Elapsed {
			best = stats
		}
		all = append(all, stats)
		names = append(names, fmt.Sprintf("%s[%d]", backend, r))
		if app.Verbose {
			stats.WriteReport(os.Stdout, names[r])
		}
	}
	// The one-line summary is the classic contract; -report adds the
	// structured rendering (per-run table, machine-readable JSON).
	switch reportMode {
	case "json":
		rep := report.FromRuns(fmt.Sprintf("taskbench %s", backend), names, all)
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
		best.WriteReport(os.Stderr, backend)
	case "console":
		if runs > 1 {
			rep := report.FromRuns(fmt.Sprintf("taskbench %s (%d runs, best reported)", backend, runs), names, all)
			if err := rep.WriteConsole(os.Stdout); err != nil {
				return err
			}
		}
		best.WriteReport(os.Stdout, backend)
	case "none":
		best.WriteReport(os.Stdout, backend)
	}
	return writeMemProfile(memProfile)
}

// writeMemProfile snapshots the heap into path (no-op when empty), for
// chasing allocation regressions on the steady-state task path without
// editing code.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	stdruntime.GC() // settle live-object counts before the snapshot
	return pprof.WriteHeapProfile(f)
}

func usage() {
	fmt.Printf(`taskbench — run a Task Bench configuration on a runtime backend

Backends: %v

Driver options:
  -backend NAME     runtime backend (default p2p)
  -runs N           repetitions; the best run is reported (default 1)
  -spec FILE        load the configuration from a JSON spec instead of flags
  -report MODE      console (per-run table when -runs > 1), json (machine-
                    readable report on stdout), none (one-line summary only)
  -cpuprofile FILE  write a pprof CPU profile of the runs
  -memprofile FILE  write a pprof heap profile after the runs

Graph options (Table 1 of the paper; repeat after -and for more graphs):
  -steps H        timesteps (default 4)
  -width W        parallel columns (default 4)
  -type T         trivial no_comm stencil_1d stencil_1d_periodic dom
                  tree fft all_to_all nearest spread random_nearest
  -radix K        dependencies per task (nearest/spread/random_nearest)
  -period P       dependence sets cycled (spread/random_nearest)
  -fraction F     edge density (random_nearest)
  -kernel K       empty busy_wait compute_bound memory_bound load_imbalance
  -iter N         kernel iterations per task
  -span BYTES     bytes per iteration (memory_bound)
  -wait DUR       busy_wait duration, e.g. 50us
  -imbalance F    imbalance factor in [0,1]
  -persistent     imbalance is per-column (persistent), not per-task
  -output BYTES   payload bytes per dependency
  -scratch BYTES  per-column working set
  -seed S         deterministic workload seed

Global options:
  -workers N      execution parallelism
  -nodes N        rank count for the hybrid backend
  -novalidate     skip input validation (ablation)
  -verbose        extra reporting
`, runtime.Names())
}
