package taskbench

import (
	"testing"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	_ "taskbench/internal/runtime/all"
)

// TestValidationOverheadScan measures the input-validation overhead
// (paper §2: must stay under ~3%) across kernel granularities. It is a
// measurement scan, not an assertion: run it directly to read the
// numbers, e.g.
//
//	go test -run TestValidationOverheadScan -v .
//
// The per-granularity lines go through t.Logf, so they are visible with
// -v (or on failure) and silent in the ordinary test stream.
func TestValidationOverheadScan(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement scan")
	}
	rt, _ := runtime.New("serial")
	for _, iters := range []int64{16, 64, 256, 1024} {
		var on, off time.Duration
		for r := 0; r < 10; r++ {
			for _, v := range []bool{true, false} {
				app := core.NewApp(core.MustNew(core.Params{
					Timesteps: 50, MaxWidth: 8, Dependence: core.Stencil1D,
					Kernel: kernels.Config{Type: kernels.ComputeBound, Iterations: iters},
				}))
				app.Validate = v
				st, err := rt.Run(app)
				if err != nil {
					t.Fatal(err)
				}
				if v {
					on += st.Elapsed
				} else {
					off += st.Elapsed
				}
			}
		}
		t.Logf("iters=%5d  on=%v off=%v overhead=%.1f%%", iters, on/10, off/10, 100*(float64(on)/float64(off)-1))
	}
}
