// Analytics: a divide-and-conquer reduction tree (paper Figure 1e) on
// the centralized-controller backend, the Spark/Dask analog. Large
// data-analytics systems schedule every task through one driver, so
// they need very coarse tasks (tens of seconds in the paper, §5.3) —
// this example makes the controller bottleneck visible by comparing
// task throughput against a distributed backend at several task
// sizes.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"time"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	_ "taskbench/internal/runtime/all"
)

func main() {
	fmt.Println("tree-structured analytics DAG: fan-out, then butterfly exchange")

	for _, wait := range []time.Duration{2 * time.Millisecond, 200 * time.Microsecond, 20 * time.Microsecond} {
		app := core.NewApp(core.MustNew(core.Params{
			Timesteps:   24,
			MaxWidth:    16,
			Dependence:  core.Tree,
			Kernel:      kernels.Config{Type: kernels.BusyWait, WaitDuration: wait},
			OutputBytes: 512,
		}))

		fmt.Printf("\ntask duration %v (%d tasks):\n", wait, app.TotalTasks())
		for _, name := range []string{"central", "graphexec"} {
			rt, err := runtime.New(name)
			if err != nil {
				log.Fatal(err)
			}
			stats, err := rt.Run(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s elapsed %12v  %9.0f tasks/s\n",
				name, stats.Elapsed.Round(time.Microsecond), stats.TasksPerSecond())
		}
	}

	fmt.Println("\nThe centralized controller round-trips once per task, so its")
	fmt.Println("advantage shrinks as tasks get smaller — the reason Spark-class")
	fmt.Println("systems need coarse tasks (paper §5.3, Figure 9).")
}
