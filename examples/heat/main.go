// Heat: a 1-D heat-diffusion halo exchange, the canonical structured
// mesh workload the stencil pattern distills (paper §1). Each column
// is a mesh partition; every timestep exchanges one halo's worth of
// payload with both neighbours and runs a memory-bound update over a
// constant working set.
//
// The example contrasts a phase-based backend (bsp, the MPI analog)
// with an asynchronous one (actor, the Charm++ analog) at shrinking
// task sizes — the regime where runtime overhead starts to matter.
//
//	go run ./examples/heat
package main

import (
	"fmt"
	"log"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	_ "taskbench/internal/runtime/all"
)

func main() {
	const (
		partitions = 4
		timesteps  = 100
		haloBytes  = 1024    // payload per dependence edge
		cellsBytes = 1 << 20 // per-partition working set
	)

	fmt.Println("1-D heat diffusion: halo exchange on the stencil pattern")
	fmt.Printf("%d partitions × %d timesteps, %d B halos, %d KiB working set\n\n",
		partitions, timesteps, haloBytes, cellsBytes>>10)

	for _, iterations := range []int64{512, 64, 8} {
		app := core.NewApp(core.MustNew(core.Params{
			Timesteps:   timesteps,
			MaxWidth:    partitions,
			Dependence:  core.Stencil1DPeriodic,
			Kernel:      kernels.Config{Type: kernels.MemoryBound, Iterations: iterations, SpanBytes: 4096},
			OutputBytes: haloBytes,
			// The working set survives across timesteps, like a mesh.
			ScratchBytes: cellsBytes,
		}))

		fmt.Printf("update size %d iterations:\n", iterations)
		for _, name := range []string{"bsp", "actor"} {
			rt, err := runtime.New(name)
			if err != nil {
				log.Fatal(err)
			}
			stats, err := rt.Run(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s granularity %10v  %8.2f MB/s\n",
				name, stats.TaskGranularity(), stats.BytesPerSecond()/1e6)
		}
		fmt.Println()
	}
	fmt.Println("As updates shrink, per-task runtime overhead dominates —")
	fmt.Println("exactly the effect METG quantifies (paper §4).")
}
