// Distributed: runs a halo exchange over the hand-rolled TCP runtime
// — real sockets, a real wire protocol — and cross-checks the result
// against the in-process channel backend. Because every payload is
// validated at the consumer, identical success on both transports
// proves the wire protocol delivered every byte to the right task.
//
// Both backends are driven through a reusable exec.RankSession: the
// rank plan (column spans, cross-rank edge lists) and the transport
// (channel fabric, or the TCP connection mesh) are built once and
// reused across repeated runs, so only the first run of each backend
// pays the wiring cost.
//
// The second half stands up cluster mode: a coordinator plus three
// workers, a wire.AppSpec job submitted through the client API, and
// the streamed result — the same graph now running with its ranks
// spread across the worker fleet, reusing one prepared configuration
// (plans, payload rows, live mesh) across repeated submissions.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"taskbench/internal/cluster"
	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	_ "taskbench/internal/runtime/all"
	"taskbench/internal/runtime/exec"
	"taskbench/internal/wire"
)

func main() {
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps:   50,
		MaxWidth:    4,
		Dependence:  core.Stencil1DPeriodic,
		Kernel:      kernels.Config{Type: kernels.ComputeBound, Iterations: 4096},
		OutputBytes: 4096,
	}))
	app.Workers = 4

	fmt.Println("halo exchange on 4 ranks: in-process channels vs real TCP loopback")
	fmt.Printf("%d tasks, %d dependence edges, 4 KiB payloads, 3 runs per reused session\n\n",
		app.TotalTasks(), app.TotalDependencies())

	for _, name := range []string{"p2p", "tcp"} {
		rt, err := runtime.New(name)
		if err != nil {
			log.Fatal(err)
		}
		rb, ok := rt.(runtime.RankBacked)
		if !ok {
			log.Fatalf("%s is not rank-backed", name)
		}
		sess, err := exec.NewRankSession(app, rb.RankPolicy())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for run := 0; run < 3; run++ {
			stats, err := sess.Run()
			if err != nil {
				log.Fatalf("%s run %d: %v", name, run, err)
			}
			fmt.Printf("%-4s run %d  elapsed %12v  granularity %10v  %7.2f GFLOP/s\n",
				name, run, stats.Elapsed, stats.TaskGranularity(), stats.FlopsPerSecond()/1e9)
		}
		sess.Close()
		fmt.Println()
	}

	fmt.Println("The TCP transport pays per-message framing and kernel-crossing")
	fmt.Println("costs — the overhead gap is the 'network software stack' the")
	fmt.Println("paper's MsgOverhead profile parameter models.")
	fmt.Println()

	clusterDemo(app)
}

// clusterDemo reruns the same halo exchange through cluster mode: the
// job travels as a wire.AppSpec to a coordinator, which block-assigns
// the 4 ranks over 3 registered workers and streams the result back.
func clusterDemo(app *core.App) {
	fmt.Println("cluster mode: the same spec submitted to a coordinator + 3 workers")

	coord, err := cluster.Start(cluster.Options{Listen: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	for k := 0; k < 3; k++ {
		w := cluster.NewWorker(cluster.WorkerOptions{
			Coordinator: coord.Addr(),
			Name:        fmt.Sprintf("worker-%d", k+1),
		})
		go func() {
			if err := w.Run(); err != nil {
				log.Printf("worker: %v", err)
			}
		}()
		defer w.Close()
	}
	if _, err := coord.WaitWorkers(3, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	cli, err := cluster.Dial(coord.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// The job document is the spec schema from internal/wire — the
	// same JSON a file-based sweep or a remote client would ship.
	spec := wire.FromApp(app)
	for run := 0; run < 3; run++ {
		// Shrinking the kernel between submissions keeps the graph
		// shape fixed, so the coordinator reuses one prepared
		// configuration — the mesh is established on run 0 only.
		spec.Graphs[0].Iterations = 4096 >> uint(run)
		stats, err := cli.Run(spec)
		if err != nil {
			log.Fatalf("cluster run %d: %v", run, err)
		}
		fmt.Printf("job %d  iters %-5d  elapsed %12v  granularity %10v  ranks %d\n",
			run, spec.Graphs[0].Iterations, stats.Elapsed, stats.TaskGranularity(), stats.Workers)
	}
	st := coord.Stats()
	fmt.Printf("\nconfigs built %d, reused %d: the fleet's rank plans, payload\n", st.ConfigsBuilt, st.ConfigsReused)
	fmt.Println("rows and TCP mesh were provisioned once and shared by all jobs,")
	fmt.Println("with every payload still validated at its consuming task. Here")
	fmt.Println("the workers share this process; run `taskbenchd worker` on")
	fmt.Println("separate machines and the same protocol spans real nodes.")
}
