// Distributed: runs a halo exchange over the hand-rolled TCP runtime
// — real sockets, a real wire protocol — and cross-checks the result
// against the in-process channel backend. Because every payload is
// validated at the consumer, identical success on both transports
// proves the wire protocol delivered every byte to the right task.
//
// Both backends are driven through a reusable exec.RankSession: the
// rank plan (column spans, cross-rank edge lists) and the transport
// (channel fabric, or the TCP connection mesh) are built once and
// reused across repeated runs, so only the first run of each backend
// pays the wiring cost.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"taskbench/internal/core"
	"taskbench/internal/kernels"
	"taskbench/internal/runtime"
	_ "taskbench/internal/runtime/all"
	"taskbench/internal/runtime/exec"
)

func main() {
	app := core.NewApp(core.MustNew(core.Params{
		Timesteps:   50,
		MaxWidth:    4,
		Dependence:  core.Stencil1DPeriodic,
		Kernel:      kernels.Config{Type: kernels.ComputeBound, Iterations: 4096},
		OutputBytes: 4096,
	}))
	app.Workers = 4

	fmt.Println("halo exchange on 4 ranks: in-process channels vs real TCP loopback")
	fmt.Printf("%d tasks, %d dependence edges, 4 KiB payloads, 3 runs per reused session\n\n",
		app.TotalTasks(), app.TotalDependencies())

	for _, name := range []string{"p2p", "tcp"} {
		rt, err := runtime.New(name)
		if err != nil {
			log.Fatal(err)
		}
		rb, ok := rt.(runtime.RankBacked)
		if !ok {
			log.Fatalf("%s is not rank-backed", name)
		}
		sess, err := exec.NewRankSession(app, rb.RankPolicy())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for run := 0; run < 3; run++ {
			stats, err := sess.Run()
			if err != nil {
				log.Fatalf("%s run %d: %v", name, run, err)
			}
			fmt.Printf("%-4s run %d  elapsed %12v  granularity %10v  %7.2f GFLOP/s\n",
				name, run, stats.Elapsed, stats.TaskGranularity(), stats.FlopsPerSecond()/1e9)
		}
		sess.Close()
		fmt.Println()
	}

	fmt.Println("The TCP transport pays per-message framing and kernel-crossing")
	fmt.Println("costs — the overhead gap is the 'network software stack' the")
	fmt.Println("paper's MsgOverhead profile parameter models.")
}
